#include <gtest/gtest.h>

#include "cmp/chip.hh"

using namespace rmt;

namespace
{

constexpr RegIndex r1 = intReg(1);
constexpr RegIndex r2 = intReg(2);
constexpr RegIndex r3 = intReg(3);
constexpr RegIndex r4 = intReg(4);

constexpr Addr devBase = 0xF0000000;

/**
 * A device-polling loop: read a volatile device register, compute on
 * it, write the result to another device register, repeat.  Every
 * value that reaches the device *derives from a volatile read*, so the
 * redundant copies agree only if uncached-input replication works.
 */
Program
devicePollLoop(int iters)
{
    ProgramBuilder b("poll");
    b.li(r1, static_cast<std::int64_t>(devBase));
    b.li(r2, iters);
    b.label("loop");
    b.ldunc(r3, r1, 0);         // volatile read
    b.xori(r3, r3, 0x5A);
    b.addi(r3, r3, 1);
    b.stunc(r3, r1, 8);         // side-effecting write
    b.addi(r2, r2, -1);
    b.bne(r2, intReg(0), "loop");
    b.halt();
    return b.build();
}

struct ChipHarness
{
    explicit ChipHarness(unsigned cores = 1)
    {
        ChipParams cp;
        cp.num_cores = cores;
        cp.cpu.num_threads = 2;
        cp.cpu.cosim = true;
        chip = std::make_unique<Chip>(cp);
    }

    void
    runAll(Cycle cap = 500000)
    {
        chip->run(cap);
        ASSERT_TRUE(chip->allDone());
    }

    std::unique_ptr<Chip> chip;
    std::vector<std::unique_ptr<DataMemory>> mems;
};

} // namespace

TEST(Uncached, ReferenceModelSemantics)
{
    ProgramBuilder b("ref");
    b.li(r1, 0x100);
    b.li(r2, 42);
    b.stunc(r2, r1, 0);
    b.ldunc(r3, r1, 0);
    b.halt();
    Program p = b.build();
    DataMemory mem(4096);
    ArchState st(p, mem);
    st.run(100);
    // The reference treats uncached ops as plain memory (pseudo-device).
    EXPECT_EQ(st.readReg(r3), 42u);
}

TEST(Uncached, DeviceReadsAreVolatile)
{
    Device dev(DeviceParams{});
    const auto a = dev.read(0x10);
    const auto b = dev.read(0x10);
    EXPECT_NE(a, b);    // same register, fresh value each read
    EXPECT_EQ(dev.reads(), 2u);
}

TEST(Uncached, SingleThreadPerformsExactlyOnce)
{
    ChipHarness h;
    const Program prog = devicePollLoop(20);
    DataMemory mem(64 * 1024);
    h.chip->cpu(0).addThread(0, prog, mem, 0, Role::Single);
    h.runAll();
    EXPECT_EQ(h.chip->device().reads(), 20u);
    EXPECT_EQ(h.chip->device().writes(), 20u);
    EXPECT_EQ(h.chip->device().writeLog().size(), 20u);
    EXPECT_EQ(h.chip->device().writeLog().front().addr, devBase + 8);
}

TEST(Uncached, WrongPathNeverTouchesTheDevice)
{
    // The device read sits behind a rarely-taken branch; speculative
    // wrong paths may fetch it but must never perform it (uncached ops
    // are non-speculative, executed only at the head of the machine).
    ProgramBuilder b("spec");
    b.li(r1, static_cast<std::int64_t>(devBase));
    b.li(r2, 400);
    b.li(r4, 12345);
    b.label("loop");
    b.muli(r4, r4, 6364136223846793005);
    b.addi(r4, r4, 1442695040888963407);
    b.srli(r3, r4, 33);
    b.andi(r3, r3, 63);
    b.bne(r3, intReg(0), "skip");   // taken 63/64: skip the device
    b.ldunc(r3, r1, 0);
    b.label("skip");
    b.addi(r2, r2, -1);
    b.bne(r2, intReg(0), "loop");
    b.halt();
    const Program prog = b.build();

    // Architecturally executed device reads.
    DataMemory ref_mem(64 * 1024);
    ArchState ref(prog, ref_mem);
    ref.run(100000);
    ASSERT_TRUE(ref.halted());
    std::uint64_t arch_reads = 0;
    {
        DataMemory m2(64 * 1024);
        ArchState st(prog, m2);
        while (!st.halted()) {
            const Addr pc = st.pc();
            if (prog.fetch(pc).isUncachedLoad())
                ++arch_reads;
            st.step();
        }
    }

    ChipHarness h;
    DataMemory mem(64 * 1024);
    h.chip->cpu(0).addThread(0, prog, mem, 0, Role::Single);
    h.runAll();
    EXPECT_EQ(h.chip->device().reads(), arch_reads);
}

TEST(Uncached, SrtReplicatesVolatileInputs)
{
    // The crux of Section 2.1's deferred mechanism: the trailing thread
    // must observe the *same* volatile values the leading thread read,
    // or every downstream store would mismatch.
    ChipHarness h;
    const Program prog = devicePollLoop(50);
    DataMemory mem(64 * 1024);
    auto &rm = h.chip->redundancy();
    RedundantPairParams pp;
    pp.leading = HwThread{0, 0};
    pp.trailing = HwThread{0, 1};
    RedundantPair &pair = rm.addPair(pp);
    h.chip->cpu(0).addThread(0, prog, mem, 0, Role::Leading, &pair);
    h.chip->cpu(0).addThread(1, prog, mem, 0, Role::Trailing, &pair);
    h.runAll();

    EXPECT_FALSE(pair.faultDetected());
    // The device was read once per uncached load (not twice) and
    // written once per uncached store (compare-then-perform-once).
    EXPECT_EQ(h.chip->device().reads(), 50u);
    EXPECT_EQ(h.chip->device().writes(), 50u);
}

TEST(Uncached, CrtReplicatesAcrossCores)
{
    ChipHarness h(2);
    const Program prog = devicePollLoop(30);
    DataMemory mem(64 * 1024);
    auto &rm = h.chip->redundancy();
    RedundantPairParams pp;
    pp.leading = HwThread{0, 0};
    pp.trailing = HwThread{1, 0};
    pp.cross_core_latency = 4;
    RedundantPair &pair = rm.addPair(pp);
    h.chip->cpu(0).addThread(0, prog, mem, 0, Role::Leading, &pair);
    h.chip->cpu(1).addThread(0, prog, mem, 0, Role::Trailing, &pair);
    h.runAll();
    EXPECT_FALSE(pair.faultDetected());
    EXPECT_EQ(h.chip->device().reads(), 30u);
    EXPECT_EQ(h.chip->device().writes(), 30u);
}

TEST(Uncached, CorruptedTrailingStoreIsDetectedBeforeTheDevice)
{
    // Inject a fault into the trailing copy's store data: the uncached
    // store comparison must flag it, and the device must receive the
    // (correct) leading value — output comparison happens *before* the
    // store leaves the sphere.
    ChipHarness h;
    // No cosim: the injected fault makes divergence intentional.
    ChipParams cp;
    cp.num_cores = 1;
    cp.cpu.num_threads = 2;
    h.chip = std::make_unique<Chip>(cp);

    const Program prog = devicePollLoop(40);
    DataMemory mem(64 * 1024);
    auto &rm = h.chip->redundancy();
    RedundantPairParams pp;
    pp.leading = HwThread{0, 0};
    pp.trailing = HwThread{0, 1};
    RedundantPair &pair = rm.addPair(pp);
    h.chip->cpu(0).addThread(0, prog, mem, 0, Role::Leading, &pair);
    h.chip->cpu(0).addThread(1, prog, mem, 0, Role::Trailing, &pair);

    FaultInjector injector;
    FaultRecord f;
    f.kind = FaultRecord::Kind::TransientReg;
    f.when = 300;
    f.core = 0;
    f.tid = 1;              // trailing copy
    f.reg = r1;             // the device base pointer: long-lived, so
                            // every later trailing store address skews
    f.bit = 4;
    injector.schedule(f);
    h.chip->setFaultInjector(&injector);

    h.chip->run(500000);
    EXPECT_TRUE(pair.faultDetected());
    // Device writes all carry leading-thread data; count unchanged.
    EXPECT_EQ(h.chip->device().writes(), 40u);
}

TEST(Uncached, LoadValueFeedsDependentsPromptly)
{
    // Dependents of an uncached load wake up when it performs.
    ProgramBuilder b("dep");
    b.li(r1, static_cast<std::int64_t>(devBase));
    b.ldunc(r2, r1, 0);
    b.andi(r3, r2, 0xFF);
    b.li(r4, 0x200);
    b.stq(r3, r4, 0);
    b.halt();
    const Program prog = b.build();
    ChipHarness h;
    DataMemory mem(64 * 1024);
    h.chip->cpu(0).addThread(0, prog, mem, 0, Role::Single);
    h.runAll();
    // The stored value equals the device's first read masked to a byte.
    Device probe(DeviceParams{});
    const std::uint64_t expected = probe.read(devBase) & 0xFF;
    EXPECT_EQ(mem.read(0x200, 8), expected);
}
