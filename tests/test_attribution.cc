/**
 * @file
 * Commit-slot cycle accounting and pipeline tracing:
 *
 *  - the conservation invariant sum(slots) == cycles * commit_width
 *    holds per core in all five modes, and the stats-JSON
 *    "attribution" object mirrors the chip counters exactly;
 *  - rmtsim_batch --embed-stats output is byte-identical at -j1 and
 *    -j4 (the attribution object rides the deterministic record path);
 *  - the attribution report verifies conservation on every record and
 *    decomposes each mode's cycle delta vs base exactly into causes;
 *  - the pipetrace stream is valid Chrome trace-event JSON, identical
 *    across two identical runs, and respects its event cap.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hh"
#include "cpu/smt_cpu.hh"
#include "obs/attribution.hh"
#include "obs/pipetrace.hh"
#include "obs/report.hh"
#include "runner/runner.hh"
#include "sim/simulator.hh"

using namespace rmt;

namespace
{

std::vector<std::string>
modeWorkloads(SimMode mode)
{
    if (mode == SimMode::Crt)
        return {"gcc", "swim"};
    return {"gcc"};
}

SimOptions
tinyOptions(SimMode mode)
{
    SimOptions opts;
    opts.mode = mode;
    opts.warmup_insts = 500;
    opts.measure_insts = 3000;
    return opts;
}

JsonValue
parsed(const std::string &text)
{
    JsonValue v;
    std::string error;
    EXPECT_TRUE(parseJson(text, v, error))
        << error << "\n" << text.substr(0, 400);
    return v;
}

} // namespace

TEST(Attribution, ConservationHoldsInEveryMode)
{
    const SimMode all[] = {SimMode::Base, SimMode::Base2, SimMode::Srt,
                           SimMode::Lockstep, SimMode::Crt};
    for (const SimMode mode : all) {
        SimOptions opts = tinyOptions(mode);
        opts.collect_stats_json = true;
        Simulation sim(modeWorkloads(mode), opts);
        const RunResult r = sim.run();
        ASSERT_TRUE(r.completed) << modeName(mode);

        // Per core: every cycle × commit slot charged exactly once.
        for (unsigned c = 0; c < sim.chip().numCores(); ++c) {
            const SmtCpu &cpu = sim.chip().cpu(c);
            const StallSlots slots = cpu.attributionSlots();
            EXPECT_TRUE(slots.conserves(cpu.cycleCount(),
                                        cpu.commitWidth()))
                << modeName(mode) << " core " << c << ": total "
                << slots.total() << " != " << cpu.cycleCount() << " * "
                << cpu.commitWidth();
            EXPECT_GT(slots[StallCause::Committed], 0u)
                << modeName(mode) << " core " << c;
        }

        // The RunResult aggregate keeps the invariant over cores.
        ASSERT_GT(r.commit_width, 0u) << modeName(mode);
        EXPECT_EQ(r.attribution.total(),
                  r.attribution_core_cycles * r.commit_width)
            << modeName(mode);

        // And the exported stats document mirrors the chip counters.
        const JsonValue doc = parsed(r.stats_json);
        const JsonValue *attr = doc.find("attribution");
        ASSERT_TRUE(attr && attr->isObject()) << modeName(mode);
        EXPECT_EQ(attr->numberOr("width", 0),
                  static_cast<double>(r.commit_width));
        EXPECT_EQ(attr->numberOr("core_cycles", 0),
                  static_cast<double>(r.attribution_core_cycles));
        const JsonValue *slots = attr->find("slots");
        ASSERT_TRUE(slots && slots->isObject()) << modeName(mode);
        double sum = 0;
        for (std::size_t i = 0; i < numStallCauses; ++i) {
            const char *name =
                stallCauseName(static_cast<StallCause>(i));
            const double v = slots->numberOr(name, -1);
            ASSERT_GE(v, 0) << modeName(mode) << " missing " << name;
            EXPECT_EQ(v,
                      static_cast<double>(
                          r.attribution[static_cast<StallCause>(i)]))
                << modeName(mode) << " " << name;
            sum += v;
        }
        EXPECT_EQ(sum, attr->numberOr("core_cycles", 0) *
                           attr->numberOr("width", 0))
            << modeName(mode);
    }
}

TEST(Attribution, ModesChargeTheirSignatureCauses)
{
    // SRT loses slots to the redundancy structures the paper names:
    // slack gating and LVQ waits show up only with a trailing thread.
    SimOptions srt = tinyOptions(SimMode::Srt);
    srt.slack_fetch = 256;
    Simulation sim(modeWorkloads(SimMode::Srt), srt);
    ASSERT_TRUE(sim.run().completed);
    StallSlots slots;
    for (unsigned c = 0; c < sim.chip().numCores(); ++c)
        slots += sim.chip().cpu(c).attributionSlots();
    EXPECT_GT(slots[StallCause::SlackThrottled] +
                  slots[StallCause::LvqEmpty],
              0u);

    Simulation base(modeWorkloads(SimMode::Base),
                    tinyOptions(SimMode::Base));
    ASSERT_TRUE(base.run().completed);
    StallSlots base_slots;
    for (unsigned c = 0; c < base.chip().numCores(); ++c)
        base_slots += base.chip().cpu(c).attributionSlots();
    EXPECT_EQ(base_slots[StallCause::SlackThrottled], 0u);
    EXPECT_EQ(base_slots[StallCause::LvqEmpty], 0u);
}

namespace
{

std::string
campaignJsonl(unsigned jobs)
{
    SimOptions base = tinyOptions(SimMode::Srt);
    base.collect_stats_json = true;
    CampaignBuilder builder("attr", 11);
    builder.base(base)
        .modes({SimMode::Base, SimMode::Srt})
        .mixes({{"gcc"}, {"compress"}});
    const Campaign campaign = builder.build();

    std::ostringstream out;
    JsonlSink::Options sink_opts;
    sink_opts.progress = false;
    sink_opts.include_timing = false;
    JsonlSink sink(out, sink_opts);
    RunnerConfig cfg;
    cfg.jobs = jobs;
    cfg.sink = &sink;
    const auto results = runCampaign(campaign, cfg);
    EXPECT_EQ(results.size(), 4u);
    for (const JobResult &r : results)
        EXPECT_TRUE(r.ok()) << r.error;
    return out.str();
}

} // namespace

TEST(Attribution, EmbeddedStatsAreWorkerCountInvariant)
{
    const std::string serial = campaignJsonl(1);
    const std::string parallel = campaignJsonl(4);
    EXPECT_EQ(serial, parallel);

    // Every record's attribution object conserves on its own.
    std::istringstream is(serial);
    unsigned lines = 0;
    for (std::string line; std::getline(is, line); ++lines) {
        const JsonValue v = parsed(line);
        const JsonValue *stats = v.find("stats");
        ASSERT_TRUE(stats) << line.substr(0, 200);
        const JsonValue *attr = stats->find("attribution");
        ASSERT_TRUE(attr && attr->isObject());
        const JsonValue *slots = attr->find("slots");
        ASSERT_TRUE(slots && slots->isObject());
        double sum = 0;
        for (std::size_t i = 0; i < numStallCauses; ++i) {
            sum += slots->numberOr(
                stallCauseName(static_cast<StallCause>(i)), 0);
        }
        EXPECT_EQ(sum, attr->numberOr("core_cycles", 0) *
                           attr->numberOr("width", 0));
    }
    EXPECT_EQ(lines, 4u);
}

TEST(Attribution, ReportDecomposesDegradationExactly)
{
    unsigned bad = 0;
    std::vector<std::string> lines;
    {
        std::istringstream is(campaignJsonl(1));
        for (std::string line; std::getline(is, line);)
            lines.push_back(line);
    }
    const std::vector<JsonValue> records = parseJsonlLines(lines, bad);
    EXPECT_EQ(bad, 0u);

    ReportOptions opts;
    const AttributionReport report =
        buildAttributionReport(records, opts);
    EXPECT_EQ(report.conservation_violations, 0u);
    EXPECT_EQ(report.with_attribution, 4u);
    ASSERT_EQ(report.modes.size(), 2u);

    const AttributionModeRow &srt = report.modes[1];
    EXPECT_EQ(srt.mode, "srt");
    EXPECT_EQ(srt.with_base, 2u);
    // The decomposition is exact: slot deltas sum to the cycle delta
    // times the width, so every lost cycle has a named cause.
    double dslots = 0;
    for (std::size_t i = 0; i < numStallCauses; ++i)
        dslots += srt.delta_slots[i];
    EXPECT_NEAR(dslots, srt.delta_cycles * srt.width,
                1e-6 * std::max(1.0, std::abs(dslots)));

    const std::string text = formatAttributionReport(report);
    EXPECT_NE(text.find("srt"), std::string::npos);
    EXPECT_NE(text.find("conservation OK"), std::string::npos);

    // A doctored record must trip the invariant check: splicing a
    // digit in front of the committed-slot count breaks the sum.
    std::vector<std::string> doctored = lines;
    const std::string key = "\"slots\":{\"committed\":";
    const auto pos = doctored[0].find(key);
    ASSERT_NE(pos, std::string::npos);
    doctored[0].insert(pos + key.size(), "9");
    const auto records2 = parseJsonlLines(doctored, bad);
    const AttributionReport broken =
        buildAttributionReport(records2, opts);
    EXPECT_GT(broken.conservation_violations, 0u);
}

namespace
{

struct TraceRun
{
    std::string json;
    std::uint64_t events = 0;
    std::uint64_t dropped = 0;
};

TraceRun
tracedRun(std::uint64_t max_events)
{
    Simulation sim({"gcc"}, tinyOptions(SimMode::Srt));
    std::ostringstream os;
    TraceRun out;
    {
        PipeTracer tracer(os, max_events);
        for (unsigned c = 0; c < sim.chip().numCores(); ++c)
            sim.chip().cpu(c).setPipeTracer(&tracer);
        EXPECT_TRUE(sim.run().completed);
        tracer.finish();
        out.events = tracer.events();
        out.dropped = tracer.dropped();
    }
    out.json = os.str();
    return out;
}

} // namespace

TEST(PipeTrace, EmitsValidDeterministicTraceEvents)
{
    const TraceRun a = tracedRun(0);
    const TraceRun b = tracedRun(0);
    EXPECT_EQ(a.json, b.json);
    EXPECT_EQ(a.dropped, 0u);
    EXPECT_GT(a.events, 0u);

    const JsonValue doc = parsed(a.json);
    ASSERT_TRUE(doc.isArray());
    ASSERT_GT(doc.array().size(), 4u);

    const std::set<std::string> stages = {"fetch", "rename", "execute",
                                          "commit"};
    std::set<std::string> seen;
    unsigned meta = 0, spans = 0;
    for (const JsonValue &e : doc.array()) {
        const std::string ph = e.strOr("ph", "?");
        if (ph == "M") {
            ++meta;
            continue;
        }
        ASSERT_EQ(ph, "X");
        ++spans;
        const std::string name = e.strOr("name", "?");
        EXPECT_TRUE(stages.count(name)) << name;
        seen.insert(name);
        EXPECT_GE(e.numberOr("ts", -1), 0.0);
        EXPECT_GE(e.numberOr("dur", -1), 0.0);
        EXPECT_GE(e.numberOr("pid", -1), 0.0);
        const JsonValue *args = e.find("args");
        ASSERT_TRUE(args);
        EXPECT_GE(args->numberOr("seq", -1), 0.0);
        EXPECT_FALSE(args->strOr("disasm", "").empty());
    }
    EXPECT_EQ(seen, stages);
    EXPECT_GE(meta, 2u);        // process_name + thread_name at least
    EXPECT_EQ(spans, a.events);
}

TEST(PipeTrace, EventCapBoundsTheStream)
{
    const TraceRun capped = tracedRun(64);
    // The cap is checked per instruction, so the last instruction may
    // overshoot by its (at most four) stage events.
    EXPECT_LT(capped.events, 64u + 4u);
    EXPECT_GT(capped.dropped, 0u);
    // Still a well-formed document after early cutoff.
    const JsonValue doc = parsed(capped.json);
    ASSERT_TRUE(doc.isArray());
}
