#include <gtest/gtest.h>

#include "common/random.hh"

using namespace rmt;

TEST(Random, DeterministicAcrossInstances)
{
    Random a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Random, DifferentSeedsDiverge)
{
    Random a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_EQ(same, 0);
}

TEST(Random, RangeBounds)
{
    Random r(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.range(17), 17u);
}

TEST(Random, RealBounds)
{
    Random r(9);
    for (int i = 0; i < 10000; ++i) {
        const double v = r.real();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Random, ChanceRoughlyCalibrated)
{
    Random r(11);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        if (r.chance(0.25))
            ++hits;
    }
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}
