/**
 * Observability subsystem tests: the JSON parser round-trip, the
 * whole-chip stats serialization, the cycle-sampled timeline probe,
 * host profiling, the campaign report aggregation, and concurrent
 * stats collection under the campaign runner (the sanitize target).
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hh"
#include "obs/report.hh"
#include "obs/stats_json.hh"
#include "obs/timeline.hh"
#include "runner/runner.hh"
#include "sim/simulator.hh"

using namespace rmt;

namespace
{

SimOptions
tinyOptions(SimMode mode)
{
    SimOptions opts;
    opts.mode = mode;
    opts.warmup_insts = 500;
    opts.measure_insts = 3000;
    return opts;
}

JsonValue
parsed(const std::string &text)
{
    JsonValue v;
    std::string error;
    EXPECT_TRUE(parseJson(text, v, error))
        << error << "\n" << text.substr(0, 400);
    return v;
}

} // namespace

TEST(Json, ParsesScalarsAndNesting)
{
    const JsonValue v = parsed(
        "{\"a\":1.5,\"b\":[1,-2,3e2],\"c\":{\"d\":\"x\\ny\","
        "\"e\":true,\"f\":null}}");
    EXPECT_EQ(v.numberOr("a", 0), 1.5);
    const JsonValue *b = v.find("b");
    ASSERT_TRUE(b && b->isArray());
    EXPECT_EQ(b->array()[1].number(), -2.0);
    EXPECT_EQ(b->array()[2].number(), 300.0);
    const JsonValue *c = v.find("c");
    ASSERT_TRUE(c);
    EXPECT_EQ(c->strOr("d", ""), "x\ny");
    EXPECT_TRUE(c->find("e")->boolean());
    EXPECT_TRUE(c->find("f")->isNull());
}

TEST(Json, RejectsMalformedInput)
{
    JsonValue v;
    EXPECT_FALSE(parseJson("", v));
    EXPECT_FALSE(parseJson("{", v));
    EXPECT_FALSE(parseJson("{\"a\":}", v));
    EXPECT_FALSE(parseJson("[1,2,]", v));
    EXPECT_FALSE(parseJson("{\"a\":1} trailing", v));
    EXPECT_FALSE(parseJson("\"unterminated", v));
}

TEST(Json, EscapeRoundTrips)
{
    const std::string nasty = "q\"b\\s\nn\tt\x01z";
    const JsonValue v = parsed("{\"k\":\"" + jsonEscape(nasty) + "\"}");
    EXPECT_EQ(v.strOr("k", ""), nasty);
}

TEST(Json, NumFormatsCleanly)
{
    EXPECT_EQ(jsonNum(1.75), "1.75");
    EXPECT_EQ(jsonNum(3), "3");
    // Non-finite values must not leak into JSON documents.
    EXPECT_EQ(jsonNum(0.0 / 0.0), "0");
    EXPECT_EQ(jsonNum(1.0 / 0.0), "0");
}

TEST(Obs, StatsJsonCoversTheWholeChip)
{
    Simulation sim({"gcc", "swim"}, tinyOptions(SimMode::Srt));
    const RunResult r = sim.run();
    ASSERT_TRUE(r.completed);

    const JsonValue doc = parsed(sim.statsJson(r));
    EXPECT_EQ(doc.strOr("schema", ""), "rmtsim-stats-v1");
    EXPECT_EQ(doc.strOr("mode", ""), "srt");
    ASSERT_TRUE(doc.find("workloads")->isArray());
    EXPECT_EQ(doc.find("workloads")->array().size(), 2u);
    EXPECT_GT(doc.numberOr("total_cycles", 0), 0.0);

    const JsonValue *groups = doc.find("groups");
    ASSERT_TRUE(groups && groups->isArray());
    std::set<std::string> paths;
    for (const JsonValue &g : groups->array()) {
        paths.insert(g.strOr("path", "?"));
        EXPECT_TRUE(g.find("stats")->isArray());
    }
    // One group per chip component, hierarchical paths.
    EXPECT_TRUE(paths.count("core0"));
    EXPECT_TRUE(paths.count("core0/l1d"));
    EXPECT_TRUE(paths.count("core0/mergebuf"));
    EXPECT_TRUE(paths.count("mem/l2"));
    EXPECT_TRUE(paths.count("mem/main"));
    EXPECT_TRUE(paths.count("pair0"));
    EXPECT_TRUE(paths.count("pair0/lvq"));
    EXPECT_TRUE(paths.count("pair1/cmp"));

    // The Figure 8 store-lifetime histogram is live and carries its
    // full bucket contents.
    bool saw_hist = false;
    for (const JsonValue &g : groups->array()) {
        if (g.strOr("path", "") != "core0")
            continue;
        for (const JsonValue &s : g.find("stats")->array()) {
            if (s.strOr("name", "") != "store_lifetime_hist_t0")
                continue;
            saw_hist = true;
            EXPECT_EQ(s.strOr("kind", ""), "histogram");
            EXPECT_GT(s.numberOr("count", 0), 0.0);
            EXPECT_EQ(s.find("buckets")->array().size(), 16u);
        }
    }
    EXPECT_TRUE(saw_hist);

    // Host profiling rides along and is internally consistent.
    const JsonValue *host = doc.find("host");
    ASSERT_TRUE(host);
    EXPECT_GE(host->numberOr("measure_ms", -1), 0.0);
    EXPECT_GT(host->numberOr("kips", 0), 0.0);
    EXPECT_GE(r.host.totalSeconds(), 0.0);
}

TEST(Obs, ChipWalkMatchesRegistryForSingleSim)
{
    Simulation sim({"compress"}, tinyOptions(SimMode::Base));
    // Every group the chip walk visits is also live in the registry.
    std::vector<const StatGroup *> live;
    StatRegistry::instance().forEach(
        [&](const StatGroup &g) { live.push_back(&g); });
    unsigned visited = 0;
    sim.chip().forEachStatGroup(
        [&](const std::string &path, StatGroup &g) {
            EXPECT_FALSE(path.empty());
            ++visited;
            bool found = false;
            for (const StatGroup *lg : live)
                found = found || lg == &g;
            EXPECT_TRUE(found) << path;
        });
    EXPECT_GT(visited, 5u);
    // And the registry dump is valid JSON covering at least those.
    const JsonValue reg = parsed(registryStatsJson());
    ASSERT_TRUE(reg.isArray());
    EXPECT_GE(reg.array().size(), static_cast<std::size_t>(visited));
}

TEST(Obs, TimelineSamplesEveryActiveCore)
{
    SimOptions opts = tinyOptions(SimMode::Crt);
    opts.timeline_interval = 64;
    Simulation sim({"gcc", "swim"}, opts);
    const RunResult r = sim.run();
    ASSERT_TRUE(r.completed);

    TimelineProbe *probe = sim.timeline();
    ASSERT_NE(probe, nullptr);
    ASSERT_GE(probe->samples().size(), 2u);
    EXPECT_EQ(probe->dropped(), 0u);

    for (const TimelineSample &s : probe->samples()) {
        ASSERT_EQ(s.cores.size(), 2u);      // CRT: both cores sampled
        ASSERT_EQ(s.pairs.size(), 2u);
    }
    // Trailing threads fetch from the LPQ at some point.
    std::uint64_t lpq_fetched = 0;
    for (const TimelineSample &s : probe->samples())
        for (const TimelineCoreSample &cs : s.cores)
            lpq_fetched += cs.fetch_lpq;
    EXPECT_GT(lpq_fetched, 0u);

    // JSONL form: one valid object per line, cycle strictly rising.
    std::ostringstream os;
    probe->writeJsonl(os);
    std::istringstream is(os.str());
    double prev_cycle = -1;
    unsigned lines = 0;
    for (std::string line; std::getline(is, line); ++lines) {
        const JsonValue v = parsed(line);
        const double cycle = v.numberOr("cycle", -1);
        EXPECT_GT(cycle, prev_cycle);
        prev_cycle = cycle;
        EXPECT_EQ(v.find("cores")->array().size(), 2u);
    }
    EXPECT_EQ(lines, probe->samples().size());
}

TEST(Obs, TimelineRingStaysBounded)
{
    SimOptions opts = tinyOptions(SimMode::Base);
    opts.timeline_interval = 16;
    opts.timeline_max_samples = 8;
    Simulation sim({"gcc"}, opts);
    sim.run();

    TimelineProbe *probe = sim.timeline();
    ASSERT_NE(probe, nullptr);
    EXPECT_LE(probe->samples().size(), 8u);
    EXPECT_GT(probe->dropped(), 0u);
    EXPECT_EQ(probe->recorded(),
              probe->dropped() + probe->samples().size());
    // The ring keeps the newest samples.
    EXPECT_GT(probe->samples().back().cycle,
              probe->samples().front().cycle);
}

TEST(Obs, ReportAggregatesDegradationAgainstBase)
{
    // Synthetic two-mix campaign: srt is 30% down on gcc, 10% on swim;
    // one failed job must be counted but not averaged.
    const std::vector<std::string> lines = {
        "{\"options\":{\"mode\":\"base\",\"warmup_insts\":0,"
        "\"measure_insts\":100},\"workloads\":[\"gcc\"],"
        "\"status\":\"ok\",\"threads\":[{\"ipc\":2.0}]}",
        "{\"options\":{\"mode\":\"base\",\"warmup_insts\":0,"
        "\"measure_insts\":100},\"workloads\":[\"swim\"],"
        "\"status\":\"ok\",\"threads\":[{\"ipc\":1.0}]}",
        "{\"options\":{\"mode\":\"srt\",\"warmup_insts\":0,"
        "\"measure_insts\":100},\"workloads\":[\"gcc\"],"
        "\"status\":\"ok\",\"threads\":[{\"ipc\":1.4}]}",
        "{\"options\":{\"mode\":\"srt\",\"warmup_insts\":0,"
        "\"measure_insts\":100},\"workloads\":[\"swim\"],"
        "\"status\":\"ok\",\"threads\":[{\"ipc\":0.9}]}",
        "{\"options\":{\"mode\":\"srt\",\"warmup_insts\":0,"
        "\"measure_insts\":100},\"workloads\":[\"gcc\"],"
        "\"status\":\"failed\",\"error\":\"boom\"}",
        "   ",
        "not json at all",
    };

    unsigned bad = 0;
    const std::vector<JsonValue> records = parseJsonlLines(lines, bad);
    EXPECT_EQ(bad, 1u);
    ASSERT_EQ(records.size(), 5u);

    ReportOptions opts;
    opts.per_mix = true;
    const CampaignReport report = buildReport(records, opts);
    EXPECT_EQ(report.total_jobs, 5u);
    EXPECT_EQ(report.failed_jobs, 1u);
    ASSERT_EQ(report.modes.size(), 2u);

    const ReportModeRow &base = report.modes[0];
    EXPECT_EQ(base.mode, "base");
    EXPECT_DOUBLE_EQ(base.mean_ipc, 1.5);

    const ReportModeRow &srt = report.modes[1];
    EXPECT_EQ(srt.mode, "srt");
    EXPECT_EQ(srt.jobs, 3u);
    EXPECT_EQ(srt.failed, 1u);
    EXPECT_EQ(srt.with_base, 2u);
    // mean of (1 - 1.4/2.0) = 0.30 and (1 - 0.9/1.0) = 0.10
    EXPECT_NEAR(srt.mean_degradation, 0.20, 1e-9);

    const std::string text = formatReport(report, opts);
    EXPECT_NE(text.find("srt"), std::string::npos);
    EXPECT_NE(text.find("-20.0%"), std::string::npos);
    EXPECT_NE(text.find("gcc"), std::string::npos);

    // A budget mismatch must not match the base cell.
    ReportOptions strict;
    std::vector<std::string> mismatched = lines;
    mismatched[2] =
        "{\"options\":{\"mode\":\"srt\",\"warmup_insts\":0,"
        "\"measure_insts\":999},\"workloads\":[\"gcc\"],"
        "\"status\":\"ok\",\"threads\":[{\"ipc\":1.4}]}";
    const auto records2 = parseJsonlLines(mismatched, bad);
    const CampaignReport r2 = buildReport(records2, strict);
    EXPECT_EQ(r2.modes[1].with_base, 1u);
}

// Campaign workers build and tear down whole Simulations concurrently
// while collecting embedded stats; this is the TSan target for the
// registry's add/remove paths and the per-run chip walks.
TEST(Obs, ConcurrentCampaignWithEmbeddedStats)
{
    SimOptions base = tinyOptions(SimMode::Srt);
    base.collect_stats_json = true;

    CampaignBuilder builder("obs", 7);
    builder.base(base)
        .modes({SimMode::Base, SimMode::Srt})
        .mixes({{"gcc"}, {"swim"}, {"compress"}});
    const Campaign campaign = builder.build();

    std::ostringstream out;
    JsonlSink::Options sink_opts;
    sink_opts.progress = false;
    sink_opts.include_timing = false;
    JsonlSink sink(out, sink_opts);

    RunnerConfig cfg;
    cfg.jobs = 4;
    cfg.sink = &sink;
    const auto results = runCampaign(campaign, cfg);

    ASSERT_EQ(results.size(), 6u);
    for (const JobResult &r : results) {
        ASSERT_TRUE(r.ok()) << r.error;
        EXPECT_FALSE(r.run.stats_json.empty());
    }
    // Every emitted line embeds a parseable stats document.
    std::istringstream is(out.str());
    unsigned lines = 0;
    for (std::string line; std::getline(is, line); ++lines) {
        const JsonValue v = parsed(line);
        const JsonValue *stats = v.find("stats");
        ASSERT_TRUE(stats) << line.substr(0, 200);
        EXPECT_EQ(stats->strOr("schema", ""), "rmtsim-stats-v1");
        EXPECT_TRUE(stats->find("groups")->isArray());
    }
    EXPECT_EQ(lines, 6u);
}
