#include <gtest/gtest.h>

#include "mem/cache.hh"

using namespace rmt;

namespace
{

CacheParams
smallCache()
{
    // 4 sets x 2 ways x 64 B = 512 B.
    return CacheParams{"c", 512, 2, 64};
}

} // namespace

TEST(Cache, MissThenFillThenHit)
{
    Cache c(smallCache());
    EXPECT_FALSE(c.access(0x1000));
    c.fill(0x1000);
    EXPECT_TRUE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x103F));      // same block
    EXPECT_FALSE(c.access(0x1040));     // next block
    EXPECT_EQ(c.hits(), 2u);
    EXPECT_EQ(c.misses(), 2u);
}

TEST(Cache, LruEviction)
{
    Cache c(smallCache());
    // Three blocks mapping to the same set (stride = sets*block = 256).
    c.fill(0x0000);
    c.fill(0x0100);
    EXPECT_TRUE(c.access(0x0000));      // touch: 0x0000 is now MRU
    c.fill(0x0200);                     // evicts LRU = 0x0100
    EXPECT_TRUE(c.probe(0x0000));
    EXPECT_FALSE(c.probe(0x0100));
    EXPECT_TRUE(c.probe(0x0200));
}

TEST(Cache, ProbeDoesNotTouchLru)
{
    Cache c(smallCache());
    c.fill(0x0000);
    c.fill(0x0100);
    // Probe (not access) 0x0000, so it stays LRU.
    EXPECT_TRUE(c.probe(0x0000));
    c.fill(0x0200);
    EXPECT_FALSE(c.probe(0x0000));
    EXPECT_TRUE(c.probe(0x0100));
}

TEST(Cache, Invalidate)
{
    Cache c(smallCache());
    c.fill(0x1000);
    c.invalidate(0x1000);
    EXPECT_FALSE(c.probe(0x1000));
}

TEST(Cache, FlushAll)
{
    Cache c(smallCache());
    c.fill(0x0);
    c.fill(0x40);
    c.flushAll();
    EXPECT_FALSE(c.probe(0x0));
    EXPECT_FALSE(c.probe(0x40));
}

TEST(Cache, DoubleFillRefreshes)
{
    Cache c(smallCache());
    c.fill(0x0000);
    c.fill(0x0100);
    c.fill(0x0000);                     // refresh, no duplicate
    c.fill(0x0200);                     // evicts 0x0100
    EXPECT_TRUE(c.probe(0x0000));
    EXPECT_FALSE(c.probe(0x0100));
}

TEST(Cache, DistinctSetsDoNotConflict)
{
    Cache c(smallCache());
    c.fill(0x000);
    c.fill(0x040);
    c.fill(0x080);
    c.fill(0x0C0);
    EXPECT_TRUE(c.probe(0x000));
    EXPECT_TRUE(c.probe(0x040));
    EXPECT_TRUE(c.probe(0x080));
    EXPECT_TRUE(c.probe(0x0C0));
}

TEST(Cache, BlockAlign)
{
    Cache c(smallCache());
    EXPECT_EQ(c.blockAlign(0x1234), 0x1200u);
    EXPECT_EQ(c.blockAlign(0x1240), 0x1240u);
}

TEST(Cache, PaperGeometries)
{
    // Table 1 geometries construct cleanly.
    Cache l1i(CacheParams{"l1i", 64 * 1024, 2, 64});
    Cache l1d(CacheParams{"l1d", 64 * 1024, 2, 64});
    Cache l2(CacheParams{"l2", 3 * 1024 * 1024, 8, 64});
    l2.fill(0xABCDE0);
    EXPECT_TRUE(l2.probe(0xABCDE0));
}
