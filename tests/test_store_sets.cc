#include <gtest/gtest.h>

#include "predictor/store_sets.hh"

using namespace rmt;

TEST(StoreSets, UnknownLoadIsUnconstrained)
{
    StoreSets ss(StoreSetsParams{});
    EXPECT_EQ(ss.loadDependence(0, 0x100), StoreSets::noStore);
}

TEST(StoreSets, ViolationCreatesDependence)
{
    StoreSets ss(StoreSetsParams{});
    const Addr load_pc = 0x100, store_pc = 0x200;
    ss.recordViolation(0, load_pc, store_pc);
    // Store advertises itself as in-flight.
    ss.storeFetched(0, store_pc, 42);
    EXPECT_EQ(ss.loadDependence(0, load_pc), 42u);
    // Once the store completes, the load is free.
    ss.storeCompleted(0, store_pc, 42);
    EXPECT_EQ(ss.loadDependence(0, load_pc), StoreSets::noStore);
}

TEST(StoreSets, YoungestStoreWins)
{
    StoreSets ss(StoreSetsParams{});
    ss.recordViolation(0, 0x100, 0x200);
    ss.storeFetched(0, 0x200, 10);
    ss.storeFetched(0, 0x200, 11);
    EXPECT_EQ(ss.loadDependence(0, 0x100), 11u);
}

TEST(StoreSets, CompletionOfOlderStoreDoesNotClearYounger)
{
    StoreSets ss(StoreSetsParams{});
    ss.recordViolation(0, 0x100, 0x200);
    ss.storeFetched(0, 0x200, 10);
    ss.storeFetched(0, 0x200, 11);
    ss.storeCompleted(0, 0x200, 10);    // stale completion
    EXPECT_EQ(ss.loadDependence(0, 0x100), 11u);
}

TEST(StoreSets, SetMerging)
{
    StoreSets ss(StoreSetsParams{});
    ss.recordViolation(0, 0x100, 0x200);
    ss.recordViolation(0, 0x104, 0x204);
    // Merge the two sets through a shared violation.
    ss.recordViolation(0, 0x100, 0x204);
    ss.storeFetched(0, 0x204, 77);
    EXPECT_EQ(ss.loadDependence(0, 0x100), 77u);
}

TEST(StoreSets, SquashClearsThreadEntries)
{
    StoreSets ss(StoreSetsParams{});
    ss.recordViolation(0, 0x100, 0x200);
    ss.storeFetched(0, 0x200, 5);
    ss.squashThread(0);
    EXPECT_EQ(ss.loadDependence(0, 0x100), StoreSets::noStore);
}

TEST(StoreSets, ThreadsDoNotInterfere)
{
    StoreSets ss(StoreSetsParams{});
    ss.recordViolation(0, 0x100, 0x200);
    ss.storeFetched(0, 0x200, 5);
    // Thread 1's load at the same pc indexes a different SSIT slot.
    EXPECT_EQ(ss.loadDependence(1, 0x100), StoreSets::noStore);
}
