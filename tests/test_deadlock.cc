#include <gtest/gtest.h>

#include "sim/simulator.hh"

using namespace rmt;

namespace
{

/**
 * Deadlock-avoidance stress (paper Section 4.3): shrink every shared
 * resource to a sliver and verify the per-thread reservations still
 * guarantee forward progress — the core's watchdog panics on any hang,
 * so mere completion is the assertion.
 */
SimOptions
tinyMachine(SimMode mode)
{
    SimOptions o;
    o.mode = mode;
    o.warmup_insts = 0;
    o.measure_insts = 3000;
    o.cpu.iq_entries = 32;
    o.cpu.iq_reserved_per_thread = 4;
    o.cpu.rob_entries = 48;
    o.cpu.rob_reserved_per_thread = 6;
    o.cpu.phys_regs = 320;      // 256 architectural + a small margin
    o.cpu.regs_reserved_per_thread = 6;
    o.cpu.load_queue_entries = 8;
    o.cpu.store_queue_entries = 8;
    o.cpu.lvq_entries = 8;
    o.cpu.lpq_entries = 4;
    o.cpu.merge_buffer.entries = 2;
    return o;
}

} // namespace

TEST(Deadlock, TinyMachineBaseCompletes)
{
    const RunResult r = runSimulation({"compress"}, tinyMachine(SimMode::Base));
    EXPECT_TRUE(r.completed);
}

TEST(Deadlock, TinyMachineSrtCompletes)
{
    const RunResult r =
        runSimulation({"compress"}, tinyMachine(SimMode::Srt));
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.detections, 0u);
}

TEST(Deadlock, TinyMachineSrtStoreHeavyCompletes)
{
    const RunResult r =
        runSimulation({"vortex"}, tinyMachine(SimMode::Srt));
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.detections, 0u);
}

TEST(Deadlock, TinyMachineTwoLogicalSrtCompletes)
{
    SimOptions o = tinyMachine(SimMode::Srt);
    o.measure_insts = 2000;
    const RunResult r = runSimulation({"gcc", "li"}, o);
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.detections, 0u);
}

TEST(Deadlock, TinyMachineCrtCompletes)
{
    SimOptions o = tinyMachine(SimMode::Crt);
    o.measure_insts = 2000;
    const RunResult r = runSimulation({"gcc", "swim"}, o);
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.detections, 0u);
}

TEST(Deadlock, MembarStormOnTinyMachine)
{
    // The paper's membar chunk-termination rule under minimal queues.
    ProgramBuilder b("membar_storm");
    b.li(intReg(1), 0x1000);
    b.li(intReg(2), 0);
    b.label("loop");
    b.addi(intReg(2), intReg(2), 1);
    b.stq(intReg(2), intReg(1), 0);
    b.membar();
    b.br("loop");
    const Program prog = b.build();

    SimOptions o = tinyMachine(SimMode::Srt);
    MemSystem ms{MemSystemParams{}};
    SmtParams params = o.cpu;
    params.num_threads = 2;
    SmtCpu cpu(params, ms, 0);

    RedundantPairParams pp;
    pp.leading = HwThread{0, 0};
    pp.trailing = HwThread{0, 1};
    pp.lvq_entries = params.lvq_entries;
    pp.lpq_entries = params.lpq_entries;
    RedundancyManager rm;
    RedundantPair &pair = rm.addPair(pp);

    DataMemory mem(64 * 1024);
    cpu.addThread(0, prog, mem, 0, Role::Leading, &pair);
    cpu.addThread(1, prog, mem, 0, Role::Trailing, &pair);
    cpu.setTarget(0, 2000);
    cpu.setTarget(1, 2000);
    while (!cpu.allThreadsDone() && cpu.cycle() < 500000)
        cpu.tick();
    EXPECT_TRUE(cpu.allThreadsDone());
}

TEST(Deadlock, SqStarvationBetweenThreads)
{
    // Two store-heavy logical threads on shared tiny queues: the
    // reservations must prevent one pair from wedging the other.
    SimOptions o = tinyMachine(SimMode::Srt);
    o.measure_insts = 1500;
    const RunResult r = runSimulation({"vortex", "compress"}, o);
    EXPECT_TRUE(r.completed);
}
