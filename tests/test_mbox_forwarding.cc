#include <gtest/gtest.h>

#include "cpu/smt_cpu.hh"
#include "mem/mem_system.hh"

using namespace rmt;

namespace
{

constexpr RegIndex r1 = intReg(1);
constexpr RegIndex r2 = intReg(2);
constexpr RegIndex r3 = intReg(3);
constexpr RegIndex r4 = intReg(4);
constexpr RegIndex r5 = intReg(5);

/** Run a program on a cosim-checked single-thread core and return the
 *  quadword at @p result_addr. */
std::uint64_t
runAndRead(const Program &prog, Addr result_addr)
{
    DataMemory mem(64 * 1024);
    MemSystem ms{MemSystemParams{}};
    SmtParams p;
    p.num_threads = 1;
    p.cosim = true;     // any forwarding bug panics via cosim too
    SmtCpu cpu(p, ms, 0);
    cpu.addThread(0, prog, mem, 0, Role::Single);
    while (!cpu.threadHalted(0) && cpu.cycle() < 200000)
        cpu.tick();
    EXPECT_TRUE(cpu.threadHalted(0));
    return mem.read(result_addr, 8);
}

struct ForwardCase
{
    unsigned store_size;
    int store_off;
    unsigned load_size;
    int load_off;
};

void
emitStore(ProgramBuilder &b, unsigned size, RegIndex val, RegIndex base,
          int off)
{
    switch (size) {
      case 1: b.stb(val, base, off); break;
      case 2: b.sth(val, base, off); break;
      case 4: b.stw(val, base, off); break;
      default: b.stq(val, base, off); break;
    }
}

void
emitLoad(ProgramBuilder &b, unsigned size, RegIndex dst, RegIndex base,
         int off)
{
    switch (size) {
      case 1: b.ldb(dst, base, off); break;
      case 2: b.ldh(dst, base, off); break;
      case 4: b.ldw(dst, base, off); break;
      default: b.ldq(dst, base, off); break;
    }
}

class StoreLoadForwarding
    : public ::testing::TestWithParam<ForwardCase>
{
};

} // namespace

/**
 * Property: for every store-size/load-size/offset combination — full
 * forwards, partial overlaps (which force the store to drain), and
 * disjoint accesses — the out-of-order machine's memory semantics match
 * the in-order reference exactly.
 */
TEST_P(StoreLoadForwarding, MatchesReferenceModel)
{
    const ForwardCase c = GetParam();
    ProgramBuilder b("fwd");
    b.li(r1, 0x1000);
    b.li(r2, 0x1122334455667788);
    // Background value so partial loads see merged bytes.
    b.stq(r2, r1, 0);
    b.stq(r2, r1, 8);
    b.membar();
    b.li(r3, 0x99AABBCCDDEEFF00);
    emitStore(b, c.store_size, r3, r1, c.store_off);
    emitLoad(b, c.load_size, r4, r1, c.load_off);
    b.li(r5, 0x2000);
    b.stq(r4, r5, 0);
    b.halt();

    // Golden value from the reference model.
    const Program prog = b.build();
    DataMemory ref_mem(64 * 1024);
    ArchState ref(prog, ref_mem);
    ref.run(100);
    const std::uint64_t expected = ref_mem.read(0x2000, 8);

    EXPECT_EQ(runAndRead(prog, 0x2000), expected)
        << "store size " << c.store_size << " @" << c.store_off
        << ", load size " << c.load_size << " @" << c.load_off;
}

INSTANTIATE_TEST_SUITE_P(
    AllOverlaps, StoreLoadForwarding,
    ::testing::Values(
        // Full forwarding: store covers load.
        ForwardCase{8, 0, 8, 0}, ForwardCase{8, 0, 4, 0},
        ForwardCase{8, 0, 4, 4}, ForwardCase{8, 0, 2, 6},
        ForwardCase{8, 0, 1, 7}, ForwardCase{4, 4, 2, 4},
        ForwardCase{4, 4, 1, 5}, ForwardCase{2, 2, 1, 3},
        // Partial overlap: load wider than the store (drain path).
        ForwardCase{1, 0, 8, 0}, ForwardCase{2, 0, 8, 0},
        ForwardCase{4, 0, 8, 0}, ForwardCase{1, 3, 4, 0},
        ForwardCase{2, 6, 8, 0}, ForwardCase{4, 2, 8, 0},
        // Offset overlaps (neither contains the other).
        ForwardCase{4, 0, 4, 2}, ForwardCase{8, 0, 8, 4},
        // Disjoint: load must bypass the store entirely.
        ForwardCase{8, 0, 8, 8}, ForwardCase{4, 0, 4, 4},
        ForwardCase{1, 0, 1, 1}));

TEST(MemOrdering, ViolationRecoversAndStoreSetsLearn)
{
    // A store whose address resolves late (long dependency chain),
    // followed by a load to the same location: the load speculates,
    // gets squashed by the violation, and store sets learn the pair so
    // later iterations wait.  Architectural results stay exact (cosim).
    ProgramBuilder b("viol");
    b.li(r1, 0x1000);
    b.li(r2, 0);            // loop counter
    b.li(r5, 0);            // accumulator
    b.label("loop");
    // Slow address: serial multiply chain onto the base.
    b.muli(r3, r2, 1);
    b.muli(r3, r3, 1);
    b.muli(r3, r3, 1);
    b.andi(r3, r3, 0);      // ends up 0: same slot every iteration
    b.add(r3, r1, r3);
    b.addi(r4, r2, 100);
    b.stq(r4, r3, 0);       // late-addressed store
    b.ldq(r4, r1, 0);       // early load of the same address
    b.add(r5, r5, r4);
    b.addi(r2, r2, 1);
    b.slti(r4, r2, 50);
    b.bne(r4, intReg(0), "loop");
    b.li(r3, 0x2000);
    b.stq(r5, r3, 0);
    b.halt();

    const Program prog = b.build();
    DataMemory ref_mem(64 * 1024);
    ArchState ref(prog, ref_mem);
    ref.run(2000);
    const std::uint64_t expected = ref_mem.read(0x2000, 8);

    DataMemory mem(64 * 1024);
    MemSystem ms{MemSystemParams{}};
    SmtParams p;
    p.num_threads = 1;
    p.cosim = true;
    SmtCpu cpu(p, ms, 0);
    cpu.addThread(0, prog, mem, 0, Role::Single);
    while (!cpu.threadHalted(0) && cpu.cycle() < 200000)
        cpu.tick();
    ASSERT_TRUE(cpu.threadHalted(0));
    EXPECT_EQ(mem.read(0x2000, 8), expected);
    // At least one violation happened and was recovered from.
    EXPECT_GE(cpu.memOrderViolations(), 1u);
    // Store sets kept it from happening on every one of 50 iterations.
    EXPECT_LT(cpu.memOrderViolations(), 40u);
}

TEST(MemOrdering, IndependentAddressesNeverViolate)
{
    ProgramBuilder b("noviol");
    b.li(r1, 0x1000);
    b.li(r2, 0);
    b.label("loop");
    b.slli(r3, r2, 3);
    b.add(r3, r1, r3);
    b.stq(r2, r3, 0);           // store to slot i
    b.ldq(r4, r3, 4096);        // load from a disjoint region
    b.addi(r2, r2, 1);
    b.slti(r4, r2, 100);
    b.bne(r4, intReg(0), "loop");
    b.halt();

    const Program prog = b.build();
    DataMemory mem(64 * 1024);
    MemSystem ms{MemSystemParams{}};
    SmtParams p;
    p.num_threads = 1;
    p.cosim = true;
    SmtCpu cpu(p, ms, 0);
    cpu.addThread(0, prog, mem, 0, Role::Single);
    while (!cpu.threadHalted(0) && cpu.cycle() < 200000)
        cpu.tick();
    ASSERT_TRUE(cpu.threadHalted(0));
    EXPECT_EQ(cpu.memOrderViolations(), 0u);
}
