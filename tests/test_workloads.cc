#include <gtest/gtest.h>

#include <cstring>

#include "isa/arch_state.hh"
#include "workloads/workloads.hh"

using namespace rmt;

namespace
{

class AllWorkloads : public ::testing::TestWithParam<std::string>
{
};

} // namespace

TEST(Workloads, EighteenSpec95Names)
{
    EXPECT_EQ(spec95Names().size(), 18u);
}

TEST_P(AllWorkloads, BuildsAndRunsFunctionally)
{
    const Workload w = buildWorkload(GetParam());
    EXPECT_EQ(w.name, GetParam());
    EXPECT_GT(w.program.size(), 4u);

    auto mem = w.makeMemory();
    ArchState st(w.program, *mem);
    const std::uint64_t ran = st.run(50000);
    // Kernels loop forever: they must consume the whole budget without
    // halting or escaping the text segment.
    EXPECT_EQ(ran, 50000u);
    EXPECT_FALSE(st.halted());
    EXPECT_TRUE(w.program.contains(st.pc()));
}

TEST_P(AllWorkloads, DeterministicMemoryImage)
{
    const Workload w = buildWorkload(GetParam());
    auto m1 = w.makeMemory();
    auto m2 = w.makeMemory();
    ASSERT_EQ(m1->size(), m2->size());
    EXPECT_EQ(0, std::memcmp(m1->data(), m2->data(), m1->size()));
}

TEST_P(AllWorkloads, ExecutesStoresAndLoads)
{
    // Every kernel must produce output-comparison traffic (stores) —
    // otherwise SRT has nothing to verify.
    const Workload w = buildWorkload(GetParam());
    auto mem = w.makeMemory();
    ArchState st(w.program, *mem);
    unsigned stores = 0;
    for (int i = 0; i < 30000; ++i) {
        if (st.step().is_store)
            ++stores;
    }
    EXPECT_GT(stores, 100u) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Spec95, AllWorkloads,
                         ::testing::ValuesIn(spec95Names()),
                         [](const auto &info) { return info.param; });

TEST(WorkloadMixes, TwoProgramMixesMatchPaper)
{
    const auto mixes = twoProgramMixes();
    EXPECT_EQ(mixes.size(), 6u);    // C(4,2) over {gcc,go,fpppp,swim}
    for (const auto &mix : mixes) {
        EXPECT_EQ(mix.size(), 2u);
        EXPECT_NE(mix[0], mix[1]);
    }
}

TEST(WorkloadMixes, FourProgramMixesMatchPaper)
{
    const auto mixes = fourProgramMixes();
    EXPECT_EQ(mixes.size(), 15u);   // paper Section 6.2
    for (const auto &mix : mixes)
        EXPECT_EQ(mix.size(), 4u);
}

TEST(WorkloadMixes, UnknownNameIsFatal)
{
    EXPECT_DEATH(
        {
            Workload w = buildWorkload("specfp2077");
            (void)w;
        },
        "unknown workload");
}
