/**
 * @file
 * fork()-per-trial executor (src/runner/fork_executor.*) and its pipe
 * wire protocol (src/runner/wire.*):
 *
 *  - the JobResult codec round-trips every field through a frame, even
 *    delivered one byte at a time, and the decoder rejects bad magic,
 *    oversized payloads, truncation and garbage payloads instead of
 *    yielding a short record;
 *  - forked campaigns are verdict-identical to --no-fork campaigns,
 *    with and without a shared SnapshotCache, including trials whose
 *    strike lands before the first snapshot barrier (scratch prefix);
 *  - the warmed-simulation cache builds one parent simulation per
 *    (grid point, barrier), not one per trial;
 *  - the per-trial watchdog SIGKILLs an overrunning child and records
 *    a timed-out failure;
 *  - invalid specs and sink delivery behave exactly like the
 *    in-process runner (recorded failure, id-ordered records).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "rmt/fault_oracle.hh"
#include "runner/fork_executor.hh"
#include "runner/runner.hh"
#include "runner/wire.hh"

using namespace rmt;

namespace
{

SimOptions
trialOptions()
{
    SimOptions o;
    o.mode = SimMode::Srt;
    o.warmup_insts = 200;
    o.measure_insts = 1500;
    return o;
}

/** A JobResult with every serialised field away from its default. */
JobResult
fullResult()
{
    JobResult r;
    r.id = 77;
    r.label = "wire \"quoted\" label";
    r.status = JobStatus::Ok;
    r.error = "non-fatal note";
    r.attempts = 2;
    r.timed_out = false;
    r.wall_seconds = 1.25;
    r.run.total_cycles = 123456;
    r.run.completed = true;
    r.run.outcome = Outcome::Completed;
    r.run.detections = 3;
    r.run.recoveries = 1;
    r.run.store_comparisons = 999;
    r.run.store_mismatches = 2;
    r.run.branch_mispredicts = 41;
    r.run.stats_json = "{\"stats\":{\"x\":1}}";
    r.mean_efficiency = 0.875;
    r.efficiencies = {0.9, 0.85};
    r.extra = {{"snapshot_hit", 1.0}, {"snapshot_cycles_saved", 4242.0}};
    r.has_verdict = true;
    r.verdict = FaultVerdict::Detected;
    r.detection_latency = 17.5;
    return r;
}

void
expectSameResult(const JobResult &a, const JobResult &b)
{
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.label, b.label);
    EXPECT_EQ(a.status, b.status);
    EXPECT_EQ(a.error, b.error);
    EXPECT_EQ(a.attempts, b.attempts);
    EXPECT_EQ(a.timed_out, b.timed_out);
    EXPECT_DOUBLE_EQ(a.wall_seconds, b.wall_seconds);
    EXPECT_EQ(a.run.total_cycles, b.run.total_cycles);
    EXPECT_EQ(a.run.completed, b.run.completed);
    EXPECT_EQ(a.run.outcome, b.run.outcome);
    EXPECT_EQ(a.run.detections, b.run.detections);
    EXPECT_EQ(a.run.recoveries, b.run.recoveries);
    EXPECT_EQ(a.run.store_comparisons, b.run.store_comparisons);
    EXPECT_EQ(a.run.store_mismatches, b.run.store_mismatches);
    EXPECT_EQ(a.run.branch_mispredicts, b.run.branch_mispredicts);
    EXPECT_EQ(a.run.stats_json, b.run.stats_json);
    EXPECT_DOUBLE_EQ(a.mean_efficiency, b.mean_efficiency);
    EXPECT_EQ(a.efficiencies, b.efficiencies);
    EXPECT_EQ(a.extra, b.extra);
    EXPECT_EQ(a.has_verdict, b.has_verdict);
    EXPECT_EQ(a.verdict, b.verdict);
    EXPECT_DOUBLE_EQ(a.detection_latency, b.detection_latency);
}

/** The fields a campaign's verdicts and tables are built from. */
void
expectSameVerdict(const JobResult &a, const JobResult &b)
{
    EXPECT_EQ(a.ok(), b.ok()) << a.label << ": " << a.error << " / "
                              << b.error;
    EXPECT_EQ(a.has_verdict, b.has_verdict) << a.label;
    EXPECT_EQ(a.verdict, b.verdict) << a.label;
    EXPECT_DOUBLE_EQ(a.detection_latency, b.detection_latency)
        << a.label;
    EXPECT_EQ(a.run.total_cycles, b.run.total_cycles) << a.label;
    EXPECT_EQ(a.run.outcome, b.run.outcome) << a.label;
    EXPECT_EQ(a.extra, b.extra) << a.label;
}

/** Deterministic reg-strike trials across the run, with the oracle
 *  attached so every record carries a verdict. */
std::vector<JobSpec>
faultCampaign(const SimOptions &options, const FaultOracle &oracle,
              unsigned trials, Cycle first_strike, Cycle stride)
{
    std::vector<JobSpec> jobs;
    for (unsigned t = 0; t < trials; ++t) {
        JobSpec spec;
        spec.id = t;
        spec.label = "trial" + std::to_string(t);
        spec.workloads = {"compress"};
        spec.options = options;
        spec.seed = 0xF0'52'4Bull + t;
        FaultRecord f;
        f.kind = FaultRecord::Kind::TransientReg;
        f.when = first_strike + stride * t;
        f.tid = 0;
        f.reg = static_cast<RegIndex>(1 + t % 15);
        f.bit = (11 * t) % 64;
        spec.faults.push_back(f);
        attachFaultOracle(spec, &oracle);
        jobs.push_back(std::move(spec));
    }
    return jobs;
}

class CollectingSink : public ResultSink
{
  public:
    void record(const JobSpec &spec, const JobResult &result) override
    {
        ids.push_back(spec.id);
        results.push_back(result);
    }

    std::vector<std::uint64_t> ids;
    std::vector<JobResult> results;
};

} // namespace

TEST(Wire, JobResultRoundTripsThroughAFrame)
{
    const JobResult original = fullResult();
    const std::string framed = wire::frame(wire::encodeJobResult(original));

    // Feed the frame one byte at a time: the decoder must not care how
    // the pipe chunks its reads.
    wire::FrameDecoder decoder;
    std::string payload;
    unsigned records = 0;
    for (char byte : framed) {
        decoder.feed(&byte, 1);
        std::string p;
        while (decoder.next(p)) {
            payload = p;
            ++records;
        }
    }
    ASSERT_EQ(records, 1u);
    EXPECT_FALSE(decoder.truncated());
    expectSameResult(original, wire::decodeJobResult(payload));
}

TEST(Wire, DecoderYieldsMultipleFramesFromOneBuffer)
{
    JobResult a = fullResult();
    JobResult b = fullResult();
    b.id = 78;
    b.status = JobStatus::Failed;
    b.error = "second";
    const std::string stream = wire::frame(wire::encodeJobResult(a)) +
                               wire::frame(wire::encodeJobResult(b));

    wire::FrameDecoder decoder;
    decoder.feed(stream.data(), stream.size());
    std::string p;
    std::vector<JobResult> out;
    while (decoder.next(p))
        out.push_back(wire::decodeJobResult(p));
    ASSERT_EQ(out.size(), 2u);
    expectSameResult(a, out[0]);
    expectSameResult(b, out[1]);
    EXPECT_FALSE(decoder.truncated());
}

TEST(Wire, DecoderRejectsCorruptStreams)
{
    // Wrong magic: provably corrupt at the first header.
    {
        wire::FrameDecoder decoder;
        const std::string junk = "JUNKJUNKJUNK";
        std::string p;
        EXPECT_THROW(
            {
                decoder.feed(junk.data(), junk.size());
                decoder.next(p);
            },
            wire::WireError);
    }

    // A length above the payload cap: rejected before buffering it.
    {
        wire::FrameDecoder decoder;
        std::string header("RMTW", 4);
        const std::uint32_t huge = wire::maxPayloadBytes + 1;
        header.append(reinterpret_cast<const char *>(&huge), 4);
        std::string p;
        EXPECT_THROW(
            {
                decoder.feed(header.data(), header.size());
                decoder.next(p);
            },
            wire::WireError);
    }

    // A frame cut mid-payload: no record, flagged as truncated.
    {
        const std::string framed =
            wire::frame(wire::encodeJobResult(fullResult()));
        wire::FrameDecoder decoder;
        decoder.feed(framed.data(), framed.size() - 5);
        std::string p;
        EXPECT_FALSE(decoder.next(p));
        EXPECT_TRUE(decoder.truncated());
    }
}

TEST(Wire, DecodeRejectsTruncatedAndGarbagePayloads)
{
    const std::string payload = wire::encodeJobResult(fullResult());
    EXPECT_THROW(wire::decodeJobResult(""), wire::WireError);
    EXPECT_THROW(wire::decodeJobResult(payload.substr(0, 3)),
                 wire::WireError);
    EXPECT_THROW(
        wire::decodeJobResult(payload.substr(0, payload.size() - 1)),
        wire::WireError);

    // A bumped codec version must be rejected, not misparsed.
    std::string bumped = payload;
    bumped[0] = static_cast<char>(wire::codecVersion + 1);
    EXPECT_THROW(wire::decodeJobResult(bumped), wire::WireError);
}

TEST(ForkExecutor, ForkedVerdictsMatchInProcess)
{
    if (!ForkExecutor::supported())
        GTEST_SKIP() << "no fork() on this platform";

    const SimOptions options = trialOptions();
    const FaultOracle oracle(
        FaultOracle::goldenImage({"compress"}, options));
    const auto jobs = faultCampaign(options, oracle, 6, 150, 90);

    ForkExecutorConfig forked;
    forked.use_fork = true;
    ForkExecutor fork_exec(forked);
    const auto fork_results = fork_exec.run(jobs);

    ForkExecutorConfig inproc;
    inproc.use_fork = false;        // the --no-fork path
    ForkExecutor inproc_exec(inproc);
    const auto inproc_results = inproc_exec.run(jobs);

    ASSERT_EQ(fork_results.size(), jobs.size());
    ASSERT_EQ(inproc_results.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(fork_results[i].id, jobs[i].id);
        expectSameVerdict(fork_results[i], inproc_results[i]);
    }
    EXPECT_EQ(fork_exec.stats().forked, jobs.size());
    EXPECT_EQ(fork_exec.stats().inprocess, 0u);
    EXPECT_EQ(fork_exec.stats().wire_errors, 0u);
    EXPECT_EQ(inproc_exec.stats().forked, 0u);
    EXPECT_EQ(inproc_exec.stats().inprocess, jobs.size());
}

TEST(ForkExecutor, SnapshotCampaignMatchesAndWarmsOncePerBarrier)
{
    if (!ForkExecutor::supported())
        GTEST_SKIP() << "no fork() on this platform";

    SimOptions options = trialOptions();
    // Probe the plain run, then barrier it: quiesce drains stretch the
    // barriered run, so strikes are placed against the barriered total.
    Cycle total;
    {
        Simulation probe({"compress"}, options);
        total = probe.run().total_cycles;
    }
    options.snapshot_every = std::max<Cycle>(1, total / 4);
    {
        Simulation probe({"compress"}, options);
        total = probe.run().total_cycles;
    }

    const FaultOracle oracle(
        FaultOracle::goldenImage({"compress"}, options));
    // Strikes sweep the whole run: the early ones land before the
    // first barrier (scratch prefix, satellite of the snapshot path),
    // the late ones restore from a mid-run snapshot.
    const auto jobs =
        faultCampaign(options, oracle, 6, total / 12, total / 8);

    SnapshotCache fork_cache;
    ForkExecutorConfig forked;
    forked.use_fork = true;
    forked.runner.snapshots = &fork_cache;
    ForkExecutor fork_exec(forked);
    const auto fork_results = fork_exec.run(jobs);

    SnapshotCache inproc_cache;
    ForkExecutorConfig inproc;
    inproc.use_fork = false;
    inproc.runner.snapshots = &inproc_cache;
    ForkExecutor inproc_exec(inproc);
    const auto inproc_results = inproc_exec.run(jobs);

    ASSERT_EQ(fork_results.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i)
        expectSameVerdict(fork_results[i], inproc_results[i]);

    // One warmed parent simulation per distinct barrier, not per
    // trial; every distinct barrier of the strike sweep shares one.
    EXPECT_EQ(fork_exec.stats().forked, jobs.size());
    EXPECT_GE(fork_exec.stats().warm_builds, 1u);
    EXPECT_LT(fork_exec.stats().warm_builds, jobs.size());
    EXPECT_EQ(fork_cache.producerRuns(), 1u);
}

TEST(ForkExecutor, WatchdogKillsAnOverrunningChild)
{
    if (!ForkExecutor::supported())
        GTEST_SKIP() << "no fork() on this platform";

    JobSpec spec;
    spec.id = 0;
    spec.label = "hog";
    spec.workloads = {"compress"};
    spec.options = trialOptions();
    // A run this long takes several seconds; the watchdog must reap
    // the child after ~0.25 s instead.
    spec.options.measure_insts = 50'000'000;
    FaultRecord f;
    f.kind = FaultRecord::Kind::TransientReg;
    f.when = 40'000'000;
    f.reg = 1;
    spec.faults.push_back(f);

    ForkExecutorConfig cfg;
    cfg.use_fork = true;
    cfg.runner.timeout_seconds = 0.25;
    // A watchdog kill is an abnormal child death, so it is retryable;
    // one attempt keeps this test at a single slow child.
    cfg.runner.max_attempts = 1;
    ForkExecutor exec(cfg);
    const auto results = exec.run({spec});

    ASSERT_EQ(results.size(), 1u);
    EXPECT_FALSE(results[0].ok());
    EXPECT_TRUE(results[0].timed_out);
    EXPECT_TRUE(results[0].quarantined);
    EXPECT_EQ(exec.stats().killed, 1u);
    EXPECT_EQ(exec.stats().quarantined, 1u);
    EXPECT_EQ(exec.stats().forked, 0u);
}

TEST(ForkExecutor, CrashedChildIsRetriedAndThenSucceeds)
{
    if (!ForkExecutor::supported())
        GTEST_SKIP() << "no fork() on this platform";

    // The marker file carries "already crashed once" across the fork
    // boundary: the first child dies before writing its record, the
    // re-forked child sees the marker and completes normally.
    const std::string marker =
        std::string(::testing::TempDir()) + "rmtsim_crash_once.marker";
    std::remove(marker.c_str());

    JobSpec spec;
    spec.id = 0;
    spec.label = "crash-once";
    spec.workloads = {"compress"};
    spec.options = trialOptions();
    spec.seed = 0xC0FFEE;
    spec.post_run = [marker](Simulation &, const RunResult &,
                             JobResult &) {
        if (std::ifstream(marker).good())
            return;
        std::ofstream(marker).put('x');
        std::_Exit(9);      // die without a wire record
    };

    ForkExecutorConfig cfg;
    cfg.use_fork = true;
    cfg.retry_backoff_ms = 0;
    ForkExecutor exec(cfg);
    const auto results = exec.run({spec});
    std::remove(marker.c_str());

    ASSERT_EQ(results.size(), 1u);
    EXPECT_TRUE(results[0].ok()) << results[0].error;
    EXPECT_FALSE(results[0].quarantined);
    EXPECT_EQ(exec.stats().retries, 1u);
    EXPECT_EQ(exec.stats().quarantined, 0u);
}

TEST(ForkExecutor, PersistentCrasherIsQuarantined)
{
    if (!ForkExecutor::supported())
        GTEST_SKIP() << "no fork() on this platform";

    JobSpec spec;
    spec.id = 0;
    spec.label = "always-crashes";
    spec.workloads = {"compress"};
    spec.options = trialOptions();
    spec.post_run = [](Simulation &, const RunResult &, JobResult &) {
        std::_Exit(9);
    };

    ForkExecutorConfig cfg;
    cfg.use_fork = true;
    cfg.retry_backoff_ms = 0;
    cfg.runner.max_attempts = 3;
    ForkExecutor exec(cfg);
    const auto results = exec.run({spec});

    // The campaign finishes degraded instead of dying: the trial is
    // recorded as a quarantined failure after burning every attempt.
    ASSERT_EQ(results.size(), 1u);
    EXPECT_FALSE(results[0].ok());
    EXPECT_TRUE(results[0].quarantined);
    EXPECT_FALSE(results[0].error.empty());
    EXPECT_EQ(results[0].attempts, 3u);
    EXPECT_EQ(exec.stats().retries, 2u);
    EXPECT_EQ(exec.stats().quarantined, 1u);
}

TEST(ForkExecutor, StopFlagDrainsWithoutStartingNewTrials)
{
    const SimOptions options = trialOptions();

    // Pre-set stop: nothing starts at all (fork or not).
    {
        std::atomic<bool> stop{true};
        ForkExecutorConfig cfg;
        cfg.use_fork = ForkExecutor::supported();
        cfg.runner.stop = &stop;
        ForkExecutor exec(cfg);
        JobSpec spec;
        spec.id = 0;
        spec.label = "never-runs";
        spec.workloads = {"compress"};
        spec.options = options;
        EXPECT_TRUE(exec.run({spec, spec, spec}).empty());
    }

    // Stop raised mid-campaign (by the first trial's own hook, which
    // only works in-process): the in-flight trial completes and is
    // recorded, the rest never start.
    {
        std::atomic<bool> stop{false};
        std::vector<JobSpec> jobs;
        for (unsigned i = 0; i < 3; ++i) {
            JobSpec spec;
            spec.id = i;
            spec.label = "drain" + std::to_string(i);
            spec.workloads = {"compress"};
            spec.options = options;
            jobs.push_back(std::move(spec));
        }
        jobs[0].post_run = [&stop](Simulation &, const RunResult &,
                                   JobResult &) {
            stop.store(true);
        };

        ForkExecutorConfig cfg;
        cfg.use_fork = false;
        cfg.runner.stop = &stop;
        ForkExecutor exec(cfg);
        const auto results = exec.run(jobs);
        ASSERT_EQ(results.size(), 1u);
        EXPECT_TRUE(results[0].ok()) << results[0].error;
        EXPECT_EQ(results[0].id, 0u);
    }
}

TEST(ForkExecutor, CorruptCachedSnapshotFallsBackToScratch)
{
    SimOptions options = trialOptions();
    Cycle total;
    {
        Simulation probe({"compress"}, options);
        total = probe.run().total_cycles;
    }
    options.snapshot_every = std::max<Cycle>(1, total / 4);
    {
        Simulation probe({"compress"}, options);
        total = probe.run().total_cycles;
    }

    JobSpec spec;
    spec.id = 0;
    spec.label = "corrupt-cache";
    spec.workloads = {"compress"};
    spec.options = options;
    FaultRecord f;
    f.kind = FaultRecord::Kind::TransientReg;
    f.when = total / 2;
    f.reg = 2;
    f.bit = 5;
    spec.faults.push_back(f);

    // Pre-seed the cache with garbage where a snapshot should be:
    // restore-time validation must reject it without touching machine
    // state, and the trial must fall back to a from-scratch run.
    SnapshotCache cache;
    {
        SnapshotSet set;
        CachedSnapshot bad;
        bad.cycle = 1;
        bad.image = std::make_shared<const std::string>(
            "this is not a snapshot image");
        set.push_back(std::move(bad));
        cache.insert({"compress"}, options,
                     std::make_shared<const SnapshotSet>(std::move(set)));
    }

    RunnerConfig cached_cfg;
    cached_cfg.snapshots = &cache;
    const JobResult degraded = executeJob(spec, cached_cfg);
    ASSERT_TRUE(degraded.ok()) << degraded.error;
    double hit = -1, fallback = 0;
    for (const auto &[key, value] : degraded.extra) {
        if (key == "snapshot_hit")
            hit = value;
        if (key == "snapshot_scratch_fallback")
            fallback = value;
    }
    EXPECT_EQ(hit, 0.0);
    EXPECT_EQ(fallback, 1.0);

    // Bit-identical to a run that never saw a snapshot cache.
    RunnerConfig plain_cfg;
    const JobResult plain = executeJob(spec, plain_cfg);
    ASSERT_TRUE(plain.ok()) << plain.error;
    EXPECT_EQ(degraded.run.total_cycles, plain.run.total_cycles);
    EXPECT_EQ(degraded.run.outcome, plain.run.outcome);
    EXPECT_EQ(degraded.run.detections, plain.run.detections);

    // The rejected set was evicted: the next trial re-produces clean
    // snapshots (one producer run) and restores one for real.
    const JobResult again = executeJob(spec, cached_cfg);
    ASSERT_TRUE(again.ok()) << again.error;
    double hit2 = -1;
    for (const auto &[key, value] : again.extra) {
        if (key == "snapshot_hit")
            hit2 = value;
    }
    EXPECT_EQ(hit2, 1.0);
    EXPECT_EQ(cache.producerRuns(), 1u);
    EXPECT_EQ(again.run.total_cycles, plain.run.total_cycles);
    EXPECT_EQ(again.run.outcome, plain.run.outcome);
}

TEST(ForkExecutor, InvalidSpecBecomesARecordedFailure)
{
    JobSpec spec;
    spec.id = 0;
    spec.label = "bogus workload";
    spec.workloads = {"no-such-workload"};
    spec.options = trialOptions();

    ForkExecutorConfig cfg;
    cfg.use_fork = true;
    ForkExecutor exec(cfg);
    const auto results = exec.run({spec});

    ASSERT_EQ(results.size(), 1u);
    EXPECT_FALSE(results[0].ok());
    EXPECT_FALSE(results[0].error.empty());
    // The bad spec never reached a fork; it was recorded in-process.
    EXPECT_EQ(exec.stats().forked, 0u);
    EXPECT_GE(exec.stats().inprocess, 1u);
}

TEST(ForkExecutor, SinkReceivesEveryRecordInJobOrder)
{
    if (!ForkExecutor::supported())
        GTEST_SKIP() << "no fork() on this platform";

    const SimOptions options = trialOptions();
    const FaultOracle oracle(
        FaultOracle::goldenImage({"compress"}, options));
    const auto jobs = faultCampaign(options, oracle, 4, 200, 120);

    CollectingSink sink;
    ForkExecutorConfig cfg;
    cfg.use_fork = true;
    cfg.runner.sink = &sink;
    ForkExecutor exec(cfg);
    const auto results = exec.run(jobs);

    ASSERT_EQ(sink.ids.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(sink.ids[i], jobs[i].id);
        expectSameVerdict(sink.results[i], results[i]);
    }
}
