#include <gtest/gtest.h>

#include <sstream>

#include "sim/metrics.hh"
#include "sim/simulator.hh"

using namespace rmt;

namespace
{

SimOptions
quick(SimMode mode)
{
    SimOptions o;
    o.mode = mode;
    o.warmup_insts = 2000;
    o.measure_insts = 10000;
    return o;
}

} // namespace

/**
 * Cross-mode invariants: relations between the paper's configurations
 * that must hold for *any* workload, checked on a representative set.
 */
class ModeProperties : public ::testing::TestWithParam<std::string>
{
};

TEST_P(ModeProperties, RedundancyNeverFasterThanBase)
{
    const std::string wl = GetParam();
    const double base = runSimulation({wl}, quick(SimMode::Base))
                            .threads[0].ipc;
    const double srt =
        runSimulation({wl}, quick(SimMode::Srt)).threads[0].ipc;
    // The trailing copy can only consume resources (tiny tolerance for
    // second-order timing noise such as cache-warming side effects).
    EXPECT_LE(srt, base * 1.02) << wl;
}

TEST_P(ModeProperties, CrtLeadingNeverSlowerThanSrtLeading)
{
    // With one logical thread, CRT gives the leading copy a whole core;
    // SRT makes it share with its own trailing copy.
    const std::string wl = GetParam();
    const double srt =
        runSimulation({wl}, quick(SimMode::Srt)).threads[0].ipc;
    const double crt =
        runSimulation({wl}, quick(SimMode::Crt)).threads[0].ipc;
    EXPECT_GE(crt, srt * 0.98) << wl;
}

TEST_P(ModeProperties, Lock8NeverFasterThanLock0)
{
    const std::string wl = GetParam();
    SimOptions l0 = quick(SimMode::Lockstep);
    l0.checker_penalty = 0;
    SimOptions l8 = quick(SimMode::Lockstep);
    l8.checker_penalty = 8;
    EXPECT_LE(runSimulation({wl}, l8).threads[0].ipc,
              runSimulation({wl}, l0).threads[0].ipc * 1.001)
        << wl;
}

TEST_P(ModeProperties, Base2CopiesProgressTogether)
{
    const std::string wl = GetParam();
    Simulation sim({wl}, quick(SimMode::Base2));
    const RunResult r = sim.run();
    EXPECT_TRUE(r.completed) << wl;
    const auto a = sim.chip().cpu(0).committed(0);
    const auto b = sim.chip().cpu(0).committed(1);
    // Uncoupled copies of the same program reach their targets; neither
    // starves (per-thread reservations).
    EXPECT_GE(a, 12000u);
    EXPECT_GE(b, 12000u);
}

INSTANTIATE_TEST_SUITE_P(Representative, ModeProperties,
                         ::testing::Values("gcc", "compress", "swim",
                                           "applu", "vortex"),
                         [](const auto &info) { return info.param; });

TEST(ModeProperties, StatsDumpCoversEveryGroup)
{
    Simulation sim({"li"}, quick(SimMode::Srt));
    sim.run();
    std::ostringstream os;
    sim.chip().cpu(0).dumpStats(os);
    const std::string out = os.str();
    for (const char *key :
         {"cpu0.cycles", "cpu0.committed", "l1i.hits", "l1d.misses",
          "mergebuf.stores", "bpred.lookups", "linepred.lookups",
          "storesets.violations"}) {
        EXPECT_NE(out.find(key), std::string::npos) << key;
    }
}

TEST(ModeProperties, PairStatsDumpCoversRmtStructures)
{
    Simulation sim({"li"}, quick(SimMode::Srt));
    sim.run();
    auto &pair = sim.chip().redundancy().pair(0);
    std::ostringstream os;
    pair.stats().dump(os);
    pair.lvq.stats().dump(os);
    pair.lpq.stats().dump(os);
    pair.comparator.stats().dump(os);
    const std::string out = os.str();
    for (const char *key :
         {"pair0.pair.chunks", "pair0.lvq.hits", "pair0.lpq.pushes",
          "pair0.storecmp.comparisons"}) {
        EXPECT_NE(out.find(key), std::string::npos) << key;
    }
}

TEST(ModeProperties, EfficiencyIsScaleInvariantInBudget)
{
    // Doubling the measurement budget must not change steady-state
    // efficiency much (the workloads are warm by design).
    SimOptions small = quick(SimMode::Srt);
    SimOptions big = quick(SimMode::Srt);
    big.measure_insts = 20000;
    BaselineCache cache_small(small);
    BaselineCache cache_big(big);
    const double e1 =
        cache_small.efficiency(runSimulation({"compress"}, small));
    const double e2 =
        cache_big.efficiency(runSimulation({"compress"}, big));
    EXPECT_NEAR(e1, e2, 0.08);
}
