#include <gtest/gtest.h>

#include "sim/simulator.hh"

using namespace rmt;

namespace
{

/**
 * Determinism is load-bearing twice over: it makes experiments
 * reproducible, and it is the premise behind modelling lockstep as one
 * core (two deterministic cores given identical inputs stay in
 * lockstep).
 */
RunResult
runOnce(SimMode mode, const std::vector<std::string> &wls)
{
    SimOptions o;
    o.mode = mode;
    o.warmup_insts = 1000;
    o.measure_insts = 6000;
    return runSimulation(wls, o);
}

void
expectIdentical(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.total_cycles, b.total_cycles);
    ASSERT_EQ(a.threads.size(), b.threads.size());
    for (std::size_t i = 0; i < a.threads.size(); ++i) {
        EXPECT_EQ(a.threads[i].cycles, b.threads[i].cycles);
        EXPECT_EQ(a.threads[i].committed, b.threads[i].committed);
        EXPECT_DOUBLE_EQ(a.threads[i].ipc, b.threads[i].ipc);
    }
    EXPECT_EQ(a.store_comparisons, b.store_comparisons);
    EXPECT_EQ(a.sq_full_stalls, b.sq_full_stalls);
    EXPECT_EQ(a.branch_mispredicts, b.branch_mispredicts);
}

} // namespace

TEST(Determinism, BaseRunsAreBitIdentical)
{
    expectIdentical(runOnce(SimMode::Base, {"gcc"}),
                    runOnce(SimMode::Base, {"gcc"}));
}

TEST(Determinism, SmtRunsAreBitIdentical)
{
    expectIdentical(runOnce(SimMode::Base, {"gcc", "swim"}),
                    runOnce(SimMode::Base, {"gcc", "swim"}));
}

TEST(Determinism, SrtRunsAreBitIdentical)
{
    expectIdentical(runOnce(SimMode::Srt, {"compress"}),
                    runOnce(SimMode::Srt, {"compress"}));
}

TEST(Determinism, CrtRunsAreBitIdentical)
{
    expectIdentical(runOnce(SimMode::Crt, {"gcc", "swim"}),
                    runOnce(SimMode::Crt, {"gcc", "swim"}));
}

TEST(Determinism, FaultInjectionIsReproducible)
{
    auto one = [] {
        SimOptions o;
        o.mode = SimMode::Srt;
        o.warmup_insts = 0;
        o.measure_insts = 8000;
        Simulation sim({"compress"}, o);
        FaultRecord f;
        f.kind = FaultRecord::Kind::TransientReg;
        f.when = 2500;
        f.core = 0;
        f.tid = 0;
        f.reg = intReg(3);
        f.bit = 7;
        sim.faultInjector().schedule(f);
        sim.run();
        const auto &det = sim.chip().redundancy().pair(0).detections();
        return det.empty() ? Cycle{0} : det.front().cycle;
    };
    const Cycle a = one();
    const Cycle b = one();
    EXPECT_EQ(a, b);
    EXPECT_GT(a, 0u);
}
