#include <gtest/gtest.h>

#include "sim/simulator.hh"
#include "workloads/workloads.hh"

using namespace rmt;

namespace
{

/**
 * Run @p workload in @p mode with architectural co-simulation enabled:
 * every committed instruction of every hardware thread is checked
 * against the in-order reference model, so any timing-model bug that
 * corrupts architectural state aborts the test.
 */
void
cosimRun(const std::string &workload, SimMode mode,
         std::uint64_t insts = 8000)
{
    SimOptions opts;
    opts.mode = mode;
    opts.cosim = true;
    opts.warmup_insts = 0;
    opts.measure_insts = insts;
    const RunResult r = runSimulation({workload}, opts);
    EXPECT_TRUE(r.completed) << workload << " did not finish";
    EXPECT_EQ(r.detections, 0u)
        << workload << ": spurious fault detections";
    EXPECT_EQ(r.store_mismatches, 0u);
}

class CosimAllWorkloads : public ::testing::TestWithParam<std::string>
{
};

} // namespace

TEST_P(CosimAllWorkloads, Base)
{
    cosimRun(GetParam(), SimMode::Base);
}

TEST_P(CosimAllWorkloads, Srt)
{
    cosimRun(GetParam(), SimMode::Srt);
}

TEST_P(CosimAllWorkloads, Crt)
{
    cosimRun(GetParam(), SimMode::Crt);
}

INSTANTIATE_TEST_SUITE_P(Spec95, CosimAllWorkloads,
                         ::testing::ValuesIn(spec95Names()),
                         [](const auto &info) { return info.param; });

TEST(CosimModes, Base2RunsBothCopies)
{
    SimOptions opts;
    opts.mode = SimMode::Base2;
    opts.cosim = true;
    opts.warmup_insts = 0;
    opts.measure_insts = 5000;
    Simulation sim({"compress"}, opts);
    const RunResult r = sim.run();
    EXPECT_TRUE(r.completed);
    // Both hardware threads committed their budget.
    EXPECT_GE(sim.chip().cpu(0).committed(0), 5000u);
    EXPECT_GE(sim.chip().cpu(0).committed(1), 5000u);
}

TEST(CosimModes, LockstepMatchesArchitecture)
{
    SimOptions opts;
    opts.mode = SimMode::Lockstep;
    opts.checker_penalty = 8;
    opts.cosim = true;
    opts.warmup_insts = 0;
    opts.measure_insts = 5000;
    const RunResult r = runSimulation({"m88ksim", "li"}, opts);
    EXPECT_TRUE(r.completed);
}

TEST(CosimModes, SrtTwoLogicalThreads)
{
    SimOptions opts;
    opts.mode = SimMode::Srt;
    opts.cosim = true;
    opts.warmup_insts = 0;
    opts.measure_insts = 5000;
    const RunResult r = runSimulation({"gcc", "swim"}, opts);
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.detections, 0u);
}

TEST(CosimModes, CrtFourLogicalThreads)
{
    SimOptions opts;
    opts.mode = SimMode::Crt;
    opts.cosim = true;
    opts.warmup_insts = 0;
    opts.measure_insts = 4000;
    const RunResult r =
        runSimulation({"gcc", "go", "fpppp", "swim"}, opts);
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.detections, 0u);
}
