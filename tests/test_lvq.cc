#include <gtest/gtest.h>

#include "rmt/lvq.hh"

using namespace rmt;

TEST(Lvq, InsertLookupDeallocates)
{
    Lvq lvq(4, true, "lvq");
    EXPECT_TRUE(lvq.insert(1, 0x100, 42, 10));
    std::uint64_t data = 0;
    // Not visible before the forwarding latency has elapsed.
    EXPECT_EQ(lvq.lookup(1, 0x100, 9, data), Lvq::Lookup::NotPresent);
    EXPECT_EQ(lvq.lookup(1, 0x100, 10, data), Lvq::Lookup::Hit);
    EXPECT_EQ(data, 42u);
    // Entry deallocated by the hit.
    EXPECT_EQ(lvq.lookup(1, 0x100, 11, data), Lvq::Lookup::NotPresent);
    EXPECT_EQ(lvq.size(), 0u);
}

TEST(Lvq, OutOfOrderLookupByTag)
{
    Lvq lvq(4, true, "lvq");
    lvq.insert(1, 0x100, 11, 0);
    lvq.insert(2, 0x200, 22, 0);
    lvq.insert(3, 0x300, 33, 0);
    std::uint64_t data = 0;
    // Trailing thread may issue loads out of program order (Sec. 4.1).
    EXPECT_EQ(lvq.lookup(3, 0x300, 5, data), Lvq::Lookup::Hit);
    EXPECT_EQ(data, 33u);
    EXPECT_EQ(lvq.lookup(1, 0x100, 5, data), Lvq::Lookup::Hit);
    EXPECT_EQ(data, 11u);
}

TEST(Lvq, AddressMismatchIsDetectedFault)
{
    Lvq lvq(4, true, "lvq");
    lvq.insert(7, 0x100, 42, 0);
    std::uint64_t data = 0;
    EXPECT_EQ(lvq.lookup(7, 0x104, 1, data), Lvq::Lookup::AddrMismatch);
    EXPECT_EQ(lvq.size(), 0u);
}

TEST(Lvq, CapacityBound)
{
    Lvq lvq(2, true, "lvq");
    EXPECT_TRUE(lvq.insert(1, 0x0, 0, 0));
    EXPECT_TRUE(lvq.insert(2, 0x8, 0, 0));
    EXPECT_TRUE(lvq.full());
    EXPECT_FALSE(lvq.insert(3, 0x10, 0, 0));
    std::uint64_t data = 0;
    lvq.lookup(1, 0x0, 1, data);
    EXPECT_FALSE(lvq.full());
    EXPECT_TRUE(lvq.insert(3, 0x10, 0, 0));
}

TEST(Lvq, EccCorrectsBitFlip)
{
    Lvq lvq(4, true, "lvq");
    lvq.insert(1, 0x100, 0xAAAA, 0);
    Random rng(1);
    EXPECT_TRUE(lvq.injectDataBitFlip(rng));
    EXPECT_EQ(lvq.eccCorrections(), 1u);
    std::uint64_t data = 0;
    EXPECT_EQ(lvq.lookup(1, 0x100, 1, data), Lvq::Lookup::Hit);
    EXPECT_EQ(data, 0xAAAAu);   // value intact
}

TEST(Lvq, UnprotectedFlipCorruptsData)
{
    Lvq lvq(4, false, "lvq");
    lvq.insert(1, 0x100, 0xAAAA, 0);
    Random rng(1);
    EXPECT_TRUE(lvq.injectDataBitFlip(rng));
    std::uint64_t data = 0;
    EXPECT_EQ(lvq.lookup(1, 0x100, 1, data), Lvq::Lookup::Hit);
    EXPECT_NE(data, 0xAAAAu);   // exactly one bit differs
    EXPECT_EQ(__builtin_popcountll(data ^ 0xAAAA), 1);
}

TEST(Lvq, FlipOnEmptyReportsFalse)
{
    Lvq lvq(4, false, "lvq");
    Random rng(1);
    EXPECT_FALSE(lvq.injectDataBitFlip(rng));
}
