#include <gtest/gtest.h>

#include <cstring>

#include "cmp/chip.hh"
#include "rmt/recovery.hh"
#include "sim/simulator.hh"

using namespace rmt;

namespace
{

constexpr RegIndex r1 = intReg(1);
constexpr RegIndex r2 = intReg(2);
constexpr RegIndex r3 = intReg(3);
constexpr RegIndex r4 = intReg(4);

/**
 * A halting, store-dense kernel: walks a table, mixing values and
 * writing every slot, so any unrecovered corruption is visible in the
 * final memory image.
 */
Program
haltingKernel(int iters)
{
    ProgramBuilder b("halting");
    b.li(r1, 0x1000);
    b.li(r2, iters);
    b.li(r3, 0x1234);
    b.label("loop");
    b.andi(r4, r2, 0x3FF);
    b.slli(r4, r4, 3);
    b.add(r4, r1, r4);
    b.xori(r3, r3, 0x55);
    b.add(r3, r3, r2);
    b.stq(r3, r4, 0);
    b.addi(r2, r2, -1);
    b.bne(r2, intReg(0), "loop");
    b.li(r4, 0x9000);
    b.stq(r3, r4, 0);
    b.halt();
    return b.build();
}

struct RecoveryHarness
{
    RecoveryHarness(const Program &prog, bool with_recovery,
                    std::uint64_t interval = 500)
        : program(prog), mem(64 * 1024)
    {
        ChipParams cp;
        cp.num_cores = 1;
        cp.cpu.num_threads = 2;
        chip = std::make_unique<Chip>(cp);

        RedundantPairParams pp;
        pp.leading = HwThread{0, 0};
        pp.trailing = HwThread{0, 1};
        pair = &chip->redundancy().addPair(pp);
        pair->memory = &mem;
        if (with_recovery) {
            RecoveryParams rp;
            rp.interval_insts = interval;
            pair->recovery = std::make_unique<RecoveryManager>(
                rp, program.entry(), "recovery");
        }
        chip->cpu(0).addThread(0, program, mem, 0, Role::Leading, pair);
        chip->cpu(0).addThread(1, program, mem, 0, Role::Trailing, pair);
    }

    bool
    run(Cycle cap = 2000000)
    {
        chip->run(cap);
        return chip->allDone();
    }

    Program program;
    DataMemory mem;
    std::unique_ptr<Chip> chip;
    RedundantPair *pair = nullptr;
    FaultInjector injector;
};

std::vector<std::uint8_t>
goldenImage(const Program &prog)
{
    DataMemory mem(64 * 1024);
    ArchState st(prog, mem);
    st.run(10'000'000);
    EXPECT_TRUE(st.halted());
    return {mem.data(), mem.data() + mem.size()};
}

} // namespace

// ------------------------------------------------ RecoveryManager unit

TEST(RecoveryManager, UndoLogRollsMemoryBack)
{
    DataMemory mem(256);
    mem.write(0x10, 8, 0x1111);
    RecoveryManager rm(RecoveryParams{}, 0x1000, "rm");
    rm.preStore(mem, 0x10, 8);
    mem.write(0x10, 8, 0x2222);
    rm.preStore(mem, 0x10, 8);
    mem.write(0x10, 8, 0x3333);
    rm.rollback(mem, 100);
    EXPECT_EQ(mem.read(0x10, 8), 0x1111u);
    EXPECT_EQ(rm.recoveries(), 1u);
}

TEST(RecoveryManager, CheckpointCadence)
{
    RecoveryManager rm(RecoveryParams{.interval_insts = 100,
                                      .max_recoveries = 8},
                       0x1000, "rm");
    std::array<std::uint64_t, numArchRegs> regs{};
    rm.noteCommit(regs, 0x1004, 50, 0, 0);      // below the interval
    EXPECT_EQ(rm.pendingCandidates(), 0u);
    rm.noteCommit(regs, 0x1008, 100, 3, 2);     // at the interval
    EXPECT_EQ(rm.pendingCandidates(), 1u);
    rm.noteCommit(regs, 0x100c, 150, 4, 3);     // below the next one
    EXPECT_EQ(rm.pendingCandidates(), 1u);
}

TEST(RecoveryManager, CandidatePromotionWaitsForVerification)
{
    RecoveryManager rm(RecoveryParams{.interval_insts = 10,
                                      .max_recoveries = 8},
                       0x1000, "rm");
    std::array<std::uint64_t, numArchRegs> regs{};
    regs[1] = 0xAB;
    // Candidate over 5 stores (indices 0..4).
    rm.noteCommit(regs, 0x2000, 10, 7, 5);
    EXPECT_EQ(rm.active().next_pc, 0x1000u);    // still checkpoint zero
    rm.noteVerified(3);
    EXPECT_EQ(rm.active().next_pc, 0x1000u);    // store 4 unverified
    rm.noteVerified(4);
    EXPECT_EQ(rm.active().next_pc, 0x2000u);    // promoted
    EXPECT_EQ(rm.active().regs[1], 0xABu);
    EXPECT_EQ(rm.active().load_tag, 7u);
}

TEST(RecoveryManager, PromotionDropsUndoPrefix)
{
    DataMemory mem(256);
    RecoveryManager rm(RecoveryParams{.interval_insts = 10,
                                      .max_recoveries = 8},
                       0x1000, "rm");
    mem.write(0x20, 8, 0xAAAA);
    rm.preStore(mem, 0x20, 8);
    mem.write(0x20, 8, 0xBBBB);
    std::array<std::uint64_t, numArchRegs> regs{};
    rm.noteCommit(regs, 0x2000, 10, 0, 1);  // ckpt over store 0
    rm.noteVerified(0);                     // promote
    EXPECT_EQ(rm.undoLogBytes(), 0u);       // prefix discarded
    // Rolling back now lands on the NEW checkpoint state (0xBBBB).
    rm.preStore(mem, 0x20, 8);
    mem.write(0x20, 8, 0xCCCC);
    rm.rollback(mem, 20);
    EXPECT_EQ(mem.read(0x20, 8), 0xBBBBu);
}

TEST(RecoveryManager, AttemptCap)
{
    DataMemory mem(64);
    RecoveryManager rm(RecoveryParams{.interval_insts = 10,
                                      .max_recoveries = 2},
                       0x1000, "rm");
    EXPECT_TRUE(rm.canRecover());
    rm.rollback(mem, 0);
    rm.rollback(mem, 0);
    EXPECT_FALSE(rm.canRecover());
    EXPECT_TRUE(rm.exhausted());
}

// -------------------------------------------------- end-to-end recovery

TEST(Recovery, TransientFaultIsRepairedExactly)
{
    // THE recovery property: inject a strike, detect, roll back, rerun —
    // and the final memory image is bit-identical to a fault-free run.
    const Program prog = haltingKernel(3000);
    const auto golden = goldenImage(prog);

    RecoveryHarness h(prog, true);
    FaultRecord f;
    f.kind = FaultRecord::Kind::TransientReg;
    f.when = 2000;
    f.core = 0;
    f.tid = 0;
    f.reg = r1;         // the table base: long-lived, every store
                        // address derives from it
    f.bit = 3;
    h.injector.schedule(f);
    h.chip->setFaultInjector(&h.injector);

    ASSERT_TRUE(h.run());
    EXPECT_GE(h.pair->recovery->recoveries(), 1u);
    EXPECT_EQ(0, std::memcmp(h.mem.data(), golden.data(), golden.size()))
        << "memory corrupted despite recovery";
}

TEST(Recovery, FaultInTrailingAlsoRepaired)
{
    const Program prog = haltingKernel(3000);
    const auto golden = goldenImage(prog);
    RecoveryHarness h(prog, true);
    FaultRecord f;
    f.kind = FaultRecord::Kind::TransientReg;
    f.when = 2500;
    f.core = 0;
    f.tid = 1;
    f.reg = r1;         // trailing's table base: addresses skew
    f.bit = 3;
    h.injector.schedule(f);
    h.chip->setFaultInjector(&h.injector);
    ASSERT_TRUE(h.run());
    EXPECT_GE(h.pair->recovery->recoveries(), 1u);
    EXPECT_EQ(0, std::memcmp(h.mem.data(), golden.data(), golden.size()));
}

TEST(Recovery, NoFaultMeansNoRecoveryAndNoPerturbation)
{
    const Program prog = haltingKernel(2000);
    const auto golden = goldenImage(prog);
    RecoveryHarness h(prog, true);
    ASSERT_TRUE(h.run());
    EXPECT_EQ(h.pair->recovery->recoveries(), 0u);
    EXPECT_GT(h.pair->recovery->stats().name().size(), 0u);
    EXPECT_EQ(0, std::memcmp(h.mem.data(), golden.data(), golden.size()));
}

TEST(Recovery, CheckpointOverheadIsModest)
{
    const Program prog = haltingKernel(4000);
    RecoveryHarness plain(prog, false);
    ASSERT_TRUE(plain.run());
    const Cycle base_cycles = plain.chip->cycle();

    RecoveryHarness ck(prog, true, 250);    // aggressive cadence
    ASSERT_TRUE(ck.run());
    // Checkpointing is bookkeeping, not stalling: < 5% slowdown.
    EXPECT_LT(ck.chip->cycle(), base_cycles * 1.05 + Chip::drainCycles);
}

TEST(Recovery, PermanentFaultExhaustsAttemptsGracefully)
{
    const Program prog = haltingKernel(3000);
    RecoveryHarness h(prog, true);
    // Rebuild the pair's recovery with a tight cap.
    RecoveryParams rp;
    rp.interval_insts = 500;
    rp.max_recoveries = 2;
    h.pair->recovery = std::make_unique<RecoveryManager>(
        rp, prog.entry(), "recovery");

    // Break the upper half's integer ALUs: PSR places the trailing
    // copies in the lower half, so corruption is one-sided and every
    // affected store pair mismatches.  (Breaking *all* units would be a
    // common-mode failure: both copies corrupt identically and compare
    // equal — no redundancy scheme catches that.)
    for (unsigned u = 0; u < 4; ++u) {
        FaultRecord f;
        f.kind = FaultRecord::Kind::PermanentFu;
        f.when = 1000;
        f.core = 0;
        f.fuIndex = u;
        f.mask = 1ull << 2;
        h.injector.schedule(f);
    }
    h.chip->setFaultInjector(&h.injector);

    h.run(600000);
    // Attempts exhausted; the pair keeps flagging the (permanent) fault.
    EXPECT_TRUE(h.pair->recovery->exhausted());
    EXPECT_TRUE(h.pair->faultDetected());
}

TEST(Recovery, WorksAcrossCoresUnderCrt)
{
    const Program prog = haltingKernel(2500);
    const auto golden = goldenImage(prog);

    ChipParams cp;
    cp.num_cores = 2;
    cp.cpu.num_threads = 2;
    Chip chip(cp);
    DataMemory mem(64 * 1024);
    RedundantPairParams pp;
    pp.leading = HwThread{0, 0};
    pp.trailing = HwThread{1, 0};
    pp.cross_core_latency = 4;
    RedundantPair &pair = chip.redundancy().addPair(pp);
    pair.memory = &mem;
    RecoveryParams rp;
    rp.interval_insts = 500;
    pair.recovery =
        std::make_unique<RecoveryManager>(rp, prog.entry(), "recovery");
    chip.cpu(0).addThread(0, prog, mem, 0, Role::Leading, &pair);
    chip.cpu(1).addThread(0, prog, mem, 0, Role::Trailing, &pair);

    FaultInjector injector;
    FaultRecord f;
    f.kind = FaultRecord::Kind::TransientReg;
    f.when = 2200;
    f.core = 0;
    f.tid = 0;
    f.reg = r1;
    f.bit = 3;
    injector.schedule(f);
    chip.setFaultInjector(&injector);

    chip.run(2000000);
    ASSERT_TRUE(chip.allDone());
    EXPECT_GE(pair.recovery->recoveries(), 1u);
    EXPECT_EQ(0, std::memcmp(mem.data(), golden.data(), golden.size()));
}

TEST(Recovery, SimulationLevelOption)
{
    SimOptions o;
    o.mode = SimMode::Srt;
    o.warmup_insts = 0;
    o.measure_insts = 10000;
    o.recovery = true;
    Simulation sim({"compress"}, o);
    FaultRecord f;
    f.kind = FaultRecord::Kind::TransientReg;
    f.when = 3000;
    f.core = 0;
    f.tid = 0;
    f.reg = intReg(3);
    f.bit = 5;
    sim.faultInjector().schedule(f);
    const RunResult r = sim.run();
    EXPECT_TRUE(r.completed);
    EXPECT_GE(r.recoveries, 1u);
}
