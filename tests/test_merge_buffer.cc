#include <gtest/gtest.h>

#include "mem/merge_buffer.hh"

using namespace rmt;

namespace
{

MergeBufferParams
smallBuf()
{
    MergeBufferParams p;
    p.entries = 2;
    p.block_bytes = 64;
    p.drain_interval = 2;
    return p;
}

} // namespace

TEST(MergeBuffer, AcceptsUntilFull)
{
    MergeBuffer mb(smallBuf());
    EXPECT_TRUE(mb.canAccept(0x000));
    mb.accept(0x000, 0);
    mb.accept(0x040, 0);
    EXPECT_EQ(mb.occupancy(), 2u);
    EXPECT_FALSE(mb.canAccept(0x080));
    // ... but still coalesces into existing blocks when full.
    EXPECT_TRUE(mb.canAccept(0x004));
}

TEST(MergeBuffer, CoalescesSameBlock)
{
    MergeBuffer mb(smallBuf());
    mb.accept(0x100, 0);
    mb.accept(0x108, 0);
    mb.accept(0x13F, 0);
    EXPECT_EQ(mb.occupancy(), 1u);
}

TEST(MergeBuffer, DrainsOldestAfterAging)
{
    MergeBuffer mb(smallBuf());
    mb.accept(0x000, 0);
    mb.accept(0x040, 0);
    Addr a = 0;
    EXPECT_FALSE(mb.drain(1, a));       // not aged yet
    EXPECT_TRUE(mb.drain(2, a));
    EXPECT_EQ(a, 0x000u);
    EXPECT_FALSE(mb.drain(3, a));       // drain-interval spacing
    EXPECT_TRUE(mb.drain(4, a));
    EXPECT_EQ(a, 0x040u);
    EXPECT_TRUE(mb.empty());
}

TEST(MergeBuffer, DrainOnEmptyIsFalse)
{
    MergeBuffer mb(smallBuf());
    Addr a = 0;
    EXPECT_FALSE(mb.drain(100, a));
}

TEST(MergeBuffer, FreedSlotAcceptsAgain)
{
    MergeBuffer mb(smallBuf());
    mb.accept(0x000, 0);
    mb.accept(0x040, 0);
    Addr a = 0;
    ASSERT_TRUE(mb.drain(10, a));
    EXPECT_TRUE(mb.canAccept(0x080));
    mb.accept(0x080, 10);
    EXPECT_EQ(mb.occupancy(), 2u);
}
