#include <gtest/gtest.h>

#include "sim/metrics.hh"
#include "sim/simulator.hh"

using namespace rmt;

namespace
{

SimOptions
srtOpts(std::uint64_t insts = 10000)
{
    SimOptions o;
    o.mode = SimMode::Srt;
    o.warmup_insts = 0;
    o.measure_insts = insts;
    return o;
}

} // namespace

TEST(Srt, RedundantStreamsAgreeOnEveryStore)
{
    for (const char *name : {"gcc", "compress", "swim", "vortex"}) {
        const RunResult r = runSimulation({name}, srtOpts());
        EXPECT_TRUE(r.completed) << name;
        EXPECT_GT(r.store_comparisons, 0u) << name;
        EXPECT_EQ(r.store_mismatches, 0u) << name;
        EXPECT_EQ(r.detections, 0u) << name;
    }
}

TEST(Srt, TrailingThreadCommitsSameCount)
{
    SimOptions o = srtOpts();
    Simulation sim({"li"}, o);
    sim.run();
    const auto &pl = sim.placement(0);
    SmtCpu &cpu = sim.chip().cpu(pl.lead_core);
    EXPECT_GE(cpu.committed(pl.lead_tid), o.measure_insts);
    EXPECT_GE(cpu.committed(pl.trail_tid), o.measure_insts);
}

TEST(Srt, SlowerThanBase)
{
    SimOptions o = srtOpts();
    BaselineCache base(o);
    // Store-dense vortex must show clear SRT degradation (Fig. 6/8).
    const RunResult srt = runSimulation({"vortex"}, o);
    const double eff = base.efficiency(srt);
    EXPECT_LT(eff, 0.95);
    EXPECT_GT(eff, 0.2);
}

TEST(Srt, PerThreadStoreQueuesHelpStoreDenseCode)
{
    SimOptions o = srtOpts();
    const RunResult shared = runSimulation({"vortex"}, o);
    o.per_thread_store_queues = true;
    const RunResult ptsq = runSimulation({"vortex"}, o);
    // Section 4.2: per-thread SQs relieve the pressure significantly.
    EXPECT_GT(ptsq.threads[0].ipc, shared.threads[0].ipc * 1.1);
}

TEST(Srt, NoStoreComparisonShortensStoreLifetime)
{
    SimOptions o = srtOpts();
    const RunResult with_sc = runSimulation({"compress"}, o);
    o.store_comparison = false;
    const RunResult no_sc = runSimulation({"compress"}, o);
    // Verification holds leading stores in the SQ (the paper's +39
    // cycles); without it they release at retirement.
    EXPECT_LT(no_sc.avg_leading_store_lifetime,
              with_sc.avg_leading_store_lifetime);
    EXPECT_GE(no_sc.threads[0].ipc, with_sc.threads[0].ipc * 0.98);
}

TEST(Srt, LeadingStoreLifetimeLongerThanBase)
{
    SimOptions o = srtOpts();
    o.mode = SimMode::Base;
    const RunResult base = runSimulation({"compress"}, o);
    o.mode = SimMode::Srt;
    const RunResult srt = runSimulation({"compress"}, o);
    EXPECT_GT(srt.avg_leading_store_lifetime,
              base.avg_leading_store_lifetime);
}

TEST(Srt, PsrMovesCopiesToDifferentUnits)
{
    SimOptions o = srtOpts();
    o.preferential_space_redundancy = false;
    const RunResult no_psr = runSimulation({"mgrid"}, o);
    o.preferential_space_redundancy = true;
    const RunResult psr = runSimulation({"mgrid"}, o);
    ASSERT_GT(no_psr.fu_pairs, 0u);
    ASSERT_GT(psr.fu_pairs, 0u);
    // Section 7.1.1: most pairs share a unit without PSR; almost none
    // with it.
    EXPECT_GT(no_psr.fuSameFraction(), 0.4);
    EXPECT_LT(psr.fuSameFraction(), 0.2);
    EXPECT_LT(psr.fuSameFraction(), no_psr.fuSameFraction() / 3);
}

TEST(Srt, PsrCostsNoPerformance)
{
    SimOptions o = srtOpts();
    o.preferential_space_redundancy = false;
    const RunResult no_psr = runSimulation({"applu"}, o);
    o.preferential_space_redundancy = true;
    const RunResult psr = runSimulation({"applu"}, o);
    // Section 7.1.1: no performance degradation from PSR.
    EXPECT_GT(psr.threads[0].ipc, no_psr.threads[0].ipc * 0.97);
}

TEST(Srt, BoqFrontEndWorks)
{
    SimOptions o = srtOpts(6000);
    o.trailing_fetch = TrailingFetchMode::BranchOutcomeQueue;
    o.slack_fetch = 64;     // the original SRT slack-fetch pairing
    o.cosim = true;
    const RunResult r = runSimulation({"gcc"}, o);
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.detections, 0u);
    EXPECT_EQ(r.store_mismatches, 0u);
}

TEST(Srt, SharedLinePredictorFrontEndWorks)
{
    SimOptions o = srtOpts(6000);
    o.trailing_fetch = TrailingFetchMode::SharedLinePredictor;
    o.slack_fetch = 64;
    o.cosim = true;
    const RunResult r = runSimulation({"compress"}, o);
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.detections, 0u);
}

TEST(Srt, LpqOutperformsBoqStrawmen)
{
    // Section 4.4: the LPQ gives the trailing thread a perfect chunk
    // stream; the BOQ variants still misfetch.  On a line-mispredict
    // heavy workload the LPQ should not be slower.
    SimOptions o = srtOpts();
    o.trailing_fetch = TrailingFetchMode::LinePredictionQueue;
    const RunResult lpq = runSimulation({"go"}, o);
    o.trailing_fetch = TrailingFetchMode::BranchOutcomeQueue;
    o.slack_fetch = 64;
    const RunResult boq = runSimulation({"go"}, o);
    EXPECT_GE(lpq.threads[0].ipc, boq.threads[0].ipc * 0.95);
}

TEST(Srt, MemoryBarriersDoNotDeadlock)
{
    // Section 4.4.2: a store followed by a membar in the same chunk
    // deadlocks unless the chunk is force-terminated.
    ProgramBuilder b("membar_stress");
    b.li(intReg(1), 0x1000);
    b.li(intReg(2), 0);
    b.label("loop");
    b.addi(intReg(2), intReg(2), 1);
    b.stq(intReg(2), intReg(1), 0);
    b.membar();
    b.stq(intReg(2), intReg(1), 8);
    b.membar();
    b.br("loop");
    const Program prog = b.build();

    MemSystem ms{MemSystemParams{}};
    SmtParams params;
    params.num_threads = 2;
    params.cosim = true;
    SmtCpu cpu(params, ms, 0);

    RedundantPairParams pp;
    pp.leading = HwThread{0, 0};
    pp.trailing = HwThread{0, 1};
    RedundancyManager rm;
    RedundantPair &pair = rm.addPair(pp);

    DataMemory mem(64 * 1024);
    cpu.addThread(0, prog, mem, 0, Role::Leading, &pair);
    cpu.addThread(1, prog, mem, 0, Role::Trailing, &pair);
    cpu.setTarget(0, 4000);
    cpu.setTarget(1, 4000);
    while (!cpu.allThreadsDone() && cpu.cycle() < 400000)
        cpu.tick();     // the deadlock watchdog would panic on a hang
    EXPECT_TRUE(cpu.allThreadsDone());
    EXPECT_FALSE(pair.faultDetected());
}

TEST(Srt, PartialForwardFlushDoesNotDeadlock)
{
    // Section 4.4.2's second deadlock: a byte store followed by a wider
    // load of the same location in one chunk.
    ProgramBuilder b("partial_stress");
    b.li(intReg(1), 0x2000);
    b.li(intReg(2), 0x77);
    b.label("loop");
    b.stb(intReg(2), intReg(1), 0);
    b.ldq(intReg(3), intReg(1), 0);
    b.addi(intReg(2), intReg(3), 1);
    b.andi(intReg(2), intReg(2), 0xFF);
    b.br("loop");
    const Program prog = b.build();

    MemSystem ms{MemSystemParams{}};
    SmtParams params;
    params.num_threads = 2;
    params.cosim = true;
    SmtCpu cpu(params, ms, 0);

    RedundantPairParams pp;
    pp.leading = HwThread{0, 0};
    pp.trailing = HwThread{0, 1};
    RedundancyManager rm;
    RedundantPair &pair = rm.addPair(pp);

    DataMemory mem(64 * 1024);
    cpu.addThread(0, prog, mem, 0, Role::Leading, &pair);
    cpu.addThread(1, prog, mem, 0, Role::Trailing, &pair);
    cpu.setTarget(0, 4000);
    cpu.setTarget(1, 4000);
    while (!cpu.allThreadsDone() && cpu.cycle() < 400000)
        cpu.tick();
    EXPECT_TRUE(cpu.allThreadsDone());
    EXPECT_FALSE(pair.faultDetected());
}

TEST(Srt, TwoLogicalThreadsShareOneCore)
{
    SimOptions o = srtOpts(6000);
    const RunResult r = runSimulation({"gcc", "fpppp"}, o);
    EXPECT_TRUE(r.completed);
    ASSERT_EQ(r.threads.size(), 2u);
    EXPECT_EQ(r.detections, 0u);
    EXPECT_GT(r.threads[0].ipc, 0.0);
    EXPECT_GT(r.threads[1].ipc, 0.0);
}

TEST(Srt, SlackFetchDelaysTrailing)
{
    SimOptions o = srtOpts(6000);
    o.trailing_fetch = TrailingFetchMode::BranchOutcomeQueue;
    o.slack_fetch = 256;
    Simulation sim({"compress"}, o);
    const RunResult r = sim.run();
    EXPECT_TRUE(r.completed);
    // With a large slack, the trailing thread's committed count lags
    // the leading thread's for the whole run (checked implicitly by
    // completion), and no divergence is flagged.
    EXPECT_EQ(r.detections, 0u);
}
