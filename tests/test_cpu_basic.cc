#include <gtest/gtest.h>

#include "cpu/smt_cpu.hh"
#include "mem/mem_system.hh"

using namespace rmt;

namespace
{

constexpr RegIndex r1 = intReg(1);
constexpr RegIndex r2 = intReg(2);
constexpr RegIndex r3 = intReg(3);
constexpr RegIndex r4 = intReg(4);
constexpr RegIndex r5 = intReg(5);
constexpr RegIndex f0 = fpReg(0);
constexpr RegIndex f1 = fpReg(1);

/** Single-thread CPU harness with co-simulation enabled: any timing
 *  model bug that corrupts architectural state panics the test. */
struct TestCpu
{
    explicit TestCpu(Program prog, std::size_t mem_bytes = 64 * 1024)
        : program(std::move(prog)), mem(mem_bytes), memSys(MemSystemParams{}),
          cpu(makeParams(), memSys, 0)
    {
        cpu.addThread(0, program, mem, 0, Role::Single);
    }

    static SmtParams
    makeParams()
    {
        SmtParams p;
        p.num_threads = 1;
        p.cosim = true;
        return p;
    }

    /** Run until the thread halts (or a cycle cap trips). */
    Cycle
    runToHalt(Cycle cap = 200000)
    {
        while (!cpu.threadHalted(0) && cpu.cycle() < cap)
            cpu.tick();
        EXPECT_TRUE(cpu.threadHalted(0)) << "program did not halt";
        return cpu.cycle();
    }

    Program program;
    DataMemory mem;
    MemSystem memSys;
    SmtCpu cpu;
};

} // namespace

TEST(CpuBasic, StraightLineArithmetic)
{
    ProgramBuilder b("t");
    b.li(r1, 6).li(r2, 7).mul(r3, r1, r2);
    b.li(r4, 0x100).stq(r3, r4, 0).halt();
    TestCpu t(b.build());
    t.runToHalt();
    EXPECT_EQ(t.mem.read(0x100, 8), 42u);
    EXPECT_EQ(t.cpu.committed(0), 6u);
}

TEST(CpuBasic, CountedLoop)
{
    // Sum 1..100 and store the result.  Cosim checks every commit.
    ProgramBuilder b("t");
    b.li(r1, 100);
    b.li(r2, 0);
    b.label("loop");
    b.add(r2, r2, r1);
    b.addi(r1, r1, -1);
    b.bne(r1, intReg(0), "loop");
    b.li(r3, 0x200);
    b.stq(r2, r3, 0);
    b.halt();
    TestCpu t(b.build());
    t.runToHalt();
    EXPECT_EQ(t.mem.read(0x200, 8), 5050u);
}

TEST(CpuBasic, DataDependentBranches)
{
    // Alternating + data-dependent control flow: exercises mispredicts
    // and squash/recovery.
    ProgramBuilder b("t");
    b.li(r1, 0);        // i
    b.li(r2, 0);        // acc
    b.li(r5, 500);
    b.label("loop");
    b.andi(r3, r1, 1);
    b.beq(r3, intReg(0), "even");
    b.addi(r2, r2, 3);
    b.br("next");
    b.label("even");
    b.addi(r2, r2, 5);
    b.label("next");
    b.addi(r1, r1, 1);
    b.blt(r1, r5, "loop");
    b.li(r4, 0x300);
    b.stq(r2, r4, 0);
    b.halt();
    TestCpu t(b.build());
    t.runToHalt();
    EXPECT_EQ(t.mem.read(0x300, 8), 250u * 3 + 250u * 5);
}

TEST(CpuBasic, StoreLoadForwarding)
{
    // A load immediately after a store to the same address must see the
    // store's value (SQ forwarding path).
    ProgramBuilder b("t");
    b.li(r1, 0x400);
    b.li(r2, 1234);
    b.stq(r2, r1, 0);
    b.ldq(r3, r1, 0);
    b.addi(r3, r3, 1);
    b.stq(r3, r1, 8);
    b.halt();
    TestCpu t(b.build());
    t.runToHalt();
    EXPECT_EQ(t.mem.read(0x408, 8), 1235u);
}

TEST(CpuBasic, PartialForwardStall)
{
    // Byte store followed by a quadword load of the same location: the
    // base design drains the store and the load reads the cache
    // (Section 4.4).  Correctness is checked by cosim + final value.
    ProgramBuilder b("t");
    b.li(r1, 0x500);
    b.li(r2, 0x1111111111111111);
    b.stq(r2, r1, 0);
    b.membar();                     // drain so the next pair is clean
    b.li(r3, 0xFF);
    b.stb(r3, r1, 0);               // partial write
    b.ldq(r4, r1, 0);               // needs merged value
    b.stq(r4, r1, 8);
    b.halt();
    TestCpu t(b.build());
    t.runToHalt();
    EXPECT_EQ(t.mem.read(0x508, 8), 0x11111111111111FFull);
}

TEST(CpuBasic, MemoryBarrierDrainsStores)
{
    ProgramBuilder b("t");
    b.li(r1, 0x600);
    b.li(r2, 9);
    b.stq(r2, r1, 0);
    b.membar();
    b.ldq(r3, r1, 0);
    b.stq(r3, r1, 8);
    b.halt();
    TestCpu t(b.build());
    t.runToHalt();
    EXPECT_EQ(t.mem.read(0x608, 8), 9u);
}

TEST(CpuBasic, CallRetWithRas)
{
    ProgramBuilder b("t");
    b.li(r1, 3);
    b.li(r2, 0);
    b.label("loop");
    b.call("bump");
    b.addi(r1, r1, -1);
    b.bne(r1, intReg(0), "loop");
    b.li(r3, 0x700);
    b.stq(r2, r3, 0);
    b.halt();
    b.label("bump");
    b.addi(r2, r2, 10);
    b.ret();
    TestCpu t(b.build());
    t.runToHalt();
    EXPECT_EQ(t.mem.read(0x700, 8), 30u);
}

TEST(CpuBasic, IndirectJumpTable)
{
    // Computed dispatch through jmp: index alternates between two
    // targets, exercising the indirect predictor and its mispredicts.
    ProgramBuilder b("t");
    b.li(r1, 0);        // i
    b.li(r2, 0);        // acc
    b.label("loop");
    b.andi(r3, r1, 1);
    b.muli(r3, r3, 8);  // 0 or 8 bytes past "case0"
    // Compute the address of case0 + offset.  case0 is a fixed label;
    // we materialise its address via a call trick: here() arithmetic.
    b.li(r4, 0);        // patched below via address constant
    b.add(r4, r4, r3);
    b.jmp(r4);
    b.label("case0");
    b.addi(r2, r2, 1);
    b.br("join");
    b.label("case1");
    b.addi(r2, r2, 100);
    b.label("join");
    b.addi(r1, r1, 1);
    b.slti(r5, r1, 20);
    b.bne(r5, intReg(0), "loop");
    b.li(r3, 0x800);
    b.stq(r2, r3, 0);
    b.halt();
    Program p = b.build();
    // Patch the li with case0's real address (index of label case0).
    // case0 is the instruction right after jmp: find the jmp.
    std::vector<StaticInst> insts = p.insts();
    std::size_t jmp_idx = 0;
    for (std::size_t i = 0; i < insts.size(); ++i) {
        if (insts[i].op == Op::Jmp)
            jmp_idx = i;
    }
    const Addr case0 = Program::textBase + (jmp_idx + 1) * instBytes;
    for (auto &si : insts) {
        if (si.op == Op::AddI && si.rd == r4 && si.ra == intReg(0))
            si.imm = static_cast<std::int64_t>(case0);
    }
    TestCpu t(Program(insts, "jmp"));
    t.runToHalt();
    // 10 even iterations (+1) and 10 odd (+100).
    EXPECT_EQ(t.mem.read(0x800, 8), 10u + 1000u);
}

TEST(CpuBasic, FpPipeline)
{
    ProgramBuilder b("t");
    b.li(r1, 16);
    b.cvtif(f0, r1);
    b.fsqrt(f1, f0);        // 4.0
    b.fmul(f1, f1, f1);     // 16.0
    b.fadd(f1, f1, f0);     // 32.0
    b.cvtfi(r2, f1);
    b.li(r3, 0x900);
    b.stq(r2, r3, 0);
    b.halt();
    TestCpu t(b.build());
    t.runToHalt();
    EXPECT_EQ(t.mem.read(0x900, 8), 32u);
}

TEST(CpuBasic, SuperscalarIpcAboveOne)
{
    // Long stretch of independent adds: an 8-wide machine must sustain
    // well above 1 IPC.
    ProgramBuilder b("t");
    for (int i = 1; i <= 8; ++i)
        b.li(intReg(i), i);
    b.label("loop");
    for (int rep = 0; rep < 8; ++rep) {
        for (int i = 1; i <= 8; ++i)
            b.addi(intReg(i), intReg(i), 1);
    }
    b.addi(intReg(9), intReg(9), 1);
    b.slti(intReg(10), intReg(9), 200);
    b.bne(intReg(10), intReg(0), "loop");
    b.halt();
    TestCpu t(b.build());
    const Cycle cycles = t.runToHalt();
    const double ipc =
        static_cast<double>(t.cpu.committed(0)) / static_cast<double>(cycles);
    EXPECT_GT(ipc, 1.5);
}

TEST(CpuBasic, LoadDependentChainThroughMemory)
{
    // Pointer-chase through memory written by the same program.
    ProgramBuilder b("t");
    b.li(r1, 0x1000);
    // Build a 4-element chain: [0x1000]->0x1010->0x1020->0x1030->0.
    b.li(r2, 0x1010).stq(r2, r1, 0);
    b.li(r3, 0x1020).stq(r3, r2, 0);
    b.li(r4, 0x1030).stq(r4, r3, 0);
    b.stq(intReg(0), r4, 0);
    b.li(r5, 0);        // hop count
    b.label("chase");
    b.ldq(r1, r1, 0);
    b.addi(r5, r5, 1);
    b.bne(r1, intReg(0), "chase");
    b.li(r2, 0xA00);
    b.stq(r5, r2, 0);
    b.halt();
    TestCpu t(b.build(), 64 * 1024);
    t.runToHalt();
    EXPECT_EQ(t.mem.read(0xA00, 8), 4u);
}

TEST(CpuBasic, ByteHalfWordAccesses)
{
    ProgramBuilder b("t");
    b.li(r1, 0xB00);
    b.li(r2, 0x1234);
    b.sth(r2, r1, 0);
    b.ldb(r3, r1, 0);       // 0x34
    b.ldb(r4, r1, 1);       // 0x12
    b.slli(r4, r4, 8);
    b.or_(r3, r3, r4);
    b.stw(r3, r1, 4);
    b.halt();
    TestCpu t(b.build());
    t.runToHalt();
    EXPECT_EQ(t.mem.read(0xB04, 4), 0x1234u);
}

TEST(CpuBasic, DeterministicCycleCount)
{
    ProgramBuilder b("t");
    b.li(r1, 50);
    b.label("loop");
    b.addi(r1, r1, -1);
    b.bne(r1, intReg(0), "loop");
    b.halt();
    Program p = b.build();
    TestCpu t1(p), t2(p);
    EXPECT_EQ(t1.runToHalt(), t2.runToHalt());
    EXPECT_EQ(t1.cpu.committed(0), t2.cpu.committed(0));
}
