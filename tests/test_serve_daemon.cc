/**
 * @file
 * End-to-end daemon tests (src/serve/daemon.*, client.*):
 *
 *  - a campaign submitted twice returns byte-identical JSONL — timing
 *    fields included, because the store replays the recorded
 *    wall-clock — with the second pass served entirely from the store;
 *  - the daemon's no-timing stream is byte-identical to running the
 *    same specs in-process (the JsonlSink contract, now over a socket);
 *  - two concurrent clients with overlapping campaigns trigger exactly
 *    one simulation per unique content key (single-flight dedup),
 *    verified through the status verb's store counters;
 *  - a client that disconnects mid-stream and resubmits receives every
 *    row from index 0 in original order;
 *  - fault jobs get their oracle verdicts server-side, identical to a
 *    locally-oracled run;
 *  - SIGKILLing the daemon mid-campaign leaves an uncorrupted store,
 *    and a fresh daemon on the same store completes the campaign
 *    byte-identically.
 */

#include <gtest/gtest.h>

#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "rmt/fault_oracle.hh"
#include "runner/runner.hh"
#include "serve/client.hh"
#include "serve/daemon.hh"
#include "serve/protocol.hh"

using namespace rmt;
using namespace rmt::serve;

namespace
{

struct TempDir
{
    explicit TempDir(const std::string &name)
        : path(std::string(::testing::TempDir()) + name)
    {
        std::filesystem::remove_all(path);
        std::filesystem::create_directories(path);
    }
    ~TempDir() { std::filesystem::remove_all(path); }
    std::string path;
};

/** In-process daemon on its own thread; always drained on teardown. */
struct DaemonFixture
{
    explicit DaemonFixture(const std::string &dir, unsigned jobs = 2,
                           unsigned sync_every = 1)
    {
        std::signal(SIGPIPE, SIG_IGN);
        cfg.socket_path = dir + "/d.sock";
        cfg.store_dir = dir + "/store";
        cfg.jobs = jobs;
        cfg.store_sync_every = sync_every;
        daemon = std::make_unique<Daemon>(cfg);
        daemon->open();
        runner = std::thread([this] { daemon->run(); });
    }

    ~DaemonFixture() { stop(); }

    void stop()
    {
        if (runner.joinable()) {
            daemon->requestStop();
            runner.join();
        }
    }

    DaemonConfig cfg;
    std::unique_ptr<Daemon> daemon;
    std::thread runner;
};

JobSpec
makeSpec(std::uint64_t id, const std::string &workload, unsigned slack)
{
    JobSpec s;
    s.id = id;
    s.label = workload + "/slack" + std::to_string(slack);
    s.workloads = {workload};
    s.options.mode = SimMode::Srt;
    s.options.warmup_insts = 200;
    s.options.measure_insts = 1500;
    s.options.slack_fetch = slack;
    s.seed = 7;
    return s;
}

Campaign
makeCampaign(const std::vector<std::pair<std::string, unsigned>> &jobs)
{
    Campaign c;
    c.name = "serve-test";
    c.seed = 7;
    std::uint64_t id = 0;
    for (const auto &[workload, slack] : jobs)
        c.jobs.push_back(makeSpec(id++, workload, slack));
    return c;
}

/** What rmtsim_batch would emit locally for the same specs. */
std::string
localJsonl(const Campaign &campaign, bool include_timing = false)
{
    RunnerConfig rcfg;
    rcfg.jobs = 1;
    std::ostringstream os;
    for (const JobSpec &spec : campaign.jobs) {
        const JobResult r = executeJob(spec, rcfg);
        os << resultJson(spec, r, include_timing) << "\n";
    }
    return os.str();
}

double
statusStoreCounter(const std::string &sock, const char *key)
{
    const std::string reply =
        controlRequest(sock, "{\"type\":\"status\"}");
    JsonValue status;
    EXPECT_TRUE(parseJson(reply, status));
    const JsonValue *store = status.find("store");
    EXPECT_NE(store, nullptr);
    return store ? store->numberOr(key, -1) : -1;
}

} // namespace

TEST(ServeDaemon, ResubmissionIsByteIdenticalAndAllHits)
{
    TempDir dir("serve_daemon_resubmit");
    DaemonFixture fx(dir.path);
    const Campaign campaign = makeCampaign(
        {{"gcc", 0}, {"gcc", 32}, {"compress", 0}, {"compress", 32}});

    // Timing stays ON: the store replays the recorded wall-clock, so
    // even wall_ms must match byte-for-byte on the second pass.
    std::ostringstream first, second;
    const RemoteCampaignResult r1 = runRemoteCampaign(
        fx.cfg.socket_path, campaign, /*include_timing=*/true, first);
    EXPECT_EQ(r1.rows, campaign.jobs.size());
    EXPECT_EQ(r1.misses, campaign.jobs.size());
    EXPECT_EQ(r1.hits, 0u);
    EXPECT_EQ(r1.failed, 0u);

    const RemoteCampaignResult r2 = runRemoteCampaign(
        fx.cfg.socket_path, campaign, /*include_timing=*/true, second);
    EXPECT_EQ(r2.rows, campaign.jobs.size());
    EXPECT_EQ(r2.hits, campaign.jobs.size());
    EXPECT_EQ(r2.misses, 0u);

    EXPECT_FALSE(first.str().empty());
    EXPECT_EQ(first.str(), second.str());
}

TEST(ServeDaemon, StreamMatchesInProcessRun)
{
    TempDir dir("serve_daemon_local_equiv");
    DaemonFixture fx(dir.path);
    const Campaign campaign =
        makeCampaign({{"swim", 0}, {"gcc", 16}});

    std::ostringstream remote;
    const RemoteCampaignResult r = runRemoteCampaign(
        fx.cfg.socket_path, campaign, /*include_timing=*/false, remote);
    EXPECT_EQ(r.rows, campaign.jobs.size());
    EXPECT_EQ(remote.str(), localJsonl(campaign));
}

TEST(ServeDaemon, ConcurrentOverlappingClientsDedup)
{
    TempDir dir("serve_daemon_dedup");
    DaemonFixture fx(dir.path, /*jobs=*/2);

    // 3 unique content keys across 4 submitted jobs: the compress/0
    // point appears in both campaigns (under different ids — the key
    // ignores grid position).
    const Campaign a =
        makeCampaign({{"gcc", 0}, {"compress", 0}});
    const Campaign b =
        makeCampaign({{"compress", 0}, {"swim", 0}});

    std::ostringstream out_a, out_b;
    RemoteCampaignResult ra, rb;
    std::thread ta([&] {
        ra = runRemoteCampaign(fx.cfg.socket_path, a, false, out_a);
    });
    std::thread tb([&] {
        rb = runRemoteCampaign(fx.cfg.socket_path, b, false, out_b);
    });
    ta.join();
    tb.join();

    EXPECT_EQ(ra.rows, 2u);
    EXPECT_EQ(rb.rows, 2u);
    // Exactly one simulation per unique key, however the two
    // campaigns raced.
    EXPECT_EQ(ra.misses + rb.misses, 3u);
    EXPECT_EQ(ra.hits + rb.hits, 1u);
    EXPECT_EQ(statusStoreCounter(fx.cfg.socket_path, "misses"), 3);
    EXPECT_EQ(statusStoreCounter(fx.cfg.socket_path, "rows"), 3);

    // Each client's stream is still its own campaign, in its order.
    EXPECT_EQ(out_a.str(), localJsonl(a));
    EXPECT_EQ(out_b.str(), localJsonl(b));
}

TEST(ServeDaemon, ReconnectAfterMidStreamDisconnectRestartsAtRowZero)
{
    TempDir dir("serve_daemon_reconnect");
    DaemonFixture fx(dir.path);
    const Campaign campaign = makeCampaign(
        {{"gcc", 0}, {"compress", 0}, {"swim", 0}, {"gcc", 48}});

    // First client: submit, see the accept, hang up without reading a
    // single row.
    {
        std::string error;
        const int fd = connectUnix(fx.cfg.socket_path, error);
        ASSERT_GE(fd, 0) << error;
        ASSERT_TRUE(sendFrame(fd, tagControl,
                              submitJson(campaign, false)));
        FrameReader reader(fd);
        std::string payload;
        ASSERT_TRUE(reader.next(payload));
        ASSERT_EQ(payload[0], tagControl);
        EXPECT_NE(payload.find("\"accepted\""), std::string::npos);
        ::close(fd);
    }

    // Second client: the full campaign again.  Whatever the daemon
    // managed to finish for the dead client comes from the store;
    // everything else is computed now — and the stream still starts at
    // row 0 in campaign order.
    std::ostringstream out;
    const RemoteCampaignResult r = runRemoteCampaign(
        fx.cfg.socket_path, campaign, /*include_timing=*/false, out);
    EXPECT_EQ(r.rows, campaign.jobs.size());
    EXPECT_EQ(out.str(), localJsonl(campaign));
}

TEST(ServeDaemon, FaultJobsGetVerdictsServerSide)
{
    TempDir dir("serve_daemon_faults");
    DaemonFixture fx(dir.path);

    Campaign campaign = makeCampaign({{"compress", 0}});
    FaultRecord f{};
    f.kind = FaultRecord::Kind::TransientReg;
    f.when = 400;
    f.reg = 5;
    f.bit = 12;
    campaign.jobs[0].faults.push_back(f);

    std::ostringstream remote;
    const RemoteCampaignResult r = runRemoteCampaign(
        fx.cfg.socket_path, campaign, /*include_timing=*/false, remote);
    EXPECT_EQ(r.rows, 1u);
    EXPECT_NE(remote.str().find("\"verdict\""), std::string::npos);

    // Control: the same spec with a locally-built oracle.
    RunnerConfig rcfg;
    rcfg.jobs = 1;
    JobSpec spec = campaign.jobs[0];
    const FaultOracle oracle(
        FaultOracle::goldenImage(spec.workloads, spec.options));
    attachFaultOracle(spec, &oracle);
    const JobResult local = executeJob(spec, rcfg);
    EXPECT_EQ(remote.str(),
              resultJson(spec, local, /*include_timing=*/false) + "\n");
}

TEST(ServeDaemon, SigkillMidCampaignLeavesStoreUsable)
{
    TempDir dir("serve_daemon_sigkill");
    const std::string sock = dir.path + "/d.sock";
    const std::string store_dir = dir.path + "/store";
    const Campaign campaign = makeCampaign({{"gcc", 0},
                                            {"compress", 0},
                                            {"swim", 0},
                                            {"gcc", 24},
                                            {"compress", 24},
                                            {"swim", 24}});

    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        // Child: a real daemon process, fsyncing every row so each
        // published result survives the upcoming SIGKILL.
        DaemonConfig cfg;
        cfg.socket_path = sock;
        cfg.store_dir = store_dir;
        cfg.jobs = 1;
        cfg.store_sync_every = 1;
        Daemon d(cfg);
        try {
            d.open();
        } catch (...) {
            std::_Exit(1);
        }
        std::signal(SIGPIPE, SIG_IGN);
        d.run();
        std::_Exit(0);
    }

    // Parent: wait for the socket, submit, take one row, then kill the
    // daemon mid-campaign.
    std::signal(SIGPIPE, SIG_IGN);
    int fd = -1;
    std::string error;
    for (int tries = 0; tries < 200 && fd < 0; ++tries) {
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
        fd = connectUnix(sock, error);
    }
    ASSERT_GE(fd, 0) << error;
    ASSERT_TRUE(sendFrame(fd, tagControl, submitJson(campaign, false)));
    {
        FrameReader reader(fd);
        std::string payload;
        ASSERT_TRUE(reader.next(payload));      // accepted
        ASSERT_TRUE(reader.next(payload));      // first row
        EXPECT_EQ(payload[0], tagRow);
    }
    ::kill(pid, SIGKILL);
    int wstatus = 0;
    ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(wstatus));
    ::close(fd);

    // The store must reopen cleanly with at least the row we saw.
    {
        ResultStore check;
        ASSERT_NO_THROW(check.open(store_dir));
        EXPECT_GE(check.stats().disk_rows, 1u);
    }

    // A fresh daemon on the same store completes the campaign — and
    // the combined cached+fresh stream is byte-identical to an
    // uninterrupted in-process run.
    DaemonFixture fx2(dir.path);
    std::ostringstream out;
    const RemoteCampaignResult r = runRemoteCampaign(
        sock, campaign, /*include_timing=*/false, out);
    EXPECT_EQ(r.rows, campaign.jobs.size());
    EXPECT_GE(r.hits, 1u);
    EXPECT_EQ(out.str(), localJsonl(campaign));
}
