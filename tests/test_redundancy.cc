#include <gtest/gtest.h>

#include "rmt/redundancy.hh"

using namespace rmt;

namespace
{

RedundantPairParams
smallPair(unsigned lpq_entries = 4)
{
    RedundantPairParams p;
    p.logical = 0;
    p.leading = HwThread{0, 0};
    p.trailing = HwThread{0, 1};
    p.lpq_entries = lpq_entries;
    p.forward_latency_lpq = 0;
    p.forward_latency_lvq = 0;
    return p;
}

} // namespace

TEST(RedundantPair, AggregatesContiguousIntoChunks)
{
    RedundantPair pair(smallPair());
    // 8 contiguous instructions aligned to a frame -> one chunk.
    for (unsigned i = 0; i < 8; ++i)
        ASSERT_TRUE(pair.appendRetired(0x1000 + i * 4, 0, 10));
    ASSERT_TRUE(pair.lpq.available(10));
    const LpqChunk &c = pair.lpq.activeChunk();
    EXPECT_EQ(c.start, 0x1000u);
    EXPECT_EQ(c.count, 8u);
}

TEST(RedundantPair, DiscontinuityTerminatesChunk)
{
    RedundantPair pair(smallPair());
    ASSERT_TRUE(pair.appendRetired(0x1000, 0, 1));
    ASSERT_TRUE(pair.appendRetired(0x1004, 0, 1));
    // Taken branch: next retired pc is discontinuous.
    ASSERT_TRUE(pair.appendRetired(0x2000, 0, 2));
    ASSERT_TRUE(pair.lpq.available(2));
    EXPECT_EQ(pair.lpq.activeChunk().start, 0x1000u);
    EXPECT_EQ(pair.lpq.activeChunk().count, 2u);
}

TEST(RedundantPair, FrameCrossingTerminatesChunk)
{
    RedundantPair pair(smallPair());
    // Start mid-frame: 0x1018, 0x101c are in frame 0x1000; 0x1020 is not.
    ASSERT_TRUE(pair.appendRetired(0x1018, 0, 1));
    ASSERT_TRUE(pair.appendRetired(0x101c, 0, 1));
    ASSERT_TRUE(pair.appendRetired(0x1020, 0, 1));
    ASSERT_TRUE(pair.lpq.available(1));
    EXPECT_EQ(pair.lpq.activeChunk().start, 0x1018u);
    EXPECT_EQ(pair.lpq.activeChunk().count, 2u);
}

TEST(RedundantPair, HalvesBitsTravelWithChunk)
{
    RedundantPair pair(smallPair());
    for (unsigned i = 0; i < 8; ++i)
        ASSERT_TRUE(pair.appendRetired(0x1000 + i * 4, i % 2, 1));
    const LpqChunk &c = pair.lpq.activeChunk();
    for (unsigned i = 0; i < 8; ++i)
        EXPECT_EQ(c.leadHalf[i], i % 2);
}

TEST(RedundantPair, FullLpqStallsAndRetryIsIdempotent)
{
    // Regression: a retried appendRetired after an LPQ-full stall must
    // not duplicate the instruction in the chunk stream (this bug
    // produced spurious control-divergence detections in CRT mode).
    RedundantPair pair(smallPair(1));
    for (unsigned i = 0; i < 8; ++i)
        ASSERT_TRUE(pair.appendRetired(0x1000 + i * 4, 0, 1));
    // LPQ (capacity 1) now holds the full chunk; the next chunk cannot
    // flush, so append of a full aggregation... fill a second chunk:
    for (unsigned i = 0; i < 8; ++i)
        ASSERT_TRUE(pair.appendRetired(0x1020 + i * 4, 0, 2));
    // Aggregation holds chunk 0x1020 (full) and the LPQ is full: the
    // next append must stall...
    EXPECT_FALSE(pair.appendRetired(0x1040, 0, 3));
    EXPECT_FALSE(pair.appendRetired(0x1040, 0, 4));    // retried
    // Drain the LPQ and retry: exactly one 0x1040 enters.
    pair.lpq.ack();
    pair.lpq.commitFetch();
    EXPECT_TRUE(pair.appendRetired(0x1040, 0, 5));
    // Stream check: 0x1020 chunk then (after flush) 0x1040.
    EXPECT_EQ(pair.lpq.activeChunk().start, 0x1020u);
    EXPECT_EQ(pair.lpq.activeChunk().count, 8u);
    pair.lpq.ack();
    pair.lpq.commitFetch();
    ASSERT_TRUE(pair.flushAggregation(6));
    EXPECT_EQ(pair.lpq.activeChunk().start, 0x1040u);
    EXPECT_EQ(pair.lpq.activeChunk().count, 1u);
}

TEST(RedundantPair, IdleFlushEmitsStaleChunk)
{
    RedundantPairParams params = smallPair();
    params.idle_flush_cycles = 8;
    RedundantPair pair(params);
    ASSERT_TRUE(pair.appendRetired(0x1000, 0, 100));
    EXPECT_FALSE(pair.lpq.available(104));
    pair.idleFlush(104);    // too early
    EXPECT_FALSE(pair.lpq.available(104));
    pair.idleFlush(108);
    EXPECT_TRUE(pair.lpq.available(108));
}

TEST(RedundantPair, ForwardLatencyAppliedToChunks)
{
    RedundantPairParams params = smallPair();
    params.forward_latency_lpq = 4;
    params.cross_core_latency = 4;      // CRT
    RedundantPair pair(params);
    for (unsigned i = 0; i < 8; ++i)
        ASSERT_TRUE(pair.appendRetired(0x1000 + i * 4, 0, 10));
    EXPECT_FALSE(pair.lpq.available(17));
    EXPECT_TRUE(pair.lpq.available(18));    // 10 + 4 + 4
}

TEST(RedundantPair, BranchOutcomeQueue)
{
    RedundantPairParams params = smallPair();
    params.forward_latency_lpq = 2;
    RedundantPair pair(params);
    pair.pushBranchOutcome(0x1000, true, 0x2000, 5);
    EXPECT_FALSE(pair.boqFrontAvailable(6));
    ASSERT_TRUE(pair.boqFrontAvailable(7));
    EXPECT_EQ(pair.boqFront().pc, 0x1000u);
    EXPECT_TRUE(pair.boqFront().taken);
    EXPECT_EQ(pair.boqFront().target, 0x2000u);
    pair.boqPop();
    EXPECT_FALSE(pair.boqFrontAvailable(100));
}

TEST(RedundantPair, DetectionRecording)
{
    RedundantPair pair(smallPair());
    EXPECT_FALSE(pair.faultDetected());
    pair.recordDetection(DetectionKind::StoreMismatch, 42);
    EXPECT_TRUE(pair.faultDetected());
    ASSERT_EQ(pair.detections().size(), 1u);
    EXPECT_EQ(pair.detections()[0].kind, DetectionKind::StoreMismatch);
    EXPECT_EQ(pair.detections()[0].cycle, 42u);
}

TEST(RedundantPair, FuTraceComparison)
{
    RedundantPair pair(smallPair());
    pair.pushLeadingFu(0, 3);
    pair.pushLeadingFu(1, 7);
    pair.compareTrailingFu(0, 3);   // same unit
    pair.compareTrailingFu(0, 9);   // different
    EXPECT_EQ(pair.fuPairsCompared(), 2u);
    EXPECT_EQ(pair.fuPairsSameUnit(), 1u);
}

TEST(RedundancyManager, RolesAndLookup)
{
    RedundancyManager rm;
    RedundantPairParams p = smallPair();
    p.leading = HwThread{0, 0};
    p.trailing = HwThread{1, 2};    // CRT-style cross-core
    RedundantPair &pair = rm.addPair(p);

    EXPECT_EQ(rm.roleFor(0, 0), Role::Leading);
    EXPECT_EQ(rm.roleFor(1, 2), Role::Trailing);
    EXPECT_EQ(rm.roleFor(0, 1), Role::Single);
    EXPECT_EQ(rm.pairFor(0, 0), &pair);
    EXPECT_EQ(rm.pairFor(1, 2), &pair);
    EXPECT_EQ(rm.pairFor(1, 3), nullptr);
    EXPECT_FALSE(rm.anyFaultDetected());
    pair.recordDetection(DetectionKind::LvqAddrMismatch, 1);
    EXPECT_TRUE(rm.anyFaultDetected());
}
