#include <gtest/gtest.h>

#include "rmt/store_comparator.hh"

using namespace rmt;

TEST(StoreComparator, MatchVerifies)
{
    StoreComparator sc("sc");
    sc.pushTrailing(0, 0x100, 42, 8, 5);
    bool mismatch = true;
    EXPECT_FALSE(sc.tryVerify(0, 0x100, 42, 8, 4, mismatch)); // too early
    EXPECT_TRUE(sc.tryVerify(0, 0x100, 42, 8, 5, mismatch));
    EXPECT_FALSE(mismatch);
    EXPECT_EQ(sc.comparisons(), 1u);
    EXPECT_EQ(sc.mismatches(), 0u);
}

TEST(StoreComparator, DataMismatchIsFault)
{
    StoreComparator sc("sc");
    sc.pushTrailing(0, 0x100, 42, 8, 0);
    bool mismatch = false;
    EXPECT_TRUE(sc.tryVerify(0, 0x100, 43, 8, 1, mismatch));
    EXPECT_TRUE(mismatch);
    EXPECT_EQ(sc.mismatches(), 1u);
}

TEST(StoreComparator, AddressMismatchIsFault)
{
    StoreComparator sc("sc");
    sc.pushTrailing(0, 0x108, 42, 8, 0);
    bool mismatch = false;
    EXPECT_TRUE(sc.tryVerify(0, 0x100, 42, 8, 1, mismatch));
    EXPECT_TRUE(mismatch);
}

TEST(StoreComparator, SizeMismatchIsFault)
{
    StoreComparator sc("sc");
    sc.pushTrailing(0, 0x100, 42, 4, 0);
    bool mismatch = false;
    EXPECT_TRUE(sc.tryVerify(0, 0x100, 42, 8, 1, mismatch));
    EXPECT_TRUE(mismatch);
}

TEST(StoreComparator, EmptyQueueDefersVerification)
{
    StoreComparator sc("sc");
    bool mismatch = true;
    EXPECT_FALSE(sc.tryVerify(0, 0x100, 42, 8, 100, mismatch));
    EXPECT_FALSE(mismatch);
}

TEST(StoreComparator, OrderedStreamVerifiesInSequence)
{
    StoreComparator sc("sc");
    for (std::uint64_t i = 0; i < 4; ++i)
        sc.pushTrailing(i, 0x100 + i * 8, i, 8, 0);
    bool mismatch = false;
    for (std::uint64_t i = 0; i < 4; ++i) {
        EXPECT_TRUE(sc.tryVerify(i, 0x100 + i * 8, i, 8, 1, mismatch));
        EXPECT_FALSE(mismatch);
    }
    EXPECT_EQ(sc.pendingTrailing(), 0u);
}

TEST(StoreComparator, OutOfOrderTrailingArrival)
{
    // Trailing stores execute out of order; the comparator matches
    // associatively on the store index (the paper's CAM search).
    StoreComparator sc("sc");
    sc.pushTrailing(2, 0x110, 22, 8, 0);
    sc.pushTrailing(1, 0x108, 11, 8, 0);
    bool mismatch = false;
    EXPECT_TRUE(sc.tryVerify(1, 0x108, 11, 8, 1, mismatch));
    EXPECT_FALSE(mismatch);
    EXPECT_TRUE(sc.tryVerify(2, 0x110, 22, 8, 1, mismatch));
    EXPECT_FALSE(mismatch);
}

TEST(StoreComparator, MissingIndexDefers)
{
    StoreComparator sc("sc");
    sc.pushTrailing(5, 0x100, 42, 8, 0);
    bool mismatch = true;
    // Store 4's trailing copy has not executed yet: defer, no fault.
    EXPECT_FALSE(sc.tryVerify(4, 0x100, 42, 8, 1, mismatch));
    EXPECT_FALSE(mismatch);
}

TEST(StoreComparatorDeathTest, DuplicateIndexIsABug)
{
    StoreComparator sc("sc");
    sc.pushTrailing(3, 0x100, 1, 8, 0);
    EXPECT_DEATH(sc.pushTrailing(3, 0x108, 2, 8, 0), "duplicate");
}
