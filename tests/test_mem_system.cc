#include <gtest/gtest.h>

#include "mem/mem_system.hh"

using namespace rmt;

namespace
{

MemSystemParams
fastParams(unsigned checker = 0)
{
    MemSystemParams p;
    p.l2 = CacheParams{"l2", 64 * 1024, 8, 64};
    p.l2_latency = 12;
    p.mem.latency = 100;
    p.checker_penalty = checker;
    return p;
}

CacheParams
l1Params()
{
    return CacheParams{"l1", 4 * 1024, 2, 64};
}

} // namespace

TEST(MemSystem, L1HitIsFree)
{
    MemSystem ms(fastParams());
    Cache l1(l1Params());
    bool hit = false;
    // First access: L2 miss -> memory latency.
    Cycle ready = ms.access(l1, 0x1000, 10, hit);
    EXPECT_FALSE(hit);
    EXPECT_GE(ready, 10 + 100u);
    // After the fill time passes, the block hits in L1.
    ready = ms.access(l1, 0x1000, ready + 1, hit);
    EXPECT_TRUE(hit);
}

TEST(MemSystem, L2HitFasterThanMemory)
{
    MemSystem ms(fastParams());
    Cache l1a(l1Params());
    Cache l1b(l1Params());
    bool hit = false;
    // Core A misses everywhere; fills L2.
    const Cycle first = ms.access(l1a, 0x2000, 0, hit);
    EXPECT_GT(first, 100u);
    // Core B misses L1 but hits L2.
    const Cycle second = ms.access(l1b, 0x2000, first + 1, hit);
    EXPECT_FALSE(hit);
    EXPECT_EQ(second, first + 1 + 12);
}

TEST(MemSystem, MshrMergesConcurrentMisses)
{
    MemSystem ms(fastParams());
    Cache l1(l1Params());
    bool hit = false;
    const Cycle r1 = ms.access(l1, 0x3000, 5, hit);
    EXPECT_FALSE(hit);
    // Second access to the same block while the miss is outstanding
    // merges: same ready cycle, no duplicate memory request.
    const std::uint64_t reqs = ms.mainMemory().requests();
    const Cycle r2 = ms.access(l1, 0x3020, 6, hit);
    EXPECT_FALSE(hit);
    EXPECT_EQ(r1, r2);
    EXPECT_EQ(ms.mainMemory().requests(), reqs);
}

TEST(MemSystem, CheckerPenaltyAddsToMissPath)
{
    MemSystem ms0(fastParams(0));
    MemSystem ms8(fastParams(8));
    Cache a(l1Params()), b(l1Params());
    bool hit = false;
    const Cycle r0 = ms0.access(a, 0x4000, 0, hit);
    const Cycle r8 = ms8.access(b, 0x4000, 0, hit);
    EXPECT_EQ(r8, r0 + 8);
}

TEST(MemSystem, CheckerPenaltyDoesNotAffectHits)
{
    MemSystem ms8(fastParams(8));
    Cache l1(l1Params());
    bool hit = false;
    Cycle ready = ms8.access(l1, 0x5000, 0, hit);
    ready = ms8.access(l1, 0x5000, ready + 1, hit);
    EXPECT_TRUE(hit);
    bool hit2 = false;
    const Cycle again = ms8.access(l1, 0x5000, ready + 2, hit2);
    EXPECT_TRUE(hit2);
    EXPECT_EQ(again, ready + 2);
}

TEST(MemSystem, SeparateL1sTrackSeparateState)
{
    MemSystem ms(fastParams());
    Cache a(l1Params()), b(l1Params());
    bool hit = false;
    Cycle ready = ms.access(a, 0x6000, 0, hit);
    ms.access(a, 0x6000, ready + 1, hit);
    EXPECT_TRUE(hit);
    // Core B still misses its own L1.
    ms.access(b, 0x6000, ready + 1, hit);
    EXPECT_FALSE(hit);
}

TEST(MainMemory, BandwidthQueueing)
{
    MainMemoryParams p;
    p.latency = 50;
    p.channels = 1;
    p.issue_interval = 10;
    MainMemory mem(p);
    const Cycle r1 = mem.access(0);
    const Cycle r2 = mem.access(0);     // queued behind r1's issue slot
    EXPECT_EQ(r1, 50u);
    EXPECT_EQ(r2, 60u);
}

TEST(MainMemory, ChannelsServeInParallel)
{
    MainMemoryParams p;
    p.latency = 50;
    p.channels = 4;
    p.issue_interval = 10;
    MainMemory mem(p);
    EXPECT_EQ(mem.access(0), 50u);
    EXPECT_EQ(mem.access(0), 50u);
    EXPECT_EQ(mem.access(0), 50u);
    EXPECT_EQ(mem.access(0), 50u);
    EXPECT_EQ(mem.access(0), 60u);      // fifth request queues
}
