/**
 * @file
 * Statistical AVF engine (src/avf/) properties:
 *
 *  - Wilson-score intervals match the closed form (including the
 *    k = 0 / k = n extremes where the Wald interval collapses) and
 *    always contain the point estimate;
 *  - the stratified roll-up combines per-stratum estimates with the
 *    textbook weighted mean and normal-approximation variance, and
 *    renormalises weights over the strata that actually have trials;
 *  - buildStrata tiles the strike range contiguously with equal
 *    weights, and drawFault is a pure function of (stratum, rng);
 *  - the StratifiedSampler issues trials whose parameters depend only
 *    on (cell, stratum, trial index) — not on batch size or round
 *    boundaries — tallies verdicts, and terminates a stratum early
 *    once its Wilson interval is tighter than the requested width.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "avf/estimator.hh"
#include "avf/sampler.hh"
#include "avf/stratum.hh"

using namespace rmt;

namespace
{

/** Closed-form Wilson interval, written independently of the
 *  implementation under test. */
Interval
wilsonReference(double k, double n, double z)
{
    const double p = k / n;
    const double z2 = z * z;
    const double centre = (p + z2 / (2 * n)) / (1 + z2 / n);
    const double half = z / (1 + z2 / n) *
                        std::sqrt(p * (1 - p) / n + z2 / (4 * n * n));
    return {centre - half, centre + half};
}

StratifiedSampler::Cell
cell(const std::string &label)
{
    StratifiedSampler::Cell c;
    c.label = label;
    c.workloads = {"gcc"};
    c.options.mode = SimMode::Srt;
    c.options.warmup_insts = 500;
    c.options.measure_insts = 3000;
    return c;
}

SamplerConfig
regOnlyConfig()
{
    SamplerConfig cfg;
    cfg.kinds = {FaultRecord::Kind::TransientReg};
    cfg.windows = 2;
    return cfg;
}

JobResult
verdictResult(const JobSpec &spec, FaultVerdict verdict)
{
    JobResult r;
    r.id = spec.id;
    r.label = spec.label;
    r.status = JobStatus::Ok;
    r.attempts = 1;
    r.has_verdict = true;
    r.verdict = verdict;
    return r;
}

} // namespace

TEST(Estimator, NormalQuantileMatchesKnownValues)
{
    EXPECT_NEAR(normalQuantile(0.5), 0.0, 1e-9);
    EXPECT_NEAR(normalQuantile(0.975), 1.959964, 1e-5);
    EXPECT_NEAR(normalQuantile(0.995), 2.575829, 1e-5);
    EXPECT_NEAR(normalQuantile(0.025), -normalQuantile(0.975), 1e-9);
    EXPECT_NEAR(confidenceZ(0.95), 1.959964, 1e-5);
    EXPECT_NEAR(confidenceZ(0.99), 2.575829, 1e-5);
}

TEST(Estimator, WilsonMatchesClosedForm)
{
    const double z = confidenceZ(0.95);
    const Interval got = wilsonInterval(5, 10, 0.95);
    const Interval want = wilsonReference(5, 10, z);
    EXPECT_NEAR(got.low, want.low, 1e-9);
    EXPECT_NEAR(got.high, want.high, 1e-9);
    // Spot values for k=5, n=10 at 95%.
    EXPECT_NEAR(got.low, 0.2366, 5e-4);
    EXPECT_NEAR(got.high, 0.7634, 5e-4);
}

TEST(Estimator, WilsonBehavesAtTheExtremes)
{
    // k = 0: lower bound exactly 0, upper bound strictly positive
    // (the Wald interval would be [0, 0] here).
    const Interval zero = wilsonInterval(0, 10, 0.95);
    EXPECT_NEAR(zero.low, 0.0, 1e-12);
    EXPECT_NEAR(zero.high, 0.2775, 5e-4);

    // k = n mirrors k = 0.
    const Interval full = wilsonInterval(10, 10, 0.95);
    EXPECT_NEAR(full.high, 1.0, 1e-12);
    EXPECT_NEAR(full.low, 1.0 - zero.high, 1e-9);

    // No trials: the vacuous interval.
    const Interval vacuous = wilsonInterval(0, 0, 0.95);
    EXPECT_DOUBLE_EQ(vacuous.low, 0.0);
    EXPECT_DOUBLE_EQ(vacuous.high, 1.0);
}

TEST(Estimator, WilsonContainsThePointEstimate)
{
    for (std::uint64_t n : {1u, 7u, 32u, 500u}) {
        for (std::uint64_t k = 0; k <= n; k += std::max<std::uint64_t>(
                 1, n / 5)) {
            const Interval ci = wilsonInterval(k, n, 0.95);
            const double p = static_cast<double>(k) / n;
            EXPECT_LE(ci.low, p + 1e-12);
            EXPECT_GE(ci.high, p - 1e-12);
            EXPECT_GE(ci.low, 0.0);
            EXPECT_LE(ci.high, 1.0);
            // Higher confidence never narrows the interval.
            const Interval wider = wilsonInterval(k, n, 0.99);
            EXPECT_LE(wider.low, ci.low + 1e-12);
            EXPECT_GE(wider.high, ci.high - 1e-12);
        }
    }
}

TEST(Estimator, IntervalOverlapIsSymmetricAndCorrect)
{
    const Interval a{0.1, 0.4};
    const Interval b{0.3, 0.6};
    const Interval c{0.5, 0.9};
    EXPECT_TRUE(a.overlaps(b));
    EXPECT_TRUE(b.overlaps(a));
    EXPECT_FALSE(a.overlaps(c));
    EXPECT_FALSE(c.overlaps(a));
    EXPECT_TRUE(b.overlaps(c));
}

TEST(Estimator, RollupIsTheWeightedStratifiedEstimator)
{
    // Two equally-weighted strata: n=100 with 50 unmasked, n=100 with
    // 10 unmasked.  p = 0.5*0.5 + 0.5*0.1 = 0.3, and the normal
    // half-width is z * sqrt(sum w^2 p(1-p)/n).
    StratumCounts a;
    a.trials = 100;
    a.masked = 50;
    a.sdc = 5;
    StratumCounts b;
    b.trials = 100;
    b.masked = 90;
    b.sdc = 1;
    const RollupEstimate roll =
        rollupEstimate({a, b}, {1.0, 1.0}, 0.95);

    EXPECT_NEAR(roll.avf, 0.3, 1e-12);
    EXPECT_EQ(roll.trials, 200u);
    EXPECT_EQ(roll.strata, 2u);

    const double var = 0.25 * 0.5 * 0.5 / 100 + 0.25 * 0.1 * 0.9 / 100;
    const double half = confidenceZ(0.95) * std::sqrt(var);
    EXPECT_NEAR(roll.avf_ci.low, 0.3 - half, 1e-9);
    EXPECT_NEAR(roll.avf_ci.high, 0.3 + half, 1e-9);
    EXPECT_NEAR(roll.sdc_rate, 0.5 * 0.05 + 0.5 * 0.01, 1e-12);
}

TEST(Estimator, RollupSkipsEmptyStrataAndRenormalises)
{
    StratumCounts a;
    a.trials = 40;
    a.masked = 10;       // AVF 0.75
    StratumCounts empty;
    const RollupEstimate with_empty =
        rollupEstimate({a, empty}, {1.0, 1.0}, 0.95);
    const RollupEstimate alone = rollupEstimate({a}, {1.0}, 0.95);

    EXPECT_NEAR(with_empty.avf, alone.avf, 1e-12);
    EXPECT_NEAR(with_empty.avf_ci.low, alone.avf_ci.low, 1e-12);
    EXPECT_NEAR(with_empty.avf_ci.high, alone.avf_ci.high, 1e-12);
    EXPECT_EQ(with_empty.strata, 1u);
    EXPECT_EQ(with_empty.trials, 40u);
}

TEST(Stratum, BuildStrataTilesTheStrikeRange)
{
    const std::vector<FaultRecord::Kind> kinds = {
        FaultRecord::Kind::TransientReg, FaultRecord::Kind::TransientPc};
    const std::uint64_t insts = 3500;
    const auto strata = buildStrata(kinds, 3, insts);
    ASSERT_EQ(strata.size(), 6u);

    for (std::size_t i = 0; i < strata.size(); ++i) {
        const StratumSpec &s = strata[i];
        EXPECT_EQ(s.kind, kinds[i / 3]);
        EXPECT_EQ(s.window, static_cast<unsigned>(i % 3));
        EXPECT_LT(s.lo, s.hi);
        EXPECT_DOUBLE_EQ(s.weight, strata.front().weight);
        // Windows within a kind are contiguous.
        if (i % 3) {
            EXPECT_EQ(s.lo, strata[i - 1].hi);
        }
    }
    // The whole span is the campaign idiom: [insts/12, insts/12 +
    // 2*insts/3).
    EXPECT_EQ(strata.front().lo, insts / 12);
    EXPECT_GE(strata[2].hi, insts / 12 + 2 * (insts / 3) - 3);
    // Stable stratum names distinguish kind and window.
    EXPECT_NE(strata[0].name(), strata[1].name());
    EXPECT_NE(strata[0].name(), strata[3].name());
}

TEST(Stratum, ParseFaultKindsRoundTripsAndRejectsUnknown)
{
    const auto kinds = parseFaultKinds("reg,pc");
    ASSERT_EQ(kinds.size(), 2u);
    EXPECT_EQ(kinds[0], FaultRecord::Kind::TransientReg);
    EXPECT_EQ(kinds[1], FaultRecord::Kind::TransientPc);
    EXPECT_TRUE(parseFaultKinds("").empty());
    EXPECT_THROW(parseFaultKind("bogus"), std::invalid_argument);
    // Pair-resident kinds appear only when the machine has pairs.
    const auto with_pairs = defaultStratifyKinds(true);
    const auto without = defaultStratifyKinds(false);
    EXPECT_GT(with_pairs.size(), without.size());
}

TEST(Stratum, DrawFaultIsDeterministicAndStaysInWindow)
{
    StratumSpec s;
    s.kind = FaultRecord::Kind::TransientReg;
    s.lo = 400;
    s.hi = 900;
    for (std::uint64_t seed = 1; seed <= 64; ++seed) {
        Random a(seed), b(seed);
        const FaultRecord fa = drawFault(s, a, 32);
        const FaultRecord fb = drawFault(s, b, 32);
        EXPECT_EQ(fa.when, fb.when);
        EXPECT_EQ(fa.reg, fb.reg);
        EXPECT_EQ(fa.bit, fb.bit);
        EXPECT_EQ(fa.tid, fb.tid);
        EXPECT_EQ(fa.kind, FaultRecord::Kind::TransientReg);
        EXPECT_GE(fa.when, s.lo);
        EXPECT_LT(fa.when, s.hi);
        EXPECT_LT(fa.reg, 32u);
    }
}

TEST(Sampler, TrialParametersAreBatchInvariant)
{
    // The same (cell, stratum, trial) triple must draw the same fault
    // whatever the batch size, so early termination and executor choice
    // cannot perturb the sample.
    SamplerConfig small = regOnlyConfig();
    small.batch = 4;
    small.max_trials = 12;
    SamplerConfig large = regOnlyConfig();
    large.batch = 12;
    large.max_trials = 12;

    StratifiedSampler a({cell("srt gcc")}, small, 42);
    StratifiedSampler b({cell("srt gcc")}, large, 42);

    std::map<std::string, JobSpec> by_label;
    while (!a.done())
        for (const JobSpec &spec : a.nextRound()) {
            by_label[spec.label] = spec;
            a.record(spec, verdictResult(spec, FaultVerdict::Masked));
        }
    unsigned matched = 0;
    while (!b.done())
        for (const JobSpec &spec : b.nextRound()) {
            const auto it = by_label.find(spec.label);
            ASSERT_NE(it, by_label.end()) << spec.label;
            EXPECT_EQ(spec.seed, it->second.seed);
            ASSERT_EQ(spec.faults.size(), 1u);
            EXPECT_EQ(spec.faults[0].when, it->second.faults[0].when);
            EXPECT_EQ(spec.faults[0].reg, it->second.faults[0].reg);
            EXPECT_EQ(spec.faults[0].bit, it->second.faults[0].bit);
            ++matched;
            b.record(spec, verdictResult(spec, FaultVerdict::Masked));
        }
    EXPECT_EQ(matched, by_label.size());
    EXPECT_EQ(a.issuedTrials(), b.issuedTrials());
}

TEST(Sampler, FixedBudgetIssuesExactlyMaxTrialsPerStratum)
{
    SamplerConfig cfg = regOnlyConfig();
    cfg.batch = 5;
    cfg.max_trials = 12;        // not a multiple of batch
    cfg.ci_width = 0;           // no early stop

    StratifiedSampler s({cell("srt gcc")}, cfg, 7);
    std::uint64_t issued = 0;
    while (!s.done()) {
        const auto round = s.nextRound();
        ASSERT_FALSE(round.empty());
        for (const JobSpec &spec : round) {
            EXPECT_EQ(spec.id, issued++);   // dense, globally increasing
            s.record(spec, verdictResult(spec, FaultVerdict::Detected));
        }
    }
    EXPECT_EQ(issued, 12u * s.strata().size());
    EXPECT_TRUE(s.nextRound().empty());
    for (std::size_t st = 0; st < s.strata().size(); ++st) {
        EXPECT_EQ(s.counts(0, st).trials, 12u);
        EXPECT_EQ(s.counts(0, st).detected, 12u);
        EXPECT_FALSE(s.resolvedEarly(0, st));   // budget, not width
    }
}

TEST(Sampler, StopsEarlyOnceIntervalsAreTight)
{
    SamplerConfig cfg = regOnlyConfig();
    cfg.batch = 8;
    cfg.max_trials = 1000;
    cfg.ci_width = 0.5;     // wilson(0, 8) is already narrower

    StratifiedSampler s({cell("srt gcc")}, cfg, 3);
    unsigned rounds = 0;
    while (!s.done()) {
        ASSERT_LT(rounds, 100u) << "sampler failed to terminate";
        for (const JobSpec &spec : s.nextRound())
            s.record(spec, verdictResult(spec, FaultVerdict::Masked));
        ++rounds;
    }
    EXPECT_EQ(rounds, 1u);
    EXPECT_EQ(s.issuedTrials(), 8u * s.strata().size());
    for (std::size_t st = 0; st < s.strata().size(); ++st)
        EXPECT_TRUE(s.resolvedEarly(0, st));
}

TEST(Sampler, FailedJobsAreExcludedFromTheEstimate)
{
    SamplerConfig cfg = regOnlyConfig();
    cfg.batch = 4;
    cfg.max_trials = 4;

    StratifiedSampler s({cell("srt gcc")}, cfg, 11);
    const auto round = s.nextRound();
    ASSERT_FALSE(round.empty());
    for (std::size_t i = 0; i < round.size(); ++i) {
        if (i % 2) {
            JobResult failed;
            failed.id = round[i].id;
            failed.status = JobStatus::Failed;
            failed.error = "synthetic";
            s.record(round[i], failed);
        } else {
            s.record(round[i],
                     verdictResult(round[i], FaultVerdict::Sdc));
        }
    }
    const StratumCounts &n = s.counts(0, 0);
    EXPECT_EQ(n.trials, 2u);
    EXPECT_EQ(n.failed, 2u);
    EXPECT_EQ(n.sdc, 2u);
    EXPECT_DOUBLE_EQ(n.sdcRate(), 1.0);
}

TEST(Sampler, SummaryJsonCarriesPerStratumEstimatesAndRollup)
{
    SamplerConfig cfg = regOnlyConfig();
    cfg.batch = 6;
    cfg.max_trials = 6;

    StratifiedSampler s({cell("srt gcc"), cell("crt gcc")}, cfg, 5);
    while (!s.done())
        for (const JobSpec &spec : s.nextRound())
            s.record(spec, verdictResult(spec, FaultVerdict::Detected));

    const std::string json = s.summaryJson();
    EXPECT_NE(json.find("\"avf_summary\""), std::string::npos);
    EXPECT_NE(json.find("\"srt gcc\""), std::string::npos);
    EXPECT_NE(json.find("\"crt gcc\""), std::string::npos);
    EXPECT_NE(json.find("\"avf_ci\""), std::string::npos);
    EXPECT_NE(json.find("\"rollup\""), std::string::npos);
    for (const StratumSpec &st : s.strata())
        EXPECT_NE(json.find("\"" + st.name() + "\""), std::string::npos);

    // All-detected trials: every cell rolls up to AVF 1, SDC 0.
    for (std::size_t c = 0; c < 2; ++c) {
        const RollupEstimate roll = s.cellRollup(c);
        EXPECT_DOUBLE_EQ(roll.avf, 1.0);
        EXPECT_DOUBLE_EQ(roll.sdc_rate, 0.0);
        EXPECT_EQ(roll.trials, 6u * s.strata().size());
    }
}
