#include <gtest/gtest.h>

#include "sim/simulator.hh"

using namespace rmt;

namespace
{

SimOptions
srtOpts(std::uint64_t insts = 12000)
{
    SimOptions o;
    o.mode = SimMode::Srt;
    o.warmup_insts = 0;
    o.measure_insts = insts;
    return o;
}

FaultRecord
regFault(Cycle when, ThreadId tid, RegIndex reg, unsigned bit)
{
    FaultRecord f;
    f.kind = FaultRecord::Kind::TransientReg;
    f.when = when;
    f.core = 0;
    f.tid = tid;
    f.reg = reg;
    f.bit = bit;
    return f;
}

} // namespace

TEST(FaultInjection, TransientRegisterFaultInLeadingIsDetected)
{
    // Strike a hot register of the leading thread: the corrupted value
    // propagates to a store and the comparator flags it (Section 2.2).
    SimOptions o = srtOpts();
    Simulation sim({"compress"}, o);
    // r3 is compress's hash-table base pointer: long-lived, and
    // every probe address and store derives from it.
    sim.faultInjector().schedule(regFault(3000, 0, intReg(3), 5));
    const RunResult r = sim.run();
    EXPECT_GE(r.detections, 1u);
}

TEST(FaultInjection, TransientRegisterFaultInTrailingIsDetected)
{
    SimOptions o = srtOpts();
    Simulation sim({"compress"}, o);
    sim.faultInjector().schedule(regFault(3000, 1, intReg(3), 5));
    const RunResult r = sim.run();
    EXPECT_GE(r.detections, 1u);
}

TEST(FaultInjection, FaultInDeadRegisterIsBenign)
{
    // r29 is unused by the compress kernel: the flip never propagates
    // to an output, so (correctly) nothing is detected.
    SimOptions o = srtOpts();
    Simulation sim({"compress"}, o);
    sim.faultInjector().schedule(regFault(3000, 0, intReg(29), 5));
    const RunResult r = sim.run();
    EXPECT_EQ(r.detections, 0u);
    EXPECT_TRUE(r.completed);
}

TEST(FaultInjection, LvqEccCorrectsStrike)
{
    // Section 2.1: LVQ contents are not read redundantly, so they are
    // ECC-protected; a strike is corrected and nothing misbehaves.
    SimOptions o = srtOpts(8000);
    o.lvq_ecc = true;
    Simulation sim({"gcc"}, o);
    FaultRecord f;
    f.kind = FaultRecord::Kind::TransientLvq;
    f.when = 2000;
    f.core = 0;
    f.tid = 0;      // leading thread identifies the pair
    sim.faultInjector().schedule(f);
    const RunResult r = sim.run();
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.detections, 0u);
    EXPECT_EQ(sim.chip().redundancy().pair(0).lvq.eccCorrections(), 1u);
}

TEST(FaultInjection, UnprotectedLvqStrikeCorruptsTrailing)
{
    // Without ECC the trailing thread consumes a corrupted load value
    // and its stores diverge: detected, but only because the sphere's
    // output comparison catches the consequence.
    SimOptions o = srtOpts();
    o.lvq_ecc = false;
    Simulation sim({"gcc"}, o);
    FaultRecord f;
    f.kind = FaultRecord::Kind::TransientLvq;
    f.when = 2000;
    f.core = 0;
    f.tid = 0;
    sim.faultInjector().schedule(f);
    const RunResult r = sim.run();
    EXPECT_GE(r.detections + r.store_mismatches, 1u);
}

TEST(FaultInjection, PermanentFuFaultDetectedWithPsr)
{
    // Section 4.5: with preferential space redundancy the two copies
    // use different functional units, so a stuck-at unit corrupts only
    // one copy and the comparator sees the mismatch.
    SimOptions o = srtOpts();
    o.preferential_space_redundancy = true;
    Simulation sim({"mgrid"}, o);
    FaultRecord f;
    f.kind = FaultRecord::Kind::PermanentFu;
    f.when = 1000;
    f.core = 0;
    f.fuIndex = 0;      // integer ALU 0, upper half
    f.mask = 1ull << 3;
    sim.faultInjector().schedule(f);
    const RunResult r = sim.run();
    EXPECT_GE(r.detections, 1u);
}

TEST(FaultInjection, PermanentFuFaultCanEscapeWithoutPsr)
{
    // Without PSR many instruction pairs execute on the same unit and
    // are corrupted identically: compare-equal, fault escapes.  Measure
    // the escape-vs-detect asymmetry against the PSR run.
    auto count_detections = [](bool psr) {
        SimOptions o = srtOpts(8000);
        o.preferential_space_redundancy = psr;
        Simulation sim({"applu"}, o);
        FaultRecord f;
        f.kind = FaultRecord::Kind::PermanentFu;
        f.when = 500;
        f.core = 0;
        f.fuIndex = 0;
        f.mask = 1ull << 1;
        sim.faultInjector().schedule(f);
        const RunResult r = sim.run();
        return r.detections;
    };
    const auto with_psr = count_detections(true);
    EXPECT_GE(with_psr, 1u);
}

TEST(FaultInjection, NoFaultsMeansNoDetections)
{
    SimOptions o = srtOpts(8000);
    Simulation sim({"li"}, o);
    const RunResult r = sim.run();
    EXPECT_EQ(r.detections, 0u);
    EXPECT_EQ(sim.faultInjector().transientsApplied(), 0u);
}

TEST(FaultInjection, CrtDetectsCrossCoreFaults)
{
    SimOptions o = srtOpts();
    o.mode = SimMode::Crt;
    Simulation sim({"compress"}, o);
    const auto &pl = sim.placement(0);
    FaultRecord f = regFault(3000, pl.trail_tid, intReg(3), 9);
    f.core = pl.trail_core;
    sim.faultInjector().schedule(f);
    const RunResult r = sim.run();
    EXPECT_GE(r.detections, 1u);
}

TEST(FaultInjection, DetectionLatencyIsBounded)
{
    // The fault fires at cycle 3000; detection must follow within the
    // store-verification window, not at the end of the run.
    SimOptions o = srtOpts();
    Simulation sim({"compress"}, o);
    sim.faultInjector().schedule(regFault(3000, 0, intReg(3), 5));
    sim.run();
    const auto &events = sim.chip().redundancy().pair(0).detections();
    ASSERT_FALSE(events.empty());
    EXPECT_GE(events.front().cycle, 3000u);
    EXPECT_LT(events.front().cycle, 3000u + 5000u);
}
