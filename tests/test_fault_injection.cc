#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "rmt/fault_oracle.hh"
#include "runner/runner.hh"
#include "sim/simulator.hh"

using namespace rmt;

namespace
{

SimOptions
srtOpts(std::uint64_t insts = 12000)
{
    SimOptions o;
    o.mode = SimMode::Srt;
    o.warmup_insts = 0;
    o.measure_insts = insts;
    return o;
}

FaultRecord
regFault(Cycle when, ThreadId tid, RegIndex reg, unsigned bit)
{
    FaultRecord f;
    f.kind = FaultRecord::Kind::TransientReg;
    f.when = when;
    f.core = 0;
    f.tid = tid;
    f.reg = reg;
    f.bit = bit;
    return f;
}

} // namespace

TEST(FaultInjection, TransientRegisterFaultInLeadingIsDetected)
{
    // Strike a hot register of the leading thread: the corrupted value
    // propagates to a store and the comparator flags it (Section 2.2).
    SimOptions o = srtOpts();
    Simulation sim({"compress"}, o);
    // r3 is compress's hash-table base pointer: long-lived, and
    // every probe address and store derives from it.
    sim.faultInjector().schedule(regFault(3000, 0, intReg(3), 5));
    const RunResult r = sim.run();
    EXPECT_GE(r.detections, 1u);
}

TEST(FaultInjection, TransientRegisterFaultInTrailingIsDetected)
{
    SimOptions o = srtOpts();
    Simulation sim({"compress"}, o);
    sim.faultInjector().schedule(regFault(3000, 1, intReg(3), 5));
    const RunResult r = sim.run();
    EXPECT_GE(r.detections, 1u);
}

TEST(FaultInjection, FaultInDeadRegisterIsBenign)
{
    // r29 is unused by the compress kernel: the flip never propagates
    // to an output, so (correctly) nothing is detected.
    SimOptions o = srtOpts();
    Simulation sim({"compress"}, o);
    sim.faultInjector().schedule(regFault(3000, 0, intReg(29), 5));
    const RunResult r = sim.run();
    EXPECT_EQ(r.detections, 0u);
    EXPECT_TRUE(r.completed);
}

TEST(FaultInjection, LvqEccCorrectsStrike)
{
    // Section 2.1: LVQ contents are not read redundantly, so they are
    // ECC-protected; a strike is corrected and nothing misbehaves.
    SimOptions o = srtOpts(8000);
    o.lvq_ecc = true;
    Simulation sim({"gcc"}, o);
    FaultRecord f;
    f.kind = FaultRecord::Kind::TransientLvq;
    f.when = 2000;
    f.core = 0;
    f.tid = 0;      // leading thread identifies the pair
    sim.faultInjector().schedule(f);
    const RunResult r = sim.run();
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.detections, 0u);
    EXPECT_EQ(sim.chip().redundancy().pair(0).lvq.eccCorrections(), 1u);
}

TEST(FaultInjection, UnprotectedLvqStrikeCorruptsTrailing)
{
    // Without ECC the trailing thread consumes a corrupted load value
    // and its stores diverge: detected, but only because the sphere's
    // output comparison catches the consequence.
    SimOptions o = srtOpts();
    o.lvq_ecc = false;
    Simulation sim({"gcc"}, o);
    FaultRecord f;
    f.kind = FaultRecord::Kind::TransientLvq;
    f.when = 2000;
    f.core = 0;
    f.tid = 0;
    sim.faultInjector().schedule(f);
    const RunResult r = sim.run();
    EXPECT_GE(r.detections + r.store_mismatches, 1u);
}

TEST(FaultInjection, PermanentFuFaultDetectedWithPsr)
{
    // Section 4.5: with preferential space redundancy the two copies
    // use different functional units, so a stuck-at unit corrupts only
    // one copy and the comparator sees the mismatch.
    SimOptions o = srtOpts();
    o.preferential_space_redundancy = true;
    Simulation sim({"mgrid"}, o);
    FaultRecord f;
    f.kind = FaultRecord::Kind::PermanentFu;
    f.when = 1000;
    f.core = 0;
    f.fuIndex = 0;      // integer ALU 0, upper half
    f.mask = 1ull << 3;
    sim.faultInjector().schedule(f);
    const RunResult r = sim.run();
    EXPECT_GE(r.detections, 1u);
}

TEST(FaultInjection, PermanentFuFaultCanEscapeWithoutPsr)
{
    // Without PSR many instruction pairs execute on the same unit and
    // are corrupted identically: compare-equal, fault escapes.  Measure
    // the escape-vs-detect asymmetry against the PSR run.
    auto count_detections = [](bool psr) {
        SimOptions o = srtOpts(8000);
        o.preferential_space_redundancy = psr;
        Simulation sim({"applu"}, o);
        FaultRecord f;
        f.kind = FaultRecord::Kind::PermanentFu;
        f.when = 500;
        f.core = 0;
        f.fuIndex = 0;
        f.mask = 1ull << 1;
        sim.faultInjector().schedule(f);
        const RunResult r = sim.run();
        return r.detections;
    };
    const auto with_psr = count_detections(true);
    EXPECT_GE(with_psr, 1u);
}

TEST(FaultInjection, NoFaultsMeansNoDetections)
{
    SimOptions o = srtOpts(8000);
    Simulation sim({"li"}, o);
    const RunResult r = sim.run();
    EXPECT_EQ(r.detections, 0u);
    EXPECT_EQ(sim.faultInjector().transientsApplied(), 0u);
}

TEST(FaultInjection, CrtDetectsCrossCoreFaults)
{
    SimOptions o = srtOpts();
    o.mode = SimMode::Crt;
    Simulation sim({"compress"}, o);
    const auto &pl = sim.placement(0);
    FaultRecord f = regFault(3000, pl.trail_tid, intReg(3), 9);
    f.core = pl.trail_core;
    sim.faultInjector().schedule(f);
    const RunResult r = sim.run();
    EXPECT_GE(r.detections, 1u);
}

TEST(FaultInjection, DetectionLatencyIsBounded)
{
    // The fault fires at cycle 3000; detection must follow within the
    // store-verification window, not at the end of the run.
    SimOptions o = srtOpts();
    Simulation sim({"compress"}, o);
    sim.faultInjector().schedule(regFault(3000, 0, intReg(3), 5));
    sim.run();
    const auto &events = sim.chip().redundancy().pair(0).detections();
    ASSERT_FALSE(events.empty());
    EXPECT_GE(events.front().cycle, 3000u);
    EXPECT_LT(events.front().cycle, 3000u + 5000u);
}

TEST(FaultInjection, CleanRunReportsCompletedOutcome)
{
    SimOptions o = srtOpts(8000);
    Simulation sim({"compress"}, o);
    const RunResult r = sim.run();
    EXPECT_EQ(r.outcome, Outcome::Completed);
    EXPECT_TRUE(r.completed);
}

TEST(FaultInjection, SqDataStrikeDetectedUnderSrtButSilentUnderBase)
{
    // The store queue holds data the comparator has not yet verified:
    // under SRT the corrupted store mismatches the trailing copy;
    // under the base machine the same strike reaches memory unnoticed.
    const FaultRecord f = parseFaultSpec("sqd:2000:0:0:3");

    SimOptions base = srtOpts();
    base.mode = SimMode::Base;
    const FaultOracle base_oracle(
        FaultOracle::goldenImage({"compress"}, base));
    {
        Simulation sim({"compress"}, base);
        sim.faultInjector().schedule(f);
        const RunResult r = sim.run();
        const FaultTrialReport rep = base_oracle.classify(sim, r, f);
        EXPECT_EQ(r.detections, 0u);
        EXPECT_EQ(rep.verdict, FaultVerdict::Sdc);
    }

    const SimOptions srt = srtOpts();
    const FaultOracle srt_oracle(
        FaultOracle::goldenImage({"compress"}, srt));
    {
        Simulation sim({"compress"}, srt);
        sim.faultInjector().schedule(f);
        const RunResult r = sim.run();
        const FaultTrialReport rep = srt_oracle.classify(sim, r, f);
        EXPECT_GE(r.detections, 1u);
        EXPECT_EQ(rep.verdict, FaultVerdict::Detected);
        EXPECT_TRUE(rep.latency_valid);
    }
}

TEST(FaultInjection, SqAddressStrikeIsDetected)
{
    SimOptions o = srtOpts();
    Simulation sim({"compress"}, o);
    sim.faultInjector().schedule(parseFaultSpec("sqa:2000:0:0:4"));
    const RunResult r = sim.run();
    EXPECT_GE(r.detections, 1u);
}

TEST(FaultInjection, LpqStrikeIsDetected)
{
    // A corrupted line-prediction chunk start steers the trailing
    // fetch to the wrong line; the divergence surfaces at output
    // comparison, not as wrong memory.
    SimOptions o = srtOpts();
    const FaultOracle oracle(FaultOracle::goldenImage({"gcc"}, o));
    Simulation sim({"gcc"}, o);
    const FaultRecord f = parseFaultSpec("lpq:2000:0:0:2");
    sim.faultInjector().schedule(f);
    const RunResult r = sim.run();
    const FaultTrialReport rep = oracle.classify(sim, r, f);
    EXPECT_GE(r.detections, 1u);
    EXPECT_EQ(rep.verdict, FaultVerdict::Detected);
}

TEST(FaultInjection, BoqStrikeIsDetectedUnderBoqFrontend)
{
    // The strike flips the taken-target of the queue's front entry; a
    // taken branch must be at the front for it to matter, hence the
    // probed strike cycle.
    SimOptions o = srtOpts();
    o.trailing_fetch = TrailingFetchMode::BranchOutcomeQueue;
    const FaultOracle oracle(FaultOracle::goldenImage({"gcc"}, o));
    Simulation sim({"gcc"}, o);
    const FaultRecord f = parseFaultSpec("boq:2500:0:0:5");
    sim.faultInjector().schedule(f);
    const RunResult r = sim.run();
    const FaultTrialReport rep = oracle.classify(sim, r, f);
    EXPECT_GE(r.detections, 1u);
    EXPECT_EQ(rep.verdict, FaultVerdict::Detected);
}

TEST(FaultInjection, PcStrikeHangIsTerminatedByWatchdog)
{
    // A high-bit PC flip sends the leading thread into unmapped space
    // where it fetches a synthetic Halt; the trailing thread starves
    // at its next branch with an empty BOQ.  Nothing detects, nothing
    // commits — only the watchdog ends the run, in bounded time.
    // compress's well-predicted loop matters here: on a workload with
    // frequent mispredicts the flip is overwritten by the next branch
    // redirect before the stray Halt can commit.
    SimOptions o = srtOpts();
    o.trailing_fetch = TrailingFetchMode::BranchOutcomeQueue;
    Simulation sim({"compress"}, o);
    sim.faultInjector().schedule(parseFaultSpec("pc:2500:0:0:40"));
    const RunResult r = sim.run();
    EXPECT_EQ(r.outcome, Outcome::Hang);
    EXPECT_FALSE(r.completed);
    EXPECT_EQ(r.detections, 0u);
    // when + hang_cycles + drain, with slack for the commit that
    // refreshes the watchdog just before the strike lands.
    EXPECT_LT(r.total_cycles, 2500u + o.hang_cycles + 10000u);
}

TEST(FaultInjection, DecodeOpcodeStrikeIsDetected)
{
    // Bit >= 48 swaps the opcode for its decode-table sibling in one
    // copy only; the corrupted result diverges at output comparison.
    // Strike the trailing thread: its fetch follows resolved outcomes,
    // so the corrupted instruction is on the committed path (a leading
    // strike usually lands on a wrong-path instruction and squashes).
    SimOptions o = srtOpts();
    Simulation sim({"gcc"}, o);
    sim.faultInjector().schedule(parseFaultSpec("dec:2000:0:1:50"));
    const RunResult r = sim.run();
    EXPECT_GE(r.detections, 1u);
}

TEST(FaultInjection, MergeBufferEccCorrectsStrike)
{
    // The merge buffer sits outside the sphere: comparison cannot see
    // a strike there, so the paper gives it ECC.
    SimOptions o = srtOpts();
    const FaultOracle oracle(FaultOracle::goldenImage({"gcc"}, o));
    Simulation sim({"gcc"}, o);
    const FaultRecord f = parseFaultSpec("mb:2000:0:0:3");
    sim.faultInjector().schedule(f);
    const RunResult r = sim.run();
    EXPECT_EQ(r.detections, 0u);
    EXPECT_EQ(sim.chip().cpu(0).mergeEccCorrections(), 1u);
    EXPECT_EQ(oracle.classify(sim, r, f).verdict, FaultVerdict::Masked);
}

TEST(FaultInjection, MergeBufferStrikeEscapesWithoutEcc)
{
    // Disabling the ECC measures the exposure: the strike lands after
    // output comparison, so even SRT ends in silent data corruption.
    SimOptions o = srtOpts();
    o.merge_buffer_ecc = false;
    const FaultOracle oracle(FaultOracle::goldenImage({"gcc"}, o));
    Simulation sim({"gcc"}, o);
    const FaultRecord f = parseFaultSpec("mb:9000:0:0:3");
    sim.faultInjector().schedule(f);
    const RunResult r = sim.run();
    EXPECT_EQ(r.detections, 0u);
    EXPECT_EQ(oracle.classify(sim, r, f).verdict, FaultVerdict::Sdc);
}

TEST(FaultInjection, ScheduleRejectsMalformedRecords)
{
    SimOptions o = srtOpts();
    Simulation sim({"compress"}, o);
    FaultInjector &inj = sim.faultInjector();

    EXPECT_NO_THROW(inj.schedule(regFault(1000, 0, intReg(3), 5)));
    // Register 0 is hardwired and indices stop at numArchRegs.
    EXPECT_THROW(inj.schedule(regFault(1000, 0, 0, 5)),
                 std::invalid_argument);
    EXPECT_THROW(inj.schedule(regFault(1000, 0, numArchRegs, 5)),
                 std::invalid_argument);
    // Bit positions are 0..63.
    EXPECT_THROW(inj.schedule(regFault(1000, 0, intReg(3), 64)),
                 std::invalid_argument);
    // Nonexistent core / thread context.
    FaultRecord bad_core = regFault(1000, 0, intReg(3), 5);
    bad_core.core = 7;
    EXPECT_THROW(inj.schedule(bad_core), std::invalid_argument);
    EXPECT_THROW(inj.schedule(regFault(1000, 9, intReg(3), 5)),
                 std::invalid_argument);
    // FU ids name a unit within a class pool (int pool: units 0..7).
    FaultRecord fu;
    fu.kind = FaultRecord::Kind::PermanentFu;
    fu.when = 1000;
    fu.fuIndex = 9;
    EXPECT_THROW(inj.schedule(fu), std::invalid_argument);
    fu.fuIndex = 70;
    EXPECT_THROW(inj.schedule(fu), std::invalid_argument);
    fu.fuIndex = 0;
    fu.mask = 0;
    EXPECT_THROW(inj.schedule(fu), std::invalid_argument);
}

TEST(FaultInjection, ScheduleRejectsPairKindsWithoutPairs)
{
    SimOptions o = srtOpts();
    o.mode = SimMode::Base;
    Simulation sim({"compress"}, o);
    FaultRecord f;
    f.kind = FaultRecord::Kind::TransientLvq;
    f.when = 1000;
    EXPECT_THROW(sim.faultInjector().schedule(f),
                 std::invalid_argument);
}

TEST(FaultInjection, ParseFaultSpecRejectsGarbage)
{
    EXPECT_THROW(parseFaultSpec("bogus:1:0:0:3"),
                 std::invalid_argument);
    EXPECT_THROW(parseFaultSpec("sqd:1:0"), std::invalid_argument);
    EXPECT_THROW(parseFaultSpec("reg:1:0:three:5"),
                 std::invalid_argument);
    EXPECT_THROW(parseFaultSpec(""), std::invalid_argument);

    const FaultRecord f = parseFaultSpec("pc:2500:0:1:40");
    EXPECT_EQ(f.kind, FaultRecord::Kind::TransientPc);
    EXPECT_EQ(f.when, 2500u);
    EXPECT_EQ(f.core, 0);
    EXPECT_EQ(f.tid, 1);
    EXPECT_EQ(f.bit, 40u);
}

TEST(FaultInjection, LatencyAttributionFollowsTheFaultedPair)
{
    // Regression for the old bench classifier, which read
    // pair(0).detections().front() whatever pair the fault hit: with
    // the strike on pair 1, pair 0 has no events at all, so any
    // pair(0)-based latency would be fabricated.
    SimOptions o = srtOpts();
    Simulation sim({"gcc", "compress"}, o);
    const auto &pl = sim.placement(1);
    FaultRecord f = regFault(3000, pl.lead_tid, intReg(3), 5);
    f.core = pl.lead_core;
    sim.faultInjector().schedule(f);
    const RunResult r = sim.run();
    EXPECT_GE(r.detections, 1u);
    EXPECT_TRUE(sim.chip().redundancy().pair(0).detections().empty());

    const FaultOracle oracle(
        FaultOracle::goldenImage({"gcc", "compress"}, o, 1), 1);
    const FaultTrialReport rep = oracle.classify(sim, r, f);
    EXPECT_EQ(rep.faulted_pair, 1);
    EXPECT_EQ(rep.verdict, FaultVerdict::Detected);
    ASSERT_TRUE(rep.latency_valid);
    EXPECT_LT(rep.detection_latency, 5000u);
}

TEST(FaultInjection, ClassifiedCampaignIsDeterministicAcrossJobLevels)
{
    // The whole classified-artifact chain — runner, oracle post_run,
    // JSONL serialisation — must be byte-identical however many
    // workers execute it.
    const SimOptions o = srtOpts(6000);
    const FaultOracle oracle(FaultOracle::goldenImage({"compress"}, o));
    auto campaignJson = [&](unsigned jobs) {
        const char *specs[] = {"reg:2000:0:0:3:5", "sqd:2500:0:0:3",
                               "lpq:2200:0:0:2", "pc:2600:0:0:2"};
        Campaign campaign;
        campaign.name = "determinism";
        for (const char *spec : specs) {
            JobSpec js;
            js.id = campaign.jobs.size();
            js.label = spec;
            js.workloads = {"compress"};
            js.options = o;
            js.faults.push_back(parseFaultSpec(spec));
            attachFaultOracle(js, &oracle);
            campaign.jobs.push_back(std::move(js));
        }
        std::ostringstream os;
        JsonlSink::Options sopts;
        sopts.progress = false;
        sopts.include_timing = false;
        JsonlSink sink(os, sopts);
        RunnerConfig cfg;
        cfg.jobs = jobs;
        cfg.sink = &sink;
        runCampaign(campaign, cfg);
        return os.str();
    };
    const std::string serial = campaignJson(1);
    EXPECT_FALSE(serial.empty());
    EXPECT_NE(serial.find("\"verdict\""), std::string::npos);
    EXPECT_EQ(serial, campaignJson(4));
}
