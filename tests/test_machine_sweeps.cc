#include <gtest/gtest.h>

#include "sim/simulator.hh"

using namespace rmt;

namespace
{

/**
 * Property sweeps over the machine configuration: for a wide range of
 * structure sizes the simulator must stay architecturally exact (cosim
 * asserts that internally) and performance must respond to resources
 * in the physically sensible direction.
 */
double
ipcWith(const std::function<void(SmtParams &)> &tweak,
        const std::string &workload = "compress", SimMode mode = SimMode::Base)
{
    SimOptions o;
    o.mode = mode;
    o.warmup_insts = 2000;
    o.measure_insts = 10000;
    o.cosim = true;
    tweak(o.cpu);
    const RunResult r = runSimulation({workload}, o);
    EXPECT_TRUE(r.completed);
    return r.threads[0].ipc;
}

class IqSizes : public ::testing::TestWithParam<unsigned>
{
};
class IssueWidths : public ::testing::TestWithParam<unsigned>
{
};
class CacheSizes : public ::testing::TestWithParam<unsigned>
{
};

} // namespace

TEST_P(IqSizes, CorrectAtEverySize)
{
    const unsigned size = GetParam();
    const double ipc = ipcWith([&](SmtParams &p) {
        p.iq_entries = size;
        p.iq_reserved_per_thread = std::min(4u, size / 4);
    });
    EXPECT_GT(ipc, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Sweep, IqSizes,
                         ::testing::Values(16u, 32u, 64u, 128u, 256u));

TEST_P(IssueWidths, CorrectAtEveryWidth)
{
    const unsigned width = GetParam();
    const double ipc = ipcWith([&](SmtParams &p) {
        p.issue_width = width;
        p.issue_per_half = std::max(1u, width / 2);
    });
    EXPECT_GT(ipc, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Sweep, IssueWidths,
                         ::testing::Values(1u, 2u, 4u, 8u));

TEST_P(CacheSizes, CorrectAtEverySize)
{
    const unsigned kb = GetParam();
    const double ipc = ipcWith([&](SmtParams &p) {
        p.dcache.size_bytes = kb * 1024;
        p.icache.size_bytes = kb * 1024;
    });
    EXPECT_GT(ipc, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Sweep, CacheSizes,
                         ::testing::Values(4u, 16u, 64u, 256u));

TEST(MachineSweeps, MoreIssueWidthNeverSlower)
{
    const double narrow = ipcWith([](SmtParams &p) {
        p.issue_width = 2;
        p.issue_per_half = 1;
    });
    const double wide = ipcWith([](SmtParams &p) {
        p.issue_width = 8;
        p.issue_per_half = 4;
    });
    EXPECT_GE(wide, narrow * 0.98);
}

TEST(MachineSweeps, BiggerIqNeverSlower)
{
    const double small = ipcWith([](SmtParams &p) { p.iq_entries = 16; });
    const double big = ipcWith([](SmtParams &p) { p.iq_entries = 128; });
    EXPECT_GE(big, small * 0.98);
}

TEST(MachineSweeps, BiggerDcacheHelpsCacheBoundCode)
{
    // compress reuses a 16 KB hash table: a 4 KB D-cache thrashes it,
    // the full 64 KB holds it.  (swim would not discriminate: its
    // streaming arrays miss at any L1 size.)
    const double tiny = ipcWith(
        [](SmtParams &p) { p.dcache.size_bytes = 4 * 1024; }, "compress");
    const double full = ipcWith(
        [](SmtParams &p) { p.dcache.size_bytes = 64 * 1024; },
        "compress");
    EXPECT_GT(full, tiny);
}

TEST(MachineSweeps, LongerMemoryLatencyHurts)
{
    SimOptions fast;
    fast.warmup_insts = 2000;
    fast.measure_insts = 10000;
    fast.mem.mem.latency = 40;
    SimOptions slow = fast;
    slow.mem.mem.latency = 400;
    const RunResult f = runSimulation({"swim"}, fast);
    const RunResult s = runSimulation({"swim"}, slow);
    EXPECT_GT(f.threads[0].ipc, s.threads[0].ipc);
}

TEST(MachineSweeps, SrtCorrectUnderEveryFrontLatency)
{
    for (unsigned lat : {0u, 2u, 8u, 24u}) {
        SimOptions o;
        o.mode = SimMode::Srt;
        o.warmup_insts = 1000;
        o.measure_insts = 6000;
        o.cosim = true;
        o.cpu.lpq_forward_latency = lat;
        o.cpu.lvq_forward_latency = lat;
        const RunResult r = runSimulation({"li"}, o);
        EXPECT_TRUE(r.completed) << "latency " << lat;
        EXPECT_EQ(r.detections, 0u) << "latency " << lat;
    }
}

TEST(MachineSweeps, SrtCorrectUnderTinyRmtQueues)
{
    for (unsigned entries : {2u, 4u, 16u, 64u}) {
        SimOptions o;
        o.mode = SimMode::Srt;
        o.warmup_insts = 1000;
        o.measure_insts = 5000;
        o.cosim = true;
        o.cpu.lvq_entries = entries;
        o.cpu.lpq_entries = std::max(2u, entries / 4);
        const RunResult r = runSimulation({"gcc"}, o);
        EXPECT_TRUE(r.completed) << "entries " << entries;
        EXPECT_EQ(r.detections, 0u) << "entries " << entries;
    }
}

TEST(MachineSweeps, DynamicLsqPartitioningIsCorrect)
{
    // The partitioning-policy ablation must not change architecture,
    // only timing: cosim-checked across modes.
    for (const bool dynamic : {false, true}) {
        SimOptions o;
        o.warmup_insts = 1000;
        o.measure_insts = 6000;
        o.cosim = true;
        o.cpu.dynamic_lsq_partition = dynamic;
        o.mode = SimMode::Base;
        EXPECT_TRUE(runSimulation({"vortex", "compress"}, o).completed)
            << "dynamic=" << dynamic;
        o.mode = SimMode::Srt;
        const RunResult srt = runSimulation({"vortex"}, o);
        EXPECT_TRUE(srt.completed) << "dynamic=" << dynamic;
        EXPECT_EQ(srt.detections, 0u) << "dynamic=" << dynamic;
    }
}

TEST(MachineSweeps, SmallerLvqSlowsTrailing)
{
    SimOptions o;
    o.mode = SimMode::Srt;
    o.warmup_insts = 2000;
    o.measure_insts = 10000;
    SimOptions tiny = o;
    tiny.cpu.lvq_entries = 4;
    const RunResult big = runSimulation({"swim"}, o);
    const RunResult small = runSimulation({"swim"}, tiny);
    EXPECT_GE(big.threads[0].ipc, small.threads[0].ipc);
}
