#include <gtest/gtest.h>

#include "cpu/smt_cpu.hh"
#include "mem/mem_system.hh"

using namespace rmt;

namespace
{

constexpr RegIndex r1 = intReg(1);
constexpr RegIndex r2 = intReg(2);
constexpr RegIndex r3 = intReg(3);

Program
makeCounterLoop(std::int64_t iters, Addr result_addr)
{
    ProgramBuilder b("loop");
    b.li(r1, iters);
    b.li(r2, 0);
    b.label("loop");
    b.addi(r2, r2, 2);
    b.addi(r1, r1, -1);
    b.bne(r1, intReg(0), "loop");
    b.li(r3, static_cast<std::int64_t>(result_addr));
    b.stq(r2, r3, 0);
    b.halt();
    return b.build();
}

struct SmtHarness
{
    explicit SmtHarness(unsigned num_threads)
        : memSys(MemSystemParams{})
    {
        SmtParams p;
        p.num_threads = num_threads;
        p.cosim = true;
        cpu = std::make_unique<SmtCpu>(p, memSys, 0);
    }

    void
    addThread(ThreadId tid, const Program &prog)
    {
        mems.push_back(std::make_unique<DataMemory>(64 * 1024));
        cpu->addThread(tid, prog, *mems.back(), tid, Role::Single);
    }

    void
    runAll(Cycle cap = 500000)
    {
        while (!cpu->allThreadsDone() && cpu->cycle() < cap)
            cpu->tick();
        ASSERT_TRUE(cpu->allThreadsDone());
    }

    MemSystem memSys;
    std::unique_ptr<SmtCpu> cpu;
    std::vector<std::unique_ptr<DataMemory>> mems;
    std::vector<Program> progs;
};

} // namespace

TEST(CpuSmt, TwoThreadsBothComplete)
{
    SmtHarness h(2);
    Program p0 = makeCounterLoop(500, 0x100);
    Program p1 = makeCounterLoop(300, 0x200);
    h.addThread(0, p0);
    h.addThread(1, p1);
    h.runAll();
    EXPECT_EQ(h.mems[0]->read(0x100, 8), 1000u);
    EXPECT_EQ(h.mems[1]->read(0x200, 8), 600u);
}

TEST(CpuSmt, FourThreadsBothComplete)
{
    SmtHarness h(4);
    std::vector<Program> progs;
    for (unsigned t = 0; t < 4; ++t)
        progs.push_back(makeCounterLoop(200 + 50 * t, 0x100));
    for (unsigned t = 0; t < 4; ++t)
        h.addThread(static_cast<ThreadId>(t), progs[t]);
    h.runAll();
    for (unsigned t = 0; t < 4; ++t) {
        EXPECT_EQ(h.mems[t]->read(0x100, 8), 2 * (200u + 50 * t))
            << "thread " << t;
    }
}

TEST(CpuSmt, ThreadsMakeConcurrentProgress)
{
    // Both threads should finish in far less than 2x the single-thread
    // time (they share an 8-wide machine running 3-IPC-max loops).
    SmtHarness solo(1);
    Program p = makeCounterLoop(2000, 0x100);
    solo.addThread(0, p);
    solo.runAll();
    const Cycle solo_cycles = solo.cpu->cycle();

    SmtHarness duo(2);
    Program pa = makeCounterLoop(2000, 0x100);
    Program pb = makeCounterLoop(2000, 0x100);
    duo.addThread(0, pa);
    duo.addThread(1, pb);
    duo.runAll();
    EXPECT_LT(duo.cpu->cycle(), 2 * solo_cycles);
    EXPECT_GT(duo.cpu->cycle(), solo_cycles / 2);
}

TEST(CpuSmt, SmtSlowerThanAlone)
{
    // A thread sharing the core cannot be faster than running alone.
    SmtHarness solo(1);
    Program p = makeCounterLoop(2000, 0x100);
    solo.addThread(0, p);
    solo.runAll();

    SmtHarness duo(2);
    Program pa = makeCounterLoop(2000, 0x100);
    Program pb = makeCounterLoop(2000, 0x100);
    duo.addThread(0, pa);
    duo.addThread(1, pb);
    duo.runAll();
    EXPECT_GE(duo.cpu->cycle() + 2, solo.cpu->cycle());
}

TEST(CpuSmt, PerThreadIpcAccounting)
{
    SmtHarness h(2);
    Program pa = makeCounterLoop(1000, 0x100);
    Program pb = makeCounterLoop(1000, 0x100);
    h.addThread(0, pa);
    h.addThread(1, pb);
    h.runAll();
    EXPECT_GT(h.cpu->ipc(0), 0.0);
    EXPECT_GT(h.cpu->ipc(1), 0.0);
    EXPECT_EQ(h.cpu->committed(0), h.cpu->committed(1));
}
