#include <gtest/gtest.h>

#include "sim/metrics.hh"
#include "sim/simulator.hh"

using namespace rmt;

namespace
{

SimOptions
quick(SimMode mode)
{
    SimOptions o;
    o.mode = mode;
    o.warmup_insts = 1000;
    o.measure_insts = 6000;
    return o;
}

} // namespace

TEST(Simulator, BaseRunProducesSaneResult)
{
    const RunResult r = runSimulation({"compress"}, quick(SimMode::Base));
    EXPECT_TRUE(r.completed);
    ASSERT_EQ(r.threads.size(), 1u);
    EXPECT_EQ(r.threads[0].workload, "compress");
    EXPECT_GT(r.threads[0].ipc, 0.1);
    EXPECT_LT(r.threads[0].ipc, 8.0);   // cannot exceed machine width
    EXPECT_GE(r.threads[0].committed, 7000u);
}

TEST(Simulator, WarmupExcludedFromMeasurement)
{
    SimOptions with_warm = quick(SimMode::Base);
    SimOptions no_warm = quick(SimMode::Base);
    no_warm.warmup_insts = 0;
    const RunResult w = runSimulation({"mgrid"}, with_warm);
    const RunResult c = runSimulation({"mgrid"}, no_warm);
    // Warmed measurement can't be slower than the cold one.
    EXPECT_GE(w.threads[0].ipc, c.threads[0].ipc * 0.98);
}

TEST(Simulator, SingleThreadIpcMatchesBaseMode)
{
    SimOptions o = quick(SimMode::Srt);   // mode must be ignored
    const double ipc = singleThreadIpc("li", o);
    const RunResult r = runSimulation({"li"}, quick(SimMode::Base));
    EXPECT_DOUBLE_EQ(ipc, r.threads[0].ipc);
}

TEST(Simulator, SmtEfficiencyMath)
{
    EXPECT_DOUBLE_EQ(smtEfficiency(1.0, 2.0), 0.5);
    EXPECT_DOUBLE_EQ(smtEfficiency(1.0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(meanEfficiency({0.5, 1.0}), 0.75);
    EXPECT_DOUBLE_EQ(meanEfficiency({}), 0.0);
}

TEST(Simulator, BaselineCacheAvoidsResimulation)
{
    SimOptions o = quick(SimMode::Base);
    BaselineCache cache(o);
    const double first = cache.ipc("go");
    const double second = cache.ipc("go");
    EXPECT_DOUBLE_EQ(first, second);
}

TEST(Simulator, EfficiencyOfBaseSingleIsOne)
{
    SimOptions o = quick(SimMode::Base);
    BaselineCache cache(o);
    const RunResult r = runSimulation({"perl"}, o);
    EXPECT_NEAR(cache.efficiency(r), 1.0, 1e-9);
}

TEST(Simulator, MultithreadedBaseDegradesPerThread)
{
    SimOptions o = quick(SimMode::Base);
    BaselineCache cache(o);
    const RunResult r = runSimulation({"compress", "m88ksim"}, o);
    const auto effs = cache.efficiencies(r);
    ASSERT_EQ(effs.size(), 2u);
    for (double e : effs) {
        EXPECT_GT(e, 0.3);
        EXPECT_LT(e, 1.05);     // no thread speeds up from sharing
    }
}

TEST(Simulator, PlacementReporting)
{
    Simulation srt({"gcc"}, quick(SimMode::Srt));
    EXPECT_TRUE(srt.placement(0).redundant);
    EXPECT_EQ(srt.placement(0).lead_core, srt.placement(0).trail_core);

    Simulation crt({"gcc"}, quick(SimMode::Crt));
    EXPECT_TRUE(crt.placement(0).redundant);
    EXPECT_NE(crt.placement(0).lead_core, crt.placement(0).trail_core);

    Simulation base({"gcc"}, quick(SimMode::Base));
    EXPECT_FALSE(base.placement(0).redundant);
}

TEST(Simulator, RejectsOverfullConfigurations)
{
    EXPECT_EXIT(
        {
            Simulation sim({"gcc", "go", "li"}, quick(SimMode::Srt));
        },
        ::testing::ExitedWithCode(1), "at most");
    EXPECT_EXIT(
        {
            Simulation sim({"gcc", "go", "li", "perl", "swim"},
                           quick(SimMode::Base));
        },
        ::testing::ExitedWithCode(1), "at most");
}

TEST(Simulator, RunResultAggregatesRmtStats)
{
    const RunResult r = runSimulation({"vortex"}, quick(SimMode::Srt));
    EXPECT_GT(r.store_comparisons, 0u);
    EXPECT_EQ(r.store_mismatches, 0u);
    EXPECT_GT(r.fu_pairs, 0u);
    EXPECT_GT(r.avg_leading_store_lifetime, 0.0);
}
