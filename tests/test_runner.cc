/**
 * @file
 * Campaign runner: parallel execution must be a pure optimisation.
 * The load-bearing properties:
 *
 *  - determinism: a campaign run at -j 4 yields per-job results
 *    identical to -j 1 (jobs share nothing mutable, so worker count
 *    and completion order cannot leak into the results);
 *  - isolation: one throwing job is retried once, recorded as failed,
 *    and the rest of the campaign completes;
 *  - single-flight: N workers asking for the same single-thread
 *    baseline trigger exactly one simulation per distinct workload.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <thread>

#include "runner/result_sink.hh"
#include "runner/runner.hh"
#include "runner/thread_pool.hh"
#include "sim/metrics.hh"

using namespace rmt;

namespace
{

SimOptions
tinyOptions()
{
    SimOptions o;
    o.warmup_insts = 500;
    o.measure_insts = 3000;
    return o;
}

/** 2 modes x 3 workloads x 2 slack values = 12 jobs. */
Campaign
twelveJobCampaign()
{
    CampaignBuilder b("twelve", 7);
    b.base(tinyOptions())
        .modes({SimMode::Base, SimMode::Srt})
        .workloads({"gcc", "compress", "swim"})
        .sweep("slack", {"0", "16"});
    return b.build();
}

void
expectIdenticalRuns(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.total_cycles, b.total_cycles);
    EXPECT_EQ(a.completed, b.completed);
    ASSERT_EQ(a.threads.size(), b.threads.size());
    for (std::size_t i = 0; i < a.threads.size(); ++i) {
        EXPECT_EQ(a.threads[i].workload, b.threads[i].workload);
        EXPECT_EQ(a.threads[i].cycles, b.threads[i].cycles);
        EXPECT_EQ(a.threads[i].committed, b.threads[i].committed);
        EXPECT_DOUBLE_EQ(a.threads[i].ipc, b.threads[i].ipc);
    }
    EXPECT_EQ(a.detections, b.detections);
    EXPECT_EQ(a.store_comparisons, b.store_comparisons);
    EXPECT_EQ(a.store_mismatches, b.store_mismatches);
    EXPECT_EQ(a.fu_pairs, b.fu_pairs);
    EXPECT_EQ(a.fu_same_unit, b.fu_same_unit);
    EXPECT_EQ(a.sq_full_stalls, b.sq_full_stalls);
    EXPECT_EQ(a.lvq_full_stalls, b.lvq_full_stalls);
    EXPECT_EQ(a.branch_mispredicts, b.branch_mispredicts);
    EXPECT_EQ(a.line_mispredicts, b.line_mispredicts);
}

TEST(CampaignBuilder, ExpandsCartesianGrid)
{
    const Campaign c = twelveJobCampaign();
    ASSERT_EQ(c.jobs.size(), 12u);
    for (std::size_t i = 0; i < c.jobs.size(); ++i)
        EXPECT_EQ(c.jobs[i].id, i);
    // Same grid built twice -> same specs (seeds included).
    const Campaign d = twelveJobCampaign();
    for (std::size_t i = 0; i < c.jobs.size(); ++i) {
        EXPECT_EQ(c.jobs[i].label, d.jobs[i].label);
        EXPECT_EQ(c.jobs[i].seed, d.jobs[i].seed);
    }
}

TEST(ThreadPool, RunsEverySubmittedTask)
{
    ThreadPool pool(4);
    std::atomic<int> counter{0};
    for (int i = 0; i < 200; ++i)
        pool.submit([&counter] { ++counter; });
    pool.wait();
    EXPECT_EQ(counter.load(), 200);
    // Reusable after a wait().
    pool.submit([&counter] { counter += 1000; });
    pool.wait();
    EXPECT_EQ(counter.load(), 1200);
}

TEST(CampaignRunner, ParallelMatchesSerial)
{
    const Campaign campaign = twelveJobCampaign();

    RunnerConfig serial;
    serial.jobs = 1;
    const auto one = runCampaign(campaign, serial);

    RunnerConfig parallel;
    parallel.jobs = 4;
    const auto four = runCampaign(campaign, parallel);

    ASSERT_EQ(one.size(), campaign.jobs.size());
    ASSERT_EQ(four.size(), campaign.jobs.size());
    for (std::size_t i = 0; i < one.size(); ++i) {
        ASSERT_TRUE(one[i].ok()) << one[i].error;
        ASSERT_TRUE(four[i].ok()) << four[i].error;
        EXPECT_EQ(one[i].id, i);
        EXPECT_EQ(four[i].id, i);
        expectIdenticalRuns(one[i].run, four[i].run);
    }
}

TEST(CampaignRunner, SerializedResultsAreOrderIndependent)
{
    const Campaign campaign = twelveJobCampaign();

    JsonlSink::Options opts;
    opts.include_timing = false;    // wall time legitimately varies
    opts.progress = false;

    std::ostringstream one_out, four_out;
    {
        JsonlSink sink(one_out, opts);
        RunnerConfig cfg;
        cfg.jobs = 1;
        cfg.sink = &sink;
        runCampaign(campaign, cfg);
    }
    {
        JsonlSink sink(four_out, opts);
        RunnerConfig cfg;
        cfg.jobs = 4;
        cfg.sink = &sink;
        runCampaign(campaign, cfg);
    }
    EXPECT_EQ(one_out.str(), four_out.str());
    EXPECT_NE(one_out.str().find("\"status\":\"ok\""),
              std::string::npos);
}

TEST(CampaignRunner, ThrowingJobIsRecordedNotFatal)
{
    Campaign campaign = twelveJobCampaign();
    // Poison one mid-campaign job: unknown workloads fail validation
    // with an exception before the Simulation constructor can abort.
    campaign.jobs[5].workloads = {"no-such-benchmark"};

    RunnerConfig cfg;
    cfg.jobs = 4;
    const auto results = runCampaign(campaign, cfg);

    ASSERT_EQ(results.size(), campaign.jobs.size());
    EXPECT_FALSE(results[5].ok());
    EXPECT_NE(results[5].error.find("no-such-benchmark"),
              std::string::npos);
    // Retry-once semantics: default is two attempts, then record.
    EXPECT_EQ(results[5].attempts, 2u);
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (i != 5)
            EXPECT_TRUE(results[i].ok()) << results[i].error;
    }
}

TEST(BaselineCache, SingleFlightSimulatesEachWorkloadOnce)
{
    BaselineCache baseline(tinyOptions());

    // 8 concurrent requesters over 2 distinct workloads.
    ThreadPool pool(8);
    std::atomic<int> mismatches{0};
    for (int i = 0; i < 8; ++i) {
        pool.submit([&baseline, &mismatches, i] {
            const char *wl = i % 2 ? "gcc" : "compress";
            const double a = baseline.ipc(wl);
            const double b = baseline.ipc(wl);
            if (a != b || a <= 0)
                ++mismatches;
        });
    }
    pool.wait();
    EXPECT_EQ(mismatches.load(), 0);
    EXPECT_EQ(baseline.simulations(), 2u);
}

TEST(CampaignRunner, EfficiencySharesOneBaselinePerWorkload)
{
    CampaignBuilder b("eff", 3);
    b.base(tinyOptions())
        .modes({SimMode::Srt})
        .workloads({"gcc", "compress"})
        .sweep("slack", {"0", "8", "16"});
    const Campaign campaign = b.build();    // 6 jobs, 2 workloads

    BaselineCache baseline(tinyOptions());
    RunnerConfig cfg;
    cfg.jobs = 4;
    cfg.baseline = &baseline;
    const auto results = runCampaign(campaign, cfg);

    EXPECT_EQ(baseline.simulations(), 2u);
    for (const auto &r : results) {
        ASSERT_TRUE(r.ok()) << r.error;
        EXPECT_GT(r.mean_efficiency, 0.0);
        EXPECT_LE(r.mean_efficiency, 1.5);
    }
}

TEST(CampaignRunner, InstructionCapClampsBudgets)
{
    CampaignBuilder b("cap", 1);
    b.base(tinyOptions()).modes({SimMode::Base}).workloads({"gcc"});
    const Campaign campaign = b.build();

    RunnerConfig cfg;
    cfg.jobs = 1;
    cfg.max_insts = 1000;   // < warmup+measure of tinyOptions()
    const auto results = runCampaign(campaign, cfg);
    ASSERT_TRUE(results[0].ok()) << results[0].error;
    // warmup is clamped to 500 (its own value), measure to the rest.
    EXPECT_LE(results[0].run.threads[0].committed, 1100u);
}

TEST(CampaignRunner, FaultTrialsAreSeededDeterministically)
{
    CampaignBuilder b("faults", 11);
    SimOptions o = tinyOptions();
    o.warmup_insts = 0;
    b.base(o).modes({SimMode::Srt}).workloads({"compress"});
    b.transientRegTrials(4, 14);
    const Campaign c1 = b.build();
    const Campaign c2 = b.build();
    ASSERT_EQ(c1.jobs.size(), 4u);
    for (std::size_t i = 0; i < c1.jobs.size(); ++i) {
        ASSERT_EQ(c1.jobs[i].faults.size(), 1u);
        const FaultRecord &f1 = c1.jobs[i].faults[0];
        const FaultRecord &f2 = c2.jobs[i].faults[0];
        EXPECT_EQ(f1.when, f2.when);
        EXPECT_EQ(f1.reg, f2.reg);
        EXPECT_EQ(f1.bit, f2.bit);
        EXPECT_LT(f1.reg, 14);
        EXPECT_GE(f1.reg, 1);
    }
    // Different trials draw different strikes (overwhelmingly likely).
    bool any_difference = false;
    for (std::size_t i = 1; i < c1.jobs.size(); ++i) {
        if (c1.jobs[i].faults[0].when != c1.jobs[0].faults[0].when)
            any_difference = true;
    }
    EXPECT_TRUE(any_difference);
}

} // namespace
