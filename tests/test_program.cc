#include <gtest/gtest.h>

#include "isa/program.hh"

using namespace rmt;

TEST(Program, BuilderEmitsInOrder)
{
    ProgramBuilder b("t");
    b.li(intReg(1), 5).addi(intReg(2), intReg(1), 1).halt();
    Program p = b.build();
    ASSERT_EQ(p.size(), 3u);
    EXPECT_EQ(p.insts()[0].op, Op::AddI);
    EXPECT_EQ(p.insts()[2].op, Op::Halt);
    EXPECT_EQ(p.entry(), Program::textBase);
}

TEST(Program, BackwardLabelResolution)
{
    ProgramBuilder b("t");
    b.label("top");
    b.nop();
    b.br("top");
    Program p = b.build();
    // br at index 1; displacement from index 2 back to 0 = -8 bytes.
    EXPECT_EQ(p.insts()[1].imm, -8);
}

TEST(Program, ForwardLabelResolution)
{
    ProgramBuilder b("t");
    b.beq(intReg(1), intReg(2), "end");
    b.nop();
    b.nop();
    b.label("end");
    b.halt();
    Program p = b.build();
    // beq at 0; target index 3; displacement (3-1)*4 = 8.
    EXPECT_EQ(p.insts()[0].imm, 8);
}

TEST(Program, FetchAndContains)
{
    ProgramBuilder b("t");
    b.nop().halt();
    Program p = b.build();
    EXPECT_TRUE(p.contains(Program::textBase));
    EXPECT_TRUE(p.contains(Program::textBase + 4));
    EXPECT_FALSE(p.contains(Program::textBase + 8));
    EXPECT_FALSE(p.contains(Program::textBase + 2));    // misaligned
    EXPECT_FALSE(p.contains(0));
    EXPECT_EQ(p.fetch(Program::textBase).op, Op::Nop);
    // Out-of-range decodes as Halt (wrong-path safety).
    EXPECT_EQ(p.fetch(Program::textBase + 800).op, Op::Halt);
    EXPECT_EQ(p.fetch(0x10).op, Op::Halt);
}

TEST(Program, HereTracksAddresses)
{
    ProgramBuilder b("t");
    EXPECT_EQ(b.here(), Program::textBase);
    b.nop();
    EXPECT_EQ(b.here(), Program::textBase + 4);
}

TEST(DataMemory, ReadWriteRoundTrip)
{
    DataMemory mem(4096);
    mem.write(0x10, 8, 0x1122334455667788ull);
    EXPECT_EQ(mem.read(0x10, 8), 0x1122334455667788ull);
    // Little-endian sub-reads.
    EXPECT_EQ(mem.read(0x10, 1), 0x88u);
    EXPECT_EQ(mem.read(0x10, 2), 0x7788u);
    EXPECT_EQ(mem.read(0x10, 4), 0x55667788u);
    EXPECT_EQ(mem.read(0x14, 4), 0x11223344u);
}

TEST(DataMemory, PartialOverwrite)
{
    DataMemory mem(64);
    mem.write(0, 8, ~0ull);
    mem.write(2, 1, 0);
    EXPECT_EQ(mem.read(0, 8), 0xFFFFFFFFFF00FFFFull);
}

TEST(DataMemory, OutOfBoundsIsBenign)
{
    DataMemory mem(64);
    EXPECT_EQ(mem.read(64, 1), 0u);
    EXPECT_EQ(mem.read(60, 8), 0u);     // straddles the end
    mem.write(100, 8, 42);              // dropped
    EXPECT_EQ(mem.read(56, 8), 0u);
    EXPECT_FALSE(mem.inBounds(60, 8));
    EXPECT_TRUE(mem.inBounds(56, 8));
    // Wrap-around addresses must not pass the bounds check.
    EXPECT_FALSE(mem.inBounds(~Addr{0}, 8));
}
