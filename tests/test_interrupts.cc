#include <gtest/gtest.h>

#include "cmp/chip.hh"

using namespace rmt;

namespace
{

constexpr RegIndex r1 = intReg(1);
constexpr RegIndex r2 = intReg(2);
constexpr RegIndex r3 = intReg(3);
constexpr RegIndex r4 = intReg(4);

/**
 * A counting loop with an interrupt handler appended: the handler bumps
 * a counter at 0x3000 and returns via iret.  The main loop's own result
 * (sum at 0x2000) must be unperturbed by however many interrupts fire.
 */
struct InterruptProgram
{
    Program program;
    Addr handler = 0;
};

InterruptProgram
makeProgram(int iters)
{
    ProgramBuilder b("intr");
    b.li(r1, iters);
    b.li(r2, 0);
    b.label("loop");
    b.add(r2, r2, r1);
    b.addi(r1, r1, -1);
    b.bne(r1, intReg(0), "loop");
    b.li(r3, 0x2000);
    b.stq(r2, r3, 0);
    b.halt();
    // ---- interrupt handler ----
    const Addr handler = b.here();
    b.label("handler");
    b.li(r4, 0x3000);
    b.ldq(r3, r4, 0);
    b.addi(r3, r3, 1);
    b.stq(r3, r4, 0);
    b.iret();
    return InterruptProgram{b.build(), handler};
}

std::uint64_t
expectedSum(int iters)
{
    return static_cast<std::uint64_t>(iters) * (iters + 1) / 2;
}

} // namespace

TEST(Interrupts, SingleThreadPreciseDelivery)
{
    const InterruptProgram ip = makeProgram(2000);
    ChipParams cp;
    cp.num_cores = 1;
    cp.cpu.num_threads = 1;
    Chip chip(cp);
    DataMemory mem(64 * 1024);
    chip.cpu(0).addThread(0, ip.program, mem, 0, Role::Single);
    chip.cpu(0).scheduleInterrupt(0, 500, ip.handler);
    chip.cpu(0).scheduleInterrupt(0, 1200, ip.handler);
    chip.run(500000);
    ASSERT_TRUE(chip.allDone());
    // The handler ran exactly twice; the main computation is intact.
    EXPECT_EQ(mem.read(0x3000, 8), 2u);
    EXPECT_EQ(mem.read(0x2000, 8), expectedSum(2000));
}

TEST(Interrupts, NoInterruptNoHandler)
{
    const InterruptProgram ip = makeProgram(500);
    ChipParams cp;
    cp.num_cores = 1;
    cp.cpu.num_threads = 1;
    cp.cpu.cosim = true;    // handler never runs: cosim stays in sync
    Chip chip(cp);
    DataMemory mem(64 * 1024);
    chip.cpu(0).addThread(0, ip.program, mem, 0, Role::Single);
    chip.run(500000);
    ASSERT_TRUE(chip.allDone());
    EXPECT_EQ(mem.read(0x3000, 8), 0u);
    EXPECT_EQ(mem.read(0x2000, 8), expectedSum(500));
}

TEST(Interrupts, ReplicatedToTrailingUnderSrt)
{
    // The deferred mechanism of Section 2.1: the interrupt is an input
    // and must reach both redundant copies at the same instruction
    // boundary — otherwise their store streams diverge and the
    // comparator fires.  The handler itself stores, so its redundant
    // execution is also output-compared.
    const InterruptProgram ip = makeProgram(3000);
    ChipParams cp;
    cp.num_cores = 1;
    cp.cpu.num_threads = 2;
    Chip chip(cp);
    DataMemory mem(64 * 1024);
    RedundantPairParams pp;
    pp.leading = HwThread{0, 0};
    pp.trailing = HwThread{0, 1};
    RedundantPair &pair = chip.redundancy().addPair(pp);
    chip.cpu(0).addThread(0, ip.program, mem, 0, Role::Leading, &pair);
    chip.cpu(0).addThread(1, ip.program, mem, 0, Role::Trailing, &pair);
    chip.cpu(0).scheduleInterrupt(0, 800, ip.handler);
    chip.cpu(0).scheduleInterrupt(0, 2000, ip.handler);
    chip.run(500000);
    ASSERT_TRUE(chip.allDone());

    EXPECT_FALSE(pair.faultDetected())
        << "interrupt replication diverged the redundant streams";
    EXPECT_EQ(mem.read(0x3000, 8), 2u);
    EXPECT_EQ(mem.read(0x2000, 8), expectedSum(3000));
    // Both copies committed the handler: every handler store compared.
    EXPECT_GT(pair.comparator.comparisons(), 2u);
}

TEST(Interrupts, ReplicatedAcrossCoresUnderCrt)
{
    const InterruptProgram ip = makeProgram(2500);
    ChipParams cp;
    cp.num_cores = 2;
    cp.cpu.num_threads = 2;
    Chip chip(cp);
    DataMemory mem(64 * 1024);
    RedundantPairParams pp;
    pp.leading = HwThread{0, 0};
    pp.trailing = HwThread{1, 0};
    pp.cross_core_latency = 4;
    RedundantPair &pair = chip.redundancy().addPair(pp);
    chip.cpu(0).addThread(0, ip.program, mem, 0, Role::Leading, &pair);
    chip.cpu(1).addThread(0, ip.program, mem, 0, Role::Trailing, &pair);
    chip.cpu(0).scheduleInterrupt(0, 900, ip.handler);
    chip.run(500000);
    ASSERT_TRUE(chip.allDone());
    EXPECT_FALSE(pair.faultDetected());
    EXPECT_EQ(mem.read(0x3000, 8), 1u);
    EXPECT_EQ(mem.read(0x2000, 8), expectedSum(2500));
}

TEST(Interrupts, StormOfInterrupts)
{
    const InterruptProgram ip = makeProgram(4000);
    ChipParams cp;
    cp.num_cores = 1;
    cp.cpu.num_threads = 2;
    Chip chip(cp);
    DataMemory mem(64 * 1024);
    RedundantPairParams pp;
    pp.leading = HwThread{0, 0};
    pp.trailing = HwThread{0, 1};
    RedundantPair &pair = chip.redundancy().addPair(pp);
    chip.cpu(0).addThread(0, ip.program, mem, 0, Role::Leading, &pair);
    chip.cpu(0).addThread(1, ip.program, mem, 0, Role::Trailing, &pair);
    for (Cycle c = 400; c < 4000; c += 300)
        chip.cpu(0).scheduleInterrupt(0, c, ip.handler);
    chip.run(1000000);
    ASSERT_TRUE(chip.allDone());
    EXPECT_FALSE(pair.faultDetected());
    EXPECT_EQ(mem.read(0x3000, 8), 12u);
    EXPECT_EQ(mem.read(0x2000, 8), expectedSum(4000));
}

TEST(Interrupts, DeliveryToTrailingIsRejected)
{
    const InterruptProgram ip = makeProgram(100);
    ChipParams cp;
    cp.num_cores = 1;
    cp.cpu.num_threads = 2;
    Chip chip(cp);
    DataMemory mem(64 * 1024);
    RedundantPairParams pp;
    pp.leading = HwThread{0, 0};
    pp.trailing = HwThread{0, 1};
    RedundantPair &pair = chip.redundancy().addPair(pp);
    chip.cpu(0).addThread(0, ip.program, mem, 0, Role::Leading, &pair);
    chip.cpu(0).addThread(1, ip.program, mem, 0, Role::Trailing, &pair);
    EXPECT_EXIT(chip.cpu(0).scheduleInterrupt(1, 100, ip.handler),
                ::testing::ExitedWithCode(1), "leading copy");
}
