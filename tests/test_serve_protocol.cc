/**
 * @file
 * Serve wire protocol (src/serve/protocol.*):
 *
 *  - the campaign codec round-trips: submitJson -> parseSubmit yields
 *    a campaign with the same fingerprint, job fields, fault records
 *    and timing flag — and canonical options survive exactly (the
 *    daemon-side drift check would throw otherwise);
 *  - framed socket I/O over a socketpair: multiple frames in one
 *    stream, clean EOF, and the three corruption signatures — garbage
 *    bytes, an oversized length, and a connection cut mid-frame — all
 *    surface as wire::WireError, never as silent short reads;
 *  - reads are EINTR-safe: a stream of signals delivered to a blocked
 *    reader (no SA_RESTART) does not tear a frame.
 */

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include <csignal>
#include <pthread.h>
#include <sys/socket.h>
#include <unistd.h>

#include "runner/journal.hh"
#include "serve/protocol.hh"

using namespace rmt;
using namespace rmt::serve;

namespace
{

Campaign
faultyCampaign()
{
    CampaignBuilder b("proto", 11);
    SimOptions o;
    o.warmup_insts = 250;
    o.measure_insts = 2000;
    o.slack_fetch = 32;
    o.collect_stats_json = true;
    b.base(o)
        .modes({SimMode::Srt, SimMode::Crt})
        .workloads({"gcc", "compress"})
        .transientRegTrials(2, 15);
    return b.build();
}

/** Self-closing socketpair. */
struct Pair
{
    int fds[2];
    Pair() { EXPECT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0); }
    ~Pair()
    {
        closeA();
        closeB();
    }
    void closeA()
    {
        if (fds[0] >= 0)
            ::close(fds[0]);
        fds[0] = -1;
    }
    void closeB()
    {
        if (fds[1] >= 0)
            ::close(fds[1]);
        fds[1] = -1;
    }
};

} // namespace

TEST(ServeCodec, SubmitRoundTripsCampaign)
{
    const Campaign sent = faultyCampaign();
    ASSERT_FALSE(sent.jobs.empty());

    JsonValue msg;
    std::string error;
    ASSERT_TRUE(parseJson(submitJson(sent, false), msg, error))
        << error;

    bool timing = true;
    const Campaign got = parseSubmit(msg, timing);
    EXPECT_FALSE(timing);
    EXPECT_EQ(got.name, sent.name);
    EXPECT_EQ(got.seed, sent.seed);
    ASSERT_EQ(got.jobs.size(), sent.jobs.size());

    // The campaign fingerprint hashes every id, label, seed, workload,
    // canonical option and fault tuple — equality here is equality of
    // everything the journal (and the daemon) cares about.
    EXPECT_EQ(campaignFingerprintU64(got.jobs),
              campaignFingerprintU64(sent.jobs));

    for (std::size_t i = 0; i < sent.jobs.size(); ++i) {
        const JobSpec &a = sent.jobs[i];
        const JobSpec &b = got.jobs[i];
        EXPECT_EQ(optionsCanonicalJson(a.options),
                  optionsCanonicalJson(b.options));
        EXPECT_EQ(a.options.collect_stats_json,
                  b.options.collect_stats_json);
        ASSERT_EQ(a.faults.size(), b.faults.size());
        for (std::size_t f = 0; f < a.faults.size(); ++f) {
            EXPECT_EQ(a.faults[f].kind, b.faults[f].kind);
            EXPECT_EQ(a.faults[f].when, b.faults[f].when);
            EXPECT_EQ(a.faults[f].reg, b.faults[f].reg);
            EXPECT_EQ(a.faults[f].bit, b.faults[f].bit);
            EXPECT_EQ(a.faults[f].mask, b.faults[f].mask);
        }
    }
}

TEST(ServeCodec, CanonicalOptionsSurviveExactly)
{
    SimOptions o;
    o.mode = SimMode::Crt;
    o.warmup_insts = 12345;
    o.measure_insts = 67890;
    o.checker_penalty = 4;
    o.per_thread_store_queues = true;
    o.store_comparison = false;
    o.trailing_fetch = TrailingFetchMode::BranchOutcomeQueue;
    o.slack_fetch = 64;
    o.lpq_ecc = true;
    o.merge_buffer_ecc = false;
    o.hang_cycles = 9999;
    o.cpu.rob_entries = 96;
    o.recovery = true;
    o.snapshot_every = 5000;

    const std::string canon = optionsCanonicalJson(o);
    JsonValue parsed;
    ASSERT_TRUE(parseJson(canon, parsed));
    const SimOptions back = parseCanonicalOptions(parsed);
    EXPECT_EQ(optionsCanonicalJson(back), canon);
}

TEST(ServeCodec, RejectsUnknownNames)
{
    JsonValue v;
    ASSERT_TRUE(parseJson("{\"mode\":\"warp-drive\"}", v));
    EXPECT_THROW(parseCanonicalOptions(v), std::invalid_argument);

    ASSERT_TRUE(parseJson("{\"type\":\"submit\",\"jobs\":[{\"id\":0,"
                          "\"seed\":1,\"workloads\":[]}]}",
                          v));
    bool timing = true;
    EXPECT_THROW(parseSubmit(v, timing), std::invalid_argument);
}

TEST(ServeFrames, StreamsMultipleFramesThenCleanEof)
{
    Pair p;
    ASSERT_TRUE(sendFrame(p.fds[0], tagControl, "{\"type\":\"one\"}"));
    ASSERT_TRUE(sendFrame(p.fds[0], tagRow, "{\"id\":0}"));
    p.closeA();

    FrameReader reader(p.fds[1]);
    std::string payload;
    ASSERT_TRUE(reader.next(payload));
    EXPECT_EQ(payload, std::string(1, tagControl) + "{\"type\":\"one\"}");
    ASSERT_TRUE(reader.next(payload));
    EXPECT_EQ(payload, std::string(1, tagRow) + "{\"id\":0}");
    EXPECT_FALSE(reader.next(payload));     // clean EOF
}

TEST(ServeFrames, GarbageStreamThrows)
{
    Pair p;
    const char junk[] = "GET / HTTP/1.1\r\n\r\n";
    ASSERT_TRUE(wire::writeAll(p.fds[0], junk, sizeof(junk) - 1));
    p.closeA();

    FrameReader reader(p.fds[1]);
    std::string payload;
    EXPECT_THROW(reader.next(payload), wire::WireError);
}

TEST(ServeFrames, OversizedLengthThrows)
{
    Pair p;
    std::string header;
    for (int i = 0; i < 4; ++i)
        header.push_back(static_cast<char>(wire::frameMagic >> (8 * i)));
    const std::uint32_t huge = wire::maxPayloadBytes + 1;
    for (int i = 0; i < 4; ++i)
        header.push_back(static_cast<char>(huge >> (8 * i)));
    ASSERT_TRUE(wire::writeAll(p.fds[0], header.data(), header.size()));

    FrameReader reader(p.fds[1]);
    std::string payload;
    EXPECT_THROW(reader.next(payload), wire::WireError);
}

TEST(ServeFrames, EofMidFrameThrows)
{
    Pair p;
    const std::string framed = wire::frame("half of this will arrive");
    ASSERT_TRUE(wire::writeAll(p.fds[0], framed.data(),
                               framed.size() / 2));
    p.closeA();

    FrameReader reader(p.fds[1]);
    std::string payload;
    EXPECT_THROW(reader.next(payload), wire::WireError);
}

namespace
{

void
onUsr1(int)
{
    // Nothing: existence without SA_RESTART makes read() return EINTR.
}

} // namespace

TEST(ServeFrames, ReadsSurviveSignalStorm)
{
    struct sigaction sa {};
    struct sigaction old {};
    sa.sa_handler = onUsr1;
    sa.sa_flags = 0;    // deliberately no SA_RESTART
    sigemptyset(&sa.sa_mask);
    ASSERT_EQ(sigaction(SIGUSR1, &sa, &old), 0);

    Pair p;
    std::string got;
    std::thread reader_thread([&] {
        FrameReader reader(p.fds[1]);
        std::string payload;
        if (reader.next(payload))
            got = payload;
    });

    // Let the reader block in read(), then pepper it with signals
    // while the frame trickles in one byte at a time.
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    const std::string framed = wire::frame(
        std::string(1, tagControl) + "{\"type\":\"status\"}");
    for (std::size_t i = 0; i < framed.size(); ++i) {
        pthread_kill(reader_thread.native_handle(), SIGUSR1);
        ASSERT_TRUE(wire::writeAll(p.fds[0], framed.data() + i, 1));
    }
    pthread_kill(reader_thread.native_handle(), SIGUSR1);
    p.closeA();
    reader_thread.join();

    EXPECT_EQ(got,
              std::string(1, tagControl) + "{\"type\":\"status\"}");
    sigaction(SIGUSR1, &old, nullptr);
}
