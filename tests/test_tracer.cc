#include <gtest/gtest.h>

#include <sstream>

#include "cpu/smt_cpu.hh"
#include "mem/mem_system.hh"

using namespace rmt;

namespace
{

constexpr RegIndex r1 = intReg(1);
constexpr RegIndex r2 = intReg(2);

Program
smallProgram()
{
    ProgramBuilder b("t");
    b.li(r1, 3);
    b.label("loop");
    b.addi(r2, r2, 5);
    b.addi(r1, r1, -1);
    b.bne(r1, intReg(0), "loop");
    b.li(r1, 0x100);
    b.stq(r2, r1, 0);
    b.halt();
    return b.build();
}

struct TraceHarness
{
    TraceHarness() : program(smallProgram()), mem(4096),
                     memSys(MemSystemParams{})
    {
        SmtParams p;
        p.num_threads = 1;
        cpu = std::make_unique<SmtCpu>(p, memSys, 0);
        cpu->addThread(0, program, mem, 0, Role::Single);
    }

    void
    run()
    {
        while (!cpu->threadHalted(0) && cpu->cycle() < 100000)
            cpu->tick();
        ASSERT_TRUE(cpu->threadHalted(0));
    }

    Program program;
    DataMemory mem;
    MemSystem memSys;
    std::unique_ptr<SmtCpu> cpu;
};

std::vector<std::string>
lines(const std::string &text)
{
    std::vector<std::string> out;
    std::stringstream ss(text);
    std::string line;
    while (std::getline(ss, line))
        out.push_back(line);
    return out;
}

} // namespace

TEST(Tracer, OneLinePerCommittedInstruction)
{
    TraceHarness h;
    std::ostringstream os;
    h.cpu->setCommitTrace(&os);
    h.run();
    EXPECT_EQ(lines(os.str()).size(), h.cpu->committed(0));
}

TEST(Tracer, StageTimestampsAreOrdered)
{
    TraceHarness h;
    std::ostringstream os;
    h.cpu->setCommitTrace(&os);
    h.run();
    for (const auto &line : lines(os.str())) {
        // Format: "<cyc> c0 t0 0x<pc> F<f> D<d> [I<i>] C<c> R<r>  ..."
        Cycle f = 0, d = 0, c = 0, r = 0;
        std::sscanf(line.c_str() + line.find(" F"), " F%llu",
                    reinterpret_cast<unsigned long long *>(&f));
        std::sscanf(line.c_str() + line.find(" D"), " D%llu",
                    reinterpret_cast<unsigned long long *>(&d));
        std::sscanf(line.c_str() + line.find(" C"), " C%llu",
                    reinterpret_cast<unsigned long long *>(&c));
        std::sscanf(line.c_str() + line.find(" R"), " R%llu",
                    reinterpret_cast<unsigned long long *>(&r));
        EXPECT_LE(f, d) << line;
        EXPECT_LE(d, c) << line;
        EXPECT_LE(c, r) << line;
    }
}

TEST(Tracer, ContainsDisassemblyAndResults)
{
    TraceHarness h;
    std::ostringstream os;
    h.cpu->setCommitTrace(&os);
    h.run();
    const std::string out = os.str();
    EXPECT_NE(out.find("addi r2 r2 #5"), std::string::npos);
    EXPECT_NE(out.find("stq"), std::string::npos);
    EXPECT_NE(out.find("= 0xf"), std::string::npos);     // r2 = 15
    EXPECT_NE(out.find("[0x100]=0xf"), std::string::npos);
}

TEST(Tracer, BudgetBoundsOutput)
{
    TraceHarness h;
    std::ostringstream os;
    h.cpu->setCommitTrace(&os, 4);
    h.run();
    EXPECT_EQ(lines(os.str()).size(), 4u);
}

TEST(Tracer, DisabledByDefaultAndDisablable)
{
    TraceHarness h;
    std::ostringstream os;
    h.cpu->setCommitTrace(&os);
    h.cpu->setCommitTrace(nullptr);
    h.run();
    EXPECT_TRUE(os.str().empty());
}
