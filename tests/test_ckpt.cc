/**
 * @file
 * Checkpoint/restore subsystem (src/ckpt/) end-to-end properties:
 *
 *  - save -> restore -> run-to-end is byte-identical to an unbroken
 *    run with the same barrier schedule, for all five modes (compared
 *    on the full campaign JSON record with timing suppressed, which
 *    includes cycle counts, IPCs, and the embedded stats tree);
 *  - a flipped payload byte is rejected by the per-section CRC;
 *  - a truncated image (header or mid-section) is rejected with an
 *    offset-bearing error and no partial state application, and
 *    file-level restores name the damaged file;
 *  - a bumped format version and a mismatched options fingerprint are
 *    both rejected before any state is touched;
 *  - a fault scheduled at or before the restored cycle is rejected
 *    (it would fire immediately instead of at its nominal cycle);
 *  - snapshot-forked fault campaigns are -j invariant and verdict-
 *    identical to from-scratch campaigns.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "ckpt/serializer.hh"
#include "runner/runner.hh"
#include "sim/simulator.hh"

using namespace rmt;

namespace
{

std::vector<std::string>
modeWorkloads(SimMode mode)
{
    if (mode == SimMode::Crt)
        return {"gcc", "swim"};
    return {"gcc"};
}

SimOptions
snapshotOptions(SimMode mode)
{
    SimOptions o;
    o.mode = mode;
    o.warmup_insts = 500;
    o.measure_insts = 4000;
    o.snapshot_every = 1500;
    o.collect_stats_json = true;
    return o;
}

/** The campaign record for a finished run with timing suppressed:
 *  everything observable, nothing wall-clock. */
std::string
recordJson(const std::vector<std::string> &workloads,
           const SimOptions &options, const RunResult &run)
{
    JobSpec spec;
    spec.workloads = workloads;
    spec.options = options;
    JobResult result;
    result.status = JobStatus::Ok;
    result.attempts = 1;
    result.run = run;
    return resultJson(spec, result, /*include_timing=*/false);
}

/** Run once, also capturing the first barrier's snapshot image. */
RunResult
runCapturing(const std::vector<std::string> &workloads,
             const SimOptions &options, std::string &image,
             Cycle &snap_cycle)
{
    Simulation sim(workloads, options);
    sim.setSnapshotHook([&image, &snap_cycle](Cycle cycle,
                                              Simulation &s) {
        if (image.empty()) {
            image = s.saveSnapshotBuffer();
            snap_cycle = cycle;
        }
    });
    return sim.run();
}

/** The wall-clock "host" member is the one legitimately nondeterministic
 *  part of a stats document; strip it the same way the sinks do. */
std::string
stripHost(std::string stats)
{
    const auto pos = stats.find(",\"host\":{");
    if (pos == std::string::npos)
        return stats;
    const auto end = stats.find('}', pos);
    if (end == std::string::npos)
        return stats;
    stats.erase(pos, end - pos + 1);
    return stats;
}

} // namespace

TEST(Checkpoint, RoundTripIsByteIdenticalInEveryMode)
{
    const SimMode all[] = {SimMode::Base, SimMode::Base2, SimMode::Srt,
                           SimMode::Lockstep, SimMode::Crt};
    for (const SimMode mode : all) {
        const auto workloads = modeWorkloads(mode);
        const SimOptions o = snapshotOptions(mode);

        Simulation straight(workloads, o);
        const std::string expect =
            recordJson(workloads, o, straight.run());

        std::string image;
        Cycle snap_cycle = 0;
        const RunResult saver_run =
            runCapturing(workloads, o, image, snap_cycle);
        // The save hook must not perturb the run.
        EXPECT_EQ(expect, recordJson(workloads, o, saver_run))
            << modeName(mode);
        ASSERT_FALSE(image.empty()) << modeName(mode);
        ASSERT_GT(snap_cycle, 0u) << modeName(mode);

        Simulation restored(workloads, o);
        restored.restoreSnapshotBuffer(image);
        EXPECT_EQ(restored.restoredCycle(), snap_cycle);
        EXPECT_EQ(expect, recordJson(workloads, o, restored.run()))
            << modeName(mode);
    }
}

// The --stats-json / --restore-snapshot composition: a restored run's
// exported stats document — counters, groups, and the commit-slot
// attribution object included — must be byte-identical (modulo host
// wall-clock) to an unbroken run's, because the stat walk carries every
// counter through the snapshot.
TEST(Checkpoint, StatsJsonAfterRestoreMatchesUnbrokenRun)
{
    const SimMode all[] = {SimMode::Base, SimMode::Base2, SimMode::Srt,
                           SimMode::Lockstep, SimMode::Crt};
    for (const SimMode mode : all) {
        const auto workloads = modeWorkloads(mode);
        const SimOptions o = snapshotOptions(mode);

        std::string image;
        Cycle snap_cycle = 0;
        Simulation straight(workloads, o);
        straight.setSnapshotHook(
            [&image, &snap_cycle](Cycle cycle, Simulation &s) {
                if (image.empty()) {
                    image = s.saveSnapshotBuffer();
                    snap_cycle = cycle;
                }
            });
        const RunResult sr = straight.run();
        ASSERT_FALSE(image.empty()) << modeName(mode);
        const std::string expect = stripHost(straight.statsJson(sr));

        Simulation restored(workloads, o);
        restored.restoreSnapshotBuffer(image);
        const RunResult rr = restored.run();
        EXPECT_EQ(expect, stripHost(restored.statsJson(rr)))
            << modeName(mode);

        // In particular the restored attribution still conserves.
        EXPECT_EQ(rr.attribution.total(),
                  rr.attribution_core_cycles * rr.commit_width)
            << modeName(mode);
    }
}

TEST(Checkpoint, CorruptedSectionFailsItsCrc)
{
    const auto workloads = modeWorkloads(SimMode::Srt);
    const SimOptions o = snapshotOptions(SimMode::Srt);
    std::string image;
    Cycle snap_cycle = 0;
    runCapturing(workloads, o, image, snap_cycle);
    ASSERT_FALSE(image.empty());

    // Flip a byte deep inside a section payload (past the header).
    std::string corrupt = image;
    corrupt[corrupt.size() / 2] ^= 0x40;

    Simulation sim(workloads, o);
    try {
        sim.restoreSnapshotBuffer(corrupt);
        FAIL() << "corrupted image was accepted";
    } catch (const SnapshotError &e) {
        EXPECT_NE(std::string(e.what()).find("CRC"), std::string::npos)
            << e.what();
    }
}

TEST(Checkpoint, TruncatedImageIsRejectedWithoutPartialApplication)
{
    const auto workloads = modeWorkloads(SimMode::Srt);
    const SimOptions o = snapshotOptions(SimMode::Srt);
    std::string image;
    Cycle snap_cycle = 0;
    runCapturing(workloads, o, image, snap_cycle);
    ASSERT_FALSE(image.empty());

    Simulation straight(workloads, o);
    const std::string expect = recordJson(workloads, o, straight.run());

    // Cut inside the header, one third in (mid-section), and just
    // before the final CRC: every prefix must be rejected up front
    // with a structured, offset-bearing error.
    const std::size_t cuts[] = {6, image.size() / 3, image.size() - 3};
    for (const std::size_t cut : cuts) {
        Simulation sim(workloads, o);
        try {
            sim.restoreSnapshotBuffer(image.substr(0, cut));
            FAIL() << "accepted an image cut at " << cut;
        } catch (const SnapshotError &e) {
            EXPECT_NE(std::string(e.what()).find("truncated"),
                      std::string::npos)
                << "cut " << cut << ": " << e.what();
        }
        // Validation walks the whole image before any state is
        // applied, so the rejecting simulation is still pristine and
        // runs exactly like an untouched one.
        EXPECT_EQ(expect, recordJson(workloads, o, sim.run()))
            << "cut " << cut;
    }
}

TEST(Checkpoint, SnapshotFileErrorsNameTheFile)
{
    const auto workloads = modeWorkloads(SimMode::Srt);
    const SimOptions o = snapshotOptions(SimMode::Srt);
    std::string image;
    Cycle snap_cycle = 0;
    runCapturing(workloads, o, image, snap_cycle);
    ASSERT_FALSE(image.empty());

    const std::string path = std::string(::testing::TempDir()) +
                             "rmtsim_truncated.snap";
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(image.data(),
                  static_cast<std::streamsize>(image.size() / 2));
    }
    Simulation sim(workloads, o);
    try {
        sim.restoreSnapshot(path);
        FAIL() << "accepted a truncated snapshot file";
    } catch (const SnapshotError &e) {
        // The file-level wrapper prefixes the path so a campaign log
        // points straight at the damaged artifact.
        EXPECT_NE(std::string(e.what()).find(path), std::string::npos)
            << e.what();
        EXPECT_NE(std::string(e.what()).find("truncated"),
                  std::string::npos)
            << e.what();
    }
    std::remove(path.c_str());
}

TEST(Checkpoint, VersionAndFingerprintMismatchesAreRejected)
{
    const auto workloads = modeWorkloads(SimMode::Srt);
    const SimOptions o = snapshotOptions(SimMode::Srt);
    std::string image;
    Cycle snap_cycle = 0;
    runCapturing(workloads, o, image, snap_cycle);
    ASSERT_FALSE(image.empty());

    // Header layout: 8-byte magic, u32 format version (little-endian).
    std::string wrong_version = image;
    wrong_version[8] = static_cast<char>(0x7f);
    {
        Simulation sim(workloads, o);
        try {
            sim.restoreSnapshotBuffer(wrong_version);
            FAIL() << "future format version was accepted";
        } catch (const SnapshotError &e) {
            EXPECT_NE(std::string(e.what()).find("version"),
                      std::string::npos)
                << e.what();
        }
    }

    // Same image, differently configured simulation: the options
    // fingerprint in the header no longer matches.
    SimOptions other = o;
    other.slack_fetch = 32;
    {
        Simulation sim(workloads, other);
        try {
            sim.restoreSnapshotBuffer(image);
            FAIL() << "fingerprint mismatch was accepted";
        } catch (const SnapshotError &e) {
            EXPECT_NE(std::string(e.what()).find("fingerprint"),
                      std::string::npos)
                << e.what();
        }
    }
}

TEST(Checkpoint, FaultAtOrBeforeRestoredCycleIsRejected)
{
    const auto workloads = modeWorkloads(SimMode::Srt);
    const SimOptions o = snapshotOptions(SimMode::Srt);
    std::string image;
    Cycle snap_cycle = 0;
    runCapturing(workloads, o, image, snap_cycle);
    ASSERT_GT(snap_cycle, 0u);

    Simulation sim(workloads, o);
    sim.restoreSnapshotBuffer(image);

    FaultRecord fault;
    fault.kind = FaultRecord::Kind::TransientReg;
    fault.when = snap_cycle;        // not strictly after: must throw
    fault.reg = 3;
    fault.bit = 5;
    EXPECT_THROW(sim.faultInjector().schedule(fault),
                 std::invalid_argument);

    fault.when = snap_cycle + 1;    // strictly after: fine
    EXPECT_NO_THROW(sim.faultInjector().schedule(fault));
}

namespace
{

/** A small SRT fault campaign over two workloads with barriers on. */
Campaign
faultCampaign()
{
    SimOptions base;
    base.mode = SimMode::Srt;
    base.warmup_insts = 500;
    base.measure_insts = 5000;
    base.snapshot_every = 1500;
    CampaignBuilder builder("ckpt-fork", 7);
    builder.base(base)
        .modes({SimMode::Srt})
        .workloads({"gcc", "compress"})
        .transientRegTrials(3, 15);
    return builder.build();
}

void
attachOracles(Campaign &campaign,
              std::map<std::string, std::unique_ptr<FaultOracle>> &oracles)
{
    for (JobSpec &job : campaign.jobs) {
        if (job.faults.empty())
            continue;
        auto &oracle = oracles[job.workloads.front()];
        if (!oracle) {
            oracle = std::make_unique<FaultOracle>(
                FaultOracle::goldenImage(job.workloads, job.options));
        }
        attachFaultOracle(job, oracle.get());
    }
}

std::string
runToJsonl(const Campaign &campaign, unsigned jobs,
           SnapshotCache *snapshots, std::vector<JobResult> &results)
{
    std::ostringstream out;
    JsonlSink::Options sink_opts;
    sink_opts.include_timing = false;
    sink_opts.progress = false;
    JsonlSink sink(out, sink_opts);
    RunnerConfig cfg;
    cfg.jobs = jobs;
    cfg.sink = &sink;
    cfg.snapshots = snapshots;
    results = runCampaign(campaign, cfg);
    return out.str();
}

} // namespace

TEST(Checkpoint, ForkedCampaignIsWorkerCountInvariant)
{
    Campaign campaign = faultCampaign();
    std::map<std::string, std::unique_ptr<FaultOracle>> oracles;
    attachOracles(campaign, oracles);

    std::vector<JobResult> serial_results, parallel_results;
    SnapshotCache serial_cache, parallel_cache;
    const std::string serial =
        runToJsonl(campaign, 1, &serial_cache, serial_results);
    const std::string parallel =
        runToJsonl(campaign, 4, &parallel_cache, parallel_results);
    EXPECT_EQ(serial, parallel);
    EXPECT_GE(serial_cache.producerRuns(), 1u);

    // Forking actually engaged: some trial restored a snapshot.
    bool any_hit = false;
    for (const JobResult &r : serial_results) {
        for (const auto &[key, value] : r.extra)
            any_hit = any_hit || (key == "snapshot_hit" && value > 0);
    }
    EXPECT_TRUE(any_hit);
}

TEST(Checkpoint, ForkedVerdictsMatchFromScratch)
{
    Campaign campaign = faultCampaign();
    std::map<std::string, std::unique_ptr<FaultOracle>> oracles;
    attachOracles(campaign, oracles);

    std::vector<JobResult> forked, scratch;
    SnapshotCache cache;
    runToJsonl(campaign, 2, &cache, forked);
    runToJsonl(campaign, 2, nullptr, scratch);

    ASSERT_EQ(forked.size(), scratch.size());
    for (std::size_t i = 0; i < forked.size(); ++i) {
        ASSERT_TRUE(forked[i].ok()) << forked[i].error;
        ASSERT_TRUE(scratch[i].ok()) << scratch[i].error;
        EXPECT_EQ(forked[i].has_verdict, scratch[i].has_verdict);
        EXPECT_EQ(forked[i].verdict, scratch[i].verdict) << i;
        EXPECT_EQ(forked[i].detection_latency,
                  scratch[i].detection_latency)
            << i;
        EXPECT_EQ(forked[i].run.total_cycles, scratch[i].run.total_cycles)
            << i;
    }
}
