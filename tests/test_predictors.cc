#include <gtest/gtest.h>

#include "predictor/branch_predictor.hh"
#include "predictor/line_predictor.hh"
#include "predictor/ras.hh"

using namespace rmt;

TEST(BranchPredictor, LearnsAlwaysTaken)
{
    BranchPredictor bp(BranchPredictorParams{});
    const Addr pc = 0x1000;
    for (int i = 0; i < 8; ++i) {
        const auto snap = bp.history(0);
        bp.predict(0, pc);
        bp.update(0, pc, true, snap);
        bp.fixupHistory(0, snap, true);
    }
    const auto snap = bp.history(0);
    EXPECT_TRUE(bp.predict(0, pc));
    bp.restoreHistory(0, snap);
}

TEST(BranchPredictor, LearnsAlternatingViaHistory)
{
    BranchPredictor bp(BranchPredictorParams{});
    const Addr pc = 0x2000;
    bool dir = false;
    int correct = 0;
    for (int i = 0; i < 200; ++i) {
        const auto snap = bp.history(0);
        const bool pred = bp.predict(0, pc);
        if (pred == dir && i >= 100)
            ++correct;
        bp.update(0, pc, dir, snap);
        bp.fixupHistory(0, snap, dir);
        dir = !dir;
    }
    // gshare should nail a strict alternation once warmed up.
    EXPECT_GE(correct, 95);
}

TEST(BranchPredictor, HistoryRestoreRoundTrip)
{
    BranchPredictor bp(BranchPredictorParams{});
    bp.restoreHistory(1, 0x5A);     // seed a distinctive history
    const auto snap = bp.history(1);
    bp.predict(1, 0x100);
    bp.predict(1, 0x200);
    EXPECT_NE(bp.history(1), snap);     // shifted twice
    bp.restoreHistory(1, snap);
    EXPECT_EQ(bp.history(1), snap);
}

TEST(BranchPredictor, FixupHistoryEncodesOutcome)
{
    BranchPredictor bp(BranchPredictorParams{});
    bp.fixupHistory(0, 0b101, true);
    EXPECT_EQ(bp.history(0), 0b1011u);
    bp.fixupHistory(0, 0b101, false);
    EXPECT_EQ(bp.history(0), 0b1010u);
}

TEST(BranchPredictor, ThreadsAreIndependentStreams)
{
    BranchPredictor bp(BranchPredictorParams{});
    const Addr pc = 0x3000;
    for (int i = 0; i < 8; ++i) {
        const auto s0 = bp.history(0);
        bp.predict(0, pc);
        bp.update(0, pc, true, s0);
        bp.fixupHistory(0, s0, true);
        const auto s1 = bp.history(1);
        bp.predict(1, pc);
        bp.update(1, pc, false, s1);
        bp.fixupHistory(1, s1, false);
    }
    EXPECT_TRUE(bp.predict(0, pc));
    EXPECT_FALSE(bp.predict(1, pc));
}

TEST(LinePredictor, DefaultIsSequential)
{
    LinePredictor lp(LinePredictorParams{});
    EXPECT_EQ(lp.predict(0, 0x1000), 0x1020u);
}

TEST(LinePredictor, TrainsToTarget)
{
    LinePredictor lp(LinePredictorParams{});
    lp.train(0, 0x1000, 0x4000);
    EXPECT_EQ(lp.predict(0, 0x1000), 0x4000u);
}

TEST(LinePredictor, HysteresisAbsorbsOneDeviation)
{
    LinePredictor lp(LinePredictorParams{});
    lp.train(0, 0x1000, 0x4000);
    // A single deviating outcome does not displace the target...
    lp.train(0, 0x1000, 0x1020);
    EXPECT_EQ(lp.predict(0, 0x1000), 0x4000u);
    // ...a confirming outcome resets the hysteresis...
    lp.train(0, 0x1000, 0x4000);
    lp.train(0, 0x1000, 0x1020);
    EXPECT_EQ(lp.predict(0, 0x1000), 0x4000u);
    // ...but two deviations in a row retrain the entry.
    lp.train(0, 0x1000, 0x1020);
    EXPECT_EQ(lp.predict(0, 0x1000), 0x1020u);
}

TEST(LinePredictor, MidFrameStartsDoNotAlias)
{
    // Chunks may start mid-frame at branch targets; such starts index
    // their own entry rather than their 32-byte frame's.
    LinePredictor lp(LinePredictorParams{});
    lp.train(0, 0x1020, 0x1100);
    lp.train(0, 0x1030, 0x2200);
    lp.train(0, 0x1020, 0x1100);
    lp.train(0, 0x1030, 0x2200);
    EXPECT_EQ(lp.predict(0, 0x1020), 0x1100u);
    EXPECT_EQ(lp.predict(0, 0x1030), 0x2200u);
}

TEST(Ras, PushPopLifo)
{
    ReturnAddressStack ras(8);
    ras.push(0x100);
    ras.push(0x200);
    EXPECT_EQ(ras.pop(), 0x200u);
    EXPECT_EQ(ras.pop(), 0x100u);
}

TEST(Ras, SnapshotRestoreRepairsTop)
{
    ReturnAddressStack ras(8);
    ras.push(0x100);
    const auto snap = ras.snapshot();
    ras.push(0x200);
    ras.pop();
    ras.pop();      // speculative damage
    ras.restore(snap);
    EXPECT_EQ(ras.pop(), 0x100u);
}

TEST(Ras, OverflowWrapsWithoutCrashing)
{
    ReturnAddressStack ras(4);
    for (Addr a = 0; a < 10; ++a)
        ras.push(0x1000 + a * 4);
    // The newest entries survive.
    EXPECT_EQ(ras.pop(), 0x1024u);
    EXPECT_EQ(ras.pop(), 0x1020u);
}

TEST(IndirectPredictor, RemembersTargets)
{
    IndirectPredictor ip(256);
    EXPECT_EQ(ip.predict(0, 0x500), 0u);
    ip.update(0, 0x500, 0x9000);
    EXPECT_EQ(ip.predict(0, 0x500), 0x9000u);
}
