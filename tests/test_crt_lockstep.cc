#include <gtest/gtest.h>

#include "sim/metrics.hh"
#include "sim/simulator.hh"

using namespace rmt;

namespace
{

SimOptions
opts(SimMode mode, std::uint64_t insts = 8000)
{
    SimOptions o;
    o.mode = mode;
    o.warmup_insts = 0;
    o.measure_insts = insts;
    return o;
}

} // namespace

TEST(Lockstep, Lock0EqualsBaseExactly)
{
    // Section 6.3: an ideal zero-cycle checker makes lockstep timing
    // identical to the base processor.
    const RunResult base = runSimulation({"compress"}, opts(SimMode::Base));
    SimOptions l0 = opts(SimMode::Lockstep);
    l0.checker_penalty = 0;
    const RunResult lock0 = runSimulation({"compress"}, l0);
    EXPECT_EQ(base.total_cycles, lock0.total_cycles);
    EXPECT_DOUBLE_EQ(base.threads[0].ipc, lock0.threads[0].ipc);
}

TEST(Lockstep, CheckerPenaltySlowsMissyWorkloads)
{
    SimOptions l0 = opts(SimMode::Lockstep);
    l0.checker_penalty = 0;
    SimOptions l8 = opts(SimMode::Lockstep);
    l8.checker_penalty = 8;
    // swim misses caches; the checker sits on the miss path.
    const RunResult r0 = runSimulation({"swim"}, l0);
    const RunResult r8 = runSimulation({"swim"}, l8);
    EXPECT_LT(r8.threads[0].ipc, r0.threads[0].ipc);
}

TEST(Lockstep, PenaltyMonotone)
{
    double last_ipc = 1e9;
    for (unsigned penalty : {0u, 4u, 8u, 16u}) {
        SimOptions o = opts(SimMode::Lockstep);
        o.checker_penalty = penalty;
        const RunResult r = runSimulation({"swim", "tomcatv"}, o);
        const double ipc = r.threads[0].ipc + r.threads[1].ipc;
        EXPECT_LE(ipc, last_ipc * 1.001) << "penalty " << penalty;
        last_ipc = ipc;
    }
}

TEST(Crt, SingleThreadCompletesOnBothCores)
{
    SimOptions o = opts(SimMode::Crt);
    Simulation sim({"li"}, o);
    const RunResult r = sim.run();
    EXPECT_TRUE(r.completed);
    const auto &pl = sim.placement(0);
    EXPECT_NE(pl.lead_core, pl.trail_core);
    EXPECT_GE(sim.chip().cpu(pl.lead_core).committed(pl.lead_tid), 8000u);
    EXPECT_GE(sim.chip().cpu(pl.trail_core).committed(pl.trail_tid),
              8000u);
    EXPECT_EQ(r.detections, 0u);
}

TEST(Crt, CrossCouplingPlacesLeadersOnBothCores)
{
    // Figure 5: program A leads where program B trails and vice versa.
    SimOptions o = opts(SimMode::Crt);
    Simulation sim({"gcc", "swim"}, o);
    const auto &a = sim.placement(0);
    const auto &b = sim.placement(1);
    EXPECT_NE(a.lead_core, b.lead_core);
    EXPECT_EQ(a.lead_core, b.trail_core);
    EXPECT_EQ(b.lead_core, a.trail_core);
    const RunResult r = sim.run();
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.detections, 0u);
}

TEST(Crt, OutperformsLockstepOnMultithreadedWork)
{
    // The paper's headline CRT result (Section 7.2): on multithreaded
    // workloads CRT beats the realistic lockstep configuration.
    SimOptions c = opts(SimMode::Crt);
    SimOptions l8 = opts(SimMode::Lockstep);
    l8.checker_penalty = 8;
    BaselineCache base(c);

    const std::vector<std::string> mix{"gcc", "go", "fpppp", "swim"};
    const RunResult crt = runSimulation(mix, c);
    const RunResult lock = runSimulation(mix, l8);
    EXPECT_TRUE(crt.completed);
    EXPECT_TRUE(lock.completed);
    EXPECT_GT(base.efficiency(crt), base.efficiency(lock));
}

TEST(Crt, TrailingThreadsFreeLoadQueueForLeaders)
{
    // Section 5: trailing threads do not use the load queue, so each
    // core's leading thread gets a bigger share than a 4-thread base
    // machine would give it.
    SimOptions o = opts(SimMode::Crt);
    Simulation sim({"gcc", "swim"}, o);
    sim.run();
    // Nothing to read directly; assert via the pair stats that the
    // trailing threads satisfied all loads from the LVQ.
    auto &rm = sim.chip().redundancy();
    for (std::size_t i = 0; i < rm.numPairs(); ++i) {
        auto &pair = rm.pair(i);
        EXPECT_GT(pair.lvq.stats().name().size(), 0u);
    }
    SUCCEED();
}

TEST(Crt, ForwardingLatencyTolerated)
{
    // Raising the cross-core latency must not break correctness, only
    // timing (the queues decouple the threads, Section 5).
    for (unsigned lat : {0u, 4u, 12u, 32u}) {
        SimOptions o = opts(SimMode::Crt, 5000);
        o.cpu.cross_core_latency = lat;
        const RunResult r = runSimulation({"compress"}, o);
        EXPECT_TRUE(r.completed) << "latency " << lat;
        EXPECT_EQ(r.detections, 0u) << "latency " << lat;
    }
}

TEST(Crt, FourProgramMixCompletes)
{
    SimOptions o = opts(SimMode::Crt, 5000);
    const RunResult r = runSimulation({"gcc", "go", "ijpeg", "swim"}, o);
    EXPECT_TRUE(r.completed);
    ASSERT_EQ(r.threads.size(), 4u);
    EXPECT_EQ(r.detections, 0u);
    for (const auto &t : r.threads)
        EXPECT_GT(t.ipc, 0.0) << t.workload;
}
