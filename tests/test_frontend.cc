#include <gtest/gtest.h>

#include "cpu/smt_cpu.hh"
#include "mem/mem_system.hh"

using namespace rmt;

namespace
{

constexpr RegIndex r1 = intReg(1);
constexpr RegIndex r2 = intReg(2);
constexpr RegIndex r3 = intReg(3);

struct Harness
{
    explicit Harness(Program prog, SmtParams params = {})
        : program(std::move(prog)), mem(64 * 1024),
          memSys(MemSystemParams{})
    {
        params.num_threads = 1;
        params.cosim = true;
        cpu = std::make_unique<SmtCpu>(params, memSys, 0);
        cpu->addThread(0, program, mem, 0, Role::Single);
    }

    Program program;

    Cycle
    runToHalt()
    {
        while (!cpu->threadHalted(0) && cpu->cycle() < 200000)
            cpu->tick();
        EXPECT_TRUE(cpu->threadHalted(0));
        return cpu->cycle();
    }

    DataMemory mem;
    MemSystem memSys;
    std::unique_ptr<SmtCpu> cpu;
};

Program
branchyLoop(int iters)
{
    ProgramBuilder b("branchy");
    b.li(r1, iters);
    b.li(r2, 0);
    b.label("loop");
    b.andi(r3, r1, 1);
    b.beq(r3, intReg(0), "even");
    b.addi(r2, r2, 1);
    b.br("next");
    b.label("even");
    b.addi(r2, r2, 2);
    b.label("next");
    b.addi(r1, r1, -1);
    b.bne(r1, intReg(0), "loop");
    b.halt();
    return b.build();
}

} // namespace

TEST(Frontend, BranchPredictorLearnsAlternation)
{
    // The even/odd alternation is perfectly history-predictable: after
    // warm-up the machine should mispredict almost nothing.
    Harness h(branchyLoop(2000));
    h.runToHalt();
    EXPECT_LT(h.cpu->branchMispredicts(), 100u);
}

TEST(Frontend, MispredictsCostCycles)
{
    // Same committed work, but with a data-dependent (LCG) branch the
    // predictor cannot learn: must take measurably longer per
    // instruction.
    const Cycle predictable = [] {
        Harness h(branchyLoop(1000));
        return h.runToHalt();
    }();

    ProgramBuilder b("random");
    b.li(r1, 1000);
    b.li(r2, 0);
    b.li(r3, 12345);
    b.label("loop");
    b.muli(r3, r3, 6364136223846793005);
    b.addi(r3, r3, 1442695040888963407);
    b.srli(intReg(4), r3, 33);
    b.andi(intReg(4), intReg(4), 1);
    b.beq(intReg(4), intReg(0), "even");
    b.addi(r2, r2, 1);
    b.br("next");
    b.label("even");
    b.addi(r2, r2, 2);
    b.label("next");
    b.addi(r1, r1, -1);
    b.bne(r1, intReg(0), "loop");
    b.halt();
    Harness h(b.build());
    const Cycle random = h.runToHalt();
    EXPECT_GT(h.cpu->branchMispredicts(), 300u);
    EXPECT_GT(random, predictable);
}

TEST(Frontend, LinePredictorRatesMatchPaperRegime)
{
    // Alternating branch directions make the hot chunk's successor
    // alternate: a single-target line predictor lands in the paper's
    // 14-28% misprediction regime (Section 4.4) rather than converging.
    Harness alternating(branchyLoop(2000));
    alternating.runToHalt();
    const double alt_rate =
        static_cast<double>(alternating.cpu->lineMispredicts()) /
        static_cast<double>(alternating.cpu->linePredictor().lookups());
    EXPECT_GT(alt_rate, 0.05);
    EXPECT_LT(alt_rate, 0.40);

    // A straight counted loop has a stable successor: near-zero rate.
    ProgramBuilder b("straight");
    b.li(r1, 2000);
    b.label("loop");
    b.addi(r2, r2, 1);
    b.addi(r1, r1, -1);
    b.bne(r1, intReg(0), "loop");
    b.halt();
    Harness straight(b.build());
    straight.runToHalt();
    EXPECT_LT(straight.cpu->lineMispredicts(), 20u);
}

TEST(Frontend, IcacheMissesStallFetchOnce)
{
    // A program bigger than one I-cache block: compulsory misses occur,
    // then the loop runs from the cache.
    ProgramBuilder b("big");
    b.li(r1, 50);
    b.label("loop");
    for (int i = 0; i < 200; ++i)
        b.addi(r2, r2, 1);
    b.addi(r1, r1, -1);
    b.bne(r1, intReg(0), "loop");
    b.halt();
    Harness h(b.build());
    h.runToHalt();
    const auto misses = h.cpu->icache().misses();
    // ~200 insts = 800 bytes = ~13 blocks of compulsory misses; far
    // fewer than one per iteration.
    EXPECT_GE(misses, 5u);
    EXPECT_LE(misses, 40u);
}

TEST(Frontend, RasPredictsNestedCalls)
{
    ProgramBuilder b("nest");
    b.li(r1, 300);
    b.li(r2, 0);
    b.label("loop");
    b.call("f1");
    b.addi(r1, r1, -1);
    b.bne(r1, intReg(0), "loop");
    b.halt();
    b.label("f1");
    b.mov(intReg(10), linkReg);     // save link
    b.call("f2");
    b.mov(linkReg, intReg(10));
    b.addi(r2, r2, 1);
    b.ret();
    b.label("f2");
    b.addi(r2, r2, 1);
    b.ret();
    Harness h(b.build());
    h.runToHalt();
    // Returns are RAS-predicted: near-zero control mispredicts.
    EXPECT_LT(h.cpu->branchMispredicts(), 30u);
    EXPECT_EQ(h.mem.read(0, 8), 0u);    // sanity: nothing stomped low mem
}

TEST(Frontend, DeepRmbDoesNotChangeResults)
{
    SmtParams deep;
    deep.rmb_chunks = 16;
    SmtParams shallow;
    shallow.rmb_chunks = 2;
    Harness a(branchyLoop(500), deep);
    Harness b(branchyLoop(500), shallow);
    a.runToHalt();
    b.runToHalt();
    EXPECT_EQ(a.cpu->committed(0), b.cpu->committed(0));
}

TEST(Frontend, WrongPathInstructionsAreFetchedAndSquashed)
{
    ProgramBuilder b("wp");
    b.li(r1, 500);
    b.li(r3, 12345);
    b.label("loop");
    b.muli(r3, r3, 25214903917);
    b.addi(r3, r3, 11);
    b.srli(r2, r3, 30);
    b.andi(r2, r2, 1);
    b.beq(r2, intReg(0), "skip");
    b.addi(r2, r2, 1);
    b.label("skip");
    b.addi(r1, r1, -1);
    b.bne(r1, intReg(0), "loop");
    b.halt();
    const Program prog = b.build();
    // Golden dynamic instruction count from the reference model.
    DataMemory ref_mem(64 * 1024);
    ArchState ref(prog, ref_mem);
    ref.run(100000);
    ASSERT_TRUE(ref.halted());

    Harness h(prog);
    h.runToHalt();
    EXPECT_GT(h.cpu->squashes(), 50u);
    // Squash recovery must not lose or duplicate instructions.
    EXPECT_EQ(h.cpu->committed(0), ref.instsExecuted());
}
