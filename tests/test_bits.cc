#include <gtest/gtest.h>

#include "common/bits.hh"

using namespace rmt;

TEST(Bits, IsPowerOf2)
{
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(2));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_TRUE(isPowerOf2(1ull << 40));
    EXPECT_FALSE(isPowerOf2((1ull << 40) + 1));
}

TEST(Bits, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(64), 6u);
    EXPECT_EQ(floorLog2(1ull << 63), 63u);
}

TEST(Bits, Extract)
{
    EXPECT_EQ(bits(0xABCD, 0, 4), 0xDu);
    EXPECT_EQ(bits(0xABCD, 4, 8), 0xBCu);
    EXPECT_EQ(bits(~0ull, 0, 64), ~0ull);
    EXPECT_EQ(bits(0xF0, 4, 4), 0xFu);
}

TEST(Bits, FlipBit)
{
    EXPECT_EQ(flipBit(0, 0), 1u);
    EXPECT_EQ(flipBit(1, 0), 0u);
    EXPECT_EQ(flipBit(0, 63), 1ull << 63);
    // Double flip restores the value.
    for (unsigned b = 0; b < 64; ++b)
        EXPECT_EQ(flipBit(flipBit(0x123456789ABCDEFull, b), b),
                  0x123456789ABCDEFull);
}

TEST(Bits, Parity64)
{
    EXPECT_EQ(parity64(0), 0u);
    EXPECT_EQ(parity64(1), 1u);
    EXPECT_EQ(parity64(3), 0u);
    EXPECT_EQ(parity64(7), 1u);
    EXPECT_EQ(parity64(~0ull), 0u);
    // Flipping any single bit flips parity (the ECC premise).
    const std::uint64_t v = 0xDEADBEEFCAFEF00Dull;
    for (unsigned b = 0; b < 64; ++b)
        EXPECT_NE(parity64(v), parity64(flipBit(v, b)));
}
