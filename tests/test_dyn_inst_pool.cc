/**
 * @file
 * DynInstPool / DynInstPtr coverage: recycling semantics of the
 * intrusive refcounted handle, record reuse under squash-heavy
 * simulation, lifetime across dependence handoffs, and campaign
 * determinism with pooled allocation.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <utility>

#include "cpu/dyn_inst.hh"
#include "runner/runner.hh"
#include "sim/simulator.hh"

using namespace rmt;

TEST(DynInstPool, AcquireGrowsInSlabs)
{
    DynInstPool pool(2);
    EXPECT_EQ(pool.capacity(), 0u);
    EXPECT_EQ(pool.live(), 0u);

    DynInstPtr a = pool.acquire();
    DynInstPtr b = pool.acquire();
    EXPECT_EQ(pool.capacity(), 2u);
    EXPECT_EQ(pool.live(), 2u);

    DynInstPtr c = pool.acquire();  // forces a second slab
    EXPECT_EQ(pool.capacity(), 4u);
    EXPECT_EQ(pool.live(), 3u);
    EXPECT_NE(a.get(), nullptr);
    EXPECT_NE(a.get(), b.get());
    EXPECT_NE(b.get(), c.get());
}

TEST(DynInstPool, LastReleaseRecycles)
{
    DynInstPool pool(4);
    DynInstPtr a = pool.acquire();
    DynInst *raw = a.get();

    DynInstPtr copy = a;            // refcount 2
    a.reset();
    EXPECT_EQ(pool.live(), 1u);     // still held by the copy
    EXPECT_EQ(pool.recycles(), 0u);

    copy.reset();                   // last reference
    EXPECT_EQ(pool.live(), 0u);
    EXPECT_EQ(pool.recycles(), 1u);

    // LIFO free list: the next acquire reuses the recycled record.
    DynInstPtr again = pool.acquire();
    EXPECT_EQ(again.get(), raw);
}

TEST(DynInstPool, MoveTransfersWithoutRecycling)
{
    DynInstPool pool(4);
    DynInstPtr a = pool.acquire();
    DynInst *raw = a.get();

    DynInstPtr moved = std::move(a);
    EXPECT_EQ(a.get(), nullptr);
    EXPECT_EQ(moved.get(), raw);
    EXPECT_EQ(pool.live(), 1u);
    EXPECT_EQ(pool.recycles(), 0u);

    DynInstPtr assigned;
    assigned = std::move(moved);
    EXPECT_EQ(moved.get(), nullptr);
    EXPECT_EQ(assigned.get(), raw);
    EXPECT_EQ(pool.live(), 1u);

    assigned.reset();
    EXPECT_EQ(pool.live(), 0u);
    EXPECT_EQ(pool.recycles(), 1u);
}

TEST(DynInstPool, RecycleResetsRecordState)
{
    DynInstPool pool(4);
    {
        DynInstPtr a = pool.acquire();
        a->seq = 42;
        a->pc = 0x1000;
        a->squashed = true;
        a->sqVerified = true;
    }
    // The recycled record is handed back first (LIFO) and must look
    // factory-fresh.
    DynInstPtr b = pool.acquire();
    EXPECT_EQ(b->seq, 0u);
    EXPECT_EQ(b->pc, 0u);
    EXPECT_FALSE(b->squashed);
    EXPECT_FALSE(b->sqVerified);
}

TEST(DynInstPool, DepStoreHandoffKeepsStoreAlive)
{
    // A load's resolved dependence pointer (set at dispatch, read at
    // issue) must keep the store's record from being reused even after
    // the store has left every pipeline queue.
    DynInstPool pool(4);
    DynInstPtr store = pool.acquire();
    store->seq = 7;
    store->addrReady = true;
    store->dataReady = true;

    DynInstPtr load = pool.acquire();
    load->depStore = store;

    store.reset();                  // store leaves the machine
    EXPECT_EQ(pool.live(), 2u);     // record pinned by the load
    EXPECT_EQ(pool.recycles(), 0u);
    EXPECT_TRUE(load->depStore->addrReady);
    EXPECT_EQ(load->depStore->seq, 7u);

    load.reset();                   // releases the chain
    EXPECT_EQ(pool.live(), 0u);
    EXPECT_EQ(pool.recycles(), 2u);
}

TEST(DynInstPool, SquashHeavyRunRecyclesInsteadOfGrowing)
{
    // An SRT run fetches tens of thousands of instructions (including
    // squashed wrong-path ones, recycled mid-fill); the pool must reuse
    // a small working set rather than grow with the instruction count.
    SimOptions opts;
    opts.mode = SimMode::Srt;
    opts.warmup_insts = 2000;
    opts.measure_insts = 8000;
    Simulation sim({"gcc"}, opts);
    const RunResult result = sim.run();
    ASSERT_TRUE(result.completed);

    SmtCpu &cpu = sim.chip().cpu(0);
    const DynInstPool &pool = cpu.dynInstPool();
    const std::uint64_t fetched = cpu.fetchSrcLead() +
                                  cpu.fetchSrcLpq() +
                                  cpu.fetchSrcBoq();
    EXPECT_GT(fetched, 10000u);
    EXPECT_GT(pool.recycles(), fetched / 2);
    EXPECT_LT(pool.capacity(), fetched / 4);
    EXPECT_LE(pool.live(), pool.capacity());
}

TEST(DynInstPool, CampaignParallelismIsByteDeterministic)
{
    // Each Simulation owns its pools, so -j 1 and -j N campaigns (with
    // embedded stats, wall times suppressed) serialize byte-identically.
    Campaign campaign;
    campaign.name = "pool-determinism";
    const SimMode modes[] = {SimMode::Srt, SimMode::Base2, SimMode::Crt};
    const char *workloads[] = {"gcc", "swim"};
    for (const SimMode mode : modes) {
        for (const char *w : workloads) {
            JobSpec spec;
            spec.id = campaign.jobs.size();
            spec.label = std::string(modeName(mode)) + ":" + w;
            spec.workloads = {w};
            spec.options.mode = mode;
            spec.options.warmup_insts = 500;
            spec.options.measure_insts = 2000;
            spec.options.collect_stats_json = true;
            campaign.jobs.push_back(std::move(spec));
        }
    }

    JsonlSink::Options opts;
    opts.include_timing = false;    // wall time legitimately varies
    opts.progress = false;

    std::ostringstream one_out, four_out;
    {
        JsonlSink sink(one_out, opts);
        RunnerConfig cfg;
        cfg.jobs = 1;
        cfg.sink = &sink;
        runCampaign(campaign, cfg);
    }
    {
        JsonlSink sink(four_out, opts);
        RunnerConfig cfg;
        cfg.jobs = 4;
        cfg.sink = &sink;
        runCampaign(campaign, cfg);
    }
    EXPECT_EQ(one_out.str(), four_out.str());
    // The timing-suppressed stream must contain embedded stats but no
    // wall-clock members at all.
    EXPECT_NE(one_out.str().find("\"stats\":"), std::string::npos);
    EXPECT_EQ(one_out.str().find("\"host\":"), std::string::npos);
    EXPECT_EQ(one_out.str().find("\"wall_ms\":"), std::string::npos);
}
