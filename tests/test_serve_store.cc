/**
 * @file
 * Content-addressed result store (src/serve/result_store.*):
 *
 *  - the content key hashes what is simulated (options, workloads,
 *    faults, seed, stats flag) and ignores grid position (id, label);
 *  - tryClaim/await/publish implement single-flight: N concurrent
 *    claimers of one key produce exactly one owner, everyone else is
 *    served the published result;
 *  - an abandoned claim wakes the waiters and one of them re-claims
 *    ownership — a dead owner never wedges the key;
 *  - a persisted store reloads every ok row byte-identically (wire
 *    codec round-trip, wall-clock double included), while failed
 *    results are never written to disk;
 *  - a torn tail or a CRC-corrupt frame degrades to the valid prefix,
 *    exactly like journal replay — and a non-store file or a future
 *    format version is a hard StoreError.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "runner/wire.hh"
#include "serve/result_store.hh"

using namespace rmt;

namespace
{

/** Self-deleting temp store directory. */
struct TempDir
{
    explicit TempDir(const std::string &name)
        : path(std::string(::testing::TempDir()) + name)
    {
        std::filesystem::remove_all(path);
    }
    ~TempDir() { std::filesystem::remove_all(path); }
    std::string path;
};

std::string
storeFile(const TempDir &dir)
{
    return dir.path + "/store.rmtrs";
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

void
spit(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
}

JobSpec
sampleSpec(std::uint64_t id)
{
    JobSpec s;
    s.id = id;
    s.label = "job" + std::to_string(id);
    s.workloads = {"gcc"};
    s.options.warmup_insts = 100;
    s.options.measure_insts = 1000;
    s.seed = 42;
    return s;
}

JobResult
sampleResult(std::uint64_t id, bool ok = true)
{
    JobResult r;
    r.id = id;
    r.label = "job" + std::to_string(id);
    r.status = ok ? JobStatus::Ok : JobStatus::Failed;
    r.error = ok ? "" : "synthetic";
    r.attempts = 1;
    r.wall_seconds = 0.125 + 0.625 * double(id);   // exact doubles
    r.run.total_cycles = 5000 + id;
    r.run.completed = ok;
    return r;
}

} // namespace

TEST(ResultKey, HashesContentNotGridPosition)
{
    const JobSpec a = sampleSpec(3);
    JobSpec b = sampleSpec(3);
    b.id = 99;
    b.label = "somewhere else entirely";
    EXPECT_EQ(resultKeyU64(a), resultKeyU64(b));

    JobSpec seed = a;
    seed.seed = 43;
    EXPECT_NE(resultKeyU64(a), resultKeyU64(seed));

    JobSpec mix = a;
    mix.workloads = {"swim"};
    EXPECT_NE(resultKeyU64(a), resultKeyU64(mix));

    JobSpec opts = a;
    opts.options.slack_fetch = 32;
    EXPECT_NE(resultKeyU64(a), resultKeyU64(opts));

    JobSpec stats = a;
    stats.options.collect_stats_json = true;
    EXPECT_NE(resultKeyU64(a), resultKeyU64(stats));

    JobSpec fault = a;
    FaultRecord f{};
    f.kind = FaultRecord::Kind::TransientReg;
    f.when = 1234;
    f.reg = 7;
    f.bit = 3;
    fault.faults.push_back(f);
    EXPECT_NE(resultKeyU64(a), resultKeyU64(fault));

    JobSpec bit = fault;
    bit.faults[0].bit = 4;
    EXPECT_NE(resultKeyU64(fault), resultKeyU64(bit));
}

TEST(ResultStore, ClaimPublishHitCounters)
{
    ResultStore store;      // memory-only: no open()
    const std::uint64_t key = resultKeyU64(sampleSpec(0));

    JobResult out;
    ASSERT_EQ(store.tryClaim(key, out), ResultStore::Claim::Owner);
    EXPECT_EQ(store.tryClaim(key, out), ResultStore::Claim::InFlight);

    store.publish(key, "srt", sampleResult(0));
    ASSERT_EQ(store.tryClaim(key, out), ResultStore::Claim::Hit);
    EXPECT_EQ(wire::encodeJobResult(out),
              wire::encodeJobResult(sampleResult(0)));

    const ResultStoreStats s = store.stats();
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.rows, 1u);
    EXPECT_EQ(s.disk_rows, 0u);
    ASSERT_EQ(s.mode_rows.count("srt"), 1u);
    EXPECT_EQ(s.mode_rows.at("srt"), 1u);
}

TEST(ResultStore, AbandonWakesWaiterWhoReclaims)
{
    ResultStore store;
    const std::uint64_t key = 0xdeadbeefull;

    JobResult out;
    ASSERT_EQ(store.tryClaim(key, out), ResultStore::Claim::Owner);

    std::thread waiter([&] {
        JobResult mine;
        // The owner abandons: await must return false, and the waiter
        // must then win ownership.
        EXPECT_FALSE(store.await(key, mine));
        EXPECT_EQ(store.tryClaim(key, mine),
                  ResultStore::Claim::Owner);
        store.publish(key, "srt", sampleResult(1));
    });

    // Give the waiter time to block, then walk away.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    store.abandon(key);
    waiter.join();

    ASSERT_EQ(store.tryClaim(key, out), ResultStore::Claim::Hit);
    EXPECT_EQ(out.run.total_cycles, sampleResult(1).run.total_cycles);
}

TEST(ResultStore, SingleFlightManyThreads)
{
    ResultStore store;
    const std::uint64_t key = 7;
    std::atomic<int> owners{0}, served{0};

    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t) {
        threads.emplace_back([&] {
            JobResult r;
            for (;;) {
                switch (store.tryClaim(key, r)) {
                  case ResultStore::Claim::Owner:
                    ++owners;
                    store.publish(key, "crt", sampleResult(2));
                    return;
                  case ResultStore::Claim::Hit:
                    ++served;
                    EXPECT_EQ(r.run.total_cycles,
                              sampleResult(2).run.total_cycles);
                    return;
                  case ResultStore::Claim::InFlight:
                    if (store.await(key, r)) {
                        ++served;
                        EXPECT_EQ(r.run.total_cycles,
                                  sampleResult(2).run.total_cycles);
                        return;
                    }
                    break;    // owner abandoned; loop and re-claim
                }
            }
        });
    }
    for (auto &t : threads)
        t.join();

    EXPECT_EQ(owners.load(), 1);
    EXPECT_EQ(served.load(), 7);
    EXPECT_EQ(store.stats().misses, 1u);
}

TEST(ResultStore, PersistsOkRowsAndReloadsThemByteIdentically)
{
    TempDir dir("serve_store_roundtrip");
    {
        ResultStore store;
        store.setSyncEvery(1);
        store.open(dir.path);
        for (std::uint64_t k = 0; k < 4; ++k) {
            JobResult dummy;
            ASSERT_EQ(store.tryClaim(k, dummy),
                      ResultStore::Claim::Owner);
            store.publish(k, k % 2 ? "crt" : "srt", sampleResult(k));
        }
        // A failure unblocks waiters but must never reach the disk.
        JobResult dummy;
        ASSERT_EQ(store.tryClaim(99, dummy),
                  ResultStore::Claim::Owner);
        store.publish(99, "srt", sampleResult(99, /*ok=*/false));
    }

    ResultStore reloaded;
    reloaded.open(dir.path);
    const ResultStoreStats s = reloaded.stats();
    EXPECT_EQ(s.disk_rows, 4u);
    EXPECT_EQ(s.rows, 4u);
    EXPECT_EQ(s.mode_rows.at("srt"), 2u);
    EXPECT_EQ(s.mode_rows.at("crt"), 2u);

    for (std::uint64_t k = 0; k < 4; ++k) {
        JobResult out;
        ASSERT_EQ(reloaded.tryClaim(k, out), ResultStore::Claim::Hit);
        EXPECT_EQ(wire::encodeJobResult(out),
                  wire::encodeJobResult(sampleResult(k)));
    }
    // The failed row was memory-only: this process owns it afresh.
    JobResult out;
    EXPECT_EQ(reloaded.tryClaim(99, out), ResultStore::Claim::Owner);
}

TEST(ResultStore, TornTailDegradesToValidPrefix)
{
    TempDir dir("serve_store_torn");
    {
        ResultStore store;
        store.setSyncEvery(1);
        store.open(dir.path);
        for (std::uint64_t k = 0; k < 3; ++k) {
            JobResult dummy;
            store.tryClaim(k, dummy);
            store.publish(k, "srt", sampleResult(k));
        }
    }
    // Simulate a crash mid-append: half a frame header of junk.
    std::string bytes = slurp(storeFile(dir));
    const std::string intact = bytes;
    bytes += std::string("RMTS\x40", 5);
    spit(storeFile(dir), bytes);

    ResultStore reloaded;
    reloaded.open(dir.path);
    EXPECT_EQ(reloaded.stats().disk_rows, 3u);

    // The reopen truncated the tear away before appending.
    EXPECT_EQ(slurp(storeFile(dir)), intact);
}

TEST(ResultStore, CorruptFrameDropsItAndEverythingAfter)
{
    TempDir dir("serve_store_corrupt");
    std::string before_last;
    {
        ResultStore store;
        store.setSyncEvery(1);
        store.open(dir.path);
        for (std::uint64_t k = 0; k < 3; ++k) {
            JobResult dummy;
            store.tryClaim(k, dummy);
            store.publish(k, "srt", sampleResult(k));
            if (k == 1)
                before_last = slurp(storeFile(dir));
        }
    }
    // Flip one payload byte inside the last frame.
    std::string bytes = slurp(storeFile(dir));
    ASSERT_GT(bytes.size(), before_last.size() + 20);
    bytes[before_last.size() + 17] ^= 0x01;
    spit(storeFile(dir), bytes);

    ResultStore reloaded;
    reloaded.open(dir.path);
    EXPECT_EQ(reloaded.stats().disk_rows, 2u);
    JobResult out;
    EXPECT_EQ(reloaded.tryClaim(1, out), ResultStore::Claim::Hit);
    EXPECT_EQ(reloaded.tryClaim(2, out), ResultStore::Claim::Owner);
}

TEST(ResultStore, RejectsForeignFilesAndFutureVersions)
{
    TempDir dir("serve_store_reject");
    std::filesystem::create_directories(dir.path);

    spit(storeFile(dir), "this is not a result store at all");
    {
        ResultStore store;
        EXPECT_THROW(store.open(dir.path), StoreError);
    }

    // Correct magic, version from the future.
    std::string bytes("RMTRES\0\0", 8);
    bytes += std::string("\xff\x00\x00\x00", 4);
    spit(storeFile(dir), bytes);
    {
        ResultStore store;
        EXPECT_THROW(store.open(dir.path), StoreError);
    }
}
