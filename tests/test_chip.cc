#include <gtest/gtest.h>

#include "cmp/chip.hh"

using namespace rmt;

namespace
{

constexpr RegIndex r1 = intReg(1);
constexpr RegIndex r2 = intReg(2);
constexpr RegIndex r3 = intReg(3);

Program
counting(int iters)
{
    ProgramBuilder b("count");
    b.li(r1, iters);
    b.li(r2, 0);
    b.label("loop");
    b.addi(r2, r2, 3);
    b.stq(r2, intReg(0), 0x100);    // repeated store to one slot
    b.addi(r1, r1, -1);
    b.bne(r1, intReg(0), "loop");
    b.halt();
    return b.build();
}

} // namespace

TEST(Chip, RejectsBadCoreCounts)
{
    ChipParams cp;
    cp.num_cores = 0;
    EXPECT_EXIT({ Chip chip(cp); }, ::testing::ExitedWithCode(1),
                "one or two");
    cp.num_cores = 3;
    EXPECT_EXIT({ Chip chip(cp); }, ::testing::ExitedWithCode(1),
                "one or two");
}

TEST(Chip, CoresShareTheL2)
{
    // Core 0 touches a block; core 1's first L1 miss on it then hits
    // the shared L2 instead of memory.
    ChipParams cp;
    cp.num_cores = 2;
    cp.cpu.num_threads = 1;
    Chip chip(cp);
    const Program prog = counting(200);
    DataMemory m0(4096), m1(4096);
    chip.cpu(0).addThread(0, prog, m0, 0, Role::Single);
    chip.cpu(1).addThread(0, prog, m1, 0, Role::Single);
    chip.run(200000);
    ASSERT_TRUE(chip.allDone());
    // Both programs use logical id 0 -> same physical space: the L2
    // absorbed the second core's compulsory misses.
    EXPECT_GT(chip.memSystem().l2().hits(), 0u);
}

TEST(Chip, DistinctLogicalSpacesDoNotAlias)
{
    ChipParams cp;
    cp.num_cores = 1;
    cp.cpu.num_threads = 2;
    Chip chip(cp);
    const Program prog = counting(300);
    DataMemory m0(4096), m1(4096);
    chip.cpu(0).addThread(0, prog, m0, 0, Role::Single);
    chip.cpu(0).addThread(1, prog, m1, 1, Role::Single);
    chip.run(200000);
    ASSERT_TRUE(chip.allDone());
    // Functionally isolated: each image got its own final value.
    EXPECT_EQ(m0.read(0x100, 8), 900u);
    EXPECT_EQ(m1.read(0x100, 8), 900u);
}

TEST(Chip, RunStopsAtTheCycleCap)
{
    ChipParams cp;
    cp.num_cores = 1;
    cp.cpu.num_threads = 1;
    Chip chip(cp);
    ProgramBuilder b("spin");
    b.label("spin");
    b.addi(r3, r3, 1);
    b.br("spin");
    const Program prog = b.build();
    DataMemory mem(4096);
    chip.cpu(0).addThread(0, prog, mem, 0, Role::Single);
    const Cycle ran = chip.run(5000);
    EXPECT_EQ(ran, 5000u);
    EXPECT_FALSE(chip.allDone());
}

TEST(Chip, DrainWindowFollowsCompletion)
{
    ChipParams cp;
    cp.num_cores = 1;
    cp.cpu.num_threads = 1;
    Chip chip(cp);
    const Program prog = counting(50);
    DataMemory mem(4096);
    chip.cpu(0).addThread(0, prog, mem, 0, Role::Single);
    const Cycle ran = chip.run(1000000);
    ASSERT_TRUE(chip.allDone());
    // The run ticks a bounded drain window past completion.
    EXPECT_LT(ran, 100000u);
    EXPECT_GE(ran, Chip::drainCycles);
}

TEST(Chip, DeviceIsSharedChipResource)
{
    ChipParams cp;
    cp.num_cores = 2;
    cp.cpu.num_threads = 1;
    Chip chip(cp);
    ProgramBuilder b("dev");
    b.li(r1, 0x7000000);
    b.ldunc(r2, r1, 0);
    b.ldunc(r3, r1, 0);
    b.halt();
    const Program prog = b.build();
    DataMemory m0(4096), m1(4096);
    chip.cpu(0).addThread(0, prog, m0, 0, Role::Single);
    chip.cpu(1).addThread(0, prog, m1, 1, Role::Single);
    chip.run(100000);
    ASSERT_TRUE(chip.allDone());
    // Four volatile reads total hit ONE device instance.
    EXPECT_EQ(chip.device().reads(), 4u);
}

TEST(Chip, PerCoreStatsAreIndependent)
{
    ChipParams cp;
    cp.num_cores = 2;
    cp.cpu.num_threads = 1;
    Chip chip(cp);
    const Program prog = counting(500);
    DataMemory m0(4096), m1(4096);
    chip.cpu(0).addThread(0, prog, m0, 0, Role::Single);
    // Core 1 idles: it must not accumulate commit counts.
    chip.run(300000);
    ASSERT_TRUE(chip.allDone());
    EXPECT_GT(chip.cpu(0).committed(0), 0u);
    EXPECT_EQ(chip.cpu(1).committed(0), 0u);
}
