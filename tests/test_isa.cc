#include <gtest/gtest.h>

#include <bit>

#include "isa/isa.hh"

using namespace rmt;

namespace
{

StaticInst
rr(Op op, RegIndex d = 1, RegIndex a = 2, RegIndex b = 3,
   std::int64_t imm = 0)
{
    return StaticInst{op, d, a, b, imm};
}

std::uint64_t
dbl(double v)
{
    return std::bit_cast<std::uint64_t>(v);
}

} // namespace

TEST(Isa, IntegerArithmetic)
{
    EXPECT_EQ(evalOp(rr(Op::Add), 0, 5, 7).value, 12u);
    EXPECT_EQ(evalOp(rr(Op::Sub), 0, 5, 7).value,
              static_cast<std::uint64_t>(-2));
    EXPECT_EQ(evalOp(rr(Op::Mul), 0, 6, 7).value, 42u);
    EXPECT_EQ(evalOp(rr(Op::Div), 0, 42, 6).value, 7u);
    EXPECT_EQ(evalOp(rr(Op::Div), 0, 42, 0).value, ~0ull);
    EXPECT_EQ(evalOp(rr(Op::AddI, 1, 2, noReg, -3), 0, 10, 0).value, 7u);
    EXPECT_EQ(evalOp(rr(Op::MulI, 1, 2, noReg, 5), 0, 4, 0).value, 20u);
}

TEST(Isa, Comparisons)
{
    EXPECT_EQ(evalOp(rr(Op::Slt), 0, static_cast<std::uint64_t>(-1),
                     1).value, 1u);
    EXPECT_EQ(evalOp(rr(Op::Sltu), 0, static_cast<std::uint64_t>(-1),
                     1).value, 0u);
    EXPECT_EQ(evalOp(rr(Op::SltI, 1, 2, noReg, 5), 0, 4, 0).value, 1u);
    EXPECT_EQ(evalOp(rr(Op::Cmpeq), 0, 9, 9).value, 1u);
    EXPECT_EQ(evalOp(rr(Op::Cmpeq), 0, 9, 8).value, 0u);
}

TEST(Isa, LogicAndShifts)
{
    EXPECT_EQ(evalOp(rr(Op::And), 0, 0xF0F0, 0xFF00).value, 0xF000u);
    EXPECT_EQ(evalOp(rr(Op::Or), 0, 0xF0, 0x0F).value, 0xFFu);
    EXPECT_EQ(evalOp(rr(Op::Xor), 0, 0xFF, 0x0F).value, 0xF0u);
    EXPECT_EQ(evalOp(rr(Op::Sll), 0, 1, 8).value, 256u);
    EXPECT_EQ(evalOp(rr(Op::Srl), 0, 256, 8).value, 1u);
    EXPECT_EQ(evalOp(rr(Op::Sra), 0, static_cast<std::uint64_t>(-8),
                     2).value,
              static_cast<std::uint64_t>(-2));
    EXPECT_EQ(evalOp(rr(Op::SllI, 1, 2, noReg, 4), 0, 3, 0).value, 48u);
    EXPECT_EQ(evalOp(rr(Op::SrlI, 1, 2, noReg, 4), 0, 48, 0).value, 3u);
}

TEST(Isa, Branches)
{
    const Addr pc = 0x1000;
    // beq taken: target = pc + 4 + imm.
    auto r = evalOp(rr(Op::Beq, noReg, 1, 2, 32), pc, 7, 7);
    EXPECT_TRUE(r.taken);
    EXPECT_EQ(r.target, pc + 4 + 32);
    r = evalOp(rr(Op::Beq, noReg, 1, 2, 32), pc, 7, 8);
    EXPECT_FALSE(r.taken);
    r = evalOp(rr(Op::Bne, noReg, 1, 2, -8), pc, 7, 8);
    EXPECT_TRUE(r.taken);
    EXPECT_EQ(r.target, pc + 4 - 8);
    r = evalOp(rr(Op::Blt, noReg, 1, 2, 0), pc,
               static_cast<std::uint64_t>(-5), 3);
    EXPECT_TRUE(r.taken);
    r = evalOp(rr(Op::Bge, noReg, 1, 2, 0), pc, 3, 3);
    EXPECT_TRUE(r.taken);
}

TEST(Isa, JumpsAndCalls)
{
    const Addr pc = 0x2000;
    auto r = evalOp(rr(Op::Br, noReg, noReg, noReg, 16), pc, 0, 0);
    EXPECT_TRUE(r.taken);
    EXPECT_EQ(r.target, pc + 4 + 16);

    r = evalOp(rr(Op::Call, 31, noReg, noReg, 100), pc, 0, 0);
    EXPECT_TRUE(r.taken);
    EXPECT_EQ(r.target, pc + 4 + 100);
    EXPECT_EQ(r.value, pc + 4);     // link

    r = evalOp(rr(Op::Jmp, noReg, 1), pc, 0x3004, 0);
    EXPECT_TRUE(r.taken);
    EXPECT_EQ(r.target, 0x3004u);

    // Indirect targets are force-aligned.
    r = evalOp(rr(Op::Ret, noReg, 1), pc, 0x3007, 0);
    EXPECT_EQ(r.target, 0x3004u);
}

TEST(Isa, FloatingPoint)
{
    EXPECT_DOUBLE_EQ(std::bit_cast<double>(
                         evalOp(rr(Op::Fadd), 0, dbl(1.5), dbl(2.25))
                             .value),
                     3.75);
    EXPECT_DOUBLE_EQ(std::bit_cast<double>(
                         evalOp(rr(Op::Fmul), 0, dbl(3.0), dbl(-2.0))
                             .value),
                     -6.0);
    EXPECT_DOUBLE_EQ(std::bit_cast<double>(
                         evalOp(rr(Op::Fdiv), 0, dbl(7.0), dbl(2.0))
                             .value),
                     3.5);
    EXPECT_DOUBLE_EQ(std::bit_cast<double>(
                         evalOp(rr(Op::Fsqrt, 1, 2), 0, dbl(-9.0), 0)
                             .value),
                     3.0);    // |x| then sqrt
    EXPECT_EQ(evalOp(rr(Op::Fcmplt), 0, dbl(1.0), dbl(2.0)).value, 1u);
    EXPECT_EQ(evalOp(rr(Op::Fcmpeq), 0, dbl(2.0), dbl(2.0)).value, 1u);
    EXPECT_DOUBLE_EQ(std::bit_cast<double>(
                         evalOp(rr(Op::CvtIF, 1, 2), 0,
                                static_cast<std::uint64_t>(-3), 0)
                             .value),
                     -3.0);
    EXPECT_EQ(evalOp(rr(Op::CvtFI, 1, 2), 0, dbl(41.9), 0).value, 41u);
}

TEST(Isa, Classification)
{
    EXPECT_TRUE(rr(Op::Ldq).isLoad());
    EXPECT_TRUE(rr(Op::Fld).isLoad());
    EXPECT_TRUE(rr(Op::Stb).isStore());
    EXPECT_TRUE(rr(Op::Fst).isStore());
    EXPECT_TRUE(rr(Op::Beq).isCondBranch());
    EXPECT_TRUE(rr(Op::Jmp).isIndirect());
    EXPECT_TRUE(rr(Op::Ret).isRet());
    EXPECT_TRUE(rr(Op::Call).isCall());
    EXPECT_TRUE(rr(Op::MemBar).isMemBar());
    EXPECT_FALSE(rr(Op::Add).isControl());
    EXPECT_EQ(rr(Op::Ldb).memSize(), 1u);
    EXPECT_EQ(rr(Op::Ldh).memSize(), 2u);
    EXPECT_EQ(rr(Op::Stw).memSize(), 4u);
    EXPECT_EQ(rr(Op::Fst).memSize(), 8u);
}

TEST(Isa, FuClasses)
{
    EXPECT_EQ(rr(Op::Add).fuClass(), FuClass::IntAlu);
    EXPECT_EQ(rr(Op::And).fuClass(), FuClass::Logic);
    EXPECT_EQ(rr(Op::SllI).fuClass(), FuClass::Logic);
    EXPECT_EQ(rr(Op::Ldq).fuClass(), FuClass::Mem);
    EXPECT_EQ(rr(Op::MemBar).fuClass(), FuClass::Mem);
    EXPECT_EQ(rr(Op::Fadd).fuClass(), FuClass::Fp);
    EXPECT_EQ(rr(Op::Nop).fuClass(), FuClass::None);
    EXPECT_EQ(rr(Op::Beq).fuClass(), FuClass::IntAlu);
}

TEST(Isa, Latencies)
{
    EXPECT_EQ(rr(Op::Add).latency(), 1u);
    EXPECT_GT(rr(Op::Mul).latency(), 1u);
    EXPECT_GT(rr(Op::Fdiv).latency(), rr(Op::Fadd).latency());
    EXPECT_GT(rr(Op::Fsqrt).latency(), rr(Op::Fdiv).latency());
}

TEST(Isa, EffectiveAddr)
{
    EXPECT_EQ(effectiveAddr(rr(Op::Ldq, 1, 2, noReg, 16), 0x100), 0x110u);
    EXPECT_EQ(effectiveAddr(rr(Op::Ldq, 1, 2, noReg, -8), 0x100), 0xF8u);
}

TEST(Isa, Disassemble)
{
    EXPECT_EQ(rr(Op::Add, 1, 2, 3).disassemble(), "add r1 r2 r3");
    const StaticInst ld{Op::Ldq, 4, 5, noReg, 24};
    EXPECT_EQ(ld.disassemble(), "ldq r4 r5 #24");
    const StaticInst f{Op::Fadd, fpReg(0), fpReg(1), fpReg(2), 0};
    EXPECT_EQ(f.disassemble(), "fadd f0 f1 f2");
}
