#include <gtest/gtest.h>

#include "isa/arch_state.hh"

using namespace rmt;

namespace
{

constexpr RegIndex r1 = intReg(1);
constexpr RegIndex r2 = intReg(2);
constexpr RegIndex r3 = intReg(3);
constexpr RegIndex f0 = fpReg(0);
constexpr RegIndex f1 = fpReg(1);

} // namespace

TEST(ArchState, StraightLineArithmetic)
{
    ProgramBuilder b("t");
    b.li(r1, 6).li(r2, 7).mul(r3, r1, r2).halt();
    Program p = b.build();
    DataMemory mem(64);
    ArchState st(p, mem);
    st.run(100);
    EXPECT_TRUE(st.halted());
    EXPECT_EQ(st.readReg(r3), 42u);
    EXPECT_EQ(st.instsExecuted(), 4u);
}

TEST(ArchState, RegisterZeroIsHardwired)
{
    ProgramBuilder b("t");
    b.li(intReg(0), 99).mov(r1, intReg(0)).halt();
    Program p = b.build();
    DataMemory mem(64);
    ArchState st(p, mem);
    st.run(100);
    EXPECT_EQ(st.readReg(intReg(0)), 0u);
    EXPECT_EQ(st.readReg(r1), 0u);
}

TEST(ArchState, LoopWithBranch)
{
    // Sum 1..10.
    ProgramBuilder b("t");
    b.li(r1, 10);       // counter
    b.li(r2, 0);        // sum
    b.label("loop");
    b.add(r2, r2, r1);
    b.addi(r1, r1, -1);
    b.bne(r1, intReg(0), "loop");
    b.halt();
    Program p = b.build();
    DataMemory mem(64);
    ArchState st(p, mem);
    st.run(1000);
    EXPECT_TRUE(st.halted());
    EXPECT_EQ(st.readReg(r2), 55u);
}

TEST(ArchState, LoadsAndStores)
{
    ProgramBuilder b("t");
    b.li(r1, 0x100);
    b.li(r2, 0xABCD);
    b.stq(r2, r1, 0);
    b.ldq(r3, r1, 0);
    b.sth(r2, r1, 8);
    b.ldh(r2, r1, 8);
    b.halt();
    Program p = b.build();
    DataMemory mem(4096);
    ArchState st(p, mem);
    st.run(100);
    EXPECT_EQ(st.readReg(r3), 0xABCDu);
    EXPECT_EQ(mem.read(0x100, 8), 0xABCDu);
    EXPECT_EQ(st.readReg(r2), 0xABCDu);
}

TEST(ArchState, CallAndReturn)
{
    ProgramBuilder b("t");
    b.li(r1, 5);
    b.call("double_it");
    b.mov(r3, r2);
    b.halt();
    b.label("double_it");
    b.add(r2, r1, r1);
    b.ret();
    Program p = b.build();
    DataMemory mem(64);
    ArchState st(p, mem);
    st.run(100);
    EXPECT_TRUE(st.halted());
    EXPECT_EQ(st.readReg(r3), 10u);
}

TEST(ArchState, FloatingPointChain)
{
    ProgramBuilder b("t");
    b.li(r1, 0x100);
    b.li(r2, 9);
    b.cvtif(f0, r2);
    b.fsqrt(f1, f0);
    b.fst(f1, r1, 0);
    b.cvtfi(r3, f1);
    b.halt();
    Program p = b.build();
    DataMemory mem(4096);
    ArchState st(p, mem);
    st.run(100);
    EXPECT_EQ(st.readReg(r3), 3u);
    EXPECT_DOUBLE_EQ(std::bit_cast<double>(mem.read(0x100, 8)), 3.0);
}

TEST(ArchState, StepResultReportsStores)
{
    ProgramBuilder b("t");
    b.li(r1, 0x40).li(r2, 7).stw(r2, r1, 4).halt();
    Program p = b.build();
    DataMemory mem(256);
    ArchState st(p, mem);
    st.step();
    st.step();
    const StepResult r = st.step();
    EXPECT_TRUE(r.is_store);
    EXPECT_EQ(r.store_addr, 0x44u);
    EXPECT_EQ(r.store_data, 7u);
    EXPECT_EQ(r.store_size, 4u);
}

TEST(ArchState, HaltIsSticky)
{
    ProgramBuilder b("t");
    b.halt();
    Program p = b.build();
    DataMemory mem(64);
    ArchState st(p, mem);
    EXPECT_EQ(st.run(10), 1u);
    const Addr pc = st.pc();
    st.step();
    EXPECT_EQ(st.pc(), pc);
    EXPECT_TRUE(st.halted());
}

TEST(ArchState, RunRespectsBudget)
{
    ProgramBuilder b("t");
    b.label("spin").br("spin");
    Program p = b.build();
    DataMemory mem(64);
    ArchState st(p, mem);
    EXPECT_EQ(st.run(123), 123u);
    EXPECT_FALSE(st.halted());
}
