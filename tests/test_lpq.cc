#include <gtest/gtest.h>

#include "rmt/lpq.hh"

using namespace rmt;

namespace
{

LpqChunk
chunk(Addr start, std::uint8_t count, Cycle avail = 0)
{
    LpqChunk c;
    c.start = start;
    c.count = count;
    c.availableAt = avail;
    return c;
}

} // namespace

TEST(Lpq, ForwardingLatencyGatesVisibility)
{
    Lpq lpq(8, "lpq");
    lpq.push(chunk(0x1000, 8, 14));
    EXPECT_FALSE(lpq.available(13));
    EXPECT_TRUE(lpq.available(14));
}

TEST(Lpq, AckAdvancesActiveHead)
{
    Lpq lpq(8, "lpq");
    lpq.push(chunk(0x1000, 8));
    lpq.push(chunk(0x2000, 4));
    EXPECT_EQ(lpq.activeChunk().start, 0x1000u);
    lpq.ack();
    EXPECT_EQ(lpq.activeChunk().start, 0x2000u);
    EXPECT_EQ(lpq.size(), 2u);          // recovery head unmoved
    EXPECT_EQ(lpq.unread(), 1u);
}

TEST(Lpq, CommitFetchAdvancesRecoveryHead)
{
    Lpq lpq(8, "lpq");
    lpq.push(chunk(0x1000, 8));
    lpq.push(chunk(0x2000, 4));
    lpq.ack();
    lpq.commitFetch();
    EXPECT_EQ(lpq.size(), 1u);
    EXPECT_EQ(lpq.activeChunk().start, 0x2000u);
}

TEST(Lpq, RollbackReissuesSequence)
{
    // Paper Section 4.4.1: on an I-cache miss the active head rolls
    // back to the recovery head and predictions reissue.
    Lpq lpq(8, "lpq");
    lpq.push(chunk(0x1000, 8));
    lpq.push(chunk(0x2000, 4));
    lpq.ack();                          // accept 0x1000
    lpq.ack();                          // accept 0x2000
    lpq.rollback();                     // miss: reissue from recovery
    EXPECT_EQ(lpq.activeChunk().start, 0x1000u);
    lpq.ack();
    lpq.commitFetch();
    EXPECT_EQ(lpq.activeChunk().start, 0x2000u);
}

TEST(Lpq, MixedAckCommitRollback)
{
    Lpq lpq(8, "lpq");
    lpq.push(chunk(0x1000, 8));
    lpq.push(chunk(0x2000, 8));
    lpq.push(chunk(0x3000, 8));
    lpq.ack();
    lpq.commitFetch();                  // 0x1000 delivered
    lpq.ack();                          // 0x2000 accepted
    lpq.rollback();                     // 0x2000 missed
    EXPECT_EQ(lpq.activeChunk().start, 0x2000u);
    lpq.ack();
    lpq.commitFetch();
    lpq.ack();
    lpq.commitFetch();
    EXPECT_EQ(lpq.size(), 0u);
}

TEST(Lpq, CapacityTracksRecoveryHead)
{
    Lpq lpq(2, "lpq");
    lpq.push(chunk(0x1000, 8));
    lpq.push(chunk(0x2000, 8));
    EXPECT_TRUE(lpq.full());
    lpq.ack();
    // Acked but not delivered: still occupies an entry.
    EXPECT_TRUE(lpq.full());
    lpq.commitFetch();
    EXPECT_FALSE(lpq.full());
}

TEST(LpqDeathTest, BadUseIsCaught)
{
    Lpq lpq(2, "lpq");
    EXPECT_DEATH(lpq.ack(), "LPQ");
    lpq.push(chunk(0x1000, 8));
    EXPECT_DEATH(lpq.commitFetch(), "LPQ");
    LpqChunk bad = chunk(0x1000, 0);
    EXPECT_DEATH(lpq.push(bad), "LPQ");
}
