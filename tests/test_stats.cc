#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "common/json.hh"
#include "common/stats.hh"

using namespace rmt;

TEST(Stats, CounterBasics)
{
    StatGroup g("grp");
    Counter c(g, "count", "a counter");
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 41;
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Stats, AverageBasics)
{
    StatGroup g("grp");
    Average a(g, "avg", "an average");
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    a.sample(2.0);
    a.sample(4.0);
    EXPECT_DOUBLE_EQ(a.mean(), 3.0);
    EXPECT_EQ(a.samples(), 2u);
}

TEST(Stats, HistogramBuckets)
{
    StatGroup g("grp");
    Histogram h(g, "hist", "a histogram", 4, 10.0);
    h.sample(0);
    h.sample(9.9);
    h.sample(10);
    h.sample(35);
    h.sample(40);    // overflow
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(3), 1u);
    EXPECT_EQ(h.overflowCount(), 1u);
    EXPECT_EQ(h.samples(), 5u);
}

TEST(Stats, GroupDumpContainsNamesAndValues)
{
    StatGroup g("core0");
    Counter c(g, "cycles", "cycles simulated");
    c += 7;
    std::ostringstream os;
    g.dump(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("core0.cycles"), std::string::npos);
    EXPECT_NE(out.find("7"), std::string::npos);
    EXPECT_NE(out.find("cycles simulated"), std::string::npos);
}

TEST(Stats, GroupResetAll)
{
    StatGroup g("g");
    Counter c(g, "c", "");
    Average a(g, "a", "");
    c += 5;
    a.sample(1.0);
    g.resetAll();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(a.samples(), 0u);
}

// Regression: stats used to stay registered after destruction, so a
// dump after a stat died walked a dangling pointer.
TEST(Stats, StatUnregistersOnDestruction)
{
    StatGroup g("g");
    Counter keep(g, "keep", "");
    {
        Counter temp(g, "temp", "");
        ++temp;
        EXPECT_EQ(g.statList().size(), 2u);
    }
    EXPECT_EQ(g.statList().size(), 1u);
    EXPECT_EQ(g.statList().front(), &keep);

    std::ostringstream os;
    g.dump(os);     // must not touch the dead stat
    EXPECT_EQ(os.str().find("temp"), std::string::npos);
    EXPECT_NE(os.str().find("keep"), std::string::npos);
}

// The reverse order: the group dies before a stat it contained.  The
// stat's destructor must not chase the dead group.
TEST(Stats, GroupMayDieBeforeStats)
{
    auto group = std::make_unique<StatGroup>("g");
    auto stat = std::make_unique<Counter>(*group, "c", "");
    group.reset();
    ++*stat;            // stat is detached but still usable
    EXPECT_EQ(stat->value(), 1u);
    stat.reset();       // and must not unregister from the dead group
}

TEST(Stats, RegistryTracksLiveGroups)
{
    StatRegistry &reg = StatRegistry::instance();
    const std::size_t before = reg.liveGroups();
    {
        StatGroup a("a");
        StatGroup b("b");
        EXPECT_EQ(reg.liveGroups(), before + 2);

        bool saw_a = false;
        bool saw_b = false;
        reg.forEach([&](const StatGroup &g) {
            saw_a = saw_a || &g == &a;
            saw_b = saw_b || &g == &b;
        });
        EXPECT_TRUE(saw_a);
        EXPECT_TRUE(saw_b);
    }
    EXPECT_EQ(reg.liveGroups(), before);
}

namespace
{

JsonValue
parsedGroupJson(const StatGroup &g)
{
    std::ostringstream os;
    g.json(os);
    JsonValue v;
    std::string error;
    EXPECT_TRUE(parseJson(os.str(), v, error)) << error << "\n"
                                               << os.str();
    return v;
}

} // namespace

TEST(StatsJson, ZeroSampleAverageAndHistogram)
{
    StatGroup g("g");
    Average a(g, "a", "");
    Histogram h(g, "h", "", 3, 2.0);

    const JsonValue v = parsedGroupJson(g);
    const JsonValue *stats = v.find("stats");
    ASSERT_TRUE(stats && stats->isArray());
    ASSERT_EQ(stats->array().size(), 2u);

    const JsonValue &ja = stats->array()[0];
    EXPECT_EQ(ja.strOr("kind", ""), "average");
    EXPECT_EQ(ja.numberOr("count", -1), 0.0);
    EXPECT_EQ(ja.numberOr("mean", -1), 0.0);    // not NaN

    const JsonValue &jh = stats->array()[1];
    EXPECT_EQ(jh.strOr("kind", ""), "histogram");
    EXPECT_EQ(jh.numberOr("count", -1), 0.0);
    const JsonValue *buckets = jh.find("buckets");
    ASSERT_TRUE(buckets && buckets->isArray());
    EXPECT_EQ(buckets->array().size(), 3u);
}

TEST(StatsJson, HistogramBucketsAndOverflow)
{
    StatGroup g("g");
    Histogram h(g, "h", "lifetimes", 4, 10.0);
    h.sample(0);
    h.sample(9.9);
    h.sample(35);
    h.sample(400);      // overflow

    const JsonValue v = parsedGroupJson(g);
    const JsonValue &jh = v.find("stats")->array()[0];
    EXPECT_EQ(jh.numberOr("bucket_width", 0), 10.0);
    const JsonValue *buckets = jh.find("buckets");
    ASSERT_TRUE(buckets && buckets->isArray());
    ASSERT_EQ(buckets->array().size(), 4u);
    EXPECT_EQ(buckets->array()[0].number(), 2.0);
    EXPECT_EQ(buckets->array()[3].number(), 1.0);
    EXPECT_EQ(jh.numberOr("overflow", -1), 1.0);
    EXPECT_EQ(jh.numberOr("count", -1), 4.0);
}

// Two stats may share a name (e.g. identically-named per-thread
// counters); the array representation keeps both.
TEST(StatsJson, DuplicateStatNamesSurvive)
{
    StatGroup g("g");
    Counter c1(g, "dup", "first");
    Counter c2(g, "dup", "second");
    ++c1;
    c2 += 2;

    const JsonValue v = parsedGroupJson(g);
    const JsonValue *stats = v.find("stats");
    ASSERT_TRUE(stats && stats->isArray());
    ASSERT_EQ(stats->array().size(), 2u);
    EXPECT_EQ(stats->array()[0].numberOr("value", -1), 1.0);
    EXPECT_EQ(stats->array()[1].numberOr("value", -1), 2.0);
}

TEST(StatsJson, EscapesAwkwardStrings)
{
    StatGroup g("g\"\\\n");
    Counter c(g, "c", "tab\there");
    const JsonValue v = parsedGroupJson(g);
    EXPECT_EQ(v.strOr("name", ""), "g\"\\\n");
    EXPECT_EQ(v.find("stats")->array()[0].strOr("desc", ""),
              "tab\there");
}
