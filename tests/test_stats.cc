#include <gtest/gtest.h>

#include <sstream>

#include "common/stats.hh"

using namespace rmt;

TEST(Stats, CounterBasics)
{
    StatGroup g("grp");
    Counter c(g, "count", "a counter");
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 41;
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Stats, AverageBasics)
{
    StatGroup g("grp");
    Average a(g, "avg", "an average");
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    a.sample(2.0);
    a.sample(4.0);
    EXPECT_DOUBLE_EQ(a.mean(), 3.0);
    EXPECT_EQ(a.samples(), 2u);
}

TEST(Stats, HistogramBuckets)
{
    StatGroup g("grp");
    Histogram h(g, "hist", "a histogram", 4, 10.0);
    h.sample(0);
    h.sample(9.9);
    h.sample(10);
    h.sample(35);
    h.sample(40);    // overflow
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(3), 1u);
    EXPECT_EQ(h.overflowCount(), 1u);
    EXPECT_EQ(h.samples(), 5u);
}

TEST(Stats, GroupDumpContainsNamesAndValues)
{
    StatGroup g("core0");
    Counter c(g, "cycles", "cycles simulated");
    c += 7;
    std::ostringstream os;
    g.dump(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("core0.cycles"), std::string::npos);
    EXPECT_NE(out.find("7"), std::string::npos);
    EXPECT_NE(out.find("cycles simulated"), std::string::npos);
}

TEST(Stats, GroupResetAll)
{
    StatGroup g("g");
    Counter c(g, "c", "");
    Average a(g, "a", "");
    c += 5;
    a.sample(1.0);
    g.resetAll();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(a.samples(), 0u);
}
