/**
 * @file
 * Write-ahead result journal (src/runner/journal.*):
 *
 *  - a fresh journal replays every appended record bit-identically,
 *    keyed by job id, with the campaign fingerprint verified;
 *  - a frame cut mid-write (the crash signature) degrades to the valid
 *    prefix with torn_tail set, and the resume writer truncates the
 *    tear away before appending;
 *  - a CRC flip inside the file drops the damaged frame and everything
 *    after it, with corrupt set — silent acceptance of a bad frame is
 *    the one unforgivable outcome;
 *  - a journal written by a different campaign (fingerprint mismatch),
 *    a non-journal file, and a truncated header all throw JournalError;
 *  - the campaign fingerprint is sensitive to every grid ingredient
 *    (seed, options, faults) and insensitive to nothing.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "runner/journal.hh"
#include "runner/wire.hh"

using namespace rmt;

namespace
{

/** Self-deleting temp path; journals are plain files. */
struct TempFile
{
    explicit TempFile(const std::string &name)
        : path(std::string(::testing::TempDir()) + name)
    {
        std::remove(path.c_str());
    }
    ~TempFile() { std::remove(path.c_str()); }
    std::string path;
};

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

void
spit(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
}

JobResult
sampleResult(std::uint64_t id)
{
    JobResult r;
    r.id = id;
    r.label = "trial" + std::to_string(id);
    r.status = id % 3 ? JobStatus::Ok : JobStatus::Failed;
    r.error = id % 3 ? "" : "synthetic failure";
    r.attempts = 1 + unsigned(id % 2);
    r.wall_seconds = 0.25 * double(id + 1);
    r.run.total_cycles = 1000 + id;
    r.run.completed = r.ok();
    r.has_verdict = true;
    r.verdict = id % 2 ? FaultVerdict::Detected : FaultVerdict::Masked;
    r.detection_latency = id % 2 ? 12.5 : -1;
    return r;
}

std::vector<JobSpec>
sampleCampaign(unsigned n)
{
    std::vector<JobSpec> jobs;
    for (unsigned i = 0; i < n; ++i) {
        JobSpec spec;
        spec.id = i;
        spec.label = "trial" + std::to_string(i);
        spec.workloads = {"compress"};
        spec.seed = 0xBEEF + i;
        FaultRecord f;
        f.kind = FaultRecord::Kind::TransientReg;
        f.when = 100 + 10 * i;
        f.reg = 1;
        f.bit = i % 64;
        spec.faults.push_back(f);
        jobs.push_back(std::move(spec));
    }
    return jobs;
}

void
expectSameReplayedResult(const JobResult &a, const JobResult &b)
{
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.label, b.label);
    EXPECT_EQ(a.status, b.status);
    EXPECT_EQ(a.error, b.error);
    EXPECT_EQ(a.attempts, b.attempts);
    EXPECT_DOUBLE_EQ(a.wall_seconds, b.wall_seconds);
    EXPECT_EQ(a.run.total_cycles, b.run.total_cycles);
    EXPECT_EQ(a.has_verdict, b.has_verdict);
    EXPECT_EQ(a.verdict, b.verdict);
    EXPECT_DOUBLE_EQ(a.detection_latency, b.detection_latency);
}

} // namespace

TEST(Journal, FreshWriteReplaysEveryRecord)
{
    TempFile tmp("journal_roundtrip.journal");
    const std::uint64_t fp = 0x1234'5678'9ABC'DEF0ull;

    {
        JournalWriter::Options o;
        o.sync_every = 2;       // exercise the batching path
        JournalWriter w(tmp.path, fp, o);
        for (std::uint64_t id = 0; id < 5; ++id)
            w.append(sampleResult(id));
        EXPECT_EQ(w.appended(), 5u);
        w.close();
    }

    const JournalReplay replay = replayJournal(tmp.path, fp);
    EXPECT_FALSE(replay.torn_tail);
    EXPECT_FALSE(replay.corrupt);
    EXPECT_TRUE(replay.note.empty());
    ASSERT_EQ(replay.results.size(), 5u);
    for (std::uint64_t id = 0; id < 5; ++id) {
        const auto it = replay.results.find(id);
        ASSERT_NE(it, replay.results.end()) << "id " << id;
        expectSameReplayedResult(sampleResult(id), it->second);
    }
    EXPECT_EQ(replay.valid_bytes, slurp(tmp.path).size());
}

TEST(Journal, TornTailDegradesToValidPrefixAndResumeTruncates)
{
    TempFile tmp("journal_torn.journal");
    const std::uint64_t fp = 42;

    {
        JournalWriter w(tmp.path, fp);
        for (std::uint64_t id = 0; id < 3; ++id)
            w.append(sampleResult(id));
        w.close();
    }
    const std::string whole = slurp(tmp.path);
    const std::uint64_t intact = replayJournal(tmp.path, fp).valid_bytes;
    ASSERT_EQ(intact, whole.size());

    // Cut the last frame mid-payload: the crash left a partial write.
    spit(tmp.path, whole.substr(0, whole.size() - 7));

    JournalReplay replay = replayJournal(tmp.path, fp);
    EXPECT_TRUE(replay.torn_tail);
    EXPECT_FALSE(replay.corrupt);
    EXPECT_FALSE(replay.note.empty());
    EXPECT_EQ(replay.results.size(), 2u);
    EXPECT_LT(replay.valid_bytes, whole.size() - 7);

    // Resume: the writer truncates the tear and appends the re-run
    // trial; a second replay then sees all three, no tear.
    {
        JournalWriter w(tmp.path, replay);
        w.append(sampleResult(2));
        w.close();
    }
    const JournalReplay again = replayJournal(tmp.path, fp);
    EXPECT_FALSE(again.torn_tail);
    EXPECT_FALSE(again.corrupt);
    EXPECT_EQ(again.results.size(), 3u);
    EXPECT_EQ(slurp(tmp.path).size(), whole.size());
}

TEST(Journal, MidFileCorruptionDropsTheDamagedSuffix)
{
    TempFile tmp("journal_crc.journal");
    const std::uint64_t fp = 7;

    std::uint64_t one_frame_end = 0;
    {
        JournalWriter w(tmp.path, fp);
        w.append(sampleResult(0));
        w.close();
        one_frame_end = replayJournal(tmp.path, fp).valid_bytes;
    }
    {
        JournalWriter::Options o;
        JournalWriter w(tmp.path, fp, o);   // fresh: truncates
        for (std::uint64_t id = 0; id < 3; ++id)
            w.append(sampleResult(id));
        w.close();
    }

    // Flip one payload byte inside the *second* frame: its CRC check
    // must reject it, and frames 2.. must not be trusted either.
    std::string bytes = slurp(tmp.path);
    ASSERT_LT(one_frame_end + 16, bytes.size());
    bytes[one_frame_end + 12] ^= 0x40;      // past the frame header
    spit(tmp.path, bytes);

    const JournalReplay replay = replayJournal(tmp.path, fp);
    EXPECT_TRUE(replay.corrupt);
    EXPECT_FALSE(replay.note.empty());
    EXPECT_EQ(replay.results.size(), 1u);
    EXPECT_EQ(replay.valid_bytes, one_frame_end);
}

TEST(Journal, WrongCampaignOrGarbageHeaderThrows)
{
    TempFile tmp("journal_header.journal");

    {
        JournalWriter w(tmp.path, 1111);
        w.append(sampleResult(0));
        w.close();
    }
    // Same file, different campaign fingerprint: refuse to resume.
    EXPECT_THROW(replayJournal(tmp.path, 2222), JournalError);

    // Not a journal at all.
    spit(tmp.path, "{\"id\":0,\"status\":\"ok\"}\n");
    EXPECT_THROW(replayJournal(tmp.path, 1111), JournalError);

    // Header cut short.
    spit(tmp.path, std::string("RMTJRNL\0", 8));
    EXPECT_THROW(replayJournal(tmp.path, 1111), JournalError);

    // Missing file.
    std::remove(tmp.path.c_str());
    EXPECT_THROW(replayJournal(tmp.path, 1111), JournalError);
}

TEST(Journal, LaterFramesWinOnDuplicateIds)
{
    TempFile tmp("journal_dupes.journal");
    const std::uint64_t fp = 3;

    JobResult first = sampleResult(4);
    first.error = "first attempt";
    first.status = JobStatus::Failed;
    JobResult second = sampleResult(4);
    second.status = JobStatus::Ok;
    second.error.clear();
    {
        JournalWriter w(tmp.path, fp);
        w.append(first);
        w.append(second);
        w.close();
    }
    const JournalReplay replay = replayJournal(tmp.path, fp);
    ASSERT_EQ(replay.results.size(), 1u);
    expectSameReplayedResult(second, replay.results.at(4));
}

TEST(Journal, CampaignFingerprintSeparatesGrids)
{
    const auto jobs = sampleCampaign(4);
    const std::uint64_t fp = campaignFingerprintU64(jobs);
    EXPECT_EQ(fp, campaignFingerprintU64(sampleCampaign(4)));

    auto seed = sampleCampaign(4);
    seed[2].seed ^= 1;
    EXPECT_NE(fp, campaignFingerprintU64(seed));

    auto opts = sampleCampaign(4);
    opts[0].options.measure_insts += 1;
    EXPECT_NE(fp, campaignFingerprintU64(opts));

    auto fault = sampleCampaign(4);
    fault[3].faults[0].bit ^= 1;
    EXPECT_NE(fp, campaignFingerprintU64(fault));

    auto fewer = sampleCampaign(3);
    EXPECT_NE(fp, campaignFingerprintU64(fewer));
}
