file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_checker.dir/bench_abl_checker.cc.o"
  "CMakeFiles/bench_abl_checker.dir/bench_abl_checker.cc.o.d"
  "bench_abl_checker"
  "bench_abl_checker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_checker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
