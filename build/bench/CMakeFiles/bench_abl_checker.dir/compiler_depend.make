# Empty compiler generated dependencies file for bench_abl_checker.
# This may be replaced when dependencies are built.
