# Empty compiler generated dependencies file for bench_fig11_two_cmp.
# This may be replaced when dependencies are built.
