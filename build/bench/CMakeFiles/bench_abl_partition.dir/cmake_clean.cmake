file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_partition.dir/bench_abl_partition.cc.o"
  "CMakeFiles/bench_abl_partition.dir/bench_abl_partition.cc.o.d"
  "bench_abl_partition"
  "bench_abl_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
