file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_four_cmp.dir/bench_fig12_four_cmp.cc.o"
  "CMakeFiles/bench_fig12_four_cmp.dir/bench_fig12_four_cmp.cc.o.d"
  "bench_fig12_four_cmp"
  "bench_fig12_four_cmp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_four_cmp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
