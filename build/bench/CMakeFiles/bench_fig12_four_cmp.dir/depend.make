# Empty dependencies file for bench_fig12_four_cmp.
# This may be replaced when dependencies are built.
