file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_window.dir/bench_abl_window.cc.o"
  "CMakeFiles/bench_abl_window.dir/bench_abl_window.cc.o.d"
  "bench_abl_window"
  "bench_abl_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
