# Empty compiler generated dependencies file for bench_abl_window.
# This may be replaced when dependencies are built.
