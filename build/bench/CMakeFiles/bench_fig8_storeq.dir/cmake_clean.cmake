file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_storeq.dir/bench_fig8_storeq.cc.o"
  "CMakeFiles/bench_fig8_storeq.dir/bench_fig8_storeq.cc.o.d"
  "bench_fig8_storeq"
  "bench_fig8_storeq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_storeq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
