file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_single_cmp.dir/bench_fig10_single_cmp.cc.o"
  "CMakeFiles/bench_fig10_single_cmp.dir/bench_fig10_single_cmp.cc.o.d"
  "bench_fig10_single_cmp"
  "bench_fig10_single_cmp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_single_cmp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
