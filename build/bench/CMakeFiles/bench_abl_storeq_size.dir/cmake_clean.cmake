file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_storeq_size.dir/bench_abl_storeq_size.cc.o"
  "CMakeFiles/bench_abl_storeq_size.dir/bench_abl_storeq_size.cc.o.d"
  "bench_abl_storeq_size"
  "bench_abl_storeq_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_storeq_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
