# Empty compiler generated dependencies file for bench_abl_storeq_size.
# This may be replaced when dependencies are built.
