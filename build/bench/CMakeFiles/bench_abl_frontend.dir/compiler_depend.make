# Empty compiler generated dependencies file for bench_abl_frontend.
# This may be replaced when dependencies are built.
