file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_frontend.dir/bench_abl_frontend.cc.o"
  "CMakeFiles/bench_abl_frontend.dir/bench_abl_frontend.cc.o.d"
  "bench_abl_frontend"
  "bench_abl_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
