file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_srt_two.dir/bench_fig9_srt_two.cc.o"
  "CMakeFiles/bench_fig9_srt_two.dir/bench_fig9_srt_two.cc.o.d"
  "bench_fig9_srt_two"
  "bench_fig9_srt_two.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_srt_two.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
