# Empty dependencies file for bench_fig9_srt_two.
# This may be replaced when dependencies are built.
