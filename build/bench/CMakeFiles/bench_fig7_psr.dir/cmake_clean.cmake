file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_psr.dir/bench_fig7_psr.cc.o"
  "CMakeFiles/bench_fig7_psr.dir/bench_fig7_psr.cc.o.d"
  "bench_fig7_psr"
  "bench_fig7_psr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_psr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
