# Empty compiler generated dependencies file for bench_abl_slack.
# This may be replaced when dependencies are built.
