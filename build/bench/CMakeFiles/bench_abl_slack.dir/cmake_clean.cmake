file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_slack.dir/bench_abl_slack.cc.o"
  "CMakeFiles/bench_abl_slack.dir/bench_abl_slack.cc.o.d"
  "bench_abl_slack"
  "bench_abl_slack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_slack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
