# Empty dependencies file for bench_fig6_srt_single.
# This may be replaced when dependencies are built.
