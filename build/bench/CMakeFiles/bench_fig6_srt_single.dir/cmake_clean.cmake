file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_srt_single.dir/bench_fig6_srt_single.cc.o"
  "CMakeFiles/bench_fig6_srt_single.dir/bench_fig6_srt_single.cc.o.d"
  "bench_fig6_srt_single"
  "bench_fig6_srt_single.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_srt_single.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
