file(REMOVE_RECURSE
  "CMakeFiles/rmtsim_cli.dir/rmtsim_cli.cc.o"
  "CMakeFiles/rmtsim_cli.dir/rmtsim_cli.cc.o.d"
  "rmtsim"
  "rmtsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmtsim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
