# Empty dependencies file for rmtsim_cli.
# This may be replaced when dependencies are built.
