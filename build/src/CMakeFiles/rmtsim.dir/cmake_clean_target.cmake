file(REMOVE_RECURSE
  "librmtsim.a"
)
