# Empty dependencies file for rmtsim.
# This may be replaced when dependencies are built.
