
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cmp/chip.cc" "src/CMakeFiles/rmtsim.dir/cmp/chip.cc.o" "gcc" "src/CMakeFiles/rmtsim.dir/cmp/chip.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/rmtsim.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/rmtsim.dir/common/logging.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/rmtsim.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/rmtsim.dir/common/stats.cc.o.d"
  "/root/repo/src/cpu/dyn_inst.cc" "src/CMakeFiles/rmtsim.dir/cpu/dyn_inst.cc.o" "gcc" "src/CMakeFiles/rmtsim.dir/cpu/dyn_inst.cc.o.d"
  "/root/repo/src/cpu/ebox.cc" "src/CMakeFiles/rmtsim.dir/cpu/ebox.cc.o" "gcc" "src/CMakeFiles/rmtsim.dir/cpu/ebox.cc.o.d"
  "/root/repo/src/cpu/ibox.cc" "src/CMakeFiles/rmtsim.dir/cpu/ibox.cc.o" "gcc" "src/CMakeFiles/rmtsim.dir/cpu/ibox.cc.o.d"
  "/root/repo/src/cpu/mbox.cc" "src/CMakeFiles/rmtsim.dir/cpu/mbox.cc.o" "gcc" "src/CMakeFiles/rmtsim.dir/cpu/mbox.cc.o.d"
  "/root/repo/src/cpu/pbox.cc" "src/CMakeFiles/rmtsim.dir/cpu/pbox.cc.o" "gcc" "src/CMakeFiles/rmtsim.dir/cpu/pbox.cc.o.d"
  "/root/repo/src/cpu/qbox.cc" "src/CMakeFiles/rmtsim.dir/cpu/qbox.cc.o" "gcc" "src/CMakeFiles/rmtsim.dir/cpu/qbox.cc.o.d"
  "/root/repo/src/cpu/smt_cpu.cc" "src/CMakeFiles/rmtsim.dir/cpu/smt_cpu.cc.o" "gcc" "src/CMakeFiles/rmtsim.dir/cpu/smt_cpu.cc.o.d"
  "/root/repo/src/isa/arch_state.cc" "src/CMakeFiles/rmtsim.dir/isa/arch_state.cc.o" "gcc" "src/CMakeFiles/rmtsim.dir/isa/arch_state.cc.o.d"
  "/root/repo/src/isa/isa.cc" "src/CMakeFiles/rmtsim.dir/isa/isa.cc.o" "gcc" "src/CMakeFiles/rmtsim.dir/isa/isa.cc.o.d"
  "/root/repo/src/isa/program.cc" "src/CMakeFiles/rmtsim.dir/isa/program.cc.o" "gcc" "src/CMakeFiles/rmtsim.dir/isa/program.cc.o.d"
  "/root/repo/src/mem/cache.cc" "src/CMakeFiles/rmtsim.dir/mem/cache.cc.o" "gcc" "src/CMakeFiles/rmtsim.dir/mem/cache.cc.o.d"
  "/root/repo/src/mem/main_memory.cc" "src/CMakeFiles/rmtsim.dir/mem/main_memory.cc.o" "gcc" "src/CMakeFiles/rmtsim.dir/mem/main_memory.cc.o.d"
  "/root/repo/src/mem/mem_system.cc" "src/CMakeFiles/rmtsim.dir/mem/mem_system.cc.o" "gcc" "src/CMakeFiles/rmtsim.dir/mem/mem_system.cc.o.d"
  "/root/repo/src/mem/merge_buffer.cc" "src/CMakeFiles/rmtsim.dir/mem/merge_buffer.cc.o" "gcc" "src/CMakeFiles/rmtsim.dir/mem/merge_buffer.cc.o.d"
  "/root/repo/src/predictor/branch_predictor.cc" "src/CMakeFiles/rmtsim.dir/predictor/branch_predictor.cc.o" "gcc" "src/CMakeFiles/rmtsim.dir/predictor/branch_predictor.cc.o.d"
  "/root/repo/src/predictor/line_predictor.cc" "src/CMakeFiles/rmtsim.dir/predictor/line_predictor.cc.o" "gcc" "src/CMakeFiles/rmtsim.dir/predictor/line_predictor.cc.o.d"
  "/root/repo/src/predictor/ras.cc" "src/CMakeFiles/rmtsim.dir/predictor/ras.cc.o" "gcc" "src/CMakeFiles/rmtsim.dir/predictor/ras.cc.o.d"
  "/root/repo/src/predictor/store_sets.cc" "src/CMakeFiles/rmtsim.dir/predictor/store_sets.cc.o" "gcc" "src/CMakeFiles/rmtsim.dir/predictor/store_sets.cc.o.d"
  "/root/repo/src/rmt/fault_injector.cc" "src/CMakeFiles/rmtsim.dir/rmt/fault_injector.cc.o" "gcc" "src/CMakeFiles/rmtsim.dir/rmt/fault_injector.cc.o.d"
  "/root/repo/src/rmt/lpq.cc" "src/CMakeFiles/rmtsim.dir/rmt/lpq.cc.o" "gcc" "src/CMakeFiles/rmtsim.dir/rmt/lpq.cc.o.d"
  "/root/repo/src/rmt/lvq.cc" "src/CMakeFiles/rmtsim.dir/rmt/lvq.cc.o" "gcc" "src/CMakeFiles/rmtsim.dir/rmt/lvq.cc.o.d"
  "/root/repo/src/rmt/recovery.cc" "src/CMakeFiles/rmtsim.dir/rmt/recovery.cc.o" "gcc" "src/CMakeFiles/rmtsim.dir/rmt/recovery.cc.o.d"
  "/root/repo/src/rmt/redundancy.cc" "src/CMakeFiles/rmtsim.dir/rmt/redundancy.cc.o" "gcc" "src/CMakeFiles/rmtsim.dir/rmt/redundancy.cc.o.d"
  "/root/repo/src/rmt/store_comparator.cc" "src/CMakeFiles/rmtsim.dir/rmt/store_comparator.cc.o" "gcc" "src/CMakeFiles/rmtsim.dir/rmt/store_comparator.cc.o.d"
  "/root/repo/src/sim/metrics.cc" "src/CMakeFiles/rmtsim.dir/sim/metrics.cc.o" "gcc" "src/CMakeFiles/rmtsim.dir/sim/metrics.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/CMakeFiles/rmtsim.dir/sim/simulator.cc.o" "gcc" "src/CMakeFiles/rmtsim.dir/sim/simulator.cc.o.d"
  "/root/repo/src/workloads/workloads.cc" "src/CMakeFiles/rmtsim.dir/workloads/workloads.cc.o" "gcc" "src/CMakeFiles/rmtsim.dir/workloads/workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
