file(REMOVE_RECURSE
  "CMakeFiles/test_mode_properties.dir/test_mode_properties.cc.o"
  "CMakeFiles/test_mode_properties.dir/test_mode_properties.cc.o.d"
  "test_mode_properties"
  "test_mode_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mode_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
