# Empty compiler generated dependencies file for test_mode_properties.
# This may be replaced when dependencies are built.
