file(REMOVE_RECURSE
  "CMakeFiles/test_arch_state.dir/test_arch_state.cc.o"
  "CMakeFiles/test_arch_state.dir/test_arch_state.cc.o.d"
  "test_arch_state"
  "test_arch_state.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_arch_state.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
