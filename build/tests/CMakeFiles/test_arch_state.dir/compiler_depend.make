# Empty compiler generated dependencies file for test_arch_state.
# This may be replaced when dependencies are built.
