# Empty dependencies file for test_crt_lockstep.
# This may be replaced when dependencies are built.
