file(REMOVE_RECURSE
  "CMakeFiles/test_crt_lockstep.dir/test_crt_lockstep.cc.o"
  "CMakeFiles/test_crt_lockstep.dir/test_crt_lockstep.cc.o.d"
  "test_crt_lockstep"
  "test_crt_lockstep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crt_lockstep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
