# Empty dependencies file for test_cpu_smt.
# This may be replaced when dependencies are built.
