file(REMOVE_RECURSE
  "CMakeFiles/test_cpu_smt.dir/test_cpu_smt.cc.o"
  "CMakeFiles/test_cpu_smt.dir/test_cpu_smt.cc.o.d"
  "test_cpu_smt"
  "test_cpu_smt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cpu_smt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
