# Empty dependencies file for test_merge_buffer.
# This may be replaced when dependencies are built.
