file(REMOVE_RECURSE
  "CMakeFiles/test_merge_buffer.dir/test_merge_buffer.cc.o"
  "CMakeFiles/test_merge_buffer.dir/test_merge_buffer.cc.o.d"
  "test_merge_buffer"
  "test_merge_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_merge_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
