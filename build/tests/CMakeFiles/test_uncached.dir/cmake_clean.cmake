file(REMOVE_RECURSE
  "CMakeFiles/test_uncached.dir/test_uncached.cc.o"
  "CMakeFiles/test_uncached.dir/test_uncached.cc.o.d"
  "test_uncached"
  "test_uncached.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_uncached.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
