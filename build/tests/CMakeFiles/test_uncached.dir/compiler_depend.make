# Empty compiler generated dependencies file for test_uncached.
# This may be replaced when dependencies are built.
