# Empty dependencies file for test_lpq.
# This may be replaced when dependencies are built.
