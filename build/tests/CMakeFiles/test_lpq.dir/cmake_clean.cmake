file(REMOVE_RECURSE
  "CMakeFiles/test_lpq.dir/test_lpq.cc.o"
  "CMakeFiles/test_lpq.dir/test_lpq.cc.o.d"
  "test_lpq"
  "test_lpq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lpq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
