# Empty compiler generated dependencies file for test_store_comparator.
# This may be replaced when dependencies are built.
