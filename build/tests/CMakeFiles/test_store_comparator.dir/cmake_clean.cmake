file(REMOVE_RECURSE
  "CMakeFiles/test_store_comparator.dir/test_store_comparator.cc.o"
  "CMakeFiles/test_store_comparator.dir/test_store_comparator.cc.o.d"
  "test_store_comparator"
  "test_store_comparator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_store_comparator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
