# Empty dependencies file for test_srt.
# This may be replaced when dependencies are built.
