file(REMOVE_RECURSE
  "CMakeFiles/test_mbox_forwarding.dir/test_mbox_forwarding.cc.o"
  "CMakeFiles/test_mbox_forwarding.dir/test_mbox_forwarding.cc.o.d"
  "test_mbox_forwarding"
  "test_mbox_forwarding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mbox_forwarding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
