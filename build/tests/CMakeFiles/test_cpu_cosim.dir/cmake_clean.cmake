file(REMOVE_RECURSE
  "CMakeFiles/test_cpu_cosim.dir/test_cpu_cosim.cc.o"
  "CMakeFiles/test_cpu_cosim.dir/test_cpu_cosim.cc.o.d"
  "test_cpu_cosim"
  "test_cpu_cosim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cpu_cosim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
