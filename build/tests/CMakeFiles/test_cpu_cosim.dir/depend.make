# Empty dependencies file for test_cpu_cosim.
# This may be replaced when dependencies are built.
