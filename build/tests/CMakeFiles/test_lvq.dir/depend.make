# Empty dependencies file for test_lvq.
# This may be replaced when dependencies are built.
