file(REMOVE_RECURSE
  "CMakeFiles/test_lvq.dir/test_lvq.cc.o"
  "CMakeFiles/test_lvq.dir/test_lvq.cc.o.d"
  "test_lvq"
  "test_lvq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lvq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
