file(REMOVE_RECURSE
  "CMakeFiles/test_machine_sweeps.dir/test_machine_sweeps.cc.o"
  "CMakeFiles/test_machine_sweeps.dir/test_machine_sweeps.cc.o.d"
  "test_machine_sweeps"
  "test_machine_sweeps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_machine_sweeps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
