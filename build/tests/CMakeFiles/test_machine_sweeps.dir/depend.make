# Empty dependencies file for test_machine_sweeps.
# This may be replaced when dependencies are built.
