# Empty compiler generated dependencies file for crt_vs_lockstep.
# This may be replaced when dependencies are built.
