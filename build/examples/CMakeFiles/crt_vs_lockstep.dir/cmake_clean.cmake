file(REMOVE_RECURSE
  "CMakeFiles/crt_vs_lockstep.dir/crt_vs_lockstep.cpp.o"
  "CMakeFiles/crt_vs_lockstep.dir/crt_vs_lockstep.cpp.o.d"
  "crt_vs_lockstep"
  "crt_vs_lockstep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crt_vs_lockstep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
