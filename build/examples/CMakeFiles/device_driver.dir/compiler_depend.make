# Empty compiler generated dependencies file for device_driver.
# This may be replaced when dependencies are built.
