# Empty compiler generated dependencies file for multiprogram_srt.
# This may be replaced when dependencies are built.
