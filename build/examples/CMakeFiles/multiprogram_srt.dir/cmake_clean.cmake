file(REMOVE_RECURSE
  "CMakeFiles/multiprogram_srt.dir/multiprogram_srt.cpp.o"
  "CMakeFiles/multiprogram_srt.dir/multiprogram_srt.cpp.o.d"
  "multiprogram_srt"
  "multiprogram_srt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiprogram_srt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
