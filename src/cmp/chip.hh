/**
 * @file
 * A single-chip device: one or two SMT cores sharing an L2 / memory
 * system (paper Sections 1, 5, 6).  The chip also owns the redundancy
 * manager so SRT pairs (one core) and CRT pairs (cross-core) share one
 * registry, and ticks all cores in lock phase.
 */

#ifndef RMTSIM_CMP_CHIP_HH
#define RMTSIM_CMP_CHIP_HH

#include <functional>
#include <memory>
#include <vector>

#include "cpu/smt_cpu.hh"
#include "mem/device.hh"
#include "mem/mem_system.hh"
#include "rmt/redundancy.hh"

namespace rmt
{

class TimelineProbe;

struct ChipParams
{
    unsigned num_cores = 1;
    SmtParams cpu{};
    MemSystemParams mem{};
    DeviceParams device{};
};

class Chip
{
  public:
    explicit Chip(const ChipParams &params);

    SmtCpu &cpu(CoreId core) { return *cores.at(core); }
    unsigned numCores() const { return static_cast<unsigned>(cores.size()); }
    MemSystem &memSystem() { return mem; }
    RedundancyManager &redundancy() { return rmgr; }
    Device &device() { return dev; }

    void setFaultInjector(FaultInjector *injector);

    /** Attach a cycle-sampled timeline probe (nullptr detaches). */
    void setTimelineProbe(TimelineProbe *p) { probe = p; }

    /**
     * Visit every stat group on the chip with a hierarchical path:
     * "core0", "core0/l1d", "pair1/lvq", "mem/l2", "device", ...
     */
    void forEachStatGroup(
        const std::function<void(const std::string &, StatGroup &)> &fn);

    /** Advance every core one cycle. */
    void tick();

    /**
     * Run until every thread on every core is done (hit its target or
     * halted), or @p max_cycles elapse.
     * @return cycles simulated by this call
     */
    Cycle run(Cycle max_cycles);

    bool allDone() const;
    Cycle cycle() const { return cores.front()->cycle(); }

    /** Post-completion drain window (in-flight verifications land). */
    static constexpr Cycle drainCycles = 128;

    // --------------------------------------------------- checkpointing
    /** Enter/leave the snapshot drain on every core. */
    void setDraining(bool d);

    /** All cores drained, all pairs' sphere-crossing queues empty. */
    bool quiescedForSnapshot() const;

    /**
     * Whole-chip state at a quiesce point: every core, the shared L2 /
     * main memory / per-L1 MSHRs, the device write log, and every
     * redundant pair.  Data memories and statistics are handled by the
     * Simulation (which owns them).
     */
    void saveState(Serializer &s) const;
    void loadState(Deserializer &d);

  private:
    ChipParams _params;
    MemSystem mem;
    Device dev{DeviceParams{}};
    RedundancyManager rmgr;
    std::vector<std::unique_ptr<SmtCpu>> cores;
    TimelineProbe *probe = nullptr;
};

} // namespace rmt

#endif // RMTSIM_CMP_CHIP_HH
