#include "cmp/chip.hh"

#include "common/logging.hh"
#include "obs/timeline.hh"

namespace rmt
{

Chip::Chip(const ChipParams &params)
    : _params(params), mem(params.mem), dev(params.device)
{
    if (params.num_cores == 0 || params.num_cores > 2)
        fatal("Chip supports one or two cores");
    for (unsigned c = 0; c < params.num_cores; ++c) {
        SmtParams cpu_params = params.cpu;
        cpu_params.name = "cpu" + std::to_string(c);
        cores.push_back(std::make_unique<SmtCpu>(
            cpu_params, mem, static_cast<CoreId>(c)));
        cores.back()->setDevice(&dev);
    }
}

void
Chip::setFaultInjector(FaultInjector *injector)
{
    for (auto &core : cores)
        core->setFaultInjector(injector);
}

void
Chip::forEachStatGroup(
    const std::function<void(const std::string &, StatGroup &)> &fn)
{
    for (std::size_t c = 0; c < cores.size(); ++c) {
        const std::string prefix = "core" + std::to_string(c);
        cores[c]->forEachStatGroup(
            [&](const std::string &sub, StatGroup &group) {
                fn(sub.empty() ? prefix : prefix + "/" + sub, group);
            });
    }
    fn("mem/l2", mem.l2().stats());
    fn("mem/main", mem.mainMemory().stats());
    fn("device", dev.stats());
    for (std::size_t i = 0; i < rmgr.numPairs(); ++i) {
        RedundantPair &pair = rmgr.pair(i);
        const std::string prefix = "pair" + std::to_string(i);
        fn(prefix, pair.stats());
        fn(prefix + "/lvq", pair.lvq.stats());
        fn(prefix + "/lpq", pair.lpq.stats());
        fn(prefix + "/cmp", pair.comparator.stats());
        if (pair.recovery)
            fn(prefix + "/recovery", pair.recovery->stats());
    }
}

void
Chip::tick()
{
    for (auto &core : cores)
        core->tick();

    // Fault recovery (if configured on a pair): flush both redundant
    // threads, roll memory back to the active checkpoint, restart.
    // Cheapest tests first: most runs have no recovery configured and
    // no fault pending, so the common path is two pointer checks.
    for (std::size_t i = 0; i < rmgr.numPairs(); ++i) {
        RedundantPair &pair = rmgr.pair(i);
        if (!pair.recovery || !pair.memory || !pair.faultDetected())
            continue;
        if (!pair.recovery->canRecover())
            continue;   // exhausted: detect-only from here on
        const auto &p = pair.params();
        const RecoveryCheckpoint ckpt = pair.recovery->active();
        const std::uint64_t committed_now =
            cpu(p.leading.core).committed(p.leading.tid);
        pair.recovery->rollback(*pair.memory, committed_now);
        cpu(p.leading.core).recoverThread(p.leading.tid, ckpt);
        cpu(p.trailing.core).recoverThread(p.trailing.tid, ckpt);
        pair.resetForRecovery(ckpt);
    }

    if (probe)
        probe->tick(*this, cycle());
}

Cycle
Chip::run(Cycle max_cycles)
{
    Cycle n = 0;
    while (n < max_cycles && !allDone()) {
        tick();
        ++n;
    }
    // Drain: forwarded outputs (store verifications, uncached device
    // writes) may still be in flight when the last thread finishes.
    if (allDone()) {
        for (Cycle d = 0; d < drainCycles && n < max_cycles; ++d, ++n)
            tick();
    }
    return n;
}

bool
Chip::allDone() const
{
    for (const auto &core : cores) {
        if (!core->allThreadsDone())
            return false;
    }
    return true;
}

} // namespace rmt
