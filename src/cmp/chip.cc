#include "cmp/chip.hh"

#include "common/logging.hh"
#include "obs/timeline.hh"

namespace rmt
{

Chip::Chip(const ChipParams &params)
    : _params(params), mem(params.mem), dev(params.device)
{
    if (params.num_cores == 0 || params.num_cores > 2)
        fatal("Chip supports one or two cores");
    for (unsigned c = 0; c < params.num_cores; ++c) {
        SmtParams cpu_params = params.cpu;
        cpu_params.name = "cpu" + std::to_string(c);
        cores.push_back(std::make_unique<SmtCpu>(
            cpu_params, mem, static_cast<CoreId>(c)));
        cores.back()->setDevice(&dev);
    }
}

void
Chip::setFaultInjector(FaultInjector *injector)
{
    for (auto &core : cores)
        core->setFaultInjector(injector);
}

void
Chip::forEachStatGroup(
    const std::function<void(const std::string &, StatGroup &)> &fn)
{
    for (std::size_t c = 0; c < cores.size(); ++c) {
        const std::string prefix = "core" + std::to_string(c);
        cores[c]->forEachStatGroup(
            [&](const std::string &sub, StatGroup &group) {
                fn(sub.empty() ? prefix : prefix + "/" + sub, group);
            });
    }
    fn("mem/l2", mem.l2().stats());
    fn("mem/main", mem.mainMemory().stats());
    fn("device", dev.stats());
    for (std::size_t i = 0; i < rmgr.numPairs(); ++i) {
        RedundantPair &pair = rmgr.pair(i);
        const std::string prefix = "pair" + std::to_string(i);
        fn(prefix, pair.stats());
        fn(prefix + "/lvq", pair.lvq.stats());
        fn(prefix + "/lpq", pair.lpq.stats());
        fn(prefix + "/cmp", pair.comparator.stats());
        if (pair.recovery)
            fn(prefix + "/recovery", pair.recovery->stats());
    }
}

void
Chip::tick()
{
    for (auto &core : cores)
        core->tick();

    // Fault recovery (if configured on a pair): flush both redundant
    // threads, roll memory back to the active checkpoint, restart.
    // Cheapest tests first: most runs have no recovery configured and
    // no fault pending, so the common path is two pointer checks.
    for (std::size_t i = 0; i < rmgr.numPairs(); ++i) {
        RedundantPair &pair = rmgr.pair(i);
        if (!pair.recovery || !pair.memory || !pair.faultDetected())
            continue;
        if (!pair.recovery->canRecover())
            continue;   // exhausted: detect-only from here on
        const auto &p = pair.params();
        const RecoveryCheckpoint ckpt = pair.recovery->active();
        const std::uint64_t committed_now =
            cpu(p.leading.core).committed(p.leading.tid);
        pair.recovery->rollback(*pair.memory, committed_now);
        cpu(p.leading.core).recoverThread(p.leading.tid, ckpt);
        cpu(p.trailing.core).recoverThread(p.trailing.tid, ckpt);
        pair.resetForRecovery(ckpt);
    }

    if (probe)
        probe->tick(*this, cycle());
}

Cycle
Chip::run(Cycle max_cycles)
{
    Cycle n = 0;
    while (n < max_cycles && !allDone()) {
        tick();
        ++n;
    }
    // Drain: forwarded outputs (store verifications, uncached device
    // writes) may still be in flight when the last thread finishes.
    if (allDone()) {
        for (Cycle d = 0; d < drainCycles && n < max_cycles; ++d, ++n)
            tick();
    }
    return n;
}

void
Chip::setDraining(bool d)
{
    for (auto &core : cores)
        core->setDraining(d);
}

bool
Chip::quiescedForSnapshot() const
{
    for (const auto &core : cores) {
        if (!core->drainedForSnapshot())
            return false;
    }
    for (std::size_t i = 0; i < rmgr.numPairs(); ++i) {
        if (!rmgr.pair(i).drainedForSnapshot())
            return false;
    }
    return true;
}

void
Chip::saveState(Serializer &s) const
{
    s.u32(static_cast<std::uint32_t>(cores.size()));
    for (const auto &core : cores)
        core->saveState(s);

    mem.l2().saveState(s);
    mem.mainMemory().saveState(s);
    // Pending L1 fills (MSHR entries; fills install lazily, so these
    // can be non-empty at a quiesce point).  Fixed walk order: per core,
    // I-cache then D-cache.
    for (const auto &core : cores) {
        for (Cache *l1 : {&core->icache(), &core->dcache()}) {
            const auto fills = mem.exportPending(l1);
            s.u32(static_cast<std::uint32_t>(fills.size()));
            for (const auto &[block, ready] : fills) {
                s.u64(block);
                s.u64(ready);
            }
        }
    }

    dev.saveState(s);

    s.u32(static_cast<std::uint32_t>(rmgr.numPairs()));
    for (std::size_t i = 0; i < rmgr.numPairs(); ++i)
        rmgr.pair(i).saveState(s);
}

void
Chip::loadState(Deserializer &d)
{
    if (d.u32() != cores.size())
        throw SnapshotError("chip: core count mismatch");
    for (auto &core : cores)
        core->loadState(d);

    mem.l2().loadState(d);
    mem.mainMemory().loadState(d);
    for (auto &core : cores) {
        for (Cache *l1 : {&core->icache(), &core->dcache()}) {
            const std::uint32_t n = d.u32();
            std::vector<std::pair<Addr, Cycle>> fills;
            for (std::uint32_t i = 0; i < n; ++i) {
                const Addr block = d.u64();
                const Cycle ready = d.u64();
                fills.emplace_back(block, ready);
            }
            mem.importPending(l1, fills);
        }
    }

    dev.loadState(d);

    if (d.u32() != rmgr.numPairs())
        throw SnapshotError("chip: pair count mismatch");
    for (std::size_t i = 0; i < rmgr.numPairs(); ++i)
        rmgr.pair(i).loadState(d);
}

bool
Chip::allDone() const
{
    for (const auto &core : cores) {
        if (!core->allThreadsDone())
            return false;
    }
    return true;
}

} // namespace rmt
