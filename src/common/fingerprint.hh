/**
 * @file
 * FNV-1a-64 fingerprinting, shared by every subsystem that keys work
 * by content: the canonical-options fingerprint (sim/simulator), the
 * on-disk baseline store (sim/metrics), campaign records and journals
 * (runner/), and the content-addressed result store (serve/).
 *
 * One implementation so the hashes agree by construction — a baseline
 * written under fingerprint F must be found again by any other layer
 * computing F from the same pre-image.
 */

#ifndef RMTSIM_COMMON_FINGERPRINT_HH
#define RMTSIM_COMMON_FINGERPRINT_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace rmt
{

/** FNV-1a-64 offset basis: the seed of every fingerprint chain. */
constexpr std::uint64_t fnv1a64Seed = 0xcbf29ce484222325ull;

/** Fold @p len bytes at @p data into @p h (FNV-1a-64 step). */
std::uint64_t fnv1a64(const void *data, std::size_t len,
                      std::uint64_t h = fnv1a64Seed);

/** Fold a string's bytes into @p h. */
inline std::uint64_t
fnv1a64(const std::string &s, std::uint64_t h = fnv1a64Seed)
{
    return fnv1a64(s.data(), s.size(), h);
}

/**
 * Fold one delimited field into an incremental hash: the content plus
 * a 0x1f separator, so "ab"+"c" and "a"+"bc" hash apart.  This is the
 * building block of multi-field fingerprints (campaign identity,
 * result-store keys).
 */
void fnv1a64Field(std::uint64_t &h, const std::string &s);

/** Canonical 16-digit lower-case hex rendering of a fingerprint. */
std::string fingerprintHex(std::uint64_t v);

} // namespace rmt

#endif // RMTSIM_COMMON_FINGERPRINT_HH
