/**
 * @file
 * Bit-manipulation helpers used by caches, predictors, and the fault
 * injector.
 */

#ifndef RMTSIM_COMMON_BITS_HH
#define RMTSIM_COMMON_BITS_HH

#include <cstdint>

namespace rmt
{

/** True iff @p v is a power of two (and non-zero). */
constexpr bool
isPowerOf2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** floor(log2(v)); v must be non-zero. */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    unsigned l = 0;
    while (v >>= 1)
        ++l;
    return l;
}

/** Extract bits [first, first+count) of @p v. */
constexpr std::uint64_t
bits(std::uint64_t v, unsigned first, unsigned count)
{
    if (count >= 64)
        return v >> first;
    return (v >> first) & ((std::uint64_t{1} << count) - 1);
}

/** Flip bit @p pos of @p v (transient-fault model primitive). */
constexpr std::uint64_t
flipBit(std::uint64_t v, unsigned pos)
{
    return v ^ (std::uint64_t{1} << (pos & 63));
}

/** Even parity over all 64 bits: 1 if the popcount is odd. */
constexpr unsigned
parity64(std::uint64_t v)
{
    v ^= v >> 32;
    v ^= v >> 16;
    v ^= v >> 8;
    v ^= v >> 4;
    v ^= v >> 2;
    v ^= v >> 1;
    return static_cast<unsigned>(v & 1);
}

} // namespace rmt

#endif // RMTSIM_COMMON_BITS_HH
