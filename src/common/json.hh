/**
 * @file
 * Minimal JSON support shared by the stats serializer, the timeline
 * probe, the campaign result sink, and the report tool.
 *
 * Two halves:
 *
 *  - writer helpers: jsonEscape() for string literals and jsonNum()
 *    for doubles that round-trip without printf noise;
 *  - a small recursive-descent parser producing a JsonValue tree,
 *    enough to read back everything rmtsim emits (objects, arrays,
 *    strings, numbers, booleans, null).  No external dependencies.
 */

#ifndef RMTSIM_COMMON_JSON_HH
#define RMTSIM_COMMON_JSON_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace rmt
{

/** Escape @p s for inclusion in a JSON string literal. */
std::string jsonEscape(const std::string &s);

/** Format a double with enough digits to round-trip, trimming the
 *  noise printf's fixed precision leaves behind ("1.75" not
 *  "1.750000").  Non-finite values become 0 (JSON has no NaN/Inf). */
std::string jsonNum(double v);

/** Parsed JSON document node. */
class JsonValue
{
  public:
    enum class Kind : std::uint8_t
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind() const { return _kind; }
    bool isNull() const { return _kind == Kind::Null; }
    bool isObject() const { return _kind == Kind::Object; }
    bool isArray() const { return _kind == Kind::Array; }
    bool isNumber() const { return _kind == Kind::Number; }
    bool isString() const { return _kind == Kind::String; }
    bool isBool() const { return _kind == Kind::Bool; }

    bool boolean() const { return _bool; }
    double number() const { return _number; }
    const std::string &str() const { return _string; }
    const std::vector<JsonValue> &array() const { return _array; }

    /** Object member by key, or nullptr when absent (or not an
     *  object), so lookups chain without exceptions. */
    const JsonValue *find(const std::string &key) const;

    /** Member @p key as a number; @p fallback when missing. */
    double numberOr(const std::string &key, double fallback) const;

    /** Member @p key as a string; @p fallback when missing. */
    std::string strOr(const std::string &key,
                      const std::string &fallback) const;

    /** Object members in document order (duplicate keys preserved). */
    const std::vector<std::pair<std::string, JsonValue>> &
    members() const
    {
        return _members;
    }

  private:
    friend class JsonParser;

    Kind _kind = Kind::Null;
    bool _bool = false;
    double _number = 0;
    std::string _string;
    std::vector<JsonValue> _array;
    std::vector<std::pair<std::string, JsonValue>> _members;
};

/**
 * Parse @p text as one JSON document.
 * @param error receives a human-readable message on failure
 * @return the parsed value, or no value on malformed input
 */
bool parseJson(const std::string &text, JsonValue &out,
               std::string &error);

/** Convenience: parse-or-false with the error discarded. */
bool parseJson(const std::string &text, JsonValue &out);

} // namespace rmt

#endif // RMTSIM_COMMON_JSON_HH
