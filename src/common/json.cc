#include "common/json.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace rmt
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonNum(double v)
{
    if (!std::isfinite(v))
        v = 0;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.12g", v);
    return buf;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (_kind != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : _members) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

double
JsonValue::numberOr(const std::string &key, double fallback) const
{
    const JsonValue *v = find(key);
    return v && v->isNumber() ? v->number() : fallback;
}

std::string
JsonValue::strOr(const std::string &key,
                 const std::string &fallback) const
{
    const JsonValue *v = find(key);
    return v && v->isString() ? v->str() : fallback;
}

/** Recursive-descent parser over an in-memory string. */
class JsonParser
{
  public:
    JsonParser(const std::string &text) : s(text) {}

    bool
    parse(JsonValue &out, std::string &error)
    {
        err = &error;
        if (!value(out))
            return false;
        skipWs();
        if (pos != s.size())
            return fail("trailing characters after document");
        return true;
    }

  private:
    bool
    fail(const std::string &what)
    {
        *err = what + " at offset " + std::to_string(pos);
        return false;
    }

    void
    skipWs()
    {
        while (pos < s.size() &&
               (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\n' ||
                s[pos] == '\r')) {
            ++pos;
        }
    }

    bool
    literal(const char *word, std::size_t len)
    {
        if (s.compare(pos, len, word) != 0)
            return fail(std::string("bad literal, expected ") + word);
        pos += len;
        return true;
    }

    bool
    value(JsonValue &out)
    {
        skipWs();
        if (pos >= s.size())
            return fail("unexpected end of input");
        switch (s[pos]) {
          case '{': return object(out);
          case '[': return array(out);
          case '"':
            out._kind = JsonValue::Kind::String;
            return string(out._string);
          case 't':
            out._kind = JsonValue::Kind::Bool;
            out._bool = true;
            return literal("true", 4);
          case 'f':
            out._kind = JsonValue::Kind::Bool;
            out._bool = false;
            return literal("false", 5);
          case 'n':
            out._kind = JsonValue::Kind::Null;
            return literal("null", 4);
          default:
            return number(out);
        }
    }

    bool
    object(JsonValue &out)
    {
        out._kind = JsonValue::Kind::Object;
        ++pos;              // '{'
        skipWs();
        if (pos < s.size() && s[pos] == '}') {
            ++pos;
            return true;
        }
        while (true) {
            skipWs();
            if (pos >= s.size() || s[pos] != '"')
                return fail("expected object key");
            std::string key;
            if (!string(key))
                return false;
            skipWs();
            if (pos >= s.size() || s[pos] != ':')
                return fail("expected ':' after key");
            ++pos;
            JsonValue member;
            if (!value(member))
                return false;
            out._members.emplace_back(std::move(key), std::move(member));
            skipWs();
            if (pos >= s.size())
                return fail("unterminated object");
            if (s[pos] == ',') {
                ++pos;
                continue;
            }
            if (s[pos] == '}') {
                ++pos;
                return true;
            }
            return fail("expected ',' or '}' in object");
        }
    }

    bool
    array(JsonValue &out)
    {
        out._kind = JsonValue::Kind::Array;
        ++pos;              // '['
        skipWs();
        if (pos < s.size() && s[pos] == ']') {
            ++pos;
            return true;
        }
        while (true) {
            JsonValue elem;
            if (!value(elem))
                return false;
            out._array.push_back(std::move(elem));
            skipWs();
            if (pos >= s.size())
                return fail("unterminated array");
            if (s[pos] == ',') {
                ++pos;
                continue;
            }
            if (s[pos] == ']') {
                ++pos;
                return true;
            }
            return fail("expected ',' or ']' in array");
        }
    }

    bool
    string(std::string &out)
    {
        ++pos;              // opening quote
        out.clear();
        while (pos < s.size()) {
            const char c = s[pos];
            if (c == '"') {
                ++pos;
                return true;
            }
            if (c == '\\') {
                if (pos + 1 >= s.size())
                    return fail("unterminated escape");
                const char e = s[pos + 1];
                pos += 2;
                switch (e) {
                  case '"':  out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/':  out += '/'; break;
                  case 'b':  out += '\b'; break;
                  case 'f':  out += '\f'; break;
                  case 'n':  out += '\n'; break;
                  case 'r':  out += '\r'; break;
                  case 't':  out += '\t'; break;
                  case 'u': {
                    if (pos + 4 > s.size())
                        return fail("short \\u escape");
                    const unsigned long cp =
                        std::strtoul(s.substr(pos, 4).c_str(), nullptr,
                                     16);
                    pos += 4;
                    // Only the BMP subset rmtsim itself emits (control
                    // characters); encode as UTF-8 for completeness.
                    if (cp < 0x80) {
                        out += static_cast<char>(cp);
                    } else if (cp < 0x800) {
                        out += static_cast<char>(0xc0 | (cp >> 6));
                        out += static_cast<char>(0x80 | (cp & 0x3f));
                    } else {
                        out += static_cast<char>(0xe0 | (cp >> 12));
                        out += static_cast<char>(0x80 |
                                                 ((cp >> 6) & 0x3f));
                        out += static_cast<char>(0x80 | (cp & 0x3f));
                    }
                    break;
                  }
                  default:
                    return fail("unknown escape");
                }
                continue;
            }
            out += c;
            ++pos;
        }
        return fail("unterminated string");
    }

    bool
    number(JsonValue &out)
    {
        const char *start = s.c_str() + pos;
        char *end = nullptr;
        const double v = std::strtod(start, &end);
        if (end == start)
            return fail("expected a value");
        out._kind = JsonValue::Kind::Number;
        out._number = v;
        pos += static_cast<std::size_t>(end - start);
        return true;
    }

    const std::string &s;
    std::size_t pos = 0;
    std::string *err = nullptr;
};

bool
parseJson(const std::string &text, JsonValue &out, std::string &error)
{
    JsonParser parser(text);
    return parser.parse(out, error);
}

bool
parseJson(const std::string &text, JsonValue &out)
{
    std::string error;
    return parseJson(text, out, error);
}

} // namespace rmt
