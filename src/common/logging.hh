/**
 * @file
 * Error and status reporting, following the gem5 fatal/panic distinction:
 * panic() for internal simulator bugs (aborts), fatal() for user/config
 * errors (clean exit), warn()/inform() for status.
 */

#ifndef RMTSIM_COMMON_LOGGING_HH
#define RMTSIM_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace rmt
{

/** Report an internal simulator bug and abort (never returns). */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report an unrecoverable user/configuration error and exit(1). */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a suspicious-but-survivable condition to stderr. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report normal operating status to stderr. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Enable/disable inform() output (benches silence it). */
void setInformEnabled(bool enabled);

} // namespace rmt

#endif // RMTSIM_COMMON_LOGGING_HH
