/**
 * @file
 * Deterministic, seedable pseudo-random number generator.
 *
 * Every stochastic component (workload data initialisation, fault
 * injection schedules) owns its own Random instance so simulations are
 * bit-reproducible regardless of module evaluation order. xoshiro256**.
 */

#ifndef RMTSIM_COMMON_RANDOM_HH
#define RMTSIM_COMMON_RANDOM_HH

#include <cstdint>

namespace rmt
{

class Random
{
  public:
    explicit Random(std::uint64_t seed = 0x9E3779B97F4A7C15ull)
    {
        // splitmix64 seeding so nearby seeds give independent streams.
        std::uint64_t x = seed;
        for (auto &word : state) {
            x += 0x9E3779B97F4A7C15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
            z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
        const std::uint64_t t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound); bound must be non-zero. */
    std::uint64_t
    range(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform double in [0, 1). */
    double
    real()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability @p p. */
    bool chance(double p) { return real() < p; }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state[4];
};

} // namespace rmt

#endif // RMTSIM_COMMON_RANDOM_HH
