/**
 * @file
 * Fundamental scalar types shared by every rmtsim module.
 */

#ifndef RMTSIM_COMMON_TYPES_HH
#define RMTSIM_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace rmt
{

/** A byte address in a thread's (flat, per-logical-thread) address space. */
using Addr = std::uint64_t;

/** Simulated clock cycle count. */
using Cycle = std::uint64_t;

/** Hardware thread context id within one core (0..3). */
using ThreadId = std::uint8_t;

/** Logical thread (application program) id within one simulation. */
using LogicalId = std::uint8_t;

/** Core index within a chip. */
using CoreId = std::uint8_t;

/** Per-thread dynamic instruction sequence number (program order). */
using InstSeq = std::uint64_t;

/** Architectural register index (0..63: 0-31 int, 32-63 fp). */
using RegIndex = std::uint8_t;

/** Physical register index into the unified 512-entry file. */
using PhysRegIndex = std::uint16_t;

/** Sentinel for "no physical register". */
constexpr PhysRegIndex invalidPhysReg =
    std::numeric_limits<PhysRegIndex>::max();

/** Sentinel for "no thread". */
constexpr ThreadId invalidThread = std::numeric_limits<ThreadId>::max();

/** Number of architectural integer registers per thread. */
constexpr unsigned numIntArchRegs = 32;
/** Number of architectural floating-point registers per thread. */
constexpr unsigned numFpArchRegs = 32;
/** Total architectural registers per thread (paper: 64 per thread). */
constexpr unsigned numArchRegs = numIntArchRegs + numFpArchRegs;

/** Instructions per fetch chunk (paper: 8-instruction chunks). */
constexpr unsigned chunkSize = 8;

/** Bytes per instruction in the rmtsim ISA. */
constexpr unsigned instBytes = 4;

} // namespace rmt

#endif // RMTSIM_COMMON_TYPES_HH
