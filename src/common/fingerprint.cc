#include "common/fingerprint.hh"

#include <cinttypes>
#include <cstdio>

namespace rmt
{

std::uint64_t
fnv1a64(const void *data, std::size_t len, std::uint64_t h)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    for (std::size_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

void
fnv1a64Field(std::uint64_t &h, const std::string &s)
{
    h = fnv1a64(s.data(), s.size(), h);
    const char sep = '\x1f';
    h = fnv1a64(&sep, 1, h);
}

std::string
fingerprintHex(std::uint64_t v)
{
    char buf[20];
    std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
    return buf;
}

} // namespace rmt
