#include "common/stats.hh"

#include <algorithm>
#include <iomanip>

#include "common/json.hh"

namespace rmt
{

StatBase::StatBase(StatGroup &group, std::string name, std::string desc)
    : _group(&group), _name(std::move(name)), _desc(std::move(desc))
{
    group.stats.push_back(this);
}

StatBase::~StatBase()
{
    if (!_group)
        return;
    auto &v = _group->stats;
    v.erase(std::remove(v.begin(), v.end(), this), v.end());
}

void
StatBase::json(std::ostream &os) const
{
    os << "{\"name\":\"" << jsonEscape(_name) << "\""
       << ",\"desc\":\"" << jsonEscape(_desc) << "\""
       << ",\"kind\":\"" << kind() << "\",";
    jsonFields(os);
    os << "}";
}

void
Counter::print(std::ostream &os) const
{
    os << _value;
}

void
Counter::jsonFields(std::ostream &os) const
{
    os << "\"value\":" << _value;
}

void
Average::print(std::ostream &os) const
{
    os << mean() << " (" << _count << " samples)";
}

void
Average::jsonFields(std::ostream &os) const
{
    os << "\"count\":" << _count
       << ",\"sum\":" << jsonNum(_sum)
       << ",\"mean\":" << jsonNum(mean());
}

Histogram::Histogram(StatGroup &group, std::string name, std::string desc,
                     unsigned num_buckets, double bucket_width)
    : StatBase(group, std::move(name), std::move(desc)),
      buckets(num_buckets, 0), width(bucket_width)
{
}

void
Histogram::sample(double v)
{
    sum += v;
    ++count;
    auto idx = static_cast<std::uint64_t>(v / width);
    if (idx < buckets.size())
        ++buckets[idx];
    else
        ++overflow;
}

void
Histogram::print(std::ostream &os) const
{
    os << "mean=" << mean() << " n=" << count;
    os << " [";
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        if (i)
            os << ' ';
        os << buckets[i];
    }
    os << " | " << overflow << "]";
}

void
Histogram::jsonFields(std::ostream &os) const
{
    os << "\"count\":" << count
       << ",\"sum\":" << jsonNum(sum)
       << ",\"mean\":" << jsonNum(mean())
       << ",\"bucket_width\":" << jsonNum(width)
       << ",\"buckets\":[";
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        if (i)
            os << ",";
        os << buckets[i];
    }
    os << "],\"overflow\":" << overflow;
}

void
Histogram::restore(const std::vector<std::uint64_t> &bucket_counts,
                   std::uint64_t overflow_count, std::uint64_t samples,
                   double total)
{
    if (bucket_counts.size() != buckets.size())
        return;     // layout mismatch: caller validates bucket count
    buckets = bucket_counts;
    overflow = overflow_count;
    count = samples;
    sum = total;
}

void
Histogram::reset()
{
    for (auto &b : buckets)
        b = 0;
    overflow = 0;
    count = 0;
    sum = 0;
}

StatGroup::StatGroup(std::string name) : _name(std::move(name))
{
    StatRegistry::instance().add(this);
}

StatGroup::~StatGroup()
{
    StatRegistry::instance().remove(this);
    // Detach surviving stats (owner declared them before the group, or
    // holds them by unique_ptr destroyed later): their destructors
    // must not touch this group's freed vector.
    for (StatBase *stat : stats)
        stat->_group = nullptr;
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto *stat : stats) {
        os << std::left << std::setw(40) << (_name + "." + stat->name())
           << ' ';
        stat->print(os);
        os << "  # " << stat->desc() << '\n';
    }
}

void
StatGroup::json(std::ostream &os) const
{
    os << "{";
    jsonMembers(os);
    os << "}";
}

void
StatGroup::jsonMembers(std::ostream &os) const
{
    os << "\"name\":\"" << jsonEscape(_name) << "\",\"stats\":[";
    for (std::size_t i = 0; i < stats.size(); ++i) {
        if (i)
            os << ",";
        stats[i]->json(os);
    }
    os << "]";
}

void
StatGroup::resetAll()
{
    for (auto *stat : stats)
        stat->reset();
}

StatRegistry &
StatRegistry::instance()
{
    static StatRegistry registry;
    return registry;
}

std::size_t
StatRegistry::liveGroups() const
{
    std::lock_guard<std::mutex> lock(mu);
    return groups.size();
}

void
StatRegistry::add(StatGroup *group)
{
    std::lock_guard<std::mutex> lock(mu);
    groups.push_back(group);
}

void
StatRegistry::remove(StatGroup *group)
{
    std::lock_guard<std::mutex> lock(mu);
    groups.erase(std::remove(groups.begin(), groups.end(), group),
                 groups.end());
}

} // namespace rmt
