#include "common/stats.hh"

#include <iomanip>

namespace rmt
{

StatBase::StatBase(StatGroup &group, std::string name, std::string desc)
    : _name(std::move(name)), _desc(std::move(desc))
{
    group.stats.push_back(this);
}

void
Counter::print(std::ostream &os) const
{
    os << _value;
}

void
Average::print(std::ostream &os) const
{
    os << mean() << " (" << _count << " samples)";
}

Histogram::Histogram(StatGroup &group, std::string name, std::string desc,
                     unsigned num_buckets, double bucket_width)
    : StatBase(group, std::move(name), std::move(desc)),
      buckets(num_buckets, 0), width(bucket_width)
{
}

void
Histogram::sample(double v)
{
    sum += v;
    ++count;
    auto idx = static_cast<std::uint64_t>(v / width);
    if (idx < buckets.size())
        ++buckets[idx];
    else
        ++overflow;
}

void
Histogram::print(std::ostream &os) const
{
    os << "mean=" << mean() << " n=" << count;
    os << " [";
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        if (i)
            os << ' ';
        os << buckets[i];
    }
    os << " | " << overflow << "]";
}

void
Histogram::reset()
{
    for (auto &b : buckets)
        b = 0;
    overflow = 0;
    count = 0;
    sum = 0;
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto *stat : stats) {
        os << std::left << std::setw(40) << (_name + "." + stat->name())
           << ' ';
        stat->print(os);
        os << "  # " << stat->desc() << '\n';
    }
}

void
StatGroup::resetAll()
{
    for (auto *stat : stats)
        stat->reset();
}

} // namespace rmt
