/**
 * @file
 * Lightweight statistics package: named scalar counters, averages, and
 * histograms grouped per component, dumpable as aligned text or as a
 * machine-readable JSON tree.
 *
 * Components own a StatGroup; stats register themselves on construction
 * and unregister on destruction, so a dump walks every live stat
 * deterministically (registration order) and a stat destroyed before
 * its group never leaves a dangling pointer behind.
 *
 * Every live StatGroup also registers with the process-wide
 * StatRegistry, which is what the observability layer walks to
 * serialize a complete stats tree (src/obs/stats_json.*).
 */

#ifndef RMTSIM_COMMON_STATS_HH
#define RMTSIM_COMMON_STATS_HH

#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace rmt
{

class StatGroup;

/** Base class for a single named statistic. */
class StatBase
{
  public:
    StatBase(StatGroup &group, std::string name, std::string desc);
    virtual ~StatBase();

    StatBase(const StatBase &) = delete;
    StatBase &operator=(const StatBase &) = delete;

    const std::string &name() const { return _name; }
    const std::string &desc() const { return _desc; }

    /** Kind tag serialized into the JSON dump ("counter", ...). */
    virtual const char *kind() const = 0;

    /** Print "value-part" (no name) into @p os. */
    virtual void print(std::ostream &os) const = 0;

    /** Append the kind-specific JSON fields (no braces, no name) into
     *  @p os, e.g. `"value":42`. */
    virtual void jsonFields(std::ostream &os) const = 0;

    /** Full JSON object for this stat: name, desc, kind, values. */
    void json(std::ostream &os) const;

    /** Zero the statistic. */
    virtual void reset() = 0;

  private:
    friend class StatGroup;
    StatGroup *_group;          ///< nulled if the group dies first
    std::string _name;
    std::string _desc;
};

/** Monotonic (or at least scalar) counter. */
class Counter : public StatBase
{
  public:
    using StatBase::StatBase;

    Counter &operator++() { ++_value; return *this; }
    Counter &operator+=(std::uint64_t v) { _value += v; return *this; }
    void set(std::uint64_t v) { _value = v; }
    std::uint64_t value() const { return _value; }

    const char *kind() const override { return "counter"; }
    void print(std::ostream &os) const override;
    void jsonFields(std::ostream &os) const override;
    void reset() override { _value = 0; }

  private:
    std::uint64_t _value = 0;
};

/** Running mean (sample count + sum). */
class Average : public StatBase
{
  public:
    using StatBase::StatBase;

    void
    sample(double v)
    {
        _sum += v;
        ++_count;
    }

    double mean() const { return _count ? _sum / _count : 0.0; }
    double sum() const { return _sum; }
    std::uint64_t samples() const { return _count; }

    /** Overwrite the accumulated state (checkpoint restore). */
    void
    restore(double sum, std::uint64_t count)
    {
        _sum = sum;
        _count = count;
    }

    const char *kind() const override { return "average"; }
    void print(std::ostream &os) const override;
    void jsonFields(std::ostream &os) const override;
    void reset() override { _sum = 0; _count = 0; }

  private:
    double _sum = 0;
    std::uint64_t _count = 0;
};

/** Fixed-bucket histogram over [0, max) with an overflow bucket. */
class Histogram : public StatBase
{
  public:
    Histogram(StatGroup &group, std::string name, std::string desc,
              unsigned num_buckets, double bucket_width);

    void sample(double v);
    std::uint64_t bucketCount(unsigned i) const { return buckets.at(i); }
    unsigned numBuckets() const
    {
        return static_cast<unsigned>(buckets.size());
    }
    double bucketWidth() const { return width; }
    std::uint64_t overflowCount() const { return overflow; }
    std::uint64_t samples() const { return count; }
    double mean() const { return count ? sum / count : 0.0; }
    double total() const { return sum; }

    /** Overwrite the accumulated state (checkpoint restore).  The
     *  bucket layout is fixed at construction; @p bucket_counts must
     *  match numBuckets(). */
    void restore(const std::vector<std::uint64_t> &bucket_counts,
                 std::uint64_t overflow_count, std::uint64_t samples,
                 double total);

    const char *kind() const override { return "histogram"; }
    void print(std::ostream &os) const override;
    void jsonFields(std::ostream &os) const override;
    void reset() override;

  private:
    std::vector<std::uint64_t> buckets;
    std::uint64_t overflow = 0;
    std::uint64_t count = 0;
    double sum = 0;
    double width;
};

/**
 * A named collection of statistics belonging to one component instance.
 *
 * Lifetime: stats register in their constructor and unregister in
 * their destructor.  If the group itself is destroyed first, it
 * detaches its surviving stats so their destructors are no-ops.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name);
    ~StatGroup();

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    const std::string &name() const { return _name; }

    /** Live stats in registration order. */
    const std::vector<StatBase *> &statList() const { return stats; }

    /** Dump "group.stat value # desc" lines. */
    void dump(std::ostream &os) const;
    /** Serialize as `{"name":...,"stats":[...]}` into @p os. */
    void json(std::ostream &os) const;
    /** The members of json() without the braces, for callers that
     *  splice extra fields into the same object. */
    void jsonMembers(std::ostream &os) const;
    /** Reset every stat in the group. */
    void resetAll();

  private:
    friend class StatBase;
    std::string _name;
    std::vector<StatBase *> stats;
};

/**
 * Process-wide registry of live StatGroups.
 *
 * Groups self-register on construction and unregister on destruction;
 * both paths are mutex-protected because campaign workers construct
 * and tear down whole Simulations concurrently.  forEach() holds the
 * lock across the walk, so the group list is stable during a dump —
 * but the *values* of stats owned by another thread's running
 * simulation may still be mid-update.  Whole-registry serialization
 * is therefore meant for quiescent points (end of a single run); a
 * concurrent campaign serializes per-simulation via the chip walk
 * instead (obs/stats_json.hh).
 */
class StatRegistry
{
  public:
    static StatRegistry &instance();

    /** Number of currently live groups. */
    std::size_t liveGroups() const;

    /** Visit every live group under the registry lock. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        std::lock_guard<std::mutex> lock(mu);
        for (StatGroup *g : groups)
            fn(*g);
    }

  private:
    friend class StatGroup;
    void add(StatGroup *group);
    void remove(StatGroup *group);

    mutable std::mutex mu;
    std::vector<StatGroup *> groups;
};

} // namespace rmt

#endif // RMTSIM_COMMON_STATS_HH
