/**
 * @file
 * Lightweight statistics package: named scalar counters, averages, and
 * histograms grouped per component, dumpable as aligned text.
 *
 * Components own a StatGroup; stats register themselves on construction
 * so a dump walks every live group deterministically (registration
 * order).
 */

#ifndef RMTSIM_COMMON_STATS_HH
#define RMTSIM_COMMON_STATS_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace rmt
{

class StatGroup;

/** Base class for a single named statistic. */
class StatBase
{
  public:
    StatBase(StatGroup &group, std::string name, std::string desc);
    virtual ~StatBase() = default;

    StatBase(const StatBase &) = delete;
    StatBase &operator=(const StatBase &) = delete;

    const std::string &name() const { return _name; }
    const std::string &desc() const { return _desc; }

    /** Print "value-part" (no name) into @p os. */
    virtual void print(std::ostream &os) const = 0;
    /** Zero the statistic. */
    virtual void reset() = 0;

  private:
    std::string _name;
    std::string _desc;
};

/** Monotonic (or at least scalar) counter. */
class Counter : public StatBase
{
  public:
    using StatBase::StatBase;

    Counter &operator++() { ++_value; return *this; }
    Counter &operator+=(std::uint64_t v) { _value += v; return *this; }
    void set(std::uint64_t v) { _value = v; }
    std::uint64_t value() const { return _value; }

    void print(std::ostream &os) const override;
    void reset() override { _value = 0; }

  private:
    std::uint64_t _value = 0;
};

/** Running mean (sample count + sum). */
class Average : public StatBase
{
  public:
    using StatBase::StatBase;

    void
    sample(double v)
    {
        _sum += v;
        ++_count;
    }

    double mean() const { return _count ? _sum / _count : 0.0; }
    std::uint64_t samples() const { return _count; }

    void print(std::ostream &os) const override;
    void reset() override { _sum = 0; _count = 0; }

  private:
    double _sum = 0;
    std::uint64_t _count = 0;
};

/** Fixed-bucket histogram over [0, max) with an overflow bucket. */
class Histogram : public StatBase
{
  public:
    Histogram(StatGroup &group, std::string name, std::string desc,
              unsigned num_buckets, double bucket_width);

    void sample(double v);
    std::uint64_t bucketCount(unsigned i) const { return buckets.at(i); }
    std::uint64_t overflowCount() const { return overflow; }
    std::uint64_t samples() const { return count; }
    double mean() const { return count ? sum / count : 0.0; }

    void print(std::ostream &os) const override;
    void reset() override;

  private:
    std::vector<std::uint64_t> buckets;
    std::uint64_t overflow = 0;
    std::uint64_t count = 0;
    double sum = 0;
    double width;
};

/**
 * A named collection of statistics belonging to one component instance.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : _name(std::move(name)) {}

    const std::string &name() const { return _name; }

    /** Dump "group.stat value # desc" lines. */
    void dump(std::ostream &os) const;
    /** Reset every stat in the group. */
    void resetAll();

  private:
    friend class StatBase;
    std::string _name;
    std::vector<StatBase *> stats;
};

} // namespace rmt

#endif // RMTSIM_COMMON_STATS_HH
