#include "workloads/workloads.hh"

#include <bit>
#include <cstring>

#include "common/logging.hh"
#include "common/random.hh"

namespace rmt
{

namespace
{

// Register conventions used by the kernels below.
constexpr RegIndex r0 = intReg(0);
constexpr RegIndex r1 = intReg(1);
constexpr RegIndex r2 = intReg(2);
constexpr RegIndex r3 = intReg(3);
constexpr RegIndex r4 = intReg(4);
constexpr RegIndex r5 = intReg(5);
constexpr RegIndex r6 = intReg(6);
constexpr RegIndex r7 = intReg(7);
constexpr RegIndex r8 = intReg(8);
constexpr RegIndex r9 = intReg(9);
constexpr RegIndex r10 = intReg(10);
constexpr RegIndex r11 = intReg(11);
constexpr RegIndex r12 = intReg(12);
constexpr RegIndex r13 = intReg(13);
constexpr RegIndex r14 = intReg(14);
constexpr RegIndex f0 = fpReg(0);
constexpr RegIndex f1 = fpReg(1);
constexpr RegIndex f2 = fpReg(2);
constexpr RegIndex f3 = fpReg(3);
constexpr RegIndex f4 = fpReg(4);
constexpr RegIndex f5 = fpReg(5);
constexpr RegIndex f6 = fpReg(6);
constexpr RegIndex f7 = fpReg(7);

void
fillRandomBytes(DataMemory &mem, Addr base, std::size_t len,
                std::uint64_t seed)
{
    Random rng(seed);
    for (std::size_t i = 0; i < len; i += 8)
        mem.write(base + i, 8, rng.next());
}

void
fillRandomDoubles(DataMemory &mem, Addr base, std::size_t count,
                  std::uint64_t seed)
{
    Random rng(seed);
    for (std::size_t i = 0; i < count; ++i) {
        const double v = rng.real() * 2.0 - 1.0;
        mem.write(base + i * 8, 8, std::bit_cast<std::uint64_t>(v));
    }
}

/** Random permutation cycle of quadword indices in [0, count):
 *  mem[base + 8*i] holds the byte offset of the next element, forming
 *  one big pointer-chasing cycle. */
void
fillPointerChain(DataMemory &mem, Addr base, std::size_t count,
                 std::uint64_t seed)
{
    Random rng(seed);
    std::vector<std::uint64_t> perm(count);
    for (std::size_t i = 0; i < count; ++i)
        perm[i] = i;
    for (std::size_t i = count - 1; i > 0; --i)
        std::swap(perm[i], perm[rng.range(i + 1)]);
    for (std::size_t i = 0; i < count; ++i) {
        const std::uint64_t from = perm[i];
        const std::uint64_t to = perm[(i + 1) % count];
        mem.write(base + from * 8, 8, base + to * 8);
    }
}

// ---------------------------------------------------------------------
// Integer benchmarks
// ---------------------------------------------------------------------

/** gcc: pointer chasing through an L2-resident node graph with a hash
 *  probe and data-dependent branches per node. */
Workload
makeGcc()
{
    constexpr Addr chain = 0x10000;
    constexpr std::size_t nodes = 512;              // 4 KB chain
    constexpr Addr table = 0x200000;
    constexpr std::size_t table_bytes = 8 * 1024;

    ProgramBuilder b("gcc");
    b.li(r1, chain);                 // chase stream A
    b.li(r9, chain + 8 * (nodes / 2));   // chase stream B
    b.li(r10, table);
    b.li(r11, 0);                    // accumulator A
    b.li(r14, 0);                    // accumulator B
    b.label("loop");
    b.ldq(r1, r1, 0);                // chase A
    b.ldq(r9, r9, 0);                // chase B (independent)
    b.andi(r2, r1, table_bytes - 8); // hash probe A
    b.add(r3, r10, r2);
    b.ldq(r4, r3, 0);
    b.xor_(r11, r11, r4);
    b.andi(r13, r9, table_bytes - 8);
    b.add(r13, r10, r13);
    b.ldq(r12, r13, 0);
    b.xor_(r14, r14, r12);
    b.andi(r5, r4, 7);               // data-dependent branch (1/8)
    b.bne(r5, r0, "skip");
    b.addi(r11, r11, 3);
    b.label("skip");
    b.stq(r11, r3, 0);               // symbol-table update
    b.andi(r6, r14, 15);
    b.beq(r6, r0, "rare");           // biased 1/16
    b.br("loop");
    b.label("rare");
    b.stq(r14, r10, 8);
    b.br("loop");

    Workload w;
    w.name = "gcc";
    w.program = b.build();
    w.init_memory = [](DataMemory &mem) {
        fillPointerChain(mem, chain, nodes, 0xA11CE);
        fillRandomBytes(mem, table, table_bytes, 0xB0B);
    };
    return w;
}

/** go: board scans with near-random branch outcomes (the paper's most
 *  misprediction-bound benchmark). */
Workload
makeGo()
{
    constexpr Addr board = 0x10000;
    constexpr std::size_t cells = 2 * 1024;     // 16 KB of "positions"

    ProgramBuilder b("go");
    b.li(r1, board);
    b.li(r2, 0);            // index stream A
    b.li(r3, cells / 2);    // index stream B
    b.li(r11, 0);           // score A
    b.li(r12, 0);           // score B
    b.label("loop");
    // Stream A.
    b.slli(r4, r2, 3);
    b.add(r4, r1, r4);
    b.ldq(r5, r4, 0);
    b.andi(r6, r5, 1);      // ~50/50 decision
    b.beq(r6, r0, "a1");
    b.addi(r11, r11, 1);
    b.br("a2");
    b.label("a1");
    b.xori(r11, r11, 0x55);
    b.label("a2");
    b.andi(r7, r5, 7);
    b.beq(r7, r0, "a3");    // biased 1/8: occasional store
    b.br("a4");
    b.label("a3");
    b.stq(r11, r4, 0);
    b.label("a4");
    b.srli(r2, r5, 13);
    b.xor_(r2, r2, r13);            // fold in a counter: no short cycles
    b.addi(r13, r13, 1);
    b.andi(r2, r2, cells - 1);
    // Stream B (independent work).
    b.slli(r8, r3, 3);
    b.add(r8, r1, r8);
    b.ldq(r9, r8, 0);
    b.andi(r10, r9, 1);
    b.beq(r10, r0, "b1x");
    b.addi(r12, r12, 2);
    b.br("b2x");
    b.label("b1x");
    b.xori(r12, r12, 0x3C);
    b.label("b2x");
    b.stq(r12, r8, 0);      // board update (go is ~8% stores)
    b.srli(r3, r9, 29);
    b.xor_(r3, r3, r13);
    b.andi(r3, r3, cells - 1);
    b.br("loop");

    Workload w;
    w.name = "go";
    w.program = b.build();
    w.init_memory = [](DataMemory &mem) {
        fillRandomBytes(mem, board, cells * 8, 0x60);
    };
    return w;
}

/** compress: byte-stream hashing with dense stores (LZW-flavoured). */
Workload
makeCompress()
{
    constexpr Addr input = 0x10000;
    constexpr std::size_t input_len = 32 * 1024;
    constexpr Addr htab = 0x80000;
    constexpr std::size_t htab_bytes = 16 * 1024;
    constexpr Addr output = 0x100000;

    ProgramBuilder b("compress");
    b.li(r1, input);
    b.li(r2, 0);                    // input index
    b.li(r3, htab);
    b.li(r4, output);
    b.li(r5, 0);                    // output index
    b.li(r11, 0);                   // running code
    b.label("loop");
    b.add(r6, r1, r2);
    b.ldb(r7, r6, 0);               // next byte
    b.slli(r8, r11, 5);
    b.xor_(r8, r8, r7);             // hash = code<<5 ^ byte
    b.andi(r8, r8, htab_bytes - 8);
    b.add(r9, r3, r8);
    b.ldq(r10, r9, 0);              // probe
    b.cmpeq(r12, r10, r11);
    b.bne(r12, r0, "hit");
    b.stq(r11, r9, 0);              // install new code (store)
    b.add(r13, r4, r5);
    b.stb(r7, r13, 0);              // emit literal (store)
    b.addi(r5, r5, 1);
    b.andi(r5, r5, 0xFFFF);
    b.label("hit");
    b.add(r11, r8, r7);
    b.addi(r2, r2, 1);
    b.andi(r2, r2, input_len - 1);
    b.br("loop");

    Workload w;
    w.name = "compress";
    w.program = b.build();
    w.init_memory = [](DataMemory &mem) {
        fillRandomBytes(mem, input, input_len, 0xC0);
    };
    return w;
}

/** ijpeg: 8x8 integer transform blocks — regular, multiply-rich, very
 *  predictable branches. */
Workload
makeIjpeg()
{
    constexpr Addr image = 0x10000;
    constexpr std::size_t image_bytes = 8 * 1024;

    ProgramBuilder b("ijpeg");
    b.li(r1, image);
    b.li(r2, 0);                    // block offset
    b.label("block");
    b.li(r3, 0);                    // i
    b.label("row");
    b.add(r4, r1, r2);
    b.slli(r5, r3, 3);
    b.add(r4, r4, r5);
    b.ldq(r6, r4, 0);
    b.ldq(r7, r4, 8);
    b.ldq(r8, r4, 16);
    b.ldq(r9, r4, 24);
    b.muli(r6, r6, 181);            // butterfly-ish integer math
    b.muli(r7, r7, 59);
    b.add(r10, r6, r7);
    b.sub(r11, r8, r9);
    b.muli(r11, r11, 49);
    b.add(r12, r10, r11);
    b.srli(r12, r12, 8);
    b.stq(r12, r4, 0);
    b.addi(r3, r3, 1);
    b.slti(r13, r3, 8);
    b.bne(r13, r0, "row");
    b.addi(r2, r2, 64);
    b.andi(r2, r2, image_bytes - 64);
    b.br("block");

    Workload w;
    w.name = "ijpeg";
    w.program = b.build();
    w.init_memory = [](DataMemory &mem) {
        fillRandomBytes(mem, image, image_bytes, 0x1C);
    };
    return w;
}

/** li: cons-cell list interpreter — short pointer chains, call/ret. */
Workload
makeLi()
{
    constexpr Addr heap = 0x10000;
    constexpr std::size_t cells = 2 * 1024;     // 16-byte cons cells

    ProgramBuilder b("li");
    b.li(spReg, 0x8000);            // small stack for call/ret
    b.li(r1, heap);
    b.li(r2, 0);                    // cell index
    b.li(r11, 0);
    b.label("loop");
    b.slli(r3, r2, 4);
    b.add(r3, r1, r3);              // &cell
    b.call("sumlist");
    b.add(r11, r11, r4);
    b.stq(r11, r3, 8);              // update cdr-side value
    b.addi(r2, r2, 7);              // stride through the heap
    b.andi(r2, r2, cells - 1);
    b.br("loop");

    // sumlist(r3=cell) -> r4: walk up to 8 cars.
    b.label("sumlist");
    b.li(r4, 0);
    b.li(r5, 8);
    b.mov(r6, r3);
    b.label("walk");
    b.ldq(r7, r6, 0);               // car: next pointer
    b.ldq(r8, r6, 8);               // value
    b.add(r4, r4, r8);
    b.mov(r6, r7);
    b.addi(r5, r5, -1);
    b.bne(r5, r0, "walk");
    b.ret();

    Workload w;
    w.name = "li";
    w.program = b.build();
    w.init_memory = [](DataMemory &mem) {
        Random rng(0x11);
        for (std::size_t i = 0; i < cells; ++i) {
            const Addr cell = heap + i * 16;
            const std::uint64_t next = heap + rng.range(cells) * 16;
            mem.write(cell, 8, next);
            mem.write(cell + 8, 8, rng.next() & 0xFFFF);
        }
    };
    return w;
}

/** m88ksim: CPU-simulator dispatch loop — fetch "guest instructions",
 *  decode via a branch tree, update a guest register file. */
Workload
makeM88ksim()
{
    constexpr Addr gmem = 0x10000;
    constexpr std::size_t ginsts = 4 * 1024;
    constexpr Addr gregs = 0x90000;     // 32 guest registers

    ProgramBuilder b("m88ksim");
    b.li(r1, gmem);
    b.li(r2, 0);                    // guest pc
    b.li(r3, gregs);
    b.label("loop");
    b.slli(r4, r2, 3);
    b.add(r4, r1, r4);
    b.ldq(r5, r4, 0);               // guest instruction word
    b.andi(r6, r5, 3);              // "opcode"
    b.srli(r7, r5, 2);
    b.andi(r7, r7, 31 * 8);         // dest reg offset
    b.add(r7, r3, r7);
    b.slti(r8, r6, 2);
    b.bne(r8, r0, "alu");
    b.slti(r9, r6, 3);
    b.bne(r9, r0, "ldst");
    // branch-type: redirect guest pc
    b.srli(r2, r5, 7);
    b.andi(r2, r2, ginsts - 1);
    b.br("loop");
    b.label("ldst");
    b.ldq(r10, r7, 0);
    b.xori(r10, r10, 0x3C);
    b.stq(r10, r7, 0);
    b.br("next");
    b.label("alu");
    b.ldq(r10, r7, 0);
    b.srli(r11, r5, 12);
    b.add(r10, r10, r11);
    b.stq(r10, r7, 0);
    b.label("next");
    b.addi(r2, r2, 1);
    b.andi(r2, r2, ginsts - 1);
    b.br("loop");

    Workload w;
    w.name = "m88ksim";
    w.program = b.build();
    w.init_memory = [](DataMemory &mem) {
        fillRandomBytes(mem, gmem, ginsts * 8, 0x88);
        fillRandomBytes(mem, gregs, 32 * 8, 0x89);
    };
    return w;
}

/** perl: string hashing over variable-length tokens with an
 *  associative-array update. */
Workload
makePerl()
{
    constexpr Addr text = 0x10000;
    constexpr std::size_t text_len = 32 * 1024;
    constexpr Addr assoc = 0x60000;
    constexpr std::size_t assoc_bytes = 16 * 1024;

    ProgramBuilder b("perl");
    b.li(r1, text);
    b.li(r2, 0);                    // cursor
    b.li(r3, assoc);
    b.label("token");
    b.li(r4, 5381);                 // djb2 seed
    b.li(r5, 0);                    // token length
    b.label("hashloop");
    b.add(r6, r1, r2);
    b.ldb(r7, r6, 0);
    b.muli(r4, r4, 33);
    b.add(r4, r4, r7);
    b.addi(r2, r2, 1);
    b.andi(r2, r2, text_len - 1);
    b.addi(r5, r5, 1);
    b.andi(r8, r7, 7);              // "whitespace" ends token, ~1/8
    b.bne(r8, r0, "hashloop");
    b.andi(r9, r4, assoc_bytes - 8);
    b.add(r9, r3, r9);
    b.ldq(r10, r9, 0);
    b.add(r10, r10, r5);
    b.stq(r10, r9, 0);
    b.br("token");

    Workload w;
    w.name = "perl";
    w.program = b.build();
    w.init_memory = [](DataMemory &mem) {
        fillRandomBytes(mem, text, text_len, 0x9E);
    };
    return w;
}

/** vortex: record store — lookup a record, then copy a burst of
 *  fields (store-dense, like the paper's store-pressure cases). */
Workload
makeVortex()
{
    constexpr Addr db = 0x100000;
    constexpr std::size_t records = 1024;       // 64-byte records
    constexpr Addr out = 0x300000;

    ProgramBuilder b("vortex");
    b.li(r1, db);
    b.li(r2, out);
    b.li(r13, 99991);
    b.label("loop");
    b.muli(r13, r13, 2862933555777941757);
    b.addi(r13, r13, 3037000493);
    b.srli(r3, r13, 40);
    b.andi(r3, r3, records - 1);
    b.slli(r3, r3, 6);
    b.add(r4, r1, r3);              // record
    b.add(r5, r2, r3);              // destination slot
    b.ldq(r6, r4, 0);
    b.ldq(r7, r4, 8);
    b.ldq(r8, r4, 16);
    b.ldq(r9, r4, 24);
    b.addi(r6, r6, 1);
    b.stq(r6, r5, 0);               // field-copy burst: 4 stores
    b.stq(r7, r5, 8);
    b.stq(r8, r5, 16);
    b.stq(r9, r5, 24);
    b.stq(r6, r4, 0);               // write-back updated field
    b.br("loop");

    Workload w;
    w.name = "vortex";
    w.program = b.build();
    w.init_memory = [](DataMemory &mem) {
        fillRandomBytes(mem, db, records * 64, 0xDB);
    };
    return w;
}

// ---------------------------------------------------------------------
// Floating-point benchmarks
// ---------------------------------------------------------------------

/** Common shape for FP loop nests: walk arrays of doubles applying a
 *  stencil/chain, parameterised by working-set size, chain depth, and
 *  stride, which is what differentiates the CFP95 codes for our
 *  purposes. */
Workload
makeFpStream(const std::string &name, std::size_t array_doubles,
             unsigned stride_doubles, unsigned chain_ops,
             bool with_divsqrt, std::uint64_t seed)
{
    constexpr Addr a_base = 0x100000;
    const Addr b_base = a_base + array_doubles * 8;

    ProgramBuilder b(name);
    b.li(r1, a_base);
    b.li(r2, static_cast<std::int64_t>(b_base));
    b.li(r3, 0);                        // element index
    b.li(r4, static_cast<std::int64_t>(array_doubles));
    b.label("loop");
    b.slli(r5, r3, 3);
    b.add(r6, r1, r5);
    b.add(r7, r2, r5);
    // Four-way unrolled stencil: independent lanes expose the ILP a
    // compiled CFP95 loop nest would (software-pipelined on Alpha).
    constexpr unsigned lanes = 4;
    for (unsigned lane = 0; lane < lanes; ++lane) {
        const auto off =
            static_cast<std::int64_t>(lane * stride_doubles * 8);
        const RegIndex a0 = fpReg(lane * 4 + 0);
        const RegIndex a1 = fpReg(lane * 4 + 1);
        const RegIndex b0 = fpReg(lane * 4 + 2);
        const RegIndex acc = fpReg(lane * 4 + 3);
        b.fld(a0, r6, off);
        b.fld(a1, r6, off + 8);
        b.fld(b0, r7, off);
        b.fadd(acc, a0, a1);
        b.fmul(acc, acc, b0);
        b.fst(acc, r7, off);
    }
    const RegIndex chain = fpReg(16);
    const RegIndex tmp1 = fpReg(17);
    const RegIndex tmp2 = fpReg(18);
    if (chain_ops)
        b.fadd(chain, f3, f0);      // seed: no loop-carried dependence
    for (unsigned i = 0; i < chain_ops; ++i) {
        // Dependent FP chain: fpppp-style latency-bound stretches.
        b.fmul(chain, chain, f3);
        b.fadd(chain, chain, f0);
    }
    if (with_divsqrt) {
        b.fdiv(tmp1, chain, f3);
        b.fsqrt(tmp2, tmp1);
        b.fadd(chain, chain, tmp2);
    }
    b.addi(r3, r3, lanes * stride_doubles);
    b.blt(r3, r4, "loop");
    b.li(r3, 0);
    b.br("loop");

    Workload w;
    w.name = name;
    w.program = b.build();
    w.mem_size = b_base + array_doubles * 8 + 4096;
    w.init_memory = [=](DataMemory &mem) {
        fillRandomDoubles(mem, a_base, array_doubles + 1, seed);
        fillRandomDoubles(mem, b_base, array_doubles + 1, seed ^ 0xF00);
    };
    return w;
}

/** wave5: particle push — indexed gather/scatter plus FP update. */
Workload
makeWave5()
{
    constexpr Addr idx = 0x100000;
    constexpr std::size_t particles = 4 * 1024;
    constexpr Addr field = 0x300000;
    constexpr std::size_t field_doubles = 8 * 1024;     // 64 KB

    ProgramBuilder b("wave5");
    b.li(r1, idx);
    b.li(r2, field);
    b.li(r3, 0);
    b.label("loop");
    b.slli(r4, r3, 3);
    b.add(r5, r1, r4);
    b.ldq(r6, r5, 0);               // particle cell index
    b.slli(r6, r6, 3);
    b.add(r7, r2, r6);
    b.fld(f0, r7, 0);               // gather
    b.fld(f1, r7, 8);
    b.fsub(f2, f1, f0);
    b.fmul(f3, f2, f2);
    b.fadd(f4, f0, f3);
    b.add(r9, r5, 0x40000);         // particle output slot
    b.fst(f4, r9, 0);               // scatter to particle state
    b.addi(r3, r3, 1);
    b.slti(r8, r3, particles);
    b.bne(r8, r0, "loop");
    b.li(r3, 0);
    b.br("loop");

    Workload w;
    w.name = "wave5";
    w.program = b.build();
    w.init_memory = [](DataMemory &mem) {
        Random rng(0x5A7E);
        for (std::size_t i = 0; i < particles; ++i)
            mem.write(idx + i * 8, 8, rng.range(field_doubles - 2));
        fillRandomDoubles(mem, field, field_doubles, 0x57);
    };
    return w;
}

} // namespace

const std::vector<std::string> &
spec95Names()
{
    static const std::vector<std::string> names = {
        "applu", "apsi", "compress", "fpppp", "gcc", "go", "hydro2d",
        "ijpeg", "li", "m88ksim", "mgrid", "perl", "su2cor", "swim",
        "tomcatv", "turb3d", "vortex", "wave5",
    };
    return names;
}

const std::vector<std::string> &
twoThreadMixBase()
{
    static const std::vector<std::string> names = {"gcc", "go", "fpppp",
                                                   "swim"};
    return names;
}

const std::vector<std::string> &
fourThreadMixBase()
{
    static const std::vector<std::string> names = {"gcc", "go", "ijpeg",
                                                   "fpppp", "swim"};
    return names;
}

Workload
buildWorkload(const std::string &name)
{
    // Integer codes.
    if (name == "gcc")
        return makeGcc();
    if (name == "go")
        return makeGo();
    if (name == "compress")
        return makeCompress();
    if (name == "ijpeg")
        return makeIjpeg();
    if (name == "li")
        return makeLi();
    if (name == "m88ksim")
        return makeM88ksim();
    if (name == "perl")
        return makePerl();
    if (name == "vortex")
        return makeVortex();

    // FP codes, differentiated by working set / chain depth / stride:
    //   fpppp  — cache-resident, deep dependent chains, div/sqrt
    //   swim   — 4 MB streaming (beyond L2 per-thread pressure)
    //   tomcatv— 2 MB streaming
    //   applu  — 512 KB, moderate chains
    //   apsi   — 256 KB with div/sqrt
    //   hydro2d— 1 MB stencil-ish stride 2
    //   mgrid  — 2 MB strided (stride 8: multigrid coarsening)
    //   su2cor — 512 KB stride 4
    //   turb3d — 1 MB power-of-two stride 16 (FFT-like)
    if (name == "fpppp")
        return makeFpStream("fpppp", 2 * 1024, 1, 4, true, 0xF9);
    if (name == "swim")
        return makeFpStream("swim", 6 * 1024, 1, 0, false, 0x51);
    if (name == "tomcatv")
        return makeFpStream("tomcatv", 4 * 1024, 1, 0, false, 0x70);
    if (name == "applu")
        return makeFpStream("applu", 2 * 1024, 1, 0, false, 0xAA);
    if (name == "apsi")
        return makeFpStream("apsi", 2 * 1024, 1, 1, true, 0xA5);
    if (name == "hydro2d")
        return makeFpStream("hydro2d", 4 * 1024, 2, 0, false, 0x42);
    if (name == "mgrid")
        return makeFpStream("mgrid", 4 * 1024, 8, 0, false, 0x36);
    if (name == "su2cor")
        return makeFpStream("su2cor", 2 * 1024, 4, 1, false, 0x52);
    if (name == "turb3d")
        return makeFpStream("turb3d", 4 * 1024, 16, 0, false, 0x3D);
    if (name == "wave5")
        return makeWave5();

    fatal("unknown workload '%s'", name.c_str());
}

std::vector<std::vector<std::string>>
twoProgramMixes()
{
    const auto &base = twoThreadMixBase();
    std::vector<std::vector<std::string>> mixes;
    for (std::size_t i = 0; i < base.size(); ++i) {
        for (std::size_t j = i + 1; j < base.size(); ++j)
            mixes.push_back({base[i], base[j]});
    }
    return mixes;   // C(4,2) = 6, as in the paper
}

std::vector<std::vector<std::string>>
fourProgramMixes()
{
    // The paper reports 15 four-program combinations drawn from
    // {gcc, go, ijpeg, fpppp, swim}.  We use the 5 all-distinct
    // 4-subsets plus the 10 pair-of-pairs multisets {a,a,b,b} —
    // 15 mixes total.
    const auto &base = fourThreadMixBase();
    std::vector<std::vector<std::string>> mixes;
    for (std::size_t skip = 0; skip < base.size(); ++skip) {
        std::vector<std::string> mix;
        for (std::size_t i = 0; i < base.size(); ++i) {
            if (i != skip)
                mix.push_back(base[i]);
        }
        mixes.push_back(mix);
    }
    for (std::size_t i = 0; i < base.size(); ++i) {
        for (std::size_t j = i + 1; j < base.size(); ++j)
            mixes.push_back({base[i], base[i], base[j], base[j]});
    }
    return mixes;
}

} // namespace rmt
