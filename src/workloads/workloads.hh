/**
 * @file
 * SPEC CPU95-like workload kernels (paper Section 6.2).
 *
 * The paper evaluates on the 18 SPEC CPU95 benchmarks.  Those binaries
 * (and an Alpha toolchain) are not available here, so each benchmark is
 * substituted by a hand-written kernel in the rmtsim ISA that lands in
 * the same behavioural regime as its namesake: branch-misprediction
 * rate, working-set size (L1-resident / L2-resident / streaming),
 * integer-vs-FP mix, store density, and pointer-chasing vs streaming
 * access patterns.  DESIGN.md Section 2 documents the substitution.
 *
 * All kernels loop forever; simulations run to a committed-instruction
 * budget.  Kernel memory images are deterministic (seeded per kernel).
 */

#ifndef RMTSIM_WORKLOADS_WORKLOADS_HH
#define RMTSIM_WORKLOADS_WORKLOADS_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "isa/program.hh"

namespace rmt
{

/** A ready-to-run benchmark: program text plus data-image initialiser. */
struct Workload
{
    std::string name;
    Program program;
    std::size_t mem_size = 8 * 1024 * 1024;
    std::function<void(DataMemory &)> init_memory;

    /** Allocate and initialise this workload's data image. */
    std::unique_ptr<DataMemory>
    makeMemory() const
    {
        auto mem = std::make_unique<DataMemory>(mem_size);
        if (init_memory)
            init_memory(*mem);
        return mem;
    }
};

/** All 18 SPEC CPU95 benchmark names, paper order (Figure 6). */
const std::vector<std::string> &spec95Names();

/** The multiprogrammed-mix bases (Section 6.2). */
const std::vector<std::string> &twoThreadMixBase();   // gcc go fpppp swim
const std::vector<std::string> &fourThreadMixBase();  // + ijpeg

/** Build one benchmark by name (fatal on unknown name). */
Workload buildWorkload(const std::string &name);

/** All 6 unordered pairs of twoThreadMixBase(). */
std::vector<std::vector<std::string>> twoProgramMixes();

/** All 15 4-of-5 multisets... the paper's 15 four-program combinations
 *  (5 choose 4 = 5 distinct sets plus repetition mixes; we use the 15
 *  combinations with repetition of 4 distinct-or-repeated programs
 *  drawn from the 5-benchmark base, matching the paper's count). */
std::vector<std::vector<std::string>> fourProgramMixes();

} // namespace rmt

#endif // RMTSIM_WORKLOADS_WORKLOADS_HH
