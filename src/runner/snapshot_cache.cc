#include "runner/snapshot_cache.hh"

#include <cinttypes>
#include <cstdio>
#include <utility>

namespace rmt
{

namespace
{

std::string
cacheKey(const std::vector<std::string> &workloads,
         const SimOptions &options)
{
    std::string key;
    for (const auto &w : workloads) {
        key += w;
        key += '\n';
    }
    char buf[20];
    std::snprintf(buf, sizeof(buf), "%016" PRIx64,
                  optionsFingerprintU64(options));
    key += buf;
    return key;
}

std::shared_ptr<const SnapshotSet>
produce(const std::vector<std::string> &workloads,
        const SimOptions &options)
{
    auto set = std::make_shared<SnapshotSet>();
    Simulation sim(workloads, options);
    sim.setSnapshotHook([&set](Cycle cycle, Simulation &s) {
        set->push_back({cycle, std::make_shared<const std::string>(
                                   s.saveSnapshotBuffer())});
    });
    sim.run();
    // The hook fires at barriers in cycle order; no sort needed.
    return set;
}

} // namespace

std::shared_ptr<const SnapshotSet>
SnapshotCache::snapshots(const std::vector<std::string> &workloads,
                         const SimOptions &options)
{
    const std::string key = cacheKey(workloads, options);

    std::unique_lock<std::mutex> lock(mu);
    for (;;) {
        auto [it, inserted] = cache.try_emplace(key);
        if (inserted)
            break;              // we own the placeholder
        if (it->second.ready)
            return it->second.set;
        cv.wait(lock);
    }

    // We inserted the placeholder, so we are the single flight that
    // runs the producer; everyone else blocks above.
    lock.unlock();
    std::shared_ptr<const SnapshotSet> set;
    try {
        set = produce(workloads, options);
    } catch (...) {
        // Unpublish so waiters do not hang; the next caller retries.
        lock.lock();
        cache.erase(key);
        cv.notify_all();
        throw;
    }
    lock.lock();
    Entry &entry = cache.at(key);
    entry.set = std::move(set);
    entry.ready = true;
    ++runs;
    cv.notify_all();
    return entry.set;
}

void
SnapshotCache::insert(const std::vector<std::string> &workloads,
                      const SimOptions &options,
                      std::shared_ptr<const SnapshotSet> set)
{
    const std::string key = cacheKey(workloads, options);
    std::lock_guard<std::mutex> lock(mu);
    Entry &entry = cache[key];
    entry.set = std::move(set);
    entry.ready = true;
    cv.notify_all();
}

void
SnapshotCache::invalidate(const std::vector<std::string> &workloads,
                          const SimOptions &options)
{
    const std::string key = cacheKey(workloads, options);
    std::lock_guard<std::mutex> lock(mu);
    const auto it = cache.find(key);
    // Never erase an in-flight placeholder (ready == false): its
    // producer will publish over it, and erasing would strand waiters.
    if (it != cache.end() && it->second.ready)
        cache.erase(it);
}

const CachedSnapshot *
SnapshotCache::latestBefore(const SnapshotSet &set, Cycle cycle)
{
    const CachedSnapshot *best = nullptr;
    for (const CachedSnapshot &snap : set) {
        if (snap.cycle >= cycle)
            break;
        best = &snap;
    }
    return best;
}

std::uint64_t
SnapshotCache::producerRuns() const
{
    std::lock_guard<std::mutex> lock(mu);
    return runs;
}

} // namespace rmt
