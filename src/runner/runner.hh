/**
 * @file
 * Campaign execution: fan JobSpecs out over the thread pool, guard
 * each job (validation, retry-once on exception, wall-clock timeout,
 * instruction cap), and deliver JobResults to a ResultSink as they
 * complete plus as an id-ordered vector at the end.
 *
 * Every job builds its own Simulation, so jobs are independent and the
 * per-job results are bit-identical whatever the worker count or
 * completion order (tests/test_runner.cc asserts this).  The only
 * shared mutable state is the optional BaselineCache, which is
 * internally synchronised with single-flight semantics.
 */

#ifndef RMTSIM_RUNNER_RUNNER_HH
#define RMTSIM_RUNNER_RUNNER_HH

#include <atomic>
#include <cstdint>
#include <vector>

#include "runner/campaign.hh"
#include "runner/job.hh"
#include "runner/result_sink.hh"
#include "runner/snapshot_cache.hh"
#include "sim/metrics.hh"

namespace rmt
{

struct RunnerConfig
{
    unsigned jobs = 1;              ///< worker threads (0 = all cores)
    unsigned max_attempts = 2;      ///< 2 = retry once, then record
    double timeout_seconds = 0;     ///< 0 = no wall-clock guard
    std::uint64_t max_insts = 0;    ///< clamp warmup+measure (0 = off)

    /** When set, mean_efficiency / efficiencies are filled from this
     *  cache (single-thread baselines simulated once per workload). */
    BaselineCache *baseline = nullptr;

    /** When set (and a job's options place snapshot barriers), fault
     *  trials fork from the latest cached snapshot strictly before the
     *  first fault's activation cycle instead of running the common
     *  prefix from scratch.  The per-job "extra" metrics record the
     *  hit and the cycles saved. */
    SnapshotCache *snapshots = nullptr;

    /** When set, receives each JobResult as it completes. */
    ResultSink *sink = nullptr;

    /** Cooperative cancellation (the SIGTERM/SIGINT drain): checked
     *  between jobs/trials, never mid-simulation.  Once it reads true,
     *  no new job starts; in-flight jobs finish and are recorded, so
     *  the journal stays a clean prefix of the campaign. */
    const std::atomic<bool> *stop = nullptr;
};

/**
 * Reject a spec the Simulation constructor would abort the process on
 * (unknown workload, too many logical threads for the mode, option
 * conflicts).  Throws std::invalid_argument; used by executeJob so a
 * bad grid point becomes a recorded failure instead of killing a
 * thousand-run campaign.
 */
void validateJobSpec(const JobSpec &spec);

/** Run one job inline (validation, guards, post_run, efficiency). */
JobResult executeJob(const JobSpec &spec, const RunnerConfig &config);

/** Apply the runner-level instruction cap to a copy of the options. */
SimOptions cappedOptions(const JobSpec &spec, const RunnerConfig &config);

/** Snapshot bookkeeping a fault trial records in its "extra" block. */
struct SnapshotForkInfo
{
    bool enabled = false;   ///< trial was eligible to fork (record extras)
    bool hit = false;       ///< a snapshot was actually restored
    bool scratch_fallback = false;  ///< restore rejected; rebuilt fresh
    Cycle cycle = 0;        ///< barrier cycle of the restored snapshot
    double bytes = 0;       ///< serialized image size
};

/**
 * Finish a successful run exactly the way executeJob does: set status,
 * store the RunResult, fill efficiencies from config.baseline, append
 * the snapshot "extra" metrics, then invoke spec.post_run while @p sim
 * is still alive.  Shared with ForkExecutor so the forked and
 * in-process paths cannot drift apart.
 */
void finalizeJobResult(const JobSpec &spec, const RunnerConfig &config,
                       Simulation &sim, const RunResult &run,
                       const SnapshotForkInfo &snap, JobResult &result);

/**
 * Chain a FaultOracle classification onto @p spec's post_run hook: the
 * JobResult gains has_verdict/verdict/detection_latency, attributed to
 * the spec's first scheduled fault.  Call *after* spec.faults is
 * populated; @p oracle must outlive the campaign.  Any previously
 * installed post_run hook still runs (first).
 */
void attachFaultOracle(JobSpec &spec, const FaultOracle *oracle);

/** Run all jobs; returns results indexed by job id. */
std::vector<JobResult> runCampaign(const Campaign &campaign,
                                   const RunnerConfig &config);

/**
 * Run an explicit job list (e.g. the not-yet-done remainder of a
 * resumed campaign) over the thread pool, recording each result to
 * config.sink as it completes.  Unlike runCampaign, the sink's
 * begin()/end() are NOT called — the caller owns the sink lifecycle —
 * and results come back by position in @p jobs, not by job id.
 * Jobs skipped by config.stop keep JobStatus::Failed defaults and are
 * never fed to the sink.
 */
std::vector<JobResult> runCampaignJobs(const std::vector<JobSpec> &jobs,
                                       const RunnerConfig &config);

} // namespace rmt

#endif // RMTSIM_RUNNER_RUNNER_HH
