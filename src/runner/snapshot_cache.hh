/**
 * @file
 * Shared snapshot store for fault campaigns (src/ckpt/ exploitation).
 *
 * A fault campaign runs many trials of the *same* (workload mix,
 * options) point, differing only in the injected fault.  Everything
 * before the injection cycle is identical across trials, so the runner
 * can fork each trial from a periodic snapshot instead of re-simulating
 * the common prefix: one fault-free producer run per distinct
 * (mix, options-fingerprint) collects a snapshot at every barrier, and
 * each trial restores the latest snapshot strictly before its first
 * fault's activation cycle.
 *
 * Thread-safe with single-flight semantics, exactly like BaselineCache:
 * when N workers ask for the same point's snapshots at once, one runs
 * the producer simulation while the rest block until it publishes.
 */

#ifndef RMTSIM_RUNNER_SNAPSHOT_CACHE_HH
#define RMTSIM_RUNNER_SNAPSHOT_CACHE_HH

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/simulator.hh"

namespace rmt
{

/** One periodic snapshot: the barrier cycle and the serialized image
 *  (shared so trials on many workers alias one copy). */
struct CachedSnapshot
{
    Cycle cycle = 0;
    std::shared_ptr<const std::string> image;
};

/** All snapshots of one producer run, sorted by ascending cycle. */
using SnapshotSet = std::vector<CachedSnapshot>;

class SnapshotCache
{
  public:
    /**
     * Snapshots for (@p workloads, @p options), producing them on first
     * use with one fault-free run.  @p options must have snapshot_every
     * set and must be the exact options the trials run under (the
     * snapshot fingerprint check enforces this at restore time).
     * Returns an empty set when the producer run placed no barriers
     * (budget shorter than snapshot_every).
     */
    std::shared_ptr<const SnapshotSet>
    snapshots(const std::vector<std::string> &workloads,
              const SimOptions &options);

    /**
     * The latest snapshot in @p set strictly before @p cycle, or
     * nullptr.  Strictly: the injector applies a fault when
     * now >= fault.when, so a snapshot taken *at* the fault cycle
     * already post-dates the nominal injection point.
     */
    static const CachedSnapshot *
    latestBefore(const SnapshotSet &set, Cycle cycle);

    /**
     * Publish @p set for (@p workloads, @p options) without a producer
     * run, replacing any existing entry.  Tests use it to pre-seed
     * corrupted images; restore-time validation is what must catch
     * them.
     */
    void insert(const std::vector<std::string> &workloads,
                const SimOptions &options,
                std::shared_ptr<const SnapshotSet> set);

    /**
     * Drop the entry for (@p workloads, @p options), if any.  Called
     * when a cached image fails its restore-time validation, so the
     * next trial re-produces clean snapshots instead of tripping over
     * the same corruption forever.
     */
    void invalidate(const std::vector<std::string> &workloads,
                    const SimOptions &options);

    /** Producer simulations actually executed (the single-flight
     *  invariant: one per distinct key). */
    std::uint64_t producerRuns() const;

  private:
    struct Entry
    {
        bool ready = false;
        std::shared_ptr<const SnapshotSet> set;
    };

    mutable std::mutex mu;
    std::condition_variable cv;
    std::unordered_map<std::string, Entry> cache;
    std::uint64_t runs = 0;
};

} // namespace rmt

#endif // RMTSIM_RUNNER_SNAPSHOT_CACHE_HH
