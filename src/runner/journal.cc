#include "runner/journal.hh"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "ckpt/serializer.hh"
#include "common/fingerprint.hh"
#include "runner/wire.hh"

#if defined(__unix__) || defined(__APPLE__)
#define RMT_JOURNAL_POSIX 1
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace rmt
{

namespace
{

constexpr char kJournalMagic[8] =
    {'R', 'M', 'T', 'J', 'R', 'N', 'L', '\0'};

/** Frame magic "RMTJ", little-endian. */
constexpr std::uint32_t kFrameMagic = 0x4A544D52u;

void
appendLe32(std::string &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>(v >> (8 * i)));
}

void
appendLe64(std::string &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>(v >> (8 * i)));
}

std::uint32_t
readLe32(const std::string &buf, std::size_t at)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(
                 static_cast<std::uint8_t>(buf[at + i]))
             << (8 * i);
    return v;
}

std::uint64_t
readLe64(const std::string &buf, std::size_t at)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(
                 static_cast<std::uint8_t>(buf[at + i]))
             << (8 * i);
    return v;
}

constexpr std::size_t kHeaderBytes = sizeof(kJournalMagic) + 4 + 8;

std::string
journalHeader(std::uint64_t fingerprint)
{
    std::string out;
    out.append(kJournalMagic, sizeof(kJournalMagic));
    appendLe32(out, journalVersion);
    appendLe64(out, fingerprint);
    return out;
}

} // namespace

std::uint64_t
campaignFingerprintU64(const std::vector<JobSpec> &jobs)
{
    std::uint64_t h = fnv1a64Seed;
    for (const JobSpec &job : jobs) {
        fnv1a64Field(h, std::to_string(job.id));
        fnv1a64Field(h, std::to_string(job.seed));
        fnv1a64Field(h, job.label);
        for (const std::string &w : job.workloads)
            fnv1a64Field(h, w);
        fnv1a64Field(h, optionsCanonicalJson(job.options));
        for (const FaultRecord &f : job.faults) {
            std::ostringstream os;
            os << faultKindName(f.kind) << ',' << f.when << ','
               << unsigned(f.core) << ',' << unsigned(f.tid) << ','
               << unsigned(f.reg) << ',' << f.bit << ',' << f.fuIndex
               << ',' << f.mask << ',' << unsigned(f.pairLogical);
            fnv1a64Field(h, os.str());
        }
    }
    return h;
}

JournalReplay
replayJournal(const std::string &path, std::uint64_t expect_fingerprint)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw JournalError("journal: cannot open '" + path + "'");
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string data = ss.str();

    if (data.size() < kHeaderBytes)
        throw JournalError("journal: '" + path +
                           "' truncated before the header");
    if (data.compare(0, sizeof(kJournalMagic), kJournalMagic,
                     sizeof(kJournalMagic)) != 0)
        throw JournalError("journal: '" + path +
                           "' is not a result journal (bad magic)");
    const std::uint32_t version = readLe32(data, sizeof(kJournalMagic));
    if (version != journalVersion)
        throw JournalError(
            "journal: '" + path + "' has format version " +
            std::to_string(version) + " (this build reads version " +
            std::to_string(journalVersion) + ")");
    const std::uint64_t fp = readLe64(data, sizeof(kJournalMagic) + 4);
    if (fp != expect_fingerprint)
        throw JournalError(
            "journal: '" + path + "' belongs to campaign " +
            fingerprintHex(fp) + ", not " +
            fingerprintHex(expect_fingerprint) +
            " (different grid arguments; delete it to start over)");

    JournalReplay replay;
    std::size_t at = kHeaderBytes;
    while (at < data.size()) {
        // Anything short of a whole frame is the crash's torn tail.
        if (data.size() - at < 12) {
            replay.torn_tail = true;
            replay.note = "frame header cut at offset " +
                          std::to_string(at);
            break;
        }
        const std::uint32_t magic = readLe32(data, at);
        const std::uint32_t len = readLe32(data, at + 4);
        if (magic != kFrameMagic ||
            len > wire::maxPayloadBytes) {
            replay.corrupt = true;
            replay.note = "bad frame header at offset " +
                          std::to_string(at);
            break;
        }
        if (data.size() - at - 12 < len) {
            replay.torn_tail = true;
            replay.note = "frame payload cut at offset " +
                          std::to_string(at) + " (wanted " +
                          std::to_string(len) + " bytes)";
            break;
        }
        const std::uint32_t stored_crc = readLe32(data, at + 8 + len);
        const std::uint32_t actual = crc32(data.data() + at + 8, len);
        if (stored_crc != actual) {
            replay.corrupt = true;
            replay.note = "frame at offset " + std::to_string(at) +
                          " failed its CRC check";
            break;
        }
        JobResult result;
        try {
            result = wire::decodeJobResult(data.substr(at + 8, len));
        } catch (const wire::WireError &e) {
            replay.corrupt = true;
            replay.note = "frame at offset " + std::to_string(at) +
                          " does not decode (" + e.what() + ")";
            break;
        }
        replay.results[result.id] = std::move(result);
        at += 12 + len;
        replay.valid_bytes = at;
    }
    if (replay.valid_bytes < kHeaderBytes)
        replay.valid_bytes = kHeaderBytes;
    return replay;
}

JournalWriter::JournalWriter(const std::string &path,
                             std::uint64_t fingerprint, Options options)
    : _path(path), opts(options)
{
    if (opts.sync_every == 0)
        opts.sync_every = 1;
    open(0, journalHeader(fingerprint));
}

JournalWriter::JournalWriter(const std::string &path,
                             const JournalReplay &replay, Options options)
    : _path(path), opts(options)
{
    if (opts.sync_every == 0)
        opts.sync_every = 1;
    open(replay.valid_bytes, "");
}

JournalWriter::~JournalWriter()
{
    try {
        close();
    } catch (...) {
        // A destructor must not throw; the journal is best-effort at
        // teardown (close() was available for callers who care).
    }
}

void
JournalWriter::open(std::uint64_t truncate_to, const std::string &header)
{
#ifdef RMT_JOURNAL_POSIX
    const int flags =
        header.empty() ? O_WRONLY : (O_WRONLY | O_CREAT | O_TRUNC);
    fd = ::open(_path.c_str(), flags, 0644);
    if (fd < 0)
        throw JournalError("journal: cannot open '" + _path +
                           "' for writing");
    if (header.empty()) {
        // Resume: drop the torn/corrupt tail, then append.
        if (::ftruncate(fd, static_cast<off_t>(truncate_to)) != 0 ||
            ::lseek(fd, 0, SEEK_END) < 0) {
            ::close(fd);
            fd = -1;
            throw JournalError("journal: cannot truncate '" + _path +
                               "' to its valid prefix");
        }
    } else if (!wire::writeAll(fd, header.data(), header.size())) {
        ::close(fd);
        fd = -1;
        throw JournalError("journal: cannot write the header of '" +
                           _path + "'");
    }
#else
    // No fsync without POSIX: degrade to buffered stdio semantics.
    (void)truncate_to;
    std::ofstream out(_path, header.empty()
                                 ? (std::ios::binary | std::ios::app)
                                 : (std::ios::binary | std::ios::trunc));
    if (!out)
        throw JournalError("journal: cannot open '" + _path +
                           "' for writing");
    out.write(header.data(),
              static_cast<std::streamsize>(header.size()));
    out.close();
    fd = 0;     // sentinel: "open", appends go through ofstream::app
#endif
}

void
JournalWriter::append(const JobResult &result)
{
    const std::string payload = wire::encodeJobResult(result);

    std::lock_guard<std::mutex> lock(mu);
    if (fd < 0)
        throw JournalError("journal: append after close");
    appendLe32(buffer, kFrameMagic);
    appendLe32(buffer, static_cast<std::uint32_t>(payload.size()));
    buffer += payload;
    appendLe32(buffer, crc32(payload.data(), payload.size()));
    ++records;
    if (++unsynced >= opts.sync_every)
        sync();
}

void
JournalWriter::sync()
{
    if (!buffer.empty()) {
#ifdef RMT_JOURNAL_POSIX
        if (!wire::writeAll(fd, buffer.data(), buffer.size()))
            throw JournalError("journal: write to '" + _path +
                               "' failed");
        ::fsync(fd);
#else
        std::ofstream out(_path, std::ios::binary | std::ios::app);
        out.write(buffer.data(),
                  static_cast<std::streamsize>(buffer.size()));
#endif
        buffer.clear();
    }
    unsynced = 0;
}

void
JournalWriter::flush()
{
    std::lock_guard<std::mutex> lock(mu);
    if (fd >= 0)
        sync();
}

void
JournalWriter::close()
{
    std::lock_guard<std::mutex> lock(mu);
    if (fd < 0)
        return;
    sync();
#ifdef RMT_JOURNAL_POSIX
    ::close(fd);
#endif
    fd = -1;
}

std::uint64_t
JournalWriter::appended() const
{
    std::lock_guard<std::mutex> lock(mu);
    return records;
}

} // namespace rmt
