#include "runner/fork_executor.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <optional>
#include <sstream>
#include <thread>

#include "runner/snapshot_cache.hh"
#include "runner/wire.hh"

#if defined(__unix__) || defined(__APPLE__)
#define RMT_FORK_EXECUTOR_POSIX 1
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace rmt
{

/** One parent-resident simulation, built and (optionally) restored
 *  once, that children inherit via COW.  The parent never run()s it. */
struct ForkExecutor::WarmedSim
{
    std::string key;                ///< workloads | fingerprint | barrier
    SimOptions capped;
    std::optional<Simulation> sim;
    SnapshotForkInfo snap;
};

namespace
{

std::string
groupKey(const JobSpec &spec, const SimOptions &capped, Cycle barrier)
{
    std::string key;
    for (const auto &w : spec.workloads) {
        key += w;
        key += '+';
    }
    key += '|';
    key += std::to_string(optionsFingerprintU64(capped));
    key += '|';
    key += std::to_string(barrier);
    return key;
}

Cycle
firstFaultCycle(const JobSpec &spec)
{
    Cycle first = spec.faults.front().when;
    for (const FaultRecord &f : spec.faults)
        first = std::min(first, f.when);
    return first;
}

} // namespace

ForkExecutor::ForkExecutor(const ForkExecutorConfig &config)
    : _cfg(config)
{
    if (_cfg.warm_cache == 0)
        _cfg.warm_cache = 1;
}

ForkExecutor::~ForkExecutor() = default;

bool
ForkExecutor::supported()
{
#ifdef RMT_FORK_EXECUTOR_POSIX
    return true;
#else
    return false;
#endif
}

ForkExecutor::WarmedSim &
ForkExecutor::warmFor(const JobSpec &spec, const SimOptions &capped)
{
    // Pick the barrier exactly like executeJob: the latest snapshot
    // strictly before the first fault, or none (scratch prefix).
    const CachedSnapshot *cached = nullptr;
    std::shared_ptr<const SnapshotSet> set;
    const bool eligible = _cfg.runner.snapshots &&
                          capped.snapshot_every && !spec.faults.empty();
    if (eligible) {
        set = _cfg.runner.snapshots->snapshots(spec.workloads, capped);
        cached =
            SnapshotCache::latestBefore(*set, firstFaultCycle(spec));
    }
    const Cycle barrier = cached ? cached->cycle : 0;

    const std::string key = groupKey(spec, capped, barrier);
    for (auto it = _warm.begin(); it != _warm.end(); ++it) {
        if ((*it)->key == key) {
            _warm.splice(_warm.begin(), _warm, it);   // refresh LRU
            return *_warm.front();
        }
    }

    auto warm = std::make_unique<WarmedSim>();
    warm->key = key;
    warm->capped = capped;
    warm->sim.emplace(spec.workloads, capped);
    warm->snap.enabled = eligible;
    if (cached) {
        warm->sim->restoreSnapshotBuffer(*cached->image);
        warm->snap.hit = true;
        warm->snap.cycle = cached->cycle;
        warm->snap.bytes = static_cast<double>(cached->image->size());
    }
    ++_stats.warm_builds;

    _warm.push_front(std::move(warm));
    while (_warm.size() > _cfg.warm_cache)
        _warm.pop_back();
    return *_warm.front();
}

#ifdef RMT_FORK_EXECUTOR_POSIX

JobResult
ForkExecutor::runForked(const JobSpec &spec, WarmedSim &warm,
                        bool &crashed)
{
    using Clock = std::chrono::steady_clock;
    crashed = false;

    int fds[2];
    if (::pipe(fds) != 0) {
        // Out of descriptors: degrade to the in-process path.
        ++_stats.inprocess;
        return executeJob(spec, _cfg.runner);
    }

    // No parent buffer may survive into the child: a child that
    // crashed mid-trial must not replay half-written parent output.
    std::fflush(nullptr);

    const auto start = Clock::now();
    const pid_t pid = ::fork();
    if (pid < 0) {
        ::close(fds[0]);
        ::close(fds[1]);
        ++_stats.inprocess;
        return executeJob(spec, _cfg.runner);
    }

    if (pid == 0) {
        // ----------------------------------------------------- child
        ::close(fds[0]);
        ::signal(SIGPIPE, SIG_IGN);

        RunnerConfig child_cfg = _cfg.runner;
        child_cfg.sink = nullptr;       // the parent owns the sink

        JobResult result;
        result.id = spec.id;
        result.label = spec.label;
        bool fast_ok = false;
        try {
            result.attempts = 1;
            for (const FaultRecord &f : spec.faults)
                warm.sim->faultInjector().schedule(f);
            const RunResult run = warm.sim->run();
            result.wall_seconds =
                std::chrono::duration<double>(Clock::now() - start)
                    .count();
            if (child_cfg.timeout_seconds > 0 &&
                result.wall_seconds > child_cfg.timeout_seconds) {
                result.status = JobStatus::Failed;
                result.timed_out = true;
                result.error =
                    "exceeded timeout of " +
                    std::to_string(child_cfg.timeout_seconds) + " s";
            } else {
                finalizeJobResult(spec, child_cfg, *warm.sim, run,
                                  warm.snap, result);
            }
            fast_ok = true;
        } catch (...) {
            // Anything the warmed path trips over (SnapshotOrderError
            // from a late barrier, a validation fatal, ...): replay
            // the exact in-process path so attempts / error strings /
            // verdicts match executeJob byte-for-byte.
        }
        if (!fast_ok)
            result = executeJob(spec, child_cfg);

        bool sent = false;
        try {
            const std::string frame =
                wire::frame(wire::encodeJobResult(result));
            sent = wire::writeAll(fds[1], frame.data(), frame.size());
        } catch (...) {
            sent = false;
        }
        ::close(fds[1]);
        // _exit, not exit: no static destructors, no stdio flush —
        // the parent's buffers exist in this address space too.
        ::_exit(sent ? 0 : 1);
    }

    // ------------------------------------------------------- parent
    ::close(fds[1]);

    const double timeout = _cfg.runner.timeout_seconds;
    wire::FrameDecoder decoder;
    std::string payload, wire_error;
    bool got_record = false, killed = false, overflow = false;
    char buf[65536];

    for (;;) {
        int wait_ms = -1;
        if (timeout > 0) {
            const double left =
                timeout -
                std::chrono::duration<double>(Clock::now() - start)
                    .count();
            if (left <= 0) {
                killed = true;
                break;
            }
            wait_ms = static_cast<int>(left * 1e3) + 1;
        }
        struct pollfd pfd = {fds[0], POLLIN, 0};
        const int rc = ::poll(&pfd, 1, wait_ms);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            wire_error = "poll failed on the trial pipe";
            break;
        }
        if (rc == 0) {
            killed = true;
            break;
        }
        const long n = wire::readSome(fds[0], buf, sizeof(buf));
        if (n < 0) {
            wire_error = "read failed on the trial pipe";
            break;
        }
        if (n == 0)
            break;      // EOF: child closed its end
        try {
            decoder.feed(buf, static_cast<std::size_t>(n));
            std::string p;
            while (decoder.next(p)) {
                if (got_record) {
                    overflow = true;    // a second record is corruption
                } else {
                    payload = std::move(p);
                    got_record = true;
                }
            }
        } catch (const wire::WireError &e) {
            wire_error = e.what();
            break;
        }
    }

    if (killed || !wire_error.empty())
        ::kill(pid, SIGKILL);
    ::close(fds[0]);

    int status = 0;
    while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
    }

    JobResult result;
    result.id = spec.id;
    result.label = spec.label;
    result.attempts = 1;
    result.wall_seconds =
        std::chrono::duration<double>(Clock::now() - start).count();

    if (killed) {
        ++_stats.killed;
        crashed = true;
        result.status = JobStatus::Failed;
        result.timed_out = true;
        result.error = "trial child killed after exceeding timeout of " +
                       std::to_string(timeout) + " s";
        return result;
    }

    if (wire_error.empty() && got_record && !overflow &&
        !decoder.truncated()) {
        try {
            JobResult decoded = wire::decodeJobResult(payload);
            if (decoded.id == spec.id) {
                ++_stats.forked;
                return decoded;
            }
            wire_error = "record id does not match the dispatched job";
        } catch (const wire::WireError &e) {
            wire_error = e.what();
        }
    }

    ++_stats.wire_errors;
    crashed = true;
    result.status = JobStatus::Failed;
    std::ostringstream os;
    os << "trial child delivered no usable record (";
    if (!wire_error.empty())
        os << wire_error;
    else if (overflow)
        os << "more than one record on the pipe";
    else if (decoder.truncated())
        os << "record truncated mid-frame";
    else
        os << "no record before EOF";
    if (WIFSIGNALED(status))
        os << "; child killed by signal " << WTERMSIG(status);
    else if (WIFEXITED(status) && WEXITSTATUS(status) != 0)
        os << "; child exited with status " << WEXITSTATUS(status);
    os << ")";
    result.error = os.str();
    return result;
}

#else // !RMT_FORK_EXECUTOR_POSIX

JobResult
ForkExecutor::runForked(const JobSpec &spec, WarmedSim &, bool &crashed)
{
    crashed = false;
    ++_stats.inprocess;
    return executeJob(spec, _cfg.runner);
}

#endif // RMT_FORK_EXECUTOR_POSIX

void
ForkExecutor::backoffSleep(std::uint64_t seed, unsigned attempt) const
{
    if (_cfg.retry_backoff_ms == 0)
        return;
    // splitmix64 over (seed, attempt): jitter is a pure function of
    // the job, never the clock, so a re-run campaign backs off (and
    // therefore schedules) identically.
    std::uint64_t z = seed + 0x9e3779b97f4a7c15ull * (attempt + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    const std::uint64_t base = std::min<std::uint64_t>(
        std::uint64_t(_cfg.retry_backoff_ms) << (attempt - 1), 2000);
    // Full jitter over [base/2, base]: decorrelates workers without
    // collapsing the exponential envelope.
    const std::uint64_t delay_ms = base / 2 + z % (base / 2 + 1);
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
}

JobResult
ForkExecutor::runWithRetry(const JobSpec &spec)
{
    const unsigned max_attempts = std::max(1u, _cfg.runner.max_attempts);
    JobResult result;
    for (unsigned attempt = 1;; ++attempt) {
        bool crashed = false;
        result = runForked(
            spec, warmFor(spec, cappedOptions(spec, _cfg.runner)),
            crashed);
        if (!crashed)
            return result;  // decoded record (ok or recorded failure)
        if (attempt >= max_attempts ||
            (_cfg.runner.stop &&
             _cfg.runner.stop->load(std::memory_order_relaxed))) {
            // Out of attempts (or draining): set the trial aside so
            // the rest of the campaign can finish.  attempts reports
            // the forks actually burned on it.
            ++_stats.quarantined;
            result.quarantined = true;
            result.attempts = attempt;
            return result;
        }
        ++_stats.retries;
        backoffSleep(spec.seed, attempt);
    }
}

std::vector<JobResult>
ForkExecutor::run(const std::vector<JobSpec> &jobs)
{
    std::vector<JobResult> results;
    results.reserve(jobs.size());

    // Warm the shared caches from the parent before any fork: the
    // single-flight mutexes must never be mid-acquisition at fork()
    // time, and children should only ever read these caches.
    if (supported() && _cfg.use_fork && _cfg.runner.baseline) {
        for (const JobSpec &spec : jobs)
            for (const auto &w : spec.workloads)
                _cfg.runner.baseline->ipc(w);
    }

    for (const JobSpec &spec : jobs) {
        if (_cfg.runner.stop &&
            _cfg.runner.stop->load(std::memory_order_relaxed))
            break;      // draining: stop dispatching, keep what's done
        JobResult result;
        if (!supported() || !_cfg.use_fork) {
            ++_stats.inprocess;
            result = executeJob(spec, _cfg.runner);
        } else {
            bool valid = true;
            try {
                validateJobSpec(spec);
            } catch (const std::exception &) {
                valid = false;
            }
            if (!valid) {
                // Invalid specs never reach a Simulation constructor;
                // record the failure through the normal path.
                ++_stats.inprocess;
                result = executeJob(spec, _cfg.runner);
            } else {
                result = runWithRetry(spec);
            }
        }
        if (_cfg.runner.sink)
            _cfg.runner.sink->record(spec, result);
        results.push_back(std::move(result));
    }
    return results;
}

} // namespace rmt
