#include "runner/wire.hh"

#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <cerrno>
#include <unistd.h>
#endif

namespace rmt
{
namespace wire
{

namespace
{

// Little-endian byte writer/reader.  Explicit byte assembly (rather
// than memcpy of host integers) keeps the format host-independent;
// doubles travel as their IEEE-754 bit pattern.

void
putU8(std::string &out, std::uint8_t v)
{
    out.push_back(static_cast<char>(v));
}

void
putU32(std::string &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
putU64(std::string &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
putF64(std::string &out, double v)
{
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
    std::memcpy(&bits, &v, sizeof(bits));
    putU64(out, bits);
}

void
putStr(std::string &out, const std::string &s)
{
    if (s.size() > maxPayloadBytes)
        throw WireError("wire: string field exceeds payload cap");
    putU32(out, static_cast<std::uint32_t>(s.size()));
    out.append(s);
}

class Reader
{
  public:
    explicit Reader(const std::string &buf) : buf(buf) {}

    std::uint8_t u8()
    {
        need(1);
        return static_cast<std::uint8_t>(buf[pos++]);
    }

    std::uint32_t u32()
    {
        need(4);
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= std::uint32_t(std::uint8_t(buf[pos + i])) << (8 * i);
        pos += 4;
        return v;
    }

    std::uint64_t u64()
    {
        need(8);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= std::uint64_t(std::uint8_t(buf[pos + i])) << (8 * i);
        pos += 8;
        return v;
    }

    double f64()
    {
        const std::uint64_t bits = u64();
        double v = 0;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    std::string str()
    {
        const std::uint32_t len = u32();
        need(len);
        std::string s = buf.substr(pos, len);
        pos += len;
        return s;
    }

    bool atEnd() const { return pos == buf.size(); }

  private:
    void need(std::size_t n) const
    {
        if (buf.size() - pos < n)
            throw WireError("wire: payload truncated inside a field");
    }

    const std::string &buf;
    std::size_t pos = 0;
};

} // namespace

std::string
encodeJobResult(const JobResult &r)
{
    std::string out;
    out.reserve(256 + r.run.stats_json.size());

    putU8(out, codecVersion);
    putU64(out, r.id);
    putStr(out, r.label);
    putU8(out, static_cast<std::uint8_t>(r.status));
    putStr(out, r.error);
    putU32(out, r.attempts);
    putU8(out, r.timed_out ? 1 : 0);
    putU8(out, r.quarantined ? 1 : 0);
    putF64(out, r.wall_seconds);

    const RunResult &run = r.run;
    putU32(out, static_cast<std::uint32_t>(run.threads.size()));
    for (const ThreadResult &t : run.threads) {
        putStr(out, t.workload);
        putF64(out, t.ipc);
        putU64(out, t.committed);
        putU64(out, t.cycles);
    }
    putU64(out, run.total_cycles);
    putU8(out, run.completed ? 1 : 0);
    putU8(out, static_cast<std::uint8_t>(run.outcome));
    putU64(out, run.detections);
    putU64(out, run.recoveries);
    putU64(out, run.fu_pairs);
    putU64(out, run.fu_same_unit);
    putU64(out, run.store_comparisons);
    putU64(out, run.store_mismatches);
    putU64(out, run.sq_full_stalls);
    putU64(out, run.lvq_full_stalls);
    putU64(out, run.branch_mispredicts);
    putU64(out, run.line_mispredicts);
    putF64(out, run.avg_leading_store_lifetime);
    putF64(out, run.host.build_seconds);
    putF64(out, run.host.warmup_seconds);
    putF64(out, run.host.measure_seconds);
    putF64(out, run.host.sim_kips);
    putStr(out, run.stats_json);

    putF64(out, r.mean_efficiency);
    putU32(out, static_cast<std::uint32_t>(r.efficiencies.size()));
    for (const double e : r.efficiencies)
        putF64(out, e);

    putU32(out, static_cast<std::uint32_t>(r.extra.size()));
    for (const auto &[key, value] : r.extra) {
        putStr(out, key);
        putF64(out, value);
    }

    putU8(out, r.has_verdict ? 1 : 0);
    putU8(out, static_cast<std::uint8_t>(r.verdict));
    putF64(out, r.detection_latency);
    return out;
}

JobResult
decodeJobResult(const std::string &payload)
{
    Reader in(payload);

    const std::uint8_t version = in.u8();
    if (version != codecVersion)
        throw WireError("wire: unknown codec version " +
                        std::to_string(version));

    JobResult r;
    r.id = in.u64();
    r.label = in.str();
    r.status = static_cast<JobStatus>(in.u8());
    r.error = in.str();
    r.attempts = in.u32();
    r.timed_out = in.u8() != 0;
    r.quarantined = in.u8() != 0;
    r.wall_seconds = in.f64();

    RunResult &run = r.run;
    const std::uint32_t threads = in.u32();
    run.threads.resize(threads);
    for (ThreadResult &t : run.threads) {
        t.workload = in.str();
        t.ipc = in.f64();
        t.committed = in.u64();
        t.cycles = in.u64();
    }
    run.total_cycles = in.u64();
    run.completed = in.u8() != 0;
    run.outcome = static_cast<Outcome>(in.u8());
    run.detections = in.u64();
    run.recoveries = in.u64();
    run.fu_pairs = in.u64();
    run.fu_same_unit = in.u64();
    run.store_comparisons = in.u64();
    run.store_mismatches = in.u64();
    run.sq_full_stalls = in.u64();
    run.lvq_full_stalls = in.u64();
    run.branch_mispredicts = in.u64();
    run.line_mispredicts = in.u64();
    run.avg_leading_store_lifetime = in.f64();
    run.host.build_seconds = in.f64();
    run.host.warmup_seconds = in.f64();
    run.host.measure_seconds = in.f64();
    run.host.sim_kips = in.f64();
    run.stats_json = in.str();

    r.mean_efficiency = in.f64();
    const std::uint32_t effs = in.u32();
    r.efficiencies.resize(effs);
    for (double &e : r.efficiencies)
        e = in.f64();

    const std::uint32_t extras = in.u32();
    r.extra.resize(extras);
    for (auto &[key, value] : r.extra) {
        key = in.str();
        value = in.f64();
    }

    r.has_verdict = in.u8() != 0;
    r.verdict = static_cast<FaultVerdict>(in.u8());
    r.detection_latency = in.f64();

    if (!in.atEnd())
        throw WireError("wire: trailing bytes after the record");
    return r;
}

std::string
frame(const std::string &payload)
{
    if (payload.size() > maxPayloadBytes)
        throw WireError("wire: payload exceeds the frame cap");
    std::string out;
    out.reserve(8 + payload.size());
    putU32(out, frameMagic);
    putU32(out, static_cast<std::uint32_t>(payload.size()));
    out.append(payload);
    return out;
}

bool
FrameDecoder::next(std::string &payload)
{
    if (buf.size() < 8)
        return false;
    Reader in(buf);
    const std::uint32_t magic = in.u32();
    if (magic != frameMagic)
        throw WireError("wire: bad frame magic (child wrote garbage "
                        "before the record?)");
    const std::uint32_t len = in.u32();
    if (len > maxPayloadBytes)
        throw WireError("wire: frame length " + std::to_string(len) +
                        " exceeds the payload cap");
    if (buf.size() < 8 + std::size_t{len})
        return false;
    payload = buf.substr(8, len);
    buf.erase(0, 8 + std::size_t{len});
    return true;
}

#if defined(__unix__) || defined(__APPLE__)

bool
writeAll(int fd, const void *data, std::size_t len)
{
    const char *p = static_cast<const char *>(data);
    while (len) {
        const ssize_t n = ::write(fd, p, len);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += n;
        len -= static_cast<std::size_t>(n);
    }
    return true;
}

long
readSome(int fd, void *buf, std::size_t len)
{
    for (;;) {
        const ssize_t n = ::read(fd, buf, len);
        if (n >= 0)
            return static_cast<long>(n);
        if (errno != EINTR)
            return -1;
    }
}

#endif // POSIX

} // namespace wire
} // namespace rmt
