/**
 * @file
 * Pipe wire protocol between a forked trial child and its parent.
 *
 * Each child streams exactly one record back: a length-prefixed frame
 * (magic + payload length + payload) whose payload is a versioned
 * little-endian serialisation of the JobResult.  Length prefixing means
 * a child killed mid-write is detected as a truncated frame rather than
 * silently yielding a short record; the magic word catches a child that
 * wrote garbage (e.g. a stray stdio flush) before the record; the
 * payload cap bounds the parent's buffering against a corrupt length.
 *
 * The codec covers every JobResult field (including the embedded
 * RunResult, host timings and stats_json) so a forked trial's record is
 * byte-identical to the same trial executed in-process.
 */

#ifndef RMTSIM_RUNNER_WIRE_HH
#define RMTSIM_RUNNER_WIRE_HH

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "runner/job.hh"

namespace rmt
{
namespace wire
{

/** Any framing/codec violation (bad magic, truncation, bad version). */
struct WireError : std::runtime_error
{
    explicit WireError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/** Frame header magic ("RMTW", little-endian). */
constexpr std::uint32_t frameMagic = 0x57544D52u;

/** Hard cap on one frame's payload (a JobResult with a full stats doc
 *  is ~10 KiB; anything near this cap is corruption). */
constexpr std::uint32_t maxPayloadBytes = 64u << 20;

/** Codec version carried in every payload.
 *  v2: JobResult::quarantined (retry-exhausted trials). */
constexpr std::uint8_t codecVersion = 2;

/** Serialise a JobResult into a codec payload (no frame header). */
std::string encodeJobResult(const JobResult &result);

/** Inverse of encodeJobResult; throws WireError on malformed input. */
JobResult decodeJobResult(const std::string &payload);

/** Wrap a payload in a frame: magic + u32 length + bytes. */
std::string frame(const std::string &payload);

/**
 * Incremental frame parser for the parent's read loop.  feed() bytes
 * as they arrive; next() yields complete payloads.  Throws WireError
 * as soon as the stream is provably corrupt (wrong magic, payload
 * above the cap).  After EOF, truncated() tells a cleanly-closed
 * stream from one cut mid-frame.
 */
class FrameDecoder
{
  public:
    void feed(const char *data, std::size_t len)
    {
        buf.append(data, len);
    }

    /** Extract the next complete payload into @p payload. */
    bool next(std::string &payload);

    /** Bytes of an incomplete frame still buffered? */
    bool truncated() const { return !buf.empty(); }

  private:
    std::string buf;
};

#if defined(__unix__) || defined(__APPLE__)

/**
 * EINTR-safe descriptor I/O, shared by the trial pipe and the result
 * journal.  Signal delivery mid-frame (the SIGTERM drain, a worker's
 * SIGCHLD) must never tear a frame: both helpers retry interrupted
 * system calls until the transfer completes or genuinely fails.
 */

/** write() all @p len bytes, retrying EINTR and short writes; false on
 *  a real error (errno is left set). */
bool writeAll(int fd, const void *data, std::size_t len);

/** read() up to @p len bytes, retrying EINTR; returns the byte count
 *  (0 = EOF) or -1 on a real error (errno is left set). */
long readSome(int fd, void *buf, std::size_t len);

#endif // POSIX

} // namespace wire
} // namespace rmt

#endif // RMTSIM_RUNNER_WIRE_HH
