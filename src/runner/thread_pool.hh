/**
 * @file
 * Fixed-size work-stealing thread pool (std::thread + condition
 * variable, no external dependencies).
 *
 * Tasks are distributed round-robin across per-worker deques; an idle
 * worker first drains its own deque from the front, then steals from
 * the back of its siblings' deques, then sleeps on the shared
 * condition variable.  Campaign jobs are coarse (whole simulations,
 * milliseconds to seconds each), so contention on the per-deque
 * mutexes is negligible; stealing is what keeps workers busy when the
 * grid has a few slow configurations at the end.
 */

#ifndef RMTSIM_RUNNER_THREAD_POOL_HH
#define RMTSIM_RUNNER_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace rmt
{

class ThreadPool
{
  public:
    /** @p threads == 0 selects std::thread::hardware_concurrency(). */
    explicit ThreadPool(unsigned threads);

    /** Joins all workers; pending tasks are still executed. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue one task.  Tasks must not throw (wrap work that can). */
    void submit(std::function<void()> task);

    /** Block until every submitted task has finished executing. */
    void wait();

    unsigned numThreads() const
    {
        return static_cast<unsigned>(workers.size());
    }

  private:
    struct WorkerQueue
    {
        std::mutex mu;
        std::deque<std::function<void()>> tasks;
    };

    bool popFrom(std::size_t q, std::function<void()> &task,
                 bool steal);
    void workerLoop(std::size_t self);

    std::vector<std::unique_ptr<WorkerQueue>> queues;
    std::vector<std::thread> workers;

    std::mutex mu;                  ///< guards sleeping / counters
    std::condition_variable cv;     ///< wakes idle workers
    std::condition_variable idle_cv;///< wakes wait()ers
    std::size_t next_queue = 0;     ///< round-robin submit cursor
    std::size_t unfinished = 0;     ///< submitted - completed
    bool stopping = false;
};

} // namespace rmt

#endif // RMTSIM_RUNNER_THREAD_POOL_HH
