#include "runner/thread_pool.hh"

#include <chrono>
#include <utility>

namespace rmt
{

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0) {
        threads = std::thread::hardware_concurrency();
        if (threads == 0)
            threads = 1;
    }
    queues.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        queues.push_back(std::make_unique<WorkerQueue>());
    workers.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    wait();
    {
        std::lock_guard<std::mutex> lock(mu);
        stopping = true;
    }
    cv.notify_all();
    for (auto &w : workers)
        w.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    std::size_t q;
    {
        std::lock_guard<std::mutex> lock(mu);
        q = next_queue;
        next_queue = (next_queue + 1) % queues.size();
        ++unfinished;
    }
    {
        std::lock_guard<std::mutex> lock(queues[q]->mu);
        queues[q]->tasks.push_back(std::move(task));
    }
    cv.notify_one();
}

bool
ThreadPool::popFrom(std::size_t q, std::function<void()> &task,
                    bool steal)
{
    WorkerQueue &wq = *queues[q];
    std::lock_guard<std::mutex> lock(wq.mu);
    if (wq.tasks.empty())
        return false;
    // Owner takes the oldest local task; thieves take the newest so
    // the two ends contend as little as possible.
    if (steal) {
        task = std::move(wq.tasks.back());
        wq.tasks.pop_back();
    } else {
        task = std::move(wq.tasks.front());
        wq.tasks.pop_front();
    }
    return true;
}

void
ThreadPool::workerLoop(std::size_t self)
{
    for (;;) {
        std::function<void()> task;
        bool have = popFrom(self, task, false);
        for (std::size_t k = 1; !have && k < queues.size(); ++k)
            have = popFrom((self + k) % queues.size(), task, true);

        if (!have) {
            std::unique_lock<std::mutex> lock(mu);
            if (stopping)
                return;
            // Re-check under the lock via a short timed wait: a submit
            // that raced with our scan will have signalled cv already
            // or will signal it after we sleep; the timeout makes the
            // race benign.
            cv.wait_for(lock, std::chrono::milliseconds(50));
            continue;
        }

        task();

        std::lock_guard<std::mutex> lock(mu);
        if (--unfinished == 0)
            idle_cv.notify_all();
    }
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mu);
    idle_cv.wait(lock, [this] { return unfinished == 0; });
}

} // namespace rmt
