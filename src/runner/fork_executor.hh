/**
 * @file
 * fork()-per-trial campaign executor.
 *
 * A fault campaign runs thousands of trials of the same grid point,
 * and the PR-5 snapshot path still pays per trial for (a) building a
 * fresh Simulation and (b) deserialising the snapshot image into it.
 * ForkExecutor moves both costs out of the loop: the parent builds a
 * Simulation once per (grid point, snapshot barrier) and restores the
 * snapshot into it once; every trial is then a fork()ed child that
 * inherits the warmed simulator for free via copy-on-write, schedules
 * its fault, runs the tail, and streams one length-prefixed JobResult
 * frame back over a pipe (src/runner/wire.hh) before _exit()ing.
 *
 * The parent is the only process that touches the ResultSink, and it
 * fflush()es all stdio streams before each fork so no buffered bytes
 * can be replayed from a child.  A per-trial wall-clock watchdog
 * SIGKILLs children that overrun (the process-level analogue of the
 * in-sim hang watchdog).  Every trial's record is produced by the same
 * finalizeJobResult() path executeJob uses, and any fast-path error in
 * the child falls back to a full in-child executeJob(), so forked and
 * in-process campaigns are verdict-identical (tools/check.sh gates
 * this byte-for-byte).
 *
 * On non-POSIX builds — or with use_fork = false (`--no-fork`) — every
 * trial runs in-process through executeJob instead.
 */

#ifndef RMTSIM_RUNNER_FORK_EXECUTOR_HH
#define RMTSIM_RUNNER_FORK_EXECUTOR_HH

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <vector>

#include "runner/runner.hh"

namespace rmt
{

struct ForkExecutorConfig
{
    /** Guards, caches and sink; the sink is fed from the parent only.
     *  timeout_seconds > 0 arms the process-level watchdog. */
    RunnerConfig runner;

    /** false = run every trial in-process (the `--no-fork` path). */
    bool use_fork = true;

    /** Warmed (grid point, barrier) simulations kept resident in the
     *  parent; older ones are evicted in LRU order. */
    unsigned warm_cache = 4;

    /** First-retry backoff after an abnormal child death (the retry
     *  budget itself is runner.max_attempts).  Doubles per attempt
     *  with deterministic jitter derived from the job seed — never
     *  from the clock, so retried campaigns stay reproducible.
     *  0 disables the sleep (tests). */
    unsigned retry_backoff_ms = 25;
};

class ForkExecutor
{
  public:
    struct Stats
    {
        std::uint64_t forked = 0;       ///< trials run in a child
        std::uint64_t inprocess = 0;    ///< trials run via executeJob
        std::uint64_t killed = 0;       ///< children SIGKILLed (timeout)
        std::uint64_t wire_errors = 0;  ///< garbled/truncated records
        std::uint64_t warm_builds = 0;  ///< warmed simulations built
        std::uint64_t retries = 0;      ///< re-forks after a crash
        std::uint64_t quarantined = 0;  ///< trials that exhausted retries
    };

    explicit ForkExecutor(const ForkExecutorConfig &config);
    ~ForkExecutor();

    /** Does this platform have fork()/pipes at all? */
    static bool supported();

    /**
     * Execute @p jobs sequentially, feeding the sink as each record
     * lands; returns results in job order.  Callable repeatedly (the
     * sampler's rounds); warmed simulations persist across calls.
     *
     * A trial whose child dies abnormally (signal, garbled/short wire
     * record, watchdog kill) is retried with exponential backoff until
     * runner.max_attempts is exhausted, then recorded with
     * JobResult::quarantined set so the campaign finishes degraded
     * instead of dying.  When runner.stop reads true the loop drains:
     * the in-flight trial completes and is recorded, no new trial
     * starts, and the returned vector holds only the finished prefix.
     */
    std::vector<JobResult> run(const std::vector<JobSpec> &jobs);

    const Stats &stats() const { return _stats; }

  private:
    struct WarmedSim;

    WarmedSim &warmFor(const JobSpec &spec, const SimOptions &capped);
    JobResult runForked(const JobSpec &spec, WarmedSim &warm,
                        bool &crashed);
    JobResult runWithRetry(const JobSpec &spec);
    void backoffSleep(std::uint64_t seed, unsigned attempt) const;

    ForkExecutorConfig _cfg;
    std::list<std::unique_ptr<WarmedSim>> _warm;    // LRU, front = hot
    Stats _stats;
};

} // namespace rmt

#endif // RMTSIM_RUNNER_FORK_EXECUTOR_HH
