#include "runner/campaign.hh"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "common/random.hh"

namespace rmt
{

// modeName lives in sim/simulator.cc; the inverse mapping stays here
// with the rest of the spec parsing.
SimMode
parseMode(const std::string &name)
{
    if (name == "base")     return SimMode::Base;
    if (name == "base2")    return SimMode::Base2;
    if (name == "srt")      return SimMode::Srt;
    if (name == "lockstep") return SimMode::Lockstep;
    if (name == "crt")      return SimMode::Crt;
    throw std::invalid_argument("unknown mode '" + name + "'");
}

namespace
{

std::uint64_t
parseUint(const std::string &key, const std::string &value)
{
    std::size_t pos = 0;
    std::uint64_t v = 0;
    try {
        v = std::stoull(value, &pos, 0);
    } catch (const std::exception &) {
        pos = 0;
    }
    if (pos != value.size())
        throw std::invalid_argument("sweep " + key + ": bad value '" +
                                    value + "'");
    return v;
}

bool
parseBool(const std::string &key, const std::string &value)
{
    const std::uint64_t v = parseUint(key, value);
    if (v > 1)
        throw std::invalid_argument("sweep " + key +
                                    ": expected 0 or 1, got '" + value +
                                    "'");
    return v != 0;
}

/** SplitMix64: spreads a counter into an independent 64-bit stream so
 *  per-trial fault draws do not correlate across grid points. */
std::uint64_t
mixSeed(std::uint64_t a, std::uint64_t b)
{
    std::uint64_t z = a + 0x9E3779B97F4A7C15ull * (b + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

} // namespace

void
applySweepSetting(SimOptions &o, const std::string &key,
                  const std::string &value)
{
    if (key == "slack") {
        o.slack_fetch = static_cast<unsigned>(parseUint(key, value));
    } else if (key == "checker") {
        o.checker_penalty = static_cast<unsigned>(parseUint(key, value));
    } else if (key == "storeq") {
        o.cpu.store_queue_entries =
            static_cast<unsigned>(parseUint(key, value));
    } else if (key == "lvq") {
        o.cpu.lvq_entries = static_cast<unsigned>(parseUint(key, value));
    } else if (key == "lpq") {
        o.cpu.lpq_entries = static_cast<unsigned>(parseUint(key, value));
    } else if (key == "rob") {
        o.cpu.rob_entries = static_cast<unsigned>(parseUint(key, value));
    } else if (key == "iq") {
        o.cpu.iq_entries = static_cast<unsigned>(parseUint(key, value));
    } else if (key == "insts") {
        o.measure_insts = parseUint(key, value);
    } else if (key == "warmup") {
        o.warmup_insts = parseUint(key, value);
    } else if (key == "ptsq") {
        o.per_thread_store_queues = parseBool(key, value);
    } else if (key == "nosc") {
        o.store_comparison = !parseBool(key, value);
    } else if (key == "psr") {
        o.preferential_space_redundancy = parseBool(key, value);
    } else if (key == "ecc") {
        o.lvq_ecc = parseBool(key, value);
    } else if (key == "frontend") {
        if (value == "lpq")
            o.trailing_fetch = TrailingFetchMode::LinePredictionQueue;
        else if (value == "boq")
            o.trailing_fetch = TrailingFetchMode::BranchOutcomeQueue;
        else if (value == "sharedlp")
            o.trailing_fetch = TrailingFetchMode::SharedLinePredictor;
        else
            throw std::invalid_argument(
                "sweep frontend: unknown value '" + value + "'");
    } else {
        throw std::invalid_argument("unknown sweep key '" + key + "'");
    }
}

CampaignBuilder::CampaignBuilder(std::string name, std::uint64_t seed)
    : _name(std::move(name)), _seed(seed)
{
}

CampaignBuilder &
CampaignBuilder::base(const SimOptions &options)
{
    _base = options;
    return *this;
}

CampaignBuilder &
CampaignBuilder::modes(const std::vector<SimMode> &modes)
{
    _modes = modes;
    return *this;
}

CampaignBuilder &
CampaignBuilder::mixes(const std::vector<std::vector<std::string>> &mixes)
{
    _mixes = mixes;
    return *this;
}

CampaignBuilder &
CampaignBuilder::workloads(const std::vector<std::string> &names)
{
    _mixes.clear();
    for (const auto &n : names)
        _mixes.push_back({n});
    return *this;
}

CampaignBuilder &
CampaignBuilder::sweep(const std::string &key,
                       const std::vector<std::string> &values)
{
    if (values.empty())
        throw std::invalid_argument("sweep " + key + ": no values");
    _axes.push_back({key, values});
    return *this;
}

CampaignBuilder &
CampaignBuilder::transientRegTrials(unsigned trials, unsigned max_reg)
{
    if (trials && max_reg < 2)
        throw std::invalid_argument(
            "transientRegTrials: max_reg must be >= 2");
    _fault_trials = trials;
    _fault_max_reg = max_reg;
    return *this;
}

Campaign
CampaignBuilder::build() const
{
    Campaign c;
    c.name = _name;
    c.seed = _seed;

    const std::vector<SimMode> modes =
        _modes.empty() ? std::vector<SimMode>{_base.mode} : _modes;
    const std::vector<std::vector<std::string>> mixes =
        _mixes.empty() ? std::vector<std::vector<std::string>>{{"gcc"}}
                       : _mixes;

    // Odometer over the sweep axes (empty axes -> one grid point).
    std::vector<std::size_t> idx(_axes.size(), 0);
    bool done = false;
    while (!done) {
        for (const SimMode mode : modes) {
            for (const auto &mix : mixes) {
                SimOptions o = _base;
                o.mode = mode;
                std::string label = modeName(mode);
                label += ":";
                for (std::size_t w = 0; w < mix.size(); ++w) {
                    if (w)
                        label += "+";
                    label += mix[w];
                }
                for (std::size_t a = 0; a < _axes.size(); ++a) {
                    applySweepSetting(o, _axes[a].key,
                                      _axes[a].values[idx[a]]);
                    label += " " + _axes[a].key + "=" +
                             _axes[a].values[idx[a]];
                }

                const unsigned trials = std::max(1u, _fault_trials);
                for (unsigned t = 0; t < trials; ++t) {
                    JobSpec spec;
                    spec.id = c.jobs.size();
                    spec.workloads = mix;
                    spec.options = o;
                    spec.label = label;
                    spec.seed = mixSeed(_seed, spec.id);
                    if (_fault_trials) {
                        spec.label +=
                            " trial=" + std::to_string(t);
                        Random rng(spec.seed);
                        const std::uint64_t insts =
                            o.warmup_insts + o.measure_insts;
                        FaultRecord f;
                        f.kind = FaultRecord::Kind::TransientReg;
                        // Land inside the run: cycle count is at least
                        // the committed-instruction count (IPC <= 8 per
                        // thread but >= 1/8 of the budget in cycles).
                        f.when = insts / 12 +
                                 rng.range(std::max<std::uint64_t>(
                                     1, (insts * 2) / 3));
                        f.core = 0;
                        f.tid = static_cast<ThreadId>(rng.range(2));
                        f.reg = static_cast<RegIndex>(
                            1 + rng.range(_fault_max_reg - 1));
                        f.bit = static_cast<unsigned>(rng.range(64));
                        spec.faults.push_back(f);
                    }
                    c.jobs.push_back(std::move(spec));
                }
            }
        }
        // Advance the odometer.
        done = true;
        for (std::size_t a = _axes.size(); a-- > 0;) {
            if (++idx[a] < _axes[a].values.size()) {
                done = false;
                break;
            }
            idx[a] = 0;
        }
    }
    return c;
}

} // namespace rmt
