#include "runner/runner.hh"

#include <algorithm>
#include <chrono>
#include <optional>
#include <stdexcept>

#include "ckpt/serializer.hh"
#include "common/logging.hh"
#include "runner/thread_pool.hh"
#include "workloads/workloads.hh"

namespace rmt
{

namespace
{

bool
knownWorkload(const std::string &name)
{
    const auto &names = spec95Names();
    return std::find(names.begin(), names.end(), name) != names.end();
}

unsigned
maxLogicalThreads(SimMode mode)
{
    switch (mode) {
      case SimMode::Base:
      case SimMode::Lockstep:
      case SimMode::Crt:
        return 4;
      case SimMode::Base2:
      case SimMode::Srt:
        return 2;
    }
    return 1;
}

} // namespace

SimOptions
cappedOptions(const JobSpec &spec, const RunnerConfig &config)
{
    SimOptions o = spec.options;
    if (config.max_insts) {
        o.warmup_insts = std::min(o.warmup_insts, config.max_insts);
        o.measure_insts =
            std::min(o.measure_insts, config.max_insts - o.warmup_insts);
    }
    return o;
}

void
finalizeJobResult(const JobSpec &spec, const RunnerConfig &config,
                  Simulation &sim, const RunResult &run,
                  const SnapshotForkInfo &snap, JobResult &result)
{
    result.status = JobStatus::Ok;
    result.run = run;
    if (config.baseline) {
        result.efficiencies = config.baseline->efficiencies(run);
        result.mean_efficiency = meanEfficiency(result.efficiencies);
    }
    if (snap.enabled) {
        result.extra.emplace_back("snapshot_hit",
                                  snap.hit ? 1.0 : 0.0);
        if (snap.hit) {
            result.extra.emplace_back(
                "snapshot_cycle", static_cast<double>(snap.cycle));
            result.extra.emplace_back(
                "snapshot_saved_cycles",
                static_cast<double>(snap.cycle));
            result.extra.emplace_back("snapshot_bytes", snap.bytes);
        }
        if (snap.scratch_fallback)
            result.extra.emplace_back("snapshot_scratch_fallback", 1.0);
    }
    if (spec.post_run)
        spec.post_run(sim, run, result);
}

void
validateJobSpec(const JobSpec &spec)
{
    if (spec.workloads.empty())
        throw std::invalid_argument("job " + std::to_string(spec.id) +
                                    ": no workloads");
    for (const auto &name : spec.workloads) {
        if (!knownWorkload(name))
            throw std::invalid_argument(
                "job " + std::to_string(spec.id) +
                ": unknown workload '" + name + "'");
    }
    const unsigned logical =
        static_cast<unsigned>(spec.workloads.size());
    if (logical > maxLogicalThreads(spec.options.mode))
        throw std::invalid_argument(
            "job " + std::to_string(spec.id) + ": " +
            std::to_string(logical) + " logical threads exceed mode " +
            modeName(spec.options.mode));
    if (spec.options.recovery && spec.options.cosim)
        throw std::invalid_argument(
            "job " + std::to_string(spec.id) +
            ": recovery is incompatible with cosim");
}

JobResult
executeJob(const JobSpec &spec, const RunnerConfig &config)
{
    using Clock = std::chrono::steady_clock;

    JobResult result;
    result.id = spec.id;
    result.label = spec.label;

    const unsigned max_attempts = std::max(1u, config.max_attempts);
    const auto job_start = Clock::now();

    while (result.attempts < max_attempts) {
        ++result.attempts;
        try {
            validateJobSpec(spec);
            const SimOptions capped = cappedOptions(spec, config);
            std::optional<Simulation> sim;
            sim.emplace(spec.workloads, capped);

            // Fault trials fork from the latest snapshot strictly
            // before the first fault; the restore happens before any
            // fault is scheduled so the injector can validate that the
            // snapshot really pre-dates every injection cycle.
            SnapshotForkInfo snap;
            snap.enabled = config.snapshots && capped.snapshot_every &&
                           !spec.faults.empty();
            if (snap.enabled) {
                Cycle first_fault = spec.faults.front().when;
                for (const FaultRecord &f : spec.faults)
                    first_fault = std::min(first_fault, f.when);
                const auto set =
                    config.snapshots->snapshots(spec.workloads, capped);
                if (const CachedSnapshot *cached =
                        SnapshotCache::latestBefore(*set, first_fault)) {
                    try {
                        sim->restoreSnapshotBuffer(*cached->image);
                        snap.hit = true;
                        snap.cycle = cached->cycle;
                        snap.bytes =
                            static_cast<double>(cached->image->size());
                    } catch (const SnapshotError &e) {
                        // Corrupted/mismatched cached image.  restore
                        // validates the whole image before touching any
                        // machine state, so the simulation is still
                        // pristine — log, evict the bad set, and run
                        // the prefix from scratch.
                        warn("job %llu: cached snapshot rejected (%s); "
                             "falling back to a from-scratch run",
                             static_cast<unsigned long long>(spec.id),
                             e.what());
                        config.snapshots->invalidate(spec.workloads,
                                                     capped);
                        sim.emplace(spec.workloads, capped);
                        snap.scratch_fallback = true;
                    }
                }
            }

            try {
                for (const FaultRecord &f : spec.faults)
                    sim->faultInjector().schedule(f);
            } catch (const SnapshotOrderError &) {
                // The chosen snapshot post-dates a fault's activation
                // cycle (a strike before the first barrier, or a stale
                // cache entry): the trial is still runnable, just not
                // from this snapshot.  Rebuild fresh and run the whole
                // prefix from scratch.
                sim.emplace(spec.workloads, capped);
                snap.hit = false;
                snap.cycle = 0;
                snap.bytes = 0;
                snap.scratch_fallback = true;
                for (const FaultRecord &f : spec.faults)
                    sim->faultInjector().schedule(f);
            }
            const RunResult run = sim->run();

            result.wall_seconds =
                std::chrono::duration<double>(Clock::now() - job_start)
                    .count();
            if (config.timeout_seconds > 0 &&
                result.wall_seconds > config.timeout_seconds) {
                result.status = JobStatus::Failed;
                result.timed_out = true;
                result.error = "exceeded timeout of " +
                               std::to_string(config.timeout_seconds) +
                               " s";
                return result;
            }

            finalizeJobResult(spec, config, *sim, run, snap, result);
            return result;
        } catch (const std::exception &e) {
            result.status = JobStatus::Failed;
            result.error = e.what();
        } catch (...) {
            result.status = JobStatus::Failed;
            result.error = "unknown exception";
        }
    }
    result.wall_seconds =
        std::chrono::duration<double>(Clock::now() - job_start).count();
    return result;
}

void
attachFaultOracle(JobSpec &spec, const FaultOracle *oracle)
{
    const FaultRecord fault =
        spec.faults.empty() ? FaultRecord{} : spec.faults.front();
    auto prev = std::move(spec.post_run);
    spec.post_run = [oracle, fault, prev](Simulation &sim,
                                          const RunResult &run,
                                          JobResult &res) {
        if (prev)
            prev(sim, run, res);
        const FaultTrialReport report = oracle->classify(sim, run, fault);
        res.has_verdict = true;
        res.verdict = report.verdict;
        res.detection_latency =
            report.latency_valid
                ? static_cast<double>(report.detection_latency)
                : -1;
    };
}

std::vector<JobResult>
runCampaignJobs(const std::vector<JobSpec> &jobs,
                const RunnerConfig &config)
{
    std::vector<JobResult> results(jobs.size());

    ThreadPool pool(config.jobs);
    for (std::size_t at = 0; at < jobs.size(); ++at) {
        const JobSpec &spec = jobs[at];
        pool.submit([&spec, &config, &results, at] {
            if (config.stop &&
                config.stop->load(std::memory_order_relaxed))
                return;     // draining: started jobs finish, no new ones
            JobResult r = executeJob(spec, config);
            if (config.sink)
                config.sink->record(spec, r);
            // Slots are disjoint per position: no lock needed.
            results[at] = std::move(r);
        });
    }
    pool.wait();
    return results;
}

std::vector<JobResult>
runCampaign(const Campaign &campaign, const RunnerConfig &config)
{
    if (config.sink)
        config.sink->begin(campaign);
    // Campaign job ids are dense 0..n-1 in build order, so position
    // indexing here doubles as id indexing.
    std::vector<JobResult> results =
        runCampaignJobs(campaign.jobs, config);
    if (config.sink)
        config.sink->end();
    return results;
}

} // namespace rmt
