/**
 * @file
 * Streaming result output for campaign runs.
 *
 * JsonlSink emits one self-describing JSON object per completed job to
 * a std::ostream (one per line — the .jsonl convention) plus an
 * optional progress line on stderr.  All entry points are
 * mutex-protected; workers call record() concurrently.
 *
 * By default lines are emitted in job-id order: out-of-order
 * completions are buffered and flushed as soon as the next id
 * arrives, so `-j 8` and `-j 1` produce byte-identical files (modulo
 * wall-time fields, which can be suppressed with include_timing =
 * false for diffable output).
 */

#ifndef RMTSIM_RUNNER_RESULT_SINK_HH
#define RMTSIM_RUNNER_RESULT_SINK_HH

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>

#include "common/json.hh"
#include "runner/job.hh"

namespace rmt
{

struct Campaign;

/**
 * Stable fingerprint of a SimOptions (FNV-1a over the canonical
 * serialisation): two jobs share a fingerprint iff they run the same
 * configuration, which is how downstream analysis groups sweep cells.
 */
std::string optionsFingerprint(const SimOptions &options);

/** Canonical JSON object for the option fields a campaign can vary. */
std::string optionsJson(const SimOptions &options);

/** One JSON object (no trailing newline) describing a finished job. */
std::string resultJson(const JobSpec &spec, const JobResult &result,
                       bool include_timing);

class ResultSink
{
  public:
    virtual ~ResultSink() = default;

    virtual void begin(const Campaign &campaign) { (void)campaign; }
    virtual void record(const JobSpec &spec, const JobResult &result) = 0;
    virtual void end() {}
};

struct JsonlSinkOptions
{
    bool ordered = true;        ///< emit in job-id order
    bool include_timing = true; ///< wall_ms field
    bool progress = true;       ///< progress line on stderr

    /**
     * Flush the stream after every emitted line.  Fork-based executors
     * set this so (a) no buffered half-line can be duplicated into a
     * child's address space at fork() time and (b) a campaign killed
     * mid-run leaves only whole lines behind, never a torn record.
     */
    bool flush_each = false;

    /**
     * When non-empty, end() fsync()s this path (the file the stream
     * writes to) after the final flush, so a completed campaign's
     * records survive a machine crash.  POSIX only; ignored elsewhere.
     */
    std::string fsync_path;
};

class JsonlSink : public ResultSink
{
  public:
    using Options = JsonlSinkOptions;

    explicit JsonlSink(std::ostream &out, Options options = Options());

    void begin(const Campaign &campaign) override;
    void record(const JobSpec &spec, const JobResult &result) override;
    void end() override;

    std::uint64_t recorded() const;
    std::uint64_t failures() const;

  private:
    void flushReady();      // caller holds mu

    std::ostream &out;
    Options opts;
    mutable std::mutex mu;
    std::map<std::uint64_t, std::string> pending;   // ordered mode
    std::uint64_t next_id = 0;
    std::uint64_t total = 0;
    std::uint64_t done = 0;
    std::uint64_t failed = 0;
    std::chrono::steady_clock::time_point started;  ///< set by begin()
};

} // namespace rmt

#endif // RMTSIM_RUNNER_RESULT_SINK_HH
