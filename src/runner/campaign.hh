/**
 * @file
 * Campaign description and cartesian-sweep builders.
 *
 * A Campaign is a flat, ordered list of JobSpecs.  CampaignBuilder
 * expands the cross product
 *
 *     modes x workload mixes x sweep axes x fault trials
 *
 * into that list, assigning dense job ids in grid order so results can
 * be reassembled deterministically regardless of which worker finishes
 * first.  Sweep axes are named strings ("slack=0,32,64") so the batch
 * CLI can drive the same code path as C++ callers.
 */

#ifndef RMTSIM_RUNNER_CAMPAIGN_HH
#define RMTSIM_RUNNER_CAMPAIGN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "runner/job.hh"
#include "sim/simulator.hh"

namespace rmt
{

struct Campaign
{
    std::string name = "campaign";
    std::uint64_t seed = 1;
    std::vector<JobSpec> jobs;
};

/** Printable name of a mode ("srt", "crt", ...). */
const char *modeName(SimMode mode);

/** Parse a mode name; throws std::invalid_argument on unknown names. */
SimMode parseMode(const std::string &name);

/**
 * Apply one named sweep setting to @p options.  Known keys:
 *
 *   slack, checker, storeq, lvq, lpq, insts, warmup, rob, iq,
 *   ptsq, nosc, psr, ecc, frontend (lpq|boq|sharedlp)
 *
 * Numeric keys parse the value as an integer; boolean keys accept
 * 0/1.  Throws std::invalid_argument on unknown keys or bad values.
 */
void applySweepSetting(SimOptions &options, const std::string &key,
                       const std::string &value);

/** One sweep axis: a key and the values it takes. */
struct SweepAxis
{
    std::string key;
    std::vector<std::string> values;
};

class CampaignBuilder
{
  public:
    explicit CampaignBuilder(std::string name = "campaign",
                             std::uint64_t seed = 1);

    /** Options shared by every job (budgets, machine parameters). */
    CampaignBuilder &base(const SimOptions &options);

    /** Modes to evaluate (default: just the base() mode). */
    CampaignBuilder &modes(const std::vector<SimMode> &modes);

    /** Workload mixes; each inner vector is one logical-thread set. */
    CampaignBuilder &mixes(
        const std::vector<std::vector<std::string>> &mixes);

    /** Convenience: one single-workload mix per name. */
    CampaignBuilder &workloads(const std::vector<std::string> &names);

    /** Add one cartesian sweep axis (may be called repeatedly). */
    CampaignBuilder &sweep(const std::string &key,
                           const std::vector<std::string> &values);

    /**
     * Per grid point, add @p trials jobs with one deterministic
     * transient register strike each (random cycle / victim copy /
     * register / bit, derived from the campaign seed and trial index —
     * the bench_fault_coverage campaign shape).  @p max_reg bounds the
     * victim register index.
     */
    CampaignBuilder &transientRegTrials(unsigned trials,
                                        unsigned max_reg);

    /** Expand the cross product into a Campaign. */
    Campaign build() const;

  private:
    std::string _name;
    std::uint64_t _seed;
    SimOptions _base;
    std::vector<SimMode> _modes;
    std::vector<std::vector<std::string>> _mixes;
    std::vector<SweepAxis> _axes;
    unsigned _fault_trials = 0;
    unsigned _fault_max_reg = 0;
};

} // namespace rmt

#endif // RMTSIM_RUNNER_CAMPAIGN_HH
