/**
 * @file
 * Unit of work for the campaign runner: one fully-specified simulation
 * (workload mix + options + optional scheduled faults) and its outcome.
 *
 * A JobSpec is self-contained and immutable once a campaign is built,
 * so jobs can execute on any worker thread in any order and still
 * produce identical results (each job constructs its own Simulation;
 * nothing is shared between jobs except the read-only spec).
 */

#ifndef RMTSIM_RUNNER_JOB_HH
#define RMTSIM_RUNNER_JOB_HH

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "rmt/fault_injector.hh"
#include "rmt/fault_oracle.hh"
#include "sim/simulator.hh"

namespace rmt
{

struct JobResult;

struct JobSpec
{
    std::uint64_t id = 0;           ///< dense index within the campaign
    std::string label;              ///< human-readable configuration tag
    std::vector<std::string> workloads;
    SimOptions options;

    /** Faults scheduled on the injector before the run (fault
     *  campaigns).  Generated deterministically at campaign-build time
     *  from @ref seed, never from run-time state, so a grid point's
     *  faults do not depend on worker scheduling. */
    std::vector<FaultRecord> faults;

    /** Deterministic per-job seed (recorded in results; used by the
     *  sweep builders to derive fault parameters). */
    std::uint64_t seed = 0;

    /**
     * Optional per-job evaluation hook, called on the worker thread
     * after a successful run while the Simulation is still alive.
     * Fault-coverage campaigns use it to compare the final memory
     * image against a golden image and to read detection latencies.
     * Results go into JobResult::extra so sinks can serialise them.
     */
    std::function<void(Simulation &, const RunResult &, JobResult &)>
        post_run;
};

enum class JobStatus : std::uint8_t
{
    Ok,
    Failed,     ///< exception (after retry) or timeout
};

struct JobResult
{
    std::uint64_t id = 0;
    std::string label;
    JobStatus status = JobStatus::Failed;
    std::string error;              ///< empty unless Failed
    unsigned attempts = 0;
    bool timed_out = false;
    /** Failed every crash-retry attempt (abnormal child death, wire
     *  corruption, watchdog) and was set aside so the campaign could
     *  finish; the batch exit code reports the run as degraded. */
    bool quarantined = false;
    double wall_seconds = 0;

    RunResult run;                  ///< valid when status == Ok

    /** Mean SMT-efficiency vs the campaign baseline cache; negative
     *  when no baseline was requested. */
    double mean_efficiency = -1;
    std::vector<double> efficiencies;   ///< per logical thread

    /** Extra named metrics from JobSpec::post_run (kept ordered so
     *  serialised output is deterministic). */
    std::vector<std::pair<std::string, double>> extra;

    /** Fault-oracle classification (attachFaultOracle campaigns). */
    bool has_verdict = false;
    FaultVerdict verdict = FaultVerdict::Masked;
    double detection_latency = -1;  ///< cycles; negative = no detection

    bool ok() const { return status == JobStatus::Ok; }
};

} // namespace rmt

#endif // RMTSIM_RUNNER_JOB_HH
