/**
 * @file
 * Write-ahead result journal for crash-resilient campaigns.
 *
 * A million-trial campaign must not lose every finished trial to one
 * SIGKILL.  The journal is an append-only sidecar (`<out>.journal`)
 * that records each completed JobResult *before* the ordered JSONL
 * sink sees it:
 *
 *     header:  magic "RMTJRNL\0" | u32 version |
 *              u64 campaign fingerprint
 *     frame:   u32 magic "RMTJ" | u32 payload length |
 *              payload (wire::encodeJobResult) | u32 CRC32(payload)
 *
 * Frames are buffered and fsync()ed in batches, so a crash loses at
 * most the last unsynced batch — those trials simply re-run on resume.
 * `rmtsim_batch --resume` replays the journal, skips every job whose
 * result is already recorded, and rebuilds the final JSONL from the
 * replayed + freshly-run results, byte-identical to an uninterrupted
 * run.
 *
 * The header fingerprint hashes every JobSpec in the campaign (ids,
 * seeds, workloads, the PR-5 canonical options pre-image, and the
 * scheduled faults), so a journal can only ever resume the exact
 * campaign that wrote it — the verify-on-resume gate.
 *
 * Replay is deliberately forgiving at the tail and strict everywhere
 * else: a frame cut mid-write (the crash) marks the journal torn and
 * replay keeps everything before it; a CRC or magic failure *inside*
 * the file marks it corrupt and replay keeps only the frames before
 * the damage.  Either way the writer truncates back to the last valid
 * frame boundary before appending, so a journal never accretes
 * unreadable bytes.
 */

#ifndef RMTSIM_RUNNER_JOURNAL_HH
#define RMTSIM_RUNNER_JOURNAL_HH

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "runner/result_sink.hh"

namespace rmt
{

/** Unusable journal: unreadable file, bad header, version or campaign
 *  fingerprint mismatch.  (Torn tails and mid-file corruption are NOT
 *  errors — replay degrades to the valid prefix instead.) */
struct JournalError : std::runtime_error
{
    explicit JournalError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/** Journal format version. */
constexpr std::uint32_t journalVersion = 1;

/**
 * Stable identity of a campaign: FNV-1a-64 over every job's id, seed,
 * label, workload mix, canonical options JSON (the PR-5 fingerprint
 * pre-image) and scheduled faults.  Two invocations of rmtsim_batch
 * with the same grid arguments produce the same fingerprint; any
 * change to the grid produces a different one.
 */
std::uint64_t campaignFingerprintU64(const std::vector<JobSpec> &jobs);

/** Everything replay recovered from a journal. */
struct JournalReplay
{
    /** Recovered results, keyed by job id (later frames win). */
    std::map<std::uint64_t, JobResult> results;

    /** Offset one past the last valid frame; the resume writer
     *  truncates the file here before appending. */
    std::uint64_t valid_bytes = 0;

    /** Last frame cut mid-write (the expected crash signature). */
    bool torn_tail = false;

    /** A frame *inside* the file failed its magic/CRC/decode check;
     *  everything at and after it was dropped. */
    bool corrupt = false;

    /** Human-readable account of what was dropped, "" when clean. */
    std::string note;
};

/**
 * Replay @p path.  Throws JournalError when the file cannot be read,
 * the header is not a journal, or the campaign fingerprint differs
 * from @p expect_fingerprint.  Truncation and corruption degrade (see
 * JournalReplay) rather than throw.
 */
JournalReplay replayJournal(const std::string &path,
                            std::uint64_t expect_fingerprint);

struct JournalOptions
{
    /** fsync after this many appended records (and on flush()).
     *  Batching bounds the fsync cost on million-trial campaigns;
     *  a crash re-runs at most one batch. */
    unsigned sync_every = 32;
};

class JournalWriter
{
  public:
    using Options = JournalOptions;

    /** Start a fresh journal at @p path (truncates), stamping
     *  @p fingerprint into the header.  Throws JournalError if the
     *  file cannot be created. */
    JournalWriter(const std::string &path, std::uint64_t fingerprint,
                  Options options = Options());

    /** Reopen @p path for resume: truncate to @p replay.valid_bytes
     *  (dropping any torn/corrupt tail) and append after it. */
    JournalWriter(const std::string &path, const JournalReplay &replay,
                  Options options = Options());

    ~JournalWriter();

    JournalWriter(const JournalWriter &) = delete;
    JournalWriter &operator=(const JournalWriter &) = delete;

    /** Append one result frame (buffered; synced per Options). */
    void append(const JobResult &result);

    /** Write out the buffer and fsync. */
    void flush();

    /** flush() and close the descriptor; append() afterwards throws. */
    void close();

    /** Records appended through this writer (excludes replayed ones). */
    std::uint64_t appended() const;

    const std::string &path() const { return _path; }

  private:
    void open(std::uint64_t truncate_to, const std::string &header);
    void sync();                    // caller holds mu

    std::string _path;
    Options opts;
    mutable std::mutex mu;
    int fd = -1;                    ///< POSIX descriptor (-1 = closed)
    std::string buffer;             ///< frames not yet written
    unsigned unsynced = 0;          ///< records since the last sync
    std::uint64_t records = 0;
};

/**
 * ResultSink decorator implementing the write-ahead order: each record
 * is appended to the journal first, then forwarded to the inner sink.
 * A null journal degrades to pure pass-through, so callers can wire
 * the sink unconditionally.  end() flushes the journal before the
 * inner sink finalises.
 */
class JournalingSink : public ResultSink
{
  public:
    JournalingSink(JournalWriter *journal, ResultSink *inner)
        : journal(journal), inner(inner)
    {
    }

    void begin(const Campaign &campaign) override
    {
        if (inner)
            inner->begin(campaign);
    }

    void record(const JobSpec &spec, const JobResult &result) override
    {
        if (journal)
            journal->append(result);
        if (inner)
            inner->record(spec, result);
    }

    void end() override
    {
        if (journal)
            journal->flush();
        if (inner)
            inner->end();
    }

  private:
    JournalWriter *journal;
    ResultSink *inner;
};

} // namespace rmt

#endif // RMTSIM_RUNNER_JOURNAL_HH
