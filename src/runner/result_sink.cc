#include "runner/result_sink.hh"

#include <cinttypes>
#include <cstdio>
#include <sstream>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

#include "common/fingerprint.hh"
#include "runner/campaign.hh"

namespace rmt
{

namespace
{

// jsonEscape comes from common/json.hh, as does the round-trip
// double format used everywhere in this file.
std::string
num(double v)
{
    return jsonNum(v);
}

/**
 * Remove the wall-clock "host" member from an embedded stats blob.
 * The blob is built inside the run, where the sink's include_timing
 * choice is unknown; suppressing it here keeps --no-timing output
 * byte-identical across runs and across -j levels.  The member is a
 * flat object, so scanning to the next '}' is sufficient.
 */
std::string
stripHostMember(std::string stats)
{
    const auto pos = stats.find(",\"host\":{");
    if (pos == std::string::npos)
        return stats;
    const auto end = stats.find('}', pos);
    if (end == std::string::npos)
        return stats;
    stats.erase(pos, end - pos + 1);
    return stats;
}

} // namespace

std::string
optionsJson(const SimOptions &o)
{
    // The sim layer owns the canonical form: snapshots and baseline
    // caches key on the same pre-image the campaign records carry.
    return optionsCanonicalJson(o);
}

std::string
optionsFingerprint(const SimOptions &o)
{
    return fingerprintHex(optionsFingerprintU64(o));
}

std::string
resultJson(const JobSpec &spec, const JobResult &r, bool include_timing)
{
    std::ostringstream os;
    os << "{\"id\":" << spec.id
       << ",\"label\":\"" << jsonEscape(spec.label) << "\""
       << ",\"seed\":" << spec.seed
       << ",\"workloads\":[";
    for (std::size_t i = 0; i < spec.workloads.size(); ++i) {
        if (i)
            os << ",";
        os << "\"" << jsonEscape(spec.workloads[i]) << "\"";
    }
    // Serialize the options once; the fingerprint hashes the same
    // canonical string.
    const std::string canon = optionsJson(spec.options);
    os << "]"
       << ",\"options\":" << canon
       << ",\"fingerprint\":\"" << optionsFingerprint(spec.options) << "\""
       << ",\"status\":\"" << (r.ok() ? "ok" : "failed") << "\""
       << ",\"attempts\":" << r.attempts;
    if (!spec.faults.empty()) {
        os << ",\"faults\":[";
        for (std::size_t i = 0; i < spec.faults.size(); ++i) {
            const FaultRecord &f = spec.faults[i];
            if (i)
                os << ",";
            os << "{\"kind\":\"" << faultKindName(f.kind) << "\""
               << ",\"when\":" << f.when
               << ",\"core\":" << unsigned(f.core)
               << ",\"tid\":" << unsigned(f.tid)
               << ",\"reg\":" << unsigned(f.reg)
               << ",\"bit\":" << f.bit
               << ",\"fu\":" << f.fuIndex
               << ",\"pair\":" << unsigned(f.pairLogical) << "}";
        }
        os << "]";
    }
    if (!r.ok()) {
        os << ",\"error\":\"" << jsonEscape(r.error) << "\""
           << ",\"timed_out\":" << (r.timed_out ? "true" : "false");
        // Only when set: healthy campaigns (and the forked-vs-scratch
        // byte-diff gate) never see the key.
        if (r.quarantined)
            os << ",\"quarantined\":true";
    }
    if (include_timing) {
        os << ",\"wall_ms\":" << num(r.wall_seconds * 1e3);
        if (r.ok())
            os << ",\"host\":" << r.run.host.json();
    }
    if (r.ok()) {
        const RunResult &run = r.run;
        os << ",\"completed\":" << (run.completed ? "true" : "false")
           << ",\"outcome\":\"" << outcomeName(run.outcome) << "\""
           << ",\"total_cycles\":" << run.total_cycles
           << ",\"threads\":[";
        for (std::size_t i = 0; i < run.threads.size(); ++i) {
            const ThreadResult &t = run.threads[i];
            if (i)
                os << ",";
            os << "{\"workload\":\"" << jsonEscape(t.workload) << "\""
               << ",\"ipc\":" << num(t.ipc)
               << ",\"committed\":" << t.committed
               << ",\"cycles\":" << t.cycles << "}";
        }
        os << "]"
           << ",\"detections\":" << run.detections
           << ",\"recoveries\":" << run.recoveries
           << ",\"store_comparisons\":" << run.store_comparisons
           << ",\"store_mismatches\":" << run.store_mismatches
           << ",\"fu_pairs\":" << run.fu_pairs
           << ",\"fu_same_unit\":" << run.fu_same_unit
           << ",\"sq_full_stalls\":" << run.sq_full_stalls
           << ",\"lvq_full_stalls\":" << run.lvq_full_stalls
           << ",\"branch_mispredicts\":" << run.branch_mispredicts
           << ",\"line_mispredicts\":" << run.line_mispredicts;
        if (r.has_verdict) {
            os << ",\"verdict\":\"" << verdictName(r.verdict) << "\"";
            if (r.detection_latency >= 0) {
                os << ",\"detection_latency\":"
                   << num(r.detection_latency);
            }
        }
        if (r.mean_efficiency >= 0) {
            os << ",\"mean_efficiency\":" << num(r.mean_efficiency)
               << ",\"efficiencies\":[";
            for (std::size_t i = 0; i < r.efficiencies.size(); ++i) {
                if (i)
                    os << ",";
                os << num(r.efficiencies[i]);
            }
            os << "]";
        }
        if (!run.stats_json.empty()) {
            os << ",\"stats\":"
               << (include_timing ? run.stats_json
                                  : stripHostMember(run.stats_json));
        }
    }
    if (!r.extra.empty()) {
        os << ",\"extra\":{";
        for (std::size_t i = 0; i < r.extra.size(); ++i) {
            if (i)
                os << ",";
            os << "\"" << jsonEscape(r.extra[i].first)
               << "\":" << num(r.extra[i].second);
        }
        os << "}";
    }
    os << "}";
    return os.str();
}

JsonlSink::JsonlSink(std::ostream &out, Options options)
    : out(out), opts(options), started(std::chrono::steady_clock::now())
{
}

void
JsonlSink::begin(const Campaign &campaign)
{
    std::lock_guard<std::mutex> lock(mu);
    total = campaign.jobs.size();
    done = 0;
    failed = 0;
    next_id = 0;
    started = std::chrono::steady_clock::now();
}

void
JsonlSink::record(const JobSpec &spec, const JobResult &result)
{
    const std::string line =
        resultJson(spec, result, opts.include_timing);

    std::lock_guard<std::mutex> lock(mu);
    ++done;
    if (!result.ok())
        ++failed;
    if (opts.ordered) {
        pending.emplace(spec.id, line);
        flushReady();
    } else {
        out << line << "\n";
    }
    if (opts.flush_each)
        out.flush();
    if (opts.progress) {
        // Heartbeat: jobs done/total, elapsed wall time, and a naive
        // remaining-time estimate from the mean pace so far.
        const double elapsed =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - started)
                .count();
        char eta[32] = "";
        // Both guards matter: done == 0 would divide by zero, and a
        // first record landing within the clock tick (elapsed == 0)
        // would project a meaningless zero ETA.
        if (done > 0 && done < total && elapsed > 0) {
            std::snprintf(eta, sizeof(eta), " eta %.0fs",
                          elapsed / done * (total - done));
        }
        char count[48];
        if (total) {
            std::snprintf(count, sizeof(count),
                          "[%" PRIu64 "/%" PRIu64 "]", done, total);
        } else {
            // Adaptive campaigns (--stratify) have no fixed job count.
            std::snprintf(count, sizeof(count), "[%" PRIu64 "]", done);
        }
        std::fprintf(stderr, "\r%s %s%s (%.0f ms) %.1fs%s%s", count,
                     result.ok() ? "" : "FAILED ", spec.label.c_str(),
                     result.wall_seconds * 1e3, elapsed, eta,
                     done == total ? "\n" : "");
        std::fflush(stderr);
    }
}

void
JsonlSink::flushReady()
{
    for (auto it = pending.begin();
         it != pending.end() && it->first == next_id;
         it = pending.erase(it), ++next_id) {
        out << it->second << "\n";
    }
}

void
JsonlSink::end()
{
    std::lock_guard<std::mutex> lock(mu);
    // Failed-and-skipped ids would wedge the ordered buffer; drain
    // whatever is left in id order.
    for (auto &[id, line] : pending)
        out << line << "\n";
    pending.clear();
    out.flush();

#if defined(__unix__) || defined(__APPLE__)
    if (!opts.fsync_path.empty()) {
        const int fd = ::open(opts.fsync_path.c_str(), O_WRONLY);
        if (fd >= 0) {
            ::fsync(fd);
            ::close(fd);
        }
    }
#endif
}

} // namespace rmt
