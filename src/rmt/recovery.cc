#include "rmt/recovery.hh"

#include "common/logging.hh"

namespace rmt
{

RecoveryManager::RecoveryManager(const RecoveryParams &params,
                                 Addr entry_pc, std::string name)
    : _params(params),
      statGroup(std::move(name)),
      statCheckpoints(statGroup, "checkpoints",
                      "checkpoint candidates taken"),
      statPromotions(statGroup, "promotions",
                     "candidates that became restorable"),
      statRecoveries(statGroup, "recoveries", "rollbacks performed"),
      statDiscardedInsts(statGroup, "discarded_insts",
                         "committed work re-executed after rollback")
{
    // The initial state is trivially verified: checkpoint zero.
    activeCkpt.next_pc = entry_pc;
}

void
RecoveryManager::preStore(const DataMemory &mem, Addr addr, unsigned size)
{
    for (unsigned i = 0; i < size; ++i) {
        if (mem.inBounds(addr + i, 1)) {
            undoLog.push_back(
                UndoEntry{addr + i,
                          static_cast<std::uint8_t>(mem.read(addr + i, 1))});
        }
    }
}

void
RecoveryManager::noteCommit(
    const std::array<std::uint64_t, numArchRegs> &regs, Addr next_pc,
    std::uint64_t committed, std::uint64_t load_tag,
    std::uint64_t store_idx)
{
    if (committed < lastCheckpointAt + _params.interval_insts)
        return;
    lastCheckpointAt = committed;
    RecoveryCheckpoint ckpt;
    ckpt.regs = regs;
    ckpt.next_pc = next_pc;
    ckpt.committed = committed;
    ckpt.load_tag = load_tag;
    ckpt.store_idx = store_idx;
    ckpt.undo_offset = undoLog.size();
    candidates.push_back(ckpt);
    ++statCheckpoints;
    promoteCandidates();
}

void
RecoveryManager::noteVerified(std::uint64_t store_idx)
{
    verifiedStores = store_idx + 1;
    promoteCandidates();
}

void
RecoveryManager::promoteCandidates()
{
    // A candidate is restorable once all stores older than it are
    // verified: detection of any fault younger than the candidate can
    // then always rewind to it.
    while (!candidates.empty() &&
           verifiedStores >= candidates.front().store_idx) {
        // The promoted checkpoint supersedes the old one; its undo-log
        // prefix is no longer needed.
        RecoveryCheckpoint ckpt = candidates.front();
        candidates.pop_front();
        const std::size_t drop = ckpt.undo_offset;
        undoLog.erase(undoLog.begin(),
                      undoLog.begin() + static_cast<long>(drop));
        ckpt.undo_offset = 0;
        for (auto &cand : candidates)
            cand.undo_offset -= drop;
        activeCkpt = ckpt;
        ++statPromotions;
    }
}

bool
RecoveryManager::canRecover() const
{
    return statRecoveries.value() < _params.max_recoveries;
}

std::uint64_t
RecoveryManager::rollback(DataMemory &mem, std::uint64_t committed_now)
{
    if (!canRecover())
        panic("rollback called on an exhausted RecoveryManager");

    // Undo every store since the active checkpoint, newest first.
    for (auto it = undoLog.rbegin(); it != undoLog.rend(); ++it)
        mem.write(it->addr, 1, it->byte);
    undoLog.clear();
    candidates.clear();

    ++statRecoveries;
    const std::uint64_t discarded =
        committed_now > activeCkpt.committed
            ? committed_now - activeCkpt.committed
            : 0;
    statDiscardedInsts += discarded;
    lastCheckpointAt = activeCkpt.committed;
    return discarded;
}

} // namespace rmt
