#include "rmt/fault_injector.hh"

#include "cpu/smt_cpu.hh"

namespace rmt
{

void
FaultInjector::tick(SmtCpu &cpu, Cycle now)
{
    for (auto &fault : faults) {
        if (fault.applied || fault.core != cpu.coreId() ||
            now < fault.when) {
            continue;
        }
        switch (fault.kind) {
          case FaultRecord::Kind::TransientReg:
            cpu.injectRegBitFlip(fault.tid, fault.reg, fault.bit);
            fault.applied = true;
            ++applied;
            break;
          case FaultRecord::Kind::TransientLvq:
            if (RedundantPair *pair = cpu.pairOf(fault.tid)) {
                // Strike retries until an entry is resident.
                if (pair->lvq.injectDataBitFlip(rng)) {
                    fault.applied = true;
                    ++applied;
                }
            }
            break;
          case FaultRecord::Kind::PermanentFu:
            // Activation only; the effect is applied by
            // filterFuResult() on every victim-unit execution.
            fault.applied = true;
            break;
        }
    }
}

std::uint64_t
FaultInjector::filterFuResult(CoreId core, unsigned fu_index, Cycle now,
                              std::uint64_t value) const
{
    for (const auto &fault : faults) {
        if (fault.kind == FaultRecord::Kind::PermanentFu &&
            fault.core == core && fault.fuIndex == fu_index &&
            now >= fault.when) {
            value ^= fault.mask;
        }
    }
    return value;
}

bool
FaultInjector::hasPermanentFault(CoreId core) const
{
    for (const auto &fault : faults) {
        if (fault.kind == FaultRecord::Kind::PermanentFu &&
            fault.core == core) {
            return true;
        }
    }
    return false;
}

} // namespace rmt
