#include "rmt/fault_injector.hh"

#include <sstream>
#include <stdexcept>

#include "cpu/smt_cpu.hh"

namespace rmt
{

const char *
faultKindName(FaultRecord::Kind kind)
{
    switch (kind) {
      case FaultRecord::Kind::TransientReg:         return "reg";
      case FaultRecord::Kind::TransientLvq:         return "lvq";
      case FaultRecord::Kind::PermanentFu:          return "fu";
      case FaultRecord::Kind::TransientSqData:      return "sqd";
      case FaultRecord::Kind::TransientSqAddr:      return "sqa";
      case FaultRecord::Kind::TransientLpq:         return "lpq";
      case FaultRecord::Kind::TransientBoq:         return "boq";
      case FaultRecord::Kind::TransientPc:          return "pc";
      case FaultRecord::Kind::TransientDecode:      return "dec";
      case FaultRecord::Kind::TransientMergeBuffer: return "mb";
    }
    return "?";
}

namespace
{

[[noreturn]] void
badSpec(const std::string &spec, const char *why)
{
    throw std::invalid_argument("fault spec '" + spec + "': " + why);
}

std::vector<std::uint64_t>
splitFields(const std::string &spec, std::string &kind)
{
    std::vector<std::uint64_t> fields;
    std::stringstream ss(spec);
    std::string tok;
    bool first = true;
    while (std::getline(ss, tok, ':')) {
        if (first) {
            kind = tok;
            first = false;
            continue;
        }
        if (tok.empty())
            badSpec(spec, "empty field");
        std::size_t pos = 0;
        std::uint64_t v = 0;
        try {
            v = std::stoull(tok, &pos);
        } catch (const std::exception &) {
            badSpec(spec, "non-numeric field");
        }
        if (pos != tok.size())
            badSpec(spec, "non-numeric field");
        fields.push_back(v);
    }
    if (first)
        badSpec(spec, "missing kind");
    return fields;
}

} // namespace

FaultRecord
parseFaultSpec(const std::string &spec)
{
    std::string kind;
    const std::vector<std::uint64_t> f = splitFields(spec, kind);
    FaultRecord fault;

    auto need = [&](std::size_t n) {
        if (f.size() != n)
            badSpec(spec, "wrong field count for this kind");
    };

    if (kind == "reg") {
        fault.kind = FaultRecord::Kind::TransientReg;
        if (f.size() == 4) {        // legacy: cycle:tid:reg:bit
            fault.when = f[0];
            fault.tid = static_cast<ThreadId>(f[1]);
            fault.reg = static_cast<RegIndex>(f[2]);
            fault.bit = static_cast<unsigned>(f[3]);
        } else {                    // cycle:core:tid:reg:bit
            need(5);
            fault.when = f[0];
            fault.core = static_cast<CoreId>(f[1]);
            fault.tid = static_cast<ThreadId>(f[2]);
            fault.reg = static_cast<RegIndex>(f[3]);
            fault.bit = static_cast<unsigned>(f[4]);
        }
    } else if (kind == "lvq") {
        fault.kind = FaultRecord::Kind::TransientLvq;
        if (f.size() == 2) {        // legacy: cycle:tid
            fault.when = f[0];
            fault.tid = static_cast<ThreadId>(f[1]);
        } else {                    // cycle:core:tid
            need(3);
            fault.when = f[0];
            fault.core = static_cast<CoreId>(f[1]);
            fault.tid = static_cast<ThreadId>(f[2]);
        }
    } else if (kind == "fu") {
        fault.kind = FaultRecord::Kind::PermanentFu;
        if (f.size() == 3) {        // legacy: cycle:unit:maskbit
            fault.when = f[0];
            fault.fuIndex = static_cast<unsigned>(f[1]);
            fault.mask = std::uint64_t{1} << (f[2] % 64);
        } else {                    // cycle:core:unit:maskbit
            need(4);
            fault.when = f[0];
            fault.core = static_cast<CoreId>(f[1]);
            fault.fuIndex = static_cast<unsigned>(f[2]);
            fault.mask = std::uint64_t{1} << (f[3] % 64);
        }
    } else {
        // All remaining kinds share the cycle:core:tid:bit layout.
        if (kind == "sqd")
            fault.kind = FaultRecord::Kind::TransientSqData;
        else if (kind == "sqa")
            fault.kind = FaultRecord::Kind::TransientSqAddr;
        else if (kind == "lpq")
            fault.kind = FaultRecord::Kind::TransientLpq;
        else if (kind == "boq")
            fault.kind = FaultRecord::Kind::TransientBoq;
        else if (kind == "pc")
            fault.kind = FaultRecord::Kind::TransientPc;
        else if (kind == "dec")
            fault.kind = FaultRecord::Kind::TransientDecode;
        else if (kind == "mb")
            fault.kind = FaultRecord::Kind::TransientMergeBuffer;
        else
            badSpec(spec, "unknown kind");
        need(4);
        fault.when = f[0];
        fault.core = static_cast<CoreId>(f[1]);
        fault.tid = static_cast<ThreadId>(f[2]);
        fault.bit = static_cast<unsigned>(f[3]);
    }
    return fault;
}

void
FaultInjector::validate(const FaultRecord &fault) const
{
    auto reject = [&](const char *why) {
        std::ostringstream os;
        os << "fault " << faultKindName(fault.kind) << "@" << fault.when
           << ": " << why;
        throw std::invalid_argument(os.str());
    };

    if (fault.bit >= 64)
        reject("bit must be < 64");

    const bool uses_tid = fault.kind != FaultRecord::Kind::PermanentFu;
    const bool uses_pair =
        fault.kind == FaultRecord::Kind::TransientLvq ||
        fault.kind == FaultRecord::Kind::TransientLpq ||
        fault.kind == FaultRecord::Kind::TransientBoq;

    if (fault.kind == FaultRecord::Kind::TransientReg) {
        if (fault.reg == 0)
            reject("register 0 is hardwired to zero");
        if (fault.reg >= numArchRegs)
            reject("register index out of range");
    }
    if (fault.kind == FaultRecord::Kind::PermanentFu && fault.mask == 0)
        reject("corruption mask must be non-zero");

    if (shape.cores == 0)
        return;     // no machine attached: universal checks only

    if (fault.core >= shape.cores)
        reject("core does not exist");
    if (uses_tid && fault.tid >= shape.threads)
        reject("thread context does not exist");
    if (uses_pair && shape.pairs == 0)
        reject("kind needs a redundant pair and none exists");
    if (fault.kind == FaultRecord::Kind::TransientLvq &&
        fault.pairLogical >= shape.pairs) {
        reject("pair does not exist");
    }
    if (fault.kind == FaultRecord::Kind::PermanentFu) {
        // Global FU ids: class base (IntAlu 0, Logic 16, Mem 32, Fp 48)
        // plus half * pool_size + unit for the two halves (qbox issue).
        const unsigned cls = fault.fuIndex / 16;
        const unsigned unit = fault.fuIndex % 16;
        unsigned pool = 0;
        switch (cls) {
          case 0: pool = shape.int_units_per_half; break;
          case 1: pool = shape.logic_units_per_half; break;
          case 2: pool = shape.mem_units_per_half; break;
          case 3: pool = shape.fp_units_per_half; break;
          default: reject("functional-unit index out of range");
        }
        if (unit >= 2 * pool)
            reject("functional-unit index names no unit in its class");
    }
}

void
FaultInjector::schedule(const FaultRecord &fault)
{
    validate(fault);
    if (restoredCycle && fault.when <= restoredCycle) {
        std::ostringstream os;
        os << "fault " << faultKindName(fault.kind) << "@" << fault.when
           << ": injection cycle is not after the restored snapshot "
              "(cycle "
           << restoredCycle
           << "); fork from an earlier snapshot or run from scratch";
        throw SnapshotOrderError(os.str());
    }
    faults.push_back(fault);
}

void
FaultInjector::tick(SmtCpu &cpu, Cycle now)
{
    for (auto &fault : faults) {
        if (fault.applied || fault.core != cpu.coreId() ||
            now < fault.when) {
            continue;
        }
        switch (fault.kind) {
          case FaultRecord::Kind::TransientReg:
            cpu.injectRegBitFlip(fault.tid, fault.reg, fault.bit);
            fault.applied = true;
            ++applied;
            break;
          case FaultRecord::Kind::TransientLvq:
            if (RedundantPair *pair = cpu.pairOf(fault.tid)) {
                // Strike retries until an entry is resident.
                if (pair->lvq.injectDataBitFlip(rng)) {
                    fault.applied = true;
                    ++applied;
                }
            }
            break;
          case FaultRecord::Kind::PermanentFu:
            // Activation only; the effect is applied by
            // filterFuResult() on every victim-unit execution.
            fault.applied = true;
            break;
          case FaultRecord::Kind::TransientSqData:
            // Strike retries until an unretired data-ready entry is
            // resident (the latch has to hold a value to corrupt).
            if (cpu.injectSqBitFlip(fault.tid, fault.bit, false)) {
                fault.applied = true;
                ++applied;
            }
            break;
          case FaultRecord::Kind::TransientSqAddr:
            if (cpu.injectSqBitFlip(fault.tid, fault.bit, true)) {
                fault.applied = true;
                ++applied;
            }
            break;
          case FaultRecord::Kind::TransientLpq:
            if (RedundantPair *pair = cpu.pairOf(fault.tid)) {
                if (pair->lpq.injectAddrBitFlip(fault.bit)) {
                    fault.applied = true;
                    ++applied;
                }
            }
            break;
          case FaultRecord::Kind::TransientBoq:
            if (RedundantPair *pair = cpu.pairOf(fault.tid)) {
                if (pair->injectBoqBitFlip(fault.bit)) {
                    fault.applied = true;
                    ++applied;
                }
            }
            break;
          case FaultRecord::Kind::TransientPc:
            if (cpu.injectPcBitFlip(fault.tid, fault.bit)) {
                fault.applied = true;
                ++applied;
            }
            break;
          case FaultRecord::Kind::TransientDecode:
            if (cpu.armDecodeStrike(fault.tid, fault.bit)) {
                fault.applied = true;
                ++applied;
            }
            break;
          case FaultRecord::Kind::TransientMergeBuffer:
            if (cpu.armMergeStrike(fault.tid, fault.bit)) {
                fault.applied = true;
                ++applied;
            }
            break;
        }
    }
}

std::uint64_t
FaultInjector::filterFuResult(CoreId core, unsigned fu_index, Cycle now,
                              std::uint64_t value) const
{
    for (const auto &fault : faults) {
        if (fault.kind == FaultRecord::Kind::PermanentFu &&
            fault.core == core && fault.fuIndex == fu_index &&
            now >= fault.when) {
            value ^= fault.mask;
        }
    }
    return value;
}

bool
FaultInjector::hasPermanentFault(CoreId core) const
{
    for (const auto &fault : faults) {
        if (fault.kind == FaultRecord::Kind::PermanentFu &&
            fault.core == core) {
            return true;
        }
    }
    return false;
}

} // namespace rmt
