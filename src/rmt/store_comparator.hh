/**
 * @file
 * Store comparator (paper Section 4.2).
 *
 * Sits beside the store queue: when a trailing-thread store and its data
 * enter the (trailing) store queue, the comparator matches it against
 * the corresponding leading-thread store — same per-pair store index,
 * since both threads commit the identical store sequence — and compares
 * address and data.  On a match the leading store-queue entry is marked
 * verified and may retire to the data cache; on a mismatch a fault is
 * signalled.
 */

#ifndef RMTSIM_RMT_STORE_COMPARATOR_HH
#define RMTSIM_RMT_STORE_COMPARATOR_HH

#include <cstdint>
#include <unordered_map>

#include "common/stats.hh"
#include "common/types.hh"

namespace rmt
{

class StoreComparator
{
  public:
    explicit StoreComparator(std::string name);

    /** A trailing store's address+data entered the trailing SQ.
     *  Trailing stores execute out of order; arrival order is
     *  irrelevant because verification matches on the store index. */
    void pushTrailing(std::uint64_t store_idx, Addr addr,
                      std::uint64_t data, unsigned size,
                      Cycle available_at);

    /**
     * Attempt to verify leading store @p store_idx.
     *
     * @param mismatch out: true if the comparison failed (fault!)
     * @return true if the matching trailing store was present and the
     *         comparison was performed (entry consumed)
     */
    bool tryVerify(std::uint64_t store_idx, Addr addr, std::uint64_t data,
                   unsigned size, Cycle now, bool &mismatch);

    std::size_t pendingTrailing() const { return trailing.size(); }

    /** Drop all pending records (fault-recovery flush). */
    void clear() { trailing.clear(); }
    std::uint64_t comparisons() const { return statComparisons.value(); }
    std::uint64_t mismatches() const { return statMismatches.value(); }

    StatGroup &stats() { return statGroup; }

  private:
    struct Record
    {
        std::uint64_t idx;
        Addr addr;
        std::uint64_t data;
        unsigned size;
        Cycle availableAt;
    };

    std::unordered_map<std::uint64_t, Record> trailing;  ///< by index

    StatGroup statGroup;
    Counter statComparisons;
    Counter statMismatches;
};

} // namespace rmt

#endif // RMTSIM_RMT_STORE_COMPARATOR_HH
