/**
 * @file
 * Line Prediction Queue (paper Section 4.4).
 *
 * The SRT adaptation of the branch outcome queue to a line-predictor
 * driven front end: leading-thread retirement aggregates contiguous
 * instructions into fetch chunks; the trailing thread's fetch is driven
 * by this precise chunk stream, eliminating all trailing misfetches and
 * mispredictions.
 *
 * Reads follow the paper's two-head protocol: the *active head* advances
 * when the address driver accepts (acks) a prediction; the *recovery
 * head* advances only when the chunk's instructions were actually
 * delivered from the instruction cache.  On an I-cache miss the IBOX
 * rolls the active head back to the recovery head and the sequence is
 * reissued.
 *
 * Each chunk entry also carries the leading instructions' QBOX-half bits
 * for preferential space redundancy (Section 4.5).
 */

#ifndef RMTSIM_RMT_LPQ_HH
#define RMTSIM_RMT_LPQ_HH

#include <array>
#include <cstdint>
#include <deque>

#include "common/stats.hh"
#include "common/types.hh"

namespace rmt
{

/** One trailing-thread fetch chunk: up to 8 contiguous instructions. */
struct LpqChunk
{
    Addr start = 0;
    std::uint8_t count = 0;
    std::array<std::uint8_t, chunkSize> leadHalf{};  ///< PSR bits
    Cycle availableAt = 0;
};

class Lpq
{
  public:
    Lpq(unsigned capacity, std::string name, bool ecc = false);

    // ------------------------------------------------- write (QBOX) side
    bool full() const { return chunks.size() >= capacity; }

    /** Append a finished chunk (leading retire logic). */
    void push(const LpqChunk &chunk);

    // -------------------------------------------------- read (IBOX) side
    /** Is there an unread (active-head) chunk visible at @p now? */
    bool available(Cycle now) const;

    /** Chunk at the active head (must be available()). */
    const LpqChunk &activeChunk() const;

    /** Address driver accepted the prediction: advance the active head. */
    void ack();

    /** Instructions delivered from the I-cache: advance recovery head. */
    void commitFetch();

    /** I-cache miss (or similar): roll active head back to recovery. */
    void rollback();

    /** Drop all chunks (fault-recovery flush). */
    void
    clear()
    {
        chunks.clear();
        activeOffset = 0;
    }

    std::size_t size() const { return chunks.size(); }
    std::size_t unread() const { return chunks.size() - activeOffset; }
    std::size_t entries() const { return capacity; }

    /**
     * Fault injection: flip bit @p bit of the next unfetched chunk's
     * start address, steering the trailing front end to the wrong line.
     * ECC-protected queues correct the strike in place.  @return false
     * when no unread chunk is resident (injector retries next cycle).
     */
    bool injectAddrBitFlip(unsigned bit);

    std::uint64_t eccCorrections() const { return statEccCorrected.value(); }

    StatGroup &stats() { return statGroup; }

  private:
    unsigned capacity;
    bool eccProtected;
    std::deque<LpqChunk> chunks;    ///< front = recovery head
    std::size_t activeOffset = 0;   ///< active head - recovery head

    StatGroup statGroup;
    Counter statPushes;
    Counter statAcks;
    Counter statRollbacks;
    Counter statFullStalls;
    Counter statEccCorrected;
    Counter statCorruptions;
};

} // namespace rmt

#endif // RMTSIM_RMT_LPQ_HH
