/**
 * @file
 * Redundant-thread pairing: the per-pair state tying a leading and a
 * trailing hardware thread together (SRT on one core, CRT across two),
 * plus the manager that maps (core, thread) to its pair and role.
 *
 * A RedundantPair owns the sphere-crossing structures — load value
 * queue, line prediction queue, branch outcome queue (for the ablation
 * front ends), and store comparator — together with the leading-side
 * chunk aggregation state that feeds the LPQ and the bookkeeping used
 * for fault detection and for the paper's Figure 7 instrumentation.
 */

#ifndef RMTSIM_RMT_REDUNDANCY_HH
#define RMTSIM_RMT_REDUNDANCY_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "ckpt/snapshot.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "rmt/lpq.hh"
#include "rmt/recovery.hh"
#include "rmt/lvq.hh"
#include "rmt/store_comparator.hh"

namespace rmt
{

/** Role of a hardware thread context. */
enum class Role : std::uint8_t
{
    Single,             ///< ordinary thread, no redundancy
    Leading,            ///< leading copy of a redundant pair
    Trailing,           ///< trailing copy of a redundant pair
    IndependentCopy,    ///< Base2: redundant copy with no RMT coupling
};

/** How a fault became visible. */
enum class DetectionKind : std::uint8_t
{
    StoreMismatch,      ///< output comparison at the store comparator
    LvqAddrMismatch,    ///< trailing load address disagreed with LVQ
    ControlDivergence,  ///< trailing branch outcome left the LPQ path
};

struct DetectionEvent
{
    DetectionKind kind;
    Cycle cycle;
};

/** Identifies one hardware thread on one core. */
struct HwThread
{
    CoreId core = 0;
    ThreadId tid = 0;
};

/** Per-pair output of a leading branch (branch outcome queue entry). */
struct BoqEntry
{
    Addr pc;
    bool taken;
    Addr target;        ///< next fetch pc when taken
    Cycle availableAt;
};

struct RedundantPairParams
{
    LogicalId logical = 0;
    HwThread leading{};
    HwThread trailing{};
    unsigned lvq_entries = 64;
    unsigned lpq_entries = 32;
    unsigned boq_entries = 512;
    bool lvq_ecc = true;
    bool lpq_ecc = false;   ///< corruption is caught by divergence anyway
    bool boq_ecc = false;
    unsigned forward_latency_lpq = 4;   ///< QBOX -> IBOX
    unsigned forward_latency_lvq = 2;   ///< QBOX -> MBOX
    unsigned cross_core_latency = 0;    ///< extra when leading/trailing
                                        ///< are on different cores (CRT)
    unsigned idle_flush_cycles = 8;     ///< aggregation timeout flush
};

class RedundantPair : public Snapshottable
{
  public:
    explicit RedundantPair(const RedundantPairParams &params);

    const RedundantPairParams &params() const { return _params; }
    LogicalId logical() const { return _params.logical; }

    Lvq lvq;
    Lpq lpq;
    StoreComparator comparator;

    /** Optional checkpoint-recovery engine (nullptr = detect only). */
    std::unique_ptr<RecoveryManager> recovery;
    /** The logical thread's data image (needed for memory rollback). */
    DataMemory *memory = nullptr;

    // ----------------------------------------------------- tag counters
    std::uint64_t leadLoadTag = 0;
    std::uint64_t trailLoadTag = 0;
    std::uint64_t leadStoreIdx = 0;
    std::uint64_t trailStoreIdx = 0;
    std::uint64_t leadRetired = 0;      ///< instructions (slack fetch)
    std::uint64_t trailFetched = 0;

    // ------------------------------------------------ chunk aggregation
    /**
     * Append a retired leading instruction to the current chunk,
     * emitting finished chunks into the LPQ per the termination rules
     * (capacity, discontinuity, 32-byte chunk boundary).
     * @return false if the LPQ was full (leading retire must stall)
     */
    bool appendRetired(Addr pc, std::uint8_t iq_half, Cycle now);

    /**
     * Force-terminate the current chunk (memory-barrier-at-head,
     * partial-forward flush, idle flush, thread halt).
     * @return false if the LPQ was full
     */
    bool flushAggregation(Cycle now);

    /** Idle flush: emit a stale partial chunk (deadlock avoidance). */
    bool idleFlush(Cycle now);

    bool aggregationEmpty() const { return agg.count == 0; }

    // -------------------------------------------- uncached replication
    /** Uncached load value replicated from the leading thread
     *  (Section 2.1's deferred mechanism, implemented). */
    void
    pushUncachedLoad(std::uint64_t value, Cycle now)
    {
        uncachedLoads.push_back({value, now +
                                            _params.forward_latency_lvq +
                                            _params.cross_core_latency});
    }
    bool
    uncachedLoadAvailable(Cycle now) const
    {
        return !uncachedLoads.empty() &&
               now >= uncachedLoads.front().second;
    }
    std::uint64_t
    popUncachedLoad()
    {
        const std::uint64_t v = uncachedLoads.front().first;
        uncachedLoads.pop_front();
        return v;
    }

    /** Uncached store record awaiting comparison (Section 2.2's
     *  deferred mechanism): leading records at retirement, trailing at
     *  its own retirement; compare-then-perform-once. */
    struct UncachedStore
    {
        Addr addr;
        std::uint64_t data;
        Cycle availableAt;
    };
    std::deque<UncachedStore> uncachedLeadStores;
    std::deque<UncachedStore> uncachedTrailStores;

    void
    pushUncachedStore(bool leading, Addr addr, std::uint64_t data,
                      Cycle now)
    {
        auto &q = leading ? uncachedLeadStores : uncachedTrailStores;
        q.push_back(UncachedStore{addr, data,
                                  now + _params.forward_latency_lvq +
                                      _params.cross_core_latency});
    }

    // ------------------------------------------- interrupt replication
    /** Leading thread took an interrupt after committing @p committed
     *  instructions (Section 2.1's deferred mechanism, implemented):
     *  the trailing thread resynchronises its divergence check at the
     *  same instruction boundary; its fetch stream already follows the
     *  handler via the LPQ. */
    struct InterruptBoundary
    {
        std::uint64_t committed;
        Cycle availableAt;
    };
    std::deque<InterruptBoundary> interruptBoundaries;

    void
    pushInterruptBoundary(std::uint64_t committed, Cycle now)
    {
        interruptBoundaries.push_back(
            InterruptBoundary{committed,
                              now + _params.forward_latency_lpq +
                                  _params.cross_core_latency});
    }

    // ---------------------------------------------- branch outcome queue
    /** Leading retired a control instruction (BOQ front-end modes). */
    void pushBranchOutcome(Addr pc, bool taken, Addr target, Cycle now);
    bool boqFrontAvailable(Cycle now) const;
    const BoqEntry &boqFront() const { return boq.front(); }
    void boqPop() { boq.pop_front(); }
    bool boqFull() const { return boq.size() >= _params.boq_entries; }

    /**
     * Fault injection: flip bit @p bit of the front BOQ entry's branch
     * target, steering the trailing fetch off the leading path.  ECC
     * corrects it in place.  @return false when the BOQ is empty (the
     * injector retries next cycle).
     */
    bool injectBoqBitFlip(unsigned bit);

    std::uint64_t boqEccCorrections() const
    {
        return statBoqEccCorrected.value();
    }

    /** Flush every sphere-crossing structure and rewind the pair's
     *  counters to @p ckpt (fault recovery). */
    void resetForRecovery(const RecoveryCheckpoint &ckpt);

    // -------------------------------------------------- fault detection
    /** Cap on the recorded (not counted) detection-event log. */
    static constexpr std::size_t maxRecordedDetections = 32;

    void recordDetection(DetectionKind kind, Cycle now);
    bool faultDetected() const { return detected; }
    const std::vector<DetectionEvent> &detections() const
    {
        return events;
    }
    std::uint64_t detectionCount() const { return statDetections.value(); }

    // -------------------------------- Figure 7 (PSR) instrumentation
    /** Leading instruction retired having used a functional unit. */
    void pushLeadingFu(std::uint8_t half, std::uint8_t fu);
    /** Trailing counterpart retired; compare placement. */
    void compareTrailingFu(std::uint8_t half, std::uint8_t fu);

    std::uint64_t fuPairsCompared() const { return statFuPairs.value(); }
    std::uint64_t fuPairsSameUnit() const { return statFuSame.value(); }
    std::uint64_t psrForcedSameHalf() const
    {
        return statPsrForced.value();
    }
    void notePsrForcedSameHalf() { ++statPsrForced; }

    StatGroup &stats() { return statGroup; }

    /** True iff every sphere-crossing structure (LVQ, LPQ, BOQ, store
     *  comparator, uncached queues, interrupt boundaries, FU trace,
     *  chunk aggregation) is empty — the pair's quiesce condition. */
    bool drainedForSnapshot() const;

    /** Tag counters + detection record.  Queue contents are NOT
     *  serialized: a snapshot is taken only at a quiesce point, where
     *  drainedForSnapshot() holds; loadState enforces this. */
    void saveState(Serializer &s) const override;
    void loadState(Deserializer &d) override;

  private:
    struct ChunkAgg
    {
        Addr start = 0;
        std::uint8_t count = 0;
        std::array<std::uint8_t, chunkSize> halves{};
        Addr nextPc = 0;
        Cycle lastAppend = 0;
    };

    RedundantPairParams _params;
    ChunkAgg agg;
    std::deque<std::pair<std::uint64_t, Cycle>> uncachedLoads;
    std::deque<BoqEntry> boq;
    std::deque<std::pair<std::uint8_t, std::uint8_t>> leadFuTrace;

    bool detected = false;
    std::vector<DetectionEvent> events;

    StatGroup statGroup;
    Counter statChunks;
    Counter statForcedFlushes;
    Counter statDetections;
    Counter statFuPairs;
    Counter statFuSame;
    Counter statPsrForced;
    Counter statBoqEccCorrected;
    Counter statBoqCorruptions;
};

/** Registry of pairs for one chip; maps hardware threads to pairs. */
class RedundancyManager
{
  public:
    RedundantPair &addPair(const RedundantPairParams &params);

    /** Pair owning (core, tid), or nullptr. */
    RedundantPair *pairFor(CoreId core, ThreadId tid);

    /** Role of (core, tid); Single if unregistered. */
    Role roleFor(CoreId core, ThreadId tid) const;

    std::size_t numPairs() const { return pairs.size(); }
    RedundantPair &pair(std::size_t i) { return *pairs.at(i); }
    const RedundantPair &pair(std::size_t i) const { return *pairs.at(i); }

    /** Any pair has flagged a fault. */
    bool anyFaultDetected() const;

  private:
    std::vector<std::unique_ptr<RedundantPair>> pairs;
};

} // namespace rmt

#endif // RMTSIM_RMT_REDUNDANCY_HH
