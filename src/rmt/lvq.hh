/**
 * @file
 * Load Value Queue (paper Sections 2.1 and 4.1).
 *
 * Leading-thread loads write (tag, address, value) here as they retire;
 * trailing-thread loads bypass the data cache and load queue entirely
 * and satisfy themselves from the LVQ with an associative lookup on the
 * load correlation tag (supporting out-of-order trailing issue).  An
 * address mismatch is a detected fault.  Because LVQ data is not read
 * redundantly, entries are ECC-protected; the fault injector can flip
 * LVQ bits to exercise that protection.
 */

#ifndef RMTSIM_RMT_LVQ_HH
#define RMTSIM_RMT_LVQ_HH

#include <cstdint>
#include <unordered_map>

#include "common/random.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace rmt
{

class Lvq
{
  public:
    Lvq(unsigned capacity, bool ecc_protected, std::string name);

    enum class Lookup : std::uint8_t
    {
        NotPresent,     ///< leading load not yet retired/forwarded
        Hit,            ///< value delivered, entry deallocated
        AddrMismatch,   ///< fault detected; entry deallocated
    };

    bool full() const { return entries.size() >= capacity; }
    std::size_t size() const { return entries.size(); }

    /** Drop all entries (fault-recovery flush). */
    void clear() { entries.clear(); }

    /**
     * Insert at leading-load retirement.
     * @param available_at cycle the entry becomes visible to the
     *        trailing thread (retire cycle + forwarding latency)
     * @return false if the LVQ is full (leading retire must stall)
     */
    bool insert(std::uint64_t tag, Addr addr, std::uint64_t data,
                Cycle available_at);

    /** Trailing-load lookup; on Hit, @p data receives the value. */
    Lookup lookup(std::uint64_t tag, Addr expected_addr, Cycle now,
                  std::uint64_t &data);

    /**
     * Transient fault: flip one bit of one resident entry's data.
     * With ECC the flip is corrected (counted); without it the
     * corruption propagates to the trailing thread.
     * @return true if an entry existed to strike
     */
    bool injectDataBitFlip(Random &rng);

    std::uint64_t eccCorrections() const
    {
        return statEccCorrected.value();
    }

    StatGroup &stats() { return statGroup; }

  private:
    struct Entry
    {
        Addr addr;
        std::uint64_t data;
        Cycle availableAt;
    };

    unsigned capacity;
    bool eccProtected;
    std::unordered_map<std::uint64_t, Entry> entries;

    StatGroup statGroup;
    Counter statInserts;
    Counter statHits;
    Counter statAddrMismatches;
    Counter statEccCorrected;
    Counter statCorruptions;
};

} // namespace rmt

#endif // RMTSIM_RMT_LVQ_HH
