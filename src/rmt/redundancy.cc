#include "rmt/redundancy.hh"

#include "common/bits.hh"
#include "common/logging.hh"

namespace rmt
{

namespace
{

std::string
pairName(LogicalId logical, const char *suffix)
{
    return "pair" + std::to_string(logical) + "." + suffix;
}

} // namespace

RedundantPair::RedundantPair(const RedundantPairParams &params)
    : lvq(params.lvq_entries, params.lvq_ecc, pairName(params.logical,
                                                       "lvq")),
      lpq(params.lpq_entries, pairName(params.logical, "lpq"),
          params.lpq_ecc),
      comparator(pairName(params.logical, "storecmp")),
      _params(params),
      statGroup(pairName(params.logical, "pair")),
      statChunks(statGroup, "chunks", "LPQ chunks emitted"),
      statForcedFlushes(statGroup, "forced_flushes",
                        "chunks terminated by special rules"),
      statDetections(statGroup, "detections", "fault detection events"),
      statFuPairs(statGroup, "fu_pairs",
                  "redundant instruction pairs compared (Fig. 7)"),
      statFuSame(statGroup, "fu_same",
                 "pairs that used the same functional unit"),
      statPsrForced(statGroup, "psr_forced_same_half",
                    "trailing instructions forced into the leading half"),
      statBoqEccCorrected(statGroup, "boq_ecc_corrected",
                          "injected BOQ strikes corrected by ECC"),
      statBoqCorruptions(statGroup, "boq_corruptions",
                         "injected BOQ strikes that corrupted an outcome")
{
}

bool
RedundantPair::appendRetired(Addr pc, std::uint8_t iq_half, Cycle now)
{
    // Termination on a full chunk, a discontinuity, or crossing a
    // 32-byte chunk frame.  The flush must happen *before* the append
    // mutates anything: if the LPQ is full the caller stalls retirement
    // and retries this exact call, which must be idempotent.
    const Addr frame = pc / (chunkSize * instBytes);
    const bool full = agg.count == chunkSize;
    const bool discontinuous = agg.count > 0 && pc != agg.nextPc;
    const bool new_frame =
        agg.count > 0 && frame != agg.start / (chunkSize * instBytes);
    if (full || discontinuous || new_frame) {
        if (!flushAggregation(now))
            return false;
    }

    if (agg.count == 0)
        agg.start = pc;
    agg.halves[agg.count] = iq_half;
    ++agg.count;
    agg.nextPc = pc + instBytes;
    agg.lastAppend = now;
    ++leadRetired;

    // Best-effort eager flush of a completed chunk; if the LPQ is full
    // the entry-condition above (or the idle flush) retries later.
    if (agg.count == chunkSize)
        flushAggregation(now);
    return true;
}

bool
RedundantPair::flushAggregation(Cycle now)
{
    if (agg.count == 0)
        return true;
    if (lpq.full())
        return false;
    LpqChunk chunk;
    chunk.start = agg.start;
    chunk.count = agg.count;
    chunk.leadHalf = agg.halves;
    chunk.availableAt =
        now + _params.forward_latency_lpq + _params.cross_core_latency;
    lpq.push(chunk);
    ++statChunks;
    agg.count = 0;
    return true;
}

bool
RedundantPair::idleFlush(Cycle now)
{
    if (agg.count == 0)
        return true;
    if (now < agg.lastAppend + _params.idle_flush_cycles)
        return true;
    ++statForcedFlushes;
    return flushAggregation(now);
}

void
RedundantPair::pushBranchOutcome(Addr pc, bool taken, Addr target,
                                 Cycle now)
{
    boq.push_back(BoqEntry{pc, taken, target,
                           now + _params.forward_latency_lpq +
                               _params.cross_core_latency});
}

bool
RedundantPair::boqFrontAvailable(Cycle now) const
{
    return !boq.empty() && now >= boq.front().availableAt;
}

bool
RedundantPair::injectBoqBitFlip(unsigned bit)
{
    if (boq.empty())
        return false;
    if (_params.boq_ecc) {
        ++statBoqEccCorrected;
        return true;
    }
    boq.front().target = flipBit(boq.front().target, bit);
    ++statBoqCorruptions;
    return true;
}

void
RedundantPair::resetForRecovery(const RecoveryCheckpoint &ckpt)
{
    lvq.clear();
    lpq.clear();
    comparator.clear();
    uncachedLoads.clear();
    uncachedLeadStores.clear();
    uncachedTrailStores.clear();
    boq.clear();
    interruptBoundaries.clear();
    leadFuTrace.clear();
    agg.count = 0;
    leadLoadTag = trailLoadTag = ckpt.load_tag;
    leadStoreIdx = trailStoreIdx = ckpt.store_idx;
    leadRetired = 0;
    trailFetched = 0;
    detected = false;
}

void
RedundantPair::recordDetection(DetectionKind kind, Cycle now)
{
    detected = true;
    // After the first detection a real system would signal the checker
    // and initiate recovery; we keep simulating (to measure), but cap
    // the recorded event log — detections keep counting in the stat.
    if (events.size() < maxRecordedDetections)
        events.push_back(DetectionEvent{kind, now});
    ++statDetections;
}

void
RedundantPair::pushLeadingFu(std::uint8_t half, std::uint8_t fu)
{
    leadFuTrace.emplace_back(half, fu);
}

void
RedundantPair::compareTrailingFu(std::uint8_t half, std::uint8_t fu)
{
    (void)half;
    if (leadFuTrace.empty()) {
        // Only reachable after control divergence under injected faults.
        return;
    }
    const auto [lead_half, lead_fu] = leadFuTrace.front();
    leadFuTrace.pop_front();
    (void)lead_half;
    ++statFuPairs;
    if (lead_fu == fu)
        ++statFuSame;
}

RedundantPair &
RedundancyManager::addPair(const RedundantPairParams &params)
{
    pairs.push_back(std::make_unique<RedundantPair>(params));
    return *pairs.back();
}

RedundantPair *
RedundancyManager::pairFor(CoreId core, ThreadId tid)
{
    for (auto &pair : pairs) {
        const auto &p = pair->params();
        if ((p.leading.core == core && p.leading.tid == tid) ||
            (p.trailing.core == core && p.trailing.tid == tid)) {
            return pair.get();
        }
    }
    return nullptr;
}

bool
RedundantPair::drainedForSnapshot() const
{
    return lvq.size() == 0 && lpq.size() == 0 &&
           comparator.pendingTrailing() == 0 && boq.empty() &&
           uncachedLoads.empty() && uncachedLeadStores.empty() &&
           uncachedTrailStores.empty() && interruptBoundaries.empty() &&
           leadFuTrace.empty() && aggregationEmpty();
}

void
RedundantPair::saveState(Serializer &s) const
{
    s.u64(leadLoadTag);
    s.u64(trailLoadTag);
    s.u64(leadStoreIdx);
    s.u64(trailStoreIdx);
    s.u64(leadRetired);
    s.u64(trailFetched);
    s.boolean(detected);
    s.u32(static_cast<std::uint32_t>(events.size()));
    for (const DetectionEvent &e : events) {
        s.u8(static_cast<std::uint8_t>(e.kind));
        s.u64(e.cycle);
    }
}

void
RedundantPair::loadState(Deserializer &d)
{
    if (!drainedForSnapshot())
        throw SnapshotError("pair: restore target is not quiesced");
    leadLoadTag = d.u64();
    trailLoadTag = d.u64();
    leadStoreIdx = d.u64();
    trailStoreIdx = d.u64();
    leadRetired = d.u64();
    trailFetched = d.u64();
    detected = d.boolean();
    const std::uint32_t n = d.u32();
    events.clear();
    for (std::uint32_t i = 0; i < n; ++i) {
        DetectionEvent e;
        e.kind = static_cast<DetectionKind>(d.u8());
        e.cycle = d.u64();
        events.push_back(e);
    }
}

Role
RedundancyManager::roleFor(CoreId core, ThreadId tid) const
{
    for (const auto &pair : pairs) {
        const auto &p = pair->params();
        if (p.leading.core == core && p.leading.tid == tid)
            return Role::Leading;
        if (p.trailing.core == core && p.trailing.tid == tid)
            return Role::Trailing;
    }
    return Role::Single;
}

bool
RedundancyManager::anyFaultDetected() const
{
    for (const auto &pair : pairs) {
        if (pair->faultDetected())
            return true;
    }
    return false;
}

} // namespace rmt
