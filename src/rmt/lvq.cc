#include "rmt/lvq.hh"

#include "common/bits.hh"

namespace rmt
{

Lvq::Lvq(unsigned capacity, bool ecc_protected, std::string name)
    : capacity(capacity), eccProtected(ecc_protected),
      statGroup(std::move(name)),
      statInserts(statGroup, "inserts", "leading loads forwarded"),
      statHits(statGroup, "hits", "trailing loads satisfied"),
      statAddrMismatches(statGroup, "addr_mismatches",
                         "address mismatches (detected faults)"),
      statEccCorrected(statGroup, "ecc_corrected",
                       "bit flips corrected by ECC"),
      statCorruptions(statGroup, "corruptions",
                      "bit flips that corrupted data (no ECC)")
{
}

bool
Lvq::insert(std::uint64_t tag, Addr addr, std::uint64_t data,
            Cycle available_at)
{
    if (full())
        return false;
    entries.emplace(tag, Entry{addr, data, available_at});
    ++statInserts;
    return true;
}

Lvq::Lookup
Lvq::lookup(std::uint64_t tag, Addr expected_addr, Cycle now,
            std::uint64_t &data)
{
    auto it = entries.find(tag);
    if (it == entries.end() || now < it->second.availableAt)
        return Lookup::NotPresent;

    const bool addr_ok = it->second.addr == expected_addr;
    data = it->second.data;
    entries.erase(it);
    if (!addr_ok) {
        ++statAddrMismatches;
        return Lookup::AddrMismatch;
    }
    ++statHits;
    return Lookup::Hit;
}

bool
Lvq::injectDataBitFlip(Random &rng)
{
    if (entries.empty())
        return false;
    // Pick a deterministic "random" resident entry.
    auto it = entries.begin();
    std::advance(it, static_cast<long>(rng.range(entries.size())));
    if (eccProtected) {
        // SECDED corrects the single-bit flip on read; data unchanged.
        ++statEccCorrected;
        return true;
    }
    it->second.data = flipBit(it->second.data,
                              static_cast<unsigned>(rng.range(64)));
    ++statCorruptions;
    return true;
}

} // namespace rmt
