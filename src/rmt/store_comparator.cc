#include "rmt/store_comparator.hh"

#include "common/logging.hh"

namespace rmt
{

StoreComparator::StoreComparator(std::string name)
    : statGroup(std::move(name)),
      statComparisons(statGroup, "comparisons", "store pairs compared"),
      statMismatches(statGroup, "mismatches",
                     "store mismatches (detected faults)")
{
}

void
StoreComparator::pushTrailing(std::uint64_t store_idx, Addr addr,
                              std::uint64_t data, unsigned size,
                              Cycle available_at)
{
    const auto [it, inserted] = trailing.emplace(
        store_idx, Record{store_idx, addr, data, size, available_at});
    (void)it;
    if (!inserted)
        panic("store comparator: duplicate trailing store index %llu",
              static_cast<unsigned long long>(store_idx));
}

bool
StoreComparator::tryVerify(std::uint64_t store_idx, Addr addr,
                           std::uint64_t data, unsigned size, Cycle now,
                           bool &mismatch)
{
    // Associative search on the store index, mirroring the paper's CAM
    // search of the store queue: trailing stores execute (and deliver
    // their data) out of order, so arrival order carries no meaning.
    mismatch = false;
    auto it = trailing.find(store_idx);
    if (it == trailing.end() || now < it->second.availableAt)
        return false;
    const Record &rec = it->second;
    mismatch = rec.addr != addr || rec.data != data || rec.size != size;
    ++statComparisons;
    if (mismatch)
        ++statMismatches;
    trailing.erase(it);
    return true;
}

} // namespace rmt
