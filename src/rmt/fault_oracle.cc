#include "rmt/fault_oracle.hh"

#include <cstring>

namespace rmt
{

const char *
verdictName(FaultVerdict verdict)
{
    switch (verdict) {
      case FaultVerdict::Masked:   return "masked";
      case FaultVerdict::Detected: return "detected";
      case FaultVerdict::Sdc:      return "sdc";
      case FaultVerdict::Hang:     return "hang";
    }
    return "?";
}

std::vector<std::uint8_t>
FaultOracle::goldenImage(const std::vector<std::string> &workloads,
                         const SimOptions &options, unsigned logical)
{
    Simulation sim(workloads, options);
    sim.run();
    const DataMemory &mem = sim.memory(logical);
    return {mem.data(), mem.data() + mem.size()};
}

namespace
{

/** The pair the fault actually landed on (detection attribution). */
RedundantPair *
faultedPair(Simulation &sim, const FaultRecord &fault)
{
    RedundancyManager &rm = sim.chip().redundancy();
    if (RedundantPair *pair = rm.pairFor(fault.core, fault.tid))
        return pair;
    if (fault.kind == FaultRecord::Kind::TransientLvq &&
        fault.pairLogical < rm.numPairs()) {
        return &rm.pair(fault.pairLogical);
    }
    if (fault.kind == FaultRecord::Kind::PermanentFu) {
        // A stuck-at unit can hit any pair with a copy on that core;
        // attribute to the first one (single-pair campaigns: exact).
        for (std::size_t i = 0; i < rm.numPairs(); ++i) {
            const RedundantPairParams &p = rm.pair(i).params();
            if (p.leading.core == fault.core ||
                p.trailing.core == fault.core) {
                return &rm.pair(i);
            }
        }
    }
    return nullptr;
}

} // namespace

FaultTrialReport
FaultOracle::classify(Simulation &sim, const RunResult &result,
                      const FaultRecord &fault) const
{
    FaultTrialReport report;

    RedundantPair *pair = faultedPair(sim, fault);
    if (pair) {
        report.faulted_pair = static_cast<int>(pair->logical());
        report.detections = pair->detectionCount();
        // First detection at or after the activation cycle belongs to
        // this fault; earlier events would be another trial's residue.
        for (const DetectionEvent &ev : pair->detections()) {
            if (ev.cycle >= fault.when) {
                report.latency_valid = true;
                report.detection_latency = ev.cycle - fault.when;
                break;
            }
        }
    } else {
        report.detections = result.detections;
    }

    const DataMemory &mem = sim.memory(logical);
    report.memory_corrupted =
        mem.size() != golden.size() ||
        std::memcmp(mem.data(), golden.data(), golden.size()) != 0;

    if (report.detections > 0)
        report.verdict = FaultVerdict::Detected;
    else if (result.outcome != Outcome::Completed)
        report.verdict = FaultVerdict::Hang;
    else if (report.memory_corrupted)
        report.verdict = FaultVerdict::Sdc;
    else
        report.verdict = FaultVerdict::Masked;
    return report;
}

} // namespace rmt
