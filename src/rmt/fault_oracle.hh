/**
 * @file
 * Outcome classification for fault-injection trials.
 *
 * Every trial ends in exactly one verdict of the standard taxonomy
 * (Khoshavi et al.): Masked (the strike never reached an output),
 * Detected (the sphere's comparators flagged it), Sdc (silent data
 * corruption: the final memory image differs from a golden fault-free
 * run with nothing detected), or Hang (the run never finished and
 * nothing was detected).  Detection latency is attributed to the pair
 * that actually hosts the faulted thread — not pair 0 — and to the
 * first detection at or after the fault's activation cycle.
 */

#ifndef RMTSIM_RMT_FAULT_ORACLE_HH
#define RMTSIM_RMT_FAULT_ORACLE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "rmt/fault_injector.hh"
#include "sim/simulator.hh"

namespace rmt
{

enum class FaultVerdict : std::uint8_t
{
    Masked,
    Detected,
    Sdc,
    Hang,
};

/** Printable name of a verdict ("masked", "detected", "sdc", "hang"). */
const char *verdictName(FaultVerdict verdict);

/** Everything the oracle can say about one finished trial. */
struct FaultTrialReport
{
    FaultVerdict verdict = FaultVerdict::Masked;
    bool memory_corrupted = false;
    std::uint64_t detections = 0;       ///< on the faulted pair
    bool latency_valid = false;
    Cycle detection_latency = 0;        ///< activation -> first detection
    int faulted_pair = -1;              ///< -1 when no pair applies
};

class FaultOracle
{
  public:
    /**
     * Final memory image of logical thread @p logical after a
     * fault-free run of @p workloads under @p options — the reference
     * every faulted trial's memory is compared against.
     */
    static std::vector<std::uint8_t>
    goldenImage(const std::vector<std::string> &workloads,
                const SimOptions &options, unsigned logical = 0);

    explicit FaultOracle(std::vector<std::uint8_t> golden,
                         unsigned logical = 0)
        : golden(std::move(golden)), logical(logical)
    {
    }

    /**
     * Classify a finished trial.  Call while the trial's Simulation is
     * still alive (the oracle reads its memory image and the faulted
     * pair's detection log).
     */
    FaultTrialReport classify(Simulation &sim, const RunResult &result,
                              const FaultRecord &fault) const;

  private:
    std::vector<std::uint8_t> golden;
    unsigned logical;
};

} // namespace rmt

#endif // RMTSIM_RMT_FAULT_ORACLE_HH
