/**
 * @file
 * Checkpoint-based fault recovery.
 *
 * The paper's checker "flags an error and initiates a hardware or
 * software recovery sequence" (Section 1) but does not design one; this
 * module supplies it.  The scheme is *verified checkpointing*:
 *
 *  - every @c interval committed leading instructions, a checkpoint
 *    candidate captures the committed architectural registers, the next
 *    pc, the commit/store/load counters, and a cut point in the memory
 *    undo log;
 *  - a candidate only becomes the *active* (restorable) checkpoint once
 *    every store older than it has passed output comparison — a
 *    checkpoint taken over unverified stores could preserve corrupted
 *    memory;
 *  - every committed store logs its memory pre-image (byte-granular
 *    undo log);
 *  - on fault detection, both redundant threads are flushed, memory is
 *    rolled back through the undo log to the active checkpoint, the
 *    registers/pc/counters are restored, and execution re-runs.
 *
 * Transient faults disappear on re-execution; a permanent fault
 * re-triggers detection, so recovery attempts are capped (after which
 * the pair is declared unrecoverable — a real system would fail over).
 *
 * External-input caveats (the classic recovery-vs-I/O tension, out of
 * scope for the paper and simplified here): uncached device writes are
 * never *corrupted* (they are compared before being performed), but a
 * rollback re-executes the window, so device reads observe fresh
 * volatile values and device writes may be re-issued; interrupts
 * consumed before the rollback are not replayed.  A production design
 * would hold I/O past the next verified checkpoint.
 */

#ifndef RMTSIM_RMT_RECOVERY_HH
#define RMTSIM_RMT_RECOVERY_HH

#include <array>
#include <cstdint>
#include <deque>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "isa/program.hh"

namespace rmt
{

struct RecoveryParams
{
    std::uint64_t interval_insts = 2000;    ///< checkpoint cadence
    unsigned max_recoveries = 8;            ///< permanent-fault backstop
};

/** A restorable architectural snapshot. */
struct RecoveryCheckpoint
{
    std::array<std::uint64_t, numArchRegs> regs{};
    Addr next_pc = 0;
    std::uint64_t committed = 0;        ///< leading committed count
    std::uint64_t load_tag = 0;         ///< load correlation counter
    std::uint64_t store_idx = 0;        ///< store index counter
    std::size_t undo_offset = 0;        ///< undo-log cut point
};

class RecoveryManager
{
  public:
    RecoveryManager(const RecoveryParams &params, Addr entry_pc,
                    std::string name);

    // ------------------------------------------------- commit-side hooks
    /** Capture a store's memory pre-image before it is written. */
    void preStore(const DataMemory &mem, Addr addr, unsigned size);

    /**
     * A leading instruction committed.  @p regs is the committed
     * architectural file, @p next_pc where execution continues.
     * Called after counters were advanced.
     */
    void noteCommit(const std::array<std::uint64_t, numArchRegs> &regs,
                    Addr next_pc, std::uint64_t committed,
                    std::uint64_t load_tag, std::uint64_t store_idx);

    /** Output comparison verified leading store @p store_idx. */
    void noteVerified(std::uint64_t store_idx);

    // ---------------------------------------------------- recovery side
    /** Is a restorable checkpoint available and attempts left? */
    bool canRecover() const;

    /** The checkpoint recovery will restore. */
    const RecoveryCheckpoint &active() const { return activeCkpt; }

    /**
     * Roll @p mem back to the active checkpoint (applies the undo log
     * in reverse) and discard newer checkpoint candidates.
     * @return instructions of committed work discarded
     */
    std::uint64_t rollback(DataMemory &mem, std::uint64_t committed_now);

    unsigned recoveries() const
    {
        return static_cast<unsigned>(statRecoveries.value());
    }
    bool exhausted() const
    {
        return statRecoveries.value() >= _params.max_recoveries;
    }

    std::uint64_t discardedInsts() const
    {
        return statDiscardedInsts.value();
    }
    std::size_t undoLogBytes() const { return undoLog.size(); }
    std::size_t pendingCandidates() const { return candidates.size(); }

    StatGroup &stats() { return statGroup; }

  private:
    void promoteCandidates();

    struct UndoEntry
    {
        Addr addr;
        std::uint8_t byte;
    };

    RecoveryParams _params;
    std::vector<UndoEntry> undoLog;     ///< append-only since active ckpt
    RecoveryCheckpoint activeCkpt;      ///< always restorable
    std::deque<RecoveryCheckpoint> candidates;  ///< awaiting verification
    std::uint64_t verifiedStores = 0;
    std::uint64_t lastCheckpointAt = 0;

    StatGroup statGroup;
    Counter statCheckpoints;
    Counter statPromotions;
    Counter statRecoveries;
    Counter statDiscardedInsts;
};

} // namespace rmt

#endif // RMTSIM_RMT_RECOVERY_HH
