/**
 * @file
 * Deterministic fault injection (paper Sections 2, 4.5).
 *
 * Models the fault classes the paper's mechanisms are designed to
 * catch:
 *
 *  - transient single-bit flips in architectural register values inside
 *    the sphere of replication (cosmic-ray strike on a register file or
 *    latch) — caught by output comparison at the store comparator;
 *  - transient flips in LVQ data — outside the redundant computation,
 *    so they must be caught (or corrected) by the LVQ's ECC;
 *  - permanent stuck-at faults in a functional unit — caught only when
 *    the redundant copies execute on *different* units, which is what
 *    preferential space redundancy guarantees.
 */

#ifndef RMTSIM_RMT_FAULT_INJECTOR_HH
#define RMTSIM_RMT_FAULT_INJECTOR_HH

#include <cstdint>
#include <vector>

#include "common/random.hh"
#include "common/types.hh"

namespace rmt
{

class SmtCpu;
class RedundantPair;

struct FaultRecord
{
    enum class Kind : std::uint8_t
    {
        TransientReg,       ///< flip one bit of one arch register value
        TransientLvq,       ///< flip one bit of a resident LVQ entry
        PermanentFu,        ///< stuck-at fault in one functional unit
    };

    Kind kind;
    Cycle when = 0;             ///< activation cycle
    CoreId core = 0;
    ThreadId tid = 0;           ///< TransientReg: victim thread
    RegIndex reg = 0;           ///< TransientReg: victim register
    unsigned bit = 0;           ///< bit position to flip
    unsigned fuIndex = 0;       ///< PermanentFu: victim unit (global id)
    std::uint64_t mask = 1;     ///< PermanentFu: result corruption mask
    LogicalId pairLogical = 0;  ///< TransientLvq: victim pair
    bool applied = false;
};

class FaultInjector
{
  public:
    explicit FaultInjector(std::uint64_t seed = 1) : rng(seed) {}

    void schedule(const FaultRecord &fault) { faults.push_back(fault); }

    /**
     * Apply transient faults due at @p now to @p cpu (and its pairs).
     * Called once per core per cycle.
     */
    void tick(SmtCpu &cpu, Cycle now);

    /**
     * Permanent-fault filter on execution results: returns @p value
     * XORed with the mask of any active permanent fault on
     * (@p core, @p fu_index).
     */
    std::uint64_t filterFuResult(CoreId core, unsigned fu_index,
                                 Cycle now, std::uint64_t value) const;

    /** Any permanent FU fault configured for @p core? */
    bool hasPermanentFault(CoreId core) const;

    unsigned transientsApplied() const { return applied; }

  private:
    std::vector<FaultRecord> faults;
    Random rng;
    unsigned applied = 0;
};

} // namespace rmt

#endif // RMTSIM_RMT_FAULT_INJECTOR_HH
