/**
 * @file
 * Deterministic fault injection (paper Sections 2, 4.5).
 *
 * Models one fault class per hardware structure of the sphere of
 * replication and its boundary, so coverage can be measured per
 * structure rather than asserted:
 *
 *  - transient single-bit flips in architectural register values inside
 *    the sphere (cosmic-ray strike on a register file or latch) —
 *    caught by output comparison at the store comparator;
 *  - transient flips in LVQ data — outside the redundant computation,
 *    so they must be caught (or corrected) by the LVQ's ECC;
 *  - store-queue data/address strikes on an unretired entry — the
 *    corrupted store is compared against the other copy's, so SRT/CRT
 *    detect it while the base machine silently corrupts memory;
 *  - LPQ chunk-address and BOQ outcome corruption — wrong predictions
 *    steer the trailing fetch off the leading path, caught by the
 *    committed-stream divergence check (or corrected by optional ECC);
 *  - PC strikes on a thread's next-fetch address — control-flow faults
 *    that end in divergence detection or a hang (watchdog territory);
 *  - decode corruption (immediate bit flip or opcode substitution) of
 *    the next instruction one thread decodes — a fetch/decode latch
 *    strike inside the sphere;
 *  - merge-buffer data strikes on a released (post-comparison) store —
 *    outside the sphere, so the merge buffer must carry ECC;
 *  - permanent stuck-at faults in a functional unit — caught only when
 *    the redundant copies execute on *different* units, which is what
 *    preferential space redundancy guarantees.
 */

#ifndef RMTSIM_RMT_FAULT_INJECTOR_HH
#define RMTSIM_RMT_FAULT_INJECTOR_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/random.hh"
#include "common/types.hh"

namespace rmt
{

class SmtCpu;
class RedundantPair;

/**
 * schedule() rejected a fault because its activation cycle is at or
 * before the cycle the simulation was restored at.  Distinct from the
 * plain std::invalid_argument validation failures so executors can
 * recover (rebuild the trial from scratch instead of recording a
 * failure): the fault itself is fine — only the snapshot choice is
 * too late for it.
 */
struct SnapshotOrderError : std::invalid_argument
{
    explicit SnapshotOrderError(const std::string &what)
        : std::invalid_argument(what)
    {
    }
};

struct FaultRecord
{
    enum class Kind : std::uint8_t
    {
        TransientReg,       ///< flip one bit of one arch register value
        TransientLvq,       ///< flip one bit of a resident LVQ entry
        PermanentFu,        ///< stuck-at fault in one functional unit
        TransientSqData,    ///< flip one data bit of an unretired SQ entry
        TransientSqAddr,    ///< flip one address bit of an unretired SQ entry
        TransientLpq,       ///< flip one bit of a resident LPQ chunk address
        TransientBoq,       ///< flip one bit of the front BOQ outcome
        TransientPc,        ///< flip one bit of a thread's next fetch pc
        TransientDecode,    ///< corrupt the next decoded instruction
        TransientMergeBuffer,   ///< flip one data bit of the next store
                                ///< accepted into the merge buffer
    };

    Kind kind;
    Cycle when = 0;             ///< activation cycle
    CoreId core = 0;
    ThreadId tid = 0;           ///< victim thread (most transient kinds)
    RegIndex reg = 0;           ///< TransientReg: victim register
    unsigned bit = 0;           ///< bit position to flip
    unsigned fuIndex = 0;       ///< PermanentFu: victim unit (global id)
    std::uint64_t mask = 1;     ///< PermanentFu: result corruption mask
    LogicalId pairLogical = 0;  ///< TransientLvq: victim pair
    bool applied = false;
};

/** Short stable name for a fault kind ("reg", "sqd", ...), used by the
 *  CLI `--fault` syntax and the campaign JSONL. */
const char *faultKindName(FaultRecord::Kind kind);

/**
 * Parse a CLI fault spec `kind:cycle:core:tid:reg:bit`, where trailing
 * fields irrelevant to the kind may be omitted:
 *
 *   reg:CYCLE:CORE:TID:REG:BIT    register value strike
 *   lvq:CYCLE:CORE:TID            LVQ data strike (pair of TID)
 *   fu:CYCLE:CORE:UNIT:MASKBIT    permanent stuck-at FU fault
 *   sqd:CYCLE:CORE:TID:BIT        store-queue data strike
 *   sqa:CYCLE:CORE:TID:BIT        store-queue address strike
 *   lpq:CYCLE:CORE:TID:BIT        LPQ chunk-address strike
 *   boq:CYCLE:CORE:TID:BIT        BOQ outcome strike
 *   pc:CYCLE:CORE:TID:BIT         fetch-pc strike
 *   dec:CYCLE:CORE:TID:BIT        decode corruption (bit >= 48: opcode)
 *   mb:CYCLE:CORE:TID:BIT         merge-buffer data strike
 *
 * The legacy 2-field forms `reg:CYCLE:TID:REG:BIT`, `lvq:CYCLE:TID`,
 * and `fu:CYCLE:UNIT:MASKBIT` (implicit core 0) are still accepted.
 * Throws std::invalid_argument on malformed input.
 */
FaultRecord parseFaultSpec(const std::string &spec);

/**
 * What the injector needs to know about the machine to validate fault
 * records at schedule() time.  Filled in by Simulation once the chip is
 * built; a default-constructed shape (cores == 0) disables the
 * machine-dependent checks (bare-injector unit tests).
 */
struct FaultMachineShape
{
    unsigned cores = 0;
    unsigned threads = 0;       ///< hardware contexts per core
    unsigned pairs = 0;         ///< redundant pairs on the chip
    unsigned int_units_per_half = 4;
    unsigned logic_units_per_half = 4;
    unsigned mem_units_per_half = 2;
    unsigned fp_units_per_half = 2;
};

class FaultInjector
{
  public:
    explicit FaultInjector(std::uint64_t seed = 1) : rng(seed) {}

    /** Provide the machine shape used to validate scheduled records. */
    void configure(const FaultMachineShape &machine) { shape = machine; }

    /**
     * The simulation was restored from a snapshot taken at @p cycle:
     * schedule() rejects faults whose activation cycle is not strictly
     * after it (tick applies faults with when <= now, so such a fault
     * would fire immediately instead of at its nominal cycle — the trial
     * must fork from an earlier snapshot or run from scratch).
     */
    void setRestoredCycle(Cycle cycle) { restoredCycle = cycle; }

    /**
     * Schedule @p fault, validating it first (register index in range,
     * bit < 64, FU index names an existing unit, core/thread/pair
     * exist).  Throws std::invalid_argument with a descriptive message
     * on a record that could never apply.
     */
    void schedule(const FaultRecord &fault);

    /**
     * Apply transient faults due at @p now to @p cpu (and its pairs).
     * Called once per core per cycle.
     */
    void tick(SmtCpu &cpu, Cycle now);

    /**
     * Permanent-fault filter on execution results: returns @p value
     * XORed with the mask of any active permanent fault on
     * (@p core, @p fu_index).
     */
    std::uint64_t filterFuResult(CoreId core, unsigned fu_index,
                                 Cycle now, std::uint64_t value) const;

    /** Any permanent FU fault configured for @p core? */
    bool hasPermanentFault(CoreId core) const;

    unsigned transientsApplied() const { return applied; }

    const std::vector<FaultRecord> &scheduled() const { return faults; }

  private:
    void validate(const FaultRecord &fault) const;

    std::vector<FaultRecord> faults;
    FaultMachineShape shape;
    Random rng;
    unsigned applied = 0;
    Cycle restoredCycle = 0;
};

} // namespace rmt

#endif // RMTSIM_RMT_FAULT_INJECTOR_HH
