#include "rmt/lpq.hh"

#include "common/bits.hh"
#include "common/logging.hh"

namespace rmt
{

Lpq::Lpq(unsigned capacity, std::string name, bool ecc)
    : capacity(capacity),
      eccProtected(ecc),
      statGroup(std::move(name)),
      statPushes(statGroup, "pushes", "chunks forwarded from retirement"),
      statAcks(statGroup, "acks", "chunks accepted by the address driver"),
      statRollbacks(statGroup, "rollbacks",
                    "active-head rollbacks (I-cache misses)"),
      statFullStalls(statGroup, "full_stalls",
                     "leading retire stalls on full LPQ"),
      statEccCorrected(statGroup, "ecc_corrected",
                       "injected strikes corrected by ECC"),
      statCorruptions(statGroup, "corruptions",
                      "injected strikes that corrupted a chunk address")
{
}

void
Lpq::push(const LpqChunk &chunk)
{
    if (full())
        panic("LPQ overflow: caller must check full() first");
    if (chunk.count == 0 || chunk.count > chunkSize)
        panic("LPQ chunk with bad count %u", chunk.count);
    chunks.push_back(chunk);
    ++statPushes;
}

bool
Lpq::available(Cycle now) const
{
    return activeOffset < chunks.size() &&
           now >= chunks[activeOffset].availableAt;
}

const LpqChunk &
Lpq::activeChunk() const
{
    if (activeOffset >= chunks.size())
        panic("LPQ activeChunk with no unread chunk");
    return chunks[activeOffset];
}

void
Lpq::ack()
{
    if (activeOffset >= chunks.size())
        panic("LPQ ack with no unread chunk");
    ++activeOffset;
    ++statAcks;
}

void
Lpq::commitFetch()
{
    if (activeOffset == 0 || chunks.empty())
        panic("LPQ commitFetch without outstanding ack");
    chunks.pop_front();
    --activeOffset;
}

void
Lpq::rollback()
{
    if (activeOffset != 0)
        ++statRollbacks;
    activeOffset = 0;
}

bool
Lpq::injectAddrBitFlip(unsigned bit)
{
    if (activeOffset >= chunks.size())
        return false;
    if (eccProtected) {
        ++statEccCorrected;
        return true;
    }
    chunks[activeOffset].start = flipBit(chunks[activeOffset].start, bit);
    ++statCorruptions;
    return true;
}

} // namespace rmt
