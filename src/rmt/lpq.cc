#include "rmt/lpq.hh"

#include "common/logging.hh"

namespace rmt
{

Lpq::Lpq(unsigned capacity, std::string name)
    : capacity(capacity),
      statGroup(std::move(name)),
      statPushes(statGroup, "pushes", "chunks forwarded from retirement"),
      statAcks(statGroup, "acks", "chunks accepted by the address driver"),
      statRollbacks(statGroup, "rollbacks",
                    "active-head rollbacks (I-cache misses)"),
      statFullStalls(statGroup, "full_stalls",
                     "leading retire stalls on full LPQ")
{
}

void
Lpq::push(const LpqChunk &chunk)
{
    if (full())
        panic("LPQ overflow: caller must check full() first");
    if (chunk.count == 0 || chunk.count > chunkSize)
        panic("LPQ chunk with bad count %u", chunk.count);
    chunks.push_back(chunk);
    ++statPushes;
}

bool
Lpq::available(Cycle now) const
{
    return activeOffset < chunks.size() &&
           now >= chunks[activeOffset].availableAt;
}

const LpqChunk &
Lpq::activeChunk() const
{
    if (activeOffset >= chunks.size())
        panic("LPQ activeChunk with no unread chunk");
    return chunks[activeOffset];
}

void
Lpq::ack()
{
    if (activeOffset >= chunks.size())
        panic("LPQ ack with no unread chunk");
    ++activeOffset;
    ++statAcks;
}

void
Lpq::commitFetch()
{
    if (activeOffset == 0 || chunks.empty())
        panic("LPQ commitFetch without outstanding ack");
    chunks.pop_front();
    --activeOffset;
}

void
Lpq::rollback()
{
    if (activeOffset != 0)
        ++statRollbacks;
    activeOffset = 0;
}

} // namespace rmt
