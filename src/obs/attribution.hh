/**
 * @file
 * Commit-slot cycle-accounting taxonomy (top-down, Yasin-style).
 *
 * Every cycle the retire stage offers `commit_width` slots; each slot
 * is charged to exactly one StallCause: either an instruction retired
 * through it (Committed), a squashed instruction drained through it
 * (SquashRecovery), or the slot was lost to a named blocker.  The
 * accounting is exact by construction — the core charges precisely
 * `commit_width` slots per cycle — giving the hard conservation
 * invariant
 *
 *     sum over causes(slots) == cycles * commit_width
 *
 * which tests and tools/check.sh assert in every mode.  This header is
 * deliberately standalone (no cpu/ dependencies) so sim/ and obs/
 * consumers can use the taxonomy without pulling in the core.
 */

#ifndef RMTSIM_OBS_ATTRIBUTION_HH
#define RMTSIM_OBS_ATTRIBUTION_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <iosfwd>

namespace rmt
{

/**
 * Why a commit slot was spent.  Order is the serialization order; new
 * causes append before NumCauses so stats JSON stays stable.
 */
enum class StallCause : std::uint8_t
{
    Committed,       ///< an instruction retired through the slot
    SquashRecovery,  ///< squash drain / redirect / mispredict recovery
    FetchStarved,    ///< ROB empty, frontend has nothing in flight
    SlackThrottled,  ///< trailing fetch gated by the slack window
    LvqEmpty,        ///< trailing load waiting for the leading value
    LvqFull,         ///< leading load can't retire: LVQ full
    BoqFull,         ///< leading branch can't retire: BOQ full
    LpqFull,         ///< leading retire blocked on LPQ space
    StoreCompWait,   ///< store held for comparator / checker penalty
    MergeBufferFull, ///< verified store blocked on merge buffer space
    DcacheMiss,      ///< head incomplete: outstanding dcache miss
    IcacheMiss,      ///< frontend stalled on an icache miss
    RobFull,         ///< dispatch blocked: ROB (or phys regs) full
    IqFull,          ///< dispatch blocked: issue queue full
    SqFull,          ///< dispatch blocked: store queue full
    LqFull,          ///< dispatch blocked: load queue full
    DrainBarrier,    ///< snapshot quiesce drain in progress
    ExecLatency,     ///< head incomplete: still executing / forwarding
    UncachedWait,    ///< uncached access serialization at the head
    Idle,            ///< thread halted or workload finished
    NumCauses
};

constexpr std::size_t numStallCauses =
    static_cast<std::size_t>(StallCause::NumCauses);

/** Short stable identifier ("committed", "lvq_full", ...). */
const char *stallCauseName(StallCause cause);

/** One slot total per cause; the unit of aggregation and reporting. */
struct StallSlots
{
    std::array<std::uint64_t, numStallCauses> slots{};

    std::uint64_t &
    operator[](StallCause c)
    {
        return slots[static_cast<std::size_t>(c)];
    }
    std::uint64_t
    operator[](StallCause c) const
    {
        return slots[static_cast<std::size_t>(c)];
    }

    std::uint64_t total() const;

    StallSlots &operator+=(const StallSlots &other);

    /** True iff total() == cycles * width — the conservation law. */
    bool conserves(std::uint64_t cycles, unsigned width) const;

    /** `{"committed":N,...}` in enum order, every cause present. */
    void json(std::ostream &os) const;
};

} // namespace rmt

#endif // RMTSIM_OBS_ATTRIBUTION_HH
