/**
 * @file
 * Host-side profiling: wall-clock time of a run's build / warmup /
 * measure phases plus the achieved simulation rate, attached to every
 * RunResult so campaigns can report where host time goes.
 */

#ifndef RMTSIM_OBS_HOST_PROFILE_HH
#define RMTSIM_OBS_HOST_PROFILE_HH

#include <chrono>
#include <string>

namespace rmt
{

/** Wall-clock phase breakdown of one simulation run. */
struct HostTiming
{
    double build_seconds = 0;       ///< Simulation construction
    double warmup_seconds = 0;      ///< cycles until warm-up boundary
    double measure_seconds = 0;     ///< remaining cycles + drain
    double sim_kips = 0;            ///< committed kilo-insts / wall sec

    double
    totalSeconds() const
    {
        return build_seconds + warmup_seconds + measure_seconds;
    }

    /** `{"build_ms":...,"warmup_ms":...,"measure_ms":...,"kips":...}` */
    std::string json() const;
};

/** Monotonic stopwatch with lap support. */
class WallTimer
{
  public:
    WallTimer() : start(Clock::now()), lastLap(start) {}

    /** Seconds since construction. */
    double
    elapsed() const
    {
        return std::chrono::duration<double>(Clock::now() - start)
            .count();
    }

    /** Seconds since the previous lap() (or construction). */
    double
    lap()
    {
        const auto now = Clock::now();
        const double s =
            std::chrono::duration<double>(now - lastLap).count();
        lastLap = now;
        return s;
    }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start;
    Clock::time_point lastLap;
};

} // namespace rmt

#endif // RMTSIM_OBS_HOST_PROFILE_HH
