#include "obs/report.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

namespace rmt
{

namespace
{

/** One batch record reduced to the fields the report needs. */
struct Job
{
    std::string mode;
    std::string mix;
    std::string cell;       ///< mix + instruction budgets (base match)
    bool ok = false;
    double ipc = 0;         ///< summed per-thread IPC
    double efficiency = -1;
};

/** Stratified campaigns append one "avf_summary" object after the
 *  per-trial records, and degraded campaigns append a schema-tagged
 *  failures summary; every table skips them rather than misreading
 *  them as jobs (job records never carry either key). */
bool
isSummaryRecord(const JsonValue &rec)
{
    return rec.find("avf_summary") != nullptr ||
           rec.find("schema") != nullptr;
}

Job
reduceRecord(const JsonValue &rec)
{
    Job job;
    job.ok = rec.strOr("status", "failed") == "ok";

    const JsonValue *options = rec.find("options");
    if (options)
        job.mode = options->strOr("mode", "?");

    if (const JsonValue *workloads = rec.find("workloads");
        workloads && workloads->isArray()) {
        for (const JsonValue &w : workloads->array()) {
            if (!job.mix.empty())
                job.mix += "+";
            job.mix += w.isString() ? w.str() : "?";
        }
    }
    if (job.mix.empty())
        job.mix = "?";

    job.cell = job.mix;
    if (options) {
        job.cell += "@" +
                    jsonNum(options->numberOr("warmup_insts", 0)) + "+" +
                    jsonNum(options->numberOr("measure_insts", 0));
    }

    if (const JsonValue *threads = rec.find("threads");
        threads && threads->isArray()) {
        for (const JsonValue &t : threads->array())
            job.ipc += t.numberOr("ipc", 0);
    }
    job.efficiency = rec.numberOr("mean_efficiency", -1);
    return job;
}

} // namespace

std::vector<JsonValue>
parseJsonlLines(const std::vector<std::string> &lines,
                unsigned &bad_lines)
{
    std::vector<JsonValue> records;
    bad_lines = 0;
    for (const std::string &line : lines) {
        if (line.find_first_not_of(" \t\r\n") == std::string::npos)
            continue;
        JsonValue value;
        if (parseJson(line, value) && value.isObject())
            records.push_back(std::move(value));
        else
            ++bad_lines;
    }
    return records;
}

CampaignReport
buildReport(const std::vector<JsonValue> &records,
            const ReportOptions &options)
{
    CampaignReport report;
    report.base_mode = options.base_mode;

    std::vector<Job> jobs;
    jobs.reserve(records.size());
    for (const JsonValue &rec : records) {
        if (!isSummaryRecord(rec))
            jobs.push_back(reduceRecord(rec));
    }

    // Baseline IPC per cell: mean over ok base-mode jobs.
    std::map<std::string, std::pair<double, unsigned>> base_cells;
    for (const Job &job : jobs) {
        if (job.ok && job.mode == options.base_mode) {
            auto &[sum, n] = base_cells[job.cell];
            sum += job.ipc;
            ++n;
        }
    }
    auto baseIpc = [&](const std::string &cell, double &out) {
        const auto it = base_cells.find(cell);
        if (it == base_cells.end() || it->second.second == 0)
            return false;
        out = it->second.first / it->second.second;
        return true;
    };

    // Per-mode rows, first-seen order.
    struct ModeAcc
    {
        ReportModeRow row;
        double ipc_sum = 0;
        unsigned ipc_n = 0;
        double eff_sum = 0;
        unsigned eff_n = 0;
        double deg_sum = 0;
    };
    std::vector<ModeAcc> mode_accs;
    auto modeAcc = [&](const std::string &mode) -> ModeAcc & {
        for (ModeAcc &acc : mode_accs) {
            if (acc.row.mode == mode)
                return acc;
        }
        mode_accs.emplace_back();
        mode_accs.back().row.mode = mode;
        return mode_accs.back();
    };

    // Per-(mix, mode) cells, mix-major, first-seen order.
    struct MixAcc
    {
        ReportMixRow row;
        double ipc_sum = 0;
        double deg_sum = 0;
        unsigned deg_n = 0;
    };
    std::vector<MixAcc> mix_accs;
    auto mixAcc = [&](const std::string &mix,
                      const std::string &mode) -> MixAcc & {
        for (MixAcc &acc : mix_accs) {
            if (acc.row.mix == mix && acc.row.mode == mode)
                return acc;
        }
        mix_accs.emplace_back();
        mix_accs.back().row.mix = mix;
        mix_accs.back().row.mode = mode;
        return mix_accs.back();
    };

    for (const Job &job : jobs) {
        ++report.total_jobs;
        ModeAcc &macc = modeAcc(job.mode);
        ++macc.row.jobs;
        if (!job.ok) {
            ++macc.row.failed;
            ++report.failed_jobs;
            continue;
        }
        macc.ipc_sum += job.ipc;
        ++macc.ipc_n;
        if (job.efficiency >= 0) {
            macc.eff_sum += job.efficiency;
            ++macc.eff_n;
        }

        MixAcc &xacc = mixAcc(job.mix, job.mode);
        ++xacc.row.jobs;
        xacc.ipc_sum += job.ipc;

        double base = 0;
        if (baseIpc(job.cell, base) && base > 0) {
            const double deg = 1.0 - job.ipc / base;
            macc.deg_sum += deg;
            ++macc.row.with_base;
            xacc.deg_sum += deg;
            ++xacc.deg_n;
        }
    }

    for (ModeAcc &acc : mode_accs) {
        if (acc.ipc_n)
            acc.row.mean_ipc = acc.ipc_sum / acc.ipc_n;
        if (acc.eff_n)
            acc.row.mean_efficiency = acc.eff_sum / acc.eff_n;
        if (acc.row.with_base)
            acc.row.mean_degradation = acc.deg_sum / acc.row.with_base;
        report.modes.push_back(acc.row);
    }
    // Mix-major: group all modes of one mix together, mixes in
    // first-seen order.
    std::vector<std::string> mix_order;
    for (const MixAcc &acc : mix_accs) {
        bool seen = false;
        for (const std::string &m : mix_order)
            seen = seen || m == acc.row.mix;
        if (!seen)
            mix_order.push_back(acc.row.mix);
    }
    for (const std::string &mix : mix_order) {
        for (MixAcc &acc : mix_accs) {
            if (acc.row.mix != mix)
                continue;
            if (acc.row.jobs)
                acc.row.mean_ipc = acc.ipc_sum / acc.row.jobs;
            if (acc.deg_n) {
                acc.row.mean_degradation = acc.deg_sum / acc.deg_n;
                acc.row.has_base = true;
            }
            report.mixes.push_back(acc.row);
        }
    }
    return report;
}

namespace
{

std::string
degradationCell(bool has_base, const std::string &mode,
                const std::string &base_mode, double degradation)
{
    if (mode == base_mode)
        return "base";
    if (!has_base)
        return "-";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%+.1f%%", -degradation * 100);
    return buf;
}

} // namespace

std::string
formatReport(const CampaignReport &report, const ReportOptions &options)
{
    std::string out;
    char line[160];

    std::snprintf(line, sizeof(line), "%-10s %5s %5s %9s %8s %9s\n",
                  "mode", "jobs", "fail", "mean-IPC", "vs-base",
                  "mean-eff");
    out += line;
    for (const ReportModeRow &row : report.modes) {
        std::string eff = "-";
        if (row.mean_efficiency >= 0) {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%.3f",
                          row.mean_efficiency);
            eff = buf;
        }
        std::snprintf(
            line, sizeof(line), "%-10s %5u %5u %9.3f %8s %9s\n",
            row.mode.c_str(), row.jobs, row.failed, row.mean_ipc,
            degradationCell(row.with_base > 0, row.mode,
                            report.base_mode, row.mean_degradation)
                .c_str(),
            eff.c_str());
        out += line;
    }

    if (options.per_mix && !report.mixes.empty()) {
        out += "\n";
        std::snprintf(line, sizeof(line), "%-24s %-10s %5s %9s %8s\n",
                      "mix", "mode", "jobs", "mean-IPC", "vs-base");
        out += line;
        for (const ReportMixRow &row : report.mixes) {
            std::snprintf(
                line, sizeof(line), "%-24s %-10s %5u %9.3f %8s\n",
                row.mix.c_str(), row.mode.c_str(), row.jobs,
                row.mean_ipc,
                degradationCell(row.has_base, row.mode,
                                report.base_mode,
                                row.mean_degradation)
                    .c_str());
            out += line;
        }
    }

    std::snprintf(line, sizeof(line),
                  "%u jobs (%u failed), degradation vs mode '%s'\n",
                  report.total_jobs, report.failed_jobs,
                  report.base_mode.c_str());
    out += line;
    return out;
}

CoverageReport
buildCoverageReport(const std::vector<JsonValue> &records,
                    double confidence)
{
    CoverageReport report;
    report.confidence = confidence;
    auto kindRow = [&](const std::string &kind) -> CoverageKindRow & {
        for (CoverageKindRow &row : report.kinds) {
            if (row.kind == kind)
                return row;
        }
        report.kinds.emplace_back();
        report.kinds.back().kind = kind;
        return report.kinds.back();
    };
    auto modeKindRow = [&](const std::string &mode,
                           const std::string &kind)
        -> CoverageModeKindRow & {
        for (CoverageModeKindRow &row : report.mode_kinds) {
            if (row.mode == mode && row.kind == kind)
                return row;
        }
        report.mode_kinds.emplace_back();
        report.mode_kinds.back().mode = mode;
        report.mode_kinds.back().kind = kind;
        return report.mode_kinds.back();
    };

    for (const JsonValue &rec : records) {
        if (isSummaryRecord(rec))
            continue;
        ++report.total_jobs;

        std::string kind = "none";
        if (const JsonValue *faults = rec.find("faults");
            faults && faults->isArray() && !faults->array().empty()) {
            kind = faults->array().front().strOr("kind", "?");
        }
        CoverageKindRow &row = kindRow(kind);

        if (rec.strOr("status", "failed") != "ok") {
            ++row.failed;
            continue;
        }
        const std::string verdict = rec.strOr("verdict", "");
        if (verdict.empty()) {
            ++report.unclassified;
            continue;
        }
        ++row.trials;
        if (verdict == "masked")
            ++row.masked;
        else if (verdict == "detected")
            ++row.detected;
        else if (verdict == "sdc")
            ++row.sdc;
        else if (verdict == "hang")
            ++row.hang;

        std::string mode;
        if (const JsonValue *options = rec.find("options"))
            mode = options->strOr("mode", "");
        if (!mode.empty()) {
            CoverageModeKindRow &mk = modeKindRow(mode, kind);
            ++mk.trials;
            if (verdict == "masked")
                ++mk.masked;
            else if (verdict == "sdc")
                ++mk.sdc;
        }

        const double latency = rec.numberOr("detection_latency", -1);
        if (latency >= 0) {
            row.mean_latency =
                (std::max(row.mean_latency, 0.0) * row.latency_n +
                 latency) /
                (row.latency_n + 1);
            ++row.latency_n;
            unsigned bucket = kCoverageHistogramSize - 1;
            for (unsigned i = 0; i < kCoverageHistogramSize - 1; ++i) {
                if (latency < kCoverageLatencyBuckets[i]) {
                    bucket = i;
                    break;
                }
            }
            ++row.histogram[bucket];
        }
    }

    for (CoverageKindRow &row : report.kinds) {
        const unsigned unmasked = row.trials - row.masked;
        if (unmasked)
            row.detection_rate =
                static_cast<double>(row.detected) / unmasked;
        if (row.trials) {
            StratumCounts counts;
            counts.trials = row.trials;
            counts.masked = row.masked;
            counts.sdc = row.sdc;
            row.avf = counts.avf();
            row.avf_ci = counts.avfInterval(confidence);
            row.sdc_rate = counts.sdcRate();
            row.sdc_ci = counts.sdcInterval(confidence);
        }
    }
    for (CoverageModeKindRow &row : report.mode_kinds) {
        StratumCounts counts;
        counts.trials = row.trials;
        counts.masked = row.masked;
        counts.sdc = row.sdc;
        row.avf = counts.avf();
        row.avf_ci = counts.avfInterval(confidence);
        row.sdc_rate = counts.sdcRate();
        row.sdc_ci = counts.sdcInterval(confidence);
    }
    // A kind is "not yet separated" when its AVF interval under one
    // mode still overlaps the same kind's interval under another.
    for (CoverageModeKindRow &a : report.mode_kinds) {
        for (const CoverageModeKindRow &b : report.mode_kinds) {
            if (a.kind == b.kind && a.mode != b.mode &&
                a.avf_ci.overlaps(b.avf_ci)) {
                a.overlaps_other_mode = true;
            }
        }
    }
    // Kind-major presentation: all modes of one kind adjacent.
    std::stable_sort(report.mode_kinds.begin(),
                     report.mode_kinds.end(),
                     [&](const CoverageModeKindRow &a,
                         const CoverageModeKindRow &b) {
                         auto pos = [&](const std::string &kind) {
                             std::size_t i = 0;
                             for (; i < report.kinds.size(); ++i) {
                                 if (report.kinds[i].kind == kind)
                                     break;
                             }
                             return i;
                         };
                         return pos(a.kind) < pos(b.kind);
                     });
    return report;
}

namespace
{

std::string
intervalCell(double point, const Interval &ci, bool valid)
{
    if (!valid)
        return "-";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f [%.3f,%.3f]", point, ci.low,
                  ci.high);
    return buf;
}

} // namespace

std::string
formatCoverageReport(const CoverageReport &report)
{
    std::string out;
    char line[240];

    std::snprintf(line, sizeof(line),
                  "%-6s %6s %5s %7s %9s %5s %5s %8s %9s  %-19s %-19s\n",
                  "kind", "trials", "fail", "masked", "detected", "sdc",
                  "hang", "det-rate", "mean-lat", "AVF [CI]",
                  "SDC [CI]");
    out += line;
    for (const CoverageKindRow &row : report.kinds) {
        std::string rate = "-", lat = "-";
        char buf[32];
        if (row.detection_rate >= 0) {
            std::snprintf(buf, sizeof(buf), "%.0f%%",
                          row.detection_rate * 100);
            rate = buf;
        }
        if (row.latency_n) {
            std::snprintf(buf, sizeof(buf), "%.1f", row.mean_latency);
            lat = buf;
        }
        const bool valid = row.trials > 0;
        std::snprintf(
            line, sizeof(line),
            "%-6s %6u %5u %7u %9u %5u %5u %8s %9s  %-19s %-19s\n",
            row.kind.c_str(), row.trials, row.failed, row.masked,
            row.detected, row.sdc, row.hang, rate.c_str(), lat.c_str(),
            intervalCell(row.avf, row.avf_ci, valid).c_str(),
            intervalCell(row.sdc_rate, row.sdc_ci, valid).c_str());
        out += line;
    }

    // Mode comparison: only worth a table when the stream actually
    // mixes modes.
    bool multi_mode = false;
    for (const CoverageModeKindRow &row : report.mode_kinds) {
        multi_mode = multi_mode ||
                     row.mode != report.mode_kinds.front().mode;
    }
    if (multi_mode) {
        std::snprintf(line, sizeof(line),
                      "\nper-mode AVF at %.0f%% confidence "
                      "('~' = interval overlaps another mode)\n",
                      report.confidence * 100);
        out += line;
        std::snprintf(line, sizeof(line),
                      "%-6s %-10s %6s  %-19s %-19s %s\n", "kind",
                      "mode", "trials", "AVF [CI]", "SDC [CI]",
                      "sep");
        out += line;
        for (const CoverageModeKindRow &row : report.mode_kinds) {
            std::snprintf(
                line, sizeof(line), "%-6s %-10s %6u  %-19s %-19s %s\n",
                row.kind.c_str(), row.mode.c_str(), row.trials,
                intervalCell(row.avf, row.avf_ci, row.trials > 0)
                    .c_str(),
                intervalCell(row.sdc_rate, row.sdc_ci, row.trials > 0)
                    .c_str(),
                row.overlaps_other_mode ? "~" : "yes");
            out += line;
        }
    }

    // Latency histogram, one row per kind that has any latencies.
    bool any_latency = false;
    for (const CoverageKindRow &row : report.kinds)
        any_latency = any_latency || row.latency_n > 0;
    if (any_latency) {
        out += "\ndetection-latency histogram (cycles)\n";
        std::string header = "kind  ";
        unsigned lo = 0;
        for (unsigned i = 0; i < kCoverageHistogramSize; ++i) {
            char buf[32];
            if (i + 1 < kCoverageHistogramSize) {
                std::snprintf(buf, sizeof(buf), " %5u-%-5u", lo,
                              kCoverageLatencyBuckets[i] - 1);
                lo = kCoverageLatencyBuckets[i];
            } else {
                std::snprintf(buf, sizeof(buf), " %5u+     ", lo);
            }
            header += buf;
        }
        out += header + "\n";
        for (const CoverageKindRow &row : report.kinds) {
            if (!row.latency_n)
                continue;
            std::snprintf(line, sizeof(line), "%-6s", row.kind.c_str());
            out += line;
            for (unsigned i = 0; i < kCoverageHistogramSize; ++i) {
                std::snprintf(line, sizeof(line), " %11u",
                              row.histogram[i]);
                out += line;
            }
            out += "\n";
        }
    }

    std::snprintf(line, sizeof(line),
                  "%u jobs (%u without verdict)\n", report.total_jobs,
                  report.unclassified);
    out += line;
    return out;
}

AttributionReport
buildAttributionReport(const std::vector<JsonValue> &records,
                       const ReportOptions &options)
{
    AttributionReport report;
    report.base_mode = options.base_mode;

    struct AttrJob
    {
        std::string mode;
        std::string cell;
        double width = 0;
        double core_cycles = 0;
        std::array<double, numStallCauses> slots{};
    };
    std::vector<AttrJob> jobs;
    for (const JsonValue &rec : records) {
        if (isSummaryRecord(rec))
            continue;
        ++report.total_jobs;
        if (rec.strOr("status", "failed") != "ok")
            continue;
        const JsonValue *stats = rec.find("stats");
        const JsonValue *attr =
            stats ? stats->find("attribution") : nullptr;
        if (!attr || !attr->isObject())
            continue;

        const Job reduced = reduceRecord(rec);
        AttrJob job;
        job.mode = reduced.mode;
        job.cell = reduced.cell;
        job.width = attr->numberOr("width", 0);
        job.core_cycles = attr->numberOr("core_cycles", 0);
        const JsonValue *slots = attr->find("slots");
        double sum = 0;
        for (std::size_t i = 0; i < numStallCauses; ++i) {
            const char *name =
                stallCauseName(static_cast<StallCause>(i));
            job.slots[i] = slots ? slots->numberOr(name, 0) : 0;
            sum += job.slots[i];
        }
        ++report.with_attribution;
        // The conservation invariant: every cycle × commit slot of
        // every core charged to exactly one cause.  Counter values are
        // exact in doubles far past any realistic run length.
        if (sum != job.width * job.core_cycles)
            ++report.conservation_violations;
        jobs.push_back(std::move(job));
    }

    // Baseline per cell: mean core-cycles and slots over ok base jobs.
    struct CellAcc
    {
        double cycles = 0;
        std::array<double, numStallCauses> slots{};
        unsigned n = 0;
    };
    std::map<std::string, CellAcc> base_cells;
    for (const AttrJob &job : jobs) {
        if (job.mode != options.base_mode)
            continue;
        CellAcc &acc = base_cells[job.cell];
        acc.cycles += job.core_cycles;
        for (std::size_t i = 0; i < numStallCauses; ++i)
            acc.slots[i] += job.slots[i];
        ++acc.n;
    }

    struct ModeAcc
    {
        AttributionModeRow row;
        double cyc_sum = 0;
        std::array<double, numStallCauses> slot_sum{};
        double dcyc_sum = 0;
        std::array<double, numStallCauses> dslot_sum{};
    };
    std::vector<ModeAcc> accs;
    auto modeAcc = [&](const std::string &mode) -> ModeAcc & {
        for (ModeAcc &acc : accs) {
            if (acc.row.mode == mode)
                return acc;
        }
        accs.emplace_back();
        accs.back().row.mode = mode;
        return accs.back();
    };
    for (const AttrJob &job : jobs) {
        ModeAcc &acc = modeAcc(job.mode);
        ++acc.row.jobs;
        acc.row.width = static_cast<unsigned>(job.width);
        acc.cyc_sum += job.core_cycles;
        for (std::size_t i = 0; i < numStallCauses; ++i)
            acc.slot_sum[i] += job.slots[i];

        const auto it = base_cells.find(job.cell);
        if (it == base_cells.end() || it->second.n == 0)
            continue;
        const CellAcc &base = it->second;
        ++acc.row.with_base;
        acc.dcyc_sum += job.core_cycles - base.cycles / base.n;
        for (std::size_t i = 0; i < numStallCauses; ++i)
            acc.dslot_sum[i] += job.slots[i] - base.slots[i] / base.n;
    }
    for (ModeAcc &acc : accs) {
        if (acc.row.jobs) {
            acc.row.mean_core_cycles = acc.cyc_sum / acc.row.jobs;
            for (std::size_t i = 0; i < numStallCauses; ++i)
                acc.row.mean_slots[i] = acc.slot_sum[i] / acc.row.jobs;
        }
        if (acc.row.with_base) {
            acc.row.delta_cycles = acc.dcyc_sum / acc.row.with_base;
            for (std::size_t i = 0; i < numStallCauses; ++i) {
                acc.row.delta_slots[i] =
                    acc.dslot_sum[i] / acc.row.with_base;
            }
        }
        report.modes.push_back(acc.row);
    }
    return report;
}

std::string
formatAttributionReport(const AttributionReport &report)
{
    std::string out;
    char line[200];

    std::snprintf(line, sizeof(line), "%-10s %5s %5s %13s %10s %12s\n",
                  "mode", "jobs", "width", "core-cycles", "committed%",
                  "vs-base-cyc");
    out += line;
    for (const AttributionModeRow &row : report.modes) {
        const double total_slots =
            row.mean_core_cycles * row.width;
        char committed[32] = "-";
        if (total_slots > 0) {
            std::snprintf(
                committed, sizeof(committed), "%.1f%%",
                row.mean_slots[static_cast<std::size_t>(
                    StallCause::Committed)] /
                    total_slots * 100);
        }
        char vs_base[32];
        if (row.mode == report.base_mode)
            std::snprintf(vs_base, sizeof(vs_base), "base");
        else if (!row.with_base)
            std::snprintf(vs_base, sizeof(vs_base), "-");
        else
            std::snprintf(vs_base, sizeof(vs_base), "%+.0f",
                          row.delta_cycles);
        std::snprintf(line, sizeof(line),
                      "%-10s %5u %5u %13.0f %10s %12s\n",
                      row.mode.c_str(), row.jobs, row.width,
                      row.mean_core_cycles, committed, vs_base);
        out += line;
    }

    // Degradation decomposition: the extra (or saved) commit slots of
    // each mode vs its matched base cells, by cause.  Exact by
    // construction: the slot deltas sum to width * delta_cycles.
    for (const AttributionModeRow &row : report.modes) {
        if (row.mode == report.base_mode || !row.with_base)
            continue;
        std::snprintf(line, sizeof(line),
                      "\n%s vs %s: %+.0f core-cycles = %+.0f commit "
                      "slots, by cause\n",
                      row.mode.c_str(), report.base_mode.c_str(),
                      row.delta_cycles, row.delta_cycles * row.width);
        out += line;
        std::array<std::size_t, numStallCauses> order;
        for (std::size_t i = 0; i < numStallCauses; ++i)
            order[i] = i;
        std::stable_sort(order.begin(), order.end(),
                         [&](std::size_t a, std::size_t b) {
                             return std::abs(row.delta_slots[a]) >
                                    std::abs(row.delta_slots[b]);
                         });
        const double dslots_total = row.delta_cycles * row.width;
        for (const std::size_t i : order) {
            const double d = row.delta_slots[i];
            if (d == 0)
                continue;
            char share[32] = "";
            if (dslots_total != 0) {
                std::snprintf(share, sizeof(share), "  (%.1f%%)",
                              d / dslots_total * 100);
            }
            std::snprintf(line, sizeof(line),
                          "  %-18s %+12.0f slots  %+9.1f cyc%s\n",
                          stallCauseName(static_cast<StallCause>(i)),
                          d, d / row.width, share);
            out += line;
        }
    }

    std::snprintf(line, sizeof(line),
                  "%u jobs (%u with attribution), conservation %s\n",
                  report.total_jobs, report.with_attribution,
                  report.conservation_violations
                      ? "VIOLATED"
                      : "OK");
    out += line;
    if (report.conservation_violations) {
        std::snprintf(line, sizeof(line),
                      "CONSERVATION VIOLATION: %u record%s where "
                      "sum(slots) != core_cycles * width\n",
                      report.conservation_violations,
                      report.conservation_violations == 1 ? "" : "s");
        out += line;
    }
    return out;
}

SnapshotReport
buildSnapshotReport(const std::vector<JsonValue> &records)
{
    SnapshotReport report;
    double saved_sum = 0, bytes_sum = 0;
    for (const JsonValue &rec : records) {
        if (isSummaryRecord(rec))
            continue;
        ++report.total_jobs;
        const JsonValue *extra = rec.find("extra");
        if (!extra || !extra->isObject())
            continue;
        const double hit = extra->numberOr("snapshot_hit", -1);
        if (hit < 0)
            continue;
        ++report.fork_eligible;
        if (hit > 0.5) {
            ++report.hits;
            saved_sum += extra->numberOr("snapshot_saved_cycles", 0);
            bytes_sum += extra->numberOr("snapshot_bytes", 0);
        }
    }
    if (report.fork_eligible) {
        report.hit_rate = static_cast<double>(report.hits) /
                          report.fork_eligible;
    }
    report.total_saved_cycles = saved_sum;
    if (report.hits) {
        report.mean_saved_cycles = saved_sum / report.hits;
        report.mean_bytes = bytes_sum / report.hits;
    }
    return report;
}

std::string
formatSnapshotReport(const SnapshotReport &report)
{
    std::string out;
    char line[160];

    if (!report.fork_eligible) {
        std::snprintf(line, sizeof(line),
                      "%u jobs, none fork-eligible (run the campaign "
                      "with --snapshot-every)\n",
                      report.total_jobs);
        out += line;
        return out;
    }
    std::snprintf(line, sizeof(line),
                  "%-10s %8s %9s %13s %13s %11s\n", "eligible", "hits",
                  "hit-rate", "saved-cycles", "mean-saved", "mean-bytes");
    out += line;
    char rate[32], mean_saved[32], mean_bytes[32];
    std::snprintf(rate, sizeof(rate), "%.0f%%", report.hit_rate * 100);
    if (report.hits) {
        std::snprintf(mean_saved, sizeof(mean_saved), "%.0f",
                      report.mean_saved_cycles);
        std::snprintf(mean_bytes, sizeof(mean_bytes), "%.0f",
                      report.mean_bytes);
    } else {
        std::snprintf(mean_saved, sizeof(mean_saved), "-");
        std::snprintf(mean_bytes, sizeof(mean_bytes), "-");
    }
    std::snprintf(line, sizeof(line),
                  "%-10u %8u %9s %13.0f %13s %11s\n",
                  report.fork_eligible, report.hits, rate,
                  report.total_saved_cycles, mean_saved, mean_bytes);
    out += line;
    std::snprintf(line, sizeof(line),
                  "%u jobs, %u fork-eligible fault trials\n",
                  report.total_jobs, report.fork_eligible);
    out += line;
    return out;
}

FailuresReport
buildFailuresReport(const std::vector<JsonValue> &records)
{
    FailuresReport report;
    for (const JsonValue &rec : records) {
        if (rec.strOr("schema", "") == "rmtsim-failures-v1") {
            report.has_summary = true;
            continue;
        }
        if (isSummaryRecord(rec))
            continue;
        ++report.total_jobs;
        if (rec.strOr("status", "failed") == "ok")
            continue;
        FailureRow row;
        row.id = static_cast<std::uint64_t>(rec.numberOr("id", 0));
        row.label = rec.strOr("label", "?");
        row.error = rec.strOr("error", "?");
        row.attempts =
            static_cast<unsigned>(rec.numberOr("attempts", 0));
        auto isTrue = [&rec](const char *key) {
            const JsonValue *v = rec.find(key);
            return v && v->isBool() && v->boolean();
        };
        row.timed_out = isTrue("timed_out");
        row.quarantined = isTrue("quarantined");
        ++report.failed;
        if (row.quarantined)
            ++report.quarantined;
        if (row.timed_out)
            ++report.timed_out;
        report.rows.push_back(std::move(row));
    }
    std::sort(report.rows.begin(), report.rows.end(),
              [](const FailureRow &a, const FailureRow &b) {
                  return a.id < b.id;
              });
    for (const FailureRow &row : report.rows) {
        auto it = std::find_if(
            report.by_error.begin(), report.by_error.end(),
            [&row](const auto &e) { return e.first == row.error; });
        if (it == report.by_error.end())
            report.by_error.emplace_back(row.error, 1);
        else
            ++it->second;
    }
    return report;
}

std::string
formatFailuresReport(const FailuresReport &report)
{
    std::string out;
    char line[256];

    if (!report.failed) {
        std::snprintf(line, sizeof(line),
                      "no failures in %u job%s\n", report.total_jobs,
                      report.total_jobs == 1 ? "" : "s");
        out += line;
        return out;
    }
    std::snprintf(line, sizeof(line),
                  "%u of %u jobs failed (%u quarantined, %u timed "
                  "out)%s\n\n",
                  report.failed, report.total_jobs, report.quarantined,
                  report.timed_out,
                  report.has_summary ? "" : " — no failures summary "
                                            "record (interrupted run?)");
    out += line;

    std::snprintf(line, sizeof(line), "%6s  %s\n", "count", "error");
    out += line;
    for (const auto &[error, count] : report.by_error) {
        std::snprintf(line, sizeof(line), "%6u  %s\n", count,
                      error.c_str());
        out += line;
    }
    out += "\n";

    std::snprintf(line, sizeof(line), "%8s %8s %2s %2s  %s\n", "id",
                  "attempts", "q", "t", "label");
    out += line;
    for (const FailureRow &row : report.rows) {
        std::snprintf(line, sizeof(line),
                      "%8llu %8u %2s %2s  %s\n",
                      static_cast<unsigned long long>(row.id),
                      row.attempts, row.quarantined ? "*" : ".",
                      row.timed_out ? "*" : ".", row.label.c_str());
        out += line;
    }
    return out;
}

} // namespace rmt
