#include "obs/pipetrace.hh"

#include <ostream>

#include "common/json.hh"

namespace rmt
{

PipeTracer::PipeTracer(std::ostream &out, std::uint64_t max_events)
    : os(out), maxEvents(max_events)
{
    os << "[";
}

PipeTracer::~PipeTracer()
{
    finish();
}

void
PipeTracer::finish()
{
    if (finished)
        return;
    finished = true;
    os << "\n]\n";
    os.flush();
}

void
PipeTracer::metadata(CoreId core, ThreadId tid)
{
    if (core < 8 && tid < 4) {
        if (metaDone[core][tid])
            return;
        metaDone[core][tid] = true;
    } else {
        return;     // out of the display-name table; events still flow
    }
    const char *sep = first ? "\n" : ",\n";
    first = false;
    if (!procDone[core]) {
        procDone[core] = true;
        os << sep << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":"
           << unsigned(core) << ",\"tid\":0,\"args\":{\"name\":\"core"
           << unsigned(core) << "\"}}";
        sep = ",\n";
    }
    os << sep << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":"
       << unsigned(core) << ",\"tid\":" << unsigned(tid)
       << ",\"args\":{\"name\":\"t" << unsigned(tid) << "\"}}";
}

void
PipeTracer::event(const char *name, CoreId core, ThreadId tid, Cycle start,
                  Cycle end, const DynInst &inst)
{
    const Cycle dur = end > start ? end - start : 0;
    os << (first ? "\n" : ",\n") << "{\"name\":\"" << name
       << "\",\"ph\":\"X\",\"cat\":\"pipe\",\"pid\":" << unsigned(core)
       << ",\"tid\":" << unsigned(tid) << ",\"ts\":" << start
       << ",\"dur\":" << dur << ",\"args\":{\"pc\":" << inst.pc
       << ",\"seq\":" << inst.seq << ",\"disasm\":\""
       << jsonEscape(inst.si.disassemble()) << "\"}}";
    first = false;
    ++_events;
}

void
PipeTracer::recordRetire(CoreId core, ThreadId tid, const DynInst &inst,
                         Cycle retire)
{
    if (finished)
        return;
    if (maxEvents && _events >= maxEvents) {
        ++_dropped;
        return;
    }
    metadata(core, tid);
    // Stage spans partition the instruction's lifetime: fetch (IBOX
    // transit), rename (dispatch to first issue; the in-queue wait),
    // execute (issue to completion), commit (complete to retirement).
    event("fetch", core, tid, inst.fetchCycle, inst.dispatchCycle, inst);
    const Cycle exec_start = inst.issued ? inst.issueCycle
                                         : inst.completeCycle;
    event("rename", core, tid, inst.dispatchCycle, exec_start, inst);
    if (inst.issued)
        event("execute", core, tid, inst.issueCycle, inst.completeCycle,
              inst);
    event("commit", core, tid, inst.completeCycle, retire, inst);
}

} // namespace rmt
