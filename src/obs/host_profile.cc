#include "obs/host_profile.hh"

#include "common/json.hh"

namespace rmt
{

std::string
HostTiming::json() const
{
    std::string s;
    s.reserve(128);
    s += "{\"build_ms\":";
    s += jsonNum(build_seconds * 1e3);
    s += ",\"warmup_ms\":";
    s += jsonNum(warmup_seconds * 1e3);
    s += ",\"measure_ms\":";
    s += jsonNum(measure_seconds * 1e3);
    s += ",\"kips\":";
    s += jsonNum(sim_kips);
    s += "}";
    return s;
}

} // namespace rmt
