#include "obs/host_profile.hh"

#include <sstream>

#include "common/json.hh"

namespace rmt
{

std::string
HostTiming::json() const
{
    std::ostringstream os;
    os << "{\"build_ms\":" << jsonNum(build_seconds * 1e3)
       << ",\"warmup_ms\":" << jsonNum(warmup_seconds * 1e3)
       << ",\"measure_ms\":" << jsonNum(measure_seconds * 1e3)
       << ",\"kips\":" << jsonNum(sim_kips) << "}";
    return os.str();
}

} // namespace rmt
