/**
 * @file
 * Per-instruction lifecycle tracer: every retired instruction's
 * fetch/rename/execute/commit stage spans stream out as Chrome
 * trace-event JSON ("X" complete events, one process per core, one
 * track per hardware thread), directly loadable in Perfetto or
 * chrome://tracing.  Timestamps are simulated cycles interpreted as
 * microseconds.
 *
 * The tracer hangs off SmtCpu::setPipeTracer(); when detached the hot
 * path pays one pointer test per retirement and the PR-3 slab pool
 * stays allocation-free (the stage timestamps already live on DynInst).
 */

#ifndef RMTSIM_OBS_PIPETRACE_HH
#define RMTSIM_OBS_PIPETRACE_HH

#include <cstdint>
#include <iosfwd>

#include "cpu/dyn_inst.hh"

namespace rmt
{

class PipeTracer
{
  public:
    /** Stream trace events into @p os.  @p max_events bounds the
     *  number of stage events emitted (0 = unbounded); instructions
     *  past the cap are counted in dropped(). */
    explicit PipeTracer(std::ostream &os, std::uint64_t max_events = 0);
    ~PipeTracer();

    PipeTracer(const PipeTracer &) = delete;
    PipeTracer &operator=(const PipeTracer &) = delete;

    /** Emit the stage spans of @p inst, retiring at cycle @p retire. */
    void recordRetire(CoreId core, ThreadId tid, const DynInst &inst,
                      Cycle retire);

    /** Close the JSON array (idempotent; also run by the destructor). */
    void finish();

    std::uint64_t events() const { return _events; }
    std::uint64_t dropped() const { return _dropped; }

  private:
    void metadata(CoreId core, ThreadId tid);
    void event(const char *name, CoreId core, ThreadId tid, Cycle start,
               Cycle end, const DynInst &inst);

    std::ostream &os;
    std::uint64_t maxEvents;
    std::uint64_t _events = 0;
    std::uint64_t _dropped = 0;
    bool first = true;
    bool finished = false;
    bool procDone[8] = {};          ///< per-core process_name emitted
    bool metaDone[8][4] = {};       ///< [core][tid] names emitted
};

} // namespace rmt

#endif // RMTSIM_OBS_PIPETRACE_HH
