#include "obs/stats_json.hh"

#include <sstream>

#include "cmp/chip.hh"
#include "common/json.hh"
#include "common/stats.hh"

namespace rmt
{

std::string
statGroupJson(const StatGroup &group)
{
    std::ostringstream os;
    group.json(os);
    return os.str();
}

std::string
chipStatsJson(Chip &chip)
{
    std::ostringstream os;
    os << "[";
    bool first = true;
    chip.forEachStatGroup([&](const std::string &path, StatGroup &g) {
        if (!first)
            os << ",";
        first = false;
        os << "{\"path\":\"" << jsonEscape(path) << "\",";
        g.jsonMembers(os);
        os << "}";
    });
    os << "]";
    return os.str();
}

std::string
registryStatsJson()
{
    std::ostringstream os;
    os << "[";
    bool first = true;
    StatRegistry::instance().forEach([&](const StatGroup &g) {
        if (!first)
            os << ",";
        first = false;
        g.json(os);
    });
    os << "]";
    return os.str();
}

} // namespace rmt
