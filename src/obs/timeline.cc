#include "obs/timeline.hh"

#include "cmp/chip.hh"

namespace rmt
{

TimelineProbe::TimelineProbe(const TimelineConfig &config) : cfg(config)
{
    if (cfg.interval == 0)
        cfg.interval = 1;
}

void
TimelineProbe::sample(Chip &chip)
{
    TimelineSample s;
    s.cycle = chip.cycle();

    if (prevFetch.size() < chip.numCores())
        prevFetch.resize(chip.numCores());

    for (unsigned c = 0; c < chip.numCores(); ++c) {
        SmtCpu &cpu = chip.cpu(c);
        TimelineCoreSample cs;
        cs.iq_half = {cpu.iqHalfOccupancy(0), cpu.iqHalfOccupancy(1)};
        cs.rob = cpu.robOcc();
        cs.merge_buffer =
            static_cast<unsigned>(cpu.mergeBuffer().occupancy());
        for (ThreadId t = 0; t < cpu.numThreads(); ++t) {
            if (!cpu.threadActive(t))
                continue;
            cs.sq.push_back(static_cast<unsigned>(cpu.sqOccupancy(t)));
            cs.lq.push_back(static_cast<unsigned>(cpu.lqOccupancy(t)));
        }
        FetchCounts &prev = prevFetch[c];
        const std::uint64_t lead = cpu.fetchSrcLead();
        const std::uint64_t lpq = cpu.fetchSrcLpq();
        const std::uint64_t boq = cpu.fetchSrcBoq();
        cs.fetch_lead = lead - prev.lead;
        cs.fetch_lpq = lpq - prev.lpq;
        cs.fetch_boq = boq - prev.boq;
        prev = FetchCounts{lead, lpq, boq};
        s.cores.push_back(std::move(cs));
    }

    RedundancyManager &rm = chip.redundancy();
    for (std::size_t i = 0; i < rm.numPairs(); ++i) {
        RedundantPair &pair = rm.pair(i);
        TimelinePairSample ps;
        ps.lvq = pair.lvq.size();
        ps.lpq = pair.lpq.size();
        ps.slack = static_cast<std::int64_t>(pair.leadRetired) -
                   static_cast<std::int64_t>(pair.trailFetched);
        s.pairs.push_back(ps);
    }

    ++taken;
    ring.push_back(std::move(s));
    if (cfg.max_samples && ring.size() > cfg.max_samples)
        ring.pop_front();
}

void
TimelineProbe::writeJsonl(std::ostream &os) const
{
    for (const TimelineSample &s : ring) {
        os << "{\"cycle\":" << s.cycle << ",\"cores\":[";
        for (std::size_t c = 0; c < s.cores.size(); ++c) {
            const TimelineCoreSample &cs = s.cores[c];
            if (c)
                os << ",";
            os << "{\"core\":" << c
               << ",\"iq_half\":[" << cs.iq_half[0] << ","
               << cs.iq_half[1] << "]"
               << ",\"rob\":" << cs.rob
               << ",\"merge_buffer\":" << cs.merge_buffer
               << ",\"sq\":[";
            for (std::size_t t = 0; t < cs.sq.size(); ++t)
                os << (t ? "," : "") << cs.sq[t];
            os << "],\"lq\":[";
            for (std::size_t t = 0; t < cs.lq.size(); ++t)
                os << (t ? "," : "") << cs.lq[t];
            os << "],\"fetch\":{\"lead\":" << cs.fetch_lead
               << ",\"lpq\":" << cs.fetch_lpq
               << ",\"boq\":" << cs.fetch_boq << "}}";
        }
        os << "],\"pairs\":[";
        for (std::size_t p = 0; p < s.pairs.size(); ++p) {
            const TimelinePairSample &ps = s.pairs[p];
            if (p)
                os << ",";
            os << "{\"pair\":" << p << ",\"lvq\":" << ps.lvq
               << ",\"lpq\":" << ps.lpq << ",\"slack\":" << ps.slack
               << "}";
        }
        os << "]}\n";
    }
}

} // namespace rmt
