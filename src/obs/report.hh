/**
 * @file
 * Campaign report: aggregate a rmtsim_batch .jsonl result stream into
 * the paper's headline shape — per-mode throughput and degradation
 * relative to the base machine (e.g. SRT one-thread ~32 % / two-thread
 * ~30 % slowdowns, CRT ~13 % over lockstep), without a bespoke bench
 * binary per figure.
 *
 * Jobs are matched to their baseline by workload mix and instruction
 * budget, so sweeps that vary RMT-side knobs (slack, queue sizes, ...)
 * all compare against the same base cells while budget sweeps stay
 * properly separated.
 */

#ifndef RMTSIM_OBS_REPORT_HH
#define RMTSIM_OBS_REPORT_HH

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "avf/estimator.hh"
#include "common/json.hh"
#include "obs/attribution.hh"

namespace rmt
{

struct ReportOptions
{
    std::string base_mode = "base";     ///< degradation reference mode
    bool per_mix = false;               ///< also emit the per-mix table
};

/** Aggregate of all jobs sharing one mode. */
struct ReportModeRow
{
    std::string mode;
    unsigned jobs = 0;
    unsigned failed = 0;
    double mean_ipc = 0;            ///< mean over ok jobs of summed
                                    ///< per-thread IPC (throughput)
    double mean_efficiency = -1;    ///< mean SMT-efficiency, if present
    /** Mean of per-job (1 - ipc/base_ipc); valid iff with_base > 0. */
    double mean_degradation = 0;
    unsigned with_base = 0;         ///< ok jobs that had a base match
};

/** Aggregate of all jobs sharing one (workload mix, mode) cell. */
struct ReportMixRow
{
    std::string mix;                ///< "gcc" or "gcc+swim"
    std::string mode;
    unsigned jobs = 0;
    double mean_ipc = 0;
    double mean_degradation = 0;
    bool has_base = false;
};

struct CampaignReport
{
    std::string base_mode;
    unsigned total_jobs = 0;
    unsigned failed_jobs = 0;
    std::vector<ReportModeRow> modes;       ///< first-seen order
    std::vector<ReportMixRow> mixes;        ///< mix-major order
};

/** Upper bounds (exclusive) of the detection-latency histogram; the
 *  last bucket is open-ended. */
inline constexpr unsigned kCoverageLatencyBuckets[] =
    {64, 256, 1024, 4096, 16384};
inline constexpr unsigned kCoverageHistogramSize =
    sizeof(kCoverageLatencyBuckets) / sizeof(unsigned) + 1;

/** Aggregate of all classified trials sharing one fault kind. */
struct CoverageKindRow
{
    std::string kind;               ///< faults[0].kind ("reg", "sqd"...)
    unsigned trials = 0;            ///< classified ok jobs
    unsigned failed = 0;            ///< failed / rejected jobs
    unsigned masked = 0;
    unsigned detected = 0;
    unsigned sdc = 0;
    unsigned hang = 0;
    /** detected / (trials - masked); negative when nothing unmasked. */
    double detection_rate = -1;
    /** Mean over trials with a valid latency; negative when none. */
    double mean_latency = -1;
    unsigned latency_n = 0;
    unsigned histogram[kCoverageHistogramSize] = {};
    /** Unmasked fraction with its Wilson interval at the report's
     *  confidence; avf is negative when no trial classified. */
    double avf = -1;
    Interval avf_ci;
    double sdc_rate = -1;
    Interval sdc_ci;
};

/** Per-(mode, kind) AVF cell for comparing protection modes. */
struct CoverageModeKindRow
{
    std::string mode;               ///< options.mode of the records
    std::string kind;
    unsigned trials = 0;
    unsigned masked = 0;
    unsigned sdc = 0;
    double avf = -1;
    Interval avf_ci;
    double sdc_rate = -1;
    Interval sdc_ci;
    /** True when this kind's AVF interval still overlaps the same
     *  kind's interval under some other mode — the campaign has not
     *  yet separated the modes statistically at this stratum. */
    bool overlaps_other_mode = false;
};

struct CoverageReport
{
    unsigned total_jobs = 0;
    unsigned unclassified = 0;      ///< ok jobs without a verdict field
    double confidence = 0.95;       ///< interval confidence used
    std::vector<CoverageKindRow> kinds;     ///< first-seen order
    /** Kind-major (mode within kind), first-seen order; only the
     *  kinds/modes actually present.  Empty when records carry no
     *  options.mode. */
    std::vector<CoverageModeKindRow> mode_kinds;
};

/**
 * Aggregate of the snapshot-forking fields fault campaigns record in
 * each job's "extra" object (runner with a SnapshotCache attached).
 */
struct SnapshotReport
{
    unsigned total_jobs = 0;
    unsigned fork_eligible = 0;     ///< jobs that carried a snapshot_hit
    unsigned hits = 0;              ///< trials restored from a snapshot
    double hit_rate = -1;           ///< hits / eligible; negative if none
    double total_saved_cycles = 0;  ///< sum of pre-fork prefix cycles
    double mean_saved_cycles = -1;  ///< over hits
    double mean_bytes = -1;         ///< snapshot image size, over hits
};

/** One failed job of a degraded campaign. */
struct FailureRow
{
    std::uint64_t id = 0;
    std::string label;
    std::string error;
    unsigned attempts = 0;
    bool timed_out = false;
    bool quarantined = false;       ///< crashed repeatedly; gave up
};

/**
 * Digest of a campaign's failed jobs — the triage view of a batch run
 * that exited 3 (degraded).  Built from the per-job records themselves,
 * so it works on any .jsonl whether or not the batch appended its
 * trailing "rmtsim-failures-v1" summary record.
 */
struct FailuresReport
{
    unsigned total_jobs = 0;
    unsigned failed = 0;
    unsigned quarantined = 0;
    unsigned timed_out = 0;
    bool has_summary = false;       ///< stream carried the summary record
    std::vector<FailureRow> rows;   ///< id order
    /** Distinct error strings with their multiplicity, first-seen
     *  order — repeated infrastructure faults collapse to one line. */
    std::vector<std::pair<std::string, unsigned>> by_error;
};

/**
 * Commit-slot cycle accounting aggregated per mode, from the
 * "attribution" object `--embed-stats` records carry.  Degradation
 * decomposition works in *slots*: each base-matched job contributes
 * (its slots − its cell's base-mode mean), so per mode
 * `sum(delta_slots) == width * delta_cycles` exactly — the observed
 * cycle delta vs base fully decomposed into named causes.
 */
struct AttributionModeRow
{
    std::string mode;
    unsigned jobs = 0;              ///< ok jobs carrying attribution
    unsigned with_base = 0;         ///< of those, jobs with a base match
    unsigned width = 0;             ///< commit width (slots per cycle)
    double mean_core_cycles = 0;    ///< mean per job, summed over cores
    std::array<double, numStallCauses> mean_slots{};
    /** Mean over base-matched jobs of (job − matched base-cell mean). */
    double delta_cycles = 0;
    std::array<double, numStallCauses> delta_slots{};
};

struct AttributionReport
{
    std::string base_mode;
    unsigned total_jobs = 0;
    unsigned with_attribution = 0;  ///< ok jobs carrying the object
    /** Records where sum(slots) != core_cycles * width — any nonzero
     *  value here is a simulator bug, and rmtsim_report exits 1. */
    unsigned conservation_violations = 0;
    std::vector<AttributionModeRow> modes;      ///< first-seen order
};

/** Parse the lines of a .jsonl stream; malformed lines are skipped
 *  and counted in @p bad_lines. */
std::vector<JsonValue> parseJsonlLines(
    const std::vector<std::string> &lines, unsigned &bad_lines);

/** Aggregate parsed batch records into the report tables. */
CampaignReport buildReport(const std::vector<JsonValue> &records,
                           const ReportOptions &options);

/** Render as aligned, human-readable tables. */
std::string formatReport(const CampaignReport &report,
                         const ReportOptions &options);

/**
 * Collect the failed jobs of a batch stream: per-error tally plus the
 * per-job rows in id order.  Summary records (avf_summary, failures
 * summary) are skipped; has_summary notes whether the batch's own
 * "rmtsim-failures-v1" record was present.
 */
FailuresReport buildFailuresReport(const std::vector<JsonValue> &records);

/** Render the failure digest; a clean stream renders as one line. */
std::string formatFailuresReport(const FailuresReport &report);

/**
 * Aggregate fault-campaign records by the kind of their first fault:
 * verdict tallies, detection rate over unmasked trials, mean detection
 * latency and a fixed-bucket latency histogram.  Records without a
 * "faults" array are counted under kind "none"; ok records without a
 * "verdict" (campaign ran without a FaultOracle) are only counted in
 * CoverageReport::unclassified.  Every kind row carries its AVF and
 * SDC-rate Wilson intervals at @p confidence; when the stream mixes
 * modes, per-(mode, kind) rows compare them and flag kinds whose AVF
 * intervals still overlap between modes.  The trailing "avf_summary"
 * object a stratified campaign appends is skipped.
 */
CoverageReport buildCoverageReport(
    const std::vector<JsonValue> &records, double confidence = 0.95);

/** Render the per-kind coverage table. */
std::string formatCoverageReport(const CoverageReport &report);

/**
 * Aggregate the embedded commit-slot attribution per mode, verifying
 * the conservation invariant on every record along the way.  Records
 * without an embedded "stats.attribution" object (campaigns run
 * without --embed-stats) only count toward total_jobs.
 */
AttributionReport buildAttributionReport(
    const std::vector<JsonValue> &records, const ReportOptions &options);

/** Render the per-mode attribution and degradation-decomposition
 *  tables. */
std::string formatAttributionReport(const AttributionReport &report);

/** Aggregate the snapshot-forking metrics of a fault campaign run with
 *  --snapshot-every: hit rate, cycles saved, snapshot image sizes. */
SnapshotReport buildSnapshotReport(const std::vector<JsonValue> &records);

/** Render the snapshot-forking summary. */
std::string formatSnapshotReport(const SnapshotReport &report);

} // namespace rmt

#endif // RMTSIM_OBS_REPORT_HH
