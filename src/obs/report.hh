/**
 * @file
 * Campaign report: aggregate a rmtsim_batch .jsonl result stream into
 * the paper's headline shape — per-mode throughput and degradation
 * relative to the base machine (e.g. SRT one-thread ~32 % / two-thread
 * ~30 % slowdowns, CRT ~13 % over lockstep), without a bespoke bench
 * binary per figure.
 *
 * Jobs are matched to their baseline by workload mix and instruction
 * budget, so sweeps that vary RMT-side knobs (slack, queue sizes, ...)
 * all compare against the same base cells while budget sweeps stay
 * properly separated.
 */

#ifndef RMTSIM_OBS_REPORT_HH
#define RMTSIM_OBS_REPORT_HH

#include <string>
#include <vector>

#include "common/json.hh"

namespace rmt
{

struct ReportOptions
{
    std::string base_mode = "base";     ///< degradation reference mode
    bool per_mix = false;               ///< also emit the per-mix table
};

/** Aggregate of all jobs sharing one mode. */
struct ReportModeRow
{
    std::string mode;
    unsigned jobs = 0;
    unsigned failed = 0;
    double mean_ipc = 0;            ///< mean over ok jobs of summed
                                    ///< per-thread IPC (throughput)
    double mean_efficiency = -1;    ///< mean SMT-efficiency, if present
    /** Mean of per-job (1 - ipc/base_ipc); valid iff with_base > 0. */
    double mean_degradation = 0;
    unsigned with_base = 0;         ///< ok jobs that had a base match
};

/** Aggregate of all jobs sharing one (workload mix, mode) cell. */
struct ReportMixRow
{
    std::string mix;                ///< "gcc" or "gcc+swim"
    std::string mode;
    unsigned jobs = 0;
    double mean_ipc = 0;
    double mean_degradation = 0;
    bool has_base = false;
};

struct CampaignReport
{
    std::string base_mode;
    unsigned total_jobs = 0;
    unsigned failed_jobs = 0;
    std::vector<ReportModeRow> modes;       ///< first-seen order
    std::vector<ReportMixRow> mixes;        ///< mix-major order
};

/** Parse the lines of a .jsonl stream; malformed lines are skipped
 *  and counted in @p bad_lines. */
std::vector<JsonValue> parseJsonlLines(
    const std::vector<std::string> &lines, unsigned &bad_lines);

/** Aggregate parsed batch records into the report tables. */
CampaignReport buildReport(const std::vector<JsonValue> &records,
                           const ReportOptions &options);

/** Render as aligned, human-readable tables. */
std::string formatReport(const CampaignReport &report,
                         const ReportOptions &options);

} // namespace rmt

#endif // RMTSIM_OBS_REPORT_HH
