#include "obs/attribution.hh"

#include <ostream>

namespace rmt
{

const char *
stallCauseName(StallCause cause)
{
    switch (cause) {
      case StallCause::Committed: return "committed";
      case StallCause::SquashRecovery: return "squash_recovery";
      case StallCause::FetchStarved: return "fetch_starved";
      case StallCause::SlackThrottled: return "slack_throttled";
      case StallCause::LvqEmpty: return "lvq_empty";
      case StallCause::LvqFull: return "lvq_full";
      case StallCause::BoqFull: return "boq_full";
      case StallCause::LpqFull: return "lpq_full";
      case StallCause::StoreCompWait: return "store_comp_wait";
      case StallCause::MergeBufferFull: return "merge_buffer_full";
      case StallCause::DcacheMiss: return "dcache_miss";
      case StallCause::IcacheMiss: return "icache_miss";
      case StallCause::RobFull: return "rob_full";
      case StallCause::IqFull: return "iq_full";
      case StallCause::SqFull: return "sq_full";
      case StallCause::LqFull: return "lq_full";
      case StallCause::DrainBarrier: return "drain_barrier";
      case StallCause::ExecLatency: return "exec_latency";
      case StallCause::UncachedWait: return "uncached_wait";
      case StallCause::Idle: return "idle";
      case StallCause::NumCauses: break;
    }
    return "?";
}

std::uint64_t
StallSlots::total() const
{
    std::uint64_t sum = 0;
    for (const std::uint64_t v : slots)
        sum += v;
    return sum;
}

StallSlots &
StallSlots::operator+=(const StallSlots &other)
{
    for (std::size_t i = 0; i < numStallCauses; ++i)
        slots[i] += other.slots[i];
    return *this;
}

bool
StallSlots::conserves(std::uint64_t cycles, unsigned width) const
{
    return total() == cycles * width;
}

void
StallSlots::json(std::ostream &os) const
{
    os << '{';
    for (std::size_t i = 0; i < numStallCauses; ++i) {
        if (i)
            os << ',';
        os << '"' << stallCauseName(static_cast<StallCause>(i))
           << "\":" << slots[i];
    }
    os << '}';
}

} // namespace rmt
