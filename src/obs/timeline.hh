/**
 * @file
 * Cycle-sampled timeline probes (the observability counterpart of the
 * paper's Figure 8-style time-series evidence).
 *
 * A TimelineProbe attaches to a Chip and, every @c interval cycles,
 * records one sample of the microarchitectural pressure points the
 * paper's analysis turns on:
 *
 *  - per-core queue occupancies: the two instruction-queue halves, the
 *    completion unit (ROB), each hardware thread's store queue and
 *    load queue, and the merge buffer;
 *  - per-core fetch-source mix since the previous sample (leading /
 *    predictor-driven fetch vs trailing LPQ vs trailing BOQ);
 *  - per-pair sphere-crossing state: LVQ and LPQ occupancy and the
 *    leading-vs-trailing slack in instructions.
 *
 * Samples land in a bounded ring buffer (oldest dropped first, drops
 * counted) and stream out as one JSON object per line (JSONL) for
 * figure reproduction without bespoke bench binaries.
 */

#ifndef RMTSIM_OBS_TIMELINE_HH
#define RMTSIM_OBS_TIMELINE_HH

#include <array>
#include <cstdint>
#include <deque>
#include <ostream>
#include <vector>

#include "common/types.hh"

namespace rmt
{

class Chip;

struct TimelineConfig
{
    Cycle interval = 1024;          ///< cycles between samples
    std::size_t max_samples = 65536;    ///< ring capacity (0 = unbounded)
};

/** One core's slice of a timeline sample. */
struct TimelineCoreSample
{
    std::array<unsigned, 2> iq_half{};  ///< instruction-queue halves
    unsigned rob = 0;                   ///< completion-unit occupancy
    unsigned merge_buffer = 0;
    std::vector<unsigned> sq;           ///< per hardware thread
    std::vector<unsigned> lq;           ///< per hardware thread
    // Instructions fetched since the previous sample, by source.
    std::uint64_t fetch_lead = 0;       ///< predictor-driven (lead/single)
    std::uint64_t fetch_lpq = 0;        ///< trailing, LPQ-driven
    std::uint64_t fetch_boq = 0;        ///< trailing, BOQ/shared-LP
};

/** One redundant pair's slice of a timeline sample. */
struct TimelinePairSample
{
    std::size_t lvq = 0;
    std::size_t lpq = 0;
    std::int64_t slack = 0;     ///< leading retired - trailing fetched
};

struct TimelineSample
{
    Cycle cycle = 0;
    std::vector<TimelineCoreSample> cores;
    std::vector<TimelinePairSample> pairs;
};

class TimelineProbe
{
  public:
    explicit TimelineProbe(const TimelineConfig &config);

    Cycle interval() const { return cfg.interval; }

    /**
     * Called by the chip once per cycle; samples on the boundary.
     * Inline so the off-boundary case (the overwhelming majority of
     * cycles) is a compare against the cached next-sample cycle, not a
     * call.
     */
    void
    tick(Chip &chip, Cycle now)
    {
        if (now < next)
            return;
        sample(chip);
        next = now + cfg.interval;
    }

    /** Record a sample right now regardless of the boundary. */
    void sample(Chip &chip);

    const std::deque<TimelineSample> &samples() const { return ring; }
    /** Total samples taken, including ones the ring has dropped. */
    std::uint64_t recorded() const { return taken; }
    std::uint64_t dropped() const { return taken - ring.size(); }

    /** One JSON object per retained sample, newline-terminated. */
    void writeJsonl(std::ostream &os) const;

  private:
    TimelineConfig cfg;
    Cycle next = 0;
    std::deque<TimelineSample> ring;
    std::uint64_t taken = 0;

    /** Previous fetch-source counter values, for per-sample deltas. */
    struct FetchCounts
    {
        std::uint64_t lead = 0;
        std::uint64_t lpq = 0;
        std::uint64_t boq = 0;
    };
    std::vector<FetchCounts> prevFetch;     ///< per core
};

} // namespace rmt

#endif // RMTSIM_OBS_TIMELINE_HH
