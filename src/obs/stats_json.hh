/**
 * @file
 * Stats-tree serialization: walk the StatGroups of a chip (or every
 * live group in the process) and emit them as one JSON array, full
 * histogram buckets included.
 *
 * The chip walk is the per-run entry point — it visits exactly the
 * groups owned by one Simulation's chip, with hierarchical paths
 * ("core0/l1d", "pair1/lvq", "mem/l2"), so concurrent campaign
 * workers each serialize their own run without seeing a neighbour's
 * groups.  The registry walk serializes every live group in the
 * process and is meant for quiescent single-run tools and tests.
 */

#ifndef RMTSIM_OBS_STATS_JSON_HH
#define RMTSIM_OBS_STATS_JSON_HH

#include <string>

namespace rmt
{

class Chip;
class StatGroup;

/** `{"name":...,"stats":[...]}` for one group. */
std::string statGroupJson(const StatGroup &group);

/**
 * JSON array of every stat group owned by @p chip:
 * `[{"path":"core0","name":"cpu0","stats":[...]}, ...]`.
 */
std::string chipStatsJson(Chip &chip);

/** JSON array of every live StatGroup in the process (no paths). */
std::string registryStatsJson();

} // namespace rmt

#endif // RMTSIM_OBS_STATS_JSON_HH
