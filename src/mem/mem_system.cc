#include "mem/mem_system.hh"

#include <algorithm>

namespace rmt
{

MemSystem::MemSystem(const MemSystemParams &params)
    : l2Params(params.l2),
      _l2(params.l2),
      _mem(params.mem),
      l2Latency(params.l2_latency),
      _checkerPenalty(params.checker_penalty)
{
}

Cycle
MemSystem::access(Cache &l1, Addr addr, Cycle now, bool &hit)
{
    const Addr block = l1.blockAlign(addr);
    auto &l1_pending = pending[&l1];

    // A fill to this block may already be in flight (or have completed
    // without being installed yet: fills are lazy).
    auto it = l1_pending.find(block);
    if (it != l1_pending.end()) {
        if (now >= it->second.ready) {
            l1.fill(block);
            l1_pending.erase(it);
            hit = true;
            return now;
        }
        hit = false;        // merged into in-flight miss
        return it->second.ready;
    }

    if (l1.access(block)) {
        hit = true;
        return now;
    }

    hit = false;
    Cycle ready = serviceMiss(block, now);
    ready += _checkerPenalty;   // lockstep: miss request crosses checker
    l1_pending.emplace(block, Pending{ready});
    return ready;
}

Cycle
MemSystem::serviceMiss(Addr block, Cycle now)
{
    if (_l2.access(block))
        return now + l2Latency;

    const Cycle mem_ready = _mem.access(now + l2Latency);
    _l2.fill(block);
    return mem_ready;
}

void
MemSystem::writeback(Addr addr)
{
    _l2.fill(_l2.blockAlign(addr));
}

std::vector<std::pair<Addr, Cycle>>
MemSystem::exportPending(const Cache *l1) const
{
    std::vector<std::pair<Addr, Cycle>> fills;
    auto it = pending.find(l1);
    if (it != pending.end()) {
        for (const auto &[block, p] : it->second)
            fills.emplace_back(block, p.ready);
    }
    std::sort(fills.begin(), fills.end());
    return fills;
}

void
MemSystem::importPending(const Cache *l1,
                         const std::vector<std::pair<Addr, Cycle>> &fills)
{
    auto &l1_pending = pending[l1];
    l1_pending.clear();
    for (const auto &[block, ready] : fills)
        l1_pending.emplace(block, Pending{ready});
}

} // namespace rmt
