#include "mem/cache.hh"

#include "common/bits.hh"
#include "common/logging.hh"

namespace rmt
{

Cache::Cache(const CacheParams &params)
    : blockBytes(params.block_bytes),
      assocWays(params.assoc),
      statGroup(params.name),
      statHits(statGroup, "hits", "demand hits"),
      statMisses(statGroup, "misses", "demand misses"),
      statFills(statGroup, "fills", "blocks installed"),
      statEvictions(statGroup, "evictions", "valid blocks evicted")
{
    if (!isPowerOf2(blockBytes))
        fatal("cache %s: block size %u not a power of two",
              params.name.c_str(), blockBytes);
    if (params.size_bytes % (blockBytes * assocWays) != 0)
        fatal("cache %s: size not divisible by way size",
              params.name.c_str());
    numSets = params.size_bytes / (blockBytes * assocWays);
    if (numSets == 0)
        fatal("cache %s: zero sets", params.name.c_str());
    blockShift = floorLog2(blockBytes);
    setMask = isPowerOf2(numSets) ? numSets - 1 : 0;
    lines.resize(numSets * assocWays);
}

std::size_t
Cache::setIndex(Addr addr) const
{
    // Set counts need not be powers of two (the paper's 3 MB 8-way L2
    // has 6144 sets), so the mask is only a fast path over modulo.
    const Addr blk = addr >> blockShift;
    return setMask ? (blk & setMask) : (blk % numSets);
}

Addr
Cache::tagOf(Addr addr) const
{
    return (addr >> blockShift) / numSets;
}

bool
Cache::access(Addr addr)
{
    const std::size_t base = setIndex(addr) * assocWays;
    const Addr tag = tagOf(addr);
    for (unsigned w = 0; w < assocWays; ++w) {
        Line &line = lines[base + w];
        if (line.valid && line.tag == tag) {
            line.lru = ++stamp;
            ++statHits;
            return true;
        }
    }
    ++statMisses;
    return false;
}

bool
Cache::probe(Addr addr) const
{
    const std::size_t base = setIndex(addr) * assocWays;
    const Addr tag = tagOf(addr);
    for (unsigned w = 0; w < assocWays; ++w) {
        const Line &line = lines[base + w];
        if (line.valid && line.tag == tag)
            return true;
    }
    return false;
}

void
Cache::fill(Addr addr)
{
    const std::size_t base = setIndex(addr) * assocWays;
    const Addr tag = tagOf(addr);

    // Already present (e.g. two outstanding misses merged): refresh LRU.
    for (unsigned w = 0; w < assocWays; ++w) {
        Line &line = lines[base + w];
        if (line.valid && line.tag == tag) {
            line.lru = ++stamp;
            return;
        }
    }

    Line *victim = &lines[base];
    for (unsigned w = 0; w < assocWays; ++w) {
        Line &line = lines[base + w];
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (line.lru < victim->lru)
            victim = &line;
    }
    if (victim->valid)
        ++statEvictions;
    victim->valid = true;
    victim->tag = tag;
    victim->lru = ++stamp;
    ++statFills;
}

void
Cache::invalidate(Addr addr)
{
    const std::size_t base = setIndex(addr) * assocWays;
    const Addr tag = tagOf(addr);
    for (unsigned w = 0; w < assocWays; ++w) {
        Line &line = lines[base + w];
        if (line.valid && line.tag == tag)
            line.valid = false;
    }
}

void
Cache::flushAll()
{
    for (auto &line : lines)
        line.valid = false;
}

void
Cache::saveState(Serializer &s) const
{
    // Only valid lines are stored: an invalid line's tag and LRU stamp
    // are dead state (lookups test valid first, and victim selection
    // takes the first invalid way by position), so a snapshot that
    // resets them to zero restores a behavior-identical cache at a
    // fraction of the full tag-array size.
    s.u64(lines.size());
    std::uint64_t valid = 0;
    for (const Line &line : lines)
        valid += line.valid ? 1 : 0;
    s.u64(valid);
    for (std::size_t i = 0; i < lines.size(); ++i) {
        if (!lines[i].valid)
            continue;
        s.u64(i);
        s.u64(lines[i].tag);
        s.u64(lines[i].lru);
    }
    s.u64(stamp);
}

void
Cache::loadState(Deserializer &d)
{
    const std::uint64_t n = d.u64();
    if (n != lines.size())
        throw SnapshotError("cache: line-array size mismatch");
    for (Line &line : lines) {
        line.tag = 0;
        line.valid = false;
        line.lru = 0;
    }
    const std::uint64_t valid = d.u64();
    for (std::uint64_t i = 0; i < valid; ++i) {
        const std::uint64_t idx = d.u64();
        if (idx >= lines.size())
            throw SnapshotError("cache: line index out of range");
        Line &line = lines[idx];
        line.valid = true;
        line.tag = d.u64();
        line.lru = d.u64();
    }
    stamp = d.u64();
}

} // namespace rmt
