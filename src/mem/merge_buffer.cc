#include "mem/merge_buffer.hh"

namespace rmt
{

MergeBuffer::MergeBuffer(const MergeBufferParams &params)
    : _params(params),
      statGroup(params.name),
      statStores(statGroup, "stores", "stores accepted"),
      statCoalesced(statGroup, "coalesced",
                    "stores merged into an existing entry"),
      statDrains(statGroup, "drains", "entries drained to the cache"),
      statFullRejects(statGroup, "full_rejects",
                      "store-release attempts refused because full")
{
}

bool
MergeBuffer::canAccept(Addr addr) const
{
    const Addr block = blockAlign(addr);
    for (const auto &e : entries) {
        if (e.block == block)
            return true;
    }
    return entries.size() < _params.entries;
}

void
MergeBuffer::accept(Addr addr, Cycle now)
{
    const Addr block = blockAlign(addr);
    ++statStores;
    for (auto &e : entries) {
        if (e.block == block) {
            ++statCoalesced;
            return;
        }
    }
    // New entries must age briefly before draining (write combining).
    entries.push_back(Entry{block, now + _params.drain_interval});
}

bool
MergeBuffer::drain(Cycle now, Addr &drained_addr)
{
    if (entries.empty())
        return false;
    if (now < entries.front().ready ||
        now < lastDrain + _params.drain_interval) {
        return false;
    }
    drained_addr = entries.front().block;
    entries.erase(entries.begin());
    lastDrain = now;
    ++statDrains;
    return true;
}

void
MergeBuffer::saveState(Serializer &s) const
{
    s.u32(static_cast<std::uint32_t>(entries.size()));
    for (const Entry &e : entries) {
        s.u64(e.block);
        s.u64(e.ready);
    }
    s.u64(lastDrain);
}

void
MergeBuffer::loadState(Deserializer &d)
{
    const std::uint32_t n = d.u32();
    entries.clear();
    for (std::uint32_t i = 0; i < n; ++i) {
        Entry e;
        e.block = d.u64();
        e.ready = d.u64();
        entries.push_back(e);
    }
    lastDrain = d.u64();
}

} // namespace rmt
