/**
 * @file
 * Main-memory latency/bandwidth model (paper: 2 Rambus controllers,
 * 10 channels).  Fixed access latency plus a simple channel-bandwidth
 * constraint: each channel can begin one block transfer every
 * issue_interval cycles; requests pick the earliest-free channel.
 */

#ifndef RMTSIM_MEM_MAIN_MEMORY_HH
#define RMTSIM_MEM_MAIN_MEMORY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/snapshot.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace rmt
{

struct MainMemoryParams
{
    std::string name = "mem";
    unsigned latency = 120;         ///< cycles from issue to data return
    unsigned channels = 10;
    unsigned issue_interval = 4;    ///< min cycles between issues/channel
};

class MainMemory : public Snapshottable
{
  public:
    explicit MainMemory(const MainMemoryParams &params);

    /**
     * Schedule a block read beginning no earlier than @p now.
     * @return cycle at which the block is available.
     */
    Cycle access(Cycle now);

    StatGroup &stats() { return statGroup; }
    std::uint64_t requests() const { return statRequests.value(); }

    /** Per-channel next-free cycles (channel arbitration phase). */
    void saveState(Serializer &s) const override;
    void loadState(Deserializer &d) override;

  private:
    unsigned latency;
    unsigned issueInterval;
    std::vector<Cycle> channelFree;     ///< next free cycle per channel

    StatGroup statGroup;
    Counter statRequests;
    Counter statQueueingCycles;
};

} // namespace rmt

#endif // RMTSIM_MEM_MAIN_MEMORY_HH
