/**
 * @file
 * Set-associative cache tag model with true-LRU replacement.
 *
 * Data values never live here: rmtsim moves values through the
 * per-logical-thread DataMemory functionally, so caches model timing and
 * occupancy only (tags, LRU state, hit/miss statistics).
 */

#ifndef RMTSIM_MEM_CACHE_HH
#define RMTSIM_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/snapshot.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace rmt
{

/** Geometry and latency of one cache level. */
struct CacheParams
{
    std::string name = "cache";
    std::uint64_t size_bytes = 64 * 1024;
    unsigned assoc = 2;
    unsigned block_bytes = 64;
};

class Cache : public Snapshottable
{
  public:
    explicit Cache(const CacheParams &params);

    /** Address of the block containing @p addr. */
    Addr blockAlign(Addr addr) const { return addr & ~Addr(blockBytes - 1); }

    unsigned blockSize() const { return blockBytes; }

    /**
     * Look up @p addr; on a hit update LRU and return true.  Does not
     * allocate on miss (fills are explicit so the hierarchy can model
     * miss latency before installing the block).
     */
    bool access(Addr addr);

    /** Tag check with no LRU update (used by probes / way prediction). */
    bool probe(Addr addr) const;

    /** Install the block containing @p addr, evicting LRU if needed. */
    void fill(Addr addr);

    /** Invalidate the block containing @p addr if present. */
    void invalidate(Addr addr);

    /** Drop all blocks (used between measurement phases). */
    void flushAll();

    std::uint64_t hits() const { return statHits.value(); }
    std::uint64_t misses() const { return statMisses.value(); }

    StatGroup &stats() { return statGroup; }

    /** Tag/valid/LRU arrays plus the LRU stamp (stats are restored
     *  separately via the chip stat walk). */
    void saveState(Serializer &s) const override;
    void loadState(Deserializer &d) override;

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        std::uint64_t lru = 0;  ///< last-touched stamp; larger = newer
    };

    std::size_t setIndex(Addr addr) const;
    Addr tagOf(Addr addr) const;

    unsigned blockBytes;
    unsigned blockShift;    ///< log2(blockBytes); block size is pow2
    unsigned assocWays;
    std::size_t numSets;
    std::size_t setMask;    ///< numSets - 1 if pow2, else 0 (use modulo)
    std::vector<Line> lines;        ///< numSets * assocWays, set-major
    std::uint64_t stamp = 0;

    StatGroup statGroup;
    Counter statHits;
    Counter statMisses;
    Counter statFills;
    Counter statEvictions;
};

} // namespace rmt

#endif // RMTSIM_MEM_CACHE_HH
