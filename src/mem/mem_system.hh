/**
 * @file
 * The shared memory system below the L1 caches: unified L2, main
 * memory, and the miss-status handling that ties them together.
 *
 * Cores call access() to service an L1 miss; the MemSystem consults the
 * L2 tags and main memory, merges requests to in-flight blocks (MSHR
 * behaviour), and returns the cycle at which the block is usable.
 *
 * Lockstepped configurations route every off-core signal through a
 * central checker; that is modelled here as @c checker_penalty cycles
 * added to each L1-miss service (paper Section 6.3: Lock0 = 0,
 * Lock8 = 8).
 *
 * Address-space note: each logical thread owns a private flat data
 * image, so cores present "physical" addresses formed as
 * (logical_id << 40) | virtual_addr to keep distinct programs from
 * aliasing in the shared L2; redundant copies of the same program share
 * one physical space by construction, exactly as the sphere of
 * replication requires.
 */

#ifndef RMTSIM_MEM_MEM_SYSTEM_HH
#define RMTSIM_MEM_MEM_SYSTEM_HH

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "mem/cache.hh"
#include "mem/main_memory.hh"

namespace rmt
{

/** Build a per-logical-thread physical address. */
constexpr Addr
physAddr(LogicalId logical, Addr vaddr)
{
    return (Addr{logical} << 40) | vaddr;
}

struct MemSystemParams
{
    CacheParams l2{"l2", 3 * 1024 * 1024, 8, 64};
    MainMemoryParams mem{};
    unsigned l2_latency = 12;       ///< L1-miss/L2-hit service latency
    unsigned checker_penalty = 0;   ///< lockstep checker cycles per miss
};

class MemSystem
{
  public:
    explicit MemSystem(const MemSystemParams &params);

    /**
     * Service an access from an L1 cache.
     *
     * @param l1   the requesting L1 (tags updated, fills installed)
     * @param addr physical address
     * @param now  current cycle
     * @param hit  out: true iff the access hit in @p l1
     * @return cycle at which the data is usable (== @p now on an L1 hit)
     */
    Cycle access(Cache &l1, Addr addr, Cycle now, bool &hit);

    /** As access(), discarding the hit flag. */
    Cycle
    access(Cache &l1, Addr addr, Cycle now)
    {
        bool hit = false;
        return access(l1, addr, now, hit);
    }

    /** Accept a drained merge-buffer block into L2 (timing-only). */
    void writeback(Addr addr);

    Cache &l2() { return _l2; }
    const Cache &l2() const { return _l2; }
    MainMemory &mainMemory() { return _mem; }
    const MainMemory &mainMemory() const { return _mem; }
    unsigned checkerPenalty() const { return _checkerPenalty; }

    /**
     * In-flight (or completed-but-uninstalled: fills are lazy) block
     * fills for one L1, sorted by block address so snapshot images are
     * independent of hash-map iteration order.
     */
    std::vector<std::pair<Addr, Cycle>> exportPending(const Cache *l1) const;

    /** Replace the pending-fill set for one L1 (checkpoint restore). */
    void importPending(const Cache *l1,
                       const std::vector<std::pair<Addr, Cycle>> &fills);

  private:
    /** Service a miss below one L1: L2 then memory. */
    Cycle serviceMiss(Addr block, Cycle now);

    CacheParams l2Params;
    Cache _l2;
    MainMemory _mem;
    unsigned l2Latency;
    unsigned _checkerPenalty;

    /** In-flight block fills per L1 cache (MSHR merge). */
    struct Pending
    {
        Cycle ready;
    };
    std::unordered_map<const Cache *,
                       std::unordered_map<Addr, Pending>> pending;
};

} // namespace rmt

#endif // RMTSIM_MEM_MEM_SYSTEM_HH
