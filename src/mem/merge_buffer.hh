/**
 * @file
 * Coalescing merge buffer (paper Table 1: 16 x 64-byte entries).
 *
 * Retired (and, under SRT/CRT, verified) stores land here before
 * updating the data cache.  Stores to the same 64-byte block coalesce
 * into one entry; entries drain to the data cache at a fixed rate.  A
 * full merge buffer back-pressures store release from the store queue,
 * which is one of the levers behind the paper's store-queue-pressure
 * results.  Timing-only: functional data moves through DataMemory.
 */

#ifndef RMTSIM_MEM_MERGE_BUFFER_HH
#define RMTSIM_MEM_MERGE_BUFFER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/snapshot.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace rmt
{

struct MergeBufferParams
{
    std::string name = "mergebuf";
    unsigned entries = 16;
    unsigned block_bytes = 64;
    unsigned drain_interval = 2;    ///< cycles between drains to the cache
};

class MergeBuffer : public Snapshottable
{
  public:
    explicit MergeBuffer(const MergeBufferParams &params);

    const MergeBufferParams &params() const { return _params; }

    /** Can a store be accepted this cycle? */
    bool canAccept(Addr addr) const;

    /** Accept a retired store (must have checked canAccept). */
    void accept(Addr addr, Cycle now);

    /**
     * Advance one cycle: possibly drain the oldest entry.
     * @return block address drained, or no value.
     */
    bool drain(Cycle now, Addr &drained_addr);

    std::size_t occupancy() const { return entries.size(); }
    bool empty() const { return entries.empty(); }

    /** Record that a store release was refused because the buffer is
     *  full (called by the MBOX for statistics). */
    void noteFullReject() { ++statFullRejects; }

    StatGroup &stats() { return statGroup; }

    /** Entries (empty at a quiesce point, but the format does not
     *  assume it) plus the drain-cadence phase. */
    void saveState(Serializer &s) const override;
    void loadState(Deserializer &d) override;

  private:
    Addr blockAlign(Addr a) const
    {
        return a & ~Addr(_params.block_bytes - 1);
    }

    struct Entry
    {
        Addr block;
        Cycle ready;    ///< earliest drain cycle
    };

    MergeBufferParams _params;
    std::vector<Entry> entries;     ///< FIFO, front = oldest
    Cycle lastDrain = 0;

    StatGroup statGroup;
    Counter statStores;
    Counter statCoalesced;
    Counter statDrains;
    Counter statFullRejects;
};

} // namespace rmt

#endif // RMTSIM_MEM_MERGE_BUFFER_HH
