#include "mem/main_memory.hh"

namespace rmt
{

MainMemory::MainMemory(const MainMemoryParams &params)
    : latency(params.latency),
      issueInterval(params.issue_interval),
      channelFree(params.channels, 0),
      statGroup(params.name),
      statRequests(statGroup, "requests", "block reads serviced"),
      statQueueingCycles(statGroup, "queueing_cycles",
                         "cycles spent waiting for a free channel")
{
}

Cycle
MainMemory::access(Cycle now)
{
    // Earliest-free channel.
    std::size_t best = 0;
    for (std::size_t c = 1; c < channelFree.size(); ++c) {
        if (channelFree[c] < channelFree[best])
            best = c;
    }
    const Cycle start = std::max(now, channelFree[best]);
    channelFree[best] = start + issueInterval;
    ++statRequests;
    statQueueingCycles += start - now;
    return start + latency;
}

void
MainMemory::saveState(Serializer &s) const
{
    s.u32(static_cast<std::uint32_t>(channelFree.size()));
    for (const Cycle c : channelFree)
        s.u64(c);
}

void
MainMemory::loadState(Deserializer &d)
{
    const std::uint32_t n = d.u32();
    if (n != channelFree.size())
        throw SnapshotError("main memory: channel count mismatch");
    for (Cycle &c : channelFree)
        c = d.u64();
}

} // namespace rmt
