/**
 * @file
 * A memory-mapped device for uncached accesses.
 *
 * The device lives outside the sphere of replication.  Its registers
 * are *volatile*: every read returns a fresh value (a deterministic
 * function of the address and the read count), which is precisely why
 * uncached loads cannot simply be executed twice by the redundant
 * threads — the second read would observe a different value and the
 * output comparison would flag a phantom fault.  Uncached stores have
 * side effects, so they must be compared *before* being performed, and
 * performed exactly once.
 */

#ifndef RMTSIM_MEM_DEVICE_HH
#define RMTSIM_MEM_DEVICE_HH

#include <cstdint>
#include <vector>

#include "ckpt/snapshot.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace rmt
{

struct DeviceParams
{
    std::string name = "device";
    unsigned access_latency = 64;   ///< cycles per uncached access
    std::uint64_t seed = 0xDEC0DE;
};

class Device : public Snapshottable
{
  public:
    explicit Device(const DeviceParams &params)
        : _params(params),
          statGroup(params.name),
          statReads(statGroup, "reads", "uncached reads performed"),
          statWrites(statGroup, "writes", "uncached writes performed")
    {
    }

    unsigned accessLatency() const { return _params.access_latency; }

    /**
     * Read a device register: volatile, non-idempotent.  The value is a
     * deterministic hash of (address, read ordinal) so simulations stay
     * reproducible while successive reads differ.
     */
    std::uint64_t
    read(Addr addr)
    {
        ++statReads;
        std::uint64_t x = addr * 0x9E3779B97F4A7C15ull +
                          statReads.value() * 0xBF58476D1CE4E5B9ull +
                          _params.seed;
        x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
        x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
        return x ^ (x >> 31);
    }

    /** Write a device register (side-effecting: logged exactly once). */
    void
    write(Addr addr, std::uint64_t data)
    {
        ++statWrites;
        log.push_back(WriteRecord{addr, data});
    }

    struct WriteRecord
    {
        Addr addr;
        std::uint64_t data;
    };

    const std::vector<WriteRecord> &writeLog() const { return log; }
    std::uint64_t reads() const { return statReads.value(); }
    std::uint64_t writes() const { return statWrites.value(); }

    StatGroup &stats() { return statGroup; }

    /** Write log only; the read ordinal feeding read() values is the
     *  `reads` counter, restored through the chip stat walk. */
    void
    saveState(Serializer &s) const override
    {
        s.u64(log.size());
        for (const WriteRecord &w : log) {
            s.u64(w.addr);
            s.u64(w.data);
        }
    }

    void
    loadState(Deserializer &d) override
    {
        const std::uint64_t n = d.u64();
        log.clear();
        for (std::uint64_t i = 0; i < n; ++i) {
            WriteRecord w{};
            w.addr = d.u64();
            w.data = d.u64();
            log.push_back(w);
        }
    }

  private:
    DeviceParams _params;
    std::vector<WriteRecord> log;

    StatGroup statGroup;
    Counter statReads;
    Counter statWrites;
};

} // namespace rmt

#endif // RMTSIM_MEM_DEVICE_HH
