/**
 * @file
 * Configuration of one SMT core (paper Table 1) plus the RMT options
 * layered on top of it (paper Sections 4-6).
 */

#ifndef RMTSIM_CPU_SMT_PARAMS_HH
#define RMTSIM_CPU_SMT_PARAMS_HH

#include <cstdint>
#include <string>

#include "mem/cache.hh"
#include "mem/merge_buffer.hh"
#include "predictor/branch_predictor.hh"
#include "predictor/line_predictor.hh"
#include "predictor/store_sets.hh"

namespace rmt
{

/** How the trailing thread's front end is driven (Section 4.4 + abl.). */
enum class TrailingFetchMode : std::uint8_t
{
    LinePredictionQueue,    ///< the paper's LPQ: perfect chunk stream
    BranchOutcomeQueue,     ///< original SRT BOQ: perfect branch outcomes,
                            ///< line predictor still misfetches
    SharedLinePredictor,    ///< trailing reuses the leading thread's line
                            ///< predictor entries (Section 4.4 strawman)
};

struct SmtParams
{
    std::string name = "cpu";
    unsigned num_threads = 4;       ///< hardware thread contexts

    // ------------------------------------------------------------ IBOX
    unsigned fetch_chunks_per_cycle = 2;    ///< 2 x 8-instruction chunks
    unsigned ibox_latency = 4;
    unsigned rmb_chunks = 4;                ///< rate-matching buffer depth
    unsigned line_mispredict_penalty = 3;   ///< address-driver restart
    unsigned branch_mispredict_extra = 0;   ///< added to natural refill

    // ------------------------------------------------------------ PBOX
    unsigned map_width = 8;                 ///< one chunk per cycle
    unsigned pbox_latency = 2;

    // ------------------------------------------------------------ QBOX
    unsigned iq_entries = 128;              ///< two 64-entry halves
    unsigned issue_width = 8;               ///< 4 per half
    unsigned issue_per_half = 4;
    unsigned qbox_front_latency = 2;        ///< dispatch -> issuable
    unsigned qbox_back_latency = 2;         ///< issue -> regread
    unsigned iq_reserved_per_thread = 8;    ///< deadlock avoidance (4.3)
    unsigned rob_entries = 256;             ///< completion-unit window,
                                            ///< shared by all contexts
    unsigned rob_reserved_per_thread = 16;  ///< deadlock avoidance (4.3)

    // ------------------------------------------------------------ RBOX
    unsigned rbox_latency = 4;
    unsigned phys_regs = 512;
    unsigned regs_reserved_per_thread = 12; ///< deadlock avoidance (4.3)

    // ------------------------------------------- EBOX / FBOX (per half)
    unsigned int_units_per_half = 4;        ///< 8 integer units total
    unsigned logic_units_per_half = 4;      ///< 8 logic units total
    unsigned mem_units_per_half = 2;        ///< 4 memory units total
    unsigned fp_units_per_half = 2;         ///< 4 fp units total

    // ------------------------------------------------------------ MBOX
    unsigned load_queue_entries = 64;
    unsigned store_queue_entries = 64;
    bool per_thread_store_queues = false;   ///< Section 4.2 optimisation
    /** The paper partitions the LQ/SQ statically among threads
     *  (Section 3.4).  Dynamic partitioning shares each pool with only
     *  a small per-thread reservation — an ablation for how much of
     *  the multithreaded results the static split is responsible for. */
    bool dynamic_lsq_partition = false;
    unsigned lsq_reserved_per_thread = 4;
    unsigned mbox_latency = 2;              ///< D-cache hit access time
    unsigned max_loads_per_cycle = 3;
    unsigned max_stores_per_cycle = 2;
    unsigned store_data_delay = 2;          ///< data trails address (3.4)
    unsigned store_checker_penalty = 0;     ///< lockstep: store release path

    CacheParams icache{"l1i", 64 * 1024, 2, 64};
    CacheParams dcache{"l1d", 64 * 1024, 2, 64};
    MergeBufferParams merge_buffer{};

    // ------------------------------------------------------- predictors
    BranchPredictorParams bpred{};
    LinePredictorParams linepred{};
    StoreSetsParams store_sets{};
    unsigned ras_entries = 16;

    // ------------------------------------------------------------- SRT
    unsigned lvq_entries = 64;              ///< sized like the SQ (4.1)
    unsigned lpq_entries = 32;              ///< chunk-granular
    unsigned lpq_forward_latency = 4;       ///< QBOX -> IBOX (6.3)
    unsigned lvq_forward_latency = 2;       ///< QBOX -> MBOX (6.3)
    unsigned cross_core_latency = 4;        ///< CRT extra forwarding (6.3)
    bool preferential_space_redundancy = true;  ///< Section 4.5
    bool lvq_ecc = true;                    ///< LVQ protected by ECC (2.1)
    unsigned slack_fetch = 0;               ///< 0 = disabled (subsumed by
                                            ///< the LPQ, Section 4.4)
    bool srt_store_comparison = true;       ///< false = "SRT + nosc"
                                            ///< ablation (Fig. 6): leading
                                            ///< stores release unverified
    TrailingFetchMode trailing_fetch = TrailingFetchMode::LinePredictionQueue;

    // ------------------------------------------------------------ misc
    bool cosim = false;             ///< architectural co-simulation check
    std::uint64_t deadlock_cycles = 50000;  ///< watchdog: no-commit window
    /** The merge buffer sits outside the sphere of replication: a strike
     *  there is invisible to output comparison, so it carries ECC by
     *  default (paper Section 2; disable to measure the exposure). */
    bool merge_buffer_ecc = true;
};

} // namespace rmt

#endif // RMTSIM_CPU_SMT_PARAMS_HH
