/**
 * @file
 * The SMT out-of-order core (paper Section 3, Table 1) with the SRT/CRT
 * extensions of Sections 4-5.
 *
 * One SmtCpu is an 8-wide, 4-context SMT processor: line-prediction
 * driven fetch (IBOX), register rename (PBOX), a 128-entry two-half
 * instruction queue with a completion unit (QBOX), register read (RBOX),
 * the functional-unit pools (EBOX/FBOX), and the memory system frontside
 * (MBOX: load queue, store queue, merge buffer, L1 caches).
 *
 * Stage implementations are split across ibox.cc (fetch), pbox.cc
 * (rename/dispatch), qbox.cc (issue + retire), ebox.cc (execute /
 * writeback events), and mbox.cc (loads, stores, queues) in the style of
 * the paper's box structure.
 */

#ifndef RMTSIM_CPU_SMT_CPU_HH
#define RMTSIM_CPU_SMT_CPU_HH

#include <array>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "cpu/dyn_inst.hh"
#include "cpu/smt_params.hh"
#include "isa/arch_state.hh"
#include "isa/program.hh"
#include "mem/device.hh"
#include "mem/mem_system.hh"
#include "obs/attribution.hh"
#include "rmt/fault_injector.hh"
#include "rmt/redundancy.hh"

namespace rmt
{

class PipeTracer;

class SmtCpu : public Snapshottable
{
  public:
    SmtCpu(const SmtParams &params, MemSystem &mem_system, CoreId core_id);

    SmtCpu(const SmtCpu &) = delete;
    SmtCpu &operator=(const SmtCpu &) = delete;

    // ------------------------------------------------------- configure
    /**
     * Bind a program to hardware thread @p tid.
     *
     * @param memory the logical thread's data image (shared between the
     *        leading and trailing copies; IndependentCopy threads get
     *        their own)
     */
    void addThread(ThreadId tid, const Program &program, DataMemory &memory,
                   LogicalId logical, Role role,
                   RedundantPair *pair = nullptr);

    /** The core stores a pointer to the program: binding a temporary
     *  would dangle, so it is forbidden. */
    void addThread(ThreadId, Program &&, DataMemory &, LogicalId, Role,
                   RedundantPair * = nullptr) = delete;

    void setFaultInjector(FaultInjector *injector) { faults = injector; }

    /** Attach the chip's memory-mapped device (uncached accesses). */
    void setDevice(Device *dev) { device = dev; }

    /**
     * Deliver an asynchronous interrupt to @p tid no earlier than cycle
     * @p when: at the next instruction boundary the thread redirects to
     * @p vector with the resume pc captured for Iret.  On a leading
     * thread the boundary is replicated to the trailing copy
     * (Section 2.1's deferred interrupt-input replication).
     */
    void scheduleInterrupt(ThreadId tid, Cycle when, Addr vector);

    /**
     * Instruction budget after which a thread's stats freeze, with an
     * optional warm-up prefix excluded from the measured window
     * (paper Section 6.2: warm up, then measure).
     */
    void setTarget(ThreadId tid, std::uint64_t insts,
                   std::uint64_t warmup = 0);

    // ------------------------------------------------------------- run
    /** Advance one cycle. */
    void tick();

    Cycle cycle() const { return now; }
    CoreId coreId() const { return core; }

    bool threadDone(ThreadId tid) const;
    bool allThreadsDone() const;
    bool threadHalted(ThreadId tid) const { return threads[tid].halted; }

    // ----------------------------------------------------------- stats
    std::uint64_t committed(ThreadId tid) const
    {
        return threads[tid].committed;
    }
    Cycle threadCycles(ThreadId tid) const;
    double ipc(ThreadId tid) const;

    const SmtParams &params() const { return _params; }
    Cache &icache() { return l1i; }
    Cache &dcache() { return l1d; }
    BranchPredictor &branchPredictor() { return bpred; }
    LinePredictor &linePredictor() { return linePred; }
    MergeBuffer &mergeBuffer() { return mergeBuf; }
    StatGroup &stats() { return statGroup; }

    // ------------------------------------- observability (src/obs/)
    unsigned numThreads() const
    {
        return static_cast<unsigned>(threads.size());
    }
    bool threadActive(ThreadId tid) const { return threads[tid].active; }
    Role threadRole(ThreadId tid) const { return threads[tid].role; }
    unsigned iqHalfOccupancy(unsigned half) const
    {
        return iqHalfOcc[half];
    }
    unsigned robOcc() const { return robOccupancy; }
    std::size_t sqOccupancy(ThreadId tid) const
    {
        return threads[tid].sq.size();
    }
    std::size_t lqOccupancy(ThreadId tid) const
    {
        return threads[tid].lq.size();
    }
    std::uint64_t fetchSrcLead() const { return statFetchSrcLead.value(); }
    std::uint64_t fetchSrcLpq() const { return statFetchSrcLpq.value(); }
    std::uint64_t fetchSrcBoq() const { return statFetchSrcBoq.value(); }
    std::uint64_t committedAll() const
    {
        return statCommittedTotal.value();
    }

    // ---------------------------- commit-slot attribution (obs/)
    /** Retire slots per cycle (the accounting width). */
    unsigned commitWidth() const { return _params.issue_width; }
    /** Cycles this core has simulated (== statCycles). */
    std::uint64_t cycleCount() const { return statCycles.value(); }
    /** Commit slots charged to @p cause so far.  The taxonomy is
     *  exhaustive: summed over causes this equals
     *  cycleCount() * commitWidth() at every cycle boundary. */
    std::uint64_t
    stallSlots(StallCause cause) const
    {
        return statSlots[static_cast<std::size_t>(cause)]->value();
    }
    /** All buckets at once (RunResult aggregation). */
    StallSlots attributionSlots() const;

    /** Visit every stat group this core owns.  @p fn receives a
     *  core-relative path ("" for the core group, "l1d", ...). */
    void forEachStatGroup(
        const std::function<void(const std::string &, StatGroup &)> &fn);

    /** The per-core instruction record pool (tests, diagnostics). */
    const DynInstPool &dynInstPool() const { return instPool; }

    std::uint64_t squashes() const { return statSquashes.value(); }
    std::uint64_t branchMispredicts() const
    {
        return statBranchMispredicts.value();
    }
    std::uint64_t lvqFullStalls() const
    {
        return statLvqFullStalls.value();
    }
    std::uint64_t memOrderViolations() const
    {
        return statMemOrderViolations.value();
    }
    std::uint64_t lineMispredicts() const
    {
        return statLineMispredicts.value();
    }
    std::uint64_t sqFullStalls() const { return statSqFullStalls.value(); }
    double avgStoreLifetime(ThreadId tid) const
    {
        return threads[tid].storeLifetime->mean();
    }

    /** Dump all stat groups owned by this core. */
    void dumpStats(std::ostream &os);

    /** Human-readable pipeline snapshot for debugging stalls. */
    void debugDump(std::ostream &os) const;

    /**
     * Enable a commit trace: one line per retired instruction with its
     * per-stage timing (fetch/dispatch/issue/complete/retire), pc,
     * disassembly, and result.  @p max_lines bounds the output
     * (0 = unbounded).  Pass nullptr to disable.
     */
    void
    setCommitTrace(std::ostream *os, std::uint64_t max_lines = 0)
    {
        traceOut = os;
        traceBudget = max_lines;
    }

    /**
     * Attach a per-instruction lifecycle tracer (obs/pipetrace.hh):
     * every retired instruction emits its fetch/rename/execute/commit
     * stage spans as Chrome trace events.  Pass nullptr to disable;
     * when disabled the hot path pays a single pointer test.
     */
    void setPipeTracer(PipeTracer *tracer) { pipeTracer = tracer; }

    // ----------------------------------------------------- fault hooks
    /** Flip bit @p bit of arch register @p reg's current value. */
    void injectRegBitFlip(ThreadId tid, RegIndex reg, unsigned bit);
    RedundantPair *pairOf(ThreadId tid) { return threads[tid].pair; }
    /**
     * Flip one bit of the oldest unretired store-queue entry of @p tid
     * whose victim field is valid (@p address selects the effective
     * address latch, otherwise the data latch; data strikes are folded
     * into the store's width).  @return false when no entry is resident
     * yet, so the injector retries next cycle.
     */
    bool injectSqBitFlip(ThreadId tid, unsigned bit, bool address);
    /** Flip bit @p bit of @p tid's next fetch pc. */
    bool injectPcBitFlip(ThreadId tid, unsigned bit);
    /** Corrupt the next instruction @p tid decodes: bit >= 48 swaps the
     *  opcode for a same-class sibling, lower bits flip an immediate
     *  bit (one-shot). */
    bool armDecodeStrike(ThreadId tid, unsigned bit);
    /** Flip a data bit of the next store @p tid releases into the merge
     *  buffer (one-shot; corrected when merge_buffer_ecc is set). */
    bool armMergeStrike(ThreadId tid, unsigned bit);
    std::uint64_t mergeEccCorrections() const
    {
        return statMergeEccCorrected.value();
    }

    // ------------------------------------------------------- recovery
    /** Flush all in-flight state of @p tid and restart it from the
     *  checkpoint (fault recovery; incompatible with cosim). */
    void recoverThread(ThreadId tid, const RecoveryCheckpoint &ckpt);

    // --------------------------------------------------- checkpointing
    /**
     * Enter/leave the snapshot drain: non-trailing fetch freezes while
     * trailing threads keep consuming what their (frozen) leading
     * partners already committed, until the pipeline empties.
     */
    void setDraining(bool d) { draining = d; }
    bool isDraining() const { return draining; }

    /** True iff nothing is in flight anywhere in the core. */
    bool drainedForSnapshot() const;

    /**
     * Architectural + timing-relevant microarchitectural state.  Valid
     * only at a quiesce point (drainedForSnapshot()); statistics are
     * restored separately through the chip stat walk.
     */
    void saveState(Serializer &s) const override;
    void loadState(Deserializer &d) override;

  private:
    // ------------------------------------------------- internal types
    /** Why a thread's next fetch is stalled (fetchStallUntil), recorded
     *  at the stall site so empty-ROB cycles can be attributed. */
    enum class FetchStall : std::uint8_t
    {
        None,
        IcacheMiss,     ///< waiting on an I-cache fill
        LineMispredict, ///< line-predictor retrain penalty
        Redirect,       ///< squash / interrupt / iret / recovery restart
    };

    struct ThreadState
    {
        bool active = false;
        const Program *program = nullptr;
        DataMemory *mem = nullptr;
        LogicalId logical = 0;
        Role role = Role::Single;
        RedundantPair *pair = nullptr;

        // Fetch.
        Addr fetchPc = 0;
        Cycle fetchStallUntil = 0;
        FetchStall fetchStallReason = FetchStall::None;
        bool fetchHalted = false;   ///< halt fetched; stop fetching
        std::deque<DynInstPtr> rmb; ///< rate-matching buffer
        InstSeq nextSeq = 0;

        // Rename / in-flight.
        std::array<PhysRegIndex, numArchRegs> renameMap{};
        std::deque<DynInstPtr> rob;
        /** Committed architectural register values (checkpointing). */
        std::array<std::uint64_t, numArchRegs> archRegs{};

        // Memory queues (statically partitioned; see quotas).  Store
        // entry state (alloc/retire cycle, verified) lives in the
        // DynInst itself, so no queue search is ever needed.
        std::deque<DynInstPtr> lq;
        std::deque<DynInstPtr> sq;
        unsigned lqQuota = 0;
        unsigned sqQuota = 0;

        // Commit.
        std::uint64_t committed = 0;
        std::uint64_t target = 0;
        std::uint64_t measureSkip = 0;  ///< warm-up instructions
        Cycle startCycle = 0;
        Cycle finishCycle = 0;
        bool done = false;
        bool halted = false;

        // Trailing-thread committed-stream divergence check.
        bool haveExpectedPc = false;
        Addr expectedPc = 0;

        // One-shot armed fault strikes (fault injection).
        bool decodeStrike = false;
        unsigned decodeStrikeBit = 0;
        bool mergeStrike = false;
        unsigned mergeStrikeBit = 0;

        // Interrupts.
        struct PendingInterrupt
        {
            Cycle when;
            Addr vector;
        };
        std::deque<PendingInterrupt> pendingInterrupts;
        Addr intReturnPc = 0;       ///< captured at interrupt entry
        Addr nextCommitPc = 0;      ///< resume point at any boundary

        // Reference model (co-simulation).
        std::unique_ptr<DataMemory> refMem;
        std::unique_ptr<ArchState> ref;

        // Per-thread stats.
        std::unique_ptr<Average> storeLifetime;
        std::unique_ptr<Histogram> storeLifetimeHist;
        std::unique_ptr<Counter> statCommitted;
    };

    /** Scheduled pipeline event kinds. */
    enum class EvKind : std::uint8_t
    {
        Compute,        ///< value computed and bypassed (wakeup time)
        ExecDone,       ///< pipeline completion / control resolution
        MemAgen,        ///< load/store address generation
        StoreData,      ///< store data arrives at the store queue
        LoadDone,       ///< load value available
    };

    struct Event
    {
        EvKind kind;
        DynInstPtr inst;
        std::uint64_t payload = 0;  ///< LoadDone: the value
    };

    // ------------------------------------------------- stage functions
    void fetch();                           // ibox.cc
    void applyDecodeStrike(ThreadState &t, StaticInst &si);  // ibox.cc
    void fetchLeadingChunks(ThreadId tid);  // ibox.cc
    void fetchTrailingLpq(ThreadId tid);    // ibox.cc
    void fetchTrailingBoq(ThreadId tid);    // ibox.cc
    ThreadId chooseFetchThread();           // ibox.cc
    bool canFetch(ThreadId tid) const;      // ibox.cc
    bool trailingSlackGated(const ThreadState &t) const;    // ibox.cc

    void renameDispatch();                  // pbox.cc
    bool dispatchOne(ThreadId tid, DynInstPtr &inst, unsigned slot);
    unsigned iqFreeFor(ThreadId tid) const; // pbox.cc
    bool lsqSpaceFor(ThreadId tid, bool load) const;    // pbox.cc
    unsigned robFreeFor(ThreadId tid) const;    // pbox.cc
    bool physRegsAvailable(ThreadId tid) const;

    void issue();                           // qbox.cc
    bool operandsReady(const DynInstPtr &inst) const;
    bool memDepSatisfied(const DynInstPtr &inst) const;

    void processEvents();                   // ebox.cc
    void computeInst(const DynInstPtr &inst);       // ebox.cc
    void completeInst(const DynInstPtr &inst);      // ebox.cc
    void resolveControl(const DynInstPtr &inst);    // ebox.cc

    void memAgen(const DynInstPtr &inst);   // mbox.cc
    void loadAgen(const DynInstPtr &inst);  // mbox.cc
    void trailingLoadAgen(const DynInstPtr &inst);  // mbox.cc
    void storeAgen(const DynInstPtr &inst); // mbox.cc
    void storeDataArrive(const DynInstPtr &inst);   // mbox.cc
    void finishLoad(const DynInstPtr &inst, std::uint64_t value);
    void retryWaitingLoads();               // mbox.cc
    void releaseStores();                   // mbox.cc
    void verifyLeadingStores();             // mbox.cc
    void drainMergeBuffer();                // mbox.cc
    void checkOrderViolation(const DynInstPtr &store);  // mbox.cc

    void commit();                          // qbox.cc
    bool commitOne(ThreadId tid);           // qbox.cc

    // Commit-slot attribution diagnosis (qbox.cc).  All read-only: the
    // charging pass must never perturb the machine it is explaining.
    StallCause diagnoseEmptyRob(ThreadId tid) const;
    StallCause diagnoseDispatchBlock(ThreadId tid) const;
    StallCause diagnoseMembarWait(const ThreadState &t) const;
    bool commitUncached(ThreadState &t, const DynInstPtr &inst); // mbox.cc
    bool maybeTakeInterrupt(ThreadId tid);  // qbox.cc
    void verifyUncachedStores();            // mbox.cc

    /** @return the oldest squashed control instruction (for predictor
     *  state recovery), or nullptr. */
    DynInstPtr squashThread(ThreadId tid, InstSeq last_good_seq,
                            Addr restart_pc,
                            const char *reason);  // qbox.cc
    /** Flush speculative in-flight state.  @p drop_retired_stores also
     *  discards retired-unverified SQ entries (recovery rollback only:
     *  an interrupt must let committed stores finish verification). */
    void flushAllInflight(ThreadId tid,
                          bool drop_retired_stores = false);  // qbox.cc

    // ------------------------------------------------------- utilities
    void schedule(Cycle when, EvKind kind, const DynInstPtr &inst,
                  std::uint64_t payload = 0);
    std::uint64_t readPhys(PhysRegIndex idx) const;
    void writePhys(PhysRegIndex idx, std::uint64_t value);
    PhysRegIndex allocPhysReg();
    void freePhysReg(PhysRegIndex idx);
    Addr physMemAddr(const ThreadState &t, Addr vaddr) const
    {
        return physAddr(t.logical, vaddr);
    }
    bool usesLoadQueue(const ThreadState &t) const
    {
        return t.role != Role::Trailing;
    }
    void computeQueueQuotas();
    unsigned fuPoolSize(FuClass cls) const;
    std::uint8_t pickHalf(const DynInstPtr &inst, unsigned slot);
    void noteCommitProgress() { lastCommitCycle = now; }
    void checkDeadlock();

    // ----------------------------------------------------------- state
    SmtParams _params;
    MemSystem &memSystem;
    CoreId core;
    Cycle now = 0;

    // The instruction pool must be declared before every structure that
    // holds a DynInstPtr (threads, iq, calendar, waitingLoads): members
    // destroy in reverse order, and the pool has to outlive the last
    // handle.
    DynInstPool instPool;

    std::vector<ThreadState> threads;

    // Physical register file.
    std::vector<std::uint64_t> physRegs;
    std::vector<Cycle> readyAt;             ///< notReady = infinity
    std::vector<PhysRegIndex> freeList;
    std::vector<unsigned> physInUse;        ///< per-thread allocation count
    static constexpr Cycle notReady = ~Cycle{0};

    // Instruction queue: age-ordered, two logical halves.
    std::vector<DynInstPtr> iq;
    std::array<unsigned, 2> iqHalfOcc{};
    std::array<unsigned, 4> iqOccByThread{};
    unsigned robOccupancy = 0;              ///< shared completion unit

    // Event calendar.
    std::map<Cycle, std::vector<Event>> calendar;

    // Loads waiting on SQ/LVQ conditions; retried each cycle.
    std::vector<DynInstPtr> waitingLoads;

    // Structures.
    Cache l1i;
    Cache l1d;
    MergeBuffer mergeBuf;
    BranchPredictor bpred;
    LinePredictor linePred;
    IndirectPredictor indirect;
    StoreSets storeSets;
    std::vector<ReturnAddressStack> ras;

    FaultInjector *faults = nullptr;
    Device *device = nullptr;

    // Round-robin pointers.
    unsigned mapRr = 0;
    unsigned commitRr = 0;
    unsigned fetchRr = 0;

    // Watchdog.
    Cycle lastCommitCycle = 0;

    // Snapshot drain (see setDraining()).
    bool draining = false;

    // Commit tracing.
    std::ostream *traceOut = nullptr;
    std::uint64_t traceBudget = 0;      ///< 0 = unbounded
    std::uint64_t traceLines = 0;
    void traceCommit(const ThreadState &t, const DynInstPtr &inst);

    // Per-instruction lifecycle tracing (obs/pipetrace.hh).
    PipeTracer *pipeTracer = nullptr;

    // Commit-slot attribution scratch: commitOne() reports, per call,
    // why it blocked (commitStall) or whether the slot it consumed was
    // a squash drain (commitSlotSquash); commit() does the charging.
    StallCause commitStall = StallCause::Idle;
    bool commitSlotSquash = false;
    void
    chargeSlots(StallCause cause, unsigned slots)
    {
        *statSlots[static_cast<std::size_t>(cause)] += slots;
    }

    // Per-cycle issue accounting (reset in issue()).
    std::array<unsigned, 2> issuedThisCycle{};
    std::array<std::array<std::uint8_t, 4>, 2> fuBusy{};  ///< [half][class]

    // Stats.
    StatGroup statGroup;
    Counter statCycles;
    Counter statFetched;
    Counter statCommittedTotal;
    Counter statSquashes;
    Counter statBranchMispredicts;
    Counter statLineMispredicts;
    Counter statMemOrderViolations;
    Counter statSqFullStalls;
    Counter statIqFullStalls;
    Counter statRobFullStalls;
    Counter statLqFullStalls;
    Counter statDispatched;
    Counter statIssued;
    Counter statLvqFullStalls;
    Counter statLpqFullStalls;
    Counter statIcacheMissStalls;
    Counter statWrongPathInsts;
    Counter statFetchSrcLead;
    Counter statFetchSrcLpq;
    Counter statFetchSrcBoq;
    Counter statMergeEccCorrected;
    Counter statMergeCorruptions;
    /** One commit-slot counter per StallCause ("slots_committed", ...),
     *  registered on statGroup so they ride the chip stat walk: stats
     *  JSON export and snapshot save/restore both see them without any
     *  extra plumbing. */
    std::array<std::unique_ptr<Counter>, numStallCauses> statSlots;
};

} // namespace rmt

#endif // RMTSIM_CPU_SMT_CPU_HH
