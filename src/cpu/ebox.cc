/**
 * @file
 * EBOX/FBOX: execution, writeback, and control-flow resolution.  The
 * event calendar carries issued instructions through the RBOX register
 * read and functional-unit latencies.
 */

#include "cpu/smt_cpu.hh"

#include "common/logging.hh"

namespace rmt
{

void
SmtCpu::processEvents()
{
    while (!calendar.empty() && calendar.begin()->first <= now) {
        // Take ownership: handlers may schedule new events.
        std::vector<Event> batch = std::move(calendar.begin()->second);
        calendar.erase(calendar.begin());
        for (Event &ev : batch) {
            if (ev.inst->squashed)
                continue;
            switch (ev.kind) {
              case EvKind::Compute:
                computeInst(ev.inst);
                break;
              case EvKind::ExecDone:
                completeInst(ev.inst);
                break;
              case EvKind::MemAgen:
                memAgen(ev.inst);
                break;
              case EvKind::StoreData:
                storeDataArrive(ev.inst);
                break;
              case EvKind::LoadDone:
                finishLoad(ev.inst, ev.payload);
                break;
            }
        }
    }
}

void
SmtCpu::computeInst(const DynInstPtr &inst)
{
    const std::uint64_t a = readPhys(inst->psrc1);
    const std::uint64_t b = readPhys(inst->psrc2);
    AluResult r = evalOp(inst->si, inst->pc, a, b);

    // Permanent functional-unit fault model (Section 4.5): a stuck-at
    // fault corrupts every result this unit produces.
    if (faults) {
        const std::uint64_t filtered =
            faults->filterFuResult(core, inst->fuIndex, now, r.value);
        if (filtered != r.value) {
            r.value = filtered;
            if (inst->si.isCondBranch())
                r.taken = !r.taken;
        }
    }

    inst->result = r.value;
    inst->branchTaken = r.taken;
    inst->branchTarget = r.target;
    writePhys(inst->pdst, r.value);
}

void
SmtCpu::completeInst(const DynInstPtr &inst)
{
    inst->executed = true;
    inst->completed = true;
    inst->completeCycle = now;
    if (inst->isControl())
        resolveControl(inst);
}

void
SmtCpu::resolveControl(const DynInstPtr &inst)
{
    ThreadState &t = threads[inst->tid];
    const StaticInst &si = inst->si;
    const Addr actual_next =
        inst->branchTaken ? inst->branchTarget : inst->pc + instBytes;

    if (t.role == Role::Trailing) {
        // The trailing thread never redirects: its fetch stream is the
        // leading thread's committed path.  A disagreement here can
        // only come from a fault and is caught by the committed-stream
        // check / store comparator.
        return;
    }

    // Train the slow-path predictors with the resolved outcome.
    if (si.isCondBranch())
        bpred.update(inst->tid, inst->pc, inst->branchTaken,
                     inst->histSnap);
    if (si.isIndirect())
        indirect.update(inst->tid, inst->pc, inst->branchTarget);

    if (actual_next == inst->predNextPc)
        return;

    // ------------------------------------------------- misprediction
    ++statBranchMispredicts;
    if (si.isCondBranch())
        bpred.noteMispredict();

    squashThread(inst->tid, inst->seq, actual_next, "branch mispredict");

    // Repair speculative predictor state: history gets the branch's
    // pre-prediction snapshot extended with the real outcome; the RAS
    // is rolled back to the branch and its own push/pop replayed.
    if (si.isCondBranch())
        bpred.fixupHistory(inst->tid, inst->histSnap, inst->branchTaken);
    ras[inst->tid].restore(inst->rasSnap);
    if (si.isCall())
        ras[inst->tid].push(inst->pc + instBytes);
    else if (si.isRet())
        ras[inst->tid].pop();

    // Retrain the line predictor toward the resolved path so the next
    // traversal fetches correctly.
    linePred.train(inst->tid, inst->fetchChunkAddr, actual_next);
}

} // namespace rmt
