/**
 * @file
 * An in-flight dynamic instruction, carried by pointer through the
 * pipeline from fetch to retirement (or squash), plus the per-core
 * slab pool that recycles instruction records.
 *
 * DynInstPtr is an intrusive refcounted pointer with a *non-atomic*
 * count: a core (and everything it points at) is single-threaded by
 * construction — campaign parallelism runs across independent
 * Simulation objects, each with its own pools.  When the last
 * reference drops, the record returns to its pool's free list instead
 * of the heap, so steady-state simulation performs no per-instruction
 * allocation at all.
 */

#ifndef RMTSIM_CPU_DYN_INST_HH
#define RMTSIM_CPU_DYN_INST_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "isa/isa.hh"
#include "obs/attribution.hh"
#include "predictor/branch_predictor.hh"
#include "predictor/ras.hh"

namespace rmt
{

struct DynInst;
class DynInstPool;

/**
 * Intrusive refcounted handle to a pooled DynInst.  Copying bumps a
 * plain integer; the final release recycles the record into its pool.
 */
class DynInstPtr
{
  public:
    constexpr DynInstPtr() noexcept = default;
    constexpr DynInstPtr(std::nullptr_t) noexcept {}
    inline DynInstPtr(const DynInstPtr &o) noexcept;
    DynInstPtr(DynInstPtr &&o) noexcept : ptr(o.ptr) { o.ptr = nullptr; }
    inline DynInstPtr &operator=(const DynInstPtr &o) noexcept;
    inline DynInstPtr &operator=(DynInstPtr &&o) noexcept;
    ~DynInstPtr() { release(); }

    DynInst &operator*() const noexcept { return *ptr; }
    DynInst *operator->() const noexcept { return ptr; }
    DynInst *get() const noexcept { return ptr; }
    explicit operator bool() const noexcept { return ptr != nullptr; }

    void
    reset() noexcept
    {
        release();
        ptr = nullptr;
    }

    friend bool
    operator==(const DynInstPtr &a, const DynInstPtr &b) noexcept
    {
        return a.ptr == b.ptr;
    }
    friend bool
    operator==(const DynInstPtr &a, std::nullptr_t) noexcept
    {
        return a.ptr == nullptr;
    }

  private:
    friend class DynInstPool;
    /** Adopt @p raw, taking one reference. */
    inline explicit DynInstPtr(DynInst *raw) noexcept;
    inline void release() noexcept;

    DynInst *ptr = nullptr;
};

struct DynInst
{
    // ------------------------------------------------------- identity
    StaticInst si;
    Addr pc = 0;
    ThreadId tid = 0;
    InstSeq seq = 0;            ///< per-thread fetch order
    Addr fetchChunkAddr = 0;    ///< start of the fetch chunk (line pred)

    // ----------------------------------------------------- front end
    bool predTaken = false;
    Addr predNextPc = 0;        ///< pc fetch continued at
    BranchPredictor::HistorySnapshot histSnap = 0;
    ReturnAddressStack::Snapshot rasSnap{};
    std::uint64_t pairInstIdx = 0;  ///< per-pair commit-order index (RMT)

    // --------------------------------------------------------- rename
    PhysRegIndex pdst = invalidPhysReg;
    PhysRegIndex prevDst = invalidPhysReg;  ///< old mapping of si.rd
    PhysRegIndex psrc1 = invalidPhysReg;
    PhysRegIndex psrc2 = invalidPhysReg;

    // --------------------------------------------------------- status
    bool inIq = false;
    bool issued = false;
    bool executed = false;      ///< result produced / store addr+data in SQ
    bool completed = false;     ///< eligible to retire
    bool squashed = false;
    bool retired = false;
    /** Why this instruction is not complete yet (commit-slot
     *  attribution while it blocks the ROB head). */
    StallCause waitReason = StallCause::ExecLatency;
    Cycle fetchCycle = 0;
    Cycle dispatchCycle = 0;
    Cycle issueCycle = 0;
    Cycle completeCycle = 0;

    // ---------------------------------------------------------- QBOX
    std::uint8_t iqHalf = 0;    ///< 0 = upper, 1 = lower (PSR, Fig. 7)
    std::uint8_t fuIndex = 0;   ///< global functional-unit instance id
    std::uint8_t dispatchSlot = 0;  ///< position in the map chunk
    std::uint8_t leadHalf = 0;  ///< trailing: leading copy's IQ half
    Cycle issuableCycle = 0;    ///< earliest select (QBOX front latency)

    // --------------------------------------------------------- result
    std::uint64_t result = 0;
    bool branchTaken = false;
    Addr branchTarget = 0;
    bool mispredicted = false;

    // --------------------------------------------------------- memory
    Addr effAddr = 0;
    bool addrReady = false;
    std::uint64_t storeData = 0;
    bool dataReady = false;
    InstSeq depStoreSeq = ~InstSeq{0};  ///< store-sets wait target
    DynInstPtr depStore;        ///< resolved wait target (scan-free check)
    int lqIndex = -1;
    std::uint64_t storeIdx = 0;     ///< per-thread store order (RMT match)
    std::uint64_t loadTag = 0;      ///< LVQ correlation tag

    // ----------------------------------- store-queue entry state
    // (folded into the instruction so retirement and verification never
    // have to search the queue for their entry)
    Cycle sqAllocCycle = 0;     ///< SQ entry allocated (dispatch)
    Cycle sqRetireCycle = 0;    ///< store retired (release gating)
    bool sqVerified = false;    ///< SRT: store comparison done

    bool isLoad() const { return si.isLoad(); }
    bool isStore() const { return si.isStore(); }
    bool isControl() const { return si.isControl(); }

  private:
    friend class DynInstPtr;
    friend class DynInstPool;
    std::uint32_t refs = 0;         ///< non-atomic: cores are 1-threaded
    DynInstPool *pool = nullptr;    ///< owning pool (recycle target)
};

/**
 * Per-core slab allocator with a free list.  Records are acquired at
 * fetch and recycle automatically when the last DynInstPtr drops (at
 * retirement, squash, or once the last queue lets go).  Slabs are only
 * ever added, so records have stable addresses for the pool's
 * lifetime; the pool must outlive every handle (SmtCpu declares it
 * before all pipeline structures so it is destroyed last).
 */
class DynInstPool
{
  public:
    explicit DynInstPool(std::size_t slab_insts = 256)
        : slabInsts(slab_insts ? slab_insts : 1)
    {
    }

    DynInstPool(const DynInstPool &) = delete;
    DynInstPool &operator=(const DynInstPool &) = delete;

    /** A fresh (default-state) instruction record with one reference. */
    inline DynInstPtr acquire();

    /** Records currently handed out. */
    std::size_t live() const { return liveCount; }
    /** Total records ever created (slabs * slab size). */
    std::size_t capacity() const { return slabs.size() * slabInsts; }
    /** Times a record went back on the free list. */
    std::uint64_t recycles() const { return recycleCount; }

  private:
    friend class DynInstPtr;

    inline void recycle(DynInst *inst) noexcept;

    void
    grow()
    {
        slabs.push_back(std::make_unique<DynInst[]>(slabInsts));
        DynInst *slab = slabs.back().get();
        freeList.reserve(freeList.size() + slabInsts);
        // Hand out in address order for cache-friendly first fills.
        for (std::size_t i = slabInsts; i-- > 0;)
            freeList.push_back(&slab[i]);
    }

    std::size_t slabInsts;
    std::vector<std::unique_ptr<DynInst[]>> slabs;
    std::vector<DynInst *> freeList;
    std::size_t liveCount = 0;
    std::uint64_t recycleCount = 0;
};

// ------------------------------------------------ inline definitions

inline DynInstPtr::DynInstPtr(const DynInstPtr &o) noexcept : ptr(o.ptr)
{
    if (ptr)
        ++ptr->refs;
}

inline DynInstPtr::DynInstPtr(DynInst *raw) noexcept : ptr(raw)
{
    if (ptr)
        ++ptr->refs;
}

inline DynInstPtr &
DynInstPtr::operator=(const DynInstPtr &o) noexcept
{
    if (o.ptr)
        ++o.ptr->refs;
    DynInst *old = ptr;
    ptr = o.ptr;
    if (old && --old->refs == 0)
        old->pool->recycle(old);
    return *this;
}

inline DynInstPtr &
DynInstPtr::operator=(DynInstPtr &&o) noexcept
{
    if (this != &o) {
        release();
        ptr = o.ptr;
        o.ptr = nullptr;
    }
    return *this;
}

inline void
DynInstPtr::release() noexcept
{
    if (ptr && --ptr->refs == 0)
        ptr->pool->recycle(ptr);
}

inline DynInstPtr
DynInstPool::acquire()
{
    if (freeList.empty())
        grow();
    DynInst *inst = freeList.back();
    freeList.pop_back();
    inst->pool = this;
    ++liveCount;
    return DynInstPtr(inst);
}

inline void
DynInstPool::recycle(DynInst *inst) noexcept
{
    // Reset to default state now so stale references (depStore chains)
    // release immediately and acquisition is a plain pop.
    *inst = DynInst{};
    inst->pool = this;
    freeList.push_back(inst);
    --liveCount;
    ++recycleCount;
}

} // namespace rmt

#endif // RMTSIM_CPU_DYN_INST_HH
