/**
 * @file
 * An in-flight dynamic instruction, carried by pointer through the
 * pipeline from fetch to retirement (or squash).
 */

#ifndef RMTSIM_CPU_DYN_INST_HH
#define RMTSIM_CPU_DYN_INST_HH

#include <cstdint>
#include <memory>

#include "isa/isa.hh"
#include "predictor/branch_predictor.hh"
#include "predictor/ras.hh"

namespace rmt
{

struct DynInst;
using DynInstPtr = std::shared_ptr<DynInst>;

struct DynInst
{
    // ------------------------------------------------------- identity
    StaticInst si;
    Addr pc = 0;
    ThreadId tid = 0;
    InstSeq seq = 0;            ///< per-thread fetch order
    Addr fetchChunkAddr = 0;    ///< start of the fetch chunk (line pred)

    // ----------------------------------------------------- front end
    bool predTaken = false;
    Addr predNextPc = 0;        ///< pc fetch continued at
    BranchPredictor::HistorySnapshot histSnap = 0;
    ReturnAddressStack::Snapshot rasSnap{};
    std::uint64_t pairInstIdx = 0;  ///< per-pair commit-order index (RMT)

    // --------------------------------------------------------- rename
    PhysRegIndex pdst = invalidPhysReg;
    PhysRegIndex prevDst = invalidPhysReg;  ///< old mapping of si.rd
    PhysRegIndex psrc1 = invalidPhysReg;
    PhysRegIndex psrc2 = invalidPhysReg;

    // --------------------------------------------------------- status
    bool inIq = false;
    bool issued = false;
    bool executed = false;      ///< result produced / store addr+data in SQ
    bool completed = false;     ///< eligible to retire
    bool squashed = false;
    bool retired = false;
    Cycle fetchCycle = 0;
    Cycle dispatchCycle = 0;
    Cycle issueCycle = 0;
    Cycle completeCycle = 0;

    // ---------------------------------------------------------- QBOX
    std::uint8_t iqHalf = 0;    ///< 0 = upper, 1 = lower (PSR, Fig. 7)
    std::uint8_t fuIndex = 0;   ///< global functional-unit instance id
    std::uint8_t dispatchSlot = 0;  ///< position in the map chunk
    std::uint8_t leadHalf = 0;  ///< trailing: leading copy's IQ half
    Cycle issuableCycle = 0;    ///< earliest select (QBOX front latency)

    // --------------------------------------------------------- result
    std::uint64_t result = 0;
    bool branchTaken = false;
    Addr branchTarget = 0;
    bool mispredicted = false;

    // --------------------------------------------------------- memory
    Addr effAddr = 0;
    bool addrReady = false;
    std::uint64_t storeData = 0;
    bool dataReady = false;
    InstSeq depStoreSeq = ~InstSeq{0};  ///< store-sets wait target
    int lqIndex = -1;
    std::uint64_t storeIdx = 0;     ///< per-thread store order (RMT match)
    std::uint64_t loadTag = 0;      ///< LVQ correlation tag

    bool isLoad() const { return si.isLoad(); }
    bool isStore() const { return si.isStore(); }
    bool isControl() const { return si.isControl(); }
};

} // namespace rmt

#endif // RMTSIM_CPU_DYN_INST_HH
