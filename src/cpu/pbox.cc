/**
 * @file
 * PBOX: register rename and dispatch into the QBOX (paper Section 3.2),
 * including per-thread resource reservations for deadlock avoidance
 * (Section 4.3) and the half-assignment policy that preferential space
 * redundancy builds on (Sections 3.3, 4.5).
 */

#include "cpu/smt_cpu.hh"

#include "common/logging.hh"

namespace rmt
{

unsigned
SmtCpu::robFreeFor(ThreadId tid) const
{
    // The completion unit tracks all in-flight instructions; like the
    // IQ, each other active thread keeps a reserved slice (Section 4.3).
    unsigned reserve = 0;
    for (unsigned t = 0; t < threads.size(); ++t) {
        if (t == tid || !threads[t].active)
            continue;
        const unsigned occ =
            static_cast<unsigned>(threads[t].rob.size());
        if (occ < _params.rob_reserved_per_thread)
            reserve += _params.rob_reserved_per_thread - occ;
    }
    if (robOccupancy + reserve >= _params.rob_entries)
        return 0;
    return _params.rob_entries - robOccupancy - reserve;
}

bool
SmtCpu::lsqSpaceFor(ThreadId tid, bool load) const
{
    // Static partitioning (the paper's design) is enforced entirely by
    // the per-thread quotas; the global check below only matters under
    // dynamic partitioning.
    if (!_params.dynamic_lsq_partition)
        return true;
    std::size_t occupied = 0;
    unsigned reserve = 0;
    for (unsigned i = 0; i < threads.size(); ++i) {
        const ThreadState &other = threads[i];
        if (!other.active)
            continue;
        const std::size_t occ =
            load ? other.lq.size() : other.sq.size();
        occupied += occ;
        if (i != tid && occ < _params.lsq_reserved_per_thread &&
            (!load || usesLoadQueue(other))) {
            reserve += _params.lsq_reserved_per_thread -
                       static_cast<unsigned>(occ);
        }
    }
    const unsigned total = load ? _params.load_queue_entries
                                : _params.store_queue_entries;
    return occupied + reserve < total;
}

unsigned
SmtCpu::iqFreeFor(ThreadId tid) const
{
    // Every other active thread keeps one reserved chunk of IQ entries
    // (Section 4.3) so a stalled thread cannot wedge its partner.
    unsigned occupied = iqHalfOcc[0] + iqHalfOcc[1];
    unsigned reserve = 0;
    for (unsigned t = 0; t < threads.size(); ++t) {
        if (t == tid || !threads[t].active)
            continue;
        const unsigned occ = iqOccByThread[t];
        if (occ < _params.iq_reserved_per_thread)
            reserve += _params.iq_reserved_per_thread - occ;
    }
    const unsigned total = _params.iq_entries;
    if (occupied + reserve >= total)
        return 0;
    return total - occupied - reserve;
}

std::uint8_t
SmtCpu::pickHalf(const DynInstPtr &inst, unsigned slot)
{
    const ThreadState &t = threads[inst->tid];
    const unsigned half_cap = _params.iq_entries / 2;

    // Base policy: the position in the fetch chunk selects the half
    // (Section 3.3) — which is why, without PSR, corresponding leading
    // and trailing instructions usually land in the same half (Fig. 7):
    // both copies occupy the same position in equivalent chunks.
    (void)slot;
    const unsigned chunk_pos = (inst->pc / instBytes) % chunkSize;
    std::uint8_t preferred = chunk_pos < chunkSize / 2 ? 0 : 1;

    if (t.role == Role::Trailing &&
        _params.preferential_space_redundancy &&
        _params.trailing_fetch == TrailingFetchMode::LinePredictionQueue) {
        // PSR: issue the trailing copy to the *opposite* half of the
        // queue, guaranteeing distinct IQ entries and functional units.
        preferred = static_cast<std::uint8_t>(1 - inst->leadHalf);
        if (iqHalfOcc[preferred] >= half_cap) {
            preferred = static_cast<std::uint8_t>(1 - preferred);
            t.pair->notePsrForcedSameHalf();
        }
        return preferred;
    }

    if (iqHalfOcc[preferred] >= half_cap)
        preferred = static_cast<std::uint8_t>(1 - preferred);
    return preferred;
}

bool
SmtCpu::dispatchOne(ThreadId tid, DynInstPtr &inst, unsigned slot)
{
    ThreadState &t = threads[tid];
    const StaticInst &si = inst->si;

    if (robFreeFor(tid) == 0) {
        ++statRobFullStalls;
        return false;
    }

    const bool needs_iq = si.fuClass() != FuClass::None &&
                          !si.isMemBar() && !si.isUncached();
    if (needs_iq && iqFreeFor(tid) == 0) {
        ++statIqFullStalls;
        return false;
    }

    const bool needs_dest = si.rd != noReg && si.rd != intReg(0);
    if (needs_dest && !physRegsAvailable(tid))
        return false;

    if (si.isLoad() && usesLoadQueue(t) &&
        (t.lq.size() >= t.lqQuota || !lsqSpaceFor(tid, /*load=*/true))) {
        ++statLqFullStalls;
        return false;
    }
    if (si.isStore() &&
        (t.sq.size() >= t.sqQuota || !lsqSpaceFor(tid, /*load=*/false))) {
        ++statSqFullStalls;
        return false;
    }

    // ------------------------------------------------------ rename
    inst->psrc1 = si.ra != noReg ? t.renameMap[si.ra] : invalidPhysReg;
    inst->psrc2 = si.rb != noReg ? t.renameMap[si.rb] : invalidPhysReg;
    if (needs_dest) {
        inst->prevDst = t.renameMap[si.rd];
        inst->pdst = allocPhysReg();
        ++physInUse[tid];
        t.renameMap[si.rd] = inst->pdst;
    }
    inst->dispatchSlot = static_cast<std::uint8_t>(slot);
    inst->dispatchCycle = now;

    // ---------------------------------------------------- dispatch
    if (needs_iq) {
        inst->iqHalf = pickHalf(inst, slot);
        inst->issuableCycle =
            now + _params.pbox_latency + _params.qbox_front_latency;
        inst->inIq = true;
        iq.push_back(inst);
        ++iqHalfOcc[inst->iqHalf];
        ++iqOccByThread[tid];
    } else if (!si.isUncached()) {
        // Nops, halts, and memory barriers bypass the scheduler; the
        // barrier's ordering effect is enforced at retirement.
        inst->executed = true;
        inst->completed = true;
        inst->completeCycle = now;
    }
    // Uncached accesses also bypass the scheduler but stay incomplete:
    // they perform non-speculatively at the head of the machine.

    // ------------------------------------------------- memory refs
    if (si.isLoad()) {
        // Load correlation tags must follow *committed* program order:
        // the trailing thread is never squashed, so its tags are dense
        // and get assigned here; the leading thread's are assigned at
        // retirement (wrong-path loads must not consume tags).
        if (t.pair && t.role == Role::Trailing)
            inst->loadTag = t.pair->trailLoadTag++;
        if (usesLoadQueue(t)) {
            t.lq.push_back(inst);
            inst->lqIndex = 1;
            inst->depStoreSeq = storeSets.loadDependence(tid, inst->pc);
            if (inst->depStoreSeq != StoreSets::noStore) {
                // Resolve the wait target to a pointer once, here, so
                // the per-cycle readiness check in QBOX issue never has
                // to search the store queue.  A store that already left
                // the machine simply clears the dependence.
                for (auto it = t.sq.rbegin(); it != t.sq.rend(); ++it) {
                    if ((*it)->seq == inst->depStoreSeq) {
                        inst->depStore = *it;
                        break;
                    }
                }
                if (!inst->depStore)
                    inst->depStoreSeq = StoreSets::noStore;
            }
        }
    }
    if (si.isStore()) {
        // As with load tags: trailing store indices are dense in
        // dispatch order; leading ones are assigned at retirement.
        if (t.pair && t.role == Role::Trailing)
            inst->storeIdx = t.pair->trailStoreIdx++;
        inst->sqAllocCycle = now;
        t.sq.push_back(inst);
        if (t.role != Role::Trailing)
            storeSets.storeFetched(tid, inst->pc, inst->seq);
    }

    t.rob.push_back(inst);
    ++robOccupancy;
    ++statDispatched;
    return true;
}

void
SmtCpu::renameDispatch()
{
    // One map chunk (up to 8 instructions) from one thread per cycle
    // (Table 1).  Blocked threads are skipped: PBOX storage is
    // per-thread (Section 4.3), so a stalled thread does not block the
    // mapper for others.
    const unsigned n = static_cast<unsigned>(threads.size());
    for (unsigned i = 0; i < n; ++i) {
        const ThreadId tid = static_cast<ThreadId>((mapRr + i) % n);
        ThreadState &t = threads[tid];
        if (!t.active || t.rmb.empty())
            continue;
        if (t.rmb.front()->fetchCycle + _params.ibox_latency > now)
            continue;

        unsigned slot = 0;
        bool any = false;
        while (slot < _params.map_width && !t.rmb.empty()) {
            DynInstPtr inst = t.rmb.front();
            if (inst->fetchCycle + _params.ibox_latency > now)
                break;
            if (!dispatchOne(tid, inst, slot))
                break;
            t.rmb.pop_front();
            ++slot;
            any = true;
        }
        if (any) {
            mapRr = (tid + 1) % n;
            return;
        }
    }
}

} // namespace rmt
