/**
 * @file
 * MBOX: loads, stores, the load/store queues, store-load forwarding,
 * order-violation detection, the merge buffer, and the SRT hooks —
 * trailing loads via the LVQ (Section 4.1) and leading-store
 * verification via the store comparator (Section 4.2).
 */

#include "cpu/smt_cpu.hh"

#include "common/bits.hh"
#include "common/logging.hh"

namespace rmt
{

namespace
{

/** [a, a+as) overlaps [b, b+bs)? */
bool
overlaps(Addr a, unsigned as, Addr b, unsigned bs)
{
    return a < b + bs && b < a + as;
}

/** Does the store [sa, sa+ss) fully cover the load [la, la+ls)? */
bool
covers(Addr sa, unsigned ss, Addr la, unsigned ls)
{
    return sa <= la && la + ls <= sa + ss;
}

std::uint64_t
sizeMask(unsigned bytes)
{
    return bytes >= 8 ? ~std::uint64_t{0}
                      : (std::uint64_t{1} << (8 * bytes)) - 1;
}

} // namespace

void
SmtCpu::memAgen(const DynInstPtr &inst)
{
    ThreadState &t = threads[inst->tid];
    if (inst->isLoad()) {
        if (t.role == Role::Trailing)
            trailingLoadAgen(inst);
        else
            loadAgen(inst);
    } else {
        storeAgen(inst);
    }
}

void
SmtCpu::loadAgen(const DynInstPtr &inst)
{
    ThreadState &t = threads[inst->tid];
    const unsigned size = inst->si.memSize();
    inst->effAddr = effectiveAddr(inst->si, readPhys(inst->psrc1));
    inst->addrReady = true;

    // Probe the store queue: the youngest older store with a known,
    // overlapping address governs this load.
    for (auto it = t.sq.rbegin(); it != t.sq.rend(); ++it) {
        const DynInstPtr &st = *it;
        if (st->seq >= inst->seq)
            continue;
        if (!st->addrReady)
            continue;   // unknown address: speculate past it
        if (!overlaps(st->effAddr, st->si.memSize(), inst->effAddr, size))
            continue;

        if (covers(st->effAddr, st->si.memSize(), inst->effAddr, size)) {
            if (st->dataReady) {
                const unsigned shift =
                    static_cast<unsigned>(inst->effAddr - st->effAddr) * 8;
                const std::uint64_t value =
                    (st->storeData >> shift) & sizeMask(size);
                schedule(now + _params.mbox_latency, EvKind::LoadDone,
                         inst, value);
                return;
            }
            // Data not in the SQ yet: retry once it arrives.
            waitingLoads.push_back(inst);
            return;
        }

        // Partial overlap: the base design flushes the store so the
        // load can read the merged value from the cache (Section 4.4).
        // For a leading thread that flush needs the trailing store, so
        // force LPQ chunk termination.
        if (t.role == Role::Leading && t.pair)
            t.pair->flushAggregation(now);
        waitingLoads.push_back(inst);
        return;
    }

    // No forwarding: access the D-cache (and memory system on a miss).
    bool hit = false;
    const Cycle ready =
        memSystem.access(l1d, physMemAddr(t, inst->effAddr), now, hit);
    inst->waitReason =
        hit ? StallCause::ExecLatency : StallCause::DcacheMiss;
    const std::uint64_t value = t.mem->read(inst->effAddr, size);
    schedule(std::max(ready, now) + _params.mbox_latency, EvKind::LoadDone,
             inst, value);
}

void
SmtCpu::trailingLoadAgen(const DynInstPtr &inst)
{
    // Trailing loads bypass the load queue, the store queue, and the
    // data cache entirely: the LVQ replicates the leading thread's
    // load inputs (Section 4.1).
    ThreadState &t = threads[inst->tid];
    inst->effAddr = effectiveAddr(inst->si, readPhys(inst->psrc1));
    inst->addrReady = true;

    std::uint64_t data = 0;
    switch (t.pair->lvq.lookup(inst->loadTag, inst->effAddr, now, data)) {
      case Lvq::Lookup::NotPresent:
        // The leading copy has not produced this load's value yet.
        inst->waitReason = StallCause::LvqEmpty;
        waitingLoads.push_back(inst);
        return;
      case Lvq::Lookup::AddrMismatch:
        t.pair->recordDetection(DetectionKind::LvqAddrMismatch, now);
        [[fallthrough]];
      case Lvq::Lookup::Hit:
        inst->waitReason = StallCause::ExecLatency;
        schedule(now + _params.mbox_latency, EvKind::LoadDone, inst, data);
        return;
    }
}

void
SmtCpu::finishLoad(const DynInstPtr &inst, std::uint64_t value)
{
    inst->result = value;
    writePhys(inst->pdst, value);
    if (inst->pdst != invalidPhysReg)
        readyAt[inst->pdst] = now;
    inst->executed = true;
    inst->completed = true;
    inst->completeCycle = now;
}

void
SmtCpu::storeAgen(const DynInstPtr &inst)
{
    ThreadState &t = threads[inst->tid];
    inst->effAddr = effectiveAddr(inst->si, readPhys(inst->psrc1));
    inst->addrReady = true;

    if (t.role != Role::Trailing)
        checkOrderViolation(inst);

    // Store data reaches the queue two cycles after the address
    // (Section 3.4).
    schedule(now + _params.store_data_delay, EvKind::StoreData, inst);
}

void
SmtCpu::storeDataArrive(const DynInstPtr &inst)
{
    ThreadState &t = threads[inst->tid];
    const unsigned size = inst->si.memSize();
    inst->storeData = readPhys(inst->psrc2) & sizeMask(size);
    inst->dataReady = true;
    inst->executed = true;
    inst->completed = true;
    inst->completeCycle = now;

    if (t.role == Role::Trailing) {
        if (_params.srt_store_comparison) {
            const auto &pp = t.pair->params();
            t.pair->comparator.pushTrailing(
                inst->storeIdx, inst->effAddr, inst->storeData, size,
                now + pp.forward_latency_lvq + pp.cross_core_latency);
        }
    } else {
        storeSets.storeCompleted(inst->tid, inst->pc, inst->seq);
    }
}

void
SmtCpu::checkOrderViolation(const DynInstPtr &store)
{
    ThreadState &t = threads[store->tid];
    const unsigned ssize = store->si.memSize();

    DynInstPtr victim;
    for (const auto &ld : t.lq) {
        if (ld->seq <= store->seq || ld->squashed || !ld->addrReady)
            continue;
        if (!overlaps(store->effAddr, ssize, ld->effAddr,
                      ld->si.memSize())) {
            continue;
        }
        if (!victim || ld->seq < victim->seq)
            victim = ld;
    }
    if (!victim)
        return;

    ++statMemOrderViolations;
    storeSets.recordViolation(store->tid, victim->pc, store->pc);
    const DynInstPtr oldest_ctl = squashThread(
        store->tid, victim->seq - 1, victim->pc, "memory order violation");
    if (oldest_ctl) {
        bpred.restoreHistory(store->tid, oldest_ctl->histSnap);
        ras[store->tid].restore(oldest_ctl->rasSnap);
    }
}

void
SmtCpu::retryWaitingLoads()
{
    if (waitingLoads.empty())
        return;
    std::vector<DynInstPtr> pending;
    pending.swap(waitingLoads);
    for (auto &inst : pending) {
        if (inst->squashed || inst->completed)
            continue;
        ThreadState &t = threads[inst->tid];
        if (t.role == Role::Trailing)
            trailingLoadAgen(inst);
        else
            loadAgen(inst);
    }
}

void
SmtCpu::verifyLeadingStores()
{
    if (!_params.srt_store_comparison)
        return;
    for (auto &t : threads) {
        if (!t.active || t.role != Role::Leading)
            continue;
        if (t.sq.empty())
            continue;
        RedundantPair &pair = *t.pair;
        if (pair.comparator.pendingTrailing() == 0)
            continue;   // no trailing stores to match against yet
        for (const DynInstPtr &st : t.sq) {
            if (st->sqVerified)
                continue;
            if (!st->retired || !st->addrReady || !st->dataReady)
                break;  // comparator matches in store order
            bool mismatch = false;
            if (!pair.comparator.tryVerify(st->storeIdx, st->effAddr,
                                           st->storeData,
                                           st->si.memSize(), now,
                                           mismatch)) {
                break;  // corresponding trailing store not here yet
            }
            st->sqVerified = true;
            if (mismatch) {
                pair.recordDetection(DetectionKind::StoreMismatch, now);
            } else if (pair.recovery) {
                pair.recovery->noteVerified(st->storeIdx);
            }
        }
    }
}

void
SmtCpu::releaseStores()
{
    for (auto &t : threads) {
        if (!t.active || t.role == Role::Trailing)
            continue;
        unsigned releases = 0;
        while (!t.sq.empty() && releases < _params.max_stores_per_cycle) {
            const DynInstPtr &entry = t.sq.front();
            if (entry->squashed) {
                t.sq.pop_front();
                continue;
            }
            if (!entry->retired)
                break;
            if (t.role == Role::Leading && _params.srt_store_comparison &&
                !entry->sqVerified) {
                break;
            }
            // Lockstep: the store release path runs through the central
            // checker (Section 6.3).
            if (now < entry->sqRetireCycle + _params.store_checker_penalty)
                break;
            const Addr paddr = physMemAddr(t, entry->effAddr);
            if (!mergeBuf.canAccept(paddr)) {
                mergeBuf.noteFullReject();
                break;
            }
            mergeBuf.accept(paddr, now);
            if (t.mergeStrike) {
                // The functional write already happened at commit; a
                // merge-buffer strike re-corrupts the coalescing copy
                // of this store's bytes after the comparator is done
                // with them.  ECC catches it; without ECC the flip
                // reaches memory unobserved.
                t.mergeStrike = false;
                if (_params.merge_buffer_ecc) {
                    ++statMergeEccCorrected;
                } else {
                    const unsigned size = entry->si.memSize();
                    const unsigned b = t.mergeStrikeBit % (8 * size);
                    const std::uint64_t data =
                        t.mem->read(entry->effAddr, size);
                    t.mem->write(entry->effAddr, size, flipBit(data, b));
                    ++statMergeCorruptions;
                }
            }
            t.storeLifetime->sample(
                static_cast<double>(now - entry->sqAllocCycle));
            t.storeLifetimeHist->sample(
                static_cast<double>(now - entry->sqAllocCycle));
            t.sq.pop_front();
            ++releases;
        }
    }
}

bool
SmtCpu::commitUncached(ThreadState &t, const DynInstPtr &inst)
{
    const StaticInst &si = inst->si;
    if (!inst->addrReady) {
        inst->effAddr = effectiveAddr(si, readPhys(inst->psrc1));
        inst->addrReady = true;
    }
    const unsigned latency = device ? device->accessLatency() : 1;

    if (si.isUncachedLoad()) {
        std::uint64_t value = 0;
        if (t.role == Role::Trailing) {
            // Input replication: take the leading thread's device value
            // (the register is volatile; a second read would differ).
            if (!t.pair->uncachedLoadAvailable(now))
                return false;
            value = t.pair->popUncachedLoad();
        } else {
            // Device ordering: this thread's unverified uncached stores
            // must reach the device before a newer read.
            if (t.role == Role::Leading && t.pair &&
                !t.pair->uncachedLeadStores.empty()) {
                return false;
            }
            if (!inst->issued) {
                inst->issued = true;
                inst->issueCycle = now + latency;
            }
            if (now < inst->issueCycle)
                return false;
            value = device ? device->read(inst->effAddr) : 0;
            if (t.role == Role::Leading && t.pair)
                t.pair->pushUncachedLoad(value, now);
        }
        inst->result = value;
        writePhys(inst->pdst, value);
        if (inst->pdst != invalidPhysReg)
            readyAt[inst->pdst] = now;
        inst->executed = true;
        inst->completed = true;
        inst->completeCycle = now;
        return true;
    }

    // Uncached store: compare before performing, perform exactly once.
    const std::uint64_t data = readPhys(inst->psrc2);
    inst->storeData = data;
    inst->dataReady = true;
    if (t.role == Role::Trailing) {
        t.pair->pushUncachedStore(false, inst->effAddr, data, now);
    } else if (t.role == Role::Leading) {
        // Held in the uncached store buffer until the trailing copy
        // arrives; verification and the single device write happen in
        // verifyUncachedStores().
        t.pair->pushUncachedStore(true, inst->effAddr, data, now);
    } else {
        if (!inst->issued) {
            inst->issued = true;
            inst->issueCycle = now + latency;
        }
        if (now < inst->issueCycle)
            return false;
        if (device)
            device->write(inst->effAddr, data);
    }
    inst->executed = true;
    inst->completed = true;
    inst->completeCycle = now;
    return true;
}

void
SmtCpu::verifyUncachedStores()
{
    for (auto &t : threads) {
        if (!t.active || t.role != Role::Leading)
            continue;
        RedundantPair &pair = *t.pair;
        while (!pair.uncachedLeadStores.empty() &&
               !pair.uncachedTrailStores.empty()) {
            const auto &lead = pair.uncachedLeadStores.front();
            const auto &trail = pair.uncachedTrailStores.front();
            if (now < lead.availableAt || now < trail.availableAt)
                break;
            if (lead.addr != trail.addr || lead.data != trail.data)
                pair.recordDetection(DetectionKind::StoreMismatch, now);
            if (device)
                device->write(lead.addr, lead.data);
            pair.uncachedLeadStores.pop_front();
            pair.uncachedTrailStores.pop_front();
        }
    }
}

void
SmtCpu::drainMergeBuffer()
{
    Addr block = 0;
    while (mergeBuf.drain(now, block)) {
        bool hit = false;
        memSystem.access(l1d, block, now, hit);
        memSystem.writeback(block);
    }
}

} // namespace rmt
