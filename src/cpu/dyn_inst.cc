// DynInst is a plain aggregate; this file anchors the component in the
// build.
#include "cpu/dyn_inst.hh"
