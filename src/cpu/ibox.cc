/**
 * @file
 * IBOX: instruction fetch (paper Section 3.1), including the trailing
 * thread's LPQ-driven fetch (Section 4.4) and the branch-outcome-queue
 * ablation front ends.
 */

#include "cpu/smt_cpu.hh"

#include "common/bits.hh"
#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace rmt
{

namespace
{

constexpr Addr chunkBytes = chunkSize * instBytes;

Addr
chunkFrameEnd(Addr pc)
{
    return (pc & ~Addr(chunkBytes - 1)) + chunkBytes;
}

/**
 * The opcode a single-bit decode strike turns @p op into.  Siblings
 * stay within the instruction's structural class (an ALU op stays an
 * ALU op, a store keeps being a store of some width) so the corrupted
 * instruction still flows through the same pipeline resources — the
 * fault corrupts the *result*, not the simulator's plumbing.  Two
 * deliberate exclusions: nothing maps *into* Div/Fdiv (a conjured
 * divide-by-zero would trap the host, not model a fault), and loads
 * have no sibling — the LVQ forwards the leading load's value verbatim
 * to the trailing copy, so a load-width swap would corrupt both copies
 * identically and be undetectable by construction; those fall back to
 * an immediate-bit flip (which the LVQ address check *does* see).
 */
Op
decodeSibling(Op op)
{
    switch (op) {
      case Op::Add: return Op::Sub;
      case Op::Sub: return Op::Add;
      case Op::Mul: return Op::Add;
      case Op::Div: return Op::Sub;
      case Op::AddI: return Op::SltI;
      case Op::SltI: return Op::AddI;
      case Op::MulI: return Op::AddI;
      case Op::Slt: return Op::Sltu;
      case Op::Sltu: return Op::Slt;
      case Op::Cmpeq: return Op::Slt;
      case Op::And: return Op::Or;
      case Op::Or: return Op::And;
      case Op::Xor: return Op::And;
      case Op::AndI: return Op::OrI;
      case Op::OrI: return Op::AndI;
      case Op::XorI: return Op::AndI;
      case Op::Sll: return Op::Srl;
      case Op::Srl: return Op::Sll;
      case Op::Sra: return Op::Srl;
      case Op::SllI: return Op::SrlI;
      case Op::SrlI: return Op::SllI;
      case Op::Stb: return Op::Sth;
      case Op::Sth: return Op::Stb;
      case Op::Stw: return Op::Stq;
      case Op::Stq: return Op::Stw;
      case Op::Fst: return Op::Stw;
      case Op::Beq: return Op::Bne;
      case Op::Bne: return Op::Beq;
      case Op::Blt: return Op::Bge;
      case Op::Bge: return Op::Blt;
      case Op::Fadd: return Op::Fsub;
      case Op::Fsub: return Op::Fadd;
      case Op::Fmul: return Op::Fadd;
      case Op::Fdiv: return Op::Fsub;
      case Op::Fsqrt: return Op::Fneg;
      case Op::Fneg: return Op::Fsqrt;
      case Op::Fcmplt: return Op::Fcmpeq;
      case Op::Fcmpeq: return Op::Fcmplt;
      case Op::CvtIF: return Op::CvtFI;
      case Op::CvtFI: return Op::CvtIF;
      default: return op;     // loads, control transfers without a safe
                              // sibling, Nop/Halt/MemBar/...: imm flip
    }
}

} // namespace

void
SmtCpu::applyDecodeStrike(ThreadState &t, StaticInst &si)
{
    t.decodeStrike = false;
    if (t.decodeStrikeBit >= 48) {
        const Op sibling = decodeSibling(si.op);
        if (sibling != si.op) {
            si.op = sibling;
            return;
        }
        // No safe opcode sibling: degrade to an immediate strike.
    }
    si.imm = static_cast<std::int64_t>(flipBit(
        static_cast<std::uint64_t>(si.imm), t.decodeStrikeBit % 48));
}

bool
SmtCpu::trailingSlackGated(const ThreadState &t) const
{
    // Slack fetch gate (Section 2.3).  Under the LPQ the gate lifts
    // once the queue is half full: a slack larger than the LPQ can
    // buffer would deadlock leading retirement (full LPQ) against a
    // gated trailing fetch.
    if (!_params.slack_fetch)
        return false;
    if (_params.trailing_fetch == TrailingFetchMode::LinePredictionQueue &&
        t.pair->lpq.size() >= t.pair->lpq.entries() / 2) {
        return false;
    }
    // Verification pressure: retired leading stores wait in the store
    // queue for their trailing copies; if the backlog grows to a
    // meaningful fraction of the SQ, gating the trailing thread any
    // longer risks wedging leading dispatch on a full SQ (the deadlock
    // family of Section 4.3).
    if (_params.srt_store_comparison &&
        t.pair->leadStoreIdx >
            t.pair->trailStoreIdx + _params.store_queue_entries / 4) {
        return false;
    }
    return t.pair->leadRetired <
           t.pair->trailFetched + _params.slack_fetch;
}

bool
SmtCpu::canFetch(ThreadId tid) const
{
    const ThreadState &t = threads[tid];
    if (!t.active || t.fetchHalted || t.halted)
        return false;
    if (now < t.fetchStallUntil)
        return false;
    if (t.rmb.size() + chunkSize > _params.rmb_chunks * chunkSize)
        return false;
    // Snapshot drain: freeze every fetch stream except trailing threads,
    // which still have to consume what their leading partners committed.
    if (draining && t.role != Role::Trailing)
        return false;
    if (t.role == Role::Trailing) {
        // The slack gate wedges once the trailing thread closes within
        // slack of a frozen leading thread, so it is bypassed while
        // draining; the BOQ-style front ends get an exact per-
        // instruction cap instead (they only fetch the committed path).
        if (!draining && trailingSlackGated(t))
            return false;
        if (_params.trailing_fetch ==
            TrailingFetchMode::LinePredictionQueue) {
            return t.pair->lpq.available(now);
        }
        if (draining && t.pair->trailFetched >= t.pair->leadRetired)
            return false;
        // BOQ-style front ends fetch down their own line-predicted path.
        return true;
    }
    return true;
}

ThreadId
SmtCpu::chooseFetchThread()
{
    // The thread chooser approximates ICOUNT via rate-matching-buffer
    // occupancy (Section 3.1), but gives trailing threads priority
    // whenever an LPQ prediction is available (Section 4.4).  The
    // priority applies only to the LPQ front end: a prediction in hand
    // guarantees progress.  BOQ-style trailing threads use plain
    // ICOUNT — they can be outcome-starved, and prioritising them would
    // starve the leading thread that produces those outcomes.
    ThreadId best = invalidThread;
    bool best_trailing = false;
    std::size_t best_occ = 0;
    const unsigned n = static_cast<unsigned>(threads.size());
    for (unsigned i = 0; i < n; ++i) {
        const ThreadId tid = static_cast<ThreadId>((fetchRr + i) % n);
        if (!canFetch(tid))
            continue;
        const bool trailing =
            threads[tid].role == Role::Trailing &&
            _params.trailing_fetch ==
                TrailingFetchMode::LinePredictionQueue;
        const std::size_t occ = threads[tid].rmb.size();
        if (best == invalidThread || (trailing && !best_trailing) ||
            (trailing == best_trailing && occ < best_occ)) {
            best = tid;
            best_trailing = trailing;
            best_occ = occ;
        }
    }
    return best;
}

void
SmtCpu::fetch()
{
    const ThreadId tid = chooseFetchThread();
    if (tid == invalidThread)
        return;
    fetchRr = (tid + 1) % threads.size();

    ThreadState &t = threads[tid];
    if (t.role == Role::Trailing &&
        _params.trailing_fetch == TrailingFetchMode::LinePredictionQueue) {
        fetchTrailingLpq(tid);
    } else if (t.role == Role::Trailing) {
        fetchTrailingBoq(tid);
    } else {
        fetchLeadingChunks(tid);
    }
}

void
SmtCpu::fetchLeadingChunks(ThreadId tid)
{
    ThreadState &t = threads[tid];

    for (unsigned k = 0; k < _params.fetch_chunks_per_cycle; ++k) {
        if (t.fetchHalted || now < t.fetchStallUntil)
            break;
        if (t.rmb.size() + chunkSize > _params.rmb_chunks * chunkSize)
            break;

        const Addr start = t.fetchPc;
        bool hit = false;
        const Cycle ready =
            memSystem.access(l1i, physMemAddr(t, start), now, hit);
        if (!hit) {
            t.fetchStallUntil = ready;
            t.fetchStallReason = FetchStall::IcacheMiss;
            statIcacheMissStalls += ready - now;
            break;
        }

        // Walk the chunk: from start to the end of its 32-byte frame,
        // truncated at the first predicted-taken control instruction.
        const Addr frame_end = chunkFrameEnd(start);
        Addr next_fetch_pc = frame_end;
        bool halt_seen = false;
        Addr pc = start;
        while (pc < frame_end) {
            const StaticInst &si = t.program->fetch(pc);
            DynInstPtr inst = instPool.acquire();
            inst->si = si;
            inst->pc = pc;
            inst->tid = tid;
            inst->seq = t.nextSeq++;
            inst->fetchChunkAddr = start;
            inst->fetchCycle = now;
            if (t.decodeStrike)
                applyDecodeStrike(t, inst->si);

            if (si.isHalt()) {
                inst->predNextPc = pc;
                t.rmb.push_back(inst);
                ++statFetched;
                ++statFetchSrcLead;
                halt_seen = true;
                break;
            }

            if (si.isControl()) {
                inst->histSnap = bpred.history(tid);
                inst->rasSnap = ras[tid].snapshot();
                bool taken = false;
                Addr target = 0;
                switch (si.op) {
                  case Op::Beq: case Op::Bne: case Op::Blt: case Op::Bge:
                    taken = bpred.predict(tid, pc);
                    target = pc + instBytes +
                             static_cast<std::uint64_t>(si.imm);
                    break;
                  case Op::Br:
                  case Op::Call:
                    taken = true;
                    target = pc + instBytes +
                             static_cast<std::uint64_t>(si.imm);
                    if (si.isCall())
                        ras[tid].push(pc + instBytes);
                    break;
                  case Op::CallR:
                    taken = true;
                    target = indirect.predict(tid, pc);
                    ras[tid].push(pc + instBytes);
                    break;
                  case Op::Jmp:
                    taken = true;
                    target = indirect.predict(tid, pc);
                    break;
                  case Op::Ret:
                    taken = true;
                    target = ras[tid].pop();
                    break;
                  default:
                    panic("unhandled control op in fetch");
                }
                inst->predTaken = taken;
                inst->predNextPc = taken ? target : pc + instBytes;
                t.rmb.push_back(inst);
                ++statFetched;
                ++statFetchSrcLead;
                if (taken) {
                    next_fetch_pc = target;
                    pc += instBytes;
                    break;
                }
                pc += instBytes;
                continue;
            }

            inst->predNextPc = pc + instBytes;
            t.rmb.push_back(inst);
            ++statFetched;
            ++statFetchSrcLead;
            pc += instBytes;
        }

        if (halt_seen) {
            t.fetchHalted = true;
            break;
        }

        // Line-prediction verification (IBOX stage 4): the line
        // predictor drove the fetch; the branch-path predictors just
        // computed next_fetch_pc.  On disagreement, retrain and restart
        // the address driver.
        const ThreadId lp_tid = tid;
        const Addr predicted = linePred.predict(lp_tid, start);
        linePred.train(lp_tid, start, next_fetch_pc);
        t.fetchPc = next_fetch_pc;
        if (predicted != next_fetch_pc) {
            linePred.noteMispredict();
            ++statLineMispredicts;
            if (std::getenv("RMT_LP_DEBUG")) {
                std::fprintf(stderr,
                             "LP cyc=%llu tid=%u start=%llx pred=%llx "
                             "actual=%llx\n",
                             (unsigned long long)now, tid,
                             (unsigned long long)start,
                             (unsigned long long)predicted,
                             (unsigned long long)next_fetch_pc);
            }
            t.fetchStallUntil = now + _params.line_mispredict_penalty;
            t.fetchStallReason = FetchStall::LineMispredict;
            break;
        }
    }
}

void
SmtCpu::fetchTrailingLpq(ThreadId tid)
{
    ThreadState &t = threads[tid];
    RedundantPair &pair = *t.pair;

    for (unsigned k = 0; k < _params.fetch_chunks_per_cycle; ++k) {
        if (t.fetchHalted || now < t.fetchStallUntil)
            break;
        if (t.rmb.size() + chunkSize > _params.rmb_chunks * chunkSize)
            break;
        if (!pair.lpq.available(now))
            break;
        if (!draining && trailingSlackGated(t))
            break;

        const LpqChunk chunk = pair.lpq.activeChunk();
        pair.lpq.ack();

        bool hit = false;
        const Cycle ready =
            memSystem.access(l1i, physMemAddr(t, chunk.start), now, hit);
        if (!hit) {
            // I-cache miss: roll the active head back to the recovery
            // head; the prediction sequence reissues after the fill.
            pair.lpq.rollback();
            t.fetchStallUntil = ready;
            t.fetchStallReason = FetchStall::IcacheMiss;
            statIcacheMissStalls += ready - now;
            break;
        }
        pair.lpq.commitFetch();
        if (std::getenv("RMT_LPQ_DEBUG") && core == 1 && tid == 2) {
            std::fprintf(stderr, "CHUNK cyc=%llu start=%llx count=%u\n",
                         (unsigned long long)now,
                         (unsigned long long)chunk.start, chunk.count);
        }

        bool halt_seen = false;
        for (unsigned i = 0; i < chunk.count; ++i) {
            const Addr pc = chunk.start + i * instBytes;
            const StaticInst &si = t.program->fetch(pc);
            DynInstPtr inst = instPool.acquire();
            inst->si = si;
            inst->pc = pc;
            inst->tid = tid;
            inst->seq = t.nextSeq++;
            inst->fetchChunkAddr = chunk.start;
            inst->fetchCycle = now;
            if (t.decodeStrike)
                applyDecodeStrike(t, inst->si);
            inst->leadHalf = chunk.leadHalf[i];
            // The LPQ stream is the prediction: within a chunk the flow
            // is sequential; a chunk-final control instruction's target
            // is simply the next chunk's start (checked at commit).
            inst->predNextPc = pc + instBytes;
            inst->predTaken = false;
            t.rmb.push_back(inst);
            ++statFetched;
            ++statFetchSrcLpq;
            ++pair.trailFetched;
            if (si.isHalt()) {
                halt_seen = true;
                break;
            }
        }
        if (halt_seen) {
            t.fetchHalted = true;
            break;
        }
    }
}

void
SmtCpu::fetchTrailingBoq(ThreadId tid)
{
    ThreadState &t = threads[tid];
    RedundantPair &pair = *t.pair;

    for (unsigned k = 0; k < _params.fetch_chunks_per_cycle; ++k) {
        if (t.fetchHalted || now < t.fetchStallUntil)
            break;
        if (t.rmb.size() + chunkSize > _params.rmb_chunks * chunkSize)
            break;
        if (!draining && trailingSlackGated(t))
            break;

        const Addr start = t.fetchPc;
        bool hit = false;
        const Cycle ready =
            memSystem.access(l1i, physMemAddr(t, start), now, hit);
        if (!hit) {
            t.fetchStallUntil = ready;
            t.fetchStallReason = FetchStall::IcacheMiss;
            statIcacheMissStalls += ready - now;
            break;
        }

        const Addr frame_end = chunkFrameEnd(start);
        Addr next_fetch_pc = frame_end;
        bool halt_seen = false;
        bool starved = false;
        Addr pc = start;
        unsigned fetched_here = 0;
        while (pc < frame_end) {
            // Drain cap: never run ahead of the frozen leading thread.
            if (draining && pair.trailFetched >= pair.leadRetired) {
                starved = true;
                break;
            }
            const StaticInst &si = t.program->fetch(pc);

            bool taken = false;
            Addr target = 0;
            if (si.isControl()) {
                // Perfect branch outcomes from the leading thread.
                if (!pair.boqFrontAvailable(now)) {
                    starved = true;
                    break;
                }
                const BoqEntry &outcome = pair.boqFront();
                if (outcome.pc != pc) {
                    // Only possible after fault-induced divergence.
                    pair.recordDetection(DetectionKind::ControlDivergence,
                                         now);
                    starved = true;
                    break;
                }
                taken = outcome.taken;
                target = outcome.target;
                pair.boqPop();
            }

            DynInstPtr inst = instPool.acquire();
            inst->si = si;
            inst->pc = pc;
            inst->tid = tid;
            inst->seq = t.nextSeq++;
            inst->fetchChunkAddr = start;
            inst->fetchCycle = now;
            if (t.decodeStrike)
                applyDecodeStrike(t, inst->si);
            inst->predTaken = taken;
            inst->predNextPc =
                si.isControl() && taken ? target : pc + instBytes;
            t.rmb.push_back(inst);
            ++statFetched;
            ++statFetchSrcBoq;
            ++pair.trailFetched;
            ++fetched_here;

            if (si.isHalt()) {
                halt_seen = true;
                break;
            }
            if (si.isControl() && taken) {
                next_fetch_pc = target;
                pc += instBytes;
                break;
            }
            pc += instBytes;
        }

        if (halt_seen) {
            t.fetchHalted = true;
            break;
        }
        if (starved) {
            // Retry from the control instruction once outcomes arrive.
            t.fetchPc = pc;
            break;
        }

        // The line predictor still drives this front end; only the
        // branch outcomes are oracle (BOQ mode).  In shared mode the
        // trailing thread indexes with the leading thread's id.
        const ThreadId lp_tid =
            _params.trailing_fetch == TrailingFetchMode::SharedLinePredictor
                ? t.pair->params().leading.tid
                : tid;
        const Addr predicted = linePred.predict(lp_tid, start);
        if (_params.trailing_fetch != TrailingFetchMode::SharedLinePredictor)
            linePred.train(lp_tid, start, next_fetch_pc);
        t.fetchPc = next_fetch_pc;
        if (predicted != next_fetch_pc) {
            linePred.noteMispredict();
            ++statLineMispredicts;
            t.fetchStallUntil = now + _params.line_mispredict_penalty;
            t.fetchStallReason = FetchStall::LineMispredict;
            break;
        }
        (void)fetched_here;
    }
}

} // namespace rmt
