/**
 * @file
 * QBOX: instruction queue select/issue and the completion unit
 * (paper Section 3.3), plus squash handling and the SRT retirement-side
 * duties: LVQ fill, LPQ chunk aggregation, branch-outcome forwarding,
 * and the trailing thread's committed-stream divergence check.
 */

#include "cpu/smt_cpu.hh"

#include "common/logging.hh"
#include "obs/pipetrace.hh"

#include <cstdio>
#include <cstdlib>

namespace rmt
{

bool
SmtCpu::operandsReady(const DynInstPtr &inst) const
{
    const auto ready = [&](PhysRegIndex p) {
        return p == invalidPhysReg || readyAt[p] <= now;
    };
    return ready(inst->psrc1) && ready(inst->psrc2);
}

bool
SmtCpu::memDepSatisfied(const DynInstPtr &inst) const
{
    // The wait-target store was resolved to a direct pointer at
    // dispatch, so no store-queue search happens here.  A squashed
    // store left the machine; a released store retired with address
    // and data ready, so the flag check below covers it too.
    if (!inst->isLoad() || inst->depStoreSeq == StoreSets::noStore)
        return true;
    const DynInst *st = inst->depStore.get();
    if (!st || st->squashed)
        return true;    // the store left the machine
    return st->addrReady && st->dataReady;
}

void
SmtCpu::issue()
{
    issuedThisCycle = {0, 0};
    for (auto &half : fuBusy)
        half = {0, 0, 0, 0};
    if (iq.empty())
        return;
    unsigned total = 0;
    unsigned loads_issued = 0;
    unsigned stores_issued = 0;

    // One age-ordered pass, compacting survivors in place: issued and
    // dead (squashed / already-issued) entries drop out without the
    // per-erase shuffling a middle-of-vector erase costs.  Selection
    // order and every issue decision are identical to an erase-as-you-
    // go walk, so cycle timing is unchanged.
    const std::size_t n = iq.size();
    std::size_t out = 0;
    for (std::size_t in = 0; in < n; ++in) {
        DynInstPtr &slot = iq[in];
        DynInst *const inst = slot.get();
        if (inst->squashed || !inst->inIq) {
            slot.reset();
            continue;
        }

        bool issue_now = false;
        unsigned cls_idx = 0;
        unsigned pool = 0;
        unsigned unit = 0;
        const std::uint8_t half = inst->iqHalf;
        if (total < _params.issue_width && now >= inst->issuableCycle &&
            issuedThisCycle[half] < _params.issue_per_half &&
            !(inst->isLoad() &&
              loads_issued >= _params.max_loads_per_cycle) &&
            !(inst->isStore() &&
              stores_issued >= _params.max_stores_per_cycle) &&
            operandsReady(slot) && memDepSatisfied(slot)) {
            // Functional-unit selection within the half: position-
            // preferred (deterministic, which is what makes redundant
            // copies collide on the same unit without PSR — Fig. 7),
            // falling back to the next free unit.
            const FuClass cls = inst->si.fuClass();
            cls_idx = static_cast<unsigned>(cls);
            pool = fuPoolSize(cls);
            const std::uint8_t busy = fuBusy[half][cls_idx];
            const unsigned pref =
                static_cast<unsigned>(inst->pc / instBytes) % pool;
            unit = pool;
            for (unsigned k = 0; k < pool; ++k) {
                const unsigned u = (pref + k) % pool;
                if (!(busy & (1u << u))) {
                    unit = u;
                    break;
                }
            }
            // unit == pool: all units of this class busy in this half.
            issue_now = unit != pool;
        }

        if (!issue_now) {
            if (out != in)
                iq[out] = std::move(slot);
            ++out;
            continue;
        }

        fuBusy[half][cls_idx] = static_cast<std::uint8_t>(
            fuBusy[half][cls_idx] | (1u << unit));

        // Global functional-unit instance id (for Fig. 7 and for the
        // permanent-fault model): classes occupy disjoint id ranges,
        // halves own disjoint unit instances.
        static constexpr unsigned class_base[] = {0, 16, 32, 48};
        inst->fuIndex = static_cast<std::uint8_t>(
            class_base[cls_idx] + half * pool + unit);

        inst->issued = true;
        inst->issueCycle = now;

        if (inst->si.isMemRef()) {
            schedule(now + _params.rbox_latency, EvKind::MemAgen, slot);
            if (inst->isLoad())
                ++loads_issued;
            else
                ++stores_issued;
        } else {
            // Wakeup and bypass: dependents see the result after the
            // execution latency; the Compute event writes the value at
            // exactly that time.  Completion (and branch resolution)
            // happens after the full QBOX-back + RBOX + EBOX depth.
            if (inst->pdst != invalidPhysReg)
                readyAt[inst->pdst] = now + inst->si.latency();
            schedule(now + inst->si.latency(), EvKind::Compute, slot);
            schedule(now + _params.qbox_back_latency +
                         _params.rbox_latency + inst->si.latency(),
                     EvKind::ExecDone, slot);
        }

        inst->inIq = false;
        --iqHalfOcc[half];
        --iqOccByThread[inst->tid];
        ++issuedThisCycle[half];
        ++statIssued;
        ++total;
        slot.reset();
    }
    iq.resize(out);
}

bool
SmtCpu::maybeTakeInterrupt(ThreadId tid)
{
    ThreadState &t = threads[tid];

    if (t.role == Role::Trailing) {
        // The trailing copy's fetch stream already follows the handler
        // (it comes through the LPQ); all it needs is to resynchronise
        // the committed-stream divergence check at the same boundary.
        if (t.pair && !t.pair->interruptBoundaries.empty()) {
            const auto &b = t.pair->interruptBoundaries.front();
            if (now >= b.availableAt && t.committed == b.committed) {
                t.haveExpectedPc = false;
                t.pair->interruptBoundaries.pop_front();
            }
        }
        return false;
    }

    if (t.pendingInterrupts.empty() ||
        now < t.pendingInterrupts.front().when || t.halted) {
        return false;
    }

    const Addr vector = t.pendingInterrupts.front().vector;
    t.pendingInterrupts.pop_front();

    // Precise delivery at an instruction boundary: everything younger
    // than the boundary is discarded and refetched after the handler.
    flushAllInflight(tid);
    t.intReturnPc = t.nextCommitPc;
    t.fetchPc = vector;
    t.fetchStallUntil = now + 2;
    t.fetchStallReason = FetchStall::Redirect;
    t.fetchHalted = false;

    if (t.role == Role::Leading && t.pair)
        t.pair->pushInterruptBoundary(t.committed, now);
    return true;
}

bool
SmtCpu::commitOne(ThreadId tid)
{
    ThreadState &t = threads[tid];
    commitSlotSquash = false;
    if (maybeTakeInterrupt(tid)) {
        commitStall = StallCause::SquashRecovery;
        return false;   // redirected; nothing retires this cycle
    }
    if (t.rob.empty() || t.halted) {
        commitStall =
            t.halted ? StallCause::Idle : diagnoseEmptyRob(tid);
        return false;
    }
    DynInstPtr inst = t.rob.front();
    if (inst->squashed) {
        t.rob.pop_front();
        --robOccupancy;
        commitSlotSquash = true;    // drained slot, not a retirement
        return true;
    }
    // Uncached accesses execute here, in order, at the head of the
    // machine (non-speculative by construction).
    if (inst->si.isUncached() && !inst->completed &&
        !commitUncached(t, inst)) {
        commitStall = StallCause::UncachedWait;
        return false;
    }
    if (!inst->completed) {
        // Loads carry their own wait reason (set by the MBOX when the
        // access started); anything else is simply still executing.
        commitStall = inst->isLoad() ? inst->waitReason
                                     : StallCause::ExecLatency;
        return false;
    }

    const StaticInst &si = inst->si;
    RedundantPair *pair = t.pair;
    const bool leading = t.role == Role::Leading;
    const bool trailing = t.role == Role::Trailing;

    // Memory barrier: retires only once this thread's *older* stores
    // have drained from the store queue (Section 3.4).  When the
    // barrier is the oldest instruction, force LPQ chunk termination so
    // the trailing stores it is waiting on can be fetched and verified
    // (Section 4.4 deadlock rule).
    if (si.isMemBar()) {
        // The SQ is dispatch-ordered, so the oldest entry decides in
        // O(1) whether any older store is still pending.
        const bool older_store_pending =
            !t.sq.empty() && t.sq.front()->seq < inst->seq;
        if (older_store_pending) {
            if (leading && pair && !pair->aggregationEmpty())
                pair->flushAggregation(now);
            commitStall = diagnoseMembarWait(t);
            return false;
        }
    }

    // Leading-side stall checks before any side effects.
    if (leading && si.isLoad() && pair->lvq.full()) {
        ++statLvqFullStalls;
        commitStall = StallCause::LvqFull;
        return false;
    }
    if (leading && pair &&
        _params.trailing_fetch != TrailingFetchMode::LinePredictionQueue &&
        si.isControl() && pair->boqFull()) {
        commitStall = StallCause::BoqFull;
        return false;
    }

    // LPQ chunk aggregation (leading): a full LPQ stalls retirement.
    if (leading && pair &&
        _params.trailing_fetch == TrailingFetchMode::LinePredictionQueue) {
        if (!pair->appendRetired(inst->pc, inst->iqHalf, now)) {
            ++statLpqFullStalls;
            commitStall = StallCause::LpqFull;
            return false;
        }
    } else if (leading && pair) {
        ++pair->leadRetired;
    }

    if (leading && pair && si.isLoad()) {
        const auto &pp = pair->params();
        inst->loadTag = pair->leadLoadTag++;    // committed-order tag
        pair->lvq.insert(inst->loadTag, inst->effAddr, inst->result,
                         now + pp.forward_latency_lvq +
                             pp.cross_core_latency);
    }

    if (leading && pair && si.isControl() &&
        _params.trailing_fetch != TrailingFetchMode::LinePredictionQueue) {
        const Addr next =
            inst->branchTaken ? inst->branchTarget : inst->pc + instBytes;
        pair->pushBranchOutcome(inst->pc, inst->branchTaken, next, now);
    }

    // Stores: architectural memory update at retirement; the SQ entry
    // lives on until release (and, for leading threads, verification).
    if (si.isStore()) {
        if (leading && pair && pair->recovery) {
            // Capture the memory pre-image for rollback.
            pair->recovery->preStore(*t.mem, inst->effAddr,
                                     si.memSize());
        }
        if (!trailing)
            t.mem->write(inst->effAddr, si.memSize(), inst->storeData);
        if (leading)
            inst->storeIdx = pair->leadStoreIdx++;  // committed order
        inst->retired = true;
        inst->sqRetireCycle = now;
        if (trailing) {
            // Trailing stores exist only to be compared; their queue
            // entry frees at retirement.
            if (!t.sq.empty() && t.sq.front() == inst)
                t.sq.pop_front();
        }
    }

    // Loads leave the load queue at retirement.
    if (si.isLoad() && inst->lqIndex >= 0 && !t.lq.empty() &&
        t.lq.front() == inst) {
        t.lq.pop_front();
    }

    // Trailing committed-stream divergence check: the committed pc
    // sequence must follow the LPQ/BOQ path; a disagreement between a
    // control instruction's computed target and the instruction that
    // actually followed it is a detected fault.
    if (trailing) {
        if (t.haveExpectedPc && inst->pc != t.expectedPc) {
            if (std::getenv("RMT_DIV_DEBUG")) {
                std::fprintf(stderr,
                             "DIV cyc=%llu core=%u tid=%u pc=%llx "
                             "expected=%llx seq=%llu %s\n",
                             (unsigned long long)now, core, tid,
                             (unsigned long long)inst->pc,
                             (unsigned long long)t.expectedPc,
                             (unsigned long long)inst->seq,
                             inst->si.disassemble().c_str());
            }
            pair->recordDetection(DetectionKind::ControlDivergence, now);
        }
        t.expectedPc = si.isControl()
                           ? (inst->branchTaken ? inst->branchTarget
                                                : inst->pc + instBytes)
                           : inst->pc + instBytes;
        t.haveExpectedPc = true;
    }

    // Figure 7 instrumentation: functional-unit placement of the two
    // copies of each instruction (uncached ops use no functional unit).
    if (pair && inst->issued && !si.isUncached()) {
        if (leading)
            pair->pushLeadingFu(inst->iqHalf, inst->fuIndex);
        else if (trailing)
            pair->compareTrailingFu(inst->iqHalf, inst->fuIndex);
    }

    // Co-simulation against the in-order reference model.
    if (t.ref) {
        const StepResult r = t.ref->step();
        if (r.pc != inst->pc) {
            panic("cosim[c%u t%u]: pc %llx expected %llx", core, tid,
                  static_cast<unsigned long long>(inst->pc),
                  static_cast<unsigned long long>(r.pc));
        }
        if (si.isUncached()) {
            // The device is volatile; reconcile its value into the
            // reference so dependent computation stays comparable.
            if (si.isUncachedLoad())
                t.ref->writeReg(si.rd, inst->result);
        } else if (!si.isHalt() && r.rd != noReg && r.rd != intReg(0) &&
            inst->result != r.value) {
            panic("cosim[c%u t%u]: pc %llx (%s) value %llx expected %llx",
                  core, tid, static_cast<unsigned long long>(inst->pc),
                  si.disassemble().c_str(),
                  static_cast<unsigned long long>(inst->result),
                  static_cast<unsigned long long>(r.value));
        }
        if (r.is_store &&
            (r.store_addr != inst->effAddr ||
             r.store_data != inst->storeData)) {
            panic("cosim[c%u t%u]: pc %llx store mismatch", core, tid,
                  static_cast<unsigned long long>(inst->pc));
        }
    }

    if (si.isHalt()) {
        t.halted = true;
        t.finishCycle = now;
        if (leading && pair)
            pair->flushAggregation(now);
    }

    // The previous mapping of the destination register is dead now
    // (pdst itself stays allocated until a younger writer commits).
    if (inst->pdst != invalidPhysReg) {
        freePhysReg(inst->prevDst);
        --physInUse[tid];
        if (si.rd != noReg)
            t.archRegs[si.rd] = inst->result;   // committed arch state
    }

    if (traceOut)
        traceCommit(t, inst);
    if (pipeTracer)
        pipeTracer->recordRetire(core, tid, *inst, now);

    t.rob.pop_front();
    --robOccupancy;
    ++t.committed;
    *t.statCommitted += 1;
    ++statCommittedTotal;
    noteCommitProgress();

    // Measurement window opens once the warm-up prefix has committed.
    if (t.measureSkip && t.committed == t.measureSkip)
        t.startCycle = now;

    // Track the precise boundary pc (interrupt entry and checkpoints).
    t.nextCommitPc = si.isHalt()
                         ? inst->pc
                         : (si.isIret()
                                ? t.intReturnPc
                                : (si.isControl() && inst->branchTaken
                                       ? inst->branchTarget
                                       : inst->pc + instBytes));

    // Return from interrupt: serializing redirect to the captured
    // resume pc.  The trailing copy's stream already continues there
    // via the LPQ, so only leading/single threads redirect.
    if (si.isIret()) {
        if (!trailing) {
            flushAllInflight(tid);
            t.fetchPc = t.intReturnPc;
            t.fetchStallUntil = now + 2;
            t.fetchStallReason = FetchStall::Redirect;
            t.fetchHalted = false;
        } else {
            // The resume target is not computable locally: allow the
            // stream gap.
            t.haveExpectedPc = false;
        }
    }

    // Checkpoint cadence (fault recovery): leading commits drive it.
    if (leading && pair && pair->recovery) {
        pair->recovery->noteCommit(t.archRegs, t.nextCommitPc,
                                   t.committed, pair->leadLoadTag,
                                   pair->leadStoreIdx);
    }

    if (!t.done && t.target && t.committed >= t.target) {
        t.done = true;
        t.finishCycle = now;
    }
    return true;
}

void
SmtCpu::commit()
{
    const unsigned n = static_cast<unsigned>(threads.size());
    unsigned budget = _params.issue_width;   // retire width == 8
    // Commit-slot accounting: every one of the issue_width slots is
    // charged to exactly one StallCause each cycle.  Slots consumed by
    // commitOne() are Committed (or SquashRecovery for squash drains);
    // the remainder is split across the causes that blocked each active
    // thread, or charged Idle when no thread wanted the slots.  The
    // charge always totals issue_width, so sum(buckets) ==
    // cycles * commit_width holds at every cycle boundary.
    std::array<StallCause, 4> blocked;
    unsigned nblocked = 0;
    for (unsigned i = 0; i < n && budget > 0; ++i) {
        const ThreadId tid = static_cast<ThreadId>((commitRr + i) % n);
        if (!threads[tid].active)
            continue;
        unsigned retired = 0;
        unsigned drained = 0;
        while (budget > 0 && commitOne(tid)) {
            --budget;
            if (commitSlotSquash)
                ++drained;
            else
                ++retired;
        }
        if (retired)
            chargeSlots(StallCause::Committed, retired);
        if (drained)
            chargeSlots(StallCause::SquashRecovery, drained);
        if (budget > 0)
            blocked[nblocked++] = commitStall;  // why commitOne said no
    }
    commitRr = (commitRr + 1) % n;

    if (budget > 0) {
        if (nblocked == 0) {
            chargeSlots(StallCause::Idle, budget);
        } else {
            const unsigned share = budget / nblocked;
            const unsigned rem = budget % nblocked;
            for (unsigned k = 0; k < nblocked; ++k) {
                const unsigned amount = share + (k < rem ? 1 : 0);
                if (amount)
                    chargeSlots(blocked[k], amount);
            }
        }
    }
}

StallCause
SmtCpu::diagnoseEmptyRob(ThreadId tid) const
{
    const ThreadState &t = threads[tid];
    if (t.fetchHalted && t.rmb.empty())
        return StallCause::Idle;    // program fully fetched and retired
    if (draining)
        return StallCause::DrainBarrier;
    if (!t.rmb.empty())
        return diagnoseDispatchBlock(tid);

    // The frontend has nothing buffered: why is fetch not delivering?
    if (now < t.fetchStallUntil) {
        switch (t.fetchStallReason) {
          case FetchStall::IcacheMiss:
            return StallCause::IcacheMiss;
          case FetchStall::LineMispredict:
          case FetchStall::Redirect:
            return StallCause::SquashRecovery;
          case FetchStall::None:
            break;
        }
        return StallCause::FetchStarved;
    }
    if (t.role == Role::Trailing && t.pair && trailingSlackGated(t))
        return StallCause::SlackThrottled;
    // Remaining trailing cases (LPQ empty, BOQ outcome starvation) and
    // plain fetch/dispatch latency: the frontend owes us instructions.
    return StallCause::FetchStarved;
}

StallCause
SmtCpu::diagnoseDispatchBlock(ThreadId tid) const
{
    // Mirror of dispatchOne()'s resource checks against the next
    // instruction waiting in the rate-matching buffer, without the
    // side-effecting rename.  Order matters: it must match dispatch.
    const ThreadState &t = threads[tid];
    const DynInstPtr &head = t.rmb.front();
    if (head->fetchCycle + _params.ibox_latency > now)
        return StallCause::FetchStarved;    // still in IBOX transit
    if (robFreeFor(tid) == 0)
        return StallCause::RobFull;
    const StaticInst &si = head->si;
    const bool needs_iq = si.fuClass() != FuClass::None &&
                          !si.isMemBar() && !si.isUncached();
    if (needs_iq && iqFreeFor(tid) == 0)
        return StallCause::IqFull;
    const bool needs_dest = si.rd != noReg && si.rd != intReg(0);
    if (needs_dest && !physRegsAvailable(tid))
        return StallCause::RobFull;     // rename-resource exhaustion
    if (si.isLoad() && usesLoadQueue(t) &&
        (t.lq.size() >= t.lqQuota || !lsqSpaceFor(tid, /*load=*/true))) {
        return StallCause::LqFull;
    }
    if (si.isStore() &&
        (t.sq.size() >= t.sqQuota || !lsqSpaceFor(tid, /*load=*/false))) {
        return StallCause::SqFull;
    }
    // Dispatchable, but the mapper served another thread this cycle.
    return StallCause::FetchStarved;
}

StallCause
SmtCpu::diagnoseMembarWait(const ThreadState &t) const
{
    // A memory barrier at the head waits for the SQ to drain; mirror
    // releaseStores()'s gating on the oldest entry read-only (in
    // particular: no noteFullReject(), that is the release path's job).
    if (t.sq.empty())
        return StallCause::ExecLatency;
    const DynInstPtr &entry = t.sq.front();
    if (entry->squashed || !entry->retired)
        return StallCause::ExecLatency;     // store still completing
    if (t.role == Role::Leading && _params.srt_store_comparison &&
        !entry->sqVerified) {
        return StallCause::StoreCompWait;
    }
    if (now < entry->sqRetireCycle + _params.store_checker_penalty)
        return StallCause::StoreCompWait;
    if (!mergeBuf.canAccept(physMemAddr(t, entry->effAddr)))
        return StallCause::MergeBufferFull;
    return StallCause::ExecLatency;
}

DynInstPtr
SmtCpu::squashThread(ThreadId tid, InstSeq last_good_seq, Addr restart_pc,
                     const char *reason)
{
    (void)reason;
    ThreadState &t = threads[tid];
    ++statSquashes;

    DynInstPtr oldest_ctl;
    while (!t.rob.empty() && t.rob.back()->seq > last_good_seq) {
        DynInstPtr inst = t.rob.back();
        t.rob.pop_back();
        --robOccupancy;
        inst->squashed = true;
        ++statWrongPathInsts;

        if (inst->inIq) {
            inst->inIq = false;
            --iqHalfOcc[inst->iqHalf];
            --iqOccByThread[tid];
        }
        if (inst->pdst != invalidPhysReg) {
            t.renameMap[inst->si.rd] = inst->prevDst;
            freePhysReg(inst->pdst);
            --physInUse[tid];
        }
        if (inst->isStore() && !t.sq.empty() && t.sq.back() == inst)
            t.sq.pop_back();
        if (inst->isLoad() && !t.lq.empty() && t.lq.back() == inst)
            t.lq.pop_back();
        if (inst->isControl())
            oldest_ctl = inst;
    }

    for (auto &inst : t.rmb) {
        inst->squashed = true;
        ++statWrongPathInsts;
    }
    t.rmb.clear();

    storeSets.squashThread(tid);

    t.fetchPc = restart_pc;
    t.fetchStallUntil = now + 1 + _params.branch_mispredict_extra;
    t.fetchStallReason = FetchStall::Redirect;
    t.fetchHalted = false;
    return oldest_ctl;
}

void
SmtCpu::flushAllInflight(ThreadId tid, bool drop_retired_stores)
{
    ThreadState &t = threads[tid];
    while (!t.rob.empty()) {
        DynInstPtr inst = t.rob.back();
        t.rob.pop_back();
        --robOccupancy;
        inst->squashed = true;
        if (inst->inIq) {
            inst->inIq = false;
            --iqHalfOcc[inst->iqHalf];
            --iqOccByThread[tid];
        }
        if (inst->pdst != invalidPhysReg) {
            t.renameMap[inst->si.rd] = inst->prevDst;
            freePhysReg(inst->pdst);
            --physInUse[tid];
        }
    }
    for (auto &inst : t.rmb)
        inst->squashed = true;
    t.rmb.clear();

    if (drop_retired_stores) {
        // Recovery rollback: even committed stores are being undone.
        t.sq.clear();
    } else {
        // Interrupt/iret redirect: retired stores stay for
        // verification and release; only speculative entries go.
        std::erase_if(t.sq, [](const DynInstPtr &e) {
            return e->squashed && !e->retired;
        });
    }
    std::erase_if(t.lq,
                  [](const DynInstPtr &ld) { return ld->squashed; });
    storeSets.squashThread(tid);
}

void
SmtCpu::recoverThread(ThreadId tid, const RecoveryCheckpoint &ckpt)
{
    ThreadState &t = threads[tid];
    if (t.ref)
        fatal("fault recovery is incompatible with co-simulation");
    if (!t.active)
        return;

    flushAllInflight(tid, /*drop_retired_stores=*/true);

    // Restore the committed architectural register file through the
    // (now commit-only) rename map.
    for (unsigned r = 1; r < numArchRegs; ++r) {
        const PhysRegIndex p = t.renameMap[r];
        writePhys(p, ckpt.regs[r]);
        if (p != invalidPhysReg)
            readyAt[p] = now;
    }
    t.archRegs = ckpt.regs;

    t.committed = ckpt.committed;
    t.statCommitted->set(ckpt.committed);
    t.done = t.target != 0 && t.committed >= t.target;
    t.halted = false;
    t.fetchHalted = false;
    t.fetchPc = ckpt.next_pc;
    t.fetchStallUntil = now + 8;    // restart penalty
    t.fetchStallReason = FetchStall::Redirect;
    t.haveExpectedPc = false;
    noteCommitProgress();
}

} // namespace rmt
