#include "cpu/smt_cpu.hh"

#include <ostream>

#include "common/bits.hh"
#include "common/logging.hh"

namespace rmt
{

SmtCpu::SmtCpu(const SmtParams &params, MemSystem &mem_system,
               CoreId core_id)
    : _params(params),
      memSystem(mem_system),
      core(core_id),
      threads(params.num_threads),
      physRegs(params.phys_regs, 0),
      readyAt(params.phys_regs, notReady),
      physInUse(params.num_threads, 0),
      l1i(params.icache),
      l1d(params.dcache),
      mergeBuf(params.merge_buffer),
      bpred(params.bpred),
      linePred(params.linepred),
      indirect(1024),
      storeSets(params.store_sets),
      statGroup(params.name),
      statCycles(statGroup, "cycles", "cycles simulated"),
      statFetched(statGroup, "fetched", "instructions fetched"),
      statCommittedTotal(statGroup, "committed",
                         "instructions committed (all threads)"),
      statSquashes(statGroup, "squashes", "pipeline squashes"),
      statBranchMispredicts(statGroup, "branch_mispredicts",
                            "resolved branch mispredictions"),
      statLineMispredicts(statGroup, "line_mispredicts",
                          "line predictions overturned at fetch"),
      statMemOrderViolations(statGroup, "mem_order_violations",
                             "load-store order violations"),
      statSqFullStalls(statGroup, "sq_full_stalls",
                       "dispatch stalls: store queue full"),
      statIqFullStalls(statGroup, "iq_full_stalls",
                       "dispatch stalls: instruction queue full"),
      statRobFullStalls(statGroup, "rob_full_stalls",
                        "dispatch stalls: reorder buffer full"),
      statLqFullStalls(statGroup, "lq_full_stalls",
                       "dispatch stalls: load queue full"),
      statDispatched(statGroup, "dispatched",
                     "instructions renamed and dispatched"),
      statIssued(statGroup, "issued", "instructions issued to FUs"),
      statLvqFullStalls(statGroup, "lvq_full_stalls",
                        "leading retire stalls: LVQ full"),
      statLpqFullStalls(statGroup, "lpq_full_stalls",
                        "leading retire stalls: LPQ full"),
      statIcacheMissStalls(statGroup, "icache_miss_stalls",
                           "fetch stall cycles from I-cache misses"),
      statWrongPathInsts(statGroup, "wrong_path_insts",
                         "squashed (wrong-path) instructions"),
      statFetchSrcLead(statGroup, "fetch_src_lead",
                       "instructions fetched predictor-driven "
                       "(leading/single threads)"),
      statFetchSrcLpq(statGroup, "fetch_src_lpq",
                      "instructions fetched from the LPQ chunk stream"),
      statFetchSrcBoq(statGroup, "fetch_src_boq",
                      "instructions fetched on the BOQ/shared-LP "
                      "trailing front end"),
      statMergeEccCorrected(statGroup, "merge_ecc_corrected",
                            "merge-buffer strikes corrected by ECC"),
      statMergeCorruptions(statGroup, "merge_corruptions",
                           "merge-buffer strikes written to memory")
{
    if (params.num_threads == 0 || params.num_threads > 4)
        fatal("SmtCpu supports 1-4 hardware threads");

    // Commit-slot attribution: one counter per taxonomy cause, in enum
    // order.  Conservation (sum == cycles * issue_width) is enforced by
    // construction in commit() and asserted by tests and check.sh.
    for (std::size_t i = 0; i < numStallCauses; ++i) {
        const auto cause = static_cast<StallCause>(i);
        statSlots[i] = std::make_unique<Counter>(
            statGroup, std::string("slots_") + stallCauseName(cause),
            std::string("commit slots charged: ") + stallCauseName(cause));
    }

    for (auto &thread : threads) {
        thread.storeLifetime = std::make_unique<Average>(
            statGroup, "store_lifetime_t" +
                std::to_string(&thread - threads.data()),
            "cycles a store occupies its SQ entry");
        // Distribution behind the mean (paper Figure 8): 16 buckets of
        // 8 cycles, long-lifetime tail in the overflow bucket.
        thread.storeLifetimeHist = std::make_unique<Histogram>(
            statGroup, "store_lifetime_hist_t" +
                std::to_string(&thread - threads.data()),
            "distribution of store SQ-entry lifetimes", 16, 8.0);
        thread.statCommitted = std::make_unique<Counter>(
            statGroup, "committed_t" +
                std::to_string(&thread - threads.data()),
            "instructions committed by this thread");
    }

    for (unsigned t = 0; t < params.num_threads; ++t)
        ras.emplace_back(params.ras_entries);

    // Physical register 0 is the architectural zero: always ready.
    physRegs[0] = 0;
    readyAt[0] = 0;
    for (PhysRegIndex p = static_cast<PhysRegIndex>(params.phys_regs - 1);
         p >= 1; --p) {
        freeList.push_back(p);
    }
}

void
SmtCpu::addThread(ThreadId tid, const Program &program, DataMemory &memory,
                  LogicalId logical, Role role, RedundantPair *pair)
{
    if (tid >= threads.size())
        fatal("addThread: tid %u out of range", tid);
    ThreadState &t = threads[tid];
    if (t.active)
        fatal("addThread: tid %u already active", tid);

    t.active = true;
    t.program = &program;
    t.mem = &memory;
    t.logical = logical;
    t.role = role;
    t.pair = pair;
    t.fetchPc = program.entry();
    t.nextCommitPc = program.entry();
    t.startCycle = now;

    if ((role == Role::Leading || role == Role::Trailing) && !pair)
        fatal("addThread: redundant role without a pair");

    // Map arch registers onto physical registers: int r0 shares the
    // constant-zero physical register.
    for (unsigned r = 0; r < numArchRegs; ++r) {
        if (r == 0) {
            t.renameMap[r] = 0;
            continue;
        }
        t.renameMap[r] = allocPhysReg();
        ++physInUse[tid];
        physRegs[t.renameMap[r]] = 0;
        readyAt[t.renameMap[r]] = 0;
    }

    if (_params.cosim) {
        t.refMem = std::make_unique<DataMemory>(memory.size());
        std::copy(memory.data(), memory.data() + memory.size(),
                  t.refMem->data());
        t.ref = std::make_unique<ArchState>(program, *t.refMem);
    }

    computeQueueQuotas();
}

void
SmtCpu::computeQueueQuotas()
{
    // Static partitioning (paper Section 3.4): the LQ is divided among
    // the threads that use it (trailing threads bypass it, so their
    // share accrues to the others, Section 4.1).  The SQ is divided
    // among all active threads unless per-thread store queues are
    // enabled (Section 4.2).
    unsigned lq_users = 0;
    unsigned sq_users = 0;
    for (const auto &t : threads) {
        if (!t.active)
            continue;
        ++sq_users;
        if (usesLoadQueue(t))
            ++lq_users;
    }
    for (auto &t : threads) {
        if (!t.active)
            continue;
        if (_params.dynamic_lsq_partition) {
            // Shared pools: per-thread limits come from the global
            // occupancy check at dispatch, with small reservations.
            t.lqQuota = usesLoadQueue(t) ? _params.load_queue_entries : 0;
            t.sqQuota = _params.store_queue_entries;
            continue;
        }
        t.lqQuota = usesLoadQueue(t) && lq_users
                        ? _params.load_queue_entries / lq_users
                        : 0;
        t.sqQuota = _params.per_thread_store_queues
                        ? _params.store_queue_entries
                        : _params.store_queue_entries / sq_users;
    }
}

void
SmtCpu::scheduleInterrupt(ThreadId tid, Cycle when, Addr vector)
{
    if (tid >= threads.size() || !threads[tid].active)
        fatal("scheduleInterrupt: invalid thread %u", tid);
    if (threads[tid].role == Role::Trailing)
        fatal("interrupts are inputs: deliver them to the leading copy");
    threads[tid].pendingInterrupts.push_back({when, vector});
}

void
SmtCpu::setTarget(ThreadId tid, std::uint64_t insts, std::uint64_t warmup)
{
    threads[tid].target = insts;
    threads[tid].measureSkip = std::min(warmup, insts);
}

StallSlots
SmtCpu::attributionSlots() const
{
    StallSlots out;
    for (std::size_t i = 0; i < numStallCauses; ++i)
        out.slots[i] = statSlots[i]->value();
    return out;
}

bool
SmtCpu::threadDone(ThreadId tid) const
{
    const ThreadState &t = threads[tid];
    if (!t.active)
        return true;
    return t.done || t.halted;
}

bool
SmtCpu::allThreadsDone() const
{
    for (unsigned tid = 0; tid < threads.size(); ++tid) {
        if (!threadDone(static_cast<ThreadId>(tid)))
            return false;
    }
    return true;
}

Cycle
SmtCpu::threadCycles(ThreadId tid) const
{
    const ThreadState &t = threads[tid];
    const Cycle end = (t.done || t.halted) ? t.finishCycle : now;
    return end > t.startCycle ? end - t.startCycle : 0;
}

double
SmtCpu::ipc(ThreadId tid) const
{
    const ThreadState &t = threads[tid];
    const Cycle cycles = threadCycles(tid);
    std::uint64_t insts =
        std::min(t.committed, t.target ? t.target : t.committed);
    insts -= std::min(insts, t.measureSkip);
    return cycles ? static_cast<double>(insts) / cycles : 0.0;
}

void
SmtCpu::tick()
{
    ++now;
    ++statCycles;

    if (faults)
        faults->tick(*this, now);
    storeSets.tick(now);

    // Back to front so a value produced this cycle wakes consumers for
    // next cycle's select, and newly fetched work can't skip stages.
    commit();
    processEvents();
    verifyLeadingStores();
    verifyUncachedStores();
    releaseStores();
    drainMergeBuffer();
    retryWaitingLoads();
    issue();
    renameDispatch();
    fetch();

    // Idle-flush partial LPQ chunks (deadlock avoidance, Section 4.3/4.4).
    for (auto &t : threads) {
        if (t.active && t.role == Role::Leading && t.pair)
            t.pair->idleFlush(now);
    }

    checkDeadlock();
}

void
SmtCpu::checkDeadlock()
{
    bool any_running = false;
    for (unsigned tid = 0; tid < threads.size(); ++tid) {
        if (threads[tid].active && !threadDone(static_cast<ThreadId>(tid)))
            any_running = true;
    }
    if (!any_running) {
        lastCommitCycle = now;
        return;
    }
    if (now - lastCommitCycle > _params.deadlock_cycles) {
        panic("core %u: no instruction committed for %llu cycles "
              "(deadlock)", core,
              static_cast<unsigned long long>(_params.deadlock_cycles));
    }
}

void
SmtCpu::schedule(Cycle when, EvKind kind, const DynInstPtr &inst,
                 std::uint64_t payload)
{
    if (when <= now)
        when = now + 1;
    calendar[when].push_back(Event{kind, inst, payload});
}

std::uint64_t
SmtCpu::readPhys(PhysRegIndex idx) const
{
    if (idx == invalidPhysReg)
        return 0;
    return physRegs[idx];
}

void
SmtCpu::writePhys(PhysRegIndex idx, std::uint64_t value)
{
    if (idx == invalidPhysReg || idx == 0)
        return;
    physRegs[idx] = value;
}

PhysRegIndex
SmtCpu::allocPhysReg()
{
    if (freeList.empty())
        panic("physical register underflow: caller must check "
              "physRegsAvailable()");
    const PhysRegIndex p = freeList.back();
    freeList.pop_back();
    readyAt[p] = notReady;
    return p;
}

void
SmtCpu::freePhysReg(PhysRegIndex idx)
{
    if (idx == invalidPhysReg || idx == 0)
        return;
    readyAt[idx] = notReady;
    freeList.push_back(idx);
}

bool
SmtCpu::physRegsAvailable(ThreadId tid) const
{
    // Deadlock avoidance: every other active thread keeps a reserved
    // slice of the free pool so a stalled consumer cannot starve the
    // producer it depends on (Section 4.3).
    unsigned reserve = 0;
    for (unsigned t = 0; t < threads.size(); ++t) {
        if (t != tid && threads[t].active)
            reserve += _params.regs_reserved_per_thread;
    }
    return freeList.size() > reserve;
}

unsigned
SmtCpu::fuPoolSize(FuClass cls) const
{
    switch (cls) {
      case FuClass::IntAlu: return _params.int_units_per_half;
      case FuClass::Logic: return _params.logic_units_per_half;
      case FuClass::Mem: return _params.mem_units_per_half;
      case FuClass::Fp: return _params.fp_units_per_half;
      default: return 1;
    }
}

void
SmtCpu::injectRegBitFlip(ThreadId tid, RegIndex reg, unsigned bit)
{
    ThreadState &t = threads[tid];
    if (!t.active || reg == noReg || reg == 0)
        return;
    const PhysRegIndex p = t.renameMap[reg];
    if (p == invalidPhysReg || p == 0)
        return;
    physRegs[p] = flipBit(physRegs[p], bit);
}

bool
SmtCpu::injectSqBitFlip(ThreadId tid, unsigned bit, bool address)
{
    ThreadState &t = threads[tid];
    if (!t.active)
        return false;
    for (auto &entry : t.sq) {
        if (entry->squashed || entry->retired)
            continue;
        if (address) {
            if (!entry->addrReady)
                continue;
            entry->effAddr = flipBit(entry->effAddr, bit);
        } else {
            if (!entry->dataReady)
                continue;
            const unsigned width = 8 * entry->si.memSize();
            entry->storeData = flipBit(entry->storeData, bit % width);
        }
        return true;
    }
    return false;
}

bool
SmtCpu::injectPcBitFlip(ThreadId tid, unsigned bit)
{
    ThreadState &t = threads[tid];
    if (!t.active || t.fetchHalted)
        return false;
    t.fetchPc = flipBit(t.fetchPc, bit);
    return true;
}

bool
SmtCpu::armDecodeStrike(ThreadId tid, unsigned bit)
{
    ThreadState &t = threads[tid];
    if (!t.active || t.fetchHalted)
        return false;
    t.decodeStrike = true;
    t.decodeStrikeBit = bit;
    return true;
}

bool
SmtCpu::armMergeStrike(ThreadId tid, unsigned bit)
{
    ThreadState &t = threads[tid];
    if (!t.active)
        return false;
    t.mergeStrike = true;
    t.mergeStrikeBit = bit;
    return true;
}

void
SmtCpu::traceCommit(const ThreadState &t, const DynInstPtr &inst)
{
    if (traceBudget && traceLines >= traceBudget)
        return;
    ++traceLines;
    const auto tid = static_cast<unsigned>(&t - threads.data());
    std::ostream &os = *traceOut;
    os << now << " c" << unsigned(core) << " t" << tid << " 0x"
       << std::hex << inst->pc << std::dec << " F" << inst->fetchCycle
       << " D" << inst->dispatchCycle;
    if (inst->issued)
        os << " I" << inst->issueCycle;
    os << " C" << inst->completeCycle << " R" << now << "  "
       << inst->si.disassemble();
    if (inst->si.rd != noReg)
        os << " = 0x" << std::hex << inst->result << std::dec;
    if (inst->si.isStore()) {
        os << " [0x" << std::hex << inst->effAddr << "]=0x"
           << inst->storeData << std::dec;
    }
    os << "\n";
}

void
SmtCpu::debugDump(std::ostream &os) const
{
    os << "=== core " << unsigned(core) << " cycle " << now << " ===\n";
    os << "iq occ " << iqHalfOcc[0] << "/" << iqHalfOcc[1]
       << " free-regs " << freeList.size() << " waiting-loads "
       << waitingLoads.size() << " calendar " << calendar.size() << "\n";
    for (unsigned tid = 0; tid < threads.size(); ++tid) {
        const ThreadState &t = threads[tid];
        if (!t.active)
            continue;
        os << " t" << tid << " role " << static_cast<int>(t.role)
           << " committed " << t.committed << " rob " << t.rob.size()
           << " rmb " << t.rmb.size() << " lq " << t.lq.size() << "/"
           << t.lqQuota << " sq " << t.sq.size() << "/" << t.sqQuota
           << " fetchPc 0x" << std::hex << t.fetchPc << std::dec
           << " stallUntil " << t.fetchStallUntil
           << (t.fetchHalted ? " FETCH-HALTED" : "")
           << (t.halted ? " HALTED" : "") << "\n";
        if (!t.rob.empty()) {
            const DynInstPtr &h = t.rob.front();
            os << "   rob-head seq " << h->seq << " pc 0x" << std::hex
               << h->pc << std::dec << " " << h->si.disassemble()
               << (h->inIq ? " inIQ" : "") << (h->issued ? " issued" : "")
               << (h->executed ? " exec" : "")
               << (h->completed ? " done" : "")
               << (h->squashed ? " SQUASHED" : "") << "\n";
        }
        if (!t.sq.empty()) {
            const DynInstPtr &e = t.sq.front();
            os << "   sq-head seq " << e->seq
               << (e->retired ? " retired" : "")
               << (e->sqVerified ? " verified" : "")
               << (e->addrReady ? " addr" : "")
               << (e->dataReady ? " data" : "") << "\n";
        }
        if (t.pair) {
            os << "   pair lpq " << t.pair->lpq.size() << " unread "
               << t.pair->lpq.unread() << " lvq " << t.pair->lvq.size()
               << " cmp-pending " << t.pair->comparator.pendingTrailing()
               << " aggEmpty " << t.pair->aggregationEmpty() << "\n";
        }
    }
}

void
SmtCpu::dumpStats(std::ostream &os)
{
    forEachStatGroup(
        [&os](const std::string &, StatGroup &g) { g.dump(os); });
}

void
SmtCpu::forEachStatGroup(
    const std::function<void(const std::string &, StatGroup &)> &fn)
{
    fn("", statGroup);
    fn("l1i", l1i.stats());
    fn("l1d", l1d.stats());
    fn("mergebuf", mergeBuf.stats());
    fn("bpred", bpred.stats());
    fn("linepred", linePred.stats());
    fn("storesets", storeSets.stats());
}

bool
SmtCpu::drainedForSnapshot() const
{
    if (robOccupancy != 0 || !iq.empty() || !calendar.empty() ||
        !waitingLoads.empty()) {
        return false;
    }
    for (const ThreadState &t : threads) {
        if (!t.active)
            continue;
        if (!t.rmb.empty() || !t.rob.empty() || !t.lq.empty() ||
            !t.sq.empty()) {
            return false;
        }
    }
    return true;
}

void
SmtCpu::saveState(Serializer &s) const
{
    s.u64(now);
    s.u32(mapRr);
    s.u32(commitRr);
    s.u32(fetchRr);
    s.u64(lastCommitCycle);

    s.u32(static_cast<std::uint32_t>(threads.size()));
    for (const ThreadState &t : threads) {
        s.boolean(t.active);
        if (!t.active)
            continue;
        s.u64(t.fetchPc);
        s.u64(t.fetchStallUntil);
        s.u32(static_cast<std::uint32_t>(t.fetchStallReason));
        s.boolean(t.fetchHalted);
        s.u64(t.nextSeq);
        for (unsigned r = 0; r < numArchRegs; ++r)
            s.u64(t.archRegs[r]);
        s.u64(t.committed);
        s.u64(t.target);
        s.u64(t.measureSkip);
        s.u64(t.startCycle);
        s.u64(t.finishCycle);
        s.boolean(t.done);
        s.boolean(t.halted);
        s.boolean(t.haveExpectedPc);
        s.u64(t.expectedPc);
        s.u64(t.intReturnPc);
        s.u64(t.nextCommitPc);
        s.boolean(t.decodeStrike);
        s.u32(t.decodeStrikeBit);
        s.boolean(t.mergeStrike);
        s.u32(t.mergeStrikeBit);
        s.u32(static_cast<std::uint32_t>(t.pendingInterrupts.size()));
        for (const ThreadState::PendingInterrupt &pi : t.pendingInterrupts) {
            s.u64(pi.when);
            s.u64(pi.vector);
        }
    }

    l1i.saveState(s);
    l1d.saveState(s);
    mergeBuf.saveState(s);
    bpred.saveState(s);
    linePred.saveState(s);
    indirect.saveState(s);
    storeSets.saveState(s);
    s.u32(static_cast<std::uint32_t>(ras.size()));
    for (const ReturnAddressStack &r : ras)
        r.saveState(s);
}

void
SmtCpu::loadState(Deserializer &d)
{
    if (!drainedForSnapshot())
        throw SnapshotError("core: restore target is not quiesced");

    now = d.u64();
    mapRr = d.u32();
    commitRr = d.u32();
    fetchRr = d.u32();
    lastCommitCycle = d.u64();

    if (d.u32() != threads.size())
        throw SnapshotError("core: thread count mismatch");
    for (ThreadState &t : threads) {
        if (d.boolean() != t.active)
            throw SnapshotError("core: thread topology mismatch");
        if (!t.active)
            continue;
        t.fetchPc = d.u64();
        t.fetchStallUntil = d.u64();
        t.fetchStallReason = static_cast<FetchStall>(d.u32());
        t.fetchHalted = d.boolean();
        t.nextSeq = d.u64();
        for (unsigned r = 0; r < numArchRegs; ++r) {
            t.archRegs[r] = d.u64();
            // Committed values flow back in through the current rename
            // map, exactly as fault recovery does (recoverThread).
            const PhysRegIndex p = t.renameMap[r];
            writePhys(p, t.archRegs[r]);
            if (p != invalidPhysReg)
                readyAt[p] = now;
        }
        t.committed = d.u64();
        t.target = d.u64();
        t.measureSkip = d.u64();
        t.startCycle = d.u64();
        t.finishCycle = d.u64();
        t.done = d.boolean();
        t.halted = d.boolean();
        t.haveExpectedPc = d.boolean();
        t.expectedPc = d.u64();
        t.intReturnPc = d.u64();
        t.nextCommitPc = d.u64();
        t.decodeStrike = d.boolean();
        t.decodeStrikeBit = d.u32();
        t.mergeStrike = d.boolean();
        t.mergeStrikeBit = d.u32();
        const std::uint32_t n_int = d.u32();
        t.pendingInterrupts.clear();
        for (std::uint32_t i = 0; i < n_int; ++i) {
            ThreadState::PendingInterrupt pi;
            pi.when = d.u64();
            pi.vector = d.u64();
            t.pendingInterrupts.push_back(pi);
        }
    }

    l1i.loadState(d);
    l1d.loadState(d);
    mergeBuf.loadState(d);
    bpred.loadState(d);
    linePred.loadState(d);
    indirect.loadState(d);
    storeSets.loadState(d);
    if (d.u32() != ras.size())
        throw SnapshotError("core: RAS count mismatch");
    for (ReturnAddressStack &r : ras)
        r.loadState(d);
}

} // namespace rmt
