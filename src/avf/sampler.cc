#include "avf/sampler.hh"

#include <sstream>
#include <stdexcept>
#include <utility>

#include "common/json.hh"
#include "runner/runner.hh"

namespace rmt
{

namespace
{

/** SplitMix64 counter mix, same idiom as the campaign builders: one
 *  independent stream per (cell, stratum, trial) triple. */
std::uint64_t
mixSeed(std::uint64_t a, std::uint64_t b)
{
    std::uint64_t z = a + 0x9E3779B97F4A7C15ull * (b + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

} // namespace

StratifiedSampler::StratifiedSampler(std::vector<Cell> cells,
                                     const SamplerConfig &config,
                                     std::uint64_t seed)
    : _cells(std::move(cells)), _cfg(config), _seed(seed)
{
    if (_cells.empty())
        throw std::invalid_argument("StratifiedSampler: no cells");
    if (_cfg.batch == 0)
        _cfg.batch = 1;
    if (_cfg.max_trials == 0)
        _cfg.max_trials = 1;

    std::vector<FaultRecord::Kind> kinds =
        _cfg.kinds.empty() ? defaultStratifyKinds(_cfg.has_pairs)
                           : _cfg.kinds;
    // Strike windows come from the first cell's budget; cells in one
    // campaign share warmup/measure budgets (sweeps vary structure
    // sizes, not run length), which keeps strata comparable across
    // cells and modes.
    const SimOptions &o = _cells.front().options;
    _strata = buildStrata(kinds, _cfg.windows,
                          o.warmup_insts + o.measure_insts);

    _counts.assign(_cells.size() * _strata.size(), StratumCounts{});
    _issued.assign(_cells.size() * _strata.size(), 0);
}

bool
StratifiedSampler::stratumActive(std::size_t cell,
                                 std::size_t stratum) const
{
    const std::size_t i = index(cell, stratum);
    if (_issued[i] >= _cfg.max_trials)
        return false;
    if (_cfg.ci_width > 0 &&
        _counts[i].resolved(_cfg.ci_width, _cfg.confidence)) {
        return false;
    }
    return true;
}

bool
StratifiedSampler::done() const
{
    for (std::size_t c = 0; c < _cells.size(); ++c)
        for (std::size_t s = 0; s < _strata.size(); ++s)
            if (stratumActive(c, s))
                return false;
    return true;
}

std::vector<JobSpec>
StratifiedSampler::nextRound()
{
    std::vector<JobSpec> jobs;
    for (std::size_t c = 0; c < _cells.size(); ++c) {
        const Cell &cell = _cells[c];
        for (std::size_t s = 0; s < _strata.size(); ++s) {
            if (!stratumActive(c, s))
                continue;
            const std::size_t i = index(c, s);
            const std::uint64_t want =
                std::min<std::uint64_t>(_cfg.batch,
                                        _cfg.max_trials - _issued[i]);
            for (std::uint64_t t = 0; t < want; ++t) {
                const std::uint64_t trial = _issued[i] + t;
                JobSpec spec;
                spec.id = _next_id + jobs.size();
                spec.workloads = cell.workloads;
                spec.options = cell.options;
                // Seed depends only on (cell, stratum, trial index):
                // batching and round boundaries cannot change the
                // drawn faults.
                spec.seed = mixSeed(
                    _seed, mixSeed(i + 1, trial) ^ (i * 0x10001ull));
                Random rng(spec.seed);
                spec.faults.push_back(
                    drawFault(_strata[s], rng, _cfg.max_reg));
                spec.label = cell.label + " stratum=" +
                             _strata[s].name() +
                             " trial=" + std::to_string(trial);
                if (cell.oracle)
                    attachFaultOracle(spec, cell.oracle);
                _origin.push_back({static_cast<std::uint32_t>(c),
                                   static_cast<std::uint32_t>(s)});
                jobs.push_back(std::move(spec));
            }
            _issued[i] += want;
        }
    }
    _next_id += jobs.size();
    if (!jobs.empty())
        ++_rounds;
    return jobs;
}

void
StratifiedSampler::record(const JobSpec &spec, const JobResult &result)
{
    if (spec.id >= _origin.size())
        throw std::invalid_argument(
            "StratifiedSampler::record: unknown job id");
    const auto [c, s] = _origin[spec.id];
    StratumCounts &counts = _counts[index(c, s)];
    if (!result.ok() || !result.has_verdict) {
        ++counts.failed;
        return;
    }
    ++counts.trials;
    switch (result.verdict) {
      case FaultVerdict::Masked:   ++counts.masked;   break;
      case FaultVerdict::Detected: ++counts.detected; break;
      case FaultVerdict::Sdc:      ++counts.sdc;      break;
      case FaultVerdict::Hang:     ++counts.hang;     break;
    }
}

const StratumCounts &
StratifiedSampler::counts(std::size_t cell, std::size_t stratum) const
{
    return _counts[index(cell, stratum)];
}

RollupEstimate
StratifiedSampler::cellRollup(std::size_t cell) const
{
    std::vector<StratumCounts> counts;
    std::vector<double> weights;
    counts.reserve(_strata.size());
    weights.reserve(_strata.size());
    for (std::size_t s = 0; s < _strata.size(); ++s) {
        counts.push_back(_counts[index(cell, s)]);
        weights.push_back(_strata[s].weight);
    }
    return rollupEstimate(counts, weights, _cfg.confidence);
}

bool
StratifiedSampler::resolvedEarly(std::size_t cell,
                                 std::size_t stratum) const
{
    const std::size_t i = index(cell, stratum);
    return _cfg.ci_width > 0 &&
           _counts[i].resolved(_cfg.ci_width, _cfg.confidence) &&
           _issued[i] < _cfg.max_trials;
}

std::string
StratifiedSampler::summaryJson() const
{
    std::ostringstream os;
    os << "{\"avf_summary\":{\"confidence\":" << jsonNum(_cfg.confidence)
       << ",\"ci_width\":" << jsonNum(_cfg.ci_width)
       << ",\"windows\":" << _cfg.windows
       << ",\"rounds\":" << _rounds
       << ",\"cells\":[";
    for (std::size_t c = 0; c < _cells.size(); ++c) {
        if (c)
            os << ",";
        os << "{\"label\":\"" << jsonEscape(_cells[c].label) << "\""
           << ",\"strata\":[";
        for (std::size_t s = 0; s < _strata.size(); ++s) {
            const StratumSpec &spec = _strata[s];
            const StratumCounts &n = _counts[index(c, s)];
            const Interval avf = n.avfInterval(_cfg.confidence);
            const Interval sdc = n.sdcInterval(_cfg.confidence);
            if (s)
                os << ",";
            os << "{\"stratum\":\"" << spec.name() << "\""
               << ",\"kind\":\"" << faultKindName(spec.kind) << "\""
               << ",\"window\":[" << spec.lo << "," << spec.hi << "]"
               << ",\"trials\":" << n.trials
               << ",\"failed\":" << n.failed
               << ",\"masked\":" << n.masked
               << ",\"detected\":" << n.detected
               << ",\"sdc\":" << n.sdc
               << ",\"hang\":" << n.hang
               << ",\"avf\":" << jsonNum(n.avf())
               << ",\"avf_ci\":[" << jsonNum(avf.low) << ","
               << jsonNum(avf.high) << "]"
               << ",\"sdc_rate\":" << jsonNum(n.sdcRate())
               << ",\"sdc_ci\":[" << jsonNum(sdc.low) << ","
               << jsonNum(sdc.high) << "]"
               << ",\"resolved_early\":"
               << (resolvedEarly(c, s) ? "true" : "false") << "}";
        }
        const RollupEstimate roll = cellRollup(c);
        os << "],\"rollup\":{\"avf\":" << jsonNum(roll.avf)
           << ",\"avf_ci\":[" << jsonNum(roll.avf_ci.low) << ","
           << jsonNum(roll.avf_ci.high) << "]"
           << ",\"sdc_rate\":" << jsonNum(roll.sdc_rate)
           << ",\"sdc_ci\":[" << jsonNum(roll.sdc_ci.low) << ","
           << jsonNum(roll.sdc_ci.high) << "]"
           << ",\"trials\":" << roll.trials
           << ",\"strata\":" << roll.strata << "}}";
    }
    os << "]}}";
    return os.str();
}

} // namespace rmt
