/**
 * @file
 * Sequential stratified fault sampling.
 *
 * A StratifiedSampler turns a set of campaign cells (mode x workload
 * mix x sweep point) and a stratification (kind x cycle-window, see
 * stratum.hh) into rounds of JobSpecs.  After every round the caller
 * feeds the classified results back; the sampler tallies per-stratum
 * verdict counts and stops sampling a stratum once its Wilson interval
 * is tighter than the requested ci-width (sequential early
 * termination) or its trial budget is spent.  Trial parameters are
 * derived deterministically from (cell, stratum, trial index), so the
 * drawn faults do not depend on batch size, round boundaries, or which
 * executor ran the previous round.
 */

#ifndef RMTSIM_AVF_SAMPLER_HH
#define RMTSIM_AVF_SAMPLER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "avf/estimator.hh"
#include "avf/stratum.hh"
#include "rmt/fault_oracle.hh"
#include "runner/job.hh"

namespace rmt
{

struct SamplerConfig
{
    /** Kinds to stratify over; empty -> defaultStratifyKinds(). */
    std::vector<FaultRecord::Kind> kinds;
    unsigned windows = 2;           ///< strike windows per kind
    unsigned batch = 16;            ///< trials per stratum per round
    std::uint64_t max_trials = 256; ///< budget per (cell, stratum)
    double ci_width = 0;            ///< 0 = fixed budget, no early stop
    double confidence = 0.95;
    unsigned max_reg = 32;          ///< TransientReg victim bound
    bool has_pairs = true;          ///< machine has redundant pairs
};

class StratifiedSampler
{
  public:
    /** One grid point faults are sampled within. */
    struct Cell
    {
        std::string label;
        std::vector<std::string> workloads;
        SimOptions options;
        /** When set, every generated spec gets the oracle attached
         *  (attachFaultOracle); must outlive the campaign. */
        const FaultOracle *oracle = nullptr;
    };

    StratifiedSampler(std::vector<Cell> cells,
                      const SamplerConfig &config, std::uint64_t seed);

    const std::vector<Cell> &cells() const { return _cells; }
    const std::vector<StratumSpec> &strata() const { return _strata; }

    /** All strata resolved or out of budget? */
    bool done() const;

    /**
     * JobSpecs for the next sampling round: `batch` fresh trials for
     * every stratum still being sampled, with globally increasing
     * dense job ids.  Empty once done().
     */
    std::vector<JobSpec> nextRound();

    /** Feed one completed trial back (matched by spec id). */
    void record(const JobSpec &spec, const JobResult &result);

    const StratumCounts &counts(std::size_t cell,
                                std::size_t stratum) const;

    /** Whole-sphere roll-up over one cell's strata. */
    RollupEstimate cellRollup(std::size_t cell) const;

    /** Did this stratum stop because its interval got tight (rather
     *  than by exhausting the trial budget)? */
    bool resolvedEarly(std::size_t cell, std::size_t stratum) const;

    std::uint64_t issuedTrials() const { return _next_id; }
    unsigned rounds() const { return _rounds; }

    /**
     * One-line JSON summary ({"avf_summary": ...}) with per-cell,
     * per-stratum counts, point estimates, Wilson intervals and the
     * weighted roll-up — appended to the campaign JSONL after the
     * per-trial records.
     */
    std::string summaryJson() const;

  private:
    std::size_t index(std::size_t cell, std::size_t stratum) const
    {
        return cell * _strata.size() + stratum;
    }
    bool stratumActive(std::size_t cell, std::size_t stratum) const;

    std::vector<Cell> _cells;
    SamplerConfig _cfg;
    std::uint64_t _seed;
    std::vector<StratumSpec> _strata;
    std::vector<StratumCounts> _counts;     // cell-major
    std::vector<std::uint64_t> _issued;     // trials issued, cell-major
    std::vector<std::pair<std::uint32_t, std::uint32_t>> _origin;
                                            // job id -> (cell, stratum)
    std::uint64_t _next_id = 0;
    unsigned _rounds = 0;
};

} // namespace rmt

#endif // RMTSIM_AVF_SAMPLER_HH
