/**
 * @file
 * Stratification of the fault space for statistical campaigns.
 *
 * The sphere-of-replication fault space is partitioned into strata
 * along two axes: the fault kind (which hardware structure is struck —
 * register file, store queue, fetch PC, ...) and the cycle window the
 * strike lands in.  Kinds differ in vulnerability by orders of
 * magnitude (a register strike is far more often masked than a PC
 * strike), so sampling them separately and rolling up with fixed
 * nominal weights gives far tighter whole-sphere intervals than
 * uniform sampling at the same trial budget — and lets the sampler
 * stop early on strata that resolve quickly.
 *
 * The strike window mirrors the campaign idiom: strikes land in
 * [insts/12, insts/12 + 2*insts/3), i.e. inside the run with margin
 * for warmup and drain; `windows` splits that range into equal
 * sub-windows so early/mid/late vulnerability can be told apart.
 */

#ifndef RMTSIM_AVF_STRATUM_HH
#define RMTSIM_AVF_STRATUM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.hh"
#include "rmt/fault_injector.hh"

namespace rmt
{

/** One stratum: a fault kind crossed with one strike cycle-window. */
struct StratumSpec
{
    FaultRecord::Kind kind = FaultRecord::Kind::TransientReg;
    unsigned window = 0;        ///< window index within the kind
    Cycle lo = 0;               ///< strike cycles drawn from [lo, hi)
    Cycle hi = 1;
    double weight = 1;          ///< nominal roll-up weight (pre-norm)

    /** Stable name used in labels and reports, e.g. "reg:w0". */
    std::string name() const;
};

/** Parse one fault kind name ("reg", "sqd", ...); throws
 *  std::invalid_argument on unknown names. */
FaultRecord::Kind parseFaultKind(const std::string &name);

/** Parse a comma-separated kind list; empty -> empty vector. */
std::vector<FaultRecord::Kind>
parseFaultKinds(const std::string &csv);

/**
 * Kinds a stratified campaign samples by default.  Pair-resident kinds
 * (lvq/lpq/boq) only exist when the machine has redundant pairs;
 * permanent FU faults are a different experiment (space redundancy)
 * and are never included by default.
 */
std::vector<FaultRecord::Kind> defaultStratifyKinds(bool has_pairs);

/**
 * Cross @p kinds with @p windows equal strike windows over a run of
 * @p insts total (warmup + measure) instructions.  Every stratum gets
 * equal nominal weight: the campaign estimates the mean AVF over an
 * equal-rate mixture of the sampled kinds (raw bit-count weighting
 * would need per-structure bit inventories the model does not carry).
 */
std::vector<StratumSpec> buildStrata(
    const std::vector<FaultRecord::Kind> &kinds, unsigned windows,
    std::uint64_t insts);

/**
 * Draw one fault uniformly from @p stratum: the strike cycle from
 * [lo, hi), the victim thread/register/bit from the kind's support.
 * @p max_reg bounds the victim register index (TransientReg), matching
 * CampaignBuilder::transientRegTrials.
 */
FaultRecord drawFault(const StratumSpec &stratum, Random &rng,
                      unsigned max_reg);

} // namespace rmt

#endif // RMTSIM_AVF_STRATUM_HH
