/**
 * @file
 * Statistical machinery for fault campaigns: binomial point estimates
 * with Wilson-score confidence intervals, and stratified roll-ups.
 *
 * A fault campaign is a sampling experiment: each trial draws a fault
 * uniformly from a stratum (kind x cycle-window) and observes a
 * Bernoulli outcome (unmasked?  silently corrupting?).  The per-stratum
 * AVF (architectural vulnerability factor) is the unmasked fraction;
 * the SDC rate is the silently-corrupting fraction.  Wilson-score
 * intervals behave sanely at the extremes campaigns actually hit
 * (p ~ 0 for SDC under RMT, small n while sampling ramps up), unlike
 * the naive Wald interval which collapses to a width of zero there.
 *
 * Whole-sphere roll-ups combine per-stratum estimates with fixed
 * nominal weights (see stratum.hh) using the standard stratified
 * estimator: p = sum w_i p_i with normal-approximation variance
 * sum w_i^2 p_i (1 - p_i) / n_i.
 */

#ifndef RMTSIM_AVF_ESTIMATOR_HH
#define RMTSIM_AVF_ESTIMATOR_HH

#include <cstdint>
#include <vector>

namespace rmt
{

/** Two-sided confidence interval on a proportion. */
struct Interval
{
    double low = 0;
    double high = 1;

    double width() const { return high - low; }

    /** Do two intervals share any probability mass? */
    bool overlaps(const Interval &other) const
    {
        return low <= other.high && other.low <= high;
    }
};

/**
 * Standard-normal quantile Phi^-1(p) for p in (0, 1) (Acklam's
 * rational approximation, |relative error| < 1.2e-9 — far below any
 * campaign's sampling noise).
 */
double normalQuantile(double p);

/** z-score of a two-sided interval at @p confidence (0.95 -> 1.96). */
double confidenceZ(double confidence);

/**
 * Wilson-score interval for @p successes out of @p trials at
 * @p confidence.  trials == 0 yields the vacuous [0, 1].
 */
Interval wilsonInterval(std::uint64_t successes, std::uint64_t trials,
                        double confidence);

/** Verdict tallies of one stratum's classified trials. */
struct StratumCounts
{
    std::uint64_t trials = 0;       ///< classified (ok) trials
    std::uint64_t failed = 0;       ///< failed jobs (excluded from n)
    std::uint64_t masked = 0;
    std::uint64_t detected = 0;
    std::uint64_t sdc = 0;
    std::uint64_t hang = 0;

    std::uint64_t unmasked() const { return trials - masked; }

    /** Unmasked fraction: the stratum's AVF point estimate. */
    double avf() const
    {
        return trials ? static_cast<double>(unmasked()) / trials : 0;
    }

    /** Silent-corruption fraction. */
    double sdcRate() const
    {
        return trials ? static_cast<double>(sdc) / trials : 0;
    }

    Interval avfInterval(double confidence) const
    {
        return wilsonInterval(unmasked(), trials, confidence);
    }

    Interval sdcInterval(double confidence) const
    {
        return wilsonInterval(sdc, trials, confidence);
    }

    /**
     * Sampling-resolution check used for sequential early termination:
     * both the AVF and the SDC interval are narrower than @p width.
     */
    bool resolved(double width, double confidence) const
    {
        return trials > 0 &&
               avfInterval(confidence).width() <= width &&
               sdcInterval(confidence).width() <= width;
    }
};

/** Weighted whole-sphere estimate across strata. */
struct RollupEstimate
{
    double avf = 0;
    Interval avf_ci;
    double sdc_rate = 0;
    Interval sdc_ci;
    std::uint64_t trials = 0;       ///< total classified trials
    unsigned strata = 0;            ///< strata with at least one trial
};

/**
 * Stratified roll-up of @p counts with @p weights (same length;
 * weights are normalised over the strata that have trials).  The
 * interval is the normal approximation p +- z * se clamped to [0, 1];
 * strata with no trials contribute nothing.
 */
RollupEstimate rollupEstimate(const std::vector<StratumCounts> &counts,
                              const std::vector<double> &weights,
                              double confidence);

} // namespace rmt

#endif // RMTSIM_AVF_ESTIMATOR_HH
