#include "avf/stratum.hh"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace rmt
{

std::string
StratumSpec::name() const
{
    std::ostringstream os;
    os << faultKindName(kind) << ":w" << window;
    return os.str();
}

FaultRecord::Kind
parseFaultKind(const std::string &name)
{
    if (name == "reg") return FaultRecord::Kind::TransientReg;
    if (name == "lvq") return FaultRecord::Kind::TransientLvq;
    if (name == "fu")  return FaultRecord::Kind::PermanentFu;
    if (name == "sqd") return FaultRecord::Kind::TransientSqData;
    if (name == "sqa") return FaultRecord::Kind::TransientSqAddr;
    if (name == "lpq") return FaultRecord::Kind::TransientLpq;
    if (name == "boq") return FaultRecord::Kind::TransientBoq;
    if (name == "pc")  return FaultRecord::Kind::TransientPc;
    if (name == "dec") return FaultRecord::Kind::TransientDecode;
    if (name == "mb")  return FaultRecord::Kind::TransientMergeBuffer;
    throw std::invalid_argument("unknown fault kind '" + name + "'");
}

std::vector<FaultRecord::Kind>
parseFaultKinds(const std::string &csv)
{
    std::vector<FaultRecord::Kind> kinds;
    std::stringstream ss(csv);
    std::string tok;
    while (std::getline(ss, tok, ',')) {
        if (!tok.empty())
            kinds.push_back(parseFaultKind(tok));
    }
    return kinds;
}

std::vector<FaultRecord::Kind>
defaultStratifyKinds(bool has_pairs)
{
    std::vector<FaultRecord::Kind> kinds = {
        FaultRecord::Kind::TransientReg,
        FaultRecord::Kind::TransientSqData,
        FaultRecord::Kind::TransientSqAddr,
        FaultRecord::Kind::TransientPc,
        FaultRecord::Kind::TransientDecode,
        FaultRecord::Kind::TransientMergeBuffer,
    };
    if (has_pairs) {
        kinds.push_back(FaultRecord::Kind::TransientLvq);
        kinds.push_back(FaultRecord::Kind::TransientLpq);
        kinds.push_back(FaultRecord::Kind::TransientBoq);
    }
    return kinds;
}

std::vector<StratumSpec>
buildStrata(const std::vector<FaultRecord::Kind> &kinds,
            unsigned windows, std::uint64_t insts)
{
    if (kinds.empty())
        throw std::invalid_argument("buildStrata: no fault kinds");
    windows = std::max(1u, windows);

    // The campaign strike range: inside the run, clear of the cold
    // start and of the post-measure drain (see CampaignBuilder).
    const Cycle lo = insts / 12;
    const Cycle span = std::max<std::uint64_t>(windows, (insts * 2) / 3);

    std::vector<StratumSpec> strata;
    strata.reserve(kinds.size() * windows);
    for (const FaultRecord::Kind kind : kinds) {
        for (unsigned w = 0; w < windows; ++w) {
            StratumSpec s;
            s.kind = kind;
            s.window = w;
            s.lo = lo + span * w / windows;
            s.hi = lo + span * (w + 1) / windows;
            s.weight = 1;
            strata.push_back(s);
        }
    }
    return strata;
}

FaultRecord
drawFault(const StratumSpec &stratum, Random &rng, unsigned max_reg)
{
    FaultRecord f;
    f.kind = stratum.kind;
    f.core = 0;
    f.when = stratum.lo +
             rng.range(std::max<Cycle>(1, stratum.hi - stratum.lo));

    switch (stratum.kind) {
      case FaultRecord::Kind::TransientReg:
        f.tid = static_cast<ThreadId>(rng.range(2));
        f.reg = static_cast<RegIndex>(
            1 + rng.range(std::max(1u, max_reg - 1)));
        f.bit = static_cast<unsigned>(rng.range(64));
        break;
      case FaultRecord::Kind::TransientLvq:
        f.tid = static_cast<ThreadId>(rng.range(2));
        f.pairLogical = 0;
        break;
      case FaultRecord::Kind::PermanentFu:
        // Strike an integer ALU; the stuck-at bit is the draw.
        f.fuIndex = static_cast<unsigned>(rng.range(8));
        f.mask = std::uint64_t{1} << rng.range(64);
        break;
      default:
        // All remaining transient kinds share tid + bit support.
        f.tid = static_cast<ThreadId>(rng.range(2));
        f.bit = static_cast<unsigned>(rng.range(64));
        break;
    }
    return f;
}

} // namespace rmt
