#include "avf/estimator.hh"

#include <algorithm>
#include <cmath>

namespace rmt
{

double
normalQuantile(double p)
{
    // Acklam's inverse-normal-CDF approximation: one rational
    // polynomial for each tail and one for the central region.
    static const double a[] = {-3.969683028665376e+01,
                               2.209460984245205e+02,
                               -2.759285104469687e+02,
                               1.383577518672690e+02,
                               -3.066479806614716e+01,
                               2.506628277459239e+00};
    static const double b[] = {-5.447609879822406e+01,
                               1.615858368580409e+02,
                               -1.556989798598866e+02,
                               6.680131188771972e+01,
                               -1.328068155288572e+01};
    static const double c[] = {-7.784894002430293e-03,
                               -3.223964580411365e-01,
                               -2.400758277161838e+00,
                               -2.549732539343734e+00,
                               4.374664141464968e+00,
                               2.938163982698783e+00};
    static const double d[] = {7.784695709041462e-03,
                               3.224671290700398e-01,
                               2.445134137142996e+00,
                               3.754408661907416e+00};
    static const double p_low = 0.02425;

    if (p <= 0)
        return -1e308;      // sentinel; callers pass p in (0, 1)
    if (p >= 1)
        return 1e308;

    if (p < p_low) {
        const double q = std::sqrt(-2 * std::log(p));
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q +
                 c[4]) * q + c[5]) /
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
    }
    if (p > 1 - p_low) {
        const double q = std::sqrt(-2 * std::log(1 - p));
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q +
                  c[4]) * q + c[5]) /
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
    }
    const double q = p - 0.5;
    const double r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) *
            r + a[5]) * q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) *
            r + 1);
}

double
confidenceZ(double confidence)
{
    const double c = std::clamp(confidence, 1e-6, 1 - 1e-12);
    return normalQuantile(1 - (1 - c) / 2);
}

Interval
wilsonInterval(std::uint64_t successes, std::uint64_t trials,
               double confidence)
{
    if (trials == 0)
        return {0, 1};

    const double n = static_cast<double>(trials);
    const double p = static_cast<double>(successes) / n;
    const double z = confidenceZ(confidence);
    const double z2 = z * z;

    const double denom = 1 + z2 / n;
    const double centre = (p + z2 / (2 * n)) / denom;
    const double half =
        z * std::sqrt(p * (1 - p) / n + z2 / (4 * n * n)) / denom;

    Interval ci;
    ci.low = std::max(0.0, centre - half);
    ci.high = std::min(1.0, centre + half);
    return ci;
}

RollupEstimate
rollupEstimate(const std::vector<StratumCounts> &counts,
               const std::vector<double> &weights, double confidence)
{
    RollupEstimate out;

    // Normalise the weights over strata that actually sampled; an
    // unsampled stratum contributes no estimate (and the roll-up says
    // so through `strata` vs the caller's stratum count).
    double weight_sum = 0;
    const std::size_t n = std::min(counts.size(), weights.size());
    for (std::size_t i = 0; i < n; ++i) {
        if (counts[i].trials)
            weight_sum += weights[i];
    }
    if (weight_sum <= 0)
        return out;

    const double z = confidenceZ(confidence);
    double avf = 0, avf_var = 0, sdc = 0, sdc_var = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const StratumCounts &s = counts[i];
        if (!s.trials)
            continue;
        const double w = weights[i] / weight_sum;
        const double ni = static_cast<double>(s.trials);
        const double pa = s.avf();
        const double ps = s.sdcRate();
        avf += w * pa;
        sdc += w * ps;
        avf_var += w * w * pa * (1 - pa) / ni;
        sdc_var += w * w * ps * (1 - ps) / ni;
        out.trials += s.trials;
        ++out.strata;
    }
    out.avf = avf;
    out.sdc_rate = sdc;
    out.avf_ci = {std::max(0.0, avf - z * std::sqrt(avf_var)),
                  std::min(1.0, avf + z * std::sqrt(avf_var))};
    out.sdc_ci = {std::max(0.0, sdc - z * std::sqrt(sdc_var)),
                  std::min(1.0, sdc + z * std::sqrt(sdc_var))};
    return out;
}

} // namespace rmt
