#include "ckpt/snapshot.hh"

#include <cstring>
#include <vector>

#include "cmp/chip.hh"
#include "common/stats.hh"

namespace rmt
{

/**
 * One "stats" section holds every group the chip walk reaches, in walk
 * order.  Groups are tagged by walk path and stats by name+kind, so a
 * restore into a machine built from different options (different group
 * list, different registration order) fails loudly instead of writing
 * a counter into the wrong slot.
 */
void
saveChipStats(Serializer &s, Chip &chip)
{
    s.beginSection("stats");
    std::vector<std::pair<std::string, StatGroup *>> groups;
    chip.forEachStatGroup(
        [&groups](const std::string &path, StatGroup &g) {
            groups.emplace_back(path, &g);
        });
    s.u32(static_cast<std::uint32_t>(groups.size()));
    for (const auto &[path, group] : groups) {
        s.str(path);
        const auto &stats = group->statList();
        s.u32(static_cast<std::uint32_t>(stats.size()));
        for (const StatBase *stat : stats) {
            s.str(stat->name());
            s.str(stat->kind());
            if (const auto *c = dynamic_cast<const Counter *>(stat)) {
                s.u64(c->value());
            } else if (const auto *a =
                           dynamic_cast<const Average *>(stat)) {
                s.f64(a->sum());
                s.u64(a->samples());
            } else if (const auto *h =
                           dynamic_cast<const Histogram *>(stat)) {
                s.u32(h->numBuckets());
                for (unsigned i = 0; i < h->numBuckets(); ++i)
                    s.u64(h->bucketCount(i));
                s.u64(h->overflowCount());
                s.u64(h->samples());
                s.f64(h->total());
            } else {
                throw SnapshotError("stats: unknown stat kind '" +
                                    std::string(stat->kind()) + "'");
            }
        }
    }
    s.endSection();
}

void
loadChipStats(Deserializer &d, Chip &chip)
{
    d.beginSection("stats");
    std::vector<std::pair<std::string, StatGroup *>> groups;
    chip.forEachStatGroup(
        [&groups](const std::string &path, StatGroup &g) {
            groups.emplace_back(path, &g);
        });
    const std::uint32_t n = d.u32();
    if (n != groups.size()) {
        throw SnapshotError(
            "stats: image has " + std::to_string(n) +
            " stat groups, this machine has " +
            std::to_string(groups.size()));
    }
    for (auto &[path, group] : groups) {
        const std::string img_path = d.str();
        if (img_path != path) {
            throw SnapshotError("stats: group path '" + img_path +
                                "' where '" + path + "' expected");
        }
        const auto &stats = group->statList();
        const std::uint32_t nstats = d.u32();
        if (nstats != stats.size()) {
            throw SnapshotError(
                "stats: group '" + path + "' has " +
                std::to_string(nstats) + " stats in the image, " +
                std::to_string(stats.size()) + " in this machine");
        }
        for (StatBase *stat : stats) {
            const std::string name = d.str();
            const std::string kind = d.str();
            if (name != stat->name() || kind != stat->kind()) {
                throw SnapshotError(
                    "stats: '" + path + "." + name + "' (" + kind +
                    ") where '" + path + "." + stat->name() + "' (" +
                    stat->kind() + ") expected");
            }
            if (auto *c = dynamic_cast<Counter *>(stat)) {
                c->set(d.u64());
            } else if (auto *a = dynamic_cast<Average *>(stat)) {
                const double sum = d.f64();
                const std::uint64_t count = d.u64();
                a->restore(sum, count);
            } else if (auto *h = dynamic_cast<Histogram *>(stat)) {
                const std::uint32_t buckets = d.u32();
                if (buckets != h->numBuckets()) {
                    throw SnapshotError("stats: histogram '" + path +
                                        "." + name +
                                        "' bucket layout mismatch");
                }
                std::vector<std::uint64_t> counts(buckets);
                for (std::uint32_t i = 0; i < buckets; ++i)
                    counts[i] = d.u64();
                const std::uint64_t overflow = d.u64();
                const std::uint64_t samples = d.u64();
                const double total = d.f64();
                h->restore(counts, overflow, samples, total);
            } else {
                throw SnapshotError("stats: unknown stat kind '" +
                                    std::string(stat->kind()) + "'");
            }
        }
    }
    d.endSection();
}

} // namespace rmt
