/**
 * @file
 * Versioned, tagged-chunk binary snapshot format (checkpoint/restore).
 *
 * A snapshot image is
 *
 *     header:   magic "RMTSNAP\0" | u32 format version |
 *               u64 SimOptions fingerprint | u32 section count
 *     sections: u32 name length | name bytes |
 *               u64 payload length | payload bytes | u32 CRC32(payload)
 *
 * All integers are little-endian regardless of host byte order, so an
 * image written on one machine restores on any other.  Every section
 * carries its own CRC; the Deserializer verifies the CRC, the section
 * name, and exact payload consumption, and throws SnapshotError on the
 * first disagreement — a truncated, corrupted, or mismatched image can
 * never restore into a half-written machine.
 *
 * The header fingerprint pins the image to one simulator configuration:
 * restoring under different SimOptions (which would change the barrier
 * schedule and the machine shape) is rejected up front.
 */

#ifndef RMTSIM_CKPT_SERIALIZER_HH
#define RMTSIM_CKPT_SERIALIZER_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace rmt
{

/** Any structural failure while reading or writing a snapshot image:
 *  bad magic, version or fingerprint mismatch, CRC failure, truncated
 *  or trailing data, or machine-shape disagreement at load. */
class SnapshotError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** CRC32 (IEEE 802.3 polynomial) of @p data. */
std::uint32_t crc32(const void *data, std::size_t size);

/**
 * Structurally validate a whole snapshot image — header (magic,
 * version, @p expect_fingerprint), every section frame, every section
 * CRC, and exact end-of-image — WITHOUT applying anything.  Throws
 * SnapshotError naming the damaged section and its byte offset, so a
 * truncated download or a torn write is diagnosable from the message
 * alone.  Restore paths call this first: an image that fails here is
 * rejected before any machine state has been touched, never
 * half-applied.
 */
void validateSnapshotImage(const std::string &image,
                           std::uint64_t expect_fingerprint);

/** Builds a snapshot image section by section. */
class Serializer
{
  public:
    /** v2: per-thread fetch-stall reason added to the core section
     *  (commit-slot attribution). */
    static constexpr std::uint32_t formatVersion = 2;

    /** Open a new tagged section; primitives go to it until end(). */
    void beginSection(const std::string &name);
    /** Seal the open section (appends the payload CRC). */
    void endSection();

    void u8(std::uint8_t v) { put(&v, 1); }
    void u16(std::uint16_t v);
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
    void f64(double v);
    void boolean(bool v) { u8(v ? 1 : 0); }
    void str(const std::string &s);
    /** Raw byte blob, length-prefixed. */
    void blob(const void *data, std::size_t size);

    /** Complete image: header (with @p fingerprint) + all sections.
     *  Must be called with no section open. */
    std::string finish(std::uint64_t fingerprint) const;

  private:
    void put(const void *data, std::size_t size);

    std::string body;           ///< sealed sections
    std::string cur;            ///< open section payload
    std::string curName;
    bool inSection = false;
    std::uint32_t sections = 0;
};

/** Reads a snapshot image produced by Serializer, validating as it
 *  goes.  Sections must be consumed in write order. */
class Deserializer
{
  public:
    /** Parse the header; throws SnapshotError unless magic, version
     *  and fingerprint all match. */
    Deserializer(std::string image, std::uint64_t expect_fingerprint);

    /** Enter the next section; throws unless its name is @p name and
     *  its payload CRC verifies. */
    void beginSection(const std::string &name);
    /** Leave the section; throws unless the payload was consumed
     *  exactly. */
    void endSection();

    std::uint8_t u8();
    std::uint16_t u16();
    std::uint32_t u32();
    std::uint64_t u64();
    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
    double f64();
    bool boolean() { return u8() != 0; }
    std::string str();
    std::vector<std::uint8_t> blob();

    /** Fingerprint carried in the image header. */
    std::uint64_t fingerprint() const { return fp; }

  private:
    void need(std::size_t n) const;
    [[noreturn]] void fail(const std::string &why) const;

    std::string data;
    std::size_t pos = 0;        ///< cursor within the current payload
    std::size_t payloadEnd = 0; ///< one past the current payload
    std::size_t nextSection = 0;///< offset of the next section header
    std::uint32_t sectionsLeft = 0;
    bool inSection = false;
    std::string curName;
    std::uint64_t fp = 0;
};

} // namespace rmt

#endif // RMTSIM_CKPT_SERIALIZER_HH
