#include "ckpt/serializer.hh"

#include <array>
#include <bit>
#include <cstdio>
#include <cstring>

namespace rmt
{

namespace
{

constexpr char kMagic[8] = {'R', 'M', 'T', 'S', 'N', 'A', 'P', '\0'};

std::array<std::uint32_t, 256>
makeCrcTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

} // namespace

std::uint32_t
crc32(const void *data, std::size_t size)
{
    static const std::array<std::uint32_t, 256> table = makeCrcTable();
    const auto *p = static_cast<const std::uint8_t *>(data);
    std::uint32_t c = 0xffffffffu;
    for (std::size_t i = 0; i < size; ++i)
        c = table[(c ^ p[i]) & 0xffu] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

void
Serializer::put(const void *data, std::size_t size)
{
    if (!inSection)
        throw SnapshotError("serializer: write outside a section");
    cur.append(static_cast<const char *>(data), size);
}

void
Serializer::u16(std::uint16_t v)
{
    const std::uint8_t b[2] = {static_cast<std::uint8_t>(v),
                               static_cast<std::uint8_t>(v >> 8)};
    put(b, 2);
}

void
Serializer::u32(std::uint32_t v)
{
    const std::uint8_t b[4] = {static_cast<std::uint8_t>(v),
                               static_cast<std::uint8_t>(v >> 8),
                               static_cast<std::uint8_t>(v >> 16),
                               static_cast<std::uint8_t>(v >> 24)};
    put(b, 4);
}

void
Serializer::u64(std::uint64_t v)
{
    std::uint8_t b[8];
    for (int i = 0; i < 8; ++i)
        b[i] = static_cast<std::uint8_t>(v >> (8 * i));
    put(b, 8);
}

void
Serializer::f64(double v)
{
    u64(std::bit_cast<std::uint64_t>(v));
}

void
Serializer::str(const std::string &s)
{
    u32(static_cast<std::uint32_t>(s.size()));
    put(s.data(), s.size());
}

void
Serializer::blob(const void *data, std::size_t size)
{
    u64(size);
    put(data, size);
}

void
Serializer::beginSection(const std::string &name)
{
    if (inSection)
        throw SnapshotError("serializer: section '" + curName +
                            "' still open");
    inSection = true;
    curName = name;
    cur.clear();
}

namespace
{

void
appendLe32(std::string &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>(v >> (8 * i)));
}

void
appendLe64(std::string &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>(v >> (8 * i)));
}

} // namespace

void
Serializer::endSection()
{
    if (!inSection)
        throw SnapshotError("serializer: no section open");
    appendLe32(body, static_cast<std::uint32_t>(curName.size()));
    body += curName;
    appendLe64(body, cur.size());
    body += cur;
    appendLe32(body, crc32(cur.data(), cur.size()));
    cur.clear();
    inSection = false;
    ++sections;
}

std::string
Serializer::finish(std::uint64_t fingerprint) const
{
    if (inSection)
        throw SnapshotError("serializer: section '" + curName +
                            "' still open at finish");
    std::string out;
    out.reserve(8 + 4 + 8 + 4 + body.size());
    out.append(kMagic, sizeof(kMagic));
    appendLe32(out, formatVersion);
    appendLe64(out, fingerprint);
    appendLe32(out, sections);
    out += body;
    return out;
}

void
validateSnapshotImage(const std::string &image,
                      std::uint64_t expect_fingerprint)
{
    // Header checks (magic/version/fingerprint) are shared with the
    // Deserializer constructor; the section walk below is what it
    // cannot do up front, because apply-time consumption is lazy.
    Deserializer header(image, expect_fingerprint);
    (void)header;

    auto le32 = [&](std::size_t at) {
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(
                     static_cast<std::uint8_t>(image[at + i]))
                 << (8 * i);
        return v;
    };
    auto le64 = [&](std::size_t at) {
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(
                     static_cast<std::uint8_t>(image[at + i]))
                 << (8 * i);
        return v;
    };

    const std::uint32_t sections = le32(20);
    std::size_t at = 24;
    for (std::uint32_t i = 0; i < sections; ++i) {
        const std::size_t section_start = at;
        auto truncated = [&](const char *what) {
            throw SnapshotError(
                "snapshot: image truncated in " + std::string(what) +
                " of section " + std::to_string(i) + " at byte offset " +
                std::to_string(section_start) + " (image is " +
                std::to_string(image.size()) + " bytes)");
        };
        if (image.size() - at < 4)
            truncated("the name length");
        const std::uint32_t name_len = le32(at);
        at += 4;
        if (image.size() - at < name_len)
            truncated("the name");
        const std::string name(image, at, name_len);
        at += name_len;
        if (image.size() - at < 8)
            truncated("the payload length");
        const std::uint64_t payload_len = le64(at);
        at += 8;
        // Two-step compare: a corrupt payload_len near 2^64 must not
        // overflow the arithmetic into a passing check.
        if (payload_len > image.size() - at ||
            image.size() - at - payload_len < 4)
            truncated(("the payload of '" + name + "'").c_str());
        const std::uint32_t stored = le32(at + payload_len);
        const std::uint32_t actual =
            crc32(image.data() + at, static_cast<std::size_t>(payload_len));
        if (stored != actual) {
            throw SnapshotError(
                "snapshot: section '" + name + "' (offset " +
                std::to_string(section_start) +
                ") failed its CRC check");
        }
        at += payload_len + 4;
    }
    if (at != image.size()) {
        throw SnapshotError(
            "snapshot: " + std::to_string(image.size() - at) +
            " trailing bytes after the last section (offset " +
            std::to_string(at) + ")");
    }
}

Deserializer::Deserializer(std::string image,
                           std::uint64_t expect_fingerprint)
    : data(std::move(image))
{
    if (data.size() < 8 + 4 + 8 + 4)
        throw SnapshotError("snapshot: image truncated (no header)");
    if (std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0)
        throw SnapshotError("snapshot: bad magic (not a snapshot file)");
    auto le32 = [&](std::size_t at) {
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(
                     static_cast<std::uint8_t>(data[at + i]))
                 << (8 * i);
        return v;
    };
    auto le64 = [&](std::size_t at) {
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(
                     static_cast<std::uint8_t>(data[at + i]))
                 << (8 * i);
        return v;
    };
    const std::uint32_t version = le32(8);
    if (version != Serializer::formatVersion) {
        throw SnapshotError(
            "snapshot: format version " + std::to_string(version) +
            " (this build reads version " +
            std::to_string(Serializer::formatVersion) + ")");
    }
    fp = le64(12);
    if (fp != expect_fingerprint) {
        char buf[64];
        std::snprintf(buf, sizeof(buf),
                      "%016llx, expected %016llx",
                      static_cast<unsigned long long>(fp),
                      static_cast<unsigned long long>(expect_fingerprint));
        throw SnapshotError(
            std::string("snapshot: options fingerprint mismatch: "
                        "image was taken under ") + buf +
            " (run with the same configuration it was saved with)");
    }
    sectionsLeft = le32(20);
    nextSection = 24;
}

void
Deserializer::fail(const std::string &why) const
{
    throw SnapshotError("snapshot: " + why);
}

void
Deserializer::need(std::size_t n) const
{
    if (pos + n > payloadEnd) {
        fail("section '" + curName + "' truncated (needs " +
             std::to_string(n) + " more bytes)");
    }
}

void
Deserializer::beginSection(const std::string &name)
{
    if (inSection)
        fail("section '" + curName + "' still open");
    if (sectionsLeft == 0)
        fail("expected section '" + name + "' but image is exhausted");
    std::size_t at = nextSection;
    auto avail = [&](std::size_t n) {
        if (at + n > data.size())
            fail("image truncated in section header");
    };
    avail(4);
    std::uint32_t name_len = 0;
    for (int i = 0; i < 4; ++i)
        name_len |= static_cast<std::uint32_t>(
                        static_cast<std::uint8_t>(data[at + i]))
                    << (8 * i);
    at += 4;
    avail(name_len);
    curName.assign(data, at, name_len);
    at += name_len;
    avail(8);
    std::uint64_t payload_len = 0;
    for (int i = 0; i < 8; ++i)
        payload_len |= static_cast<std::uint64_t>(
                           static_cast<std::uint8_t>(data[at + i]))
                       << (8 * i);
    at += 8;
    // Two-step compare: a corrupt payload_len near 2^64 must not
    // overflow the arithmetic into a passing check.
    if (payload_len > data.size() - at ||
        data.size() - at - payload_len < 4)
        fail("section '" + curName + "' truncated mid-payload");
    if (curName != name) {
        fail("expected section '" + name + "' but found '" + curName +
             "'");
    }
    std::uint32_t stored_crc = 0;
    for (int i = 0; i < 4; ++i)
        stored_crc |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(
                          data[at + payload_len + i]))
                      << (8 * i);
    const std::uint32_t actual =
        crc32(data.data() + at, static_cast<std::size_t>(payload_len));
    if (stored_crc != actual)
        fail("section '" + curName + "' failed its CRC check");
    pos = at;
    payloadEnd = at + static_cast<std::size_t>(payload_len);
    nextSection = payloadEnd + 4;
    inSection = true;
    --sectionsLeft;
}

void
Deserializer::endSection()
{
    if (!inSection)
        fail("no section open");
    if (pos != payloadEnd) {
        fail("section '" + curName + "' has " +
             std::to_string(payloadEnd - pos) + " unconsumed bytes");
    }
    inSection = false;
}

std::uint8_t
Deserializer::u8()
{
    need(1);
    return static_cast<std::uint8_t>(data[pos++]);
}

std::uint16_t
Deserializer::u16()
{
    need(2);
    std::uint16_t v = 0;
    for (int i = 0; i < 2; ++i)
        v = static_cast<std::uint16_t>(
            v | static_cast<std::uint16_t>(
                    static_cast<std::uint8_t>(data[pos + i]))
                    << (8 * i));
    pos += 2;
    return v;
}

std::uint32_t
Deserializer::u32()
{
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(
                 static_cast<std::uint8_t>(data[pos + i]))
             << (8 * i);
    pos += 4;
    return v;
}

std::uint64_t
Deserializer::u64()
{
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(
                 static_cast<std::uint8_t>(data[pos + i]))
             << (8 * i);
    pos += 8;
    return v;
}

double
Deserializer::f64()
{
    return std::bit_cast<double>(u64());
}

std::string
Deserializer::str()
{
    const std::uint32_t n = u32();
    need(n);
    std::string s(data, pos, n);
    pos += n;
    return s;
}

std::vector<std::uint8_t>
Deserializer::blob()
{
    const std::uint64_t n = u64();
    need(static_cast<std::size_t>(n));
    std::vector<std::uint8_t> out(
        data.begin() + static_cast<std::ptrdiff_t>(pos),
        data.begin() + static_cast<std::ptrdiff_t>(pos + n));
    pos += static_cast<std::size_t>(n);
    return out;
}

} // namespace rmt
