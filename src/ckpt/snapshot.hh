/**
 * @file
 * Snapshottable: the interface a component implements to participate
 * in whole-machine checkpoint/restore (src/ckpt/serializer.hh), plus
 * the stat-tree walker shared by Chip save and load.
 *
 * The contract is positional and symmetric: loadState() must read
 * exactly the primitives saveState() wrote, in the same order, and a
 * component is only asked to save or load at a drained quiesce point
 * (Chip::quiescedForSnapshot()), so transient queue contents never
 * appear in an image.  Each component owns one tagged section (or a
 * documented set of them) so a format disagreement fails by section
 * name rather than by silent misalignment.
 */

#ifndef RMTSIM_CKPT_SNAPSHOT_HH
#define RMTSIM_CKPT_SNAPSHOT_HH

#include "ckpt/serializer.hh"

namespace rmt
{

class Chip;

/** Implemented by every component with architectural or timing state
 *  that survives a drained pipeline. */
class Snapshottable
{
  public:
    virtual ~Snapshottable() = default;

    /** Append this component's state to @p s (machine quiesced). */
    virtual void saveState(Serializer &s) const = 0;

    /** Restore state written by saveState() from @p d into a freshly
     *  constructed component of identical shape. */
    virtual void loadState(Deserializer &d) = 0;
};

/** Serialize every stat (counter/average/histogram) reachable from the
 *  chip's stat-group walk, path- and name-tagged. */
void saveChipStats(Serializer &s, Chip &chip);

/** Restore the stat tree written by saveChipStats() into @p chip;
 *  throws SnapshotError if paths, names or kinds disagree. */
void loadChipStats(Deserializer &d, Chip &chip);

} // namespace rmt

#endif // RMTSIM_CKPT_SNAPSHOT_HH
