#include "serve/result_store.hh"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "ckpt/serializer.hh"
#include "common/fingerprint.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "runner/wire.hh"
#include "sim/simulator.hh"

#if defined(__unix__) || defined(__APPLE__)
#define RMT_STORE_POSIX 1
#include <fcntl.h>
#include <unistd.h>
#endif

namespace rmt
{

namespace
{

constexpr char kStoreMagic[8] = {'R', 'M', 'T', 'R', 'E', 'S', '\0', '\0'};

/** Frame magic "RMTS", little-endian. */
constexpr std::uint32_t kFrameMagic = 0x53544D52u;

constexpr std::size_t kHeaderBytes = sizeof(kStoreMagic) + 4;

void
appendLe32(std::string &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>(v >> (8 * i)));
}

void
appendLe64(std::string &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>(v >> (8 * i)));
}

std::uint32_t
readLe32(const std::string &buf, std::size_t at)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(
                 static_cast<std::uint8_t>(buf[at + i]))
             << (8 * i);
    return v;
}

std::uint64_t
readLe64(const std::string &buf, std::size_t at)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(
                 static_cast<std::uint8_t>(buf[at + i]))
             << (8 * i);
    return v;
}

/** Frame payload: u8 mode length | mode | wire-encoded JobResult. */
std::string
encodePayload(const std::string &mode, const JobResult &result)
{
    std::string payload;
    payload.push_back(static_cast<char>(mode.size() & 0xff));
    payload.append(mode.data(), std::min<std::size_t>(mode.size(), 255));
    payload += wire::encodeJobResult(result);
    return payload;
}

bool
decodePayload(const std::string &payload, std::string &mode,
              JobResult &result)
{
    if (payload.empty())
        return false;
    const std::size_t mode_len =
        static_cast<std::uint8_t>(payload[0]);
    if (payload.size() < 1 + mode_len)
        return false;
    mode = payload.substr(1, mode_len);
    try {
        result = wire::decodeJobResult(payload.substr(1 + mode_len));
    } catch (const wire::WireError &) {
        return false;
    }
    return true;
}

} // namespace

std::uint64_t
resultKeyU64(const JobSpec &spec)
{
    std::uint64_t h = fnv1a64Seed;
    fnv1a64Field(h, optionsCanonicalJson(spec.options));
    // collect_stats_json changes the record payload (the embedded
    // stats tree) but not the canonical timing pre-image; key it
    // separately so stats and no-stats rows never alias.
    fnv1a64Field(h, spec.options.collect_stats_json ? "stats" : "");
    for (const std::string &w : spec.workloads)
        fnv1a64Field(h, w);
    fnv1a64Field(h, std::to_string(spec.seed));
    for (const FaultRecord &f : spec.faults) {
        std::ostringstream os;
        os << faultKindName(f.kind) << ',' << f.when << ','
           << unsigned(f.core) << ',' << unsigned(f.tid) << ','
           << unsigned(f.reg) << ',' << f.bit << ',' << f.fuIndex << ','
           << f.mask << ',' << unsigned(f.pairLogical);
        fnv1a64Field(h, os.str());
    }
    return h;
}

ResultStore::~ResultStore()
{
    try {
        flush();
    } catch (...) {
        // best-effort at teardown
    }
#ifdef RMT_STORE_POSIX
    if (fd >= 0)
        ::close(fd);
#endif
}

void
ResultStore::open(const std::string &dir)
{
    std::lock_guard<std::mutex> lock(mu);
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    path = dir + "/store.rmtrs";

    // Load whatever valid prefix exists; remember where it ends so the
    // writer can truncate a torn/corrupt tail before appending.
    std::string data;
    {
        std::ifstream in(path, std::ios::binary);
        if (in) {
            std::ostringstream ss;
            ss << in.rdbuf();
            data = ss.str();
        }
    }

    std::uint64_t valid_bytes = 0;
    if (!data.empty()) {
        if (data.size() < kHeaderBytes ||
            data.compare(0, sizeof(kStoreMagic), kStoreMagic,
                         sizeof(kStoreMagic)) != 0)
            throw StoreError("result store: '" + path +
                             "' is not a result store (bad magic)");
        const std::uint32_t version =
            readLe32(data, sizeof(kStoreMagic));
        if (version != resultStoreVersion)
            throw StoreError(
                "result store: '" + path + "' has format version " +
                std::to_string(version) + " (this build reads " +
                std::to_string(resultStoreVersion) + ")");
        valid_bytes = kHeaderBytes;

        std::size_t at = kHeaderBytes;
        while (at < data.size()) {
            // frame: magic(4) len(4) key(8) payload(len) crc(4)
            if (data.size() - at < 16)
                break;                          // torn header
            const std::uint32_t magic = readLe32(data, at);
            const std::uint32_t len = readLe32(data, at + 4);
            if (magic != kFrameMagic || len > wire::maxPayloadBytes) {
                warn("result store '%s': bad frame header at offset "
                     "%zu; keeping the %llu rows before it",
                     path.c_str(), at,
                     static_cast<unsigned long long>(counters.disk_rows));
                break;
            }
            if (data.size() - at - 16 < std::size_t{len} + 4)
                break;                          // torn payload/crc
            const std::uint64_t key = readLe64(data, at + 8);
            const std::uint32_t stored_crc =
                readLe32(data, at + 16 + len);
            if (stored_crc != crc32(data.data() + at + 16, len)) {
                warn("result store '%s': frame at offset %zu failed "
                     "its CRC; keeping the rows before it",
                     path.c_str(), at);
                break;
            }
            std::string mode;
            JobResult result;
            if (!decodePayload(data.substr(at + 16, len), mode,
                               result)) {
                warn("result store '%s': frame at offset %zu does not "
                     "decode; keeping the rows before it",
                     path.c_str(), at);
                break;
            }
            Entry &e = entries[key];
            if (!e.ready) {
                e.ready = true;
                e.result = std::move(result);
                e.mode = mode;
                ++counters.rows;
                ++counters.disk_rows;
                ++counters.mode_rows[mode];
            }
            at += 20 + std::size_t{len};
            valid_bytes = at;
            counters.stored_bytes = at;
        }
    }

#ifdef RMT_STORE_POSIX
    const bool fresh = data.empty();
    fd = ::open(path.c_str(),
                fresh ? (O_WRONLY | O_CREAT | O_TRUNC) : O_WRONLY,
                0644);
    if (fd < 0)
        throw StoreError("result store: cannot open '" + path +
                         "' for writing");
    if (fresh) {
        std::string header(kStoreMagic, sizeof(kStoreMagic));
        appendLe32(header, resultStoreVersion);
        if (!wire::writeAll(fd, header.data(), header.size())) {
            ::close(fd);
            fd = -1;
            throw StoreError("result store: cannot write the header "
                             "of '" + path + "'");
        }
        counters.stored_bytes = header.size();
    } else {
        if (::ftruncate(fd, static_cast<off_t>(valid_bytes)) != 0 ||
            ::lseek(fd, 0, SEEK_END) < 0) {
            ::close(fd);
            fd = -1;
            throw StoreError("result store: cannot truncate '" + path +
                             "' to its valid prefix");
        }
    }
#else
    if (data.empty()) {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        std::string header(kStoreMagic, sizeof(kStoreMagic));
        appendLe32(header, resultStoreVersion);
        out.write(header.data(),
                  static_cast<std::streamsize>(header.size()));
        counters.stored_bytes = header.size();
    }
    fd = 0;     // sentinel: appends go through ofstream::app
#endif
}

ResultStore::Claim
ResultStore::tryClaim(std::uint64_t key, JobResult &out)
{
    std::lock_guard<std::mutex> lock(mu);
    auto [it, inserted] = entries.try_emplace(key);
    if (inserted) {
        ++counters.misses;
        return Claim::Owner;
    }
    if (!it->second.ready)
        return Claim::InFlight;
    ++counters.hits;
    out = it->second.result;
    return Claim::Hit;
}

bool
ResultStore::await(std::uint64_t key, JobResult &out)
{
    std::unique_lock<std::mutex> lock(mu);
    ++counters.inflight_waits;
    for (;;) {
        const auto it = entries.find(key);
        if (it == entries.end())
            return false;       // owner abandoned; caller re-claims
        if (it->second.ready) {
            out = it->second.result;
            return true;
        }
        cv.wait(lock);
    }
}

void
ResultStore::publish(std::uint64_t key, const std::string &mode,
                     const JobResult &result)
{
    std::lock_guard<std::mutex> lock(mu);
    Entry &e = entries[key];
    e.ready = true;
    e.result = result;
    e.mode = mode;
    ++counters.rows;
    ++counters.mode_rows[mode];
    // Only completed work is worth persisting: a failure must unblock
    // waiters (it already has) but never poison a future daemon run.
    if (fd >= 0 && result.ok())
        appendFrame(key, mode, result);
    cv.notify_all();
}

void
ResultStore::abandon(std::uint64_t key)
{
    std::lock_guard<std::mutex> lock(mu);
    const auto it = entries.find(key);
    if (it != entries.end() && !it->second.ready)
        entries.erase(it);
    cv.notify_all();
}

void
ResultStore::appendFrame(std::uint64_t key, const std::string &mode,
                         const JobResult &result)
{
    const std::string payload = encodePayload(mode, result);
    appendLe32(buffer, kFrameMagic);
    appendLe32(buffer, static_cast<std::uint32_t>(payload.size()));
    appendLe64(buffer, key);
    buffer += payload;
    appendLe32(buffer, crc32(payload.data(), payload.size()));
    counters.stored_bytes += 20 + payload.size();
    if (++unsynced >= sync_every)
        syncLocked();
}

void
ResultStore::syncLocked()
{
    if (!buffer.empty()) {
#ifdef RMT_STORE_POSIX
        if (!wire::writeAll(fd, buffer.data(), buffer.size()))
            throw StoreError("result store: write to '" + path +
                             "' failed");
        ::fsync(fd);
#else
        std::ofstream out(path, std::ios::binary | std::ios::app);
        out.write(buffer.data(),
                  static_cast<std::streamsize>(buffer.size()));
#endif
        buffer.clear();
    }
    unsynced = 0;
}

void
ResultStore::flush()
{
    std::lock_guard<std::mutex> lock(mu);
    if (fd >= 0)
        syncLocked();
}

ResultStoreStats
ResultStore::stats() const
{
    std::lock_guard<std::mutex> lock(mu);
    return counters;
}

std::string
ResultStore::statsJson() const
{
    const ResultStoreStats s = stats();
    std::ostringstream os;
    os << "{\"rows\":" << s.rows
       << ",\"disk_rows\":" << s.disk_rows
       << ",\"stored_bytes\":" << s.stored_bytes
       << ",\"hits\":" << s.hits
       << ",\"misses\":" << s.misses
       << ",\"inflight_waits\":" << s.inflight_waits
       << ",\"modes\":{";
    bool first = true;
    for (const auto &[mode, rows] : s.mode_rows) {
        if (!first)
            os << ",";
        first = false;
        os << "\"" << jsonEscape(mode) << "\":" << rows;
    }
    os << "}}";
    return os.str();
}

} // namespace rmt
