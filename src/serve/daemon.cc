#include "serve/daemon.hh"

#if defined(__unix__) || defined(__APPLE__)

#include <algorithm>
#include <condition_variable>
#include <map>
#include <sstream>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/fingerprint.hh"
#include "common/logging.hh"
#include "rmt/fault_oracle.hh"
#include "runner/journal.hh"
#include "serve/protocol.hh"

namespace rmt
{
namespace serve
{

namespace
{

/** Per-job state of one live submit (indexed by campaign position). */
struct Slot
{
    enum class State : std::uint8_t
    {
        Pending,    ///< owned job still queued/running on the pool
        Ready,      ///< result available
        Skipped,    ///< cancelled before it started
    };
    State state = State::Pending;
    JobResult result;
};

void
sendControl(int fd, const std::string &json)
{
    sendFrame(fd, tagControl, json);
}

void
sendError(int fd, const std::string &message)
{
    sendControl(fd, "{\"type\":\"error\",\"message\":\"" +
                        jsonEscape(message) + "\"}");
}

} // namespace

Daemon::Daemon(DaemonConfig config) : cfg(std::move(config)) {}

Daemon::~Daemon()
{
    if (listen_fd >= 0) {
        ::close(listen_fd);
        ::unlink(cfg.socket_path.c_str());
    }
}

void
Daemon::open()
{
    results.setSyncEvery(cfg.store_sync_every);
    results.open(cfg.store_dir);
    std::string error;
    listen_fd = listenUnix(cfg.socket_path, error);
    if (listen_fd < 0)
        throw std::runtime_error("rmtsimd: " + error);
    pool = std::make_unique<ThreadPool>(cfg.jobs);
}

void
Daemon::run()
{
    while (!stopping.load()) {
        pollfd pfd{listen_fd, POLLIN, 0};
        const int n = ::poll(&pfd, 1, 200);
        if (n <= 0)
            continue;   // timeout tick or EINTR: re-check the flag
        const int client = ::accept(listen_fd, nullptr, nullptr);
        if (client < 0)
            continue;
        std::lock_guard<std::mutex> lock(conn_mu);
        connections.emplace_back(
            [this, client] { serveClient(client); });
    }

    // Drain: no new connections, flag every live campaign so no new
    // job starts, then let the connection threads run their campaigns
    // to the in-flight boundary and say goodbye.
    {
        std::lock_guard<std::mutex> lock(reg_mu);
        for (const auto &c : live)
            c->cancel.store(true);
    }
    std::vector<std::thread> to_join;
    {
        std::lock_guard<std::mutex> lock(conn_mu);
        to_join.swap(connections);
    }
    for (std::thread &t : to_join)
        t.join();
    pool->wait();
    results.flush();
}

void
Daemon::serveClient(int fd)
{
    try {
        FrameReader reader(fd);
        std::string payload;
        while (reader.next(payload)) {
            if (payload.empty() || payload[0] != tagControl) {
                sendError(fd, "expected a control frame");
                break;
            }
            const std::string body = payload.substr(1);
            JsonValue msg;
            std::string perr;
            if (!parseJson(body, msg, perr)) {
                sendError(fd, "bad control JSON: " + perr);
                break;
            }
            const std::string type = msg.strOr("type", "");
            if (type == "submit") {
                handleSubmit(fd, msg);
            } else if (type == "status" || type == "flush" ||
                       type == "stop" || type == "cancel") {
                handleControl(fd, body);
            } else {
                sendError(fd, "unknown control type '" + type + "'");
                break;
            }
        }
    } catch (const std::exception &e) {
        // A torn frame or a mid-stream hangup; nothing to send the
        // peer — log and drop the connection.
        warn("rmtsimd: connection error: %s", e.what());
    }
    ::close(fd);
}

void
Daemon::handleControl(int fd, const std::string &body)
{
    JsonValue msg;
    parseJson(body, msg);
    const std::string type = msg.strOr("type", "");
    if (type == "status") {
        sendControl(fd, statusJson());
    } else if (type == "flush") {
        results.flush();
        sendControl(fd, "{\"type\":\"ok\",\"flushed\":true}");
    } else if (type == "stop") {
        sendControl(fd, "{\"type\":\"ok\",\"stopping\":true}");
        requestStop();
    } else if (type == "cancel") {
        cancelCampaigns(msg.strOr("campaign", ""));
        sendControl(fd, "{\"type\":\"ok\",\"cancelled\":true}");
    }
}

std::string
Daemon::statusJson()
{
    std::size_t active;
    std::uint64_t done;
    {
        std::lock_guard<std::mutex> lock(reg_mu);
        active = live.size();
        done = campaigns_done;
    }
    std::ostringstream os;
    os << "{\"type\":\"status\""
       << ",\"draining\":" << (stopping.load() ? "true" : "false")
       << ",\"active_campaigns\":" << active
       << ",\"campaigns_done\":" << done
       << ",\"workers\":" << pool->numThreads()
       << ",\"store\":" << results.statsJson() << "}";
    return os.str();
}

void
Daemon::cancelCampaigns(const std::string &fp_hex)
{
    std::lock_guard<std::mutex> lock(reg_mu);
    for (const auto &c : live) {
        if (fp_hex.empty() || fingerprintHex(c->fingerprint) == fp_hex)
            c->cancel.store(true);
    }
}

void
Daemon::handleSubmit(int fd, const JsonValue &msg)
{
    bool include_timing = true;
    Campaign campaign;
    try {
        campaign = parseSubmit(msg, include_timing);
    } catch (const std::exception &e) {
        sendError(fd, e.what());
        return;
    }
    if (campaign.jobs.empty()) {
        sendError(fd, "campaign has no jobs");
        return;
    }
    if (stopping.load()) {
        sendError(fd, "draining: not accepting campaigns");
        return;
    }

    const std::uint64_t camp_fp = campaignFingerprintU64(campaign.jobs);
    auto reg = std::make_shared<LiveCampaign>();
    reg->fingerprint = camp_fp;
    {
        std::lock_guard<std::mutex> lock(reg_mu);
        live.push_back(reg);
    }

    sendControl(fd, "{\"type\":\"accepted\",\"campaign\":\"" +
                        fingerprintHex(camp_fp) + "\",\"jobs\":" +
                        std::to_string(campaign.jobs.size()) + "}");

    RunnerConfig rcfg;
    rcfg.jobs = 1;          // executeJob runs inline on a pool worker
    rcfg.max_attempts = cfg.max_attempts;
    rcfg.timeout_seconds = cfg.timeout_seconds;
    rcfg.max_insts = cfg.max_insts;

    const std::size_t n = campaign.jobs.size();
    std::vector<std::uint64_t> keys(n);
    for (std::size_t i = 0; i < n; ++i)
        keys[i] = resultKeyU64(campaign.jobs[i]);

    // Partition pass: claim every key up front so two overlapping
    // campaigns interleave at job granularity instead of racing whole
    // submissions.  Owned fault jobs get their oracle attached exactly
    // the way rmtsim_batch does it — one golden run per distinct
    // (mix, capped options) point, shared across this submit, built
    // lazily so an all-hit resubmission never pays for a golden.
    std::mutex slot_mu;
    std::condition_variable slot_cv;
    std::vector<Slot> slots(n);
    std::size_t outstanding = 0;    // owned jobs handed to the pool
    std::uint64_t hits = 0, misses = 0;
    std::vector<std::size_t> waitlist;
    std::vector<std::size_t> owned;

    for (std::size_t i = 0; i < n; ++i) {
        JobResult cached;
        switch (results.tryClaim(keys[i], cached)) {
          case ResultStore::Claim::Hit:
            slots[i].state = Slot::State::Ready;
            slots[i].result = std::move(cached);
            ++hits;
            break;
          case ResultStore::Claim::Owner:
            owned.push_back(i);
            ++misses;
            break;
          case ResultStore::Claim::InFlight:
            waitlist.push_back(i);
            break;
        }
    }

    std::map<std::string, std::unique_ptr<FaultOracle>> oracles;
    const auto attachOracle = [&](JobSpec &job) {
        if (job.faults.empty())
            return;
        const SimOptions o = cappedOptions(job, rcfg);
        std::string key;
        for (const auto &w : job.workloads)
            key += w + "+";
        key += fingerprintHex(optionsFingerprintU64(o));
        auto it = oracles.find(key);
        if (it == oracles.end()) {
            it = oracles
                     .emplace(key, std::make_unique<FaultOracle>(
                                       FaultOracle::goldenImage(
                                           job.workloads, o)))
                     .first;
        }
        attachFaultOracle(job, it->second.get());
    };

    const auto runOwned = [&](std::size_t i) {
        JobSpec &spec = campaign.jobs[i];
        JobResult r;
        if (reg->cancel.load()) {
            results.abandon(keys[i]);
            std::lock_guard<std::mutex> lock(slot_mu);
            slots[i].state = Slot::State::Skipped;
            --outstanding;
            slot_cv.notify_all();
            return;
        }
        r = executeJob(spec, rcfg);
        results.publish(keys[i], modeName(spec.options.mode), r);
        std::lock_guard<std::mutex> lock(slot_mu);
        slots[i].state = Slot::State::Ready;
        slots[i].result = std::move(r);
        --outstanding;
        slot_cv.notify_all();
    };

    bool golden_failed = false;
    try {
        for (std::size_t i : owned)
            attachOracle(campaign.jobs[i]);
    } catch (const std::exception &e) {
        // A golden run that cannot even build means every owned fault
        // job is doomed; release the claims so other clients retry.
        for (std::size_t i : owned)
            results.abandon(keys[i]);
        sendError(fd, std::string("golden run failed: ") + e.what());
        golden_failed = true;
    }

    std::uint64_t rows = 0, failed = 0;
    bool peer_gone = false;

    if (!golden_failed) {
        {
            std::lock_guard<std::mutex> lock(slot_mu);
            outstanding = owned.size();
        }
        for (std::size_t i : owned)
            pool->submit([&runOwned, i] { runOwned(i); });

        // Serve the in-flight keys: block on whoever owns them; if the
        // owner abandons (their client hung up, a drain), re-claim and
        // run inline right here.
        for (std::size_t i : waitlist) {
            JobResult r;
            for (;;) {
                if (results.await(keys[i], r)) {
                    slots[i].state = Slot::State::Ready;
                    slots[i].result = std::move(r);
                    ++hits;
                    break;
                }
                switch (results.tryClaim(keys[i], r)) {
                  case ResultStore::Claim::Hit:
                    slots[i].state = Slot::State::Ready;
                    slots[i].result = std::move(r);
                    ++hits;
                    break;
                  case ResultStore::Claim::Owner:
                    if (reg->cancel.load()) {
                        results.abandon(keys[i]);
                        slots[i].state = Slot::State::Skipped;
                    } else {
                        JobSpec &spec = campaign.jobs[i];
                        try {
                            attachOracle(spec);
                            JobResult mine = executeJob(spec, rcfg);
                            results.publish(
                                keys[i], modeName(spec.options.mode),
                                mine);
                            slots[i].state = Slot::State::Ready;
                            slots[i].result = std::move(mine);
                        } catch (const std::exception &e) {
                            results.abandon(keys[i]);
                            slots[i].state = Slot::State::Skipped;
                            warn("rmtsimd: job %llu: %s",
                                 static_cast<unsigned long long>(
                                     spec.id),
                                 e.what());
                        }
                        ++misses;
                    }
                    break;
                  case ResultStore::Claim::InFlight:
                    continue;     // next owner appeared; await again
                }
                break;
            }
        }

        // Emission cursor: rows leave in campaign order while the pool
        // fills later slots out of order.  A dead peer flips the
        // cancel flag (unstarted owned jobs abandon themselves) but we
        // still wait out the in-flight ones below.
        for (std::size_t i = 0; i < n; ++i) {
            std::unique_lock<std::mutex> lock(slot_mu);
            slot_cv.wait(lock, [&] {
                return slots[i].state != Slot::State::Pending;
            });
            if (slots[i].state == Slot::State::Skipped)
                continue;
            const JobResult &r = slots[i].result;
            if (!r.ok())
                ++failed;
            if (peer_gone || reg->cancel.load())
                continue;
            const std::string line = resultJson(
                campaign.jobs[i], r, include_timing);
            lock.unlock();
            if (!sendFrame(fd, tagRow, line)) {
                peer_gone = true;
                reg->cancel.store(true);
            } else {
                ++rows;
            }
        }

        // All owned pool tasks reference this stack frame (campaign,
        // slots, keys); do not leave before every one has retired.
        {
            std::unique_lock<std::mutex> lock(slot_mu);
            slot_cv.wait(lock, [&] { return outstanding == 0; });
        }
    }

    {
        std::lock_guard<std::mutex> lock(reg_mu);
        live.erase(std::remove(live.begin(), live.end(), reg),
                   live.end());
        ++campaigns_done;
    }
    results.flush();

    if (!golden_failed && !peer_gone) {
        std::ostringstream os;
        os << "{\"type\":\"done\",\"rows\":" << rows
           << ",\"hits\":" << hits << ",\"misses\":" << misses
           << ",\"failed\":" << failed << ",\"draining\":"
           << (stopping.load() || reg->cancel.load() ? "true"
                                                     : "false")
           << "}";
        sendControl(fd, os.str());
    }
}

} // namespace serve
} // namespace rmt

#endif // POSIX
