/**
 * @file
 * Client half of the serve protocol: what `rmtsim_batch --server` and
 * the rmtsimd control verbs use to talk to a running daemon.
 */

#ifndef RMTSIM_SERVE_CLIENT_HH
#define RMTSIM_SERVE_CLIENT_HH

#include <cstdint>
#include <iosfwd>
#include <string>

#include "runner/campaign.hh"

namespace rmt
{
namespace serve
{

#if defined(__unix__) || defined(__APPLE__)

/** What the daemon's final "done" control message reported. */
struct RemoteCampaignResult
{
    std::uint64_t rows = 0;     ///< JSONL rows streamed back
    std::uint64_t hits = 0;     ///< jobs served from the result store
    std::uint64_t misses = 0;   ///< jobs the daemon had to simulate
    std::uint64_t failed = 0;   ///< rows with status "failed"
    bool draining = false;      ///< daemon was shutting down mid-run
};

/**
 * Submit @p campaign to the daemon at @p socket_path and write each
 * returned row to @p out in order, exactly as a local JsonlSink would.
 * Throws std::runtime_error on connect failures, protocol violations,
 * a daemon-side error message, or a connection cut before "done".
 */
RemoteCampaignResult runRemoteCampaign(const std::string &socket_path,
                                       const Campaign &campaign,
                                       bool include_timing,
                                       std::ostream &out);

/**
 * Send one control message (status/flush/stop/cancel JSON) and return
 * the daemon's JSON reply body.  Throws std::runtime_error on connect
 * or protocol failure.
 */
std::string controlRequest(const std::string &socket_path,
                           const std::string &request_json);

#endif // POSIX

} // namespace serve
} // namespace rmt

#endif // RMTSIM_SERVE_CLIENT_HH
