/**
 * @file
 * rmtsimd: the campaign daemon.  One process owns a content-addressed
 * ResultStore and a work-stealing ThreadPool; clients connect over a
 * Unix-domain socket, submit campaigns (serve/protocol.hh), and get
 * their JSONL rows streamed back in job order as they complete.
 *
 * Execution model:
 *
 *  - one accept loop (poll + 200 ms tick so the SIGTERM drain flag is
 *    observed promptly), one detached-join thread per connection;
 *  - a submit runs a *partition pass* on its connection thread: every
 *    job is tryClaim()ed against the store — hits are served
 *    immediately, owned jobs go to the shared pool, in-flight jobs
 *    (another client is computing the same content key right now) are
 *    await()ed.  Claims never block pool workers, so the shared pool
 *    cannot deadlock on cross-campaign dependencies;
 *  - rows are emitted strictly in job order while the pool completes
 *    jobs out of order ahead of the cursor — the stream a client sees
 *    is byte-identical to a local `rmtsim_batch --jsonl` run of the
 *    same campaign (modulo timing fields, which the client may disable);
 *  - a client hangup mid-stream cancels its campaign: unstarted jobs
 *    are abandoned (waiters re-claim them), finished ones are already
 *    in the store, so a resubmission resumes from row 0 at store speed.
 *
 * Drain (SIGTERM / the stop verb) stops the accept loop, flags every
 * live campaign to start no new jobs, lets in-flight simulations
 * finish and publish, flushes the store, and exits — mirroring the
 * PR-9 campaign drain semantics.
 */

#ifndef RMTSIM_SERVE_DAEMON_HH
#define RMTSIM_SERVE_DAEMON_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "runner/runner.hh"
#include "runner/thread_pool.hh"
#include "serve/result_store.hh"

namespace rmt
{
namespace serve
{

struct DaemonConfig
{
    std::string socket_path;        ///< Unix socket to serve on
    std::string store_dir;          ///< ResultStore directory
    unsigned jobs = 0;              ///< pool workers (0 = all cores)
    unsigned max_attempts = 2;      ///< per-job retry budget
    double timeout_seconds = 0;     ///< per-job wall guard (0 = off)
    std::uint64_t max_insts = 0;    ///< clamp warmup+measure (0 = off)
    unsigned store_sync_every = 16; ///< fsync cadence (1 = every row)
};

#if defined(__unix__) || defined(__APPLE__)

class Daemon
{
  public:
    explicit Daemon(DaemonConfig config);
    ~Daemon();

    Daemon(const Daemon &) = delete;
    Daemon &operator=(const Daemon &) = delete;

    /**
     * Open the store and bind the socket.  Throws StoreError /
     * std::runtime_error when either is unusable (socket already
     * served, unwritable store directory, version mismatch).
     */
    void open();

    /** Accept/serve until requestStop(); returns after the drain. */
    void run();

    /**
     * Begin the drain.  Async-signal-safe (one relaxed atomic store),
     * so it may be called directly from a SIGTERM/SIGINT handler.
     */
    void requestStop() { stopping.store(true); }

    const ResultStore &store() const { return results; }

  private:
    /** Per-campaign bookkeeping registered while a submit is live. */
    struct LiveCampaign
    {
        std::uint64_t fingerprint = 0;
        std::atomic<bool> cancel{false};
    };

    void serveClient(int fd);
    void handleSubmit(int fd, const JsonValue &msg);
    void handleControl(int fd, const std::string &body);
    std::string statusJson();
    void cancelCampaigns(const std::string &fp_hex);

    DaemonConfig cfg;
    ResultStore results;
    std::unique_ptr<ThreadPool> pool;
    int listen_fd = -1;
    std::atomic<bool> stopping{false};

    std::mutex reg_mu;
    std::vector<std::shared_ptr<LiveCampaign>> live;  ///< active submits
    std::uint64_t campaigns_done = 0;

    std::mutex conn_mu;
    std::vector<std::thread> connections;
};

#endif // POSIX

} // namespace serve
} // namespace rmt

#endif // RMTSIM_SERVE_DAEMON_HH
