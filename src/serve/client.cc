#include "serve/client.hh"

#if defined(__unix__) || defined(__APPLE__)

#include <ostream>
#include <stdexcept>

#include <unistd.h>

#include "serve/protocol.hh"

namespace rmt
{
namespace serve
{

namespace
{

/** Close-on-scope-exit descriptor guard. */
struct Fd
{
    int fd;
    explicit Fd(int fd) : fd(fd) {}
    ~Fd()
    {
        if (fd >= 0)
            ::close(fd);
    }
};

int
connectOrThrow(const std::string &socket_path)
{
    std::string error;
    const int fd = connectUnix(socket_path, error);
    if (fd < 0)
        throw std::runtime_error(error);
    return fd;
}

/** Parse a control body; throws on malformed JSON or a daemon error. */
JsonValue
parseControl(const std::string &body)
{
    JsonValue msg;
    std::string error;
    if (!parseJson(body, msg, error))
        throw std::runtime_error("serve: daemon sent bad JSON: " +
                                 error);
    if (msg.strOr("type", "") == "error")
        throw std::runtime_error("rmtsimd: " +
                                 msg.strOr("message", "unknown error"));
    return msg;
}

} // namespace

RemoteCampaignResult
runRemoteCampaign(const std::string &socket_path,
                  const Campaign &campaign, bool include_timing,
                  std::ostream &out)
{
    Fd sock(connectOrThrow(socket_path));
    if (!sendFrame(sock.fd, tagControl,
                   submitJson(campaign, include_timing)))
        throw std::runtime_error("serve: submit write failed");

    FrameReader reader(sock.fd);
    std::string payload;
    bool accepted = false;
    while (reader.next(payload)) {
        if (payload.empty())
            throw std::runtime_error("serve: empty frame");
        if (payload[0] == tagRow) {
            out.write(payload.data() + 1,
                      static_cast<std::streamsize>(payload.size() - 1));
            out << "\n";
            continue;
        }
        const JsonValue msg = parseControl(payload.substr(1));
        const std::string type = msg.strOr("type", "");
        if (type == "accepted") {
            accepted = true;
        } else if (type == "done") {
            out.flush();
            RemoteCampaignResult r;
            r.rows = static_cast<std::uint64_t>(msg.numberOr("rows", 0));
            r.hits = static_cast<std::uint64_t>(msg.numberOr("hits", 0));
            r.misses =
                static_cast<std::uint64_t>(msg.numberOr("misses", 0));
            r.failed =
                static_cast<std::uint64_t>(msg.numberOr("failed", 0));
            const JsonValue *d = msg.find("draining");
            r.draining = d && d->isBool() && d->boolean();
            return r;
        } else {
            throw std::runtime_error("serve: unexpected control '" +
                                     type + "'");
        }
    }
    throw std::runtime_error(
        accepted ? "serve: daemon hung up mid-campaign"
                 : "serve: daemon hung up before accepting");
}

std::string
controlRequest(const std::string &socket_path,
               const std::string &request_json)
{
    Fd sock(connectOrThrow(socket_path));
    if (!sendFrame(sock.fd, tagControl, request_json))
        throw std::runtime_error("serve: control write failed");
    FrameReader reader(sock.fd);
    std::string payload;
    if (!reader.next(payload))
        throw std::runtime_error("serve: daemon hung up without "
                                 "replying");
    if (payload.empty() || payload[0] != tagControl)
        throw std::runtime_error("serve: expected a control reply");
    const std::string body = payload.substr(1);
    parseControl(body);     // throws on an error reply
    return body;
}

} // namespace serve
} // namespace rmt

#endif // POSIX
