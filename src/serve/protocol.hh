/**
 * @file
 * Wire protocol between rmtsimd and its clients: length-prefixed
 * frames over a local Unix-domain stream socket.
 *
 * Framing reuses the runner's pipe protocol (runner/wire.hh): each
 * frame is `magic | u32 length | payload`, read EINTR-safely through
 * wire::readSome/writeAll and parsed with wire::FrameDecoder, so the
 * daemon inherits the same truncation/garbage/oversize detection the
 * fork executor has.  The first payload byte is a tag:
 *
 *   'C'  control message — a JSON object with a "type" member
 *   'R'  result row — one raw JSONL line (no trailing newline),
 *        exactly the bytes rmtsim_batch would have written locally
 *
 * Control types client -> server:
 *   {"type":"submit","name":...,"seed":N,"timing":bool,"jobs":[...]}
 *   {"type":"status"} | {"type":"flush"} | {"type":"stop"}
 *   {"type":"cancel","campaign":"<16-hex fingerprint>"}
 *
 * Control types server -> client:
 *   {"type":"accepted","campaign":"<hex>","jobs":N}
 *   {"type":"done","rows":N,"hits":N,"misses":N,"failed":N,
 *    "draining":bool}
 *   {"type":"status",...}  {"type":"ok",...}  {"type":"error",...}
 *
 * The campaign codec serialises the existing JobSpec/Campaign structs:
 * per job id, label, seed, workloads, the canonical-options pre-image
 * (sim/optionsCanonicalJson — parsed back field-for-field and verified
 * to re-canonicalise to the same string, so option drift is an error,
 * not a silent mis-simulation), the stats-embed flag, and the
 * scheduled fault records.  post_run hooks do not travel: the daemon
 * reattaches fault oracles itself from the fault records.
 */

#ifndef RMTSIM_SERVE_PROTOCOL_HH
#define RMTSIM_SERVE_PROTOCOL_HH

#include <string>

#include "common/json.hh"
#include "runner/campaign.hh"
#include "runner/wire.hh"

namespace rmt
{
namespace serve
{

/** Frame payload tags. */
constexpr char tagControl = 'C';
constexpr char tagRow = 'R';

/** Default socket filename for examples/docs. */
constexpr const char *defaultSocketName = "rmtsimd.sock";

// --------------------------------------------------------- campaign codec

/** One job as a JSON object (the "jobs" array element). */
std::string jobJson(const JobSpec &spec);

/** The submit control message for @p campaign. */
std::string submitJson(const Campaign &campaign, bool include_timing);

/**
 * Parse the canonical-options object (the optionsCanonicalJson shape)
 * back into a SimOptions.  Throws std::invalid_argument on unknown
 * mode/frontend names or missing members.
 */
SimOptions parseCanonicalOptions(const JsonValue &obj);

/**
 * Parse a submit message into a Campaign (+ the timing flag).  Every
 * job's options are re-canonicalised and compared against the sent
 * pre-image: a mismatch (a client built with different option
 * semantics) throws std::invalid_argument rather than silently
 * simulating something else.
 */
Campaign parseSubmit(const JsonValue &msg, bool &include_timing);

// ------------------------------------------------------------ socket I/O

#if defined(__unix__) || defined(__APPLE__)

/**
 * Send one tagged frame (EINTR-safe, whole-frame-or-error).
 * False on a write failure (errno left set) — for the daemon that
 * usually means the client hung up mid-stream.
 */
bool sendFrame(int fd, char tag, const std::string &body);

/**
 * Incremental framed reader over a descriptor.  next() blocks until a
 * whole frame arrives; returns false on clean EOF.  Throws
 * wire::WireError on garbage, an oversized length, or EOF cutting a
 * frame in half.
 */
class FrameReader
{
  public:
    explicit FrameReader(int fd) : fd(fd) {}

    /** Next payload (tag byte included).  False on clean EOF. */
    bool next(std::string &payload);

  private:
    int fd;
    wire::FrameDecoder dec;
};

/** Connect to a Unix socket; -1 on failure (error describes why). */
int connectUnix(const std::string &path, std::string &error);

/** Bind + listen on a Unix socket; -1 on failure.  An existing socket
 *  file that nothing answers on (a stale daemon) is unlinked first; a
 *  live one is an error ("already serving"). */
int listenUnix(const std::string &path, std::string &error);

#endif // POSIX

} // namespace serve
} // namespace rmt

#endif // RMTSIM_SERVE_PROTOCOL_HH
