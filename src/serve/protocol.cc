#include "serve/protocol.hh"

#include <sstream>
#include <stdexcept>

#include "avf/stratum.hh"
#include "rmt/fault_injector.hh"
#include "sim/simulator.hh"

#if defined(__unix__) || defined(__APPLE__)
#include <cerrno>
#include <cstring>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

namespace rmt
{
namespace serve
{

std::string
jobJson(const JobSpec &spec)
{
    std::ostringstream os;
    // 64-bit fields that can exceed 2^53 (per-trial seeds are full
    // 64-bit hashes) travel as strings: a JSON number goes through a
    // double on the far side and would silently round.
    os << "{\"id\":" << spec.id
       << ",\"label\":\"" << jsonEscape(spec.label) << "\""
       << ",\"seed\":\"" << spec.seed << "\""
       << ",\"workloads\":[";
    for (std::size_t i = 0; i < spec.workloads.size(); ++i) {
        if (i)
            os << ",";
        os << "\"" << jsonEscape(spec.workloads[i]) << "\"";
    }
    os << "],\"options\":" << optionsCanonicalJson(spec.options)
       << ",\"stats\":" << (spec.options.collect_stats_json ? 1 : 0);
    if (!spec.faults.empty()) {
        os << ",\"faults\":[";
        for (std::size_t i = 0; i < spec.faults.size(); ++i) {
            const FaultRecord &f = spec.faults[i];
            if (i)
                os << ",";
            os << "{\"kind\":\"" << faultKindName(f.kind) << "\""
               << ",\"when\":\"" << f.when << "\""
               << ",\"core\":" << unsigned(f.core)
               << ",\"tid\":" << unsigned(f.tid)
               << ",\"reg\":" << unsigned(f.reg)
               << ",\"bit\":" << f.bit
               << ",\"fu\":" << f.fuIndex
               << ",\"mask\":\"" << f.mask << "\""
               << ",\"pair\":" << unsigned(f.pairLogical) << "}";
        }
        os << "]";
    }
    os << "}";
    return os.str();
}

std::string
submitJson(const Campaign &campaign, bool include_timing)
{
    std::ostringstream os;
    os << "{\"type\":\"submit\""
       << ",\"name\":\"" << jsonEscape(campaign.name) << "\""
       << ",\"seed\":\"" << campaign.seed << "\""
       << ",\"timing\":" << (include_timing ? "true" : "false")
       << ",\"jobs\":[";
    for (std::size_t i = 0; i < campaign.jobs.size(); ++i) {
        if (i)
            os << ",";
        os << jobJson(campaign.jobs[i]);
    }
    os << "]}";
    return os.str();
}

namespace
{

std::uint64_t
u64Member(const JsonValue &obj, const char *key)
{
    // Full-width u64 fields arrive as strings (see jobJson); small
    // ones as numbers.  Accept both everywhere.
    const JsonValue *v = obj.find(key);
    if (v && v->isString()) {
        try {
            return std::stoull(v->str());
        } catch (const std::exception &) {
            throw std::invalid_argument(
                std::string("serve: member '") + key +
                "' is not a u64: '" + v->str() + "'");
        }
    }
    if (!v || !v->isNumber())
        throw std::invalid_argument(
            std::string("serve: missing numeric member '") + key + "'");
    return static_cast<std::uint64_t>(v->number());
}

bool
boolMember(const JsonValue &obj, const char *key)
{
    return u64Member(obj, key) != 0;
}

std::string
strMember(const JsonValue &obj, const char *key)
{
    const JsonValue *v = obj.find(key);
    if (!v || !v->isString())
        throw std::invalid_argument(
            std::string("serve: missing string member '") + key + "'");
    return v->str();
}

TrailingFetchMode
parseFrontend(const std::string &name)
{
    if (name == "lpq")
        return TrailingFetchMode::LinePredictionQueue;
    if (name == "boq")
        return TrailingFetchMode::BranchOutcomeQueue;
    if (name == "sharedlp")
        return TrailingFetchMode::SharedLinePredictor;
    throw std::invalid_argument("serve: unknown frontend '" + name +
                                "'");
}

} // namespace

SimOptions
parseCanonicalOptions(const JsonValue &obj)
{
    if (!obj.isObject())
        throw std::invalid_argument("serve: options is not an object");
    SimOptions o;
    o.mode = parseMode(strMember(obj, "mode"));
    o.warmup_insts = u64Member(obj, "warmup_insts");
    o.measure_insts = u64Member(obj, "measure_insts");
    o.checker_penalty =
        static_cast<unsigned>(u64Member(obj, "checker_penalty"));
    o.per_thread_store_queues = boolMember(obj, "ptsq");
    o.store_comparison = boolMember(obj, "store_comparison");
    o.preferential_space_redundancy = boolMember(obj, "psr");
    o.trailing_fetch = parseFrontend(strMember(obj, "frontend"));
    o.slack_fetch = static_cast<unsigned>(u64Member(obj, "slack"));
    o.lvq_ecc = boolMember(obj, "lvq_ecc");
    o.lpq_ecc = boolMember(obj, "lpq_ecc");
    o.boq_ecc = boolMember(obj, "boq_ecc");
    o.merge_buffer_ecc = boolMember(obj, "merge_ecc");
    o.hang_cycles = u64Member(obj, "hang");
    o.cpu.store_queue_entries =
        static_cast<unsigned>(u64Member(obj, "storeq"));
    o.cpu.lvq_entries = static_cast<unsigned>(u64Member(obj, "lvq"));
    o.cpu.lpq_entries = static_cast<unsigned>(u64Member(obj, "lpq"));
    o.cpu.rob_entries = static_cast<unsigned>(u64Member(obj, "rob"));
    o.cpu.iq_entries = static_cast<unsigned>(u64Member(obj, "iq"));
    o.recovery = boolMember(obj, "recovery");
    o.snapshot_every = u64Member(obj, "snapshot_every");
    return o;
}

Campaign
parseSubmit(const JsonValue &msg, bool &include_timing)
{
    Campaign campaign;
    campaign.name = msg.strOr("name", "campaign");
    campaign.seed = u64Member(msg, "seed");
    const JsonValue *timing = msg.find("timing");
    include_timing = !timing || !timing->isBool() || timing->boolean();

    const JsonValue *jobs = msg.find("jobs");
    if (!jobs || !jobs->isArray())
        throw std::invalid_argument("serve: submit has no jobs array");

    for (const JsonValue &j : jobs->array()) {
        JobSpec spec;
        spec.id = u64Member(j, "id");
        spec.label = j.strOr("label", "");
        spec.seed = u64Member(j, "seed");
        const JsonValue *wl = j.find("workloads");
        if (!wl || !wl->isArray() || wl->array().empty())
            throw std::invalid_argument("serve: job " +
                                        std::to_string(spec.id) +
                                        " has no workloads");
        for (const JsonValue &w : wl->array()) {
            if (!w.isString())
                throw std::invalid_argument("serve: non-string "
                                            "workload name");
            spec.workloads.push_back(w.str());
        }
        const JsonValue *opts = j.find("options");
        if (!opts)
            throw std::invalid_argument("serve: job " +
                                        std::to_string(spec.id) +
                                        " has no options");
        spec.options = parseCanonicalOptions(*opts);
        spec.options.collect_stats_json =
            j.numberOr("stats", 0) != 0;

        // Round-trip check: re-canonicalising the parsed options must
        // reproduce the sent pre-image byte-for-byte.  A mismatch
        // means this daemon would simulate something other than what
        // the client asked for — reject loudly.
        {
            std::ostringstream sent;
            bool first = true;
            sent << "{";
            for (const auto &[key, value] : opts->members()) {
                if (!first)
                    sent << ",";
                first = false;
                sent << "\"" << key << "\":";
                if (value.isString())
                    sent << "\"" << jsonEscape(value.str()) << "\"";
                else
                    sent << jsonNum(value.number());
            }
            sent << "}";
            const std::string canon =
                optionsCanonicalJson(spec.options);
            if (sent.str() != canon)
                throw std::invalid_argument(
                    "serve: job " + std::to_string(spec.id) +
                    " options do not round-trip (client/daemon "
                    "option-schema drift): got " + sent.str() +
                    ", canonical " + canon);
        }

        if (const JsonValue *faults = j.find("faults")) {
            if (!faults->isArray())
                throw std::invalid_argument("serve: faults is not an "
                                            "array");
            for (const JsonValue &fv : faults->array()) {
                FaultRecord f{};
                f.kind = parseFaultKind(strMember(fv, "kind"));
                f.when = u64Member(fv, "when");
                f.core = static_cast<CoreId>(u64Member(fv, "core"));
                f.tid = static_cast<ThreadId>(u64Member(fv, "tid"));
                f.reg = static_cast<RegIndex>(u64Member(fv, "reg"));
                f.bit = static_cast<unsigned>(u64Member(fv, "bit"));
                f.fuIndex = static_cast<unsigned>(u64Member(fv, "fu"));
                f.mask = u64Member(fv, "mask");
                f.pairLogical =
                    static_cast<LogicalId>(u64Member(fv, "pair"));
                spec.faults.push_back(f);
            }
        }
        campaign.jobs.push_back(std::move(spec));
    }
    return campaign;
}

#if defined(__unix__) || defined(__APPLE__)

bool
sendFrame(int fd, char tag, const std::string &body)
{
    std::string payload;
    payload.reserve(1 + body.size());
    payload.push_back(tag);
    payload += body;
    const std::string framed = wire::frame(payload);
    return wire::writeAll(fd, framed.data(), framed.size());
}

bool
FrameReader::next(std::string &payload)
{
    for (;;) {
        if (dec.next(payload))
            return true;
        char buf[4096];
        const long n = wire::readSome(fd, buf, sizeof(buf));
        if (n < 0)
            throw wire::WireError(std::string("serve: read failed: ") +
                                  std::strerror(errno));
        if (n == 0) {
            if (dec.truncated())
                throw wire::WireError("serve: connection closed "
                                      "mid-frame");
            return false;
        }
        dec.feed(buf, static_cast<std::size_t>(n));
    }
}

namespace
{

bool
fillSockaddr(const std::string &path, sockaddr_un &addr,
             std::string &error)
{
    if (path.size() >= sizeof(addr.sun_path)) {
        error = "socket path '" + path + "' is too long (max " +
                std::to_string(sizeof(addr.sun_path) - 1) + " bytes)";
        return false;
    }
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return true;
}

} // namespace

int
connectUnix(const std::string &path, std::string &error)
{
    sockaddr_un addr;
    if (!fillSockaddr(path, addr, error))
        return -1;
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        error = std::string("socket(): ") + std::strerror(errno);
        return -1;
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        error = "cannot connect to '" + path + "': " +
                std::strerror(errno) + " (is rmtsimd running?)";
        ::close(fd);
        return -1;
    }
    return fd;
}

int
listenUnix(const std::string &path, std::string &error)
{
    sockaddr_un addr;
    if (!fillSockaddr(path, addr, error))
        return -1;

    // A leftover socket file from a killed daemon would make bind()
    // fail forever; probe it and only reclaim the path when nothing
    // answers.
    {
        std::string probe_error;
        const int probe = connectUnix(path, probe_error);
        if (probe >= 0) {
            ::close(probe);
            error = "'" + path + "' is already being served";
            return -1;
        }
        ::unlink(path.c_str());
    }

    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        error = std::string("socket(): ") + std::strerror(errno);
        return -1;
    }
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        error = "cannot bind '" + path + "': " + std::strerror(errno);
        ::close(fd);
        return -1;
    }
    if (::listen(fd, 64) != 0) {
        error = "cannot listen on '" + path + "': " +
                std::strerror(errno);
        ::close(fd);
        ::unlink(path.c_str());
        return -1;
    }
    return fd;
}

#endif // POSIX

} // namespace serve
} // namespace rmt
