/**
 * @file
 * Content-addressed result store: the campaign daemon's cache of every
 * JobResult it has ever computed.
 *
 * A result is keyed by *what was simulated*, never by where it sat in
 * a campaign: `resultKeyU64` hashes the canonical-options pre-image
 * (the PR-5 fingerprint, via common/fingerprint), the workload mix,
 * the scheduled fault records, the per-job seed, and the stats-embed
 * flag.  Job id and label are deliberately excluded, so the same
 * simulation submitted under a different grid position — or by a
 * different client entirely — is a cache hit.
 *
 * Concurrency follows the BaselineCache single-flight idiom, split
 * into a non-blocking `tryClaim` (so a campaign's partition pass never
 * stalls on another client's in-flight job) and a blocking `await`:
 *
 *     tryClaim -> Hit       serve the stored result
 *              -> Owner     caller must publish() or abandon()
 *              -> InFlight  another thread is computing it; await()
 *
 * Persistence generalises the on-disk `--baseline-cache`: completed
 * results are appended to `DIR/store.rmtrs` with the PR-9 journal's
 * CRC framing (magic | length | key | mode | payload | CRC32), so a
 * SIGKILLed daemon leaves at worst a torn tail that the next open
 * truncates away.  Failed results are published in memory only — a
 * failure unblocks today's waiters but is never negative-cached on
 * disk.
 */

#ifndef RMTSIM_SERVE_RESULT_STORE_HH
#define RMTSIM_SERVE_RESULT_STORE_HH

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "runner/job.hh"

namespace rmt
{

/** Unusable store directory/file (unwritable, wrong version). */
struct StoreError : std::runtime_error
{
    explicit StoreError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/** Store format version. */
constexpr std::uint32_t resultStoreVersion = 1;

/**
 * Content key of one job: fingerprint(options) + workloads +
 * fault records + seed (+ the stats-embed flag, which changes the
 * record payload).  Everything resultJson() renders from the JobResult
 * is a function of this key; everything it renders from the JobSpec
 * (id, label) is not part of it.
 */
std::uint64_t resultKeyU64(const JobSpec &spec);

/** Counters `rmtsim_report --serve-summary` renders. */
struct ResultStoreStats
{
    std::uint64_t hits = 0;             ///< tryClaim served a stored row
    std::uint64_t misses = 0;           ///< tryClaim handed out ownership
    std::uint64_t inflight_waits = 0;   ///< await() calls that blocked
    std::uint64_t rows = 0;             ///< results resident in memory
    std::uint64_t disk_rows = 0;        ///< rows loaded from disk at open
    std::uint64_t stored_bytes = 0;     ///< bytes appended + loaded on disk
    std::map<std::string, std::uint64_t> mode_rows;  ///< per-mode rows
};

class ResultStore
{
  public:
    enum class Claim : std::uint8_t
    {
        Hit,        ///< result copied out
        Owner,      ///< caller computes; must publish() or abandon()
        InFlight,   ///< someone else is computing; await() it
    };

    ResultStore() = default;
    ~ResultStore();

    ResultStore(const ResultStore &) = delete;
    ResultStore &operator=(const ResultStore &) = delete;

    /**
     * Attach the on-disk store under @p dir (created if needed): load
     * every valid frame of `store.rmtrs`, truncate any torn/corrupt
     * tail, and append future publishes.  Throws StoreError when the
     * directory or file cannot be used at all; damage inside the file
     * degrades to the valid prefix, mirroring journal replay.
     */
    void open(const std::string &dir);

    /** fsync cadence for appended frames (default 16; 1 = every row). */
    void setSyncEvery(unsigned n) { sync_every = n ? n : 1; }

    /** Non-blocking single-flight lookup (see Claim). */
    Claim tryClaim(std::uint64_t key, JobResult &out);

    /**
     * Block until @p key is published or abandoned.  True: @p out
     * holds the published result.  False: the owner abandoned (or
     * failed without a result) — the caller should tryClaim again and
     * expect to become the owner.
     */
    bool await(std::uint64_t key, JobResult &out);

    /**
     * Publish the result of a key claimed as Owner and wake waiters.
     * Ok results are persisted (when a store is attached); failed ones
     * stay memory-resident only.  @p mode feeds the per-mode counters.
     */
    void publish(std::uint64_t key, const std::string &mode,
                 const JobResult &result);

    /** Give up ownership of a claimed key without a result; waiters
     *  wake, retry their claim, and one of them becomes the owner. */
    void abandon(std::uint64_t key);

    /** Write out buffered frames and fsync (POSIX). */
    void flush();

    ResultStoreStats stats() const;

    /** The stats as one JSON object (the status verb's "store"). */
    std::string statsJson() const;

  private:
    struct Entry
    {
        bool ready = false;     ///< false = in flight
        JobResult result;
        std::string mode;
    };

    void appendFrame(std::uint64_t key, const std::string &mode,
                     const JobResult &result);   // caller holds mu
    void syncLocked();                           // caller holds mu

    mutable std::mutex mu;
    std::condition_variable cv;
    std::unordered_map<std::uint64_t, Entry> entries;
    ResultStoreStats counters;

    std::string path;           ///< "" = memory-only
    int fd = -1;
    std::string buffer;         ///< frames not yet written
    unsigned unsynced = 0;
    unsigned sync_every = 16;
};

} // namespace rmt

#endif // RMTSIM_SERVE_RESULT_STORE_HH
