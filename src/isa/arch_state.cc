#include "isa/arch_state.hh"

namespace rmt
{

ArchState::ArchState(const Program &program, DataMemory &memory)
    : _program(program), _memory(memory), _pc(program.entry())
{
}

StepResult
ArchState::step()
{
    StepResult res;
    res.pc = _pc;
    if (_halted) {
        res.next_pc = _pc;
        res.halted = true;
        return res;
    }

    const StaticInst &si = _program.fetch(_pc);

    if (si.isHalt()) {
        _halted = true;
        res.halted = true;
        res.next_pc = _pc;
        ++_insts;
        return res;
    }

    Addr next_pc = _pc + instBytes;

    if (si.isUncached()) {
        // Reference semantics for uncached ops: act on the data image
        // (a pseudo-device).  The real device is volatile, so the
        // co-simulating core reconciles the actual value afterwards.
        const Addr ea = effectiveAddr(si, readReg(si.ra));
        if (si.isUncachedLoad()) {
            const std::uint64_t v = _memory.read(ea, 8);
            writeReg(si.rd, v);
            res.rd = si.rd;
            res.value = v;
        } else {
            const std::uint64_t v = readReg(si.rb);
            _memory.write(ea, 8, v);
            res.is_store = true;
            res.store_addr = ea;
            res.store_data = v;
            res.store_size = 8;
        }
    } else if (si.isLoad()) {
        const Addr ea = effectiveAddr(si, readReg(si.ra));
        const std::uint64_t v = _memory.read(ea, si.memSize());
        writeReg(si.rd, v);
        res.rd = si.rd;
        res.value = v;
    } else if (si.isStore()) {
        const Addr ea = effectiveAddr(si, readReg(si.ra));
        const unsigned size = si.memSize();
        // Report the bytes actually stored (sub-quadword stores
        // truncate), so downstream comparisons are well-defined.
        const std::uint64_t v =
            size >= 8 ? readReg(si.rb)
                      : readReg(si.rb) &
                            ((std::uint64_t{1} << (8 * size)) - 1);
        _memory.write(ea, size, v);
        res.is_store = true;
        res.store_addr = ea;
        res.store_data = v;
        res.store_size = size;
    } else {
        const AluResult alu =
            evalOp(si, _pc, readReg(si.ra), readReg(si.rb));
        if (si.rd != noReg) {
            writeReg(si.rd, alu.value);
            res.rd = si.rd;
            res.value = alu.value;
        }
        if (alu.taken)
            next_pc = alu.target;
    }

    _pc = next_pc;
    res.next_pc = next_pc;
    ++_insts;
    return res;
}

std::uint64_t
ArchState::run(std::uint64_t max_insts)
{
    std::uint64_t n = 0;
    while (n < max_insts && !_halted) {
        step();
        ++n;
    }
    return n;
}

} // namespace rmt
