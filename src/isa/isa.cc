#include "isa/isa.hh"

#include <bit>
#include <cmath>
#include <sstream>

#include "common/logging.hh"

namespace rmt
{

namespace
{

double
asDouble(std::uint64_t v)
{
    return std::bit_cast<double>(v);
}

std::uint64_t
asBits(double v)
{
    return std::bit_cast<std::uint64_t>(v);
}

} // namespace

unsigned
StaticInst::memSize() const
{
    switch (op) {
      case Op::Ldb: case Op::Stb: return 1;
      case Op::Ldh: case Op::Sth: return 2;
      case Op::Ldw: case Op::Stw: return 4;
      case Op::Ldq: case Op::Stq: case Op::Fld: case Op::Fst:
      case Op::LdUnc: case Op::StUnc: return 8;
      default: return 0;
    }
}

FuClass
StaticInst::fuClass() const
{
    switch (op) {
      case Op::Nop:
      case Op::Halt:
      case Op::Iret:
        return FuClass::None;
      case Op::And: case Op::Or: case Op::Xor:
      case Op::AndI: case Op::OrI: case Op::XorI:
      case Op::Sll: case Op::Srl: case Op::Sra:
      case Op::SllI: case Op::SrlI:
        return FuClass::Logic;
      case Op::Fadd: case Op::Fsub: case Op::Fmul: case Op::Fdiv:
      case Op::Fsqrt: case Op::Fneg: case Op::Fcmplt: case Op::Fcmpeq:
      case Op::CvtIF: case Op::CvtFI:
        return FuClass::Fp;
      default:
        if (isMemRef() || isMemBar() || isUncached())
            return FuClass::Mem;
        return FuClass::IntAlu;
    }
}

unsigned
StaticInst::latency() const
{
    switch (op) {
      case Op::Mul: case Op::MulI: return 7;
      case Op::Div: return 12;
      case Op::Fadd: case Op::Fsub: case Op::Fneg:
      case Op::Fcmplt: case Op::Fcmpeq:
      case Op::CvtIF: case Op::CvtFI: return 4;
      case Op::Fmul: return 4;
      case Op::Fdiv: return 12;
      case Op::Fsqrt: return 16;
      default: return 1;
    }
}

AluResult
evalOp(const StaticInst &si, Addr pc, std::uint64_t a, std::uint64_t b)
{
    AluResult r;
    const auto sa = static_cast<std::int64_t>(a);
    const auto sb = static_cast<std::int64_t>(b);
    const auto imm = si.imm;
    const Addr next_pc = pc + instBytes;

    switch (si.op) {
      case Op::Nop:
      case Op::Halt:
      case Op::MemBar:
      case Op::Iret:      // redirect handled at the commit stage
        break;

      case Op::Add:   r.value = a + b; break;
      case Op::Sub:   r.value = a - b; break;
      case Op::Mul:   r.value = a * b; break;
      case Op::Div:   r.value = sb ? static_cast<std::uint64_t>(sa / sb)
                                   : ~std::uint64_t{0}; break;
      case Op::AddI:  r.value = a + static_cast<std::uint64_t>(imm); break;
      case Op::MulI:  r.value = a * static_cast<std::uint64_t>(imm); break;
      case Op::Slt:   r.value = sa < sb; break;
      case Op::Sltu:  r.value = a < b; break;
      case Op::SltI:  r.value = sa < imm; break;
      case Op::Cmpeq: r.value = a == b; break;

      case Op::And:   r.value = a & b; break;
      case Op::Or:    r.value = a | b; break;
      case Op::Xor:   r.value = a ^ b; break;
      case Op::AndI:  r.value = a & static_cast<std::uint64_t>(imm); break;
      case Op::OrI:   r.value = a | static_cast<std::uint64_t>(imm); break;
      case Op::XorI:  r.value = a ^ static_cast<std::uint64_t>(imm); break;
      case Op::Sll:   r.value = a << (b & 63); break;
      case Op::Srl:   r.value = a >> (b & 63); break;
      case Op::Sra:   r.value = static_cast<std::uint64_t>(sa >> (b & 63));
                      break;
      case Op::SllI:  r.value = a << (imm & 63); break;
      case Op::SrlI:  r.value = a >> (imm & 63); break;

      case Op::Beq:
        r.taken = (a == b);
        r.target = next_pc + static_cast<std::uint64_t>(imm);
        break;
      case Op::Bne:
        r.taken = (a != b);
        r.target = next_pc + static_cast<std::uint64_t>(imm);
        break;
      case Op::Blt:
        r.taken = (sa < sb);
        r.target = next_pc + static_cast<std::uint64_t>(imm);
        break;
      case Op::Bge:
        r.taken = (sa >= sb);
        r.target = next_pc + static_cast<std::uint64_t>(imm);
        break;
      case Op::Br:
        r.taken = true;
        r.target = next_pc + static_cast<std::uint64_t>(imm);
        break;
      case Op::Jmp:
      case Op::Ret:
        r.taken = true;
        r.target = a & ~Addr{3};
        break;
      case Op::Call:
        r.taken = true;
        r.target = next_pc + static_cast<std::uint64_t>(imm);
        r.value = next_pc;
        break;
      case Op::CallR:
        r.taken = true;
        r.target = a & ~Addr{3};
        r.value = next_pc;
        break;

      case Op::Fadd:  r.value = asBits(asDouble(a) + asDouble(b)); break;
      case Op::Fsub:  r.value = asBits(asDouble(a) - asDouble(b)); break;
      case Op::Fmul:  r.value = asBits(asDouble(a) * asDouble(b)); break;
      case Op::Fdiv:  r.value = asBits(asDouble(a) / asDouble(b)); break;
      case Op::Fsqrt: r.value = asBits(std::sqrt(std::fabs(asDouble(a))));
                      break;
      case Op::Fneg:  r.value = asBits(-asDouble(a)); break;
      case Op::Fcmplt: r.value = asDouble(a) < asDouble(b); break;
      case Op::Fcmpeq: r.value = asDouble(a) == asDouble(b); break;
      case Op::CvtIF: r.value = asBits(static_cast<double>(sa)); break;
      case Op::CvtFI:
        r.value = static_cast<std::uint64_t>(
            static_cast<std::int64_t>(asDouble(a)));
        break;

      case Op::Ldb: case Op::Ldh: case Op::Ldw: case Op::Ldq:
      case Op::Stb: case Op::Sth: case Op::Stw: case Op::Stq:
      case Op::Fld: case Op::Fst:
        panic("evalOp called on memory instruction %s",
              opName(si.op));

      default:
        panic("evalOp: unknown opcode %d", static_cast<int>(si.op));
    }
    return r;
}

const char *
opName(Op op)
{
    switch (op) {
      case Op::Nop: return "nop";
      case Op::Halt: return "halt";
      case Op::Add: return "add";
      case Op::Sub: return "sub";
      case Op::Mul: return "mul";
      case Op::Div: return "div";
      case Op::AddI: return "addi";
      case Op::MulI: return "muli";
      case Op::Slt: return "slt";
      case Op::Sltu: return "sltu";
      case Op::SltI: return "slti";
      case Op::Cmpeq: return "cmpeq";
      case Op::And: return "and";
      case Op::Or: return "or";
      case Op::Xor: return "xor";
      case Op::AndI: return "andi";
      case Op::OrI: return "ori";
      case Op::XorI: return "xori";
      case Op::Sll: return "sll";
      case Op::Srl: return "srl";
      case Op::Sra: return "sra";
      case Op::SllI: return "slli";
      case Op::SrlI: return "srli";
      case Op::Ldb: return "ldb";
      case Op::Ldh: return "ldh";
      case Op::Ldw: return "ldw";
      case Op::Ldq: return "ldq";
      case Op::Stb: return "stb";
      case Op::Sth: return "sth";
      case Op::Stw: return "stw";
      case Op::Stq: return "stq";
      case Op::Beq: return "beq";
      case Op::Bne: return "bne";
      case Op::Blt: return "blt";
      case Op::Bge: return "bge";
      case Op::Br: return "br";
      case Op::Jmp: return "jmp";
      case Op::Call: return "call";
      case Op::CallR: return "callr";
      case Op::Ret: return "ret";
      case Op::MemBar: return "membar";
      case Op::LdUnc: return "ldunc";
      case Op::StUnc: return "stunc";
      case Op::Iret: return "iret";
      case Op::Fadd: return "fadd";
      case Op::Fsub: return "fsub";
      case Op::Fmul: return "fmul";
      case Op::Fdiv: return "fdiv";
      case Op::Fsqrt: return "fsqrt";
      case Op::Fneg: return "fneg";
      case Op::Fcmplt: return "fcmplt";
      case Op::Fcmpeq: return "fcmpeq";
      case Op::CvtIF: return "cvtif";
      case Op::CvtFI: return "cvtfi";
      case Op::Fld: return "fld";
      case Op::Fst: return "fst";
      default: return "???";
    }
}

std::string
StaticInst::disassemble() const
{
    std::ostringstream os;
    os << opName(op);
    auto reg_name = [](RegIndex r) -> std::string {
        if (r == noReg)
            return "-";
        if (r < numIntArchRegs)
            return "r" + std::to_string(r);
        return "f" + std::to_string(r - numIntArchRegs);
    };
    if (rd != noReg)
        os << ' ' << reg_name(rd);
    if (ra != noReg)
        os << ' ' << reg_name(ra);
    if (rb != noReg)
        os << ' ' << reg_name(rb);
    if (imm != 0 || isMemRef() || isCondBranch() || op == Op::Br ||
        op == Op::Call) {
        os << " #" << imm;
    }
    return os.str();
}

} // namespace rmt
