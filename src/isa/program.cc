#include "isa/program.hh"

#include "common/logging.hh"

namespace rmt
{

ProgramBuilder &
ProgramBuilder::label(const std::string &name)
{
    auto [it, inserted] = labels.emplace(name, insts.size());
    if (!inserted)
        fatal("ProgramBuilder(%s): duplicate label '%s'", _name.c_str(),
              name.c_str());
    (void)it;
    return *this;
}

Addr
ProgramBuilder::here() const
{
    return Program::textBase + insts.size() * instBytes;
}

ProgramBuilder &
ProgramBuilder::emit(Op op, RegIndex rd, RegIndex ra, RegIndex rb,
                     std::int64_t imm)
{
    insts.push_back(StaticInst{op, rd, ra, rb, imm});
    return *this;
}

ProgramBuilder &
ProgramBuilder::emitBranch(Op op, RegIndex rd, RegIndex ra, RegIndex rb,
                           const std::string &lbl)
{
    fixups.push_back(Fixup{insts.size(), lbl});
    return emit(op, rd, ra, rb, 0);
}

Program
ProgramBuilder::build()
{
    for (const auto &fixup : fixups) {
        auto it = labels.find(fixup.label);
        if (it == labels.end())
            fatal("ProgramBuilder(%s): undefined label '%s'", _name.c_str(),
                  fixup.label.c_str());
        // Displacement is relative to the instruction after the branch.
        const auto target = static_cast<std::int64_t>(it->second);
        const auto after = static_cast<std::int64_t>(fixup.index + 1);
        insts[fixup.index].imm = (target - after) * instBytes;
    }
    fixups.clear();
    return Program(insts, _name);
}

} // namespace rmt
