/**
 * @file
 * The rmtsim instruction set.
 *
 * A compact 64-bit RISC ISA standing in for the paper's Alpha: 32 integer
 * + 32 floating-point architectural registers per thread, 4-byte
 * instructions, loads/stores of 1/2/4/8 bytes, conditional branches,
 * direct and indirect jumps, call/ret, and a memory barrier.  Integer
 * register 0 is hardwired to zero.
 *
 * Functional semantics live in evalOp()/effectiveAddr() so the in-order
 * reference model (ArchState) and the out-of-order core share one
 * implementation.
 */

#ifndef RMTSIM_ISA_ISA_HH
#define RMTSIM_ISA_ISA_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace rmt
{

/** Opcodes. */
enum class Op : std::uint8_t
{
    Nop,
    Halt,

    // Integer arithmetic (register-register unless suffixed I).
    Add, Sub, Mul, Div, AddI, MulI,
    Slt, Sltu, SltI, Cmpeq,

    // Logic and shifts.
    And, Or, Xor, AndI, OrI, XorI, Sll, Srl, Sra, SllI, SrlI,

    // Loads and stores (sign = unsigned; sizes 1/2/4/8 bytes).
    Ldb, Ldh, Ldw, Ldq,
    Stb, Sth, Stw, Stq,

    // Control flow.
    Beq, Bne, Blt, Bge,     // conditional, pc-relative
    Br,                     // unconditional, pc-relative
    Jmp,                    // indirect through ra
    Call,                   // pc-relative, writes return address to rd
    CallR,                  // indirect call through ra, link in rd
    Ret,                    // indirect through ra (return-address-stack hint)

    // Memory barrier: retires only once the store queue has drained.
    MemBar,

    // Uncached (device) accesses: non-speculative, performed in order
    // at the head of the machine; 8 bytes.  The paper defers their
    // replication/comparison mechanisms; we implement them (Sec. 2.1-2.2).
    LdUnc, StUnc,

    // Return from interrupt: serializing; redirects fetch to the
    // interrupt return pc captured at interrupt entry.
    Iret,

    // Floating point (operands are IEEE-754 doubles in fp registers).
    Fadd, Fsub, Fmul, Fdiv, Fsqrt, Fneg,
    Fcmplt, Fcmpeq,         // fp compare, integer 0/1 result in rd
    CvtIF, CvtFI,           // int<->fp conversion
    Fld, Fst,               // 8-byte fp load/store

    NumOps
};

/** Functional-unit classes (paper Table 1: 8 int, 8 logic, 4 mem, 4 fp). */
enum class FuClass : std::uint8_t
{
    IntAlu,     // integer add/sub/mul/div/compare/branch
    Logic,      // and/or/xor/shift
    Mem,        // loads, stores, memory barriers
    Fp,         // floating point
    None        // nop/halt consume no functional unit
};

/** Register-name helpers.  Integer regs are 0..31, fp regs 32..63. */
constexpr RegIndex noReg = 255;
constexpr RegIndex
intReg(unsigned n)
{
    return static_cast<RegIndex>(n);
}
constexpr RegIndex
fpReg(unsigned n)
{
    return static_cast<RegIndex>(numIntArchRegs + n);
}
/** Conventional link register (integer r31). */
constexpr RegIndex linkReg = intReg(31);
/** Conventional stack pointer (integer r30). */
constexpr RegIndex spReg = intReg(30);

/**
 * A decoded static instruction.  Programs are stored pre-decoded; the
 * "encoding" is this struct, and instruction memory is addressed at
 * 4-byte granularity.
 */
struct StaticInst
{
    Op op = Op::Nop;
    RegIndex rd = noReg;    ///< destination register (noReg if none)
    RegIndex ra = noReg;    ///< first source
    RegIndex rb = noReg;    ///< second source (stores: data register)
    std::int64_t imm = 0;   ///< immediate / byte displacement

    bool isNop() const { return op == Op::Nop; }
    bool isHalt() const { return op == Op::Halt; }

    bool
    isLoad() const
    {
        return op == Op::Ldb || op == Op::Ldh || op == Op::Ldw ||
               op == Op::Ldq || op == Op::Fld;
    }

    bool
    isStore() const
    {
        return op == Op::Stb || op == Op::Sth || op == Op::Stw ||
               op == Op::Stq || op == Op::Fst;
    }

    bool isMemBar() const { return op == Op::MemBar; }
    bool isMemRef() const { return isLoad() || isStore(); }

    /** Uncached (device) access: bypasses caches and the LSQ, performs
     *  non-speculatively at the head of the machine. */
    bool isUncached() const { return op == Op::LdUnc || op == Op::StUnc; }
    bool isUncachedLoad() const { return op == Op::LdUnc; }
    bool isUncachedStore() const { return op == Op::StUnc; }
    bool isIret() const { return op == Op::Iret; }

    bool
    isCondBranch() const
    {
        return op == Op::Beq || op == Op::Bne || op == Op::Blt ||
               op == Op::Bge;
    }

    bool isCall() const { return op == Op::Call || op == Op::CallR; }
    bool isRet() const { return op == Op::Ret; }

    bool
    isIndirect() const
    {
        return op == Op::Jmp || op == Op::CallR || op == Op::Ret;
    }

    bool
    isControl() const
    {
        return isCondBranch() || op == Op::Br || isIndirect() || isCall();
    }

    /** Bytes moved by a memory reference (0 for non-memory ops). */
    unsigned memSize() const;

    /** Functional-unit class this instruction issues to. */
    FuClass fuClass() const;

    /** Execution latency in cycles once issued (memory ops excluded). */
    unsigned latency() const;

    /** Human-readable disassembly. */
    std::string disassemble() const;
};

/** Result of evaluating a non-memory instruction. */
struct AluResult
{
    std::uint64_t value = 0;    ///< value written to rd (if any)
    bool taken = false;         ///< control flow: branch taken?
    Addr target = 0;            ///< control flow: target when taken
};

/**
 * Evaluate the functional semantics of a non-memory instruction.
 *
 * @param si the instruction
 * @param pc its address
 * @param a  value of source ra (0 if unused)
 * @param b  value of source rb (0 if unused)
 */
AluResult evalOp(const StaticInst &si, Addr pc, std::uint64_t a,
                 std::uint64_t b);

/** Effective address of a memory reference: ra + imm. */
constexpr Addr
effectiveAddr(const StaticInst &si, std::uint64_t a)
{
    return static_cast<Addr>(a + static_cast<std::uint64_t>(si.imm));
}

/** Name of an opcode, for disassembly and stats. */
const char *opName(Op op);

} // namespace rmt

#endif // RMTSIM_ISA_ISA_HH
