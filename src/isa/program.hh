/**
 * @file
 * Program representation: pre-decoded instruction memory plus a builder
 * with label-based control-flow fixup, and the per-logical-thread flat
 * data memory image.
 */

#ifndef RMTSIM_ISA_PROGRAM_HH
#define RMTSIM_ISA_PROGRAM_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "isa/isa.hh"

namespace rmt
{

/**
 * Read-only instruction memory.  The paper assumes the instruction space
 * is read-only, so both redundant threads always observe identical
 * instruction values; we encode that assumption structurally.
 */
class Program
{
  public:
    /** Text segment base address. */
    static constexpr Addr textBase = 0x1000;

    Program() = default;
    explicit Program(std::vector<StaticInst> insts, std::string name = "")
        : _insts(std::move(insts)), _name(std::move(name))
    {
    }

    /** Entry point (first instruction). */
    Addr entry() const { return textBase; }

    /** Number of instructions. */
    std::size_t size() const { return _insts.size(); }

    const std::string &name() const { return _name; }

    /** True if @p pc addresses a real instruction. */
    bool
    contains(Addr pc) const
    {
        return pc >= textBase && (pc & 3) == 0 &&
               (pc - textBase) / instBytes < _insts.size();
    }

    /**
     * Fetch the instruction at @p pc.  Out-of-range addresses (reachable
     * only on a wrong path or after an undetected fault) decode as Halt,
     * which has no effect unless it commits.
     */
    const StaticInst &
    fetch(Addr pc) const
    {
        static const StaticInst halt_inst{Op::Halt, noReg, noReg, noReg, 0};
        if (!contains(pc))
            return halt_inst;
        return _insts[(pc - textBase) / instBytes];
    }

    const std::vector<StaticInst> &insts() const { return _insts; }

  private:
    std::vector<StaticInst> _insts;
    std::string _name;
};

/**
 * Builder for Program with symbolic labels.  Control-flow immediates are
 * byte displacements relative to the instruction after the branch;
 * label() / branch-to-label calls resolve them at build() time, in
 * either order.
 */
class ProgramBuilder
{
  public:
    explicit ProgramBuilder(std::string name = "") : _name(std::move(name))
    {
    }

    /** Define a label at the current position. */
    ProgramBuilder &label(const std::string &name);

    /** Address the next emitted instruction will occupy. */
    Addr here() const;

    // --- Raw emit -------------------------------------------------------
    ProgramBuilder &emit(Op op, RegIndex rd = noReg, RegIndex ra = noReg,
                         RegIndex rb = noReg, std::int64_t imm = 0);

    // --- Integer --------------------------------------------------------
    ProgramBuilder &nop() { return emit(Op::Nop); }
    ProgramBuilder &halt() { return emit(Op::Halt); }
    ProgramBuilder &add(RegIndex d, RegIndex a, RegIndex b)
    { return emit(Op::Add, d, a, b); }
    ProgramBuilder &sub(RegIndex d, RegIndex a, RegIndex b)
    { return emit(Op::Sub, d, a, b); }
    ProgramBuilder &mul(RegIndex d, RegIndex a, RegIndex b)
    { return emit(Op::Mul, d, a, b); }
    ProgramBuilder &div(RegIndex d, RegIndex a, RegIndex b)
    { return emit(Op::Div, d, a, b); }
    ProgramBuilder &addi(RegIndex d, RegIndex a, std::int64_t imm)
    { return emit(Op::AddI, d, a, noReg, imm); }
    ProgramBuilder &muli(RegIndex d, RegIndex a, std::int64_t imm)
    { return emit(Op::MulI, d, a, noReg, imm); }
    /** li: load immediate via addi from r0. */
    ProgramBuilder &li(RegIndex d, std::int64_t imm)
    { return emit(Op::AddI, d, intReg(0), noReg, imm); }
    ProgramBuilder &mov(RegIndex d, RegIndex a)
    { return emit(Op::AddI, d, a, noReg, 0); }
    ProgramBuilder &slt(RegIndex d, RegIndex a, RegIndex b)
    { return emit(Op::Slt, d, a, b); }
    ProgramBuilder &sltu(RegIndex d, RegIndex a, RegIndex b)
    { return emit(Op::Sltu, d, a, b); }
    ProgramBuilder &slti(RegIndex d, RegIndex a, std::int64_t imm)
    { return emit(Op::SltI, d, a, noReg, imm); }
    ProgramBuilder &cmpeq(RegIndex d, RegIndex a, RegIndex b)
    { return emit(Op::Cmpeq, d, a, b); }

    // --- Logic ----------------------------------------------------------
    ProgramBuilder &and_(RegIndex d, RegIndex a, RegIndex b)
    { return emit(Op::And, d, a, b); }
    ProgramBuilder &or_(RegIndex d, RegIndex a, RegIndex b)
    { return emit(Op::Or, d, a, b); }
    ProgramBuilder &xor_(RegIndex d, RegIndex a, RegIndex b)
    { return emit(Op::Xor, d, a, b); }
    ProgramBuilder &andi(RegIndex d, RegIndex a, std::int64_t imm)
    { return emit(Op::AndI, d, a, noReg, imm); }
    ProgramBuilder &ori(RegIndex d, RegIndex a, std::int64_t imm)
    { return emit(Op::OrI, d, a, noReg, imm); }
    ProgramBuilder &xori(RegIndex d, RegIndex a, std::int64_t imm)
    { return emit(Op::XorI, d, a, noReg, imm); }
    ProgramBuilder &sll(RegIndex d, RegIndex a, RegIndex b)
    { return emit(Op::Sll, d, a, b); }
    ProgramBuilder &srl(RegIndex d, RegIndex a, RegIndex b)
    { return emit(Op::Srl, d, a, b); }
    ProgramBuilder &sra(RegIndex d, RegIndex a, RegIndex b)
    { return emit(Op::Sra, d, a, b); }
    ProgramBuilder &slli(RegIndex d, RegIndex a, std::int64_t imm)
    { return emit(Op::SllI, d, a, noReg, imm); }
    ProgramBuilder &srli(RegIndex d, RegIndex a, std::int64_t imm)
    { return emit(Op::SrlI, d, a, noReg, imm); }

    // --- Memory ---------------------------------------------------------
    ProgramBuilder &ldb(RegIndex d, RegIndex a, std::int64_t off)
    { return emit(Op::Ldb, d, a, noReg, off); }
    ProgramBuilder &ldh(RegIndex d, RegIndex a, std::int64_t off)
    { return emit(Op::Ldh, d, a, noReg, off); }
    ProgramBuilder &ldw(RegIndex d, RegIndex a, std::int64_t off)
    { return emit(Op::Ldw, d, a, noReg, off); }
    ProgramBuilder &ldq(RegIndex d, RegIndex a, std::int64_t off)
    { return emit(Op::Ldq, d, a, noReg, off); }
    ProgramBuilder &stb(RegIndex v, RegIndex a, std::int64_t off)
    { return emit(Op::Stb, noReg, a, v, off); }
    ProgramBuilder &sth(RegIndex v, RegIndex a, std::int64_t off)
    { return emit(Op::Sth, noReg, a, v, off); }
    ProgramBuilder &stw(RegIndex v, RegIndex a, std::int64_t off)
    { return emit(Op::Stw, noReg, a, v, off); }
    ProgramBuilder &stq(RegIndex v, RegIndex a, std::int64_t off)
    { return emit(Op::Stq, noReg, a, v, off); }
    ProgramBuilder &fld(RegIndex d, RegIndex a, std::int64_t off)
    { return emit(Op::Fld, d, a, noReg, off); }
    ProgramBuilder &fst(RegIndex v, RegIndex a, std::int64_t off)
    { return emit(Op::Fst, noReg, a, v, off); }
    ProgramBuilder &membar() { return emit(Op::MemBar); }
    ProgramBuilder &ldunc(RegIndex d, RegIndex a, std::int64_t off)
    { return emit(Op::LdUnc, d, a, noReg, off); }
    ProgramBuilder &stunc(RegIndex v, RegIndex a, std::int64_t off)
    { return emit(Op::StUnc, noReg, a, v, off); }
    ProgramBuilder &iret() { return emit(Op::Iret); }

    // --- Control flow (label-resolved) -----------------------------------
    ProgramBuilder &beq(RegIndex a, RegIndex b, const std::string &lbl)
    { return emitBranch(Op::Beq, noReg, a, b, lbl); }
    ProgramBuilder &bne(RegIndex a, RegIndex b, const std::string &lbl)
    { return emitBranch(Op::Bne, noReg, a, b, lbl); }
    ProgramBuilder &blt(RegIndex a, RegIndex b, const std::string &lbl)
    { return emitBranch(Op::Blt, noReg, a, b, lbl); }
    ProgramBuilder &bge(RegIndex a, RegIndex b, const std::string &lbl)
    { return emitBranch(Op::Bge, noReg, a, b, lbl); }
    ProgramBuilder &br(const std::string &lbl)
    { return emitBranch(Op::Br, noReg, noReg, noReg, lbl); }
    ProgramBuilder &call(const std::string &lbl, RegIndex link = linkReg)
    { return emitBranch(Op::Call, link, noReg, noReg, lbl); }
    ProgramBuilder &callr(RegIndex a, RegIndex link = linkReg)
    { return emit(Op::CallR, link, a); }
    ProgramBuilder &jmp(RegIndex a) { return emit(Op::Jmp, noReg, a); }
    ProgramBuilder &ret(RegIndex a = linkReg)
    { return emit(Op::Ret, noReg, a); }

    // --- Floating point ---------------------------------------------------
    ProgramBuilder &fadd(RegIndex d, RegIndex a, RegIndex b)
    { return emit(Op::Fadd, d, a, b); }
    ProgramBuilder &fsub(RegIndex d, RegIndex a, RegIndex b)
    { return emit(Op::Fsub, d, a, b); }
    ProgramBuilder &fmul(RegIndex d, RegIndex a, RegIndex b)
    { return emit(Op::Fmul, d, a, b); }
    ProgramBuilder &fdiv(RegIndex d, RegIndex a, RegIndex b)
    { return emit(Op::Fdiv, d, a, b); }
    ProgramBuilder &fsqrt(RegIndex d, RegIndex a)
    { return emit(Op::Fsqrt, d, a); }
    ProgramBuilder &fneg(RegIndex d, RegIndex a)
    { return emit(Op::Fneg, d, a); }
    ProgramBuilder &fcmplt(RegIndex d, RegIndex a, RegIndex b)
    { return emit(Op::Fcmplt, d, a, b); }
    ProgramBuilder &fcmpeq(RegIndex d, RegIndex a, RegIndex b)
    { return emit(Op::Fcmpeq, d, a, b); }
    ProgramBuilder &cvtif(RegIndex d, RegIndex a)
    { return emit(Op::CvtIF, d, a); }
    ProgramBuilder &cvtfi(RegIndex d, RegIndex a)
    { return emit(Op::CvtFI, d, a); }

    /** Resolve all labels and produce the Program.  Fatal on undefined
     *  label references or duplicate labels. */
    Program build();

    /** Instructions emitted so far. */
    std::size_t size() const { return insts.size(); }

  private:
    ProgramBuilder &emitBranch(Op op, RegIndex rd, RegIndex ra, RegIndex rb,
                               const std::string &lbl);

    struct Fixup
    {
        std::size_t index;      ///< instruction needing its imm patched
        std::string label;
    };

    std::string _name;
    std::vector<StaticInst> insts;
    std::unordered_map<std::string, std::size_t> labels;
    std::vector<Fixup> fixups;
};

/**
 * Flat per-logical-thread data memory.  Out-of-bounds accesses (possible
 * on wrong paths and after injected faults) read as zero and drop
 * writes — they must never crash the simulator.
 */
class DataMemory
{
  public:
    explicit DataMemory(std::size_t size_bytes)
        : mem(size_bytes, 0)
    {
    }

    std::size_t size() const { return mem.size(); }

    bool
    inBounds(Addr addr, unsigned bytes) const
    {
        return addr + bytes <= mem.size() && addr + bytes >= addr;
    }

    /** Little-endian read of @p bytes (1/2/4/8). */
    std::uint64_t
    read(Addr addr, unsigned bytes) const
    {
        if (!inBounds(addr, bytes))
            return 0;
        std::uint64_t v = 0;
        for (unsigned i = 0; i < bytes; ++i)
            v |= std::uint64_t{mem[addr + i]} << (8 * i);
        return v;
    }

    /** Little-endian write of @p bytes (1/2/4/8). */
    void
    write(Addr addr, unsigned bytes, std::uint64_t value)
    {
        if (!inBounds(addr, bytes))
            return;
        for (unsigned i = 0; i < bytes; ++i)
            mem[addr + i] = static_cast<std::uint8_t>(value >> (8 * i));
    }

    /** Raw access for workload initialisation. */
    std::uint8_t *data() { return mem.data(); }
    const std::uint8_t *data() const { return mem.data(); }

  private:
    std::vector<std::uint8_t> mem;
};

} // namespace rmt

#endif // RMTSIM_ISA_PROGRAM_HH
