/**
 * @file
 * In-order architectural reference model.
 *
 * Executes one instruction per step() against a Program and DataMemory.
 * Used three ways: as the golden model in unit tests, as the co-simulation
 * checker behind the out-of-order core's commit stage, and to fast-forward
 * workloads past their initialisation phase.
 */

#ifndef RMTSIM_ISA_ARCH_STATE_HH
#define RMTSIM_ISA_ARCH_STATE_HH

#include <array>
#include <cstdint>

#include "isa/program.hh"

namespace rmt
{

/** What one architectural step did (for cosim comparison). */
struct StepResult
{
    Addr pc = 0;                ///< pc of the executed instruction
    Addr next_pc = 0;           ///< pc after the instruction
    RegIndex rd = noReg;        ///< destination register, if any
    std::uint64_t value = 0;    ///< value written to rd
    bool is_store = false;
    Addr store_addr = 0;
    std::uint64_t store_data = 0;
    unsigned store_size = 0;
    bool halted = false;
};

class ArchState
{
  public:
    ArchState(const Program &program, DataMemory &memory);

    /** Execute one instruction; no-op once halted. */
    StepResult step();

    /** Run at most @p max_insts instructions or until halt;
     *  @return instructions actually executed. */
    std::uint64_t run(std::uint64_t max_insts);

    bool halted() const { return _halted; }
    Addr pc() const { return _pc; }
    void setPc(Addr pc) { _pc = pc; }

    std::uint64_t
    readReg(RegIndex r) const
    {
        return r == noReg || r == 0 ? 0 : regs[r];
    }

    void
    writeReg(RegIndex r, std::uint64_t v)
    {
        if (r != noReg && r != 0)
            regs[r] = v;
    }

    std::uint64_t instsExecuted() const { return _insts; }

    const Program &program() const { return _program; }
    DataMemory &memory() { return _memory; }

  private:
    const Program &_program;
    DataMemory &_memory;
    std::array<std::uint64_t, numArchRegs> regs{};
    Addr _pc;
    bool _halted = false;
    std::uint64_t _insts = 0;
};

} // namespace rmt

#endif // RMTSIM_ISA_ARCH_STATE_HH
