/**
 * @file
 * Store-sets memory dependence predictor (Chrysos & Emer; paper Table 1:
 * 4K-entry SSIT).
 *
 * A load that once violated ordering against a store is placed in that
 * store's "store set"; subsequently the load waits for the last fetched
 * store of its set.  The SSIT maps instruction PCs to store-set ids; the
 * LFST maps a set id to the sequence number of the youngest in-flight
 * store in the set.
 */

#ifndef RMTSIM_PREDICTOR_STORE_SETS_HH
#define RMTSIM_PREDICTOR_STORE_SETS_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "ckpt/snapshot.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace rmt
{

struct StoreSetsParams
{
    unsigned ssit_entries = 4096;
    unsigned lfst_entries = 256;
    /** Cyclic SSIT clearing interval in cycles (Chrysos & Emer): stale
     *  dependences decay so one rare collision does not serialise a
     *  load pc against a store pc forever.  0 disables clearing. */
    Cycle clear_interval = 30000;
};

class StoreSets : public Snapshottable
{
  public:
    static constexpr std::uint32_t invalidSet = ~std::uint32_t{0};
    static constexpr InstSeq noStore = ~InstSeq{0};

    explicit StoreSets(const StoreSetsParams &params);

    /**
     * At rename, a load asks which in-flight store (by sequence number)
     * it must wait for.  @return noStore if unconstrained.
     */
    InstSeq loadDependence(ThreadId tid, Addr load_pc);

    /** At rename, a store advertises itself as last-fetched of its set. */
    void storeFetched(ThreadId tid, Addr store_pc, InstSeq seq);

    /** When a store issues/completes, clear it from the LFST. */
    void storeCompleted(ThreadId tid, Addr store_pc, InstSeq seq);

    /**
     * On a detected ordering violation, merge the load and store into
     * one store set (assign both PCs the same set id).
     */
    void recordViolation(ThreadId tid, Addr load_pc, Addr store_pc);

    /** Clear a thread's LFST entries (on squash). */
    void squashThread(ThreadId tid);

    /** Cyclic clearing: call once per cycle. */
    void tick(Cycle now);

    StatGroup &stats() { return statGroup; }

    /** SSIT, LFST (stale in-flight entries included: they affect
     *  loadDependence timing), set allocator, clearing phase. */
    void saveState(Serializer &s) const override;
    void loadState(Deserializer &d) override;

  private:
    std::size_t ssitIndex(ThreadId tid, Addr pc) const;

    struct LfstEntry
    {
        InstSeq seq = noStore;
        ThreadId tid = invalidThread;
    };

    std::vector<std::uint32_t> ssit;    ///< pc -> store set id
    std::vector<LfstEntry> lfst;        ///< set id -> youngest store
    std::uint32_t nextSetId = 0;
    Cycle clearInterval;
    Cycle lastClear = 0;

    StatGroup statGroup;
    Counter statViolations;
    Counter statDependencesEnforced;
};

} // namespace rmt

#endif // RMTSIM_PREDICTOR_STORE_SETS_HH
