#include "predictor/store_sets.hh"

#include "common/bits.hh"
#include "common/logging.hh"

namespace rmt
{

StoreSets::StoreSets(const StoreSetsParams &params)
    : ssit(params.ssit_entries, invalidSet),
      lfst(params.lfst_entries),
      clearInterval(params.clear_interval),
      statGroup("storesets"),
      statViolations(statGroup, "violations",
                     "memory-order violations recorded"),
      statDependencesEnforced(statGroup, "dependences",
                              "load-store waits imposed")
{
    if (!isPowerOf2(params.ssit_entries))
        fatal("store sets: SSIT entries must be a power of two");
}

std::size_t
StoreSets::ssitIndex(ThreadId tid, Addr pc) const
{
    return ((pc >> 2) ^ (std::uint64_t{tid} << 10)) & (ssit.size() - 1);
}

InstSeq
StoreSets::loadDependence(ThreadId tid, Addr load_pc)
{
    const std::uint32_t set = ssit[ssitIndex(tid, load_pc)];
    if (set == invalidSet)
        return noStore;
    const LfstEntry &e = lfst[set % lfst.size()];
    if (e.seq == noStore || e.tid != tid)
        return noStore;
    statDependencesEnforced += 1;
    return e.seq;
}

void
StoreSets::storeFetched(ThreadId tid, Addr store_pc, InstSeq seq)
{
    const std::uint32_t set = ssit[ssitIndex(tid, store_pc)];
    if (set == invalidSet)
        return;
    LfstEntry &e = lfst[set % lfst.size()];
    e.seq = seq;
    e.tid = tid;
}

void
StoreSets::storeCompleted(ThreadId tid, Addr store_pc, InstSeq seq)
{
    const std::uint32_t set = ssit[ssitIndex(tid, store_pc)];
    if (set == invalidSet)
        return;
    LfstEntry &e = lfst[set % lfst.size()];
    if (e.tid == tid && e.seq == seq)
        e.seq = noStore;
}

void
StoreSets::recordViolation(ThreadId tid, Addr load_pc, Addr store_pc)
{
    ++statViolations;
    auto &load_set = ssit[ssitIndex(tid, load_pc)];
    auto &store_set = ssit[ssitIndex(tid, store_pc)];

    if (load_set == invalidSet && store_set == invalidSet) {
        load_set = store_set = nextSetId++;
    } else if (load_set == invalidSet) {
        load_set = store_set;
    } else if (store_set == invalidSet) {
        store_set = load_set;
    } else {
        // Merge: adopt the smaller id (deterministic convergence).
        const std::uint32_t winner = std::min(load_set, store_set);
        load_set = store_set = winner;
    }
}

void
StoreSets::tick(Cycle now)
{
    if (!clearInterval || now < lastClear + clearInterval)
        return;
    lastClear = now;
    for (auto &set : ssit)
        set = invalidSet;
    for (auto &e : lfst)
        e.seq = noStore;
}

void
StoreSets::squashThread(ThreadId tid)
{
    for (auto &e : lfst) {
        if (e.tid == tid)
            e.seq = noStore;
    }
}

void
StoreSets::saveState(Serializer &s) const
{
    s.u32(static_cast<std::uint32_t>(ssit.size()));
    for (const std::uint32_t set : ssit)
        s.u32(set);
    s.u32(static_cast<std::uint32_t>(lfst.size()));
    for (const LfstEntry &e : lfst) {
        s.u64(e.seq);
        s.u8(static_cast<std::uint8_t>(e.tid));
    }
    s.u32(nextSetId);
    s.u64(lastClear);
}

void
StoreSets::loadState(Deserializer &d)
{
    if (d.u32() != ssit.size())
        throw SnapshotError("store sets: SSIT size mismatch");
    for (std::uint32_t &set : ssit)
        set = d.u32();
    if (d.u32() != lfst.size())
        throw SnapshotError("store sets: LFST size mismatch");
    for (LfstEntry &e : lfst) {
        e.seq = d.u64();
        e.tid = static_cast<ThreadId>(d.u8());
    }
    nextSetId = d.u32();
    lastClear = d.u64();
}

} // namespace rmt
