/**
 * @file
 * Per-thread return address stack with checkpoint/restore, plus a small
 * tagged indirect-jump target predictor.  Both are consulted in IBOX
 * stage 4 to verify line predictions (paper Section 3.1).
 */

#ifndef RMTSIM_PREDICTOR_RAS_HH
#define RMTSIM_PREDICTOR_RAS_HH

#include <array>
#include <cstdint>
#include <vector>

#include "ckpt/snapshot.hh"
#include "common/types.hh"

namespace rmt
{

/** Return address stack for one hardware thread. */
class ReturnAddressStack
{
  public:
    explicit ReturnAddressStack(unsigned depth = 16)
        : stack(depth, 0)
    {
    }

    /** Checkpoint: (top-of-stack pointer, value under it). */
    struct Snapshot
    {
        unsigned tos = 0;
        Addr top_value = 0;
    };

    Snapshot
    snapshot() const
    {
        return Snapshot{tos, stack[tos % stack.size()]};
    }

    void
    restore(const Snapshot &snap)
    {
        tos = snap.tos;
        stack[tos % stack.size()] = snap.top_value;
    }

    void
    push(Addr ret_addr)
    {
        ++tos;
        stack[tos % stack.size()] = ret_addr;
    }

    Addr
    pop()
    {
        const Addr top = stack[tos % stack.size()];
        --tos;
        return top;
    }

    Addr peek() const { return stack[tos % stack.size()]; }

    void
    saveState(Serializer &s) const
    {
        s.u32(static_cast<std::uint32_t>(stack.size()));
        for (const Addr a : stack)
            s.u64(a);
        s.u32(tos);
    }

    void
    loadState(Deserializer &d)
    {
        const std::uint32_t n = d.u32();
        if (n != stack.size())
            throw SnapshotError("return address stack: depth mismatch");
        for (Addr &a : stack)
            a = d.u64();
        tos = d.u32();
    }

  private:
    std::vector<Addr> stack;
    unsigned tos = 0;   ///< wraps modulo depth; underflow is benign
};

/** Tagged, untagged-on-alias indirect target predictor. */
class IndirectPredictor
{
  public:
    explicit IndirectPredictor(unsigned entries = 1024)
        : targets(entries, 0)
    {
    }

    Addr
    predict(ThreadId tid, Addr pc) const
    {
        return targets[index(tid, pc)];
    }

    void
    update(ThreadId tid, Addr pc, Addr target)
    {
        targets[index(tid, pc)] = target;
    }

    void
    saveState(Serializer &s) const
    {
        s.u32(static_cast<std::uint32_t>(targets.size()));
        for (const Addr t : targets)
            s.u64(t);
    }

    void
    loadState(Deserializer &d)
    {
        const std::uint32_t n = d.u32();
        if (n != targets.size())
            throw SnapshotError("indirect predictor: table size mismatch");
        for (Addr &t : targets)
            t = d.u64();
    }

  private:
    std::size_t
    index(ThreadId tid, Addr pc) const
    {
        return ((pc >> 2) ^ (std::uint64_t{tid} << 7)) &
               (targets.size() - 1);
    }

    std::vector<Addr> targets;
};

} // namespace rmt

#endif // RMTSIM_PREDICTOR_RAS_HH
