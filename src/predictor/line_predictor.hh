/**
 * @file
 * Line predictor (paper Table 1: 28K entries, two chunks per cycle).
 *
 * Our base processor's fetch is line-prediction driven, as in the
 * Alpha 21264/21464: the line predictor maps the current fetch chunk to
 * the predicted next chunk address, and the slower branch-path
 * predictors only verify it (retraining + refetch on disagreement).
 * The table is untagged, so aliasing between threads and between
 * branches produces the significant (paper: 14-28%) line-misprediction
 * rates that motivate the SRT line prediction queue.
 */

#ifndef RMTSIM_PREDICTOR_LINE_PREDICTOR_HH
#define RMTSIM_PREDICTOR_LINE_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "ckpt/snapshot.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace rmt
{

struct LinePredictorParams
{
    unsigned entries = 28 * 1024;
};

class LinePredictor : public Snapshottable
{
  public:
    explicit LinePredictor(const LinePredictorParams &params);

    /**
     * Predict the chunk that follows the chunk at @p chunk_addr.
     * Untrained entries fall through to the sequential next chunk.
     */
    Addr predict(ThreadId tid, Addr chunk_addr);

    /** Train with the observed next-chunk address. */
    void train(ThreadId tid, Addr chunk_addr, Addr next_chunk);

    StatGroup &stats() { return statGroup; }
    std::uint64_t lookups() const { return statLookups.value(); }
    std::uint64_t mispredicts() const { return statMispredicts.value(); }
    void noteMispredict() { ++statMispredicts; }

    void saveState(Serializer &s) const override;
    void loadState(Deserializer &d) override;

  private:
    struct Entry
    {
        Addr target = 0;
        bool valid = false;
        bool hysteresis = false;    ///< one wrong outcome tolerated
    };

    std::size_t index(ThreadId tid, Addr chunk_addr) const;

    std::vector<Entry> table;

    StatGroup statGroup;
    Counter statLookups;
    Counter statMispredicts;
};

} // namespace rmt

#endif // RMTSIM_PREDICTOR_LINE_PREDICTOR_HH
