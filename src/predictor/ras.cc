// Header-only implementations; this translation unit exists so the
// component owns a home in the build and future non-inline logic has a
// landing place.
#include "predictor/ras.hh"
