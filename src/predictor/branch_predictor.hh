/**
 * @file
 * Hybrid conditional-branch predictor (paper Table 1: 208 Kbit budget).
 *
 * A gshare component (64K 2-bit counters, 16-bit per-thread global
 * history) and a bimodal component (16K 2-bit counters) arbitrated by a
 * 16K 2-bit chooser: 128 + 32 + 32 = 192 Kbit of state plus history
 * registers, matching the paper's budget class.
 *
 * History is updated speculatively at predict time; in-flight branches
 * snapshot the prior history so a squash can restore it exactly.
 */

#ifndef RMTSIM_PREDICTOR_BRANCH_PREDICTOR_HH
#define RMTSIM_PREDICTOR_BRANCH_PREDICTOR_HH

#include <array>
#include <cstdint>
#include <vector>

#include "ckpt/snapshot.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace rmt
{

struct BranchPredictorParams
{
    unsigned gshare_entries = 64 * 1024;
    unsigned bimodal_entries = 16 * 1024;
    unsigned chooser_entries = 16 * 1024;
    unsigned history_bits = 16;
    unsigned max_threads = 4;
};

class BranchPredictor : public Snapshottable
{
  public:
    explicit BranchPredictor(const BranchPredictorParams &params);

    /** Opaque history snapshot for squash recovery. */
    using HistorySnapshot = std::uint64_t;

    /**
     * Predict the direction of the conditional branch at @p pc and
     * speculatively shift the prediction into @p tid's history.
     */
    bool predict(ThreadId tid, Addr pc);

    /** Current history (snapshot before predict() for recovery). */
    HistorySnapshot history(ThreadId tid) const { return histories[tid]; }

    /** Restore history after squashing younger branches. */
    void restoreHistory(ThreadId tid, HistorySnapshot snap)
    {
        histories[tid] = snap;
    }

    /**
     * Train with the resolved outcome.  @p snap is the history the
     * branch predicted with (its pre-prediction snapshot), so training
     * indexes the same table entries prediction used.
     */
    void update(ThreadId tid, Addr pc, bool taken, HistorySnapshot snap);

    /** Correct the speculative history bit after a misprediction. */
    void
    fixupHistory(ThreadId tid, HistorySnapshot snap, bool taken)
    {
        histories[tid] = ((snap << 1) | (taken ? 1 : 0)) & historyMask;
    }

    StatGroup &stats() { return statGroup; }
    std::uint64_t lookups() const { return statLookups.value(); }
    std::uint64_t mispredicts() const { return statMispredicts.value(); }

    /** Record a resolved misprediction (for statistics). */
    void noteMispredict() { ++statMispredicts; }

    /** All three counter tables plus per-thread histories. */
    void saveState(Serializer &s) const override;
    void loadState(Deserializer &d) override;

  private:
    std::size_t gshareIndex(ThreadId tid, Addr pc,
                            HistorySnapshot hist) const;
    std::size_t bimodalIndex(ThreadId tid, Addr pc) const;
    std::size_t chooserIndex(ThreadId tid, Addr pc) const;

    static bool taken(std::uint8_t ctr) { return ctr >= 2; }
    static void
    train(std::uint8_t &ctr, bool dir)
    {
        if (dir && ctr < 3)
            ++ctr;
        else if (!dir && ctr > 0)
            --ctr;
    }

    std::vector<std::uint8_t> gshare;
    std::vector<std::uint8_t> bimodal;
    std::vector<std::uint8_t> chooser;
    std::vector<HistorySnapshot> histories;
    std::uint64_t historyMask;

    StatGroup statGroup;
    Counter statLookups;
    Counter statMispredicts;
};

} // namespace rmt

#endif // RMTSIM_PREDICTOR_BRANCH_PREDICTOR_HH
