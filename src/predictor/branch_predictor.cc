#include "predictor/branch_predictor.hh"

#include "common/bits.hh"
#include "common/logging.hh"

namespace rmt
{

BranchPredictor::BranchPredictor(const BranchPredictorParams &params)
    : gshare(params.gshare_entries, 1),
      bimodal(params.bimodal_entries, 1),
      chooser(params.chooser_entries, 2),
      histories(params.max_threads, 0),
      historyMask((std::uint64_t{1} << params.history_bits) - 1),
      statGroup("bpred"),
      statLookups(statGroup, "lookups", "conditional branches predicted"),
      statMispredicts(statGroup, "mispredicts",
                      "resolved direction mispredictions")
{
    if (!isPowerOf2(params.gshare_entries) ||
        !isPowerOf2(params.bimodal_entries) ||
        !isPowerOf2(params.chooser_entries)) {
        fatal("branch predictor table sizes must be powers of two");
    }
}

std::size_t
BranchPredictor::gshareIndex(ThreadId tid, Addr pc,
                             HistorySnapshot hist) const
{
    const std::uint64_t pc_bits = (pc >> 2) ^ (std::uint64_t{tid} << 13);
    return (pc_bits ^ hist) & (gshare.size() - 1);
}

std::size_t
BranchPredictor::bimodalIndex(ThreadId tid, Addr pc) const
{
    return ((pc >> 2) ^ (std::uint64_t{tid} << 11)) & (bimodal.size() - 1);
}

std::size_t
BranchPredictor::chooserIndex(ThreadId tid, Addr pc) const
{
    return ((pc >> 2) ^ (std::uint64_t{tid} << 9)) & (chooser.size() - 1);
}

bool
BranchPredictor::predict(ThreadId tid, Addr pc)
{
    ++statLookups;
    const HistorySnapshot hist = histories[tid];
    const bool g = taken(gshare[gshareIndex(tid, pc, hist)]);
    const bool b = taken(bimodal[bimodalIndex(tid, pc)]);
    const bool use_gshare = taken(chooser[chooserIndex(tid, pc)]);
    const bool pred = use_gshare ? g : b;
    histories[tid] = ((hist << 1) | (pred ? 1 : 0)) & historyMask;
    return pred;
}

void
BranchPredictor::update(ThreadId tid, Addr pc, bool taken_dir,
                        HistorySnapshot snap)
{
    auto &g = gshare[gshareIndex(tid, pc, snap)];
    auto &b = bimodal[bimodalIndex(tid, pc)];
    auto &c = chooser[chooserIndex(tid, pc)];

    const bool g_correct = taken(g) == taken_dir;
    const bool b_correct = taken(b) == taken_dir;
    if (g_correct != b_correct)
        train(c, g_correct);

    train(g, taken_dir);
    train(b, taken_dir);
}

void
BranchPredictor::saveState(Serializer &s) const
{
    s.u32(static_cast<std::uint32_t>(gshare.size()));
    for (const std::uint8_t c : gshare)
        s.u8(c);
    s.u32(static_cast<std::uint32_t>(bimodal.size()));
    for (const std::uint8_t c : bimodal)
        s.u8(c);
    s.u32(static_cast<std::uint32_t>(chooser.size()));
    for (const std::uint8_t c : chooser)
        s.u8(c);
    s.u32(static_cast<std::uint32_t>(histories.size()));
    for (const HistorySnapshot h : histories)
        s.u64(h);
}

void
BranchPredictor::loadState(Deserializer &d)
{
    auto counters = [&d](std::vector<std::uint8_t> &vec) {
        if (d.u32() != vec.size())
            throw SnapshotError("branch predictor: table size mismatch");
        for (std::uint8_t &c : vec)
            c = d.u8();
    };
    counters(gshare);
    counters(bimodal);
    counters(chooser);
    if (d.u32() != histories.size())
        throw SnapshotError("branch predictor: history count mismatch");
    for (HistorySnapshot &h : histories)
        h = d.u64();
}

} // namespace rmt
