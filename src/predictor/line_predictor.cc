#include "predictor/line_predictor.hh"

#include "common/bits.hh"
#include "common/logging.hh"

namespace rmt
{

LinePredictor::LinePredictor(const LinePredictorParams &params)
    : table(params.entries),
      statGroup("linepred"),
      statLookups(statGroup, "lookups", "chunk predictions made"),
      statMispredicts(statGroup, "mispredicts",
                      "line predictions overturned")
{
    if (params.entries == 0)
        fatal("line predictor needs at least one entry");
}

std::size_t
LinePredictor::index(ThreadId tid, Addr chunk_addr) const
{
    // Chunk-granular pc bits xor a thread offset.  Deliberately untagged:
    // aliasing is part of the modelled behaviour.
    // Indexed at fetch-start granularity: chunks may begin mid-frame
    // at branch targets, and those starts must not alias their frame's
    // start.  Modulo indexing: the paper's 28K-entry table is not a
    // power of two.  Deliberately untagged beyond that: cross-address
    // aliasing is part of the model.
    const std::uint64_t chunk = chunk_addr / instBytes;
    return (chunk ^ (std::uint64_t{tid} << 12)) % table.size();
}

Addr
LinePredictor::predict(ThreadId tid, Addr chunk_addr)
{
    ++statLookups;
    const Entry &e = table[index(tid, chunk_addr)];
    if (e.valid)
        return e.target;
    return chunk_addr + chunkSize * instBytes;
}

void
LinePredictor::train(ThreadId tid, Addr chunk_addr, Addr next_chunk)
{
    // Hysteresis: a single deviating outcome (e.g. the rare direction
    // of a biased branch, or wrong-path pollution) does not displace a
    // trained target; two in a row do.
    Entry &e = table[index(tid, chunk_addr)];
    if (!e.valid) {
        e.target = next_chunk;
        e.valid = true;
        e.hysteresis = false;
        return;
    }
    if (e.target == next_chunk) {
        e.hysteresis = false;
        return;
    }
    if (!e.hysteresis) {
        e.hysteresis = true;
        return;
    }
    e.target = next_chunk;
    e.hysteresis = false;
}

void
LinePredictor::saveState(Serializer &s) const
{
    s.u32(static_cast<std::uint32_t>(table.size()));
    for (const Entry &e : table) {
        s.u64(e.target);
        s.boolean(e.valid);
        s.boolean(e.hysteresis);
    }
}

void
LinePredictor::loadState(Deserializer &d)
{
    if (d.u32() != table.size())
        throw SnapshotError("line predictor: table size mismatch");
    for (Entry &e : table) {
        e.target = d.u64();
        e.valid = d.boolean();
        e.hysteresis = d.boolean();
    }
}

} // namespace rmt
