/**
 * @file
 * Configuration builders and run drivers for the paper's four target
 * architectures (Section 6.3): the base SMT processor, SRT (with the
 * per-thread-store-queue and no-store-comparison variants), lockstepped
 * dual cores (Lock0/Lock8), and CRT.
 *
 * This is the public entry point most users want: pick workloads, pick
 * a mode, run, read per-logical-thread IPCs and the RMT statistics.
 */

#ifndef RMTSIM_SIM_SIMULATOR_HH
#define RMTSIM_SIM_SIMULATOR_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cmp/chip.hh"
#include "obs/attribution.hh"
#include "obs/host_profile.hh"
#include "obs/timeline.hh"
#include "workloads/workloads.hh"

namespace rmt
{

/** How to arrange the logical threads on the chip. */
enum class SimMode
{
    Base,       ///< one hardware thread per logical thread, one core
    Base2,      ///< one program as two uncoupled redundant copies
    Srt,        ///< leading+trailing per logical thread, one core
    Lockstep,   ///< base timing + checker penalty on off-core signals
    Crt,        ///< leading+trailing cross-coupled over two cores
};

/** Printable name of a mode ("srt", "crt", ...). */
const char *modeName(SimMode mode);

struct SimOptions
{
    SimMode mode = SimMode::Base;
    std::uint64_t warmup_insts = 2000;      ///< per logical thread
    std::uint64_t measure_insts = 30000;    ///< per logical thread
    unsigned checker_penalty = 8;           ///< Lockstep mode only
    bool per_thread_store_queues = false;   ///< "SRT + ptsq"
    bool store_comparison = true;           ///< false = "SRT + nosc"
    bool preferential_space_redundancy = true;
    TrailingFetchMode trailing_fetch =
        TrailingFetchMode::LinePredictionQueue;
    unsigned slack_fetch = 0;
    bool lvq_ecc = true;
    bool lpq_ecc = false;                   ///< LPQ chunk-address ECC
    bool boq_ecc = false;                   ///< BOQ outcome ECC
    bool merge_buffer_ecc = true;           ///< out-of-sphere store path
    /**
     * Forward-progress watchdog: if any participating hardware thread
     * goes this many cycles without committing while still live, the
     * run aborts with Outcome::Hang instead of spinning to the safety
     * cap.  0 disables the watchdog.
     */
    std::uint64_t hang_cycles = 20000;
    bool cosim = false;                     ///< architectural checking
    bool recovery = false;                  ///< checkpoint fault recovery
    RecoveryParams recovery_params{};       ///< when recovery is on
    SmtParams cpu{};                        ///< base core parameters
    MemSystemParams mem{};

    // Observability (src/obs/).
    Cycle timeline_interval = 0;            ///< 0 = no timeline probe
    std::size_t timeline_max_samples = 65536;   ///< ring cap (0 = unbounded)
    bool collect_stats_json = false;        ///< fill RunResult::stats_json

    /**
     * Checkpointing (src/ckpt/): place a snapshot barrier every N
     * cycles (0 = none).  At each barrier the chip drains to a quiesce
     * point before the snapshot hook runs; the drain is part of the
     * simulation's timing, so two runs with the same snapshot_every are
     * cycle-identical whether or not either one actually saves or was
     * restored from a snapshot.  Part of the options fingerprint for
     * exactly that reason.  Incompatible with cosim and recovery.
     */
    std::uint64_t snapshot_every = 0;
};

/**
 * Canonical one-line JSON of every timing-relevant option: the
 * pre-image of the options fingerprint used to key snapshots, baseline
 * caches, and campaign records.
 */
std::string optionsCanonicalJson(const SimOptions &options);

/** FNV-1a-64 hash of optionsCanonicalJson(). */
std::uint64_t optionsFingerprintU64(const SimOptions &options);

/**
 * How a run ended.  Replaces the old completed/not-completed split with
 * a structured verdict so fault campaigns never exit through the raw
 * instruction cap without classification.
 */
enum class Outcome : std::uint8_t
{
    Completed,      ///< every logical thread reached its target
    Hang,           ///< forward-progress watchdog fired, no detection
    DetectedUnrecoverable,  ///< stopped short *with* a recorded detection
    CapExceeded,    ///< safety cap hit with the watchdog disabled
};

/** Printable name of an outcome ("completed", "hang", ...). */
const char *outcomeName(Outcome outcome);

/** Outcome of one logical thread. */
struct ThreadResult
{
    std::string workload;
    double ipc = 0;
    std::uint64_t committed = 0;
    Cycle cycles = 0;
};

struct RunResult
{
    std::vector<ThreadResult> threads;
    Cycle total_cycles = 0;
    bool completed = false;         ///< all threads reached their target
    Outcome outcome = Outcome::CapExceeded;     ///< set by run()

    // RMT aggregates (Srt/Crt modes).
    std::uint64_t detections = 0;
    std::uint64_t recoveries = 0;
    std::uint64_t fu_pairs = 0;
    std::uint64_t fu_same_unit = 0;
    std::uint64_t store_comparisons = 0;
    std::uint64_t store_mismatches = 0;

    // Core-side aggregates.
    std::uint64_t sq_full_stalls = 0;
    std::uint64_t lvq_full_stalls = 0;
    std::uint64_t branch_mispredicts = 0;
    std::uint64_t line_mispredicts = 0;
    double avg_leading_store_lifetime = 0;

    // Observability.
    HostTiming host;                ///< wall-clock phase breakdown
    std::string stats_json;         ///< full stats doc (opt-in), else ""

    /**
     * Commit-slot cycle accounting, summed over every core that ran:
     * each cycle × commit slot is charged to exactly one StallCause, so
     * `attribution.total() == attribution_core_cycles * commit_width`
     * holds for every finished run (the conservation invariant).
     */
    StallSlots attribution;
    std::uint64_t attribution_core_cycles = 0;  ///< sum of per-core cycles
    unsigned commit_width = 0;

    double fuSameFraction() const
    {
        return fu_pairs ? static_cast<double>(fu_same_unit) / fu_pairs : 0;
    }
};

/**
 * A fully wired simulation: chip, workload instances, and thread
 * placement, ready to run.  Exposed (rather than hidden inside run())
 * so examples, tests, and the fault-injection experiments can reach
 * into the chip mid-run.
 */
class Simulation
{
  public:
    Simulation(const std::vector<std::string> &workload_names,
               const SimOptions &options);

    Chip &chip() { return *_chip; }
    FaultInjector &faultInjector() { return injector; }
    const SimOptions &options() const { return opts; }
    unsigned numLogical() const
    {
        return static_cast<unsigned>(workloads.size());
    }

    /** Run to completion (or the safety cap); gather results. */
    RunResult run();

    /** The timeline probe, or nullptr when timeline_interval == 0. */
    TimelineProbe *timeline() { return probe.get(); }

    /**
     * Full stats document for a finished run:
     * `{"schema":"rmtsim-stats-v1","mode":...,"workloads":[...],
     *   "total_cycles":...,"host":{...},"groups":[...]}`.
     */
    std::string statsJson(const RunResult &result);

    /** Where each logical thread's copies live. */
    struct Placement
    {
        CoreId lead_core = 0;
        ThreadId lead_tid = 0;
        CoreId trail_core = 0;      ///< == lead when not redundant
        ThreadId trail_tid = 0;
        bool redundant = false;
    };
    const Placement &placement(unsigned logical) const
    {
        return placements.at(logical);
    }

    /** The data image of logical thread @p logical (for output
     *  comparison in fault-coverage experiments). */
    DataMemory &memory(unsigned logical) { return *memories.at(logical); }

    // --------------------------------------------- checkpoint/restore
    /**
     * Called at every snapshot barrier, after the chip has quiesced;
     * typically calls saveSnapshotBuffer()/saveSnapshot().
     */
    using SnapshotHook = std::function<void(Cycle, Simulation &)>;
    void setSnapshotHook(SnapshotHook hook)
    {
        snapshotHook = std::move(hook);
    }

    /**
     * Serialize the whole simulation (chip, data memories, statistics)
     * into a snapshot image.  Only valid at a quiesce point — i.e. from
     * the snapshot hook, or after run() returned — and throws
     * SnapshotError otherwise.
     */
    std::string saveSnapshotBuffer() const;

    /**
     * Restore a snapshot image into this freshly built (never run)
     * simulation.  The image must have been taken under the same
     * workloads and options (fingerprint-checked); run() then continues
     * from the saved cycle, byte-identical to an unbroken run.
     */
    void restoreSnapshotBuffer(const std::string &image);

    /** File wrappers around the buffer API. */
    void saveSnapshot(const std::string &path) const;
    void restoreSnapshot(const std::string &path);

    /** Cycle this simulation was restored at (0 = not restored). */
    Cycle restoredCycle() const { return restoredAt; }

    /** Upper bound on the freeze-drain length at a snapshot barrier
     *  before the run dies with a clear fatal (a wedge, not a drain). */
    static constexpr Cycle maxSnapshotDrainCycles = 30000;

  private:
    void buildBase(bool base2);
    void buildSrt();
    void buildCrt();

    SimOptions opts;
    std::string statsJsonPrefix;    ///< cached invariant stats-JSON head
    std::vector<Workload> workloads;
    std::vector<std::unique_ptr<DataMemory>> memories;
    std::vector<std::unique_ptr<DataMemory>> copyMemories;  ///< Base2
    std::unique_ptr<Chip> _chip;
    FaultInjector injector;
    std::vector<Placement> placements;
    std::unique_ptr<TimelineProbe> probe;
    double buildSeconds = 0;
    SnapshotHook snapshotHook;
    Cycle restoredAt = 0;
};

/** Convenience: build + run in one call. */
RunResult runSimulation(const std::vector<std::string> &workloads,
                        const SimOptions &options);

/**
 * IPC of @p workload running alone on the base processor with the same
 * instruction budget — the denominator of SMT-Efficiency (Section 6.4).
 */
double singleThreadIpc(const std::string &workload,
                       const SimOptions &options);

} // namespace rmt

#endif // RMTSIM_SIM_SIMULATOR_HH
