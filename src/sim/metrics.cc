#include "sim/metrics.hh"

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/fingerprint.hh"
#include "common/json.hh"
#include "common/logging.hh"

namespace rmt
{

namespace
{

/**
 * Parse `"ipc":<number>` out of a stored baseline record; false on a
 * missing file (the caller falls back to simulating).  A file that
 * exists but is garbled — wrong schema, options-fingerprint mismatch,
 * unparsable or non-finite value — is a corrupted artifact: warn,
 * delete it so it cannot poison the next campaign, and fall back.
 */
bool
loadStoredIpc(const std::string &path, const std::string &fingerprint,
              double &value)
{
    std::string doc;
    {
        std::ifstream in(path);
        if (!in)
            return false;   // no stored baseline yet: the normal miss
        std::stringstream ss;
        ss << in.rdbuf();
        doc = ss.str();
    }
    auto reject = [&path](const char *why) {
        warn("baseline store '%s' %s; evicting it and re-simulating",
             path.c_str(), why);
        std::error_code ec;
        std::filesystem::remove(path, ec);
        return false;
    };
    if (doc.find("\"schema\":\"rmtsim-baseline-v1\"") == std::string::npos)
        return reject("is not a rmtsim-baseline-v1 record");
    if (doc.find("\"fingerprint\":\"" + fingerprint + "\"") ==
        std::string::npos)
        return reject("was written under different options "
                      "(fingerprint mismatch)");
    const auto pos = doc.find("\"ipc\":");
    if (pos == std::string::npos)
        return reject("has no ipc field");
    try {
        value = std::stod(doc.substr(pos + 6));
    } catch (const std::exception &) {
        return reject("has an unparsable ipc value");
    }
    if (!std::isfinite(value) || value < 0)
        return reject("has a non-finite or negative ipc value");
    return true;
}

void
writeStoredIpc(const std::string &path, const std::string &workload,
               const std::string &fingerprint, double value)
{
    std::ofstream out(path);
    if (!out)
        return;     // a read-only store degrades to in-memory caching
    out << "{\"schema\":\"rmtsim-baseline-v1\""
        << ",\"workload\":\"" << jsonEscape(workload) << "\""
        << ",\"fingerprint\":\"" << fingerprint << "\""
        << ",\"ipc\":" << jsonNum(value) << "}\n";
}

} // namespace

double
smtEfficiency(double mode_ipc, double single_thread_ipc)
{
    return single_thread_ipc > 0 ? mode_ipc / single_thread_ipc : 0.0;
}

double
meanEfficiency(const std::vector<double> &efficiencies)
{
    if (efficiencies.empty())
        return 0.0;
    double sum = 0;
    for (double e : efficiencies)
        sum += e;
    return sum / static_cast<double>(efficiencies.size());
}

void
BaselineCache::setStore(const std::string &dir)
{
    std::lock_guard<std::mutex> lock(mu);
    store_dir = dir;
    std::filesystem::create_directories(dir);
}

std::string
BaselineCache::storePath(const std::string &workload) const
{
    if (store_dir.empty())
        return "";
    return store_dir + "/baseline-" +
           fingerprintHex(optionsFingerprintU64(opts)) + "-" + workload +
           ".json";
}

double
BaselineCache::ipc(const std::string &workload)
{
    std::unique_lock<std::mutex> lock(mu);
    for (;;) {
        auto [it, inserted] = cache.try_emplace(workload);
        if (inserted)
            break;              // we own the placeholder
        if (it->second.ready)
            return it->second.value;
        // Another thread is simulating this workload; wait for it to
        // publish (or to unpublish on failure, in which case the loop
        // re-claims the entry and retries the simulation).
        cv.wait(lock);
    }
    const std::string path = storePath(workload);
    const std::string fp = fingerprintHex(optionsFingerprintU64(opts));

    // We inserted the placeholder, so we are the single flight that
    // resolves this workload; everyone else blocks above.  An attached
    // on-disk store is consulted first — a hit skips the simulation.
    lock.unlock();
    double value = 0;
    bool loaded = !path.empty() && loadStoredIpc(path, fp, value);
    if (!loaded) {
        try {
            value = singleThreadIpc(workload, opts);
        } catch (...) {
            // Unpublish so waiters do not hang on a value that will
            // never arrive; the next caller retries the simulation.
            lock.lock();
            cache.erase(workload);
            cv.notify_all();
            throw;
        }
        if (!path.empty())
            writeStoredIpc(path, workload, fp, value);
    }
    lock.lock();
    Entry &entry = cache.at(workload);
    entry.value = value;
    entry.ready = true;
    if (!loaded)
        ++sims;
    cv.notify_all();
    return value;
}

std::uint64_t
BaselineCache::simulations() const
{
    std::lock_guard<std::mutex> lock(mu);
    return sims;
}

std::vector<double>
BaselineCache::efficiencies(const RunResult &result)
{
    std::vector<double> effs;
    effs.reserve(result.threads.size());
    for (const auto &t : result.threads)
        effs.push_back(smtEfficiency(t.ipc, ipc(t.workload)));
    return effs;
}

double
BaselineCache::efficiency(const RunResult &result)
{
    return meanEfficiency(efficiencies(result));
}

} // namespace rmt
