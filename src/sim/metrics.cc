#include "sim/metrics.hh"

namespace rmt
{

double
smtEfficiency(double mode_ipc, double single_thread_ipc)
{
    return single_thread_ipc > 0 ? mode_ipc / single_thread_ipc : 0.0;
}

double
meanEfficiency(const std::vector<double> &efficiencies)
{
    if (efficiencies.empty())
        return 0.0;
    double sum = 0;
    for (double e : efficiencies)
        sum += e;
    return sum / static_cast<double>(efficiencies.size());
}

double
BaselineCache::ipc(const std::string &workload)
{
    std::unique_lock<std::mutex> lock(mu);
    for (;;) {
        auto [it, inserted] = cache.try_emplace(workload);
        if (inserted)
            break;              // we own the placeholder
        if (it->second.ready)
            return it->second.value;
        // Another thread is simulating this workload; wait for it to
        // publish (or to unpublish on failure, in which case the loop
        // re-claims the entry and retries the simulation).
        cv.wait(lock);
    }

    // We inserted the placeholder, so we are the single flight that
    // simulates this workload; everyone else blocks above.
    lock.unlock();
    double value = 0;
    try {
        value = singleThreadIpc(workload, opts);
    } catch (...) {
        // Unpublish so waiters do not hang on a value that will never
        // arrive; the next caller retries the simulation.
        lock.lock();
        cache.erase(workload);
        cv.notify_all();
        throw;
    }
    lock.lock();
    Entry &entry = cache.at(workload);
    entry.value = value;
    entry.ready = true;
    ++sims;
    cv.notify_all();
    return value;
}

std::uint64_t
BaselineCache::simulations() const
{
    std::lock_guard<std::mutex> lock(mu);
    return sims;
}

std::vector<double>
BaselineCache::efficiencies(const RunResult &result)
{
    std::vector<double> effs;
    effs.reserve(result.threads.size());
    for (const auto &t : result.threads)
        effs.push_back(smtEfficiency(t.ipc, ipc(t.workload)));
    return effs;
}

double
BaselineCache::efficiency(const RunResult &result)
{
    return meanEfficiency(efficiencies(result));
}

} // namespace rmt
