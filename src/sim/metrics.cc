#include "sim/metrics.hh"

#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/json.hh"

namespace rmt
{

namespace
{

/** Parse `"ipc":<number>` out of a stored baseline record; false on a
 *  missing/garbled file (the caller falls back to simulating). */
bool
loadStoredIpc(const std::string &path, double &value)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string doc = ss.str();
    if (doc.find("\"schema\":\"rmtsim-baseline-v1\"") == std::string::npos)
        return false;
    const auto pos = doc.find("\"ipc\":");
    if (pos == std::string::npos)
        return false;
    try {
        value = std::stod(doc.substr(pos + 6));
    } catch (const std::exception &) {
        return false;
    }
    return true;
}

void
writeStoredIpc(const std::string &path, const std::string &workload,
               const std::string &fingerprint, double value)
{
    std::ofstream out(path);
    if (!out)
        return;     // a read-only store degrades to in-memory caching
    out << "{\"schema\":\"rmtsim-baseline-v1\""
        << ",\"workload\":\"" << jsonEscape(workload) << "\""
        << ",\"fingerprint\":\"" << fingerprint << "\""
        << ",\"ipc\":" << jsonNum(value) << "}\n";
}

} // namespace

double
smtEfficiency(double mode_ipc, double single_thread_ipc)
{
    return single_thread_ipc > 0 ? mode_ipc / single_thread_ipc : 0.0;
}

double
meanEfficiency(const std::vector<double> &efficiencies)
{
    if (efficiencies.empty())
        return 0.0;
    double sum = 0;
    for (double e : efficiencies)
        sum += e;
    return sum / static_cast<double>(efficiencies.size());
}

void
BaselineCache::setStore(const std::string &dir)
{
    std::lock_guard<std::mutex> lock(mu);
    store_dir = dir;
    std::filesystem::create_directories(dir);
}

std::string
BaselineCache::storePath(const std::string &workload) const
{
    if (store_dir.empty())
        return "";
    char buf[20];
    std::snprintf(buf, sizeof(buf), "%016" PRIx64,
                  optionsFingerprintU64(opts));
    return store_dir + "/baseline-" + buf + "-" + workload + ".json";
}

double
BaselineCache::ipc(const std::string &workload)
{
    std::unique_lock<std::mutex> lock(mu);
    for (;;) {
        auto [it, inserted] = cache.try_emplace(workload);
        if (inserted)
            break;              // we own the placeholder
        if (it->second.ready)
            return it->second.value;
        // Another thread is simulating this workload; wait for it to
        // publish (or to unpublish on failure, in which case the loop
        // re-claims the entry and retries the simulation).
        cv.wait(lock);
    }
    const std::string path = storePath(workload);

    // We inserted the placeholder, so we are the single flight that
    // resolves this workload; everyone else blocks above.  An attached
    // on-disk store is consulted first — a hit skips the simulation.
    lock.unlock();
    double value = 0;
    bool loaded = !path.empty() && loadStoredIpc(path, value);
    if (!loaded) {
        try {
            value = singleThreadIpc(workload, opts);
        } catch (...) {
            // Unpublish so waiters do not hang on a value that will
            // never arrive; the next caller retries the simulation.
            lock.lock();
            cache.erase(workload);
            cv.notify_all();
            throw;
        }
        if (!path.empty()) {
            char buf[20];
            std::snprintf(buf, sizeof(buf), "%016" PRIx64,
                          optionsFingerprintU64(opts));
            writeStoredIpc(path, workload, buf, value);
        }
    }
    lock.lock();
    Entry &entry = cache.at(workload);
    entry.value = value;
    entry.ready = true;
    if (!loaded)
        ++sims;
    cv.notify_all();
    return value;
}

std::uint64_t
BaselineCache::simulations() const
{
    std::lock_guard<std::mutex> lock(mu);
    return sims;
}

std::vector<double>
BaselineCache::efficiencies(const RunResult &result)
{
    std::vector<double> effs;
    effs.reserve(result.threads.size());
    for (const auto &t : result.threads)
        effs.push_back(smtEfficiency(t.ipc, ipc(t.workload)));
    return effs;
}

double
BaselineCache::efficiency(const RunResult &result)
{
    return meanEfficiency(efficiencies(result));
}

} // namespace rmt
