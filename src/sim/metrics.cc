#include "sim/metrics.hh"

namespace rmt
{

double
smtEfficiency(double mode_ipc, double single_thread_ipc)
{
    return single_thread_ipc > 0 ? mode_ipc / single_thread_ipc : 0.0;
}

double
meanEfficiency(const std::vector<double> &efficiencies)
{
    if (efficiencies.empty())
        return 0.0;
    double sum = 0;
    for (double e : efficiencies)
        sum += e;
    return sum / static_cast<double>(efficiencies.size());
}

double
BaselineCache::ipc(const std::string &workload)
{
    for (const auto &[name, value] : cache) {
        if (name == workload)
            return value;
    }
    const double value = singleThreadIpc(workload, opts);
    cache.emplace_back(workload, value);
    return value;
}

std::vector<double>
BaselineCache::efficiencies(const RunResult &result)
{
    std::vector<double> effs;
    effs.reserve(result.threads.size());
    for (const auto &t : result.threads)
        effs.push_back(smtEfficiency(t.ipc, ipc(t.workload)));
    return effs;
}

double
BaselineCache::efficiency(const RunResult &result)
{
    return meanEfficiency(efficiencies(result));
}

} // namespace rmt
